(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (via the experiments library) and measures the host-side
   cost of the core primitive behind each one with Bechamel.

   Usage: dune exec bench/main.exe [-- --full] — the default trims the
   reproduction ladders for a single-core smoke run; --full uses
   paper-scale parameters. *)

open Bechamel
open Toolkit

(* {1 Prepared fixtures for the staged benchmarks} *)

let gib n = Int64.mul (Int64.of_int n) (Int64.of_int (Mem.Mconfig.mib 1024))

(* One long-lived simulated node used by the staged functions. Each
   staged run drives the engine until its work completes; the engine is
   reusable across runs. *)
type fixture = {
  engine : Sim.Engine.t;
  env : Seuss.Osenv.t;
  node : Seuss.Node.t;
  base : Seuss.Snapshot.t;
}

let make_fixture () =
  let engine = Sim.Engine.create ~seed:99L () in
  let env = Seuss.Osenv.create ~budget_bytes:(gib 16) engine in
  let holder = ref None in
  Sim.Engine.spawn engine ~name:"fixture" (fun () ->
      let node = Seuss.Node.create env in
      Seuss.Node.start node;
      holder := Some node);
  Sim.Engine.run engine;
  let node = Option.get !holder in
  let base = Option.get (Seuss.Node.base_snapshot node Unikernel.Image.Node) in
  { engine; env; node; base }

let in_fixture fx f =
  Sim.Engine.spawn fx.engine ~name:"bench" f;
  Sim.Engine.run fx.engine

(* Table 1's primitive: the full snapshot lifecycle — deploy a UC from
   the base snapshot, capture a snapshot of it, delete both. *)
let bench_snapshot_lifecycle fx () =
  in_fixture fx (fun () ->
      let uc = Seuss.Uc.deploy fx.env fx.base in
      (* Let the guest finish resuming before the capture reads it. *)
      Sim.Engine.sleep 0.05;
      let snap = Seuss.Uc.capture uc ~env:fx.env ~name:"bench" in
      Seuss.Uc.destroy uc;
      ignore (Seuss.Snapshot.try_delete ~env:fx.env snap))

(* Table 2's primitive: importing and compiling the NOP function (the
   work AO moves off the critical path). *)
let bench_compile_nop () =
  match
    Interp.Minijs.load ~host:Interp.Builtins.null_host
      "function main(args) { return {}; }"
  with
  | Ok _ -> ()
  | Error e -> failwith e

(* Table 3's primitive: the deploy path — shallow page-table copy of the
   ~28k-page base image plus release. *)
let bench_pt_clone fx () =
  let table = fx.base.Seuss.Snapshot.table in
  let clone = Mem.Page_table.clone_shallow table in
  Mem.Page_table.release clone

(* Figure 4's primitive: one hot invocation end to end on the node. *)
let bench_hot_invocation fx =
  let fn =
    {
      Seuss.Node.fn_id = "bench-hot";
      runtime = Unikernel.Image.Node;
      source = "function main(args) { return {}; }";
    }
  in
  in_fixture fx (fun () ->
      match Seuss.Node.invoke fx.node fn ~args:"{}" with
      | Ok _, _ -> ()
      | Error _, _ -> failwith "bench warmup failed");
  fun () ->
    in_fixture fx (fun () ->
        match Seuss.Node.invoke fx.node fn ~args:"{}" with
        | Ok _, _ -> ()
        | Error _, _ -> failwith "bench invocation failed")

(* Figure 5's primitive: percentile digestion of a trial's latencies. *)
let bench_percentiles =
  let rng = Sim.Prng.create 4L in
  let samples = Array.init 10_000 (fun _ -> Sim.Prng.float rng) in
  fun () ->
    let s = Stats.Summary.create () in
    Array.iter (Stats.Summary.add s) samples;
    ignore (Stats.Summary.digest s)

(* Figures 6-8's primitive: the burst deployment cycle — deploy (the
   guest's resume writes its per-instance pages, real zero-fill/COW
   work) and destroy. *)
let bench_cow_fault fx () =
  in_fixture fx (fun () ->
      let uc = Seuss.Uc.deploy fx.env fx.base in
      Seuss.Uc.destroy uc)

let make_tests fx =
  Test.make_grouped ~name:"seuss"
    [
      Test.make ~name:"table1:snapshot-lifecycle"
        (Staged.stage (bench_snapshot_lifecycle fx));
      Test.make ~name:"table2:import-compile-nop" (Staged.stage bench_compile_nop);
      Test.make ~name:"table3:pt-shallow-copy" (Staged.stage (bench_pt_clone fx));
      Test.make ~name:"fig4:hot-invocation" (Staged.stage (bench_hot_invocation fx));
      Test.make ~name:"fig5:latency-percentiles" (Staged.stage bench_percentiles);
      Test.make ~name:"fig6-8:deploy-destroy" (Staged.stage (bench_cow_fault fx));
    ]

(* Machine-readable export: ns-per-run distribution of every benchmark,
   written next to the human-readable table so CI and notebooks can
   track regressions. Schema: { name: { mean, p50, p99 } }. *)
let export_obs_json raw =
  let label = Measure.label Instance.monotonic_clock in
  let entries =
    Hashtbl.fold
      (fun name (b : Benchmark.t) acc ->
        let samples =
          Array.to_list b.Benchmark.lr
          |> List.filter_map (fun m ->
                 let runs = Measurement_raw.run m in
                 if runs <= 0.0 then None
                 else Some (Measurement_raw.get ~label m /. runs))
          |> List.sort compare
        in
        match Array.of_list samples with
        | [||] -> acc
        | arr ->
            let n = Array.length arr in
            let mean = Array.fold_left ( +. ) 0.0 arr /. float_of_int n in
            let q p =
              arr.(min (n - 1) (int_of_float (p *. float_of_int (n - 1))))
            in
            ( name,
              Obs.Json.Obj
                [
                  ("mean", Obs.Json.Float mean);
                  ("p50", Obs.Json.Float (q 0.5));
                  ("p99", Obs.Json.Float (q 0.99));
                ] )
            :: acc)
      raw []
  in
  let path = "BENCH_obs.json" in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string (Obs.Json.Obj (List.sort compare entries)));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d benchmarks; ns per run, mean/p50/p99)\n" path
    (List.length entries)

let run_benchmarks () =
  let fx = make_fixture () in
  let tests = make_tests fx in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  export_obs_json raw;
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Host-side microbenchmarks (Bechamel, monotonic clock)";
  print_endline "-----------------------------------------------------";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> Printf.sprintf "%12.1f ns/run" t
        | _ -> "            n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "r²=%.3f" r
        | None -> ""
      in
      Printf.printf "  %-32s %s  %s\n" name estimate r2)
    (List.sort compare rows);
  print_newline ()

let () =
  let full = Array.exists (fun a -> a = "--full") Sys.argv in
  let scale = if full then Experiments.All.Full else Experiments.All.Quick in
  print_endline
    "SEUSS reproduction benchmark: regenerating every table and figure";
  print_endline
    (Printf.sprintf "(scale: %s; see DESIGN.md for the experiment index)\n"
       (if full then "full/paper" else "quick"));
  print_string (Experiments.All.run ~scale ());
  run_benchmarks ()
