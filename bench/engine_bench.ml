(* Engine macrobenchmark: host-side cost of the simulation core itself,
   written as a committed baseline (BENCH_engine.json) that CI compares
   fresh runs against.

   Two passes:
   - synthetic: a pure scheduler workload (many processes trading
     sleeps) sized so the event count dwarfs everything else — reports
     events/sec, host allocations per event (Gc word deltas) and the
     engine's own perf counters (dispatched / scheduled / max heap);
   - experiments: wall time of a trimmed fig4, chaos, reap and load
     run — the figures the observability plane instruments — so a
     costly regression in the instrumentation or the open-loop replay
     path shows up here even if the per-event synthetic number stays
     flat.

   Usage: dune exec bench/engine_bench.exe [-- --out PATH]
   (default PATH: BENCH_engine.json). *)

let synthetic_procs = 64
let synthetic_sleeps = 4096

type synthetic = {
  events : int;
  wall_s : float;
  events_per_sec : float;
  allocs_per_event : float;
  scheduled : int;
  max_heap : int;
}

let run_synthetic () =
  let engine = Sim.Engine.create ~seed:1L () in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  for p = 1 to synthetic_procs do
    Sim.Engine.spawn engine
      ~name:(Printf.sprintf "proc-%d" p)
      (fun () ->
        for i = 1 to synthetic_sleeps do
          (* Deterministic, uneven periods so the heap sees real
             interleaving rather than one synchronized cohort. *)
          Sim.Engine.sleep (1e-4 *. float_of_int (1 + (((p * 7) + i) mod 13)))
        done)
  done;
  Sim.Engine.run engine;
  let wall_s = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let words =
    g1.Gc.minor_words -. g0.Gc.minor_words
    +. (g1.Gc.major_words -. g0.Gc.major_words)
    -. (g1.Gc.promoted_words -. g0.Gc.promoted_words)
  in
  let perf = Sim.Engine.perf engine in
  let events = perf.Sim.Engine.dispatched in
  {
    events;
    wall_s;
    events_per_sec =
      (if wall_s > 0.0 then float_of_int events /. wall_s else 0.0);
    allocs_per_event =
      (if events > 0 then words /. float_of_int events else 0.0);
    scheduled = perf.Sim.Engine.scheduled;
    max_heap = perf.Sim.Engine.max_heap;
  }

let timed f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let run_experiments () =
  let fig4 =
    timed (fun () -> Experiments.Fig4.run ~set_sizes:[ 64; 128 ] ())
  in
  let chaos =
    timed (fun () ->
        Experiments.Fig_chaos.run ~nodes:2 ~functions:5 ~calls:40
          ~rates:[ 0.0; 0.05 ] ())
  in
  let reap = timed (fun () -> Experiments.Fig_reap.run ~functions:4 ~rounds:5 ())
  in
  let load =
    timed (fun () ->
        Experiments.Fig_load.run ~functions:48 ~hours:0.05 ~rps:[ 2.0; 8.0 ]
          ~arrival:"bursty" ())
  in
  let evict =
    timed (fun () ->
        Experiments.Fig_evict.run ~functions:24 ~hours:0.02 ~rate:8.0
          ~sizes:
            [
              0L;
              Int64.of_int (Mem.Mconfig.mib 3);
              Int64.of_int (Mem.Mconfig.mib 64);
            ]
          ())
  in
  (fig4, chaos, reap, load, evict)

let () =
  let out = ref "BENCH_engine.json" in
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | arg :: _ ->
        Printf.eprintf "engine_bench: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let s = run_synthetic () in
  Printf.printf
    "synthetic: %d events in %.3fs — %.0f events/s, %.1f words/event, max \
     heap %d\n"
    s.events s.wall_s s.events_per_sec s.allocs_per_event s.max_heap;
  let fig4_wall_s, chaos_wall_s, reap_wall_s, fig_load_wall_s, fig_evict_wall_s
      =
    run_experiments ()
  in
  Printf.printf
    "experiments: fig4 %.3fs, chaos %.3fs, reap %.3fs, load %.3fs, evict \
     %.3fs\n"
    fig4_wall_s chaos_wall_s reap_wall_s fig_load_wall_s fig_evict_wall_s;
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "seuss-engine-bench/1");
        ( "synthetic",
          Obs.Json.Obj
            [
              ("events", Obs.Json.Int s.events);
              ("wall_s", Obs.Json.Float s.wall_s);
              ("events_per_sec", Obs.Json.Float s.events_per_sec);
              ("allocs_per_event", Obs.Json.Float s.allocs_per_event);
              ("scheduled", Obs.Json.Int s.scheduled);
              ("max_heap", Obs.Json.Int s.max_heap);
            ] );
        ( "experiments",
          Obs.Json.Obj
            [
              ("fig4_wall_s", Obs.Json.Float fig4_wall_s);
              ("chaos_wall_s", Obs.Json.Float chaos_wall_s);
              ("reap_wall_s", Obs.Json.Float reap_wall_s);
              ("fig_load_wall_s", Obs.Json.Float fig_load_wall_s);
              ("fig_evict_wall_s", Obs.Json.Float fig_evict_wall_s);
            ] );
      ]
  in
  let oc = open_out !out in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !out
