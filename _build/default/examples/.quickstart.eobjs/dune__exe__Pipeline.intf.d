examples/pipeline.mli:
