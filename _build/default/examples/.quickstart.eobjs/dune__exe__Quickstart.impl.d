examples/quickstart.ml: Int64 Printf Seuss Sim Unikernel
