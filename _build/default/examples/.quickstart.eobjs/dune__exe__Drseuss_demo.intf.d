examples/drseuss_demo.mli:
