examples/burst_demo.ml: Array Baselines Experiments Int64 List Mem Platform Printf Stats
