examples/pipeline.ml: List Printf Seuss Sim String Unikernel
