examples/multi_tenant.ml: Int64 List Mem Printf Seuss Sim Unikernel
