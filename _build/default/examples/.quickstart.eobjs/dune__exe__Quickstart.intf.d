examples/quickstart.mli:
