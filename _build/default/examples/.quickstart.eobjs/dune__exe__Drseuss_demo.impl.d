examples/drseuss_demo.ml: Cluster Int64 Printf Seuss Sim String Unikernel
