examples/burst_demo.mli:
