(* Quickstart: boot a SEUSS compute node, register a function, and watch
   the three invocation paths.

     dune exec examples/quickstart.exe

   The simulation models the paper's 88 GB / 16-core node. A function is
   a snippet of MiniJS (a JavaScript-like language) with a [main] entry
   point; the node imports and compiles it on the first (cold)
   invocation, captures a function snapshot, and serves repeats from the
   snapshot (warm) or from a cached idle unikernel context (hot). *)

let function_source =
  {|
  function main(args) {
    let total = 0;
    for (let i = 0; i < len(args.items); i += 1) {
      total += args.items[i];
    }
    return {sum: total, count: len(args.items)};
  }
|}

let () =
  let engine = Sim.Engine.create ~seed:1L () in
  Sim.Engine.spawn engine ~name:"quickstart" (fun () ->
      (* An OS environment: memory budget, cores, proxy, PRNG. *)
      let env = Seuss.Osenv.create engine in
      let node = Seuss.Node.create env in
      (* Boot the Node.js unikernel, apply anticipatory optimization and
         capture the base runtime snapshot (takes a few simulated
         seconds, once per node). *)
      Seuss.Node.start node;
      Printf.printf "node started at t=%.2fs (simulated)\n"
        (Sim.Engine.now engine);

      let fn =
        {
          Seuss.Node.fn_id = "sum-service";
          runtime = Unikernel.Image.Node;
          source = function_source;
        }
      in
      let invoke label =
        let t0 = Sim.Engine.now engine in
        match Seuss.Node.invoke node fn ~args:"{items: [1, 2, 3, 4, 5]}" with
        | Ok result, path ->
            Printf.printf "%-18s %-4s -> %s  (%.2f ms)\n" label
              (match path with
              | Seuss.Node.Cold -> "cold"
              | Seuss.Node.Warm -> "warm"
              | Seuss.Node.Hot -> "hot")
              result
              ((Sim.Engine.now engine -. t0) *. 1e3)
        | Error _, _ -> print_endline "invocation failed"
      in
      invoke "first call";
      invoke "second call";
      (* Drop the cached idle UC to show the warm path. *)
      Seuss.Node.drop_idle node ~fn_id:"sum-service";
      invoke "after idle drop";

      (match Seuss.Node.function_snapshot node "sum-service" with
      | Some snap ->
          Printf.printf
            "\nfunction snapshot: %s diff on a %s base (stack depth %d)\n"
            (Printf.sprintf "%.1f MB"
               (Int64.to_float (Seuss.Snapshot.diff_bytes snap) /. 1048576.0))
            (Printf.sprintf "%.1f MB"
               (Int64.to_float (Seuss.Snapshot.total_bytes snap) /. 1048576.0))
            (Seuss.Snapshot.depth snap)
      | None -> ());
      let s = Seuss.Node.stats node in
      Printf.printf "paths served: %d cold, %d warm, %d hot\n" s.Seuss.Node.cold
        s.Seuss.Node.warm s.Seuss.Node.hot);
  Sim.Engine.run engine
