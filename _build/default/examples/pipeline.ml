(* A serverless application built from composed functions.

     dune exec examples/pipeline.exe

   The paper's intro: serverless functions compose into applications
   "deployed rapidly as singletons, in sequences, or in parallel". This
   example runs a three-stage order-processing pipeline where each stage
   is its own isolated function, invoked in sequence, plus a fan-out
   stage invoked in parallel — all through the full platform path
   (controller -> shim -> SEUSS node), showing that composition stays
   cheap once snapshots are warm. *)

let validate_src =
  {|
  function main(order) {
    if (order.qty <= 0) { return {ok: false, reason: "bad quantity"}; }
    if (len(order.sku) == 0) { return {ok: false, reason: "missing sku"}; }
    return {ok: true, sku: order.sku, qty: order.qty};
  }
|}

let price_src =
  {|
  let table = {widget: 25, gadget: 40};
  function main(item) {
    let unit = table[item.sku];
    if (unit == null) { return {ok: false, reason: "unknown sku"}; }
    return {ok: true, total: unit * item.qty, sku: item.sku, qty: item.qty};
  }
|}

let receipt_src =
  {|
  function main(priced) {
    let line = priced.qty + " x " + priced.sku + " = " + priced.total;
    return {receipt: line, hash: hash(line)};
  }
|}

let audit_src =
  {|
  function main(shard) {
    work(5); /* 5 ms of bookkeeping compute */
    return {shard: shard.id, audited: true};
  }
|}

let () =
  let engine = Sim.Engine.create ~seed:3L () in
  Sim.Engine.spawn engine ~name:"pipeline" (fun () ->
      let env = Seuss.Osenv.create engine in
      let node = Seuss.Node.create env in
      Seuss.Node.start node;
      let fn id source =
        { Seuss.Node.fn_id = id; runtime = Unikernel.Image.Node; source }
      in
      let stages =
        [
          ("validate", fn "validate" validate_src);
          ("price", fn "price" price_src);
          ("receipt", fn "receipt" receipt_src);
        ]
      in
      let invoke f args =
        match Seuss.Node.invoke node f ~args with
        | Ok result, path -> (result, path)
        | Error (`Runtime_error m), _ -> failwith ("runtime error: " ^ m)
        | Error (`Compile_error m), _ -> failwith ("compile error: " ^ m)
        | Error _, _ -> failwith "invocation failed"
      in
      let path_name = function
        | Seuss.Node.Cold -> "cold"
        | Seuss.Node.Warm -> "warm"
        | Seuss.Node.Hot -> "hot"
      in
      (* Run the sequence twice: first all-cold, then all-hot. *)
      let run_pipeline order =
        let t0 = Sim.Engine.now engine in
        let result, paths =
          List.fold_left
            (fun (payload, paths) (name, f) ->
              let out, path = invoke f payload in
              ignore name;
              (out, path_name path :: paths))
            (order, []) stages
        in
        (result, List.rev paths, (Sim.Engine.now engine -. t0) *. 1e3)
      in
      let order = "{sku: \"widget\", qty: 3}" in
      let r1, paths1, ms1 = run_pipeline order in
      Printf.printf "pipeline #1 (%s): %s  [%.1f ms]\n"
        (String.concat "/" paths1) r1 ms1;
      let r2, paths2, ms2 = run_pipeline order in
      Printf.printf "pipeline #2 (%s): %s  [%.1f ms]\n"
        (String.concat "/" paths2) r2 ms2;
      Printf.printf "sequence speedup once cached: %.1fx\n\n" (ms1 /. ms2);

      (* Fan-out: 8 parallel invocations of the audit function, deployed
         concurrently from one snapshot. *)
      let audit = fn "audit" audit_src in
      ignore (invoke audit "{id: 0}");
      Seuss.Node.drop_idle node ~fn_id:"audit";
      let t0 = Sim.Engine.now engine in
      let remaining = ref 8 in
      let done_ = Sim.Ivar.create () in
      for shard = 1 to 8 do
        Sim.Engine.spawn engine (fun () ->
            ignore (invoke audit (Printf.sprintf "{id: %d}" shard));
            decr remaining;
            if !remaining = 0 then Sim.Ivar.fill done_ ())
      done;
      Sim.Ivar.read done_;
      Printf.printf
        "fan-out: 8 parallel warm deployments from one snapshot in %.1f ms\n"
        ((Sim.Engine.now engine -. t0) *. 1e3);
      let s = Seuss.Node.stats node in
      Printf.printf "total paths: %d cold / %d warm / %d hot\n"
        s.Seuss.Node.cold s.Seuss.Node.warm s.Seuss.Node.hot);
  Sim.Engine.run engine
