(* DR-SEUSS: the paper's future-work vision (§9) — a distributed,
   replicated snapshot cache across compute nodes.

     dune exec examples/drseuss_demo.exe

   Four nodes share a registry of function snapshots. The first node to
   compile a function publishes its snapshot; other nodes fetch the
   2 MB-ish diff over 10 GbE and stack it on their own base runtime
   snapshot instead of re-importing and re-compiling. *)

let source =
  {|
  function classify(n) {
    if (n % 15 == 0) { return "fizzbuzz"; }
    if (n % 3 == 0) { return "fizz"; }
    if (n % 5 == 0) { return "buzz"; }
    return str(n);
  }
  function main(args) {
    let out = [];
    for (let i = 1; i <= args.upto; i += 1) { push(out, classify(i)); }
    return {labels: join(out, ",")};
  }
|}

let () =
  let engine = Sim.Engine.create ~seed:4L () in
  Sim.Engine.spawn engine ~name:"drseuss-demo" (fun () ->
      let cluster = Cluster.Drseuss.create ~nodes:4 engine in
      Printf.printf "4-node cluster ready at t=%.1fs (simulated)\n"
        (Sim.Engine.now engine);
      let fn =
        {
          Seuss.Node.fn_id = "fizzbuzz";
          runtime = Unikernel.Image.Node;
          source;
        }
      in
      for i = 1 to 6 do
        let t0 = Sim.Engine.now engine in
        match Cluster.Drseuss.invoke cluster fn ~args:"{upto: 15}" with
        | Ok result, src ->
            Printf.printf "call %d: %-12s %5.1f ms  %s\n" i
              (match src with
              | Cluster.Drseuss.Cluster_cold -> "cluster-cold"
              | Cluster.Drseuss.Remote_fetch -> "remote-fetch"
              | Cluster.Drseuss.Local p -> (
                  match p with
                  | Seuss.Node.Cold -> "local-cold"
                  | Seuss.Node.Warm -> "local-warm"
                  | Seuss.Node.Hot -> "local-hot"))
              ((Sim.Engine.now engine -. t0) *. 1e3)
              (String.sub result 0 (min 40 (String.length result)))
        | Error _, _ -> print_endline "invocation failed"
      done;
      let s = Cluster.Drseuss.stats cluster in
      Printf.printf
        "\ncluster totals: %d cold compile(s), %d remote fetch(es) moving %s\n"
        s.Cluster.Drseuss.cluster_colds s.Cluster.Drseuss.remote_fetches
        (Printf.sprintf "%.1f MB"
           (Int64.to_float s.Cluster.Drseuss.bytes_transferred /. 1048576.0)));
  Sim.Engine.run engine
