(* Burst resiliency in miniature: a steady IO-bound stream with a sudden
   CPU-bound burst on top, on both compute nodes.

     dune exec examples/burst_demo.exe

   A 60-second timeline printed per 5-second window: requests served and
   failures, Linux vs SEUSS. The full experiment (Figures 6-8) is
   `seussctl burst`. *)

let window = 5.0

let run_backend name make_controller =
  Experiments.Harness.run_sim ~seed:11L (fun engine ->
      let env =
        Experiments.Harness.make_seuss_env
          ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib (24 * 1024)))
          engine
      in
      let controller = make_controller env in
      let cfg =
        {
          Platform.Burst.default with
          Platform.Burst.duration = 60.0;
          background_threads = 32;
          background_rate = 24.0;
          burst_period = 20.0;
          burst_size = 48;
          first_burst_at = 12.0;
        }
      in
      let r =
        Platform.Burst.run
          ~invoke:(fun spec -> Platform.Controller.invoke controller spec)
          cfg
      in
      Printf.printf "\n%s node timeline (%d background + %d burst requests):\n"
        name
        (Stats.Series.length r.Platform.Burst.background)
        (Stats.Series.length r.Platform.Burst.bursts);
      Printf.printf "  %-10s %-10s %-12s %-8s\n" "window" "requests"
        "p99 latency" "failed";
      let all = Stats.Series.create () in
      let copy series =
        Array.iter
          (fun p ->
            Stats.Series.add all ~time:p.Stats.Series.time
              ~value:p.Stats.Series.value ~ok:p.Stats.Series.ok)
          (Stats.Series.points series)
      in
      copy r.Platform.Burst.background;
      copy r.Platform.Burst.bursts;
      let points = Stats.Series.points all in
      List.iter
        (fun (start, _) ->
          let in_window =
            Array.to_list points
            |> List.filter (fun p ->
                   p.Stats.Series.time >= start
                   && p.Stats.Series.time < start +. window)
          in
          if in_window <> [] then begin
            let s = Stats.Summary.create () in
            List.iter (fun p -> Stats.Summary.add s p.Stats.Series.value) in_window;
            let failures =
              List.length (List.filter (fun p -> not p.Stats.Series.ok) in_window)
            in
            Printf.printf "  %4.0f-%-4.0fs  %-10d %8.0f ms  %-8d\n" start
              (start +. window)
              (List.length in_window)
              (Stats.Summary.percentile s 99.0 *. 1e3)
              failures
          end)
        (Stats.Series.window_counts all ~width:window))

let () =
  run_backend "Linux" (fun env ->
      let config =
        {
          Baselines.Linux_node.default_config with
          Baselines.Linux_node.stemcell_count = 32;
          container_cache_limit = 96;
        }
      in
      fst (Experiments.Harness.linux_controller ~config env));
  run_backend "SEUSS" (fun env ->
      fst (Experiments.Harness.seuss_controller env))
