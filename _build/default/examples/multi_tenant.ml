(* Multi-tenant density: hundreds of mutually-isolated client functions
   cached on one node.

     dune exec examples/multi_tenant.exe

   Demonstrates the paper's two headline memory properties: function
   snapshots stack on one shared runtime snapshot (so each tenant costs
   megabytes, not a full runtime), and isolation holds — every tenant's
   counter state is private even though all tenants share >95% of their
   pages. Finally, memory pressure triggers the OOM reclaimer, which
   evicts idle UCs but never snapshots. *)

let tenants = 200

let tenant_source =
  (* Each tenant keeps private state across hot invocations. *)
  {|
  let calls = 0;
  function main(args) {
    calls = calls + 1;
    return {tenant: args.tenant, calls: calls};
  }
|}

let gib = Int64.of_int (Mem.Mconfig.mib 1024)

let () =
  let engine = Sim.Engine.create ~seed:2L () in
  Sim.Engine.spawn engine ~name:"multi-tenant" (fun () ->
      (* A deliberately small 4 GB node so the OOM daemon has work. *)
      let env = Seuss.Osenv.create ~budget_bytes:(Int64.mul 4L gib) engine in
      let config =
        {
          Seuss.Config.default with
          Seuss.Config.oom_headroom_bytes = Int64.of_int (Mem.Mconfig.mib 512);
        }
      in
      let node = Seuss.Node.create ~config env in
      Seuss.Node.start node;

      let fn i =
        {
          Seuss.Node.fn_id = Printf.sprintf "tenant-%03d" i;
          runtime = Unikernel.Image.Node;
          source = tenant_source;
        }
      in
      let invoke i =
        match
          Seuss.Node.invoke node (fn i)
            ~args:(Printf.sprintf "{tenant: %d}" i)
        with
        | Ok result, _ -> result
        | Error _, _ -> failwith "invocation failed"
      in

      Printf.printf "onboarding %d tenants (one cold start each)...\n" tenants;
      for i = 1 to tenants do
        ignore (invoke i)
      done;
      Printf.printf "  snapshots cached: %d, idle UCs: %d\n"
        (Seuss.Node.snapshot_count node)
        (Seuss.Node.idle_uc_count node);
      Printf.printf "  node memory in use: %.2f GB of 4 GB\n"
        (Int64.to_float
           (Int64.sub (Int64.mul 4L gib) (Seuss.Node.free_bytes node))
        /. 1.073741824e9);

      (* Hot calls mutate only the tenant's own state. *)
      let r7 = invoke 7 and r7' = invoke 7 and r9 = invoke 9 in
      Printf.printf "\nisolation check:\n  tenant 7: %s then %s\n  tenant 9: %s\n"
        r7 r7' r9;

      (* Average marginal memory per cached tenant. *)
      let idle = Seuss.Node.idle_ucs node in
      let total_private =
        List.fold_left
          (fun acc uc -> Int64.add acc (Seuss.Uc.footprint_bytes uc))
          0L idle
      in
      if idle <> [] then
        Printf.printf "\nmean idle-UC footprint: %.2f MB (%d cached)\n"
          (Int64.to_float total_private
          /. float_of_int (List.length idle)
          /. 1048576.0)
          (List.length idle);

      (* Force pressure: deploy idle runtime UCs until the reclaimer has
         to act. *)
      let before = Seuss.Node.idle_uc_count node in
      let deployed = ref 0 in
      while
        !deployed < 3000 && Seuss.Node.deploy_idle node Unikernel.Image.Node
      do
        incr deployed
      done;
      let reclaimed = Seuss.Node.reclaim_idle_ucs node in
      let s = Seuss.Node.stats node in
      Printf.printf
        "\nmemory pressure: deployed %d extra UCs; OOM daemon reclaimed %d \
         idle UCs\n(idle %d -> %d; snapshots still cached: %d)\n"
        !deployed
        (s.Seuss.Node.reclaimed_ucs + reclaimed)
        before
        (Seuss.Node.idle_uc_count node)
        (Seuss.Node.snapshot_count node);
      (* Tenants still work after reclamation (warm path). *)
      Printf.printf "\ntenant 7 after reclamation: %s\n" (invoke 7));
  Sim.Engine.run engine
