type config = {
  invocations : int;
  fn_set_size : int;
  client_threads : int;
  seed : int64;
  warmup : int;
}

type result = {
  latencies : Stats.Summary.t;
  errors : int;
  wall_time : float;
  throughput : float;
  requests : Stats.Series.t;
}

let send_order cfg =
  if cfg.invocations <= 0 || cfg.fn_set_size <= 0 then
    invalid_arg "Loadgen: empty trial";
  if cfg.warmup >= cfg.invocations then
    invalid_arg "Loadgen: warmup must leave invocations to measure";
  let order = Array.init cfg.invocations (fun i -> i mod cfg.fn_set_size) in
  Sim.Prng.shuffle (Sim.Prng.create cfg.seed) order;
  order

let run ~invoke cfg =
  let engine = Sim.Engine.self () in
  let order = send_order cfg in
  let next = ref 0 in
  let completed = ref 0 in
  let errors = ref 0 in
  let latencies = Stats.Summary.create () in
  let requests = Stats.Series.create () in
  let measure_started = ref 0.0 in
  let all_done = Sim.Ivar.create () in
  let worker () =
    let rec loop () =
      let i = !next in
      if i < cfg.invocations then begin
        incr next;
        if i = cfg.warmup then measure_started := Sim.Engine.now engine;
        let sent = Sim.Engine.now engine in
        let outcome = invoke ~fn_index:order.(i) in
        let latency = Sim.Engine.now engine -. sent in
        if i >= cfg.warmup then begin
          (match outcome with
          | Ok () -> Stats.Summary.add latencies latency
          | Error _ -> incr errors);
          Stats.Series.add requests ~time:sent ~value:latency
            ~ok:(Result.is_ok outcome)
        end;
        incr completed;
        if !completed = cfg.invocations then Sim.Ivar.fill all_done ();
        loop ()
      end
    in
    loop ()
  in
  for _ = 1 to cfg.client_threads do
    Sim.Engine.spawn engine ~name:"loadgen-worker" worker
  done;
  Sim.Ivar.read all_done;
  let wall = Sim.Engine.now engine -. !measure_started in
  let measured_ok = Stats.Summary.count latencies in
  {
    latencies;
    errors = !errors;
    wall_time = wall;
    throughput = (if wall > 0.0 then float_of_int measured_ok /. wall else 0.0);
    requests;
  }
