(** The burst-resiliency experiment of Figures 6-8.

    A continuous background stream (128 worker threads, 16 unique
    IO-bound functions, rate-throttled to 72 requests/s; each function
    blocks ~250 ms on an external HTTP endpoint) runs for the whole
    experiment. On top of it, a burst of concurrent invocations of one
    CPU-bound function (~150 ms of compute; a fresh function every
    burst) fires at a fixed period. The result records every request as
    a (send time, latency, ok) point — the figures' scatter data. *)

type config = {
  duration : float;  (** total simulated seconds *)
  background_threads : int;
  background_fns : int;
  background_rate : float;  (** requests per second *)
  io_url : string;  (** external endpoint the IO functions call *)
  burst_period : float;  (** 32 / 16 / 8 seconds *)
  burst_size : int;  (** concurrent requests per burst *)
  first_burst_at : float;
  cpu_ms : float;
  seed : int64;
}

val default : config
(** The paper's parameters with a 64-request burst every 32 s over a
    300 s run. *)

type result = {
  background : Stats.Series.t;
  bursts : Stats.Series.t;
  background_errors : int;
  burst_errors : int;
}

val run :
  invoke:(Controller.fn_spec -> (unit, string) Stdlib.result) -> config -> result
(** Blocking; call within a simulation process. The caller must have
    registered [io_url]'s external server (see
    {!Seuss.Osenv.register_host}) so the IO-bound functions can reach
    it. *)
