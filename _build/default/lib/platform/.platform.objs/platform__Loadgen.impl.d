lib/platform/loadgen.ml: Array Result Sim Stats
