lib/platform/workloads.mli: Baselines
