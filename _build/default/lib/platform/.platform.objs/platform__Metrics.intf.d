lib/platform/metrics.mli: Seuss
