lib/platform/burst.mli: Controller Stats Stdlib
