lib/platform/loadgen.mli: Stats Stdlib
