lib/platform/controller.ml: Baselines Seuss Sim Unikernel Workloads
