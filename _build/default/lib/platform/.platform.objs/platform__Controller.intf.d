lib/platform/controller.mli: Baselines Seuss Sim
