lib/platform/workloads.ml: Baselines Printf
