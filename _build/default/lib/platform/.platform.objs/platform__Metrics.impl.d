lib/platform/metrics.ml: Int64 List Printf Seuss Sim Stats
