lib/platform/burst.ml: Baselines Controller Printf Result Sim Stats Workloads
