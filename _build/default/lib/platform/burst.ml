type config = {
  duration : float;
  background_threads : int;
  background_fns : int;
  background_rate : float;
  io_url : string;
  burst_period : float;
  burst_size : int;
  first_burst_at : float;
  cpu_ms : float;
  seed : int64;
}

let default =
  {
    duration = 300.0;
    background_threads = 128;
    background_fns = 16;
    background_rate = 72.0;
    io_url = "http://io-server/block";
    burst_period = 32.0;
    burst_size = 64;
    first_burst_at = 8.0;
    cpu_ms = 150.0;
    seed = 42L;
  }

type result = {
  background : Stats.Series.t;
  bursts : Stats.Series.t;
  background_errors : int;
  burst_errors : int;
}

let run ~invoke cfg =
  let engine = Sim.Engine.self () in
  let rng = Sim.Prng.create cfg.seed in
  let t_end = Sim.Engine.now engine +. cfg.duration in
  let background = Stats.Series.create () in
  let bursts = Stats.Series.create () in
  let outstanding = ref 0 in
  let finished = Sim.Ivar.create () in
  let track f =
    incr outstanding;
    Sim.Engine.spawn engine (fun () ->
        f ();
        decr outstanding;
        if !outstanding = 0 && Sim.Engine.now engine >= t_end then
          ignore (Sim.Ivar.try_fill finished ()))
  in
  let record series spec =
    let sent = Sim.Engine.now engine in
    let outcome = invoke spec in
    let latency = Sim.Engine.now engine -. sent in
    Stats.Series.add series ~time:sent ~value:latency ~ok:(Result.is_ok outcome)
  in
  (* Background stream: a rate-limited token feed consumed by a pool of
     worker threads (at most [background_threads] in flight). *)
  let tokens = Sim.Channel.create () in
  track (fun () ->
      let interval = 1.0 /. cfg.background_rate in
      let rec feed () =
        if Sim.Engine.now engine < t_end then begin
          Sim.Channel.send tokens ();
          Sim.Engine.sleep interval;
          feed ()
        end
      in
      feed ());
  for _ = 1 to cfg.background_threads do
    track (fun () ->
        let rec work () =
          if Sim.Engine.now engine < t_end then begin
            match Sim.Channel.recv_timeout tokens ~timeout:1.0 with
            | None -> work ()
            | Some () ->
                let fn_index = Sim.Prng.int rng cfg.background_fns in
                record background
                  {
                    Controller.fn_id = Printf.sprintf "io-%d" fn_index;
                    action = Workloads.io_blocking ~url:cfg.io_url;
                  };
                work ()
          end
        in
        work ())
  done;
  (* Bursts: a fresh CPU-bound function per burst, all requests fired
     concurrently. *)
  track (fun () ->
      Sim.Engine.sleep cfg.first_burst_at;
      let rec fire n =
        if Sim.Engine.now engine +. 0.001 < t_end then begin
          let spec =
            {
              Controller.fn_id = Printf.sprintf "burst-%d" n;
              action = Baselines.Backend_intf.Cpu_ms cfg.cpu_ms;
            }
          in
          for _ = 1 to cfg.burst_size do
            track (fun () -> record bursts spec)
          done;
          Sim.Engine.sleep cfg.burst_period;
          fire (n + 1)
        end
      in
      fire 0);
  (* Wait for every spawned worker to drain. *)
  Sim.Ivar.read finished;
  {
    background;
    bursts;
    background_errors = Stats.Series.failures background;
    burst_errors = Stats.Series.failures bursts;
  }
