(** The paper's custom FaaS load-generation benchmark (§7).

    A trial has three parameters: invocation count (N), function set
    size (M) and worker threads (C). N invocations are distributed
    round-robin across the M functions, shuffled into a deterministic
    random send order (the paper persists its order for repeatability;
    we derive it from the seed). C workers pull one request at a time
    from the shared queue and issue synchronous invocations, so at most
    C requests are in flight. *)

type config = {
  invocations : int;  (** N *)
  fn_set_size : int;  (** M *)
  client_threads : int;  (** C *)
  seed : int64;
  warmup : int;
      (** requests at the head of the order excluded from the stats
          (lets throughput reach its stable point, as the paper's
          "until the measured throughput reaches stability") *)
}

type result = {
  latencies : Stats.Summary.t;  (** successful requests, seconds *)
  errors : int;
  wall_time : float;  (** simulated seconds for the measured portion *)
  throughput : float;  (** measured successful requests per second *)
  requests : Stats.Series.t;  (** every request: (send time, latency, ok) *)
}

val run :
  invoke:(fn_index:int -> (unit, string) Stdlib.result) -> config -> result
(** Execute a trial (blocking; call within a simulation process).
    [invoke] receives the function index in [\[0, fn_set_size)]. *)
