(** The paper's workload functions, in both representations: real MiniJS
    source for the SEUSS node (which actually imports, compiles and runs
    it) and a {!Baselines.Backend_intf.action} for the Linux container
    model. *)

val source_of_action : Baselines.Backend_intf.action -> string
(** MiniJS for the action. The NOP matches the paper's single-line
    JavaScript NOP; the CPU kernel occupies a core for the given
    milliseconds; the IO function performs a blocking [http_get]. *)

val nop : Baselines.Backend_intf.action

val cpu_burst : Baselines.Backend_intf.action
(** ~150 ms of compute (§7, burst experiments). *)

val io_blocking : url:string -> Baselines.Backend_intf.action
(** 250 ms blocking external call (§7, background stream). *)

val args_literal : string
(** The empty-argument payload used across experiments. *)
