type sample = {
  time : float;
  free_bytes : int64;
  idle_ucs : int;
  fn_snapshots : int;
  cold : int;
  warm : int;
  hot : int;
  errors : int;
}

type t = {
  node : Seuss.Node.t;
  interval : float;
  mutable rev_samples : sample list;
  stop_gate : unit Sim.Ivar.t;
}

let take t =
  let s = Seuss.Node.stats t.node in
  let engine = (Seuss.Node.env t.node).Seuss.Osenv.engine in
  t.rev_samples <-
    {
      time = Sim.Engine.now engine;
      free_bytes = Seuss.Node.free_bytes t.node;
      idle_ucs = Seuss.Node.idle_uc_count t.node;
      fn_snapshots = Seuss.Node.snapshot_count t.node;
      cold = s.Seuss.Node.cold;
      warm = s.Seuss.Node.warm;
      hot = s.Seuss.Node.hot;
      errors = s.Seuss.Node.errors;
    }
    :: t.rev_samples

let watch ~interval node =
  if interval <= 0.0 then invalid_arg "Metrics.watch: interval";
  let t = { node; interval; rev_samples = []; stop_gate = Sim.Ivar.create () } in
  let engine = (Seuss.Node.env node).Seuss.Osenv.engine in
  Sim.Engine.spawn engine ~name:"metrics-sampler" (fun () ->
      let rec loop () =
        if not (Sim.Ivar.is_full t.stop_gate) then begin
          take t;
          Sim.Engine.sleep t.interval;
          loop ()
        end
      in
      loop ());
  t

let stop t =
  if not (Sim.Ivar.is_full t.stop_gate) then begin
    take t;
    Sim.Ivar.fill t.stop_gate ()
  end;
  List.rev t.rev_samples

let render samples =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("t (s)", Stats.Tablefmt.Right);
          ("free MB", Stats.Tablefmt.Right);
          ("idle UCs", Stats.Tablefmt.Right);
          ("snapshots", Stats.Tablefmt.Right);
          ("cold", Stats.Tablefmt.Right);
          ("warm", Stats.Tablefmt.Right);
          ("hot", Stats.Tablefmt.Right);
          ("errors", Stats.Tablefmt.Right);
        ]
  in
  List.iter
    (fun s ->
      Stats.Tablefmt.add_row table
        [
          Printf.sprintf "%.1f" s.time;
          Printf.sprintf "%.0f" (Int64.to_float s.free_bytes /. 1048576.0);
          string_of_int s.idle_ucs;
          string_of_int s.fn_snapshots;
          string_of_int s.cold;
          string_of_int s.warm;
          string_of_int s.hot;
          string_of_int s.errors;
        ])
    samples;
  Stats.Tablefmt.render table
