let nop = Baselines.Backend_intf.Nop

let cpu_burst = Baselines.Backend_intf.Cpu_ms 150.0

let io_blocking ~url = Baselines.Backend_intf.Io_call (url, 0.250)

let args_literal = "{}"

let source_of_action = function
  | Baselines.Backend_intf.Nop -> "function main(args) { return {}; }"
  | Baselines.Backend_intf.Cpu_ms ms ->
      Printf.sprintf
        "function main(args) { work(%.3f); return {done: true}; }" ms
  | Baselines.Backend_intf.Io_call (url, _) ->
      Printf.sprintf
        "function main(args) { let body = http_get(\"%s\"); return {ok: \
         len(body) >= 0}; }"
        url
