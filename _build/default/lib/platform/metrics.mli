(** Periodic sampling of compute-node state over simulated time.

    A background process records a gauge snapshot at a fixed interval —
    free memory, cached snapshots, idle UCs, served paths — giving the
    burst and density experiments a time axis for resource behaviour
    (e.g. watching the OOM reclaimer hold the free-memory floor during a
    burst storm). *)

type sample = {
  time : float;
  free_bytes : int64;
  idle_ucs : int;
  fn_snapshots : int;
  cold : int;
  warm : int;
  hot : int;
  errors : int;
}

type t

val watch : interval:float -> Seuss.Node.t -> t
(** Spawn the sampler on the node's engine (call in-process). Sampling
    continues until {!stop}. *)

val stop : t -> sample list
(** End sampling; samples in time order. *)

val render : sample list -> string
(** A compact table: one row per sample. *)
