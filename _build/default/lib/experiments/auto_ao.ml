type component = {
  comp_name : string;
  inferred_ms : float;
  actual_ms : float;
  savings : string;
}

type result = { components : component list; max_relative_error : float }

(* The system of equations (see Unikernel.Gconst's interface):
     cold(no AO)   = cold_base + pool + send + compiler + exec
     cold(net AO)  = cold_base + compiler + exec
     cold(full AO) = cold_base
     warm(no AO)   = warm_base + send + exec
     warm(net AO)  = warm_base + exec
     warm(full AO) = warm_base
   which solves by differences. *)
let solve (t2 : Table2.result) =
  let send = t2.Table2.no_ao.Table2.warm_ms -. t2.Table2.network_ao.Table2.warm_ms in
  let exec = t2.Table2.network_ao.Table2.warm_ms -. t2.Table2.full_ao.Table2.warm_ms in
  let pool =
    t2.Table2.no_ao.Table2.cold_ms -. t2.Table2.network_ao.Table2.cold_ms -. send
  in
  let compiler =
    t2.Table2.network_ao.Table2.cold_ms -. t2.Table2.full_ao.Table2.cold_ms -. exec
  in
  (pool, send, compiler, exec)

let run ?(invocations = 20) ?(seed = 41L) () =
  let t2 = Table2.run ~invocations ~seed () in
  let pool, send, compiler, exec = solve t2 in
  let mk name inferred actual savings =
    { comp_name = name; inferred_ms = inferred; actual_ms = actual *. 1e3; savings }
  in
  let components =
    [
      mk "TCP buffer pool" pool Unikernel.Gconst.net_pool_init_time
        "cold only (warmed before the fn snapshot)";
      mk "TCP send path" send Unikernel.Gconst.net_send_init_time
        "cold and warm (first reply is post-capture)";
      mk "compiler tables" compiler Unikernel.Gconst.compiler_init_time
        "cold only (warmed before the fn snapshot)";
      mk "execution caches" exec Unikernel.Gconst.exec_init_time
        "cold and warm (first run is post-capture)";
    ]
  in
  let max_relative_error =
    List.fold_left
      (fun acc c ->
        Float.max acc (Float.abs (c.inferred_ms -. c.actual_ms) /. c.actual_ms))
      0.0 components
  in
  { components; max_relative_error }

let render r =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("Warmable component", Stats.Tablefmt.Left);
          ("Inferred", Stats.Tablefmt.Right);
          ("Actual", Stats.Tablefmt.Right);
          ("Priming accelerates", Stats.Tablefmt.Left);
        ]
  in
  List.iter
    (fun c ->
      Stats.Tablefmt.add_row table
        [
          c.comp_name;
          Printf.sprintf "%.1f ms" c.inferred_ms;
          Printf.sprintf "%.1f ms" c.actual_ms;
          c.savings;
        ])
    r.components;
  Printf.sprintf
    "%sBlack-box AO discovery (paper S9, tracing-free variant): first-use\n\
     costs recovered from cold/warm latencies across AO levels, checked\n\
     against the model's ground truth.\n%s\nmax relative error: %.1f%%\n"
    (Report.heading "Auto-AO: discovering what to prime")
    (Stats.Tablefmt.render table)
    (r.max_relative_error *. 100.0)
