(** Design-choice ablations called out in DESIGN.md (not in the paper's
    evaluation, but each isolates one mechanism the paper credits):

    - {b snapshot stacks off}: no function-specific snapshots, so every
      cache miss replays import+compile against the base snapshot;
    - {b hot cache off}: no idle-UC reuse, every repeat is a warm
      deploy;
    - {b shim bypass}: node-direct invocation, quantifying the hop the
      paper blames for losing 21% to Linux on hot paths;
    - {b specialized unikernel}: the §6-footnote alternative — a trimmed
      single-interpreter image. Boot and base-snapshot size shrink, but
      cold/warm paths are unchanged because snapshots already amortize
      the boot: the data behind the paper's "unintuitive" choice of a
      general-purpose unikernel. *)

type result = {
  warm_with_stacks_ms : float;
  miss_without_stacks_ms : float;  (** repeat-miss latency without fn snapshots *)
  hot_with_cache_ms : float;
  repeat_without_cache_ms : float;
  hot_direct_ms : float;
  hot_via_shim_ms : float;
  general_boot_s : float;  (** node start time, general-purpose image *)
  specialized_boot_s : float;
  general_base_mb : float;
  specialized_base_mb : float;
  general_cold_ms : float;
  specialized_cold_ms : float;
}

val run : ?invocations:int -> ?seed:int64 -> unit -> result

val render : result -> string
