(** Extension experiment (paper §9, future work): the distributed &
    replicated snapshot cache.

    A workload of unique functions arrives at an N-node cluster. With
    the global registry enabled, a function compiled anywhere is fetched
    (diff-only, over 10 GbE) by every other node that later needs it;
    disabled, every node pays its own full cold start. Measures
    mean miss latency, the fraction of misses served by fetch, and the
    bytes moved. *)

type result = {
  nodes : int;
  functions : int;
  with_registry_mean_miss : float;  (** seconds *)
  without_registry_mean_miss : float;
  remote_fetches : int;
  cluster_colds : int;
  bytes_transferred : int64;
}

val run : ?nodes:int -> ?functions:int -> ?seed:int64 -> unit -> result

val render : result -> string
