type entry = { label : string; paper : string; measured : string }

let heading title =
  Printf.sprintf "%s\n%s\n" title (String.make (String.length title) '=')

let comparison ~title ~note entries =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("Quantity", Stats.Tablefmt.Left);
          ("Paper", Stats.Tablefmt.Right);
          ("Measured", Stats.Tablefmt.Right);
        ]
  in
  List.iter
    (fun e -> Stats.Tablefmt.add_row table [ e.label; e.paper; e.measured ])
    entries;
  let body = Stats.Tablefmt.render table in
  if note = "" then Printf.sprintf "%s%s" (heading title) body
  else Printf.sprintf "%s%s\n%s" (heading title) note body

let ms seconds = Printf.sprintf "%.1f ms" (seconds *. 1e3)

let mb bytes = Printf.sprintf "%.1f MB" (Int64.to_float bytes /. 1048576.0)

let mb_of_pages pages = mb (Mem.Mconfig.bytes_of_pages pages)

let per_s v = Printf.sprintf "%.1f/s" v

let count n = string_of_int n

let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let write_csv ~path ~header rows =
  let oc = open_out path in
  let emit row = output_string oc (String.concat "," (List.map csv_field row) ^ "\n") in
  emit header;
  List.iter emit rows;
  close_out oc
