(** Table 3 — cache density limit and 16-way parallel creation rate for
    idle Node.js runtime environments across four isolation methods:
    Firecracker microVMs, Docker containers, Linux processes, and SEUSS
    UCs.

    Density: instances are deployed sequentially until the node's memory
    budget is exhausted. Creation rate: on a fresh node, 16 workers
    create instances in parallel; the rate is instances over elapsed
    simulated time. SEUSS creations are relayed through the shim, whose
    single TCP connection is the bottleneck the paper reports (128.6/s). *)

type row = {
  name : string;
  density : int;
  rate : float;  (** instances per second, 16-way parallel *)
  per_instance_bytes : int64;
}

type result = {
  firecracker : row;
  docker : row;
  process : row;
  seuss : row;
}

val run :
  ?budget_bytes:int64 ->
  ?rate_sample : int ->
  ?seed:int64 ->
  unit ->
  result
(** [budget_bytes] defaults to the paper's 88 GiB (the full-scale run
    takes a couple of minutes of host time); [rate_sample] caps the
    instances created during each rate measurement (default: the
    observed density, capped at 4000 for SEUSS whose shim-bound rate is
    constant). *)

val render : result -> string
