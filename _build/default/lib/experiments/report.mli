(** Shared rendering for the reproduction reports: every experiment
    prints the paper's value next to the measured one. *)

type entry = { label : string; paper : string; measured : string }

val comparison : title:string -> note:string -> entry list -> string
(** A titled paper-vs-measured table. *)

val ms : float -> string
(** Seconds rendered as milliseconds ("7.5 ms"). *)

val mb : int64 -> string
(** Bytes rendered as MB. *)

val mb_of_pages : int -> string

val per_s : float -> string

val count : int -> string

val heading : string -> string
(** Underlined section heading. *)

val write_csv : path:string -> header:string list -> string list list -> unit
(** Write rows as a CSV file (naive quoting: fields containing commas or
    quotes are double-quoted). Used by the CLI's [--csv-dir] option so
    figure data can be re-plotted with external tools. *)
