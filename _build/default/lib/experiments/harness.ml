let default_budget = Mem.Mconfig.default_budget_bytes

let run_sim ?(seed = 7L) body =
  let engine = Sim.Engine.create ~seed () in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"experiment" (fun () ->
      result := Some (body engine));
  Sim.Engine.run engine;
  match !result with
  | Some v -> v
  | None -> failwith "experiment did not complete"

let make_seuss_env ?(budget_bytes = default_budget) ?(io_delay = 0.25) engine =
  let env = Seuss.Osenv.create ~budget_bytes engine in
  let io_listener = Net.Tcp.listener ~port:80 in
  Net.Http.serve ~listener:io_listener (fun _ ->
      Sim.Engine.sleep io_delay;
      Net.Http.ok "OK");
  Seuss.Osenv.register_host env "http://io-server" io_listener;
  env

let seuss_node ?config env =
  let node = Seuss.Node.create ?config env in
  Seuss.Node.start node;
  node

let seuss_controller ?config env =
  let node = seuss_node ?config env in
  let shim = Seuss.Shim.create env node in
  (Platform.Controller.create env.Seuss.Osenv.engine
     (Platform.Controller.Seuss_backend shim),
   node)

let linux_controller ?config env =
  let node = Baselines.Linux_node.create ?config env in
  Baselines.Linux_node.start node;
  (Platform.Controller.create env.Seuss.Osenv.engine
     (Platform.Controller.Linux_backend node),
   node)
