(** Figures 6-8 — platform resiliency to request bursts.

    A background stream of IO-bound functions (128 threads, 16 functions
    blocking 250 ms on an external HTTP server, throttled to 72 req/s)
    runs continuously; bursts of one fresh CPU-bound function (~150 ms)
    arrive every 32 s (Fig. 6), 16 s (Fig. 7) or 8 s (Fig. 8). On Linux
    the stemcell cache is set to 256 (the paper re-enables it for this
    experiment). The result is the figures' scatter data: every request
    as (send time, latency, failed?). *)

type side = {
  background : Stats.Series.t;
  bursts : Stats.Series.t;
}

type result = {
  period : float;
  seuss : side;
  linux : side;
}

val run :
  ?period:float ->
  ?duration:float ->
  ?burst_size:int ->
  ?seed:int64 ->
  unit ->
  result
(** Defaults: 32 s period, 300 s duration, 64-request bursts. *)

val render : result -> string
(** Two log-scale scatter plots (Linux top, SEUSS bottom, like the
    figures) plus error counts. *)

val write_csv : path:string -> result -> unit
(** The raw scatter: backend, stream, send_time_s, latency_s, ok. *)
