type result = {
  nodes : int;
  functions : int;
  with_registry_mean_miss : float;
  without_registry_mean_miss : float;
  remote_fetches : int;
  cluster_colds : int;
  bytes_transferred : int64;
}

(* A realistically sized function (~80 helper functions): import and
   compile dominate its cold start, which is exactly the work a remote
   fetch skips. *)
let big_source =
  let buf = Buffer.create 4096 in
  for i = 0 to 79 do
    Buffer.add_string buf
      (Printf.sprintf
         "function helper%d(x) { return x * %d + hash(\"k%d\" + x); }\n" i
         (i + 1) i)
  done;
  Buffer.add_string buf
    "function main(args) { let acc = 0; acc = helper0(1) + helper79(2);      return {acc: acc}; }\n";
  Buffer.contents buf

let nop_fn i =
  {
    Seuss.Node.fn_id = Printf.sprintf "fn-%d" i;
    runtime = Unikernel.Image.Node;
    source = big_source;
  }

(* Every function is invoked once per node (round-robin routing sends
   consecutive calls to distinct nodes), so each function is a local
   miss [nodes] times: once compiled, then fetched or re-compiled. *)
let run ?(nodes = 4) ?(functions = 40) ?(seed = 29L) () =
  let gib = Int64.of_int (Mem.Mconfig.mib 1024) in
  let run_variant ~registry_enabled =
    Harness.run_sim ~seed (fun engine ->
        let cluster =
          Cluster.Drseuss.create ~nodes ~budget_per_node:(Int64.mul 6L gib)
            engine
        in
        let misses = Stats.Summary.create () in
        for i = 1 to functions do
          for _round = 1 to nodes do
            let t0 = Sim.Engine.now engine in
            let result, source =
              if registry_enabled then
                Cluster.Drseuss.invoke cluster (nop_fn i) ~args:"{}"
              else begin
                (* Bypass the registry: route round-robin manually. *)
                let members = Cluster.Drseuss.nodes cluster in
                let node = List.nth members (i * 31 mod nodes) in
                ignore node;
                Cluster.Drseuss.invoke_unregistered cluster (nop_fn i)
                  ~args:"{}"
              end
            in
            (match result with
            | Ok _ -> ()
            | Error _ -> failwith "drseuss experiment: invocation failed");
            (match source with
            | Cluster.Drseuss.Local _ -> () (* hot/warm repeat: not a miss *)
            | Cluster.Drseuss.Remote_fetch | Cluster.Drseuss.Cluster_cold ->
                Stats.Summary.add misses (Sim.Engine.now engine -. t0))
          done
        done;
        (Stats.Summary.mean misses, Cluster.Drseuss.stats cluster))
  in
  let with_mean, with_stats = run_variant ~registry_enabled:true in
  let without_mean, _ = run_variant ~registry_enabled:false in
  {
    nodes;
    functions;
    with_registry_mean_miss = with_mean;
    without_registry_mean_miss = without_mean;
    remote_fetches = with_stats.Cluster.Drseuss.remote_fetches;
    cluster_colds = with_stats.Cluster.Drseuss.cluster_colds;
    bytes_transferred = with_stats.Cluster.Drseuss.bytes_transferred;
  }

let render r =
  Report.comparison
    ~title:
      (Printf.sprintf
         "DR-SEUSS (extension): %d-node distributed snapshot cache" r.nodes)
    ~note:
      (Printf.sprintf
         "%d unique functions, each needed on every node. Paper (S9):\n\
          snapshots are \"read-only and deploy-anywhere\"; fetching a\n\
          function diff should beat replaying import+compile.\n"
         r.functions)
    [
      {
        Report.label = "mean miss latency, registry ON";
        paper = "< cold";
        measured = Report.ms r.with_registry_mean_miss;
      };
      {
        Report.label = "mean miss latency, registry OFF";
        paper = "(full cold start)";
        measured = Report.ms r.without_registry_mean_miss;
      };
      {
        Report.label = "misses served by remote fetch";
        paper = "-";
        measured =
          Printf.sprintf "%d of %d" r.remote_fetches
            (r.remote_fetches + r.cluster_colds);
      };
      {
        Report.label = "snapshot bytes moved";
        paper = "-";
        measured = Report.mb r.bytes_transferred;
      };
    ]
