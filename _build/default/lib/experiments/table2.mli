(** Table 2 — latency improvements across AO levels.

    Cold and warm NOP start latency under: no AO, network AO, and
    network + interpreter AO. Fresh node per cell (the base snapshot is
    captured under that AO level). *)

type cell = { cold_ms : float; warm_ms : float }

type result = {
  no_ao : cell;
  network_ao : cell;
  full_ao : cell;
}

val run : ?invocations:int -> ?seed:int64 -> unit -> result
(** Default 50 invocations per cell (means are tight: the simulation is
    deterministic up to scheduling). *)

val render : result -> string
