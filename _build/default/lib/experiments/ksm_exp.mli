(** Ablation: retroactive page dedup (KSM) vs snapshot stacks.

    §5 contrasts SEUSS's proactive, capture-time sharing with KSM's
    retroactive scanning (and its deduplication side channel). This
    experiment measures how far a generous `ksmd` closes the density gap
    for idle Node.js processes, and what it costs: scanning CPU and the
    lag before a new instance's pages are actually merged. *)

type result = {
  budget_bytes : int64;
  process_density : int;
  process_ksm_density : int;
  seuss_density : int;
  merged_pages : int;
  scan_cpu_seconds : float;  (** total core time the daemon burned *)
  merge_lag_seconds : float;
      (** time for one fresh instance's dedupable pages to merge *)
}

val run : ?budget_mib:int -> ?seed:int64 -> unit -> result

val render : result -> string
