(** Common experiment plumbing: build a simulated compute node (SEUSS or
    Linux), the external IO endpoint, and the platform stack around it,
    then run a body inside the simulation. One fresh deployment per
    trial, like the paper. *)

val run_sim : ?seed:int64 -> (Sim.Engine.t -> 'a) -> 'a
(** Spawn the body as a simulation process and drive the engine until it
    completes. *)

val make_seuss_env :
  ?budget_bytes:int64 -> ?io_delay:float -> Sim.Engine.t -> Seuss.Osenv.t
(** An 88 GB/16-core environment with the external blocking HTTP
    endpoint registered as ["http://io-server"]. *)

val seuss_node :
  ?config:Seuss.Config.t -> Seuss.Osenv.t -> Seuss.Node.t
(** Create and start a SEUSS node (blocking: boots the runtime). *)

val seuss_controller :
  ?config:Seuss.Config.t -> Seuss.Osenv.t -> Platform.Controller.t * Seuss.Node.t
(** Node + shim + OpenWhisk controller. *)

val linux_controller :
  ?config:Baselines.Linux_node.config ->
  Seuss.Osenv.t ->
  Platform.Controller.t * Baselines.Linux_node.t

val default_budget : int64
(** 88 GiB — the paper's compute node VM. *)
