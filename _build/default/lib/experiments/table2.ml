type cell = { cold_ms : float; warm_ms : float }

type result = { no_ao : cell; network_ao : cell; full_ao : cell }

let nop_source = Platform.Workloads.source_of_action Platform.Workloads.nop

let measure ~seed ~invocations ao =
  Harness.run_sim ~seed (fun engine ->
      let env =
        Harness.make_seuss_env
          ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 8192))
          engine
      in
      let config = { Seuss.Config.default with Seuss.Config.ao } in
      let node = Harness.seuss_node ~config env in
      let cold = Stats.Summary.create () and warm = Stats.Summary.create () in
      for i = 1 to invocations do
        let fn =
          {
            Seuss.Node.fn_id = Printf.sprintf "nop-%d" i;
            runtime = Unikernel.Image.Node;
            source = nop_source;
          }
        in
        let timed summary =
          let t0 = Sim.Engine.now engine in
          match Seuss.Node.invoke node fn ~args:"{}" with
          | Ok _, _ -> Stats.Summary.add summary (Sim.Engine.now engine -. t0)
          | Error _, _ -> failwith "Table2: invocation failed"
        in
        timed cold;
        Seuss.Node.drop_idle node ~fn_id:fn.Seuss.Node.fn_id;
        timed warm;
        Seuss.Node.drop_idle node ~fn_id:fn.Seuss.Node.fn_id
      done;
      {
        cold_ms = Stats.Summary.mean cold *. 1e3;
        warm_ms = Stats.Summary.mean warm *. 1e3;
      })

let run ?(invocations = 50) ?(seed = 7L) () =
  {
    no_ao = measure ~seed ~invocations Seuss.Config.Ao_none;
    network_ao = measure ~seed ~invocations Seuss.Config.Ao_network;
    full_ao = measure ~seed ~invocations Seuss.Config.Ao_full;
  }

let render r =
  let f = Printf.sprintf "%.1f ms" in
  Report.comparison ~title:"Table 2: latency across AO levels" ~note:""
    [
      { Report.label = "Cold start, no AO"; paper = "42.0 ms"; measured = f r.no_ao.cold_ms };
      { Report.label = "Cold start, network AO"; paper = "16.8 ms"; measured = f r.network_ao.cold_ms };
      { Report.label = "Cold start, network+interp AO"; paper = "7.5 ms"; measured = f r.full_ao.cold_ms };
      { Report.label = "Warm start, no AO"; paper = "7.6 ms"; measured = f r.no_ao.warm_ms };
      { Report.label = "Warm start, network AO"; paper = "5.5 ms"; measured = f r.network_ao.warm_ms };
      { Report.label = "Warm start, network+interp AO"; paper = "3.5 ms"; measured = f r.full_ao.warm_ms };
    ]
