(** Automatic anticipatory-optimization discovery (paper §9: "we are
    exploring the use of continuous hardware tracing along with machine
    learning to automatically identify optimization opportunities within
    snapshots").

    This analyzer needs no tracing at all: it treats the node as a black
    box, measures cold and warm NOP latency under the three AO levels,
    and solves the resulting linear system for the first-use cost of
    each warmable guest component — i.e. it recovers what priming each
    component is worth, which is exactly the decision AO needs. Because
    the reproduction knows the ground truth ({!Unikernel.Gconst}), the
    report shows inferred-vs-actual, validating the methodology. *)

type component = {
  comp_name : string;
  inferred_ms : float;  (** first-use cost recovered from latencies *)
  actual_ms : float;  (** the model's ground truth *)
  savings : string;  (** which paths priming it accelerates *)
}

type result = {
  components : component list;
  max_relative_error : float;
}

val run : ?invocations:int -> ?seed:int64 -> unit -> result

val render : result -> string
