lib/experiments/fig_burst.mli: Stats
