lib/experiments/fig5.ml: Harness List Platform Printf Report Stats
