lib/experiments/auto_ao.ml: Float List Printf Report Stats Table2 Unikernel
