lib/experiments/harness.ml: Baselines Mem Net Platform Seuss Sim
