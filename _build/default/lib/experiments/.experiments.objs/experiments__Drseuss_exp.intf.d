lib/experiments/drseuss_exp.mli:
