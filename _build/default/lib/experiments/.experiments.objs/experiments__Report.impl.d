lib/experiments/report.ml: Int64 List Mem Printf Stats String
