lib/experiments/table3.ml: Baselines Harness Int64 List Net Printf Report Seuss Sim Unikernel
