lib/experiments/fig4.ml: Float Harness List Platform Printf Report Stats
