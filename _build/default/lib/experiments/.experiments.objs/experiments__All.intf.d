lib/experiments/all.mli:
