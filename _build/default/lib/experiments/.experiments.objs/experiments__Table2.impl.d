lib/experiments/table2.ml: Harness Int64 Mem Platform Printf Report Seuss Sim Stats Unikernel
