lib/experiments/ksm_exp.ml: Baselines Harness Int64 Mem Option Printf Report Seuss Sim Unikernel
