lib/experiments/table1.ml: Harness Int64 Mem Option Platform Printf Report Seuss Sim Stats Unikernel
