lib/experiments/ablations.mli:
