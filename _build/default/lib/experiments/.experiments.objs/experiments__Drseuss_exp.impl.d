lib/experiments/drseuss_exp.ml: Buffer Cluster Harness Int64 List Mem Printf Report Seuss Sim Stats Unikernel
