lib/experiments/ksm_exp.mli:
