lib/experiments/all.ml: Ablations Auto_ao Buffer Drseuss_exp Fig4 Fig5 Fig_burst Int64 Ksm_exp List Mem Printf Table1 Table2 Table3
