lib/experiments/auto_ao.mli:
