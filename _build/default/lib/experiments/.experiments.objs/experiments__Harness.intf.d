lib/experiments/harness.mli: Baselines Platform Seuss Sim
