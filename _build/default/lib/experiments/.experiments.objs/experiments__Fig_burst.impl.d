lib/experiments/fig_burst.ml: Array Baselines Float Harness Platform Printf Report Stats
