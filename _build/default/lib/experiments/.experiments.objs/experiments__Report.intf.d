lib/experiments/report.mli:
