type result = {
  budget_bytes : int64;
  process_density : int;
  process_ksm_density : int;
  seuss_density : int;
  merged_pages : int;
  scan_cpu_seconds : float;
  merge_lag_seconds : float;
}

(* One idle Node.js process over a shared text image, as in
   [Process_backend] (same constants), but with its space exposed so KSM
   can enroll the private region. *)
let make_image env =
  let image_space = Mem.Addr_space.create env.Seuss.Osenv.frames in
  ignore
    (Mem.Addr_space.write_range image_space ~vpn:0
       ~pages:Baselines.Process_backend.shared_image_pages);
  Mem.Addr_space.freeze image_space;
  Mem.Addr_space.table image_space

let spawn_process env image =
  let space =
    Mem.Addr_space.of_table
      ~mapped_hint:Baselines.Process_backend.shared_image_pages
      env.Seuss.Osenv.frames image
  in
  try
    ignore
      (Mem.Addr_space.write_range space
         ~vpn:Baselines.Process_backend.shared_image_pages
         ~pages:Baselines.Process_backend.private_pages_per_process);
    Some space
  with Mem.Frame.Out_of_memory ->
    Mem.Addr_space.release space;
    None

let run ?(budget_mib = 3072) ?(seed = 37L) () =
  let budget_bytes = Int64.of_int (Mem.Mconfig.mib budget_mib) in
  let cap = 100_000 in
  (* Plain process density. *)
  let process_density =
    Harness.run_sim ~seed (fun engine ->
        let env = Seuss.Osenv.create ~budget_bytes engine in
        let image = make_image env in
        let n = ref 0 in
        while !n < cap && Option.is_some (spawn_process env image) do
          incr n
        done;
        !n)
  in
  (* With KSM: scan after each creation so merged frames free room for
     the next instance. *)
  let process_ksm_density, merged_pages, scan_cpu_seconds, merge_lag_seconds =
    Harness.run_sim ~seed (fun engine ->
        let env = Seuss.Osenv.create ~budget_bytes engine in
        let image = make_image env in
        let ksm = Baselines.Ksm.create env in
        let scan_cpu = ref 0.0 in
        (* Measure merge lag on the first instance via the daemon. *)
        let first = Option.get (spawn_process env image) in
        Baselines.Ksm.register ksm first
          ~private_base_vpn:Baselines.Process_backend.shared_image_pages
          ~private_pages:Baselines.Process_backend.private_pages_per_process;
        let stop = Sim.Ivar.create () in
        Baselines.Ksm.run_daemon ksm ~stop;
        let t0 = Sim.Engine.now engine in
        while Baselines.Ksm.pending_pages ksm > 0 do
          Sim.Engine.sleep 0.05
        done;
        let merge_lag = Sim.Engine.now engine -. t0 in
        Sim.Ivar.fill stop ();
        let n = ref 1 in
        let continue_ = ref true in
        while !n < cap && !continue_ do
          match spawn_process env image with
          | Some space ->
              incr n;
              Baselines.Ksm.register ksm space
                ~private_base_vpn:Baselines.Process_backend.shared_image_pages
                ~private_pages:
                  Baselines.Process_backend.private_pages_per_process;
              let t0 = Sim.Engine.now engine in
              ignore (Baselines.Ksm.scan_once ksm);
              scan_cpu := !scan_cpu +. (Sim.Engine.now engine -. t0)
          | None ->
              (* Let the scanner catch up once before giving up. *)
              if Baselines.Ksm.pending_pages ksm > 0 then
                ignore (Baselines.Ksm.scan_once ksm)
              else continue_ := false
        done;
        (!n, Baselines.Ksm.merged_pages ksm, !scan_cpu, merge_lag))
  in
  let seuss_density =
    Harness.run_sim ~seed (fun engine ->
        let env = Seuss.Osenv.create ~budget_bytes engine in
        let node = Harness.seuss_node env in
        let n = ref 0 in
        while !n < cap && Seuss.Node.deploy_idle node Unikernel.Image.Node do
          incr n
        done;
        !n)
  in
  {
    budget_bytes;
    process_density;
    process_ksm_density;
    seuss_density;
    merged_pages;
    scan_cpu_seconds;
    merge_lag_seconds;
  }

let render r =
  Report.comparison ~title:"Ablation: KSM (retroactive dedup) vs snapshot stacks"
    ~note:
      (Printf.sprintf
         "Idle Node.js instances in %s. KSM merges duplicate pages after\n\
          the fact; snapshot stacks never duplicate them (S5: sharing in\n\
          SEUSS \"is not applied retroactively\").\n"
         (Report.mb r.budget_bytes))
    [
      {
        Report.label = "process density, no KSM";
        paper = "-";
        measured = string_of_int r.process_density;
      };
      {
        Report.label = "process density, KSM";
        paper = "-";
        measured = string_of_int r.process_ksm_density;
      };
      {
        Report.label = "SEUSS UC density";
        paper = "-";
        measured = string_of_int r.seuss_density;
      };
      {
        Report.label = "pages merged by ksmd";
        paper = "-";
        measured = string_of_int r.merged_pages;
      };
      {
        Report.label = "scanning CPU burned";
        paper = "-";
        measured = Printf.sprintf "%.1f core-seconds" r.scan_cpu_seconds;
      };
      {
        Report.label = "merge lag for one fresh instance";
        paper = "-";
        measured = Printf.sprintf "%.2f s" r.merge_lag_seconds;
      };
    ]
