type panel = {
  set_size : int;
  seuss : Stats.Summary.digest;
  linux : Stats.Summary.digest;
  seuss_errors : int;
  linux_errors : int;
}

let run_side ~seed ~requests ~client_threads ~make_controller m =
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env engine in
      let controller = make_controller env in
      let warmup = min 256 (requests / 4) in
      let r =
        Platform.Loadgen.run
          ~invoke:(fun ~fn_index ->
            Platform.Controller.invoke controller
              {
                Platform.Controller.fn_id = Printf.sprintf "fn-%d" fn_index;
                action = Platform.Workloads.nop;
              })
          {
            Platform.Loadgen.invocations = requests + warmup;
            fn_set_size = m;
            client_threads;
            seed;
            warmup;
          }
      in
      let digest =
        if Stats.Summary.count r.Platform.Loadgen.latencies > 0 then
          Stats.Summary.digest r.Platform.Loadgen.latencies
        else
          {
            Stats.Summary.n = 0;
            mean = 0.0;
            p01 = 0.0;
            p25 = 0.0;
            p50 = 0.0;
            p75 = 0.0;
            p99 = 0.0;
            min = 0.0;
            max = 0.0;
          }
      in
      (digest, r.Platform.Loadgen.errors))

let run ?(set_sizes = [ 64; 2048; 65536 ]) ?(requests = 2048)
    ?(client_threads = 32) ?(seed = 23L) () =
  List.map
    (fun m ->
      let seuss, seuss_errors =
        run_side ~seed ~requests ~client_threads
          ~make_controller:(fun env -> fst (Harness.seuss_controller env))
          m
      in
      let linux, linux_errors =
        run_side ~seed ~requests ~client_threads
          ~make_controller:(fun env -> fst (Harness.linux_controller env))
          m
      in
      { set_size = m; seuss; linux; seuss_errors; linux_errors })
    set_sizes

let render panels =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("Set size", Stats.Tablefmt.Right);
          ("Backend", Stats.Tablefmt.Left);
          ("p1", Stats.Tablefmt.Right);
          ("p25", Stats.Tablefmt.Right);
          ("p50", Stats.Tablefmt.Right);
          ("p75", Stats.Tablefmt.Right);
          ("p99", Stats.Tablefmt.Right);
          ("mean", Stats.Tablefmt.Right);
          ("errors", Stats.Tablefmt.Right);
        ]
  in
  let row m name (d : Stats.Summary.digest) errors =
    let f v = Printf.sprintf "%.1f" (v *. 1e3) in
    Stats.Tablefmt.add_row table
      [
        string_of_int m;
        name;
        f d.Stats.Summary.p01;
        f d.Stats.Summary.p25;
        f d.Stats.Summary.p50;
        f d.Stats.Summary.p75;
        f d.Stats.Summary.p99;
        f d.Stats.Summary.mean;
        string_of_int errors;
      ]
  in
  List.iter
    (fun p ->
      row p.set_size "SEUSS" p.seuss p.seuss_errors;
      row p.set_size "Linux" p.linux p.linux_errors;
      Stats.Tablefmt.add_separator table)
    panels;
  Printf.sprintf
    "%s(latencies in ms)\n%s\nPaper shape: comparable at 64 functions (Linux \
     slightly ahead);\nLinux median and p99 explode once its container cache \
     saturates,\nwhile SEUSS stays in single-digit milliseconds.\n"
    (Report.heading "Figure 5: end-to-end latency percentiles")
    (Stats.Tablefmt.render table)

let write_csv ~path panels =
  let row m backend (d : Stats.Summary.digest) errors =
    let f v = Printf.sprintf "%.2f" (v *. 1e3) in
    [
      string_of_int m; backend;
      f d.Stats.Summary.p01; f d.Stats.Summary.p25; f d.Stats.Summary.p50;
      f d.Stats.Summary.p75; f d.Stats.Summary.p99; f d.Stats.Summary.mean;
      string_of_int errors;
    ]
  in
  Report.write_csv ~path
    ~header:
      [ "set_size"; "backend"; "p1_ms"; "p25_ms"; "p50_ms"; "p75_ms";
        "p99_ms"; "mean_ms"; "errors" ]
    (List.concat_map
       (fun p ->
         [
           row p.set_size "seuss" p.seuss p.seuss_errors;
           row p.set_size "linux" p.linux p.linux_errors;
         ])
       panels)
