(** Figure 5 — end-to-end request latency percentiles (1st / 25th / 50th
    / 75th / 99th and mean) of NOP invocations at three function set
    sizes, on both backends.

    The paper's panels use 64 (cache-friendly), 2048 (Linux cache
    saturated) and 65536 (all-unique). At 65536, every send is a unique
    function, so the trial does not need 65536 requests to be in the
    all-cold regime. *)

type panel = {
  set_size : int;
  seuss : Stats.Summary.digest;
  linux : Stats.Summary.digest;
  seuss_errors : int;
  linux_errors : int;
}

val run :
  ?set_sizes:int list ->
  ?requests:int ->
  ?client_threads:int ->
  ?seed:int64 ->
  unit ->
  panel list
(** Defaults: sizes [64; 2048; 65536], 2048 measured requests each. *)

val render : panel list -> string

val write_csv : path:string -> panel list -> unit
(** Columns: set_size, backend, p1..p99, mean, errors (ms). *)
