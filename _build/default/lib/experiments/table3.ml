type row = {
  name : string;
  density : int;
  rate : float;
  per_instance_bytes : int64;
}

type result = { firecracker : row; docker : row; process : row; seuss : row }

let fill ~cap create =
  let n = ref 0 in
  while !n < cap && create () do
    incr n
  done;
  !n

let parallel_rate ~count create =
  let engine = Sim.Engine.self () in
  let started = Sim.Engine.now engine in
  let created = ref 0 and stopped = ref false in
  let done_ = Sim.Ivar.create () in
  let workers = ref 16 in
  for _ = 1 to 16 do
    Sim.Engine.spawn engine ~name:"creator" (fun () ->
        let rec go () =
          if !created < count && not !stopped then
            if create () then begin
              incr created;
              go ()
            end
            else stopped := true
        in
        go ();
        decr workers;
        if !workers = 0 then Sim.Ivar.fill done_ ())
  done;
  Sim.Ivar.read done_;
  let elapsed = Sim.Engine.now engine -. started in
  if elapsed <= 0.0 then 0.0 else float_of_int !created /. elapsed

let density_cap = 200_000

(* Each measurement runs on a fresh node, like the paper's trials. *)
let measure_backend ~seed ~budget_bytes ~rate_sample ~name make =
  let density =
    Harness.run_sim ~seed (fun engine ->
        let env = Seuss.Osenv.create ~budget_bytes engine in
        let create = make env in
        fill ~cap:density_cap create)
  in
  let sample =
    match rate_sample with Some n -> min n density | None -> density
  in
  let rate =
    Harness.run_sim ~seed (fun engine ->
        let env = Seuss.Osenv.create ~budget_bytes engine in
        let create = make env in
        parallel_rate ~count:sample create)
  in
  {
    name;
    density;
    rate;
    per_instance_bytes =
      (if density = 0 then 0L
       else Int64.div budget_bytes (Int64.of_int density));
  }

let run ?(budget_bytes = Harness.default_budget) ?rate_sample ?(seed = 13L) ()
    =
  let firecracker =
    measure_backend ~seed ~budget_bytes ~rate_sample ~name:"Firecracker microVM"
      (fun env ->
        let b =
          Baselines.Firecracker_backend.backend
            (Baselines.Firecracker_backend.create env)
        in
        b.Baselines.Backend_intf.create_instance)
  in
  let docker =
    measure_backend ~seed ~budget_bytes ~rate_sample
      ~name:"Docker w/ overlay2 fs" (fun env ->
        let bridge =
          Net.Bridge.create ~rng:(Sim.Prng.split env.Seuss.Osenv.rng) ()
        in
        let b =
          Baselines.Docker_backend.backend
            (Baselines.Docker_backend.create env bridge)
        in
        b.Baselines.Backend_intf.create_instance)
  in
  let process =
    measure_backend ~seed ~budget_bytes ~rate_sample ~name:"Linux process"
      (fun env ->
        let b =
          Baselines.Process_backend.backend
            (Baselines.Process_backend.create env)
        in
        b.Baselines.Backend_intf.create_instance)
  in
  let seuss_rate_sample =
    match rate_sample with Some n -> Some n | None -> Some 4_000
  in
  let seuss =
    measure_backend ~seed ~budget_bytes ~rate_sample:seuss_rate_sample
      ~name:"SEUSS UC" (fun env ->
        let node = Harness.seuss_node env in
        let shim = Seuss.Shim.create env node in
        fun () -> Seuss.Shim.deploy_idle shim Unikernel.Image.Node)
  in
  { firecracker; docker; process; seuss }

let paper_rows =
  [
    ("Firecracker microVM", "450", "1.3/s");
    ("Docker w/ overlay2 fs", "3000", "5.3/s");
    ("Linux process", "4200", "45/s");
    ("SEUSS UC", "54000", "128.6/s");
  ]

let render r =
  let entries =
    List.concat_map
      (fun row ->
        let paper_density, paper_rate =
          match List.assoc_opt row.name (List.map (fun (a, b, c) -> (a, (b, c))) paper_rows) with
          | Some p -> p
          | None -> ("?", "?")
        in
        [
          {
            Report.label = row.name ^ " — cache density";
            paper = paper_density;
            measured =
              Printf.sprintf "%d (%s each)" row.density
                (Report.mb row.per_instance_bytes);
          };
          {
            Report.label = row.name ^ " — creation rate";
            paper = paper_rate;
            measured = Report.per_s row.rate;
          };
        ])
      [ r.firecracker; r.docker; r.process; r.seuss ]
  in
  Report.comparison
    ~title:"Table 3: cache density and 16-way parallel creation rate"
    ~note:
      "Idle Node.js runtime environments on an 88 GB / 16-VCPU node.\n\
       SEUSS creations relayed through the shim (its single TCP\n\
       connection bounds the rate, as in the paper).\n"
    entries
