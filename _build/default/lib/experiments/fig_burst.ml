type side = { background : Stats.Series.t; bursts : Stats.Series.t }

type result = { period : float; seuss : side; linux : side }

let burst_config ~period ~duration ~burst_size ~seed =
  {
    Platform.Burst.default with
    Platform.Burst.burst_period = period;
    duration;
    burst_size;
    seed;
  }

let run_side ~cfg ~seed ~make_controller =
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env engine in
      let controller = make_controller env in
      let r =
        Platform.Burst.run
          ~invoke:(fun spec -> Platform.Controller.invoke controller spec)
          cfg
      in
      {
        background = r.Platform.Burst.background;
        bursts = r.Platform.Burst.bursts;
      })

let run ?(period = 32.0) ?(duration = 300.0) ?(burst_size = 64) ?(seed = 31L)
    () =
  let cfg = burst_config ~period ~duration ~burst_size ~seed in
  let seuss =
    run_side ~cfg ~seed ~make_controller:(fun env ->
        fst (Harness.seuss_controller env))
  in
  let linux_config =
    { Baselines.Linux_node.default_config with
      Baselines.Linux_node.stemcell_count = 256 }
  in
  let linux =
    run_side ~cfg ~seed ~make_controller:(fun env ->
        fst (Harness.linux_controller ~config:linux_config env))
  in
  { period; seuss; linux }

let scatter ~title side =
  let plot =
    Stats.Asciiplot.create ~yscale:Stats.Asciiplot.Log ~height:16 ~title
      ~xlabel:"request send time (s)" ~ylabel:"latency (s)" ()
  in
  let split series =
    Array.fold_left
      (fun (ok, bad) p ->
        let pt = (p.Stats.Series.time, Float.max 1e-4 p.Stats.Series.value) in
        if p.Stats.Series.ok then (pt :: ok, bad) else (ok, pt :: bad))
      ([], [])
      (Stats.Series.points series)
  in
  let bg_ok, bg_bad = split side.background in
  let b_ok, b_bad = split side.bursts in
  Stats.Asciiplot.add_series plot ~label:"background (IO-bound)" ~mark:'.' bg_ok;
  Stats.Asciiplot.add_series plot ~label:"burst (CPU-bound)" ~mark:'o' b_ok;
  Stats.Asciiplot.add_series plot ~label:"failed requests" ~mark:'x'
    (bg_bad @ b_bad);
  Stats.Asciiplot.render plot

let render r =
  let errors side =
    Stats.Series.failures side.background + Stats.Series.failures side.bursts
  in
  let count side =
    Stats.Series.length side.background + Stats.Series.length side.bursts
  in
  Printf.sprintf
    "%s\n%s\n%s\nLinux:  %d requests, %d failed\nSEUSS:  %d requests, %d \
     failed\nPaper shape: Linux errors once its container cache saturates \
     and\nshows 10-60 s cold starts; SEUSS serves every request with the\n\
     background stream barely disturbed.\n"
    (Report.heading
       (Printf.sprintf "Figures 6-8: burst every %.0f s" r.period))
    (scatter ~title:"Linux node" r.linux)
    (scatter ~title:"SEUSS node" r.seuss)
    (count r.linux) (errors r.linux) (count r.seuss) (errors r.seuss)

let write_csv ~path r =
  let rows_of backend stream series =
    Array.to_list
      (Array.map
         (fun p ->
           [
             backend;
             stream;
             Printf.sprintf "%.4f" p.Stats.Series.time;
             Printf.sprintf "%.5f" p.Stats.Series.value;
             (if p.Stats.Series.ok then "1" else "0");
           ])
         (Stats.Series.points series))
  in
  Report.write_csv ~path
    ~header:[ "backend"; "stream"; "send_time_s"; "latency_s"; "ok" ]
    (rows_of "linux" "background" r.linux.background
    @ rows_of "linux" "burst" r.linux.bursts
    @ rows_of "seuss" "background" r.seuss.background
    @ rows_of "seuss" "burst" r.seuss.bursts)
