type result = {
  warm_with_stacks_ms : float;
  miss_without_stacks_ms : float;
  hot_with_cache_ms : float;
  repeat_without_cache_ms : float;
  hot_direct_ms : float;
  hot_via_shim_ms : float;
  general_boot_s : float;
  specialized_boot_s : float;
  general_base_mb : float;
  specialized_base_mb : float;
  general_cold_ms : float;
  specialized_cold_ms : float;
}

let nop_source = Platform.Workloads.source_of_action Platform.Workloads.nop

let nop_fn i =
  {
    Seuss.Node.fn_id = Printf.sprintf "nop-%d" i;
    runtime = Unikernel.Image.Node;
    source = nop_source;
  }

let budget = Int64.of_int (Mem.Mconfig.mib 8192)

(* Mean latency of the *second* invocation of each function with the
   idle cache disabled (isolates hot-cache value) or with function
   snapshots disabled (isolates snapshot-stack value). *)
let repeat_latency ~seed ~invocations config =
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env ~budget_bytes:budget engine in
      let node = Harness.seuss_node ~config env in
      let s = Stats.Summary.create () in
      for i = 1 to invocations do
        let fn = nop_fn i in
        (match Seuss.Node.invoke node fn ~args:"{}" with
        | Ok _, _ -> ()
        | Error _, _ -> failwith "ablation: first invocation failed");
        if config.Seuss.Config.cache_idle_ucs then
          Seuss.Node.drop_idle node ~fn_id:fn.Seuss.Node.fn_id;
        let t0 = Sim.Engine.now engine in
        (match Seuss.Node.invoke node fn ~args:"{}" with
        | Ok _, _ -> Stats.Summary.add s (Sim.Engine.now engine -. t0)
        | Error _, _ -> failwith "ablation: repeat invocation failed");
        Seuss.Node.drop_idle node ~fn_id:fn.Seuss.Node.fn_id
      done;
      Stats.Summary.mean s *. 1e3)

(* Hot latency with the idle cache on: invoke twice, time the second. *)
let hot_latency ~seed ~invocations ~via_shim =
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env ~budget_bytes:budget engine in
      let node = Harness.seuss_node env in
      let shim = Seuss.Shim.create env node in
      let invoke fn =
        if via_shim then fst (Seuss.Shim.invoke shim fn ~args:"{}")
        else fst (Seuss.Node.invoke node fn ~args:"{}")
      in
      let s = Stats.Summary.create () in
      for i = 1 to invocations do
        let fn = nop_fn i in
        (match invoke fn with
        | Ok _ -> ()
        | Error _ -> failwith "ablation: warmup failed");
        let t0 = Sim.Engine.now engine in
        (match invoke fn with
        | Ok _ -> Stats.Summary.add s (Sim.Engine.now engine -. t0)
        | Error _ -> failwith "ablation: hot invocation failed");
        Seuss.Node.drop_idle node ~fn_id:fn.Seuss.Node.fn_id
      done;
      Stats.Summary.mean s *. 1e3)

(* Boot-to-ready time, base snapshot size, and a cold start for one
   image choice. *)
let image_profile ~seed image =
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env ~budget_bytes:budget engine in
      let config =
        { Seuss.Config.default with Seuss.Config.runtimes = [ image ] }
      in
      let t0 = Sim.Engine.now engine in
      let node = Harness.seuss_node ~config env in
      let boot = Sim.Engine.now engine -. t0 in
      let base =
        Option.get
          (Seuss.Node.base_snapshot node image.Unikernel.Image.runtime)
      in
      let base_mb =
        Int64.to_float (Seuss.Snapshot.total_bytes base) /. 1048576.0
      in
      let t1 = Sim.Engine.now engine in
      (match Seuss.Node.invoke node (nop_fn 0) ~args:"{}" with
      | Ok _, _ -> ()
      | Error _, _ -> failwith "ablation: cold invocation failed");
      let cold = (Sim.Engine.now engine -. t1) *. 1e3 in
      (boot, base_mb, cold))

let run ?(invocations = 30) ?(seed = 17L) () =
  let default = Seuss.Config.default in
  let warm_with_stacks_ms =
    repeat_latency ~seed ~invocations
      { default with Seuss.Config.cache_idle_ucs = true }
  in
  let miss_without_stacks_ms =
    repeat_latency ~seed ~invocations
      {
        default with
        Seuss.Config.cache_function_snapshots = false;
        cache_idle_ucs = false;
      }
  in
  let repeat_without_cache_ms =
    repeat_latency ~seed ~invocations
      { default with Seuss.Config.cache_idle_ucs = false }
  in
  let hot_with_cache_ms = hot_latency ~seed ~invocations ~via_shim:false in
  let hot_via_shim_ms = hot_latency ~seed ~invocations ~via_shim:true in
  let general_boot_s, general_base_mb, general_cold_ms =
    image_profile ~seed Unikernel.Image.node
  in
  let specialized_boot_s, specialized_base_mb, specialized_cold_ms =
    image_profile ~seed Unikernel.Image.specialized_node
  in
  {
    warm_with_stacks_ms;
    miss_without_stacks_ms;
    hot_with_cache_ms;
    repeat_without_cache_ms;
    hot_direct_ms = hot_with_cache_ms;
    hot_via_shim_ms;
    general_boot_s;
    specialized_boot_s;
    general_base_mb;
    specialized_base_mb;
    general_cold_ms;
    specialized_cold_ms;
  }

let render r =
  let f = Printf.sprintf "%.1f ms" in
  Report.comparison ~title:"Ablations: what each mechanism buys"
    ~note:
      "Second invocation of a function under selectively disabled\n\
       mechanisms (node-side unless noted).\n"
    [
      {
        Report.label = "repeat miss, snapshot stacks ON (warm)";
        paper = "3.5 ms";
        measured = f r.warm_with_stacks_ms;
      };
      {
        Report.label = "repeat miss, snapshot stacks OFF (re-cold)";
        paper = "-";
        measured = f r.miss_without_stacks_ms;
      };
      {
        Report.label = "repeat, idle-UC cache ON (hot)";
        paper = "0.8 ms";
        measured = f r.hot_with_cache_ms;
      };
      {
        Report.label = "repeat, idle-UC cache OFF (warm)";
        paper = "-";
        measured = f r.repeat_without_cache_ms;
      };
      {
        Report.label = "hot invocation, node-direct";
        paper = "-";
        measured = f r.hot_direct_ms;
      };
      {
        Report.label = "hot invocation, through the shim";
        paper = "+~8 ms vs direct";
        measured = f r.hot_via_shim_ms;
      };
      {
        Report.label = "node boot, general-purpose unikernel";
        paper = "(seconds; once per node)";
        measured = Printf.sprintf "%.2f s" r.general_boot_s;
      };
      {
        Report.label = "node boot, specialized unikernel";
        paper = "-";
        measured = Printf.sprintf "%.2f s" r.specialized_boot_s;
      };
      {
        Report.label = "base snapshot, general-purpose";
        paper = "109.6 MB";
        measured = Printf.sprintf "%.1f MB" r.general_base_mb;
      };
      {
        Report.label = "base snapshot, specialized";
        paper = "-";
        measured = Printf.sprintf "%.1f MB" r.specialized_base_mb;
      };
      {
        Report.label = "cold start, general-purpose";
        paper = "7.5 ms";
        measured = f r.general_cold_ms;
      };
      {
        Report.label = "cold start, specialized (same snapshots)";
        paper = "~= general";
        measured = f r.specialized_cold_ms;
      };
    ]
