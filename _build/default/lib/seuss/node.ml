type fn = {
  fn_id : string;
  runtime : Unikernel.Image.runtime;
  source : string;
}

type path = Cold | Warm | Hot

type invoke_error =
  [ `Compile_error of string
  | `Runtime_error of string
  | `Timeout
  | `No_runtime
  | `Overloaded ]

type stats = {
  cold : int;
  warm : int;
  hot : int;
  errors : int;
  reclaimed_ucs : int;
  snapshots_captured : int;
}

type t = {
  node_env : Osenv.t;
  cfg : Config.t;
  mutable bases : (Unikernel.Image.runtime * Snapshot.t) list;
  fn_snapshots : (string, Snapshot.t) Hashtbl.t;
  (* Insertion order of function snapshots, for bounded-cache eviction. *)
  snap_order : string Queue.t;
  idle : (string, Uc.t Queue.t) Hashtbl.t;
  (* FIFO of (fn_id, uc) for oldest-first reclamation; entries go stale
     when a UC is taken for a hot invocation, so consumers re-validate. *)
  idle_order : (string * Uc.t) Queue.t;
  mutable idle_total : int;
  mutable s_cold : int;
  mutable s_warm : int;
  mutable s_hot : int;
  mutable s_errors : int;
  mutable s_reclaimed : int;
  mutable s_captured : int;
  mutable last_uc : Uc.t option;
}

let create ?(config = Config.default) node_env =
  {
    node_env;
    cfg = config;
    bases = [];
    fn_snapshots = Hashtbl.create 1024;
    snap_order = Queue.create ();
    idle = Hashtbl.create 1024;
    idle_order = Queue.create ();
    idle_total = 0;
    s_cold = 0;
    s_warm = 0;
    s_hot = 0;
    s_errors = 0;
    s_reclaimed = 0;
    s_captured = 0;
    last_uc = None;
  }

let config t = t.cfg
let env t = t.node_env

let free_bytes t = Mem.Frame.free_bytes t.node_env.Osenv.frames

let base_snapshot t runtime = List.assoc_opt runtime t.bases

let function_snapshot t fn_id = Hashtbl.find_opt t.fn_snapshots fn_id

let snapshot_count t = Hashtbl.length t.fn_snapshots

let snapshot_inventory t =
  Hashtbl.fold (fun fn_id snap acc -> (fn_id, snap) :: acc) t.fn_snapshots []

(* Keep the snapshot cache within its configured bound: walk the
   insertion order looking for a snapshot that is safe to delete (§6: no
   dependents). Entries whose snapshot is still in use are requeued. *)
let evict_snapshots_if_needed t =
  let attempts = ref (Queue.length t.snap_order) in
  while
    Hashtbl.length t.fn_snapshots >= t.cfg.Config.max_function_snapshots
    && !attempts > 0
  do
    decr attempts;
    match Queue.take_opt t.snap_order with
    | None -> attempts := 0
    | Some fn_id -> (
        match Hashtbl.find_opt t.fn_snapshots fn_id with
        | None -> () (* stale entry *)
        | Some snap ->
            if Snapshot.try_delete ~env:t.node_env snap then
              Hashtbl.remove t.fn_snapshots fn_id
            else Queue.add fn_id t.snap_order)
  done

let install_snapshot t ~fn_id snap =
  if Hashtbl.mem t.fn_snapshots fn_id then
    ignore (Snapshot.try_delete ~env:t.node_env snap)
  else begin
    evict_snapshots_if_needed t;
    Hashtbl.replace t.fn_snapshots fn_id snap;
    Queue.add fn_id t.snap_order;
    t.s_captured <- t.s_captured + 1
  end

let idle_uc_count t = t.idle_total

let idle_ucs t =
  Hashtbl.fold
    (fun _ q acc -> Queue.fold (fun acc uc -> uc :: acc) acc q)
    t.idle []

let stats t =
  {
    cold = t.s_cold;
    warm = t.s_warm;
    hot = t.s_hot;
    errors = t.s_errors;
    reclaimed_ucs = t.s_reclaimed;
    snapshots_captured = t.s_captured;
  }

(* {1 Idle-UC cache} *)

let push_idle t fn_id uc =
  if t.cfg.Config.cache_idle_ucs && Uc.status uc = Uc.Running then begin
    Uc.touch_lru uc;
    let q =
      match Hashtbl.find_opt t.idle fn_id with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.replace t.idle fn_id q;
          q
    in
    Queue.add uc q;
    Queue.add (fn_id, uc) t.idle_order;
    t.idle_total <- t.idle_total + 1
  end
  else Uc.destroy uc

let pop_idle t fn_id =
  match Hashtbl.find_opt t.idle fn_id with
  | None -> None
  | Some q ->
      let rec take () =
        match Queue.take_opt q with
        | None -> None
        | Some uc ->
            t.idle_total <- t.idle_total - 1;
            if Uc.status uc = Uc.Running then Some uc else take ()
      in
      take ()

let drop_idle t ~fn_id =
  match Hashtbl.find_opt t.idle fn_id with
  | None -> ()
  | Some q ->
      Queue.iter
        (fun uc ->
          if Uc.status uc = Uc.Running then Uc.destroy uc;
          t.idle_total <- t.idle_total - 1)
        q;
      Queue.clear q

(* The paper's trivial OOM daemon: reclaim idle UCs, oldest first, while
   free memory sits below the headroom. *)
let reclaim_idle_ucs t =
  let reclaimed = ref 0 in
  let continue_ () =
    Int64.compare (free_bytes t) t.cfg.Config.oom_headroom_bytes < 0
    && not (Queue.is_empty t.idle_order)
  in
  while continue_ () do
    let fn_id, uc = Queue.take t.idle_order in
    Osenv.burn t.node_env Cost.oom_scan;
    (* Skip stale entries: the UC may have been taken hot or destroyed. *)
    match Hashtbl.find_opt t.idle fn_id with
    | Some q when Queue.fold (fun found u -> found || u == uc) false q ->
        let fresh = Queue.create () in
        Queue.iter (fun u -> if u != uc then Queue.add u fresh) q;
        Hashtbl.replace t.idle fn_id fresh;
        t.idle_total <- t.idle_total - 1;
        if Uc.status uc = Uc.Running then begin
          Uc.destroy uc;
          incr reclaimed;
          t.s_reclaimed <- t.s_reclaimed + 1
        end
    | _ -> ()
  done;
  !reclaimed

(* {1 Node startup: boot, AO, base snapshot capture} *)

let apply_ao t uc =
  let timeout = t.cfg.Config.invoke_timeout in
  match t.cfg.Config.ao with
  | Config.Ao_none ->
      (* Capture right at driver start: no connection has ever touched
         this guest. *)
      `Capture_now
  | (Config.Ao_network | Config.Ao_full) as level ->
      Uc.resume uc;
      if not (Uc.connect uc) then `Failed "AO: cannot connect"
      else begin
        let ao_request cmd label =
          match Uc.request uc cmd ~timeout with
          | Ok (Unikernel.Driver.Ok_reply _) -> Ok ()
          | Ok (Unikernel.Driver.Err_reply m) ->
              Error (Printf.sprintf "AO %s failed: %s" label m)
          | Ok Unikernel.Driver.Pong -> Ok ()
          | Error _ -> Error (Printf.sprintf "AO %s failed" label)
        in
        let result =
          match ao_request Unikernel.Driver.Warm_net "network" with
          | Error _ as e -> e
          | Ok () ->
              if level = Config.Ao_full then
                ao_request Unikernel.Driver.Warm_exec "interpreter"
              else Ok ()
        in
        match result with
        | Error msg -> `Failed msg
        | Ok () -> (
            ignore (Uc.send uc Unikernel.Driver.Checkpoint);
            match Uc.await_breakpoint uc ~timeout with
            | Some "checkpoint" -> `Capture_now
            | Some other -> `Failed ("unexpected breakpoint: " ^ other)
            | None -> `Failed "checkpoint timeout")
      end

let start t =
  List.iter
    (fun image ->
      let uc = Uc.boot t.node_env image in
      match Uc.await_breakpoint uc ~timeout:60.0 with
      | Some "driver-started" -> (
          match apply_ao t uc with
          | `Capture_now ->
              let name =
                Printf.sprintf "%s-base"
                  (Unikernel.Image.runtime_name image.Unikernel.Image.runtime)
              in
              let snap = Uc.capture uc ~env:t.node_env ~name in
              t.bases <- (image.Unikernel.Image.runtime, snap) :: t.bases;
              Uc.resume uc;
              Uc.destroy uc
          | `Failed msg -> failwith ("Node.start: " ^ msg))
      | Some other -> failwith ("Node.start: unexpected breakpoint " ^ other)
      | None -> failwith "Node.start: boot timeout")
    t.cfg.Config.runtimes

(* {1 Invocation paths} *)

let headroom_check t =
  if Int64.compare (free_bytes t) t.cfg.Config.oom_headroom_bytes < 0 then
    ignore (reclaim_idle_ucs t)

let run_on_uc t uc ~args =
  match
    Uc.request uc (Unikernel.Driver.Run args) ~timeout:t.cfg.Config.invoke_timeout
  with
  | Ok (Unikernel.Driver.Ok_reply result) -> Ok result
  | Ok (Unikernel.Driver.Err_reply msg) -> Error (`Runtime_error msg)
  | Ok Unikernel.Driver.Pong -> Error (`Runtime_error "protocol confusion")
  | Error `Timeout -> Error `Timeout
  | Error (`Closed | `No_connection) -> Error `Timeout

let finish t fn uc result =
  t.last_uc <- Some uc;
  (match result with
  | Ok _ -> push_idle t fn.fn_id uc
  | Error _ ->
      t.s_errors <- t.s_errors + 1;
      Uc.destroy uc);
  result

let warm_invoke t fn snap ~args =
  Sim.Trace.mark "node.path warm";
  headroom_check t;
  match Uc.deploy t.node_env snap with
  | exception Mem.Frame.Out_of_memory ->
      ignore (reclaim_idle_ucs t);
      t.s_errors <- t.s_errors + 1;
      Error `Overloaded
  | uc ->
      if not (Uc.connect uc) then begin
        Uc.destroy uc;
        t.s_errors <- t.s_errors + 1;
        Error `Timeout
      end
      else finish t fn uc (run_on_uc t uc ~args)

let cold_invoke t fn ~args =
  Sim.Trace.mark "node.path cold";
  match base_snapshot t fn.runtime with
  | None ->
      t.s_errors <- t.s_errors + 1;
      Error `No_runtime
  | Some base -> (
      headroom_check t;
      match Uc.deploy t.node_env base with
      | exception Mem.Frame.Out_of_memory ->
          ignore (reclaim_idle_ucs t);
          t.s_errors <- t.s_errors + 1;
          Error `Overloaded
      | uc ->
          if not (Uc.connect uc) then begin
            Uc.destroy uc;
            t.s_errors <- t.s_errors + 1;
            Error `Timeout
          end
          else if not (Uc.send uc (Unikernel.Driver.Init fn.source)) then begin
            Uc.destroy uc;
            t.s_errors <- t.s_errors + 1;
            Error `Timeout
          end
          else begin
            match
              Sim.Trace.span "node.await compile breakpoint" (fun () ->
                  Uc.await_breakpoint uc ~timeout:t.cfg.Config.invoke_timeout)
            with
            | Some "compile-ok" ->
                (* The guest is parked at the post-compile breakpoint:
                   capture the function snapshot, then resume and run. *)
                if
                  t.cfg.Config.cache_function_snapshots
                  && not (Hashtbl.mem t.fn_snapshots fn.fn_id)
                then begin
                  let snap =
                    Uc.capture uc ~env:t.node_env ~name:("fn-" ^ fn.fn_id)
                  in
                  install_snapshot t ~fn_id:fn.fn_id snap
                end;
                Uc.resume uc;
                finish t fn uc (run_on_uc t uc ~args)
            | Some label
              when String.length label >= 12
                   && String.sub label 0 12 = "compile-err:" ->
                Uc.resume uc;
                Uc.destroy uc;
                t.s_errors <- t.s_errors + 1;
                Error
                  (`Compile_error
                    (String.sub label 12 (String.length label - 12)))
            | Some other ->
                Uc.destroy uc;
                t.s_errors <- t.s_errors + 1;
                Error (`Compile_error ("unexpected breakpoint " ^ other))
            | None ->
                Uc.destroy uc;
                t.s_errors <- t.s_errors + 1;
                Error `Timeout
          end)

let invoke t fn ~args =
  match pop_idle t fn.fn_id with
  | Some uc ->
      Sim.Trace.mark "node.path hot";
      t.s_hot <- t.s_hot + 1;
      let result =
        if Uc.connect uc then finish t fn uc (run_on_uc t uc ~args)
        else begin
          Uc.destroy uc;
          t.s_errors <- t.s_errors + 1;
          Error `Timeout
        end
      in
      (result, Hot)
  | None -> (
      match function_snapshot t fn.fn_id with
      | Some snap ->
          t.s_warm <- t.s_warm + 1;
          (warm_invoke t fn snap ~args, Warm)
      | None ->
          t.s_cold <- t.s_cold + 1;
          (cold_invoke t fn ~args, Cold))

let last_served_uc t = t.last_uc

let deploy_idle t runtime =
  match base_snapshot t runtime with
  | None -> false
  | Some base -> (
      match Uc.deploy t.node_env base with
      | exception Mem.Frame.Out_of_memory -> false
      | uc ->
          if Uc.connect uc then begin
            match Uc.request uc Unikernel.Driver.Ping ~timeout:10.0 with
            | Ok Unikernel.Driver.Pong ->
                push_idle t
                  (Printf.sprintf "idle-%s-%d"
                     (Unikernel.Image.runtime_name runtime)
                     (Uc.id uc))
                  uc;
                true
            | _ ->
                Uc.destroy uc;
                false
          end
          else begin
            Uc.destroy uc;
            false
          end)
