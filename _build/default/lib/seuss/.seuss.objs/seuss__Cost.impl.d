lib/seuss/cost.ml: Mem
