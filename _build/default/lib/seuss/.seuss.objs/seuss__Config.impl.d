lib/seuss/config.ml: Int64 Mem Unikernel
