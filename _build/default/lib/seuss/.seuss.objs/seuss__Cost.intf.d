lib/seuss/cost.mli:
