lib/seuss/snapshot.ml: Cost Mem Osenv Printf Sim Unikernel
