lib/seuss/osenv.mli: Hashtbl Mem Net Sim
