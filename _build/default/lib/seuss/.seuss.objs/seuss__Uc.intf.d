lib/seuss/uc.mli: Osenv Snapshot Unikernel
