lib/seuss/shim.mli: Node Osenv Unikernel
