lib/seuss/config.mli: Unikernel
