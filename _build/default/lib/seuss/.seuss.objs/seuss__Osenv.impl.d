lib/seuss/osenv.ml: Hashtbl Mem Net Option Sim String
