lib/seuss/node.ml: Config Cost Hashtbl Int64 List Mem Osenv Printf Queue Sim Snapshot String Uc Unikernel
