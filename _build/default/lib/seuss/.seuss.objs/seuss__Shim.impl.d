lib/seuss/shim.ml: Cost Node Osenv Sim
