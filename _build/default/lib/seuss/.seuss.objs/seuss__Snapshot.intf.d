lib/seuss/snapshot.mli: Mem Osenv Unikernel
