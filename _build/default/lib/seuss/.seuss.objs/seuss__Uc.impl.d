lib/seuss/uc.ml: Cost Int64 Mem Net Osenv Printf Sim Snapshot Unikernel
