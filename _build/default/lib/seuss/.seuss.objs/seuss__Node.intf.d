lib/seuss/node.mli: Config Osenv Snapshot Uc Unikernel
