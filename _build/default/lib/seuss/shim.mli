(** The Linux-side shim process (§6, FaaS Platform Integration).

    The shim reads requests from the platform's message bus and relays
    them to the SEUSS OS VM over a single TCP connection — an extra
    network hop that adds ~8 ms to round trips and caps the UC creation
    rate at ~128/s (Table 3), both reproduced here by serializing each
    request and each response transfer on the connection for
    {!Cost.shim_per_message}. *)

type t

val create : Osenv.t -> Node.t -> t

val node : t -> Node.t

val invoke :
  t -> Node.fn -> args:string -> (string, Node.invoke_error) result * Node.path
(** Relay one invocation: request transfer (serialized), node
    processing (parallel), response transfer (serialized). *)

val deploy_idle : t -> Unikernel.Image.runtime -> bool
(** Relay a Table 3 instance-creation request. *)

val messages_relayed : t -> int
