type handle = {
  id : int;
  env : Seuss.Osenv.t;
  node : Seuss.Node.t;
  mutable inflight : int;
}

type source = Local of Seuss.Node.path | Remote_fetch | Cluster_cold

type stats = {
  local_invocations : int;
  remote_fetches : int;
  cluster_colds : int;
  bytes_transferred : int64;
}

type t = {
  engine : Sim.Engine.t;
  reg : Registry.t;
  members : handle array;
  mutable cursor : int;
  mutable s_local : int;
  mutable s_fetches : int;
  mutable s_colds : int;
  mutable s_bytes : int64;
}

let gib = Int64.of_int (Mem.Mconfig.mib 1024)

let create ?(nodes = 4) ?(budget_per_node = Int64.mul 16L gib) ?config engine
    =
  if nodes < 1 then invalid_arg "Cluster.create: need at least one node";
  let members =
    Array.init nodes (fun id ->
        let env = Seuss.Osenv.create ~budget_bytes:budget_per_node engine in
        let node = Seuss.Node.create ?config env in
        Seuss.Node.start node;
        { id; env; node; inflight = 0 })
  in
  {
    engine;
    reg = Registry.create ();
    members;
    cursor = 0;
    s_local = 0;
    s_fetches = 0;
    s_colds = 0;
    s_bytes = 0L;
  }

let node_count t = Array.length t.members
let nodes t = Array.to_list (Array.map (fun m -> m.node) t.members)
let registry t = t.reg

let stats t =
  {
    local_invocations = t.s_local;
    remote_fetches = t.s_fetches;
    cluster_colds = t.s_colds;
    bytes_transferred = t.s_bytes;
  }

let transfer_time snapshot =
  let bytes = Int64.to_float (Seuss.Snapshot.diff_bytes snapshot) in
  let link = Net.Netconf.lan in
  (2.0 *. link.Net.Netconf.latency) +. (bytes /. link.Net.Netconf.bandwidth)

(* Least-loaded, ties broken round-robin so idle clusters still spread
   work (and exercise the distributed cache). *)
let least_loaded t =
  let n = Array.length t.members in
  let best = ref t.members.(t.cursor mod n) in
  for i = 0 to n - 1 do
    let m = t.members.((t.cursor + i) mod n) in
    if m.inflight < !best.inflight then best := m
  done;
  t.cursor <- (t.cursor + 1) mod n;
  !best

(* Publish the snapshot a cold invocation just produced. *)
let publish_if_captured t member fn_id =
  match Seuss.Node.function_snapshot member.node fn_id with
  | Some snap -> Registry.publish t.reg ~fn_id ~node_id:member.id snap
  | None -> ()

let invoke_unregistered t (fn : Seuss.Node.fn) ~args =
  let member = least_loaded t in
  member.inflight <- member.inflight + 1;
  let had_local =
    Option.is_some (Seuss.Node.function_snapshot member.node fn.Seuss.Node.fn_id)
  in
  let result, path = Seuss.Node.invoke member.node fn ~args in
  member.inflight <- member.inflight - 1;
  let source =
    match path with
    | Seuss.Node.Cold when not had_local ->
        t.s_colds <- t.s_colds + 1;
        Cluster_cold
    | p ->
        t.s_local <- t.s_local + 1;
        Local p
  in
  (result, source)

let invoke t (fn : Seuss.Node.fn) ~args =
  let member = least_loaded t in
  member.inflight <- member.inflight + 1;
  let finish result =
    member.inflight <- member.inflight - 1;
    result
  in
  let has_local =
    Option.is_some (Seuss.Node.function_snapshot member.node fn.Seuss.Node.fn_id)
  in
  let fetched =
    if has_local then false
    else
      match
        Registry.holder_other_than t.reg ~fn_id:fn.Seuss.Node.fn_id
          ~node_id:member.id
      with
      | None -> false
      | Some holder -> (
          match
            Seuss.Node.base_snapshot member.node fn.Seuss.Node.runtime
          with
          | None -> false
          | Some local_base -> (
              match
                Seuss.Snapshot.import ~env:member.env
                  ~name:("fetched-" ^ fn.Seuss.Node.fn_id) ~local_base
                  ~remote:holder.Registry.snapshot
                  ~transfer_time:(transfer_time holder.Registry.snapshot)
              with
              | snap ->
                  Seuss.Node.install_snapshot member.node
                    ~fn_id:fn.Seuss.Node.fn_id snap;
                  Registry.publish t.reg ~fn_id:fn.Seuss.Node.fn_id
                    ~node_id:member.id snap;
                  t.s_fetches <- t.s_fetches + 1;
                  t.s_bytes <-
                    Int64.add t.s_bytes
                      (Seuss.Snapshot.diff_bytes holder.Registry.snapshot);
                  true
              | exception (Mem.Frame.Out_of_memory | Invalid_argument _) ->
                  false))
  in
  let result, path = Seuss.Node.invoke member.node fn ~args in
  (match (result, path) with
  | Ok _, Seuss.Node.Cold ->
      publish_if_captured t member fn.Seuss.Node.fn_id
  | _ -> ());
  let source =
    if fetched then Remote_fetch
    else
      match path with
      | Seuss.Node.Cold when not has_local ->
          t.s_colds <- t.s_colds + 1;
          Cluster_cold
      | p ->
          t.s_local <- t.s_local + 1;
          Local p
  in
  finish (result, source)
