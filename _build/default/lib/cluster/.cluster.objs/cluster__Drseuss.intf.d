lib/cluster/drseuss.mli: Registry Seuss Sim
