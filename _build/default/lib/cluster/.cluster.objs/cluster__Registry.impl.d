lib/cluster/registry.ml: Hashtbl List Option Seuss
