lib/cluster/registry.mli: Seuss
