lib/cluster/drseuss.ml: Array Int64 Mem Net Option Registry Seuss Sim
