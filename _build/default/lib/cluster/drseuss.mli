(** DR-SEUSS: a multi-node SEUSS deployment with a distributed,
    replicated snapshot cache (the paper's §9 vision).

    Each compute node runs its own SEUSS OS over its own memory budget;
    a global {!Registry} tracks which node holds which function
    snapshot. Invocations are routed to the least-loaded node. On a
    local snapshot miss, the node first tries a *remote fetch*: pull the
    function diff from a holder over the 10 GbE fabric and stack it on
    the local base runtime snapshot ({!Seuss.Snapshot.import}) — a few
    milliseconds for a typical 2 MB diff, versus replaying the full
    import+compile cold path. Only a cluster-wide miss pays a true cold
    start, and the resulting snapshot is published for everyone. *)

type t

type source = Local of Seuss.Node.path | Remote_fetch | Cluster_cold

type stats = {
  local_invocations : int;
  remote_fetches : int;
  cluster_colds : int;
  bytes_transferred : int64;
}

val create :
  ?nodes:int ->
  ?budget_per_node:int64 ->
  ?config:Seuss.Config.t ->
  Sim.Engine.t ->
  t
(** Start an [n]-node cluster (default 4 nodes, 16 GiB each — call
    inside a simulation process; boots every node). *)

val node_count : t -> int

val nodes : t -> Seuss.Node.t list

val registry : t -> Registry.t

val invoke :
  t -> Seuss.Node.fn -> args:string -> (string, Seuss.Node.invoke_error) result * source
(** Route one invocation: least-loaded node; remote fetch on local miss
    when some other node holds the snapshot. *)

val invoke_unregistered :
  t -> Seuss.Node.fn -> args:string -> (string, Seuss.Node.invoke_error) result * source
(** Same routing, but without consulting or feeding the registry: every
    per-node miss is a full cold start. The control arm of the DR-SEUSS
    experiment. *)

val stats : t -> stats

val transfer_time : Seuss.Snapshot.t -> float
(** Modeled fetch time for a snapshot diff over the LAN. *)
