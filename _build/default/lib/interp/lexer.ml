type token =
  | Tnum of float
  | Tstr of string
  | Tident of string
  | Tkeyword of string
  | Tpunct of string
  | Teof

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int

let keywords =
  [ "let"; "var"; "function"; "return"; "if"; "else"; "while"; "for";
    "true"; "false"; "null"; "break"; "continue" ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c

(* Two-character operators must be matched before their one-character
   prefixes. *)
let puncts2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "+="; "-=" ]
let puncts1 = [ "("; ")"; "{"; "}"; "["; "]"; ","; ";"; ":"; "."; "=";
                "+"; "-"; "*"; "/"; "%"; "<"; ">"; "!"; "?" ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st off =
  if st.pos + off < String.length st.src then Some st.src.[st.pos + off] else None

let advance st =
  (match peek st 0 with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Lex_error (msg, st.line, st.col))

let rec skip_trivia st =
  match peek st 0 with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek st 1 = Some '/' ->
      while peek st 0 <> None && peek st 0 <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek st 1 = Some '*' ->
      advance st;
      advance st;
      let rec close () =
        match (peek st 0, peek st 1) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            close ()
        | None, _ -> error st "unterminated comment"
      in
      close ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  while (match peek st 0 with Some c -> is_digit c | None -> false) do
    advance st
  done;
  if peek st 0 = Some '.' && (match peek st 1 with Some c -> is_digit c | None -> false)
  then begin
    advance st;
    while (match peek st 0 with Some c -> is_digit c | None -> false) do
      advance st
    done
  end;
  let text = String.sub st.src start (st.pos - start) in
  Tnum (float_of_string text)

let lex_string st quote =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st 0 with
    | None -> error st "unterminated string"
    | Some c when c = quote -> advance st
    | Some '\\' -> (
        advance st;
        match peek st 0 with
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
        | Some ('\\' | '"' | '\'' as c) -> Buffer.add_char buf c; advance st; go ()
        | Some c -> error st (Printf.sprintf "bad escape '\\%c'" c)
        | None -> error st "unterminated string")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Tstr (Buffer.contents buf)

let lex_ident st =
  let start = st.pos in
  while (match peek st 0 with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  if List.mem text keywords then Tkeyword text else Tident text

let lex_punct st =
  let try_match candidates len =
    if st.pos + len <= String.length st.src then begin
      let text = String.sub st.src st.pos len in
      if List.mem text candidates then Some text else None
    end
    else None
  in
  match try_match puncts2 2 with
  | Some p ->
      advance st;
      advance st;
      Tpunct p
  | None -> (
      match try_match puncts1 1 with
      | Some p ->
          advance st;
          Tpunct p
      | None -> error st (Printf.sprintf "unexpected character %C" st.src.[st.pos]))

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_trivia st;
    let line = st.line and col = st.col in
    match peek st 0 with
    | None -> List.rev ({ token = Teof; line; col } :: acc)
    | Some c ->
        let token =
          if is_digit c then lex_number st
          else if c = '"' || c = '\'' then lex_string st c
          else if is_ident_start c then lex_ident st
          else lex_punct st
        in
        go ({ token; line; col } :: acc)
  in
  go []
