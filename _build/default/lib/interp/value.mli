(** Runtime values and environments of MiniJS. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of arr
  | Obj of (string, t) Hashtbl.t
  | Closure of closure
  | Builtin of string * (t list -> t)

and arr = { mutable items : t array; mutable len : int }

and closure = { params : string list; body : Ast.block; env : env }

and env = { vars : (string, t) Hashtbl.t; mutable parent : env option }

val arr_of_list : t list -> t

val arr_items : arr -> t list

val arr_push : arr -> t -> unit

val obj_of_list : (string * t) list -> t

val truthy : t -> bool
(** JS-like: [null], [false], [0], [""] are falsy. *)

val equal : t -> t -> bool
(** Structural on primitives, physical on arrays/objects/functions. *)

val type_name : t -> string

val to_string : t -> string
(** Display form; JSON-compatible for null/bool/num/str/array/object
    trees (functions render as ["<function>"]). *)

val heap_bytes : t -> int
(** Approximate guest-heap size of freshly constructing this value
    (shallow) — drives the allocation metering. *)

val deep_copy_env : rebind_builtin:(string -> t option) -> env -> env
(** Structure-preserving deep copy of an environment graph: arrays,
    objects, closures and scope chains are duplicated (sharing and cycles
    preserved via physical memoization), so mutations on the copy never
    reach the original. Builtins are replaced through [rebind_builtin]
    (they capture per-instance host hooks); unknown names keep the
    original builtin.

    This is how a snapshot freezes a guest's interpreter state: the
    capture takes a copy as an immutable template, and every UC deployed
    from the snapshot clones its own working copy. *)

(** {1 Environments} *)

val new_env : ?parent:env -> unit -> env

val define : env -> string -> t -> unit

val lookup : env -> string -> t option
(** Searches the scope chain. *)

val assign : env -> string -> t -> bool
(** Updates the innermost binding; [false] if unbound. *)
