(** The MiniJS standard library, parameterized by a host interface.

    The host interface is how guest code reaches the outside world — in
    the full system it is backed by the unikernel's hypercall surface
    (HTTP through the simulated network, time from the simulated clock),
    keeping the guest as isolated as the paper's Solo5-style domain. *)

type host = {
  http_get : string -> (string, string) result;
      (** Outbound HTTP GET; in the simulator this blocks the calling
          process for the modeled network time. *)
  log : string -> unit;  (** console output *)
  now : unit -> float;  (** seconds since guest boot *)
  work_ms : float -> unit;
      (** [work_ms d]: occupy the CPU for [d] simulated milliseconds —
          the paper's ~150 ms CPU-bound burst function uses this to model
          a tight numeric kernel without host-side cost. *)
  alloc : int -> unit;  (** guest-heap allocation accounting *)
  random : unit -> float;  (** deterministic per-guest PRNG draw *)
}

val null_host : host
(** No-op host for host-side unit tests: [http_get] fails, [now] is 0. *)

val install : host -> (string * Value.t) list
(** Global bindings: [len], [push], [keys], [str], [num], [floor],
    [abs], [min], [max], [pow], [sqrt], [substr], [split], [join],
    [contains], [index_of], [upper], [lower], [trim], [slice], [sort],
    [range], [json], [hash], [print], [now], [random], [work],
    [http_get]. *)
