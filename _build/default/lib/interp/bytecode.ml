type instr =
  | Const of Value.t
  | Load of string
  | Store of string
  | Define of string
  | Pop
  | Dup
  | Make_array of int
  | Make_object of string list
  | Index_get
  | Index_set
  | Field_get of string
  | Field_set of string
  | Unop of Ast.unop
  | Binop of Ast.binop
  | Call of int
  | Closure of proto
  | Jump of int
  | Jump_if_false of int
  | Jump_if_true of int
  | Push_scope
  | Pop_scope
  | Return

and proto = { params : string list; code : instr array; fn_name : string }

let pp_instr ppf = function
  | Const v -> Format.fprintf ppf "const %s" (Value.to_string v)
  | Load name -> Format.fprintf ppf "load %s" name
  | Store name -> Format.fprintf ppf "store %s" name
  | Define name -> Format.fprintf ppf "define %s" name
  | Pop -> Format.pp_print_string ppf "pop"
  | Dup -> Format.pp_print_string ppf "dup"
  | Make_array n -> Format.fprintf ppf "make_array %d" n
  | Make_object keys ->
      Format.fprintf ppf "make_object {%s}" (String.concat "," keys)
  | Index_get -> Format.pp_print_string ppf "index_get"
  | Index_set -> Format.pp_print_string ppf "index_set"
  | Field_get f -> Format.fprintf ppf "field_get %s" f
  | Field_set f -> Format.fprintf ppf "field_set %s" f
  | Unop Ast.Neg -> Format.pp_print_string ppf "neg"
  | Unop Ast.Not -> Format.pp_print_string ppf "not"
  | Binop _ -> Format.pp_print_string ppf "binop"
  | Call n -> Format.fprintf ppf "call %d" n
  | Closure p -> Format.fprintf ppf "closure %s/%d" p.fn_name (List.length p.params)
  | Jump t -> Format.fprintf ppf "jump %d" t
  | Jump_if_false t -> Format.fprintf ppf "jump_if_false %d" t
  | Jump_if_true t -> Format.fprintf ppf "jump_if_true %d" t
  | Push_scope -> Format.pp_print_string ppf "push_scope"
  | Pop_scope -> Format.pp_print_string ppf "pop_scope"
  | Return -> Format.pp_print_string ppf "return"

let rec length proto =
  Array.fold_left
    (fun n instr ->
      match instr with Closure p -> n + 1 + length p | _ -> n + 1)
    0 proto.code
