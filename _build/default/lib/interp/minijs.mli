(** Facade: compile and run MiniJS programs against a host.

    This is the interpreter instance a unikernel context embeds. A
    program is expected to define a [main] entry point:

    {[
      function main(args) { return { ok: true }; }
    ]}

    Invocation arguments and results travel as MiniJS literal text
    (JSON-compatible), mirroring how OpenWhisk passes JSON through the
    invocation driver. *)

type t
(** A loaded program instance (bindings live in its global scope). *)

val load :
  ?hooks:Eval.hooks -> host:Builtins.host -> string -> (t, string) result
(** Compile source and execute its top-level, binding declarations.
    Returns [Error] on syntax or top-level runtime errors. *)

val compiled : t -> Compile.t

val clone : ?hooks:Eval.hooks -> host:Builtins.host -> t -> t
(** An isolated copy of the program instance: the environment graph is
    deep-copied ({!Value.deep_copy_env}) and builtins are rebound to the
    new [host]/[hooks]. Used on snapshot capture (freeze a template) and
    on deploy (give each UC its own mutable world). *)

val call : t -> fname:string -> Value.t list -> (Value.t, string) result
(** Call a global function by name. *)

val run_main : t -> args_literal:string -> (string, string) result
(** Parse [args_literal] as a MiniJS expression, call [main], return the
    JSON-rendered result. *)

val parse_literal : t -> string -> (Value.t, string) result
(** Evaluate a literal/expression string in the program's scope. *)
