(** Abstract syntax of MiniJS.

    MiniJS is the high-level function language of the reproduction: a
    JavaScript-like subset rich enough to express the paper's workloads
    (NOP, CPU-bound and IO-bound functions) and the invocation driver,
    while staying small enough to audit. *)

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Var of string
  | Array of expr list
  | Object of (string * expr) list
  | Index of expr * expr
  | Field of expr * string
  | Call of expr * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Ternary of expr * expr * expr
  | Lambda of string list * block

and stmt =
  | Expr of expr
  | Let of string * expr
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | Return of expr option
  | Break
  | Continue

and lvalue = Lvar of string | Lindex of expr * expr | Lfield of expr * string

and block = stmt list

type program = block

val node_count : program -> int
(** Number of AST nodes: drives the simulated compile cost and the pages
    a compilation dirties in the guest heap. *)
