exception Vm_error of string

type ctx = { hooks : Eval.hooks; mutable ops : int; mutable unbilled : int }

let bill_batch = 4096

let step ctx =
  ctx.ops <- ctx.ops + 1;
  ctx.unbilled <- ctx.unbilled + 1;
  if ctx.ops > ctx.hooks.Eval.max_ops then raise Eval.Ops_exhausted;
  if ctx.unbilled >= bill_batch then begin
    ctx.hooks.Eval.work (float_of_int ctx.unbilled *. Eval.seconds_per_op);
    ctx.unbilled <- 0
  end

let flush ctx =
  if ctx.unbilled > 0 then begin
    ctx.hooks.Eval.work (float_of_int ctx.unbilled *. Eval.seconds_per_op);
    ctx.unbilled <- 0
  end

let error fmt = Printf.ksprintf (fun s -> raise (Eval.Runtime_error s)) fmt

let note_alloc ctx v =
  let bytes = Value.heap_bytes v in
  if bytes > 0 then ctx.hooks.Eval.alloc bytes

(* Shared with the tree-walker so the engines cannot drift on operator
   semantics: re-evaluate through Eval's binop by building a tiny
   expression? No — expose identical logic locally instead. Kept in sync
   by the differential tests. *)
let binop ctx op a b =
  let open Value in
  let v =
    match (op, a, b) with
    | Ast.Add, Num x, Num y -> Num (x +. y)
    | Ast.Add, Str x, Str y -> Str (x ^ y)
    | Ast.Add, Str x, y -> Str (x ^ Value.to_string y)
    | Ast.Add, x, Str y -> Str (Value.to_string x ^ y)
    | Ast.Sub, Num x, Num y -> Num (x -. y)
    | Ast.Mul, Num x, Num y -> Num (x *. y)
    | Ast.Div, Num x, Num y ->
        if y = 0.0 then error "division by zero" else Num (x /. y)
    | Ast.Mod, Num x, Num y ->
        if y = 0.0 then error "modulo by zero" else Num (Float.rem x y)
    | Ast.Eq, x, y -> Bool (Value.equal x y)
    | Ast.Neq, x, y -> Bool (not (Value.equal x y))
    | Ast.Lt, Num x, Num y -> Bool (x < y)
    | Ast.Le, Num x, Num y -> Bool (x <= y)
    | Ast.Gt, Num x, Num y -> Bool (x > y)
    | Ast.Ge, Num x, Num y -> Bool (x >= y)
    | Ast.Lt, Str x, Str y -> Bool (x < y)
    | Ast.Le, Str x, Str y -> Bool (x <= y)
    | Ast.Gt, Str x, Str y -> Bool (x > y)
    | Ast.Ge, Str x, Str y -> Bool (x >= y)
    | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), x, y ->
        error "arithmetic on %s and %s" (Value.type_name x) (Value.type_name y)
    | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), x, y ->
        error "comparison of %s and %s" (Value.type_name x) (Value.type_name y)
  in
  note_alloc ctx v;
  v

(* One frame of VM execution. [env] is the frame's innermost scope and
   mutates as Push_scope/Pop_scope execute. *)
let rec run ctx env0 (proto : Bytecode.proto) =
  let env = ref env0 in
  let stack = ref [] in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> raise (Vm_error (proto.Bytecode.fn_name ^ ": operand stack underflow"))
  in
  let code = proto.Bytecode.code in
  let result = ref Value.Null in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    if !pc < 0 || !pc >= Array.length code then
      raise (Vm_error (proto.Bytecode.fn_name ^ ": pc out of bounds"));
    step ctx;
    let instr = code.(!pc) in
    incr pc;
    match instr with
    | Bytecode.Const v -> push v
    | Bytecode.Load name -> (
        match Value.lookup !env name with
        | Some v -> push v
        | None -> error "unbound variable '%s'" name)
    | Bytecode.Store name ->
        let v = pop () in
        if not (Value.assign !env name v) then
          error "assignment to unbound '%s'" name
    | Bytecode.Define name ->
        let v = pop () in
        ctx.hooks.Eval.alloc 32;
        Value.define !env name v
    | Bytecode.Pop -> ignore (pop ())
    | Bytecode.Dup ->
        let v = pop () in
        push v;
        push v
    | Bytecode.Make_array n ->
        let rec take k acc = if k = 0 then acc else take (k - 1) (pop () :: acc) in
        let v = Value.arr_of_list (take n []) in
        note_alloc ctx v;
        push v
    | Bytecode.Make_object keys ->
        let values =
          List.rev_map (fun _ -> pop ()) keys
        in
        let v = Value.obj_of_list (List.combine keys values) in
        note_alloc ctx v;
        push v
    | Bytecode.Index_get -> (
        let idx = pop () in
        let container = pop () in
        match (container, idx) with
        | Value.Arr arr, Value.Num n ->
            let i = int_of_float n in
            if i < 0 || i >= arr.Value.len then
              error "array index %d out of bounds (length %d)" i arr.Value.len
            else push arr.Value.items.(i)
        | Value.Obj h, Value.Str key ->
            push (Option.value (Hashtbl.find_opt h key) ~default:Value.Null)
        | Value.Str s, Value.Num n ->
            let i = int_of_float n in
            if i < 0 || i >= String.length s then
              error "string index out of bounds"
            else push (Value.Str (String.make 1 s.[i]))
        | v, _ -> error "cannot index %s" (Value.type_name v))
    | Bytecode.Index_set -> (
        let v = pop () in
        let idx = pop () in
        let container = pop () in
        match (container, idx) with
        | Value.Arr arr, Value.Num n ->
            let i = int_of_float n in
            if i = arr.Value.len then begin
              Value.arr_push arr v;
              ctx.hooks.Eval.alloc 16
            end
            else if i < 0 || i > arr.Value.len then
              error "array store index %d out of bounds" i
            else arr.Value.items.(i) <- v
        | Value.Obj h, Value.Str key ->
            if not (Hashtbl.mem h key) then ctx.hooks.Eval.alloc 48;
            Hashtbl.replace h key v
        | c, _ -> error "cannot index-assign %s" (Value.type_name c))
    | Bytecode.Field_get name -> (
        match pop () with
        | Value.Obj h ->
            push (Option.value (Hashtbl.find_opt h name) ~default:Value.Null)
        | Value.Arr a when name = "length" ->
            push (Value.Num (float_of_int a.Value.len))
        | Value.Str s when name = "length" ->
            push (Value.Num (float_of_int (String.length s)))
        | v -> error "cannot access field '%s' of %s" name (Value.type_name v))
    | Bytecode.Field_set name -> (
        let v = pop () in
        match pop () with
        | Value.Obj h ->
            if not (Hashtbl.mem h name) then ctx.hooks.Eval.alloc 48;
            Hashtbl.replace h name v
        | c -> error "cannot set field of %s" (Value.type_name c))
    | Bytecode.Unop op -> (
        let v = pop () in
        match op with
        | Ast.Neg -> (
            match v with
            | Value.Num n -> push (Value.Num (-.n))
            | v -> error "unary -: expected number, got %s" (Value.type_name v))
        | Ast.Not -> push (Value.Bool (not (Value.truthy v))))
    | Bytecode.Binop op ->
        let b = pop () in
        let a = pop () in
        push (binop ctx op a b)
    | Bytecode.Call argc ->
        let rec take k acc = if k = 0 then acc else take (k - 1) (pop () :: acc) in
        let args = take argc [] in
        let callee = pop () in
        push (apply ctx callee args)
    | Bytecode.Closure nested ->
        let captured = !env in
        let name = Printf.sprintf "<vm:%s>" nested.Bytecode.fn_name in
        let fn args = call_proto ctx captured nested args in
        let v = Value.Builtin (name, fn) in
        ctx.hooks.Eval.alloc (64 + (16 * List.length nested.Bytecode.params));
        push v
    | Bytecode.Jump target -> pc := target
    | Bytecode.Jump_if_false target ->
        if not (Value.truthy (pop ())) then pc := target
    | Bytecode.Jump_if_true target -> if Value.truthy (pop ()) then pc := target
    | Bytecode.Push_scope -> env := Value.new_env ~parent:!env ()
    | Bytecode.Pop_scope -> (
        match !env.Value.parent with
        | Some parent -> env := parent
        | None -> raise (Vm_error "pop_scope at frame root"))
    | Bytecode.Return ->
        result := pop ();
        running := false
  done;
  !result

and apply ctx callee args =
  match callee with
  | Value.Builtin (_, f) -> f args
  | Value.Closure _ ->
      (* Tree closures can reach the VM through shared globals; delegate
         to the tree-walker so semantics stay uniform. *)
      Eval.call ctx.hooks callee args
  | v -> error "cannot call %s" (Value.type_name v)

and call_proto ctx captured (proto : Bytecode.proto) args =
  if List.length proto.Bytecode.params <> List.length args then
    error "arity mismatch: expected %d arguments, got %d"
      (List.length proto.Bytecode.params)
      (List.length args);
  let frame = Value.new_env ~parent:captured () in
  ctx.hooks.Eval.alloc (48 + (16 * List.length proto.Bytecode.params));
  List.iter2 (Value.define frame) proto.Bytecode.params args;
  run ctx frame proto

let with_ctx hooks f =
  let ctx = { hooks; ops = 0; unbilled = 0 } in
  match f ctx with
  | v ->
      flush ctx;
      v
  | exception exn ->
      flush ctx;
      raise exn

let run_proto hooks ~env proto =
  with_ctx hooks (fun ctx -> run ctx env proto)

let exec_program hooks ~env program =
  let proto = Codegen.compile_program program in
  ignore (run_proto hooks ~env proto)

let eval_expr hooks ~env expr =
  let proto = Codegen.compile_program [ Ast.Return (Some expr) ] in
  run_proto hooks ~env proto

let call hooks callee args = with_ctx hooks (fun ctx -> apply ctx callee args)
