type hooks = { alloc : int -> unit; work : float -> unit; max_ops : int }

let default_hooks =
  { alloc = (fun _ -> ()); work = (fun _ -> ()); max_ops = 100_000_000 }

let seconds_per_op = 2e-8

exception Runtime_error of string
exception Ops_exhausted

(* Non-local control flow inside function bodies. *)
exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

type ctx = { hooks : hooks; mutable ops : int; mutable unbilled : int }

(* CPU time is reported in batches to keep simulated-event counts sane on
   busy loops. *)
let bill_batch = 4096

let step ctx =
  ctx.ops <- ctx.ops + 1;
  ctx.unbilled <- ctx.unbilled + 1;
  if ctx.ops > ctx.hooks.max_ops then raise Ops_exhausted;
  if ctx.unbilled >= bill_batch then begin
    ctx.hooks.work (float_of_int ctx.unbilled *. seconds_per_op);
    ctx.unbilled <- 0
  end

let flush ctx =
  if ctx.unbilled > 0 then begin
    ctx.hooks.work (float_of_int ctx.unbilled *. seconds_per_op);
    ctx.unbilled <- 0
  end

let note_alloc ctx v =
  let bytes = Value.heap_bytes v in
  if bytes > 0 then ctx.hooks.alloc bytes

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let as_num what = function
  | Value.Num n -> n
  | v -> error "%s: expected number, got %s" what (Value.type_name v)

let binop op a b =
  let open Value in
  match (op, a, b) with
  | Ast.Add, Num x, Num y -> Num (x +. y)
  | Ast.Add, Str x, Str y -> Str (x ^ y)
  | Ast.Add, Str x, y -> Str (x ^ Value.to_string y)
  | Ast.Add, x, Str y -> Str (Value.to_string x ^ y)
  | Ast.Sub, Num x, Num y -> Num (x -. y)
  | Ast.Mul, Num x, Num y -> Num (x *. y)
  | Ast.Div, Num x, Num y ->
      if y = 0.0 then error "division by zero" else Num (x /. y)
  | Ast.Mod, Num x, Num y ->
      if y = 0.0 then error "modulo by zero" else Num (Float.rem x y)
  | Ast.Eq, x, y -> Bool (Value.equal x y)
  | Ast.Neq, x, y -> Bool (not (Value.equal x y))
  | Ast.Lt, Num x, Num y -> Bool (x < y)
  | Ast.Le, Num x, Num y -> Bool (x <= y)
  | Ast.Gt, Num x, Num y -> Bool (x > y)
  | Ast.Ge, Num x, Num y -> Bool (x >= y)
  | Ast.Lt, Str x, Str y -> Bool (x < y)
  | Ast.Le, Str x, Str y -> Bool (x <= y)
  | Ast.Gt, Str x, Str y -> Bool (x > y)
  | Ast.Ge, Str x, Str y -> Bool (x >= y)
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), x, y ->
      error "arithmetic on %s and %s" (Value.type_name x) (Value.type_name y)
  | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), x, y ->
      error "comparison of %s and %s" (Value.type_name x) (Value.type_name y)

let rec eval ctx env (e : Ast.expr) : Value.t =
  step ctx;
  match e with
  | Ast.Num n -> Value.Num n
  | Ast.Str s -> Value.Str s
  | Ast.Bool b -> Value.Bool b
  | Ast.Null -> Value.Null
  | Ast.Var name -> (
      match Value.lookup env name with
      | Some v -> v
      | None -> error "unbound variable '%s'" name)
  | Ast.Array es ->
      let v = Value.arr_of_list (List.map (eval ctx env) es) in
      note_alloc ctx v;
      v
  | Ast.Object fields ->
      let v =
        Value.obj_of_list (List.map (fun (k, e) -> (k, eval ctx env e)) fields)
      in
      note_alloc ctx v;
      v
  | Ast.Index (a, i) -> (
      (* Explicit left-to-right order (tuples evaluate right-to-left). *)
      let va = eval ctx env a in
      let vi = eval ctx env i in
      match (va, vi) with
      | Value.Arr arr, Value.Num n ->
          let idx = int_of_float n in
          if idx < 0 || idx >= arr.Value.len then
            error "array index %d out of bounds (length %d)" idx arr.Value.len
          else arr.Value.items.(idx)
      | Value.Obj h, Value.Str key ->
          Option.value (Hashtbl.find_opt h key) ~default:Value.Null
      | Value.Str s, Value.Num n ->
          let idx = int_of_float n in
          if idx < 0 || idx >= String.length s then error "string index out of bounds"
          else Value.Str (String.make 1 s.[idx])
      | v, _ -> error "cannot index %s" (Value.type_name v))
  | Ast.Field (e, name) -> (
      match eval ctx env e with
      | Value.Obj h -> Option.value (Hashtbl.find_opt h name) ~default:Value.Null
      | Value.Arr a when name = "length" -> Value.Num (float_of_int a.Value.len)
      | Value.Str s when name = "length" ->
          Value.Num (float_of_int (String.length s))
      | v -> error "cannot access field '%s' of %s" name (Value.type_name v))
  | Ast.Call (f, args) ->
      let fv = eval ctx env f in
      let argv = List.map (eval ctx env) args in
      apply ctx fv argv
  | Ast.Unop (Ast.Neg, e) -> Value.Num (-.as_num "unary -" (eval ctx env e))
  | Ast.Unop (Ast.Not, e) -> Value.Bool (not (Value.truthy (eval ctx env e)))
  | Ast.Binop (op, a, b) ->
      let va = eval ctx env a in
      let vb = eval ctx env b in
      let v = binop op va vb in
      note_alloc ctx v;
      v
  | Ast.And (a, b) ->
      if Value.truthy (eval ctx env a) then eval ctx env b else Value.Bool false
  | Ast.Or (a, b) ->
      let va = eval ctx env a in
      if Value.truthy va then va else eval ctx env b
  | Ast.Ternary (c, a, b) ->
      if Value.truthy (eval ctx env c) then eval ctx env a else eval ctx env b
  | Ast.Lambda (params, body) ->
      let v = Value.Closure { Value.params; body; env } in
      note_alloc ctx v;
      v

and apply ctx fv argv =
  match fv with
  | Value.Builtin (_, f) -> f argv
  | Value.Closure { Value.params; body; env } ->
      if List.length params <> List.length argv then
        error "arity mismatch: expected %d arguments, got %d"
          (List.length params) (List.length argv);
      let frame = Value.new_env ~parent:env () in
      ctx.hooks.alloc (48 + (16 * List.length params));
      List.iter2 (Value.define frame) params argv;
      (try
         exec_block ctx frame body;
         Value.Null
       with Return_exc v -> v)
  | v -> error "cannot call %s" (Value.type_name v)

and exec_stmt ctx env (s : Ast.stmt) =
  step ctx;
  match s with
  | Ast.Expr e -> ignore (eval ctx env e)
  | Ast.Let (name, e) ->
      let v = eval ctx env e in
      ctx.hooks.alloc 32;
      Value.define env name v
  | Ast.Assign (Ast.Lvar name, e) ->
      let v = eval ctx env e in
      if not (Value.assign env name v) then error "assignment to unbound '%s'" name
  | Ast.Assign (Ast.Lindex (a, i), e) -> (
      let va = eval ctx env a in
      let vi = eval ctx env i in
      match (va, vi) with
      | Value.Arr arr, Value.Num n ->
          let idx = int_of_float n in
          let v = eval ctx env e in
          if idx = arr.Value.len then begin
            Value.arr_push arr v;
            ctx.hooks.alloc 16
          end
          else if idx < 0 || idx > arr.Value.len then
            error "array store index %d out of bounds" idx
          else arr.Value.items.(idx) <- v
      | Value.Obj h, Value.Str key ->
          let v = eval ctx env e in
          if not (Hashtbl.mem h key) then ctx.hooks.alloc 48;
          Hashtbl.replace h key v
      | v, _ -> error "cannot index-assign %s" (Value.type_name v))
  | Ast.Assign (Ast.Lfield (obj, name), e) -> (
      match eval ctx env obj with
      | Value.Obj h ->
          let v = eval ctx env e in
          if not (Hashtbl.mem h name) then ctx.hooks.alloc 48;
          Hashtbl.replace h name v
      | v -> error "cannot set field of %s" (Value.type_name v))
  | Ast.If (c, then_, else_) ->
      if Value.truthy (eval ctx env c) then exec_scoped ctx env then_
      else exec_scoped ctx env else_
  | Ast.While (c, body) -> (
      try
        while Value.truthy (eval ctx env c) do
          try exec_scoped ctx env body with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Ast.Return None -> raise (Return_exc Value.Null)
  | Ast.Return (Some e) -> raise (Return_exc (eval ctx env e))
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc

and exec_scoped ctx env block =
  if block = [] then ()
  else begin
    let scope = Value.new_env ~parent:env () in
    exec_block ctx scope block
  end

and exec_block ctx env block = List.iter (exec_stmt ctx env) block

let with_ctx hooks f =
  let ctx = { hooks; ops = 0; unbilled = 0 } in
  match f ctx with
  | v ->
      flush ctx;
      v
  | exception exn ->
      flush ctx;
      raise exn

let exec_program hooks ~env program =
  with_ctx hooks (fun ctx ->
      try exec_block ctx env program
      with Return_exc _ -> error "return outside function")

let call hooks f args = with_ctx hooks (fun ctx -> apply ctx f args)

let eval_expr hooks ~env e = with_ctx hooks (fun ctx -> eval ctx env e)
