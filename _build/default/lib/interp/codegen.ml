type emitter = {
  mutable buf : Bytecode.instr array;
  mutable len : int;
  (* Innermost loop: (continue target, forward-jump indices to patch to
     the loop end, scope depth at loop entry). *)
  mutable loops : (int * int list ref * int) list;
  mutable scope_depth : int;
}

let create () = { buf = Array.make 64 Bytecode.Return; len = 0; loops = []; scope_depth = 0 }

let emit e instr =
  if e.len = Array.length e.buf then begin
    let buf = Array.make (2 * e.len) Bytecode.Return in
    Array.blit e.buf 0 buf 0 e.len;
    e.buf <- buf
  end;
  e.buf.(e.len) <- instr;
  e.len <- e.len + 1

let here e = e.len

(* Emit a jump with a dummy target; patch later. *)
let emit_jump e make =
  let at = e.len in
  emit e (make 0);
  at

let patch e at target =
  e.buf.(at) <-
    (match e.buf.(at) with
    | Bytecode.Jump _ -> Bytecode.Jump target
    | Bytecode.Jump_if_false _ -> Bytecode.Jump_if_false target
    | Bytecode.Jump_if_true _ -> Bytecode.Jump_if_true target
    | _ -> invalid_arg "Codegen.patch: not a jump")

let const_of_literal (expr : Ast.expr) =
  match expr with
  | Ast.Num n -> Some (Value.Num n)
  | Ast.Str s -> Some (Value.Str s)
  | Ast.Bool b -> Some (Value.Bool b)
  | Ast.Null -> Some Value.Null
  | _ -> None

let rec expr e (x : Ast.expr) =
  match const_of_literal x with
  | Some v -> emit e (Bytecode.Const v)
  | None -> (
      match x with
      | Ast.Num _ | Ast.Str _ | Ast.Bool _ | Ast.Null -> assert false
      | Ast.Var name -> emit e (Bytecode.Load name)
      | Ast.Array elements ->
          List.iter (expr e) elements;
          emit e (Bytecode.Make_array (List.length elements))
      | Ast.Object fields ->
          List.iter (fun (_, v) -> expr e v) fields;
          emit e (Bytecode.Make_object (List.map fst fields))
      | Ast.Index (a, i) ->
          expr e a;
          expr e i;
          emit e Bytecode.Index_get
      | Ast.Field (o, f) ->
          expr e o;
          emit e (Bytecode.Field_get f)
      | Ast.Call (callee, args) ->
          expr e callee;
          List.iter (expr e) args;
          emit e (Bytecode.Call (List.length args))
      | Ast.Unop (op, operand) ->
          expr e operand;
          emit e (Bytecode.Unop op)
      | Ast.Binop (op, a, b) ->
          expr e a;
          expr e b;
          emit e (Bytecode.Binop op)
      | Ast.And (a, b) ->
          (* truthy a ? eval b : false *)
          expr e a;
          let to_false = emit_jump e (fun t -> Bytecode.Jump_if_false t) in
          expr e b;
          let to_end = emit_jump e (fun t -> Bytecode.Jump t) in
          patch e to_false (here e);
          emit e (Bytecode.Const (Value.Bool false));
          patch e to_end (here e)
      | Ast.Or (a, b) ->
          (* truthy a ? a : eval b *)
          expr e a;
          emit e Bytecode.Dup;
          let keep_a = emit_jump e (fun t -> Bytecode.Jump_if_true t) in
          emit e Bytecode.Pop;
          expr e b;
          patch e keep_a (here e)
      | Ast.Ternary (c, a, b) ->
          expr e c;
          let to_else = emit_jump e (fun t -> Bytecode.Jump_if_false t) in
          expr e a;
          let to_end = emit_jump e (fun t -> Bytecode.Jump t) in
          patch e to_else (here e);
          expr e b;
          patch e to_end (here e)
      | Ast.Lambda (params, body) ->
          emit e (Bytecode.Closure (compile_proto ~name:"<lambda>" params body)))

and stmt e (s : Ast.stmt) =
  match s with
  | Ast.Expr x ->
      expr e x;
      emit e Bytecode.Pop
  | Ast.Let (name, x) ->
      expr e x;
      emit e (Bytecode.Define name)
  | Ast.Assign (Ast.Lvar name, x) ->
      expr e x;
      emit e (Bytecode.Store name)
  | Ast.Assign (Ast.Lindex (a, i), x) ->
      expr e a;
      expr e i;
      expr e x;
      emit e Bytecode.Index_set
  | Ast.Assign (Ast.Lfield (o, f), x) ->
      expr e o;
      expr e x;
      emit e (Bytecode.Field_set f)
  | Ast.If (c, then_, else_) ->
      expr e c;
      let to_else = emit_jump e (fun t -> Bytecode.Jump_if_false t) in
      scoped_block e then_;
      let to_end = emit_jump e (fun t -> Bytecode.Jump t) in
      patch e to_else (here e);
      scoped_block e else_;
      patch e to_end (here e)
  | Ast.While (c, body) ->
      let top = here e in
      expr e c;
      let to_end = emit_jump e (fun t -> Bytecode.Jump_if_false t) in
      let breaks = ref [] in
      e.loops <- (top, breaks, e.scope_depth) :: e.loops;
      scoped_block e body;
      e.loops <- List.tl e.loops;
      emit e (Bytecode.Jump top);
      patch e to_end (here e);
      List.iter (fun at -> patch e at (here e)) !breaks
  | Ast.Return None ->
      emit e (Bytecode.Const Value.Null);
      emit e Bytecode.Return
  | Ast.Return (Some x) ->
      expr e x;
      emit e Bytecode.Return
  | Ast.Break -> (
      match e.loops with
      | [] -> raise (Eval.Runtime_error "break outside loop")
      | (_, breaks, depth) :: _ ->
          unwind_scopes e ~to_depth:depth;
          breaks := emit_jump e (fun t -> Bytecode.Jump t) :: !breaks)
  | Ast.Continue -> (
      match e.loops with
      | [] -> raise (Eval.Runtime_error "continue outside loop")
      | (top, _, depth) :: _ ->
          unwind_scopes e ~to_depth:depth;
          emit e (Bytecode.Jump top))

and unwind_scopes e ~to_depth =
  for _ = to_depth + 1 to e.scope_depth do
    emit e Bytecode.Pop_scope
  done

and scoped_block e block =
  if block = [] then ()
  else begin
    emit e Bytecode.Push_scope;
    e.scope_depth <- e.scope_depth + 1;
    List.iter (stmt e) block;
    e.scope_depth <- e.scope_depth - 1;
    emit e Bytecode.Pop_scope
  end

and compile_proto ~name params body =
  let e = create () in
  List.iter (stmt e) body;
  (* Fall off the end: return null. *)
  emit e (Bytecode.Const Value.Null);
  emit e Bytecode.Return;
  { Bytecode.params; code = Array.sub e.buf 0 e.len; fn_name = name }

let compile_function ~name params body = compile_proto ~name params body

let compile_program program = compile_proto ~name:"<main>" [] program
