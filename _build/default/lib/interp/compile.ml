type t = {
  ast : Ast.program;
  source_bytes : int;
  nodes : int;
  raw_nodes : int;
}

let fold_binop op a b =
  let open Ast in
  match (op, a, b) with
  | Add, Num x, Num y -> Some (Num (x +. y))
  | Sub, Num x, Num y -> Some (Num (x -. y))
  | Mul, Num x, Num y -> Some (Num (x *. y))
  | Div, Num x, Num y when y <> 0.0 -> Some (Num (x /. y))
  | Mod, Num x, Num y when y <> 0.0 -> Some (Num (Float.rem x y))
  | Add, Str x, Str y -> Some (Str (x ^ y))
  | Eq, Num x, Num y -> Some (Bool (x = y))
  | Neq, Num x, Num y -> Some (Bool (x <> y))
  | Lt, Num x, Num y -> Some (Bool (x < y))
  | Le, Num x, Num y -> Some (Bool (x <= y))
  | Gt, Num x, Num y -> Some (Bool (x > y))
  | Ge, Num x, Num y -> Some (Bool (x >= y))
  | Eq, Str x, Str y -> Some (Bool (x = y))
  | Neq, Str x, Str y -> Some (Bool (x <> y))
  | _ -> None

let rec fold_expr (e : Ast.expr) : Ast.expr =
  let open Ast in
  match e with
  | Num _ | Str _ | Bool _ | Null | Var _ -> e
  | Array es -> Array (List.map fold_expr es)
  | Object fields -> Object (List.map (fun (k, e) -> (k, fold_expr e)) fields)
  | Index (a, i) -> Index (fold_expr a, fold_expr i)
  | Field (e, f) -> Field (fold_expr e, f)
  | Call (f, args) -> Call (fold_expr f, List.map fold_expr args)
  | Unop (op, e) -> (
      let e = fold_expr e in
      match (op, e) with
      | Neg, Num n -> Num (-.n)
      | Not, Bool b -> Bool (not b)
      | _ -> Unop (op, e))
  | Binop (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match fold_binop op a b with Some v -> v | None -> Binop (op, a, b))
  | And (a, b) -> (
      match fold_expr a with
      | Bool true -> fold_expr b
      | Bool false -> Bool false
      | a -> And (a, fold_expr b))
  | Or (a, b) -> (
      match fold_expr a with
      | Bool false -> fold_expr b
      | Bool true -> Bool true
      | a -> Or (a, fold_expr b))
  | Ternary (c, a, b) -> (
      match fold_expr c with
      | Bool true -> fold_expr a
      | Bool false -> fold_expr b
      | c -> Ternary (c, fold_expr a, fold_expr b))
  | Lambda (params, body) -> Lambda (params, fold_block body)

and fold_stmt (s : Ast.stmt) : Ast.stmt list =
  let open Ast in
  match s with
  | Expr e -> [ Expr (fold_expr e) ]
  | Let (name, e) -> [ Let (name, fold_expr e) ]
  | Assign (lv, e) ->
      let lv =
        match lv with
        | Lvar _ -> lv
        | Lindex (a, i) -> Lindex (fold_expr a, fold_expr i)
        | Lfield (e, f) -> Lfield (fold_expr e, f)
      in
      [ Assign (lv, fold_expr e) ]
  | If (c, then_, else_) -> (
      (* Dead branches are dropped, but the live branch keeps its [If]
         wrapper: inlining it would leak its [let] bindings into the
         enclosing scope. *)
      match fold_expr c with
      | Bool true -> ( match fold_block then_ with [] -> [] | b -> [ If (Bool true, b, []) ])
      | Bool false -> ( match fold_block else_ with [] -> [] | b -> [ If (Bool true, b, []) ])
      | c -> [ If (c, fold_block then_, fold_block else_) ])
  | While (c, body) -> (
      match fold_expr c with
      | Bool false -> []
      | c -> [ While (c, fold_block body) ])
  | Return None | Break | Continue -> [ s ]
  | Return (Some e) -> [ Return (Some (fold_expr e)) ]

and fold_block block = List.concat_map fold_stmt block

let fold_program = fold_block

let compile src =
  match Parser.parse src with
  | ast ->
      let raw_nodes = Ast.node_count ast in
      let folded = fold_program ast in
      Ok
        {
          ast = folded;
          source_bytes = String.length src;
          nodes = Ast.node_count folded;
          raw_nodes;
        }
  | exception Parser.Parse_error (msg, line, col) ->
      Error (Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | exception Lexer.Lex_error (msg, line, col) ->
      Error (Printf.sprintf "lex error at %d:%d: %s" line col msg)
