exception Parse_error of string * int * int

type state = { tokens : Lexer.located array; mutable pos : int; mutable in_for : bool }

let current st = st.tokens.(st.pos)

let error st msg =
  let { Lexer.line; col; _ } = current st in
  raise (Parse_error (msg, line, col))

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let check_punct st p =
  match (current st).Lexer.token with Lexer.Tpunct q -> q = p | _ -> false

let check_keyword st k =
  match (current st).Lexer.token with Lexer.Tkeyword q -> q = k | _ -> false

let eat_punct st p =
  if check_punct st p then advance st
  else error st (Printf.sprintf "expected '%s'" p)

let accept_punct st p =
  if check_punct st p then begin
    advance st;
    true
  end
  else false

let ident st =
  match (current st).Lexer.token with
  | Lexer.Tident name ->
      advance st;
      name
  | _ -> error st "expected identifier"

(* Comma-separated list until [close]; the closing token is consumed.
   Defined outside the parsing recursion so it stays polymorphic in the
   item type. *)
let sep_list st ~close ~item =
  if accept_punct st close then []
  else begin
    let first = item st in
    let rec rest acc =
      if accept_punct st close then List.rev acc
      else begin
        eat_punct st ",";
        rest (item st :: acc)
      end
    in
    rest [ first ]
  end

let rec params st =
  eat_punct st "(";
  sep_list st ~close:")" ~item:ident

(* {1 Expressions, by descending precedence} *)

and expr st = ternary st

and ternary st =
  let cond = logical_or st in
  if accept_punct st "?" then begin
    let then_ = expr st in
    eat_punct st ":";
    let else_ = expr st in
    Ast.Ternary (cond, then_, else_)
  end
  else cond

and logical_or st =
  let lhs = logical_and st in
  if accept_punct st "||" then Ast.Or (lhs, logical_or st) else lhs

and logical_and st =
  let lhs = equality st in
  if accept_punct st "&&" then Ast.And (lhs, logical_and st) else lhs

and binop_level st ~ops ~next =
  let lhs = ref (next st) in
  let rec go () =
    match
      List.find_opt (fun (p, _) -> check_punct st p) ops
    with
    | Some (p, op) ->
        eat_punct st p;
        let rhs = next st in
        lhs := Ast.Binop (op, !lhs, rhs);
        go ()
    | None -> !lhs
  in
  go ()

and equality st =
  binop_level st ~ops:[ ("==", Ast.Eq); ("!=", Ast.Neq) ] ~next:comparison

and comparison st =
  binop_level st
    ~ops:[ ("<=", Ast.Le); (">=", Ast.Ge); ("<", Ast.Lt); (">", Ast.Gt) ]
    ~next:additive

and additive st =
  binop_level st ~ops:[ ("+", Ast.Add); ("-", Ast.Sub) ] ~next:multiplicative

and multiplicative st =
  binop_level st
    ~ops:[ ("*", Ast.Mul); ("/", Ast.Div); ("%", Ast.Mod) ]
    ~next:unary

and unary st =
  if accept_punct st "!" then Ast.Unop (Ast.Not, unary st)
  else if accept_punct st "-" then Ast.Unop (Ast.Neg, unary st)
  else postfix st

and postfix st =
  let base = ref (primary st) in
  let rec go () =
    if accept_punct st "(" then begin
      let args = sep_list st ~close:")" ~item:expr in
      base := Ast.Call (!base, args);
      go ()
    end
    else if accept_punct st "[" then begin
      let idx = expr st in
      eat_punct st "]";
      base := Ast.Index (!base, idx);
      go ()
    end
    else if accept_punct st "." then begin
      base := Ast.Field (!base, ident st);
      go ()
    end
    else !base
  in
  go ()

and primary st =
  match (current st).Lexer.token with
  | Lexer.Tnum n ->
      advance st;
      Ast.Num n
  | Lexer.Tstr s ->
      advance st;
      Ast.Str s
  | Lexer.Tkeyword "true" ->
      advance st;
      Ast.Bool true
  | Lexer.Tkeyword "false" ->
      advance st;
      Ast.Bool false
  | Lexer.Tkeyword "null" ->
      advance st;
      Ast.Null
  | Lexer.Tkeyword "function" ->
      advance st;
      let ps = params st in
      Ast.Lambda (ps, braced_block st)
  | Lexer.Tident name ->
      advance st;
      Ast.Var name
  | Lexer.Tpunct "(" ->
      advance st;
      let e = expr st in
      eat_punct st ")";
      e
  | Lexer.Tpunct "[" ->
      advance st;
      Ast.Array (sep_list st ~close:"]" ~item:expr)
  | Lexer.Tpunct "{" ->
      advance st;
      let field st =
        let key =
          match (current st).Lexer.token with
          | Lexer.Tident k | Lexer.Tstr k ->
              advance st;
              k
          | _ -> error st "expected object key"
        in
        eat_punct st ":";
        (key, expr st)
      in
      Ast.Object (sep_list st ~close:"}" ~item:field)
  | _ -> error st "expected expression"

(* {1 Statements} *)

and braced_block st =
  eat_punct st "{";
  let rec go acc =
    if accept_punct st "}" then List.rev acc else go (stmt st :: acc)
  in
  go []

and block_or_stmt st = if check_punct st "{" then braced_block st else [ stmt st ]

and lvalue_of_expr st = function
  | Ast.Var name -> Ast.Lvar name
  | Ast.Index (a, i) -> Ast.Lindex (a, i)
  | Ast.Field (e, f) -> Ast.Lfield (e, f)
  | _ -> error st "invalid assignment target"

and stmt st =
  match (current st).Lexer.token with
  | Lexer.Tkeyword ("let" | "var") ->
      advance st;
      let name = ident st in
      eat_punct st "=";
      let value = expr st in
      ignore (accept_punct st ";");
      Ast.Let (name, value)
  | Lexer.Tkeyword "function" ->
      (* Distinguish a declaration from a lambda expression by the
         identifier that follows. *)
      if
        st.pos + 1 < Array.length st.tokens
        &&
        match st.tokens.(st.pos + 1).Lexer.token with
        | Lexer.Tident _ -> true
        | _ -> false
      then begin
        advance st;
        let name = ident st in
        let ps = params st in
        let body = braced_block st in
        Ast.Let (name, Ast.Lambda (ps, body))
      end
      else expr_stmt st
  | Lexer.Tkeyword "return" ->
      advance st;
      if accept_punct st ";" then Ast.Return None
      else begin
        let e = expr st in
        ignore (accept_punct st ";");
        Ast.Return (Some e)
      end
  | Lexer.Tkeyword "break" ->
      advance st;
      ignore (accept_punct st ";");
      Ast.Break
  | Lexer.Tkeyword "continue" ->
      if st.in_for then error st "continue is not supported inside for loops";
      advance st;
      ignore (accept_punct st ";");
      Ast.Continue
  | Lexer.Tkeyword "if" ->
      advance st;
      eat_punct st "(";
      let cond = expr st in
      eat_punct st ")";
      let then_ = block_or_stmt st in
      let else_ =
        if check_keyword st "else" then begin
          advance st;
          block_or_stmt st
        end
        else []
      in
      Ast.If (cond, then_, else_)
  | Lexer.Tkeyword "while" ->
      advance st;
      eat_punct st "(";
      let cond = expr st in
      eat_punct st ")";
      Ast.While (cond, block_or_stmt st)
  | Lexer.Tkeyword "for" ->
      advance st;
      eat_punct st "(";
      let init = stmt st in
      let cond = expr st in
      eat_punct st ";";
      let was_in_for = st.in_for in
      st.in_for <- true;
      let step = stmt st in
      eat_punct st ")";
      let body = block_or_stmt st in
      st.in_for <- was_in_for;
      (* Desugar: the step runs after the body on every iteration. *)
      Ast.If (Ast.Bool true, [ init; Ast.While (cond, body @ [ step ]) ], [])
  | _ -> expr_stmt st

and expr_stmt st =
  let e = expr st in
  let result =
    if check_punct st "=" then begin
      advance st;
      let lv = lvalue_of_expr st e in
      Ast.Assign (lv, expr st)
    end
    else if check_punct st "+=" || check_punct st "-=" then begin
      let op = if check_punct st "+=" then Ast.Add else Ast.Sub in
      advance st;
      let lv = lvalue_of_expr st e in
      Ast.Assign (lv, Ast.Binop (op, e, expr st))
    end
    else Ast.Expr e
  in
  ignore (accept_punct st ";");
  result

let parse src =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let st = { tokens; pos = 0; in_for = false } in
  let rec go acc =
    match (current st).Lexer.token with
    | Lexer.Teof -> List.rev acc
    | _ -> go (stmt st :: acc)
  in
  go []
