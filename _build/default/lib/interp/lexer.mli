(** Hand-written lexer for MiniJS source text. *)

type token =
  | Tnum of float
  | Tstr of string
  | Tident of string
  | Tkeyword of string  (** let, function, return, if, else, while, for, true, false, null, break, continue *)
  | Tpunct of string  (** operators and delimiters *)
  | Teof

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int
(** Message, line, column (1-based). *)

val tokenize : string -> located list
(** @raise Lex_error on invalid input. Comments ([// ...] and
    [/* ... */]) and whitespace are skipped. *)
