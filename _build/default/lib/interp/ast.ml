type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Var of string
  | Array of expr list
  | Object of (string * expr) list
  | Index of expr * expr
  | Field of expr * string
  | Call of expr * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Ternary of expr * expr * expr
  | Lambda of string list * block

and stmt =
  | Expr of expr
  | Let of string * expr
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | Return of expr option
  | Break
  | Continue

and lvalue = Lvar of string | Lindex of expr * expr | Lfield of expr * string

and block = stmt list

type program = block

let rec expr_nodes = function
  | Num _ | Str _ | Bool _ | Null | Var _ -> 1
  | Array es -> 1 + sum_exprs es
  | Object fields -> 1 + List.fold_left (fun n (_, e) -> n + expr_nodes e) 0 fields
  | Index (a, b) | Binop (_, a, b) | And (a, b) | Or (a, b) ->
      1 + expr_nodes a + expr_nodes b
  | Field (e, _) | Unop (_, e) -> 1 + expr_nodes e
  | Call (f, args) -> 1 + expr_nodes f + sum_exprs args
  | Ternary (c, a, b) -> 1 + expr_nodes c + expr_nodes a + expr_nodes b
  | Lambda (params, body) -> 1 + List.length params + block_nodes body

and sum_exprs es = List.fold_left (fun n e -> n + expr_nodes e) 0 es

and stmt_nodes = function
  | Expr e -> 1 + expr_nodes e
  | Let (_, e) -> 1 + expr_nodes e
  | Assign (lv, e) -> 1 + lvalue_nodes lv + expr_nodes e
  | If (c, a, b) -> 1 + expr_nodes c + block_nodes a + block_nodes b
  | While (c, body) -> 1 + expr_nodes c + block_nodes body
  | Return (Some e) -> 1 + expr_nodes e
  | Return None | Break | Continue -> 1

and lvalue_nodes = function
  | Lvar _ -> 1
  | Lindex (a, b) -> 1 + expr_nodes a + expr_nodes b
  | Lfield (e, _) -> 1 + expr_nodes e

and block_nodes block = List.fold_left (fun n s -> n + stmt_nodes s) 0 block

let node_count = block_nodes
