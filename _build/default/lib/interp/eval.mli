(** Metered tree-walking evaluator.

    Every evaluation step and heap allocation is reported through
    {!hooks}, which is how MiniJS execution is coupled to the simulated
    world: the unikernel guest wires [alloc] to a bump allocator over the
    UC address space (so running code dirties pages) and [work] to
    simulated CPU time (so heavy functions occupy a core). *)

type hooks = {
  alloc : int -> unit;  (** called with approximate bytes per allocation *)
  work : float -> unit;
      (** called with simulated CPU seconds, in batches — implementations
          typically accumulate or [Engine.sleep] *)
  max_ops : int;  (** runaway-script guard *)
}

val default_hooks : hooks
(** No-op metering with a 100M-step budget; for host-side tests. *)

val seconds_per_op : float
(** Simulated interpreter speed (50M simple operations per second, in
    the range of a bytecode interpreter on the paper's 2.2 GHz Xeon). *)

exception Runtime_error of string

exception Ops_exhausted
(** The [max_ops] budget was hit. *)

val exec_program : hooks -> env:Value.env -> Ast.program -> unit
(** Execute top-level statements, binding declarations into [env]. *)

val call : hooks -> Value.t -> Value.t list -> Value.t
(** Apply a closure or builtin. @raise Runtime_error on a non-function. *)

val eval_expr : hooks -> env:Value.env -> Ast.expr -> Value.t
