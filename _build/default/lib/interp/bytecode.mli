(** Stack bytecode for MiniJS.

    The reproduction's guest charges time for an "import and compile"
    stage; this module is that stage made concrete: {!Codegen} lowers
    the AST to this instruction set and {!Vm} executes it. The VM is a
    second, independent execution engine — the test suite runs random
    programs through both it and the tree-walking {!Eval} and demands
    identical results, which is the strongest correctness check the
    language layer has.

    Variables are addressed by name through the same {!Value.env} scope
    chain the tree-walker uses (an early-Python-style design): closures
    capture their defining environment and need no upvalue analysis. *)

type instr =
  | Const of Value.t  (** push a literal (immediate values only) *)
  | Load of string  (** push variable (scope-chain lookup) *)
  | Store of string  (** pop into existing binding *)
  | Define of string  (** pop into a new binding in the current scope *)
  | Pop
  | Dup
  | Make_array of int  (** pop n elements (last on top) *)
  | Make_object of string list  (** pop one value per key (last on top) *)
  | Index_get  (** pop index, container; push element *)
  | Index_set  (** pop value, index, container *)
  | Field_get of string
  | Field_set of string
  | Unop of Ast.unop
  | Binop of Ast.binop
  | Call of int  (** pop n args (last on top) then callee; push result *)
  | Closure of proto  (** push a closure over the current scope *)
  | Jump of int  (** absolute target *)
  | Jump_if_false of int  (** pop; jump when falsy *)
  | Jump_if_true of int
  | Push_scope  (** enter a block scope *)
  | Pop_scope
  | Return  (** pop return value, leave the function *)

and proto = { params : string list; code : instr array; fn_name : string }

val pp_instr : Format.formatter -> instr -> unit

val length : proto -> int
(** Total instructions including nested closures. *)
