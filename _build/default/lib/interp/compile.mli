(** The "import and compile" stage of a function's lifecycle.

    The paper measures roughly 5 ms to import and compile even a one-line
    NOP function (Table 1 discussion) — compilation is the dominant cold
    path cost that function-specific snapshots exist to skip. Our compile
    stage is real work: lexing, parsing and a constant-folding pass over
    the AST. The caller charges simulated time and guest-heap allocations
    proportional to the measured node counts. *)

type t = {
  ast : Ast.program;  (** folded program, ready to execute *)
  source_bytes : int;
  nodes : int;  (** post-fold AST size *)
  raw_nodes : int;  (** pre-fold AST size (parser allocation proxy) *)
}

val compile : string -> (t, string) result
(** [Error msg] carries a located syntax-error message. *)

val fold_program : Ast.program -> Ast.program
(** Constant folding: arithmetic/comparison on literals, branch pruning
    on constant conditions. Exposed for tests. *)
