(** AST to bytecode lowering.

    Control flow becomes jumps (with short-circuit [&&]/[||] and
    ternaries), [break]/[continue] unwind the block scopes they crossed,
    and lambdas become nested {!Bytecode.proto}s closing over their
    defining scope. *)

val compile_program : Ast.program -> Bytecode.proto
(** The whole program as a zero-argument proto (top-level scope is the
    caller's environment). *)

val compile_function : name:string -> string list -> Ast.block -> Bytecode.proto
