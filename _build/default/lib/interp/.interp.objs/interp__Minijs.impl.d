lib/interp/minijs.ml: Ast Builtins Compile Eval List Option Printf Value
