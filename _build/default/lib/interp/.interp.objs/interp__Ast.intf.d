lib/interp/ast.mli:
