lib/interp/minijs.mli: Builtins Compile Eval Value
