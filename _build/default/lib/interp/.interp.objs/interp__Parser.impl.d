lib/interp/parser.ml: Array Ast Lexer List Printf
