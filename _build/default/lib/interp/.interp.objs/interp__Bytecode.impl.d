lib/interp/bytecode.ml: Array Ast Format List String Value
