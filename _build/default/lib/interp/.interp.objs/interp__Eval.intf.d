lib/interp/eval.mli: Ast Value
