lib/interp/bytecode.mli: Ast Format Value
