lib/interp/parser.mli: Ast
