lib/interp/lexer.ml: Buffer List Printf String
