lib/interp/vm.ml: Array Ast Bytecode Codegen Eval Float Hashtbl List Option Printf String Value
