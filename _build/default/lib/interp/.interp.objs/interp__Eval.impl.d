lib/interp/eval.ml: Array Ast Float Hashtbl List Option Printf String Value
