lib/interp/builtins.ml: Array Char Eval Float Hashtbl List Printf String Value
