lib/interp/codegen.mli: Ast Bytecode
