lib/interp/compile.ml: Ast Float Lexer List Parser Printf String
