lib/interp/vm.mli: Ast Bytecode Eval Value
