lib/interp/value.ml: Array Ast Buffer Float Hashtbl List Printf String
