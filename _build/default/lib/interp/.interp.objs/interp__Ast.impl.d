lib/interp/ast.ml: List
