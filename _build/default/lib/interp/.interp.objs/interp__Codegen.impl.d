lib/interp/codegen.ml: Array Ast Bytecode Eval List Value
