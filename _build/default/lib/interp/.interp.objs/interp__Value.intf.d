lib/interp/value.mli: Ast Hashtbl
