lib/interp/lexer.mli:
