lib/interp/builtins.mli: Value
