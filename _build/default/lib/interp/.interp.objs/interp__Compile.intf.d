lib/interp/compile.mli: Ast
