type t = {
  compiled : Compile.t;
  env : Value.env;
  hooks : Eval.hooks;
}

let load ?(hooks = Eval.default_hooks) ~host source =
  match Compile.compile source with
  | Error _ as e -> e
  | Ok compiled -> (
      let globals = Value.new_env () in
      List.iter
        (fun (name, v) -> Value.define globals name v)
        (Builtins.install host);
      let env = Value.new_env ~parent:globals () in
      match Eval.exec_program hooks ~env compiled.Compile.ast with
      | () -> Ok { compiled; env; hooks }
      | exception Eval.Runtime_error msg -> Error ("runtime error: " ^ msg)
      | exception Eval.Ops_exhausted -> Error "runtime error: step budget exhausted")

let compiled t = t.compiled

let clone ?hooks ~host t =
  let hooks = Option.value hooks ~default:t.hooks in
  let builtins = Builtins.install host in
  let rebind_builtin name = List.assoc_opt name builtins in
  { compiled = t.compiled; env = Value.deep_copy_env ~rebind_builtin t.env; hooks }

let call t ~fname args =
  match Value.lookup t.env fname with
  | None -> Error (Printf.sprintf "no function '%s'" fname)
  | Some f -> (
      match Eval.call t.hooks f args with
      | v -> Ok v
      | exception Eval.Runtime_error msg -> Error ("runtime error: " ^ msg)
      | exception Eval.Ops_exhausted -> Error "runtime error: step budget exhausted")

let parse_literal t source =
  match Compile.compile source with
  | Error _ as e -> e
  | Ok { Compile.ast; _ } -> (
      match ast with
      | [ Ast.Expr e ] -> (
          match Eval.eval_expr t.hooks ~env:t.env e with
          | v -> Ok v
          | exception Eval.Runtime_error msg -> Error ("runtime error: " ^ msg)
          | exception Eval.Ops_exhausted ->
              Error "runtime error: step budget exhausted")
      | [] -> Ok Value.Null
      | _ -> Error "expected a single expression")

let run_main t ~args_literal =
  match parse_literal t args_literal with
  | Error msg -> Error ("bad arguments: " ^ msg)
  | Ok args -> (
      match call t ~fname:"main" [ args ] with
      | Ok v -> Ok (Value.to_string v)
      | Error _ as e -> e)
