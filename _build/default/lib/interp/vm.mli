(** The bytecode virtual machine: MiniJS's second execution engine.

    Runs {!Codegen} output with the same metering hooks, the same
    builtins and the same observable semantics as the tree-walking
    {!Eval} — the differential test suite holds the two engines to
    identical results on random programs. VM closures are represented as
    host functions ({!Value.Builtin}), so values flow freely between
    engines; note that unlike tree closures they are opaque to
    {!Value.deep_copy_env}, which is why the snapshot/guest pipeline
    uses the tree-walker and the VM serves as the validation and
    compile-cost reference engine. *)

exception Vm_error of string
(** Internal invariant violation (a miscompile); user-level errors raise
    {!Eval.Runtime_error} exactly as the tree-walker does. *)

val exec_program : Eval.hooks -> env:Value.env -> Ast.program -> unit
(** Compile and run top-level statements, binding into [env]. *)

val eval_expr : Eval.hooks -> env:Value.env -> Ast.expr -> Value.t

val call : Eval.hooks -> Value.t -> Value.t list -> Value.t
(** Apply a VM closure or builtin. *)

val run_proto : Eval.hooks -> env:Value.env -> Bytecode.proto -> Value.t
(** Execute a compiled proto in (a child scope of) [env]. *)
