(** Recursive-descent parser for MiniJS.

    Grammar notes:
    - [function f(a, b) { ... }] declares [f] as a binding of a lambda;
    - [for (init; cond; step) body] is desugared to a [while] loop with
      the step appended to the body (so [continue] inside a [for] is
      rejected at parse time rather than silently skipping the step);
    - assignment is a statement, not an expression. *)

exception Parse_error of string * int * int
(** Message, line, column of the offending token. *)

val parse : string -> Ast.program
(** @raise Parse_error or [Lexer.Lex_error] on invalid source. *)
