(** The SEUSS per-core network proxy.

    Every UC boots with an identical IP and MAC; the proxy masquerades
    traffic in and out, keying flows by TCP destination port (§6,
    Networking). Internally it is a port-to-listener map plus a small
    per-flow translation cost — deliberately cheap, which is exactly the
    contrast with {!Bridge}: proxy cost is O(1) in the number of UCs. *)

type t

val create : unit -> t

val register : t -> port:int -> Tcp.listener -> unit
(** Map a UC's driver listener. @raise Invalid_argument on duplicate. *)

val unregister : t -> port:int -> unit
(** Unknown ports are ignored (UC teardown is idempotent). *)

val lookup : t -> port:int -> Tcp.listener option

val connect : t -> port:int -> Tcp.conn option
(** Connect from SEUSS OS to the UC behind [port] over the internal
    link; [None] if no mapping or the UC refuses. *)

val outbound : t -> Tcp.listener -> Tcp.conn option
(** A guest-initiated connection to an external service, masqueraded
    through the proxy (the only direction the prototype supports). *)

val active_mappings : t -> int

val translations : t -> int
(** Lifetime flow-translation count (both directions). *)
