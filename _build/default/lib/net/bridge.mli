(** The Linux veth/bridge bottleneck model.

    §7 ("Linux Container Limit") diagnoses the Linux node's failures: a
    broadcast packet on a bridge with N endpoints is processed by the
    kernel N separate times, so endpoint churn (container creation) costs
    O(N) serialized kernel work, and beyond ~1024 endpoints SYNs drop and
    controller-to-container connections time out. This module reproduces
    those two behaviours as an explicit queueing model:

    - {!add_endpoint} serializes an O(endpoints) broadcast storm on the
      bridge's kernel thread;
    - {!connect} is refused with a probability that grows with endpoint
      count and with concurrent connection attempts; refused SYNs retry
      on {!Tcp.syn_timeout} and ultimately fail, surfacing as the 'x'
      marks in Figures 6-8. *)

type config = {
  safe_endpoints : int;
      (** the default Linux bridge port limit, 1024 *)
  broadcast_cost : float;
      (** kernel time per endpoint traversal per broadcast (seconds) *)
  drop_base : float;
      (** drop probability scale; see [drop_probability] *)
}

val default_config : config

type t

val create : ?config:config -> rng:Sim.Prng.t -> unit -> t

val config : t -> config

val add_endpoint : t -> unit
(** Attach a veth endpoint (a container). Sleeps the serialized
    broadcast-processing time — this is why container creation latency
    grows with the container population. *)

val remove_endpoint : t -> unit

val endpoints : t -> int

val connect : t -> Tcp.listener -> Tcp.conn option
(** Connect across the bridge; [None] after exhausting SYN retries. *)

val drop_probability : t -> float
(** Current per-SYN drop probability:
    [drop_base * (endpoints/safe)^2 * (1 + concurrent_attempts/8)],
    clamped to \[0, 0.9\]. *)

val dropped_syns : t -> int

val failed_connects : t -> int
