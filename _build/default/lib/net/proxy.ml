type t = {
  mappings : (int, Tcp.listener) Hashtbl.t;
  mutable translations : int;
}

(* Flow-table insertion and header rewrite on the fast path. *)
let translation_cost = 2e-6

let create () = { mappings = Hashtbl.create 64; translations = 0 }

let register t ~port l =
  if Hashtbl.mem t.mappings port then
    invalid_arg (Printf.sprintf "Proxy.register: port %d already mapped" port);
  Hashtbl.replace t.mappings port l

let unregister t ~port = Hashtbl.remove t.mappings port

let lookup t ~port = Hashtbl.find_opt t.mappings port

let connect t ~port =
  match lookup t ~port with
  | None -> None
  | Some l ->
      Sim.Engine.sleep translation_cost;
      t.translations <- t.translations + 1;
      Tcp.connect ~link:Netconf.internal l

let outbound t l =
  Sim.Engine.sleep translation_cost;
  t.translations <- t.translations + 1;
  Tcp.connect ~link:Netconf.lan l

let active_mappings t = Hashtbl.length t.mappings

let translations t = t.translations
