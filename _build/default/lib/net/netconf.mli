(** Link parameters for the simulated fabric.

    The paper's testbed is a 10 GbE private VLAN between four machines,
    plus near-zero-cost paths inside one machine (shim -> VM virtio, and
    SEUSS OS -> UC over the internal network). *)

type link = {
  latency : float;  (** one-way propagation + stack traversal, seconds *)
  bandwidth : float;  (** bytes per second *)
  per_message : float;  (** fixed per-message processing cost, seconds *)
}

val lan : link
(** Machine-to-machine over the 10 GbE switch (~80 us one-way). *)

val virtio : link
(** Host process to the compute-node VM via virtio/vhost. The paper
    measures the shim hop adding ~8 ms round trip to hot invocations; the
    dominant term is the shim's serialized TCP connection, modeled in
    [Seuss.Shim], with ~1 ms of it in the virtio path itself. *)

val internal : link
(** SEUSS OS to a UC through the per-core network proxy (~10 us). *)

val loopback : link
(** Inside one OS instance. *)
