(** Minimal HTTP-shaped request/response framing over {!Tcp}.

    Both the OpenWhisk API surface and the guest invocation driver speak
    this framing; the external blocking endpoint of the burst experiment
    (a server that sleeps 250 ms before answering OK) is three lines of
    {!serve}. *)

type request = { path : string; body : string; body_size : int }

type response = { status : int; body : string; body_size : int }

val ok : ?body_size:int -> string -> response

val error : int -> string -> response

val request :
  conn:Tcp.conn ->
  ?timeout:float ->
  ?body_size:int ->
  path:string ->
  string ->
  (response, [ `Timeout | `Closed ]) result
(** One round trip on an established connection. *)

val serve : listener:Tcp.listener -> (request -> response) -> unit
(** Spawn an accept loop on the current engine: one simulation process
    per connection, requests handled sequentially per connection. The
    handler runs inside the connection's process and may sleep. *)

val get :
  link:Netconf.link ->
  ?admit:(unit -> bool) ->
  ?timeout:float ->
  Tcp.listener ->
  path:string ->
  (response, [ `Timeout | `Closed | `Refused ]) result
(** Connect, perform one request, close. *)
