type link = { latency : float; bandwidth : float; per_message : float }

let gbit10 = 10.0 *. 1e9 /. 8.0

let lan = { latency = 80e-6; bandwidth = gbit10; per_message = 10e-6 }
let virtio = { latency = 250e-6; bandwidth = gbit10; per_message = 20e-6 }
let internal = { latency = 5e-6; bandwidth = 4.0 *. gbit10; per_message = 3e-6 }
let loopback = { latency = 2e-6; bandwidth = 8.0 *. gbit10; per_message = 1e-6 }
