lib/net/tcp.mli: Netconf
