lib/net/netconf.mli:
