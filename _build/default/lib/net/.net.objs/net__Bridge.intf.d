lib/net/bridge.mli: Sim Tcp
