lib/net/http.ml: Option Printf Sim String Tcp
