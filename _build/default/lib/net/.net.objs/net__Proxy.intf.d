lib/net/proxy.mli: Tcp
