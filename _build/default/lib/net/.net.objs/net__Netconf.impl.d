lib/net/netconf.ml:
