lib/net/bridge.ml: Float Netconf Option Sim Tcp
