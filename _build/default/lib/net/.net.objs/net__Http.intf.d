lib/net/http.mli: Netconf Tcp
