lib/net/proxy.ml: Hashtbl Netconf Printf Sim Tcp
