lib/net/tcp.ml: Netconf Option Sim String
