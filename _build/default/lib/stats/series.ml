type point = { time : float; value : float; ok : bool }

type t = { mutable rev_points : point list; mutable n : int; mutable fails : int }

let create () = { rev_points = []; n = 0; fails = 0 }

let add t ~time ~value ~ok =
  t.rev_points <- { time; value; ok } :: t.rev_points;
  t.n <- t.n + 1;
  if not ok then t.fails <- t.fails + 1

let length t = t.n
let failures t = t.fails

let points t =
  let a = Array.make t.n { time = 0.0; value = 0.0; ok = true } in
  let i = ref (t.n - 1) in
  List.iter
    (fun p ->
      a.(!i) <- p;
      decr i)
    t.rev_points;
  a

let window_counts t ~width =
  if width <= 0.0 then invalid_arg "Series.window_counts: width";
  if t.n = 0 then []
  else begin
    let pts = points t in
    (* Windows are anchored at multiples of [width] so bin edges are
       predictable regardless of when the first event lands. *)
    let tmin =
      Array.fold_left (fun acc p -> Float.min acc p.time) Float.infinity pts
    in
    let tmin = Float.of_int (int_of_float (floor (tmin /. width))) *. width in
    let tmax =
      Array.fold_left (fun acc p -> Float.max acc p.time) Float.neg_infinity pts
    in
    let nwin = 1 + int_of_float ((tmax -. tmin) /. width) in
    let counts = Array.make nwin 0 in
    Array.iter
      (fun p ->
        let i = int_of_float ((p.time -. tmin) /. width) in
        let i = min i (nwin - 1) in
        counts.(i) <- counts.(i) + 1)
      pts;
    List.init nwin (fun i -> (tmin +. (float_of_int i *. width), counts.(i)))
  end

let window_rate t ~width =
  List.map
    (fun (start, c) -> (start, float_of_int c /. width))
    (window_counts t ~width)
