type t = {
  mutable data : float array;
  mutable size : int;
  mutable sum : float;
  mutable sum_sq : float;
  (* Sorted view computed lazily and invalidated on insert. *)
  mutable sorted : float array option;
}

let create () =
  { data = [||]; size = 0; sum = 0.0; sum_sq = 0.0; sorted = None }

let add t x =
  if t.size = Array.length t.data then begin
    let cap = max 64 (2 * Array.length t.data) in
    let data = Array.make cap 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  t.sorted <- None

let count t = t.size
let total t = t.sum
let mean t = if t.size = 0 then 0.0 else t.sum /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.0
  else
    let n = float_of_int t.size in
    let var = (t.sum_sq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    sqrt (Float.max 0.0 var)

let require_nonempty t name =
  if t.size = 0 then invalid_arg (Printf.sprintf "Summary.%s: empty" name)

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
      let s = Array.sub t.data 0 t.size in
      Array.sort compare s;
      t.sorted <- Some s;
      s

let min_value t =
  require_nonempty t "min_value";
  (sorted t).(0)

let max_value t =
  require_nonempty t "max_value";
  (sorted t).(t.size - 1)

let percentile t p =
  require_nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: out of range";
  let s = sorted t in
  let rank = p /. 100.0 *. float_of_int (t.size - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then s.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. s.(lo)) +. (w *. s.(hi))

let samples t = Array.sub t.data 0 t.size

type digest = {
  n : int;
  mean : float;
  p01 : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p99 : float;
  min : float;
  max : float;
}

let digest t =
  require_nonempty t "digest";
  {
    n = t.size;
    mean = mean t;
    p01 = percentile t 1.0;
    p25 = percentile t 25.0;
    p50 = percentile t 50.0;
    p75 = percentile t 75.0;
    p99 = percentile t 99.0;
    min = min_value t;
    max = max_value t;
  }

let pp_digest ~scale ~unit ppf d =
  Format.fprintf ppf
    "n=%d mean=%.2f%s p1=%.2f p25=%.2f p50=%.2f p75=%.2f p99=%.2f%s" d.n
    (d.mean *. scale) unit (d.p01 *. scale) (d.p25 *. scale) (d.p50 *. scale)
    (d.p75 *. scale) (d.p99 *. scale) unit
