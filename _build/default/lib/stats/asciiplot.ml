type scale = Linear | Log

type series = { label : string; mark : char; points : (float * float) list }

type t = {
  width : int;
  height : int;
  xscale : scale;
  yscale : scale;
  title : string;
  xlabel : string;
  ylabel : string;
  mutable rev_series : series list;
}

let create ?(width = 72) ?(height = 20) ?(xscale = Linear) ?(yscale = Linear)
    ~title ~xlabel ~ylabel () =
  if width < 10 || height < 4 then invalid_arg "Asciiplot.create: too small";
  { width; height; xscale; yscale; title; xlabel; ylabel; rev_series = [] }

let add_series t ~label ~mark points =
  t.rev_series <- { label; mark; points } :: t.rev_series

let transform scale v = match scale with Linear -> v | Log -> log10 v

let visible scale v = match scale with Linear -> true | Log -> v > 0.0

let render t =
  let series = List.rev t.rev_series in
  let pts =
    List.concat_map
      (fun s ->
        List.filter
          (fun (x, y) -> visible t.xscale x && visible t.yscale y)
          s.points)
      series
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s\n" t.title);
  if pts = [] then begin
    Buffer.add_string buf "  (no data)\n";
    Buffer.contents buf
  end
  else begin
    let xs = List.map (fun (x, _) -> transform t.xscale x) pts in
    let ys = List.map (fun (_, y) -> transform t.yscale y) pts in
    let fold f = function [] -> 0.0 | h :: rest -> List.fold_left f h rest in
    let xmin = fold Float.min xs and xmax = fold Float.max xs in
    let ymin = fold Float.min ys and ymax = fold Float.max ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix t.height t.width ' ' in
    let place mark (x, y) =
      if visible t.xscale x && visible t.yscale y then begin
        let tx = transform t.xscale x and ty = transform t.yscale y in
        let col =
          int_of_float ((tx -. xmin) /. xspan *. float_of_int (t.width - 1))
        in
        let row =
          t.height - 1
          - int_of_float ((ty -. ymin) /. yspan *. float_of_int (t.height - 1))
        in
        let col = max 0 (min (t.width - 1) col) in
        let row = max 0 (min (t.height - 1) row) in
        (* Later series overwrite; failures are usually plotted last so
           their 'x' marks stay visible. *)
        grid.(row).(col) <- mark
      end
    in
    List.iter (fun s -> List.iter (place s.mark) s.points) series;
    let untransform scale v = match scale with Linear -> v | Log -> 10.0 ** v in
    let ytick row =
      let frac = float_of_int (t.height - 1 - row) /. float_of_int (t.height - 1) in
      untransform t.yscale (ymin +. (frac *. yspan))
    in
    for row = 0 to t.height - 1 do
      let label =
        if row = 0 || row = t.height - 1 || row = t.height / 2 then
          Printf.sprintf "%10.3g " (ytick row)
        else String.make 11 ' '
      in
      Buffer.add_string buf label;
      Buffer.add_char buf '|';
      Buffer.add_string buf (String.init t.width (fun c -> grid.(row).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make t.width '-');
    Buffer.add_char buf '\n';
    let x_at frac = untransform t.xscale (xmin +. (frac *. xspan)) in
    Buffer.add_string buf
      (Printf.sprintf "%11s%-12.4g%*.4g\n" "" (x_at 0.0) (t.width - 12)
         (x_at 1.0));
    Buffer.add_string buf
      (Printf.sprintf "  x: %s%s, y: %s%s\n" t.xlabel
         (match t.xscale with Log -> " (log)" | Linear -> "")
         t.ylabel
         (match t.yscale with Log -> " (log)" | Linear -> ""));
    let visible_points s =
      List.length
        (List.filter
           (fun (x, y) -> visible t.xscale x && visible t.yscale y)
           s.points)
    in
    List.iter
      (fun s ->
        let n = visible_points s in
        if n > 0 then
          Buffer.add_string buf
            (Printf.sprintf "  '%c' = %s (%d points)\n" s.mark s.label n))
      series;
    Buffer.contents buf
  end

let pp ppf t = Format.pp_print_string ppf (render t)
