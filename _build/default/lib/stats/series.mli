(** Timestamped event series.

    The burst figures (6-8) are scatter plots of (send time, latency,
    outcome) per request; this module records them and provides
    time-window aggregation for throughput-over-time views. *)

type point = { time : float; value : float; ok : bool }

type t

val create : unit -> t

val add : t -> time:float -> value:float -> ok:bool -> unit

val length : t -> int

val points : t -> point array
(** Copy, in insertion order. *)

val failures : t -> int

val window_counts : t -> width:float -> (float * int) list
(** [(window_start, events_in_window)] covering the series span. Empty
    list when the series is empty. *)

val window_rate : t -> width:float -> (float * float) list
(** Events per second per window. *)
