(** Fixed-layout log-binned histograms.

    Latencies in the burst experiments span four orders of magnitude
    (sub-ms hot starts to 60 s container cold starts); a logarithmic
    histogram summarises them compactly without retaining every sample. *)

type t

val create : ?lo:float -> ?hi:float -> ?bins_per_decade:int -> unit -> t
(** Default layout: [lo = 1e-4] s, [hi = 1e3] s, 10 bins per decade.
    Samples outside the range clamp to the edge bins. *)

val add : t -> float -> unit

val count : t -> int

val bin_count : t -> int

val bin_bounds : t -> int -> float * float
(** Lower/upper bound of a bin index. *)

val bin_value : t -> int -> int
(** Number of samples in a bin. *)

val fold : t -> init:'a -> f:('a -> lo:float -> hi:float -> count:int -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
(** Compact bar rendering of non-empty bins. *)
