type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rev_rows : row list;
}

let create ~columns =
  if columns = [] then invalid_arg "Tablefmt.create: no columns";
  { headers = List.map fst columns; aligns = List.map snd columns; rev_rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rev_rows <- Cells cells :: t.rev_rows

let add_separator t = t.rev_rows <- Separator :: t.rev_rows

let render t =
  let rows = List.rev t.rev_rows in
  let widths =
    List.fold_left
      (fun ws row ->
        match row with
        | Separator -> ws
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) ws cells)
      (List.map String.length t.headers)
      rows
  in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        let width = List.nth widths i and align = List.nth t.aligns i in
        Buffer.add_string buf (pad align width cell))
      cells;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  rule ();
  emit_cells t.headers;
  rule ();
  List.iter
    (fun row -> match row with Separator -> rule () | Cells c -> emit_cells c)
    rows;
  rule ();
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
