(** ASCII scatter/line plots for regenerating the paper's figures in a
    terminal. Supports log-scaled axes (the burst figures use a log-scale
    latency axis) and multiple labelled series sharing one canvas. *)

type scale = Linear | Log

type t

val create :
  ?width:int ->
  ?height:int ->
  ?xscale:scale ->
  ?yscale:scale ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  unit ->
  t
(** Default canvas is 72x20 characters, both axes linear. *)

val add_series : t -> label:string -> mark:char -> (float * float) list -> unit

val render : t -> string
(** Renders the canvas, axis ticks and a legend. Points that fall outside
    a log-scaled axis' positive domain are dropped. *)

val pp : Format.formatter -> t -> unit
