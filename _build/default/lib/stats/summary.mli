(** Latency/throughput summaries.

    Collects raw samples and reports the statistics the paper plots:
    mean and the 1st/25th/50th/75th/99th percentiles (Figure 5), plus
    min/max/stddev for the microbenchmark tables. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0.0 when empty. *)

val stddev : t -> float

val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], by linear interpolation
    between closest ranks. @raise Invalid_argument when empty or [p] out
    of range. *)

val total : t -> float
(** Sum of all samples. *)

val samples : t -> float array
(** A copy of the raw samples, in insertion order. *)

type digest = {
  n : int;
  mean : float;
  p01 : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p99 : float;
  min : float;
  max : float;
}

val digest : t -> digest
(** The paper's Figure 5 statistic set. @raise Invalid_argument when
    empty. *)

val pp_digest : scale:float -> unit:string -> Format.formatter -> digest -> unit
(** Render as one line, samples multiplied by [scale] (e.g. 1e3 for
    seconds -> ms) with [unit] appended. *)
