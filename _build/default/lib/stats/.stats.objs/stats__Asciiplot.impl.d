lib/stats/asciiplot.ml: Array Buffer Float Format List Printf String
