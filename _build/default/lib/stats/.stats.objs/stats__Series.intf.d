lib/stats/series.mli:
