lib/stats/asciiplot.mli: Format
