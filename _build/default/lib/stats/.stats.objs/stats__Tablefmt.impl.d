lib/stats/tablefmt.ml: Buffer Format List String
