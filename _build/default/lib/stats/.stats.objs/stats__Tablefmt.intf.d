lib/stats/tablefmt.mli: Format
