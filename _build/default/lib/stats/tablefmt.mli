(** Fixed-width text tables, used to render the paper's Tables 1-3. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Column headers with per-column alignment. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity differs from the header. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val render : t -> string

val pp : Format.formatter -> t -> unit
