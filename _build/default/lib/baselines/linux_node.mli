(** The Linux/Docker compute node behind OpenWhisk (the comparison
    system of Figures 4-8).

    Containers are the unit of isolation and caching: a warm container
    is bound to one function and serves one invocation at a time; a
    *stemcell* is a pre-created Node.js container awaiting code. The
    node enforces the paper's operating points: a 1,024-container cache
    limit (the Linux bridge endpoint default — beyond it connections
    drop), pausing disabled, stemcells off for the throughput runs and
    set to 256 for the burst runs.

    Failure modes reproduced from §7: container creation slows with
    population and concurrency; a saturated cache forces
    evict-then-create cycles; bridge SYN drops surface as request
    errors; and when no capacity frees up within the timeout the request
    errors out. *)

type config = {
  container_cache_limit : int;
  stemcell_count : int;
  init_time : float;  (** /init: importing function code into Node.js *)
  dispatch_time : float;  (** invocation-server request handling *)
  invoke_timeout : float;
  capacity_retry_interval : float;
}

val default_config : config
(** Limit 1024, no stemcells, 55 ms init, 60 s timeout. *)

type fn = { fn_id : string; action : Backend_intf.action }

type invoke_error = [ `Timeout | `Connection_failed | `Overloaded ]

type path = Create | Stemcell | Warm_container

type stats = {
  creates : int;
  stemcell_hits : int;
  warm_hits : int;
  evictions : int;
  errors : int;
}

type t

val create : ?config:config -> Seuss.Osenv.t -> t
(** Uses the env's frame allocator and core pool; builds its own bridge. *)

val bridge : t -> Net.Bridge.t

val config : t -> config

val start : t -> unit
(** Pre-create the configured stemcells (blocking; call in-process). *)

val invoke : t -> fn -> (unit, invoke_error) result * path
(** Serve one invocation end to end. *)

val container_count : t -> int

val idle_count : t -> int

val stats : t -> stats
