(** Kernel Samepage Merging, the retroactive alternative to SEUSS's
    proactive sharing (discussed in §5: "In contrast to KSM, page-sharing
    in SEUSS is not applied retroactively").

    A background daemon scans registered address spaces at a bounded
    rate and merges pages whose content duplicates a master copy:
    mechanically, a merged page's table entry is redirected to the
    shared master frame, read-only + copy-on-write (a later write
    un-merges it), and the private frame is released. We do not model
    page *contents*; instead each registration declares how many of its
    pages are duplicates of the master image — for freshly initialized
    interpreter processes that fraction is large, which is exactly the
    workload KSM is advertised for.

    What the model exposes (and the ablation measures) is KSM's
    structural weaknesses against snapshot stacks: merging costs CPU,
    trails instance creation by the scan latency, and the shared pages
    open the deduplication side channel the paper cites. *)

type t

val create :
  ?scan_rate_pages_per_s:float ->
  ?dedup_fraction:float ->
  Seuss.Osenv.t ->
  t
(** Defaults: 25,000 pages/s scan rate (a generous `ksmd`), 45% of a
    process's private pages dedupable. *)

val register : t -> Mem.Addr_space.t -> private_base_vpn:int -> private_pages:int -> unit
(** Enroll a space's private region for scanning. *)

val run_daemon : t -> stop:unit Sim.Ivar.t -> unit
(** Spawn the scanning daemon on the env's engine; it merges enrolled
    regions until [stop] is filled. Merging burns core time at the scan
    rate. *)

val scan_once : t -> int
(** Process the backlog synchronously (blocking, for tests and for
    density sweeps): returns pages merged. *)

val merged_pages : t -> int

val pending_pages : t -> int
