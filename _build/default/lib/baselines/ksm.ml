type region = {
  space : Mem.Addr_space.t;
  base_vpn : int;
  mutable to_merge : int;  (* dedupable pages not yet merged *)
  mutable cursor : int;  (* pages of this region already merged *)
}

type t = {
  env : Seuss.Osenv.t;
  scan_rate : float;
  fraction : float;
  master : Mem.Frame.frame;
  pending : region Queue.t;
  mutable merged : int;
  mutable pending_total : int;
}

(* Cost of comparing + checksumming one candidate page during a scan. *)
let scan_cpu_per_page = 2.0e-6

let create ?(scan_rate_pages_per_s = 25_000.0) ?(dedup_fraction = 0.45) env =
  {
    env;
    scan_rate = scan_rate_pages_per_s;
    fraction = dedup_fraction;
    master = Mem.Frame.alloc env.Seuss.Osenv.frames;
    pending = Queue.create ();
    merged = 0;
    pending_total = 0;
  }

let register t space ~private_base_vpn ~private_pages =
  let dedupable = int_of_float (t.fraction *. float_of_int private_pages) in
  if dedupable > 0 then begin
    Queue.add
      { space; base_vpn = private_base_vpn; to_merge = dedupable; cursor = 0 }
      t.pending;
    t.pending_total <- t.pending_total + dedupable
  end

(* Merge up to [budget] pages from the backlog: redirect each entry to
   the master frame (read-only, copy-on-write — a write un-merges), and
   the page-table layer releases the private frame. *)
let merge_batch t budget =
  let merged_now = ref 0 in
  while !merged_now < budget && not (Queue.is_empty t.pending) do
    let region = Queue.peek t.pending in
    let table = Mem.Addr_space.table region.space in
    let n = min region.to_merge (budget - !merged_now) in
    for i = 0 to n - 1 do
      let vpn = region.base_vpn + region.cursor + i in
      let entry = Mem.Page_table.get table ~vpn in
      if Mem.Page_table.Entry.present entry then begin
        Mem.Frame.incref t.env.Seuss.Osenv.frames t.master;
        Mem.Page_table.set table ~vpn
          (Mem.Page_table.Entry.make ~frame:t.master ~writable:false ~cow:true
             ~dirty:false ~accessed:true)
      end
    done;
    region.cursor <- region.cursor + n;
    region.to_merge <- region.to_merge - n;
    merged_now := !merged_now + n;
    if region.to_merge = 0 then ignore (Queue.pop t.pending)
  done;
  t.merged <- t.merged + !merged_now;
  t.pending_total <- t.pending_total - !merged_now;
  !merged_now

let scan_once t =
  let total = ref 0 in
  let rec go () =
    let n = merge_batch t 4096 in
    if n > 0 then begin
      Seuss.Osenv.burn t.env (float_of_int n *. scan_cpu_per_page);
      total := !total + n;
      go ()
    end
  in
  go ();
  !total

let run_daemon t ~stop =
  let engine = t.env.Seuss.Osenv.engine in
  Sim.Engine.spawn engine ~name:"ksmd" (fun () ->
      let tick = 0.1 in
      let budget_per_tick = int_of_float (t.scan_rate *. tick) in
      let rec loop () =
        if not (Sim.Ivar.is_full stop) then begin
          let n = merge_batch t budget_per_tick in
          if n > 0 then
            Seuss.Osenv.burn t.env (float_of_int n *. scan_cpu_per_page);
          Sim.Engine.sleep tick;
          loop ()
        end
      in
      loop ())

let merged_pages t = t.merged

let pending_pages t = t.pending_total
