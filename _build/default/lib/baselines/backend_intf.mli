(** Common shape of the Table 3 isolation methods.

    Each backend can create one idle Node.js runtime environment (the
    interpreter running the invocation driver, blocked on a port, no
    code imported) and report how many it holds — exactly the unit the
    paper's density and creation-rate microbenchmarks measure. *)

(** What a function invocation does once its environment is up — the
    three behaviours the paper's evaluation exercises. The SEUSS side
    compiles these to real MiniJS source; the Linux side interprets them
    directly inside the container model. *)
type action =
  | Nop  (** the Table 1 / Figure 4 JavaScript NOP *)
  | Cpu_ms of float  (** the burst experiments' ~150 ms compute kernel *)
  | Io_call of string * float
      (** blocking call to an external HTTP endpoint (url, expected
          server delay) — the background stream of Figures 6-8 *)

type t = {
  name : string;
  create_instance : unit -> bool;
      (** Deploy one idle instance (blocking, inside a simulation
          process). [false] when the node's memory is exhausted. *)
  instance_count : unit -> int;
  marginal_bytes : unit -> int64;
      (** Memory charged per additional instance at the current
          population (total used / count). *)
}
