(** Docker containers with the overlay2 storage driver (Table 3 row 2).

    On top of the shared-text process model, each container adds
    filesystem layers, namespaces and per-container daemons (~8 MB
    marginal), a veth endpoint on the Linux bridge (O(population)
    broadcast processing per attachment — §7's diagnosed scalability
    bottleneck), and creation serialized through the Docker daemon:
    creation latency grows from ~541 ms on an empty node to ~1.5 s past
    1,000 containers sequentially, and to many seconds under 16-way
    parallel creation — the paper's observed 5.3 creations/s. *)

type t

val create : Seuss.Osenv.t -> Net.Bridge.t -> t

val backend : t -> Backend_intf.t

val container_private_pages : int
(** Process private pages plus container overhead. *)

val creation_base_time : float

val creation_per_container : float
(** The per-existing-container slowdown of one creation. *)

val concurrency_penalty : float
(** Fractional latency increase per additional concurrent creation
    ("creation times proportional to the number of concurrent
    creations", §7). *)

val creation_latency : t -> float
(** The latency one creation would pay right now. *)

val create_container_space : t -> Mem.Addr_space.t option
(** Full creation returning the container's address space (used by the
    Linux compute node, which manages spaces itself). *)

val create_container_raw : t -> bool
(** One container creation with all costs applied (also exposed to the
    Linux compute node, which reuses this model for Figures 4-8). *)

val destroy_container_raw : t -> Mem.Addr_space.t option -> unit
(** Deletion: docker rm + bridge detach (~300 ms daemon time). The
    caller passes the container's space to release, if it owns one. *)

val deletion_time : float

val count : t -> int
