type t = {
  name : string;
  create_instance : unit -> bool;
  instance_count : unit -> int;
  marginal_bytes : unit -> int64;
}

type action = Nop | Cpu_ms of float | Io_call of string * float
