lib/baselines/ksm.mli: Mem Seuss Sim
