lib/baselines/firecracker_backend.mli: Backend_intf Seuss
