lib/baselines/backend_intf.ml:
