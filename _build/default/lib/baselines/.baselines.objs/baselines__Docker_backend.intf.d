lib/baselines/docker_backend.mli: Backend_intf Mem Net Seuss
