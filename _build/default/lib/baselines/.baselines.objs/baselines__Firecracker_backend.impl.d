lib/baselines/firecracker_backend.ml: Backend_intf Int64 Mem Seuss Sim
