lib/baselines/linux_node.ml: Backend_intf Docker_backend Hashtbl Mem Net Printf Process_backend Queue Seuss Sim
