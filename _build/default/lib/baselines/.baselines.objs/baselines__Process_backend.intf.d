lib/baselines/process_backend.mli: Backend_intf Seuss
