lib/baselines/ksm.ml: Mem Queue Seuss Sim
