lib/baselines/process_backend.ml: Backend_intf Int64 Mem Seuss
