lib/baselines/linux_node.mli: Backend_intf Net Seuss
