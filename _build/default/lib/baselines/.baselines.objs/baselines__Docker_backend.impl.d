lib/baselines/docker_backend.ml: Backend_intf Float Int64 Mem Net Process_backend Seuss Sim
