lib/baselines/backend_intf.mli:
