let container_private_pages =
  Process_backend.private_pages_per_process + 1_890 (* + ~7.4 MB overhead *)

let creation_base_time = 0.541
let creation_per_container = 0.5e-3
let concurrency_penalty = 0.15
let deletion_time = 0.300

type t = {
  env : Seuss.Osenv.t;
  bridge : Net.Bridge.t;
  image : Mem.Page_table.t;
  mutable inflight_creations : int;
  mutable containers : int;
  mutable spaces : Mem.Addr_space.t list;
}

let create env bridge =
  let image_space = Mem.Addr_space.create env.Seuss.Osenv.frames in
  ignore
    (Mem.Addr_space.write_range image_space ~vpn:0
       ~pages:Process_backend.shared_image_pages);
  Mem.Addr_space.freeze image_space;
  {
    env;
    bridge;
    image = Mem.Addr_space.table image_space;
    inflight_creations = 0;
    containers = 0;
    spaces = [];
  }

let count t = t.containers

let creation_latency t =
  let population =
    creation_base_time
    +. (creation_per_container *. float_of_int t.containers)
  in
  let concurrency =
    1.0 +. (concurrency_penalty *. float_of_int (max 0 (t.inflight_creations - 1)))
  in
  population *. concurrency

(* One `docker run`: daemon work growing with both the container
   population (§7: 541 ms empty -> ~1.5 s past 1,000 containers) and the
   number of concurrent creations, plus a veth attach whose broadcast is
   processed once per attached endpoint. *)
(* Creation latency is mostly dockerd lock/IO waiting, not compute:
   only a small slice occupies a core, the rest is wall-clock sleep.
   Charging it all as CPU would make concurrent creations compound
   through the core queue, which the real system does not do. *)
let creation_cpu_slice = 0.08

let create_container_space t =
  t.inflight_creations <- t.inflight_creations + 1;
  let finish result =
    t.inflight_creations <- t.inflight_creations - 1;
    result
  in
  match
    let latency = creation_latency t in
    Seuss.Osenv.burn t.env (Float.min creation_cpu_slice latency);
    Sim.Engine.sleep (Float.max 0.0 (latency -. creation_cpu_slice));
    Net.Bridge.add_endpoint t.bridge;
    Mem.Addr_space.of_table ~mapped_hint:Process_backend.shared_image_pages
      t.env.Seuss.Osenv.frames t.image
  with
  | exception Mem.Frame.Out_of_memory -> finish None
  | space -> (
      try
        ignore
          (Mem.Addr_space.write_range space
             ~vpn:Process_backend.shared_image_pages
             ~pages:container_private_pages);
        t.containers <- t.containers + 1;
        finish (Some space)
      with Mem.Frame.Out_of_memory ->
        Mem.Addr_space.release space;
        Net.Bridge.remove_endpoint t.bridge;
        finish None)

let create_container_raw t =
  match create_container_space t with
  | Some space ->
      t.spaces <- space :: t.spaces;
      true
  | None -> false

let destroy_container_raw t space =
  Seuss.Osenv.burn t.env 0.02;
  Sim.Engine.sleep (deletion_time -. 0.02);
  Net.Bridge.remove_endpoint t.bridge;
  (match space with Some s -> Mem.Addr_space.release s | None -> ());
  t.containers <- t.containers - 1

let marginal_bytes t () =
  if t.containers = 0 then 0L
  else
    Int64.div
      (Mem.Frame.used_bytes t.env.Seuss.Osenv.frames)
      (Int64.of_int t.containers)

let backend t =
  {
    Backend_intf.name = "Docker w/ overlay2 fs";
    create_instance = (fun () -> create_container_raw t);
    instance_count = (fun () -> t.containers);
    marginal_bytes = marginal_bytes t;
  }
