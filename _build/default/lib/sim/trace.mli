(** Lightweight span tracing over simulated time.

    A diagnostic facility: instrumented code wraps operations in
    {!span}; when no trace is active the wrapper is a no-op. Because the
    ambient trace is engine-global, traces are meant for inspecting
    {e one} logical operation at a time (e.g. `seussctl trace` running a
    single invocation) — concurrent processes would interleave their
    spans. *)

type span = {
  name : string;
  depth : int;  (** nesting level at entry *)
  t_start : float;
  t_end : float;
}

type t

val start : Engine.t -> t
(** Begin recording and install as the ambient trace.
    @raise Invalid_argument if a trace is already active. *)

val stop : t -> span list
(** Uninstall and return the spans in start order. *)

val span : string -> (unit -> 'a) -> 'a
(** Record [f]'s simulated time window under [name] (including on
    exception). No-op without an active trace. *)

val mark : string -> unit
(** A zero-width span. *)

val render : ?unit_scale:float -> ?unit_name:string -> span list -> string
(** A waterfall: start/end/duration columns with indentation, default in
    milliseconds. *)
