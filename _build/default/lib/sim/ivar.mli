(** Write-once synchronization variables.

    The simulator's request/response plumbing: a requester blocks on
    {!read} while a responder (or a watchdog modeling a timeout) calls
    {!fill} / {!try_fill}. First write wins; waiters are woken in FIFO
    order at the fill timestamp. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** @raise Invalid_argument if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** [try_fill t v] fills and returns [true], or returns [false] if [t]
    was already full. Used to race a responder against a timeout. *)

val is_full : 'a t -> bool

val peek : 'a t -> 'a option

val read : 'a t -> 'a
(** Blocks the current process until the ivar is filled. *)

val read_timeout : 'a t -> timeout:float -> 'a option
(** [read_timeout t ~timeout] is [Some v] if [t] fills within [timeout]
    simulated seconds, [None] otherwise. *)
