lib/sim/trace.ml: Buffer Engine Float List Option Printf String
