lib/sim/channel.mli:
