lib/sim/semaphore.mli:
