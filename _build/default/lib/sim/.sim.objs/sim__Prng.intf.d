lib/sim/prng.mli:
