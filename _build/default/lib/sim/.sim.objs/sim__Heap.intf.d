lib/sim/heap.mli:
