lib/sim/channel.ml: Engine Ivar Queue
