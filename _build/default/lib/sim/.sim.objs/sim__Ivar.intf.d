lib/sim/ivar.mli:
