(** Array-backed binary min-heap.

    Used by {!Engine} as the pending-event queue; generic so tests and other
    substrates can reuse it. Not thread-safe (the simulator is
    single-threaded and deterministic by design). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek t] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop t] removes and returns the minimum element. *)

val clear : 'a t -> unit
