(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [Prng.t]
    so that experiment runs are exactly reproducible from a seed — the
    paper's benchmark likewise pre-computes and persists its random send
    order "for repeatability". *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator; equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform draw in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw (for arrival jitter). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
