(** Unbounded FIFO channels with blocking receive.

    The message fabric of the simulation: the benchmark's shared work
    queue, the Kafka-like bus partitions, and guest/host byte streams are
    all channels. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Never blocks; wakes one waiting receiver if any. *)

val recv : 'a t -> 'a
(** Blocks the current process until an item is available. Competing
    receivers are served in FIFO order. *)

val try_recv : 'a t -> 'a option

val recv_timeout : 'a t -> timeout:float -> 'a option
(** [Some item] if one arrives for this receiver within [timeout]
    simulated seconds, else [None]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool
