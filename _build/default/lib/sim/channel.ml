type 'a t = {
  items : 'a Queue.t;
  (* Each waiter is woken at most once; a woken receiver re-checks the
     queue because an item can be consumed by a non-blocked receiver that
     runs first at the same timestamp. *)
  readers : (unit -> unit) Queue.t;
}

let create () = { items = Queue.create (); readers = Queue.create () }

let send t x =
  Queue.add x t.items;
  match Queue.take_opt t.readers with
  | Some resume -> resume ()
  | None -> ()

let try_recv t = Queue.take_opt t.items

let rec recv t =
  match Queue.take_opt t.items with
  | Some x -> x
  | None ->
      Engine.suspend (fun resume -> Queue.add resume t.readers);
      recv t

let recv_timeout t ~timeout =
  match Queue.take_opt t.items with
  | Some x -> Some x
  | None ->
      let deadline = Engine.now (Engine.self ()) +. timeout in
      let rec wait () =
        let race : [ `Ready | `Timeout ] Ivar.t = Ivar.create () in
        let engine = Engine.self () in
        let remaining = deadline -. Engine.now engine in
        if remaining < 0.0 then Queue.take_opt t.items
        else begin
          Engine.schedule engine ~delay:remaining (fun () ->
              ignore (Ivar.try_fill race `Timeout));
          Queue.add (fun () -> ignore (Ivar.try_fill race `Ready)) t.readers;
          match Ivar.read race with
          | `Timeout -> Queue.take_opt t.items
          | `Ready -> (
              match Queue.take_opt t.items with
              | Some x -> Some x
              | None -> wait () (* item stolen at same timestamp; re-arm *))
        end
      in
      wait ()

let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
