(** Counting semaphores with FIFO wakeup.

    Models contended resources: CPU cores on the compute node, the Docker
    daemon's effective creation parallelism, the shim's single TCP
    connection, and the benchmark's client thread pool. *)

type t

val create : int -> t
(** [create n] has [n] permits. @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int

val available : t -> int

val waiting : t -> int
(** Number of processes currently queued on {!acquire}. *)

val in_use : t -> int
(** [capacity t - available t]. *)

val acquire : t -> unit
(** Blocks the current process until a permit is available. *)

val try_acquire : t -> bool

val release : t -> unit
(** @raise Invalid_argument if releasing above capacity. *)

val with_permit : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)
