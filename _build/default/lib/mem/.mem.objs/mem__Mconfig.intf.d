lib/mem/mconfig.mli:
