lib/mem/frame.mli:
