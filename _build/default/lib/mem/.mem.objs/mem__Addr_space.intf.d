lib/mem/addr_space.mli: Frame Page_table
