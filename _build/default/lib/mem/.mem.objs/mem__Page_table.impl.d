lib/mem/page_table.ml: Array Frame Mconfig
