lib/mem/frame.ml: Array Int64 Mconfig Printf
