lib/mem/mconfig.ml: Int64
