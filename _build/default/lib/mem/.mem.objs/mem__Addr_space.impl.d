lib/mem/addr_space.ml: Frame Mconfig Page_table Printf
