(** Memory geometry shared by the whole stack.

    Mirrors the paper's testbed: 4 KiB x86-64 pages on a compute-node VM
    with 88 GB of RAM. *)

val page_size : int
(** Bytes per page (4096). *)

val page_shift : int
(** log2 [page_size]. *)

val entries_per_table : int
(** Entries in one page-table leaf (512, as on x86-64). *)

val table_span_pages : int
(** Pages covered by one leaf table. *)

val default_budget_bytes : int64
(** The paper's compute-node memory: 88 GiB. *)

val pages_of_bytes : int -> int
(** Bytes rounded up to whole pages. *)

val bytes_of_pages : int -> int64

val mib : int -> int
(** [mib n] is [n] MiB in bytes (host [int]). *)

(** {1 Modeled hardware/kernel costs}

    Derived from Table 1: capturing the 2 MB (512-page) NOP function
    snapshot took "around 400 us", i.e. ~0.78 us per page clone. *)

val page_copy_time : float
(** Seconds to service a copy-on-write fault (trap + 4 KiB copy + remap). *)

val zero_fill_time : float
(** Seconds to service a demand-zero fault. *)
