let page_size = 4096
let page_shift = 12
let entries_per_table = 512
let table_span_pages = entries_per_table
let default_budget_bytes = Int64.mul 88L (Int64.mul 1024L (Int64.mul 1024L 1024L))

let pages_of_bytes bytes =
  if bytes < 0 then invalid_arg "Mconfig.pages_of_bytes: negative";
  (bytes + page_size - 1) / page_size

let bytes_of_pages pages = Int64.mul (Int64.of_int pages) (Int64.of_int page_size)

let mib n = n * 1024 * 1024

let page_copy_time = 0.78e-6
let zero_fill_time = 0.35e-6
