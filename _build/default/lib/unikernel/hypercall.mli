(** The narrow domain interface between a UC and the trusted OS.

    The prototype's ukvm/Solo5 interface "exposes only 12 system calls"
    versus >300 Linux syscalls behind a Docker seccomp profile (§5). We
    document the full surface ({!call_names}) and implement the subset
    the guest software actually exercises, as a record of capabilities
    granted by the host when the UC is created — the guest has no other
    way to reach the world. *)

type t = {
  clock_wall : unit -> float;  (** seconds since host epoch *)
  console_write : string -> unit;
  poll : unit -> unit;  (** cooperative yield *)
  net_outbound : string -> Net.Tcp.conn option;
      (** open a masqueraded outbound TCP connection to a URL (§6: the
          only guest-initiated direction supported); the host resolves
          the name and routes through the per-core proxy *)
  breakpoint : string -> unit;
      (** the snapshot trigger: models the x86 debug-register exception
          (§6, Triggering Snapshots). The guest blocks inside the call
          while the host records its state; the label tells the host
          which pinpointed instruction was reached (e.g. ["driver-started"],
          ["compile-ok"]). *)
  halt : string -> unit;  (** terminate the UC with a reason *)
}

val call_names : string list
(** The modeled 12-call surface (Solo5/ukvm-style): walltime, monotonic
    clock, poll, console write, net info/read/write, block info/read/
    write, halt, plus the debug breakpoint used as the snapshot trigger. *)

val interface_size : int
(** [List.length call_names = 12]. *)

val null : t
(** Inert hypercalls for host-side unit tests. *)
