(** Guest heap arenas over a UC address space.

    MiniJS allocation metering lands here: a {b bump} arena models the
    persistent heap (compile artifacts survive until the UC dies) and a
    {b ring} arena models the GC nursery (per-invocation garbage reuses
    the same window of pages, so hot UCs do not grow without bound).
    Every byte allocated turns into page writes on the underlying
    {!Mem.Addr_space.t} — which is how running real code produces the
    dirty-page counts the snapshots measure. *)

type policy = Bump | Ring

type t

val create :
  Mem.Addr_space.t -> base_vpn:int -> pages:int -> policy:policy -> t

val alloc : t -> int -> Mem.Addr_space.write_stats
(** Allocate [bytes]; touches every page the allocation spans and
    returns the fault counts so the caller can charge simulated fault
    time. @raise Invalid_argument on negative size, or on overflow of a
    [Bump] arena. *)

val cursor : t -> int
(** Byte offset within the arena — part of the guest state captured by
    snapshots (a deployed sibling continues from the same cursor). *)

val set_cursor : t -> int -> unit
(** Restore a captured cursor at deploy time. *)

val used_bytes : t -> int
(** Bytes allocated through this arena (lifetime for [Ring]). *)
