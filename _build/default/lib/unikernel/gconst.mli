(** Guest-side cost constants, calibrated against the paper's Tables 1-2.

    The guest stack has four lazily-initialized components whose
    first-use costs are the whole story of Anticipatory Optimization.
    The values below are *derived* from Table 2 rather than guessed:
    with [cold_base = 7.5 ms] and [warm_base = 3.5 ms],

    - cold(no AO)   = cold_base + pool + send + compiler + exec = 42.0 ms
    - cold(net AO)  = cold_base + compiler + exec               = 16.8 ms
    - warm(no AO)   = warm_base + send + exec                   =  7.6 ms
    - warm(net AO)  = warm_base + exec                          =  5.5 ms

    solving to [exec = 2.0], [send = 2.1], [compiler = 7.3],
    [pool = 23.1] (ms). The split works because the function snapshot is
    captured after import+compile but *before* run/reply (§4), so the
    send path and execution caches warmed by a cold invocation are never
    part of the function snapshot — only AO can move them into the
    shared base. First-use page counts follow Table 1's footprints: the
    four components sum to ~1250 pages, the paper's "AO bloats the base
    snapshot by 4.9 MB". *)

(** {1 Lazily-initialized component first-use costs} *)

val net_pool_init_time : float
val net_pool_init_pages : int
(** TCP buffer-pool priming on the first connection ever accepted in a
    UC lineage. *)

val net_send_init_time : float
val net_send_init_pages : int
(** Send-path structures, first transmission in a lineage. *)

val compiler_init_time : float
val compiler_init_pages : int
(** Parser/codegen tables, first compilation in a lineage. *)

val exec_init_time : float
val exec_init_pages : int
(** Execution caches (inline caches, shapes), first function run. *)

(** {1 Steady-state per-operation costs} *)

val accept_time : float
val accept_pages : int
(** Accepting + setting up one driver connection. *)

val args_import_time : float
val args_import_pages : int

val reply_time : float
val reply_pages : int

val run_scratch_time : float
val run_scratch_pages : int
(** Stack/driver scratch re-dirtied by every invocation. *)

val resume_time : float
val resume_pages : int
(** Per-deployment guest state written when a UC resumes from a
    snapshot (timers, GC bookkeeping, event-loop state). Dominates an
    idle UC's private footprint: ~390 private pages per UC lands at the
    paper's ~1.6 MB/instance, i.e. ~54,000 UCs in 88 GB (Table 3). *)

val compile_base_time : float
val compile_time_per_node : float
val compile_steady_pages : int
(** Import + compile: the paper puts ~5 ms on even a one-line NOP
    (Table 1 discussion); grows with the AST size. *)

(** {1 Virtual address layout (page numbers)} *)

val kernel_base : int
val runtime_base : int
val driver_base : int
val scratch_base : int
val resume_base : int
val net_region_base : int
val heap_base : int
val nursery_base : int
val nursery_pages : int
val conn_ring_pages : int
(** Per-connection state cycles through a ring after the buffer pool. *)
