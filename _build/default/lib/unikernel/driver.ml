type command =
  | Init of string
  | Run of string
  | Ping
  | Warm_net
  | Warm_exec
  | Checkpoint

type reply = Ok_reply of string | Err_reply of string | Pong

let encode_command = function
  | Init source -> "INIT\n" ^ source
  | Run args -> "RUN\n" ^ args
  | Ping -> "PING\n"
  | Warm_net -> "WARMNET\n"
  | Warm_exec -> "WARMEXEC\n"
  | Checkpoint -> "CHECKPOINT\n"

let split s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let decode_command s =
  let verb, body = split s in
  match verb with
  | "INIT" -> Ok (Init body)
  | "RUN" -> Ok (Run body)
  | "PING" -> Ok Ping
  | "WARMNET" -> Ok Warm_net
  | "WARMEXEC" -> Ok Warm_exec
  | "CHECKPOINT" -> Ok Checkpoint
  | other -> Error (Printf.sprintf "unknown command %S" other)

let encode_reply = function
  | Ok_reply body -> "OK\n" ^ body
  | Err_reply msg -> "ERR\n" ^ msg
  | Pong -> "PONG\n"

let decode_reply s =
  let verb, body = split s in
  match verb with
  | "OK" -> Ok (Ok_reply body)
  | "ERR" -> Ok (Err_reply body)
  | "PONG" -> Ok Pong
  | other -> Error (Printf.sprintf "unknown reply %S" other)

let dummy_script =
  {|
function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
function main(args) {
  let parts = split("a,b,c,d", ",");
  let bag = {count: 0, text: ""};
  for (let i = 0; i < len(parts); i += 1) {
    bag.count = bag.count + fib(8);
    bag.text = bag.text + parts[i];
  }
  return {warmed: true, count: bag.count, text: bag.text};
}
|}
