lib/unikernel/image.ml:
