lib/unikernel/driver.ml: Printf String
