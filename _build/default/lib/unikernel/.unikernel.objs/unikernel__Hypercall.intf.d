lib/unikernel/hypercall.mli: Net
