lib/unikernel/hypercall.ml: List Net
