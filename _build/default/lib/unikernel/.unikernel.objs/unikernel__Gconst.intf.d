lib/unikernel/gconst.mli:
