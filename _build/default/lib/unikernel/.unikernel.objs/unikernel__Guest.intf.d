lib/unikernel/guest.mli: Hypercall Image Mem Net Sim
