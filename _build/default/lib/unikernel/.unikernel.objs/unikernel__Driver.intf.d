lib/unikernel/driver.mli:
