lib/unikernel/gconst.ml:
