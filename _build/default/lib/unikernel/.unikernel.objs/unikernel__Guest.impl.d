lib/unikernel/guest.ml: Driver Galloc Gconst Hypercall Image Interp Lazy Mem Net Option Printf Sim
