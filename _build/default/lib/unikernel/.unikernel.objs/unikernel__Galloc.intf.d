lib/unikernel/galloc.mli: Mem
