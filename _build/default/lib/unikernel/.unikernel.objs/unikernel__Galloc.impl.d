lib/unikernel/galloc.ml: Mem
