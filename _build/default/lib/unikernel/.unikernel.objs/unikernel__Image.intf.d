lib/unikernel/image.mli:
