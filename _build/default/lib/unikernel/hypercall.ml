type t = {
  clock_wall : unit -> float;
  console_write : string -> unit;
  poll : unit -> unit;
  net_outbound : string -> Net.Tcp.conn option;
  breakpoint : string -> unit;
  halt : string -> unit;
}

let call_names =
  [
    "walltime";
    "clock_monotonic";
    "poll";
    "console_write";
    "net_info";
    "net_read";
    "net_write";
    "blk_info";
    "blk_read";
    "blk_write";
    "halt";
    "dbg_breakpoint";
  ]

let interface_size = List.length call_names

let null =
  {
    clock_wall = (fun () -> 0.0);
    console_write = ignore;
    poll = (fun () -> ());
    net_outbound = (fun _ -> None);
    breakpoint = ignore;
    halt = ignore;
  }
