(* First-use costs: times solve Table 2 (see the interface comment);
   pages are chosen so the four components sum to ~1250 pages = 4.9 MB
   (Table 1's base-snapshot growth under AO) with the pool + compiler
   share (~717 pages = 2.8 MB) matching the function-snapshot shrink
   from 4.8 MB to 2.0 MB. *)
let net_pool_init_time = 23.1e-3
let net_pool_init_pages = 420
let net_send_init_time = 2.1e-3
let net_send_init_pages = 120
let compiler_init_time = 7.3e-3
let compiler_init_pages = 297
let exec_init_time = 2.0e-3
let exec_init_pages = 180

(* Steady costs: chosen so a fully-warm cold path lands near 7.5 ms and
   hot (args + run + reply on a cached UC) near 0.8 ms. *)
let accept_time = 0.45e-3
let accept_pages = 40
let args_import_time = 0.10e-3
let args_import_pages = 8
let reply_time = 0.25e-3
let reply_pages = 20
let run_scratch_time = 0.35e-3
let run_scratch_pages = 100
let resume_time = 1.4e-3
let resume_pages = 365
let compile_base_time = 3.4e-3
let compile_time_per_node = 20e-6
let compile_steady_pages = 140

(* Layout: one UC sees 1 GiB of VA (Page_table.max_vpn pages). *)
let kernel_base = 0
let runtime_base = 7_000
let driver_base = 26_500
let scratch_base = 36_864
let resume_base = 38_912
let net_region_base = 40_960
let heap_base = 65_536
let nursery_base = 131_072
let nursery_pages = 512
let conn_ring_pages = 2_048
