type policy = Bump | Ring

type t = {
  space : Mem.Addr_space.t;
  base_vpn : int;
  capacity : int;  (* bytes *)
  policy : policy;
  mutable cursor : int;
  mutable total : int;
}

let create space ~base_vpn ~pages ~policy =
  if pages <= 0 then invalid_arg "Galloc.create: empty arena";
  {
    space;
    base_vpn;
    capacity = pages * Mem.Mconfig.page_size;
    policy;
    cursor = 0;
    total = 0;
  }

let touch t ~from_byte ~to_byte =
  let first = from_byte / Mem.Mconfig.page_size in
  let last = (to_byte - 1) / Mem.Mconfig.page_size in
  Mem.Addr_space.write_range t.space ~vpn:(t.base_vpn + first)
    ~pages:(last - first + 1)

let no_faults = { Mem.Addr_space.pages = 0; zero_fills = 0; cow_copies = 0 }

let alloc t bytes =
  if bytes < 0 then invalid_arg "Galloc.alloc: negative size";
  if bytes = 0 then no_faults
  else begin
    let stats =
      match t.policy with
      | Bump ->
          if t.cursor + bytes > t.capacity then
            invalid_arg "Galloc.alloc: bump arena exhausted";
          let stats = touch t ~from_byte:t.cursor ~to_byte:(t.cursor + bytes) in
          t.cursor <- t.cursor + bytes;
          stats
      | Ring ->
          let bytes = min bytes t.capacity in
          if t.cursor + bytes > t.capacity then t.cursor <- 0;
          let stats = touch t ~from_byte:t.cursor ~to_byte:(t.cursor + bytes) in
          t.cursor <- t.cursor + bytes;
          stats
    in
    t.total <- t.total + bytes;
    stats
  end

let cursor t = t.cursor

let set_cursor t c =
  if c < 0 || c > t.capacity then invalid_arg "Galloc.set_cursor: out of range";
  t.cursor <- c

let used_bytes t = t.total
