(** Unikernel image configurations: Rumprun linked with an interpreter
    port and the OpenWhisk invocation driver.

    The prototype deliberately adopts a *general-purpose* unikernel: it
    boots slower and is bigger than a specialised one, but runs stock
    interpreters (§6). Boot happens once per runtime per node — the base
    runtime snapshot amortises it over every subsequent UC. Sizes target
    Table 1's 109.6 MB Node.js base snapshot. *)

type runtime = Node | Python

type t = {
  runtime : runtime;
  kernel_pages : int;  (** Rumprun/NetBSD libs + ramdisk fs *)
  kernel_boot_time : float;
  runtime_pages : int;  (** interpreter text + initialized heap *)
  runtime_init_time : float;
  driver_pages : int;  (** invocation driver (script) footprint *)
  driver_start_time : float;
}

val node : t
(** Node.js: 28,050 pages (~109.6 MB) total, ~2.9 s boot-to-driver. *)

val python : t
(** CPython: smaller image, comparable boot. *)

val specialized_node : t
(** The design alternative of §6 footnote 2: a highly-specialized
    unikernel (library OS trimmed to one interpreter, no POSIX layer)
    with low-millisecond-class boot and a much smaller image. SEUSS
    snapshotting works identically on it; what the general-purpose
    choice buys is out-of-the-box interpreter support, not speed. *)

val total_pages : t -> int

val runtime_name : runtime -> string
