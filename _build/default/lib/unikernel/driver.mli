(** Wire protocol between SEUSS OS and the invocation driver inside a UC.

    Mirrors the OpenWhisk action interface the paper's driver script
    implements (init with function code, run with arguments), plus the
    host-driven warm-up commands used for anticipatory optimization and
    the explicit checkpoint request. [Init] carries no network reply —
    completion is signalled by the guest reaching the compile breakpoint
    (the host is watching the debug register, §6). *)

type command =
  | Init of string  (** function source code *)
  | Run of string  (** arguments as a MiniJS/JSON literal *)
  | Ping
  | Warm_net  (** AO: push an HTTP request through the guest stack *)
  | Warm_exec  (** AO: compile + run a dummy script, then discard it *)
  | Checkpoint  (** reach a breakpoint so the host can snapshot *)

type reply = Ok_reply of string | Err_reply of string | Pong

val encode_command : command -> string

val decode_command : string -> (command, string) result

val encode_reply : reply -> string

val decode_reply : string -> (reply, string) result

val dummy_script : string
(** The AO dummy function: exercises parser tables, codegen, inline
    caches and string/array/object paths without touching anything
    function-specific. *)
