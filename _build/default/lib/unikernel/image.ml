type runtime = Node | Python

type t = {
  runtime : runtime;
  kernel_pages : int;
  kernel_boot_time : float;
  runtime_pages : int;
  runtime_init_time : float;
  driver_pages : int;
  driver_start_time : float;
}

let node =
  {
    runtime = Node;
    kernel_pages = 7_000;
    kernel_boot_time = 1.6;
    runtime_pages = 19_500;
    runtime_init_time = 1.15;
    driver_pages = 1_550;
    driver_start_time = 0.15;
  }

let python =
  {
    runtime = Python;
    kernel_pages = 7_000;
    kernel_boot_time = 1.6;
    runtime_pages = 9_800;
    runtime_init_time = 0.6;
    driver_pages = 1_200;
    driver_start_time = 0.12;
  }

let specialized_node =
  {
    runtime = Node;
    kernel_pages = 900;
    kernel_boot_time = 0.045;
    runtime_pages = 14_800;
    runtime_init_time = 0.65;
    driver_pages = 700;
    driver_start_time = 0.06;
  }

let total_pages t = t.kernel_pages + t.runtime_pages + t.driver_pages

let runtime_name = function Node -> "nodejs" | Python -> "python"
