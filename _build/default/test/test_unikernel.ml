(* Tests for the guest stack: arenas, driver protocol, boot, the
   invocation flow, warmable components and capture/restore. *)

module G = Unikernel.Guest
module D = Unikernel.Driver
module C = Unikernel.Gconst

let frames () = Mem.Frame.create ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 2048)) ()

(* {1 Galloc} *)

let test_galloc_bump_touches_pages () =
  let f = frames () in
  let space = Mem.Addr_space.create f in
  let arena = Mem.Addr_space.create f |> ignore; Unikernel.Galloc.create space ~base_vpn:100 ~pages:16 ~policy:Unikernel.Galloc.Bump in
  ignore (Unikernel.Galloc.alloc arena 100);
  Alcotest.(check int) "one page" 1 (Mem.Addr_space.mapped_pages space);
  ignore (Unikernel.Galloc.alloc arena 8000);
  (* 100 + 8000 bytes = spans pages 0..1 of the arena. *)
  Alcotest.(check int) "two pages" 2 (Mem.Addr_space.mapped_pages space);
  Alcotest.(check int) "cursor" 8100 (Unikernel.Galloc.cursor arena)

let test_galloc_bump_overflow () =
  let f = frames () in
  let space = Mem.Addr_space.create f in
  let arena = Unikernel.Galloc.create space ~base_vpn:0 ~pages:1 ~policy:Unikernel.Galloc.Bump in
  Alcotest.(check bool) "overflow raises" true
    (match Unikernel.Galloc.alloc arena 5000 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_galloc_ring_wraps () =
  let f = frames () in
  let space = Mem.Addr_space.create f in
  let arena = Unikernel.Galloc.create space ~base_vpn:0 ~pages:4 ~policy:Unikernel.Galloc.Ring in
  (* Allocate 10 x 4096: wraps repeatedly, never maps more than the ring. *)
  for _ = 1 to 10 do
    ignore (Unikernel.Galloc.alloc arena 4096)
  done;
  Alcotest.(check bool) "bounded by ring size" true
    (Mem.Addr_space.mapped_pages space <= 4);
  Alcotest.(check int) "total recorded" 40960 (Unikernel.Galloc.used_bytes arena)

(* {1 Driver protocol} *)

let test_driver_roundtrip () =
  let cases =
    [ D.Init "function main(a) { return 1; }"; D.Run "{x: 1}"; D.Ping;
      D.Warm_net; D.Warm_exec; D.Checkpoint ]
  in
  List.iter
    (fun cmd ->
      match D.decode_command (D.encode_command cmd) with
      | Ok decoded -> Alcotest.(check bool) "roundtrip" true (decoded = cmd)
      | Error e -> Alcotest.fail e)
    cases;
  List.iter
    (fun r ->
      match D.decode_reply (D.encode_reply r) with
      | Ok decoded -> Alcotest.(check bool) "reply roundtrip" true (decoded = r)
      | Error e -> Alcotest.fail e)
    [ D.Ok_reply "{}"; D.Err_reply "boom"; D.Pong ]

let test_driver_rejects_garbage () =
  Alcotest.(check bool) "bad command" true
    (match D.decode_command "BLORP\nx" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "bad reply" true
    (match D.decode_reply "NOPE\n" with Error _ -> true | Ok _ -> false)

let test_hypercall_surface () =
  Alcotest.(check int) "12 hypercalls" 12 Unikernel.Hypercall.interface_size

(* {1 Guest harness} *)

type harness = {
  engine : Sim.Engine.t;
  space : Mem.Addr_space.t;
  listener : Net.Tcp.listener;
  breakpoints : string Sim.Channel.t;
  resume : unit Sim.Ivar.t ref;
  state : G.state option ref;
}

let make_harness ?(image = Unikernel.Image.node) () =
  let engine = Sim.Engine.create () in
  let f = frames () in
  let space = Mem.Addr_space.create f in
  let listener = Net.Tcp.listener ~port:9000 in
  let breakpoints = Sim.Channel.create () in
  let resume = ref (Sim.Ivar.create ()) in
  let hypercalls =
    {
      Unikernel.Hypercall.null with
      Unikernel.Hypercall.breakpoint =
        (fun label ->
          let gate = Sim.Ivar.create () in
          resume := gate;
          Sim.Channel.send breakpoints label;
          Sim.Ivar.read gate);
      clock_wall = (fun () -> Sim.Engine.now engine);
    }
  in
  let env =
    {
      G.image;
      space;
      listener;
      hypercalls;
      rng = Sim.Prng.create 99L;
      cpu_burn = Sim.Engine.sleep;
    }
  in
  let state = ref None in
  Sim.Engine.spawn engine ~name:"guest" (fun () ->
      let s = G.boot env in
      state := Some s;
      G.serve s);
  { engine; space; listener; breakpoints; resume; state }

let await_breakpoint h = Sim.Channel.recv h.breakpoints

let resume_guest h = Sim.Ivar.fill !(h.resume) ()

let send_cmd conn cmd = Net.Tcp.send conn (D.encode_command cmd)

let recv_reply conn =
  match Net.Tcp.recv conn with
  | None -> Alcotest.fail "connection closed"
  | Some m -> (
      match D.decode_reply m.Net.Tcp.data with
      | Ok r -> r
      | Error e -> Alcotest.fail e)

let test_boot_writes_image_and_breaks () =
  let h = make_harness () in
  let label = ref "" and pages = ref 0 and t = ref 0.0 in
  Sim.Engine.spawn h.engine ~name:"host" (fun () ->
      label := await_breakpoint h;
      pages := Mem.Addr_space.mapped_pages h.space;
      t := Sim.Engine.now h.engine);
  Sim.Engine.run h.engine;
  Alcotest.(check string) "breakpoint label" "driver-started" !label;
  Alcotest.(check int) "image pages mapped"
    (Unikernel.Image.total_pages Unikernel.Image.node)
    !pages;
  Alcotest.(check bool) "boot took seconds" true (!t > 2.0)

(* Boot, resume past driver-started, connect, and run [f] with the conn. *)
let with_running_guest f =
  let h = make_harness () in
  let result = ref None in
  Sim.Engine.spawn h.engine ~name:"host" (fun () ->
      let label = await_breakpoint h in
      Alcotest.(check string) "driver up" "driver-started" label;
      resume_guest h;
      match Net.Tcp.connect ~link:Net.Netconf.internal h.listener with
      | None -> Alcotest.fail "connect failed"
      | Some conn -> result := Some (f h conn));
  Sim.Engine.run h.engine;
  match !result with
  | None -> Alcotest.fail "host process did not finish"
  | Some v -> v

let test_ping () =
  let reply = with_running_guest (fun _h conn ->
      send_cmd conn D.Ping;
      recv_reply conn)
  in
  Alcotest.(check bool) "pong" true (reply = D.Pong)

let test_init_then_run () =
  let result =
    with_running_guest (fun h conn ->
        send_cmd conn (D.Init "function main(args) { return args.a + 1; }");
        let label = await_breakpoint h in
        Alcotest.(check string) "compile breakpoint" "compile-ok" label;
        resume_guest h;
        send_cmd conn (D.Run "{a: 41}");
        recv_reply conn)
  in
  Alcotest.(check bool) "result" true (result = D.Ok_reply "42")

let test_init_error_breakpoint () =
  with_running_guest (fun h conn ->
      send_cmd conn (D.Init "function main(");
      let label = await_breakpoint h in
      Alcotest.(check bool) "compile error label" true
        (String.length label > 11 && String.sub label 0 11 = "compile-err");
      resume_guest h)

let test_run_without_init_errors () =
  let reply =
    with_running_guest (fun _h conn ->
        send_cmd conn (D.Run "null");
        recv_reply conn)
  in
  match reply with
  | D.Err_reply _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_warmup_sets_warmth () =
  with_running_guest (fun h conn ->
      (match !(h.state) with
      | Some s ->
          let w = G.warmth s in
          (* The accept has already fired when we get here. *)
          Alcotest.(check bool) "send cold" false w.G.net_send;
          Alcotest.(check bool) "compiler cold" false w.G.compiler
      | None -> Alcotest.fail "no state");
      send_cmd conn D.Warm_net;
      (match recv_reply conn with
      | D.Ok_reply _ -> ()
      | _ -> Alcotest.fail "warm_net failed");
      send_cmd conn D.Warm_exec;
      (match recv_reply conn with
      | D.Ok_reply _ -> ()
      | _ -> Alcotest.fail "warm_exec failed");
      match !(h.state) with
      | Some s ->
          let w = G.warmth s in
          Alcotest.(check bool) "pool warm" true w.G.net_pool;
          Alcotest.(check bool) "send warm" true w.G.net_send;
          Alcotest.(check bool) "compiler warm" true w.G.compiler;
          Alcotest.(check bool) "exec warm" true w.G.exec_cache
      | None -> Alcotest.fail "no state")

let test_first_use_costs_paid_once () =
  (* Two Warm_net requests: the second reply is cheaper by the send-path
     first-use time. *)
  let d1, d2 =
    with_running_guest (fun h conn ->
        ignore h;
        let engine = Sim.Engine.self () in
        let t0 = Sim.Engine.now engine in
        send_cmd conn D.Warm_net;
        ignore (recv_reply conn);
        let t1 = Sim.Engine.now engine in
        send_cmd conn D.Warm_net;
        ignore (recv_reply conn);
        let t2 = Sim.Engine.now engine in
        (t1 -. t0, t2 -. t1))
  in
  Alcotest.(check bool) "first-use surcharge" true
    (d1 -. d2 > 0.8 *. C.net_send_init_time)

let test_capture_restore_isolates () =
  (* Capture after compiling a stateful function; restore twice; the two
     restored guests must not share interpreter state. *)
  with_running_guest (fun h conn ->
      send_cmd conn
        (D.Init
           "let n = 0; function main(args) { n = n + 1; return n; }");
      ignore (await_breakpoint h);
      (* While the guest is parked at the breakpoint, capture. *)
      let snap =
        match !(h.state) with
        | Some s -> G.capture s
        | None -> Alcotest.fail "no state"
      in
      resume_guest h;
      (* Run the original once: its counter moves to 1. *)
      send_cmd conn (D.Run "null");
      (match recv_reply conn with
      | D.Ok_reply r -> Alcotest.(check string) "original run" "1" r
      | _ -> Alcotest.fail "run failed");
      (* Restore two fresh guests from the captured template. *)
      let f2 = frames () in
      let restored_env name port =
        ignore name;
        {
          G.image = Unikernel.Image.node;
          space = Mem.Addr_space.create f2;
          listener = Net.Tcp.listener ~port;
          hypercalls = Unikernel.Hypercall.null;
          rng = Sim.Prng.create 5L;
          cpu_burn = Sim.Engine.sleep;
        }
      in
      let s1 = G.restore (restored_env "a" 9001) snap in
      let s2 = G.restore (restored_env "b" 9002) snap in
      let w = G.warmth s1 in
      Alcotest.(check bool) "restored compiler warmth" true w.G.compiler;
      Alcotest.(check (option string)) "program follows"
        (Some "let n = 0; function main(args) { n = n + 1; return n; }")
        (G.program_source s1);
      ignore s2)

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "unikernel"
    [
      ( "galloc",
        [
          case "bump touches pages" test_galloc_bump_touches_pages;
          case "bump overflow" test_galloc_bump_overflow;
          case "ring wraps" test_galloc_ring_wraps;
        ] );
      ( "driver",
        [
          case "roundtrip" test_driver_roundtrip;
          case "rejects garbage" test_driver_rejects_garbage;
          case "hypercall surface" test_hypercall_surface;
        ] );
      ( "guest",
        [
          case "boot writes image" test_boot_writes_image_and_breaks;
          case "ping" test_ping;
          case "init then run" test_init_then_run;
          case "init error breakpoint" test_init_error_breakpoint;
          case "run without init" test_run_without_init_errors;
          case "warmup sets warmth" test_warmup_sets_warmth;
          case "first-use paid once" test_first_use_costs_paid_once;
          case "capture/restore isolates" test_capture_restore_isolates;
        ] );
    ]
