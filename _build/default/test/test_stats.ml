(* Tests for summaries, histograms, series and renderers. *)

let check_float = Alcotest.(check (float 1e-9))

let summary_of list =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) list;
  s

let test_summary_basic () =
  let s = summary_of [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  check_float "mean" 2.5 (Stats.Summary.mean s);
  check_float "min" 1.0 (Stats.Summary.min_value s);
  check_float "max" 4.0 (Stats.Summary.max_value s);
  check_float "total" 10.0 (Stats.Summary.total s)

let test_summary_percentiles () =
  let s = summary_of (List.init 101 float_of_int) in
  check_float "p0" 0.0 (Stats.Summary.percentile s 0.0);
  check_float "p50" 50.0 (Stats.Summary.percentile s 50.0);
  check_float "p99" 99.0 (Stats.Summary.percentile s 99.0);
  check_float "p100" 100.0 (Stats.Summary.percentile s 100.0)

let test_summary_interpolation () =
  let s = summary_of [ 10.0; 20.0 ] in
  check_float "p50 interpolates" 15.0 (Stats.Summary.percentile s 50.0)

let test_summary_stddev () =
  let s = summary_of [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check_float "sample stddev" (sqrt (32.0 /. 7.0)) (Stats.Summary.stddev s)

let test_summary_empty_rejected () =
  let s = Stats.Summary.create () in
  check_float "mean of empty" 0.0 (Stats.Summary.mean s);
  Alcotest.check_raises "percentile of empty"
    (Invalid_argument "Summary.percentile: empty") (fun () ->
      ignore (Stats.Summary.percentile s 50.0))

let test_summary_digest () =
  let s = summary_of (List.init 1000 (fun i -> float_of_int (i + 1))) in
  let d = Stats.Summary.digest s in
  Alcotest.(check int) "n" 1000 d.Stats.Summary.n;
  check_float "median" 500.5 d.Stats.Summary.p50

let percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0.0 1000.0))
    (fun xs ->
      let s = summary_of xs in
      let ps = [ 0.0; 1.0; 25.0; 50.0; 75.0; 99.0; 100.0 ] in
      let vals = List.map (Stats.Summary.percentile s) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals)

let percentile_within_bounds =
  QCheck.Test.make ~name:"percentiles lie within [min,max]" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 50) (float_range 0.0 1000.0))
        (float_range 0.0 100.0))
    (fun (xs, p) ->
      let s = summary_of xs in
      let v = Stats.Summary.percentile s p in
      v >= Stats.Summary.min_value s -. 1e-9
      && v <= Stats.Summary.max_value s +. 1e-9)

let mean_within_bounds =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0.0 1000.0))
    (fun xs ->
      let s = summary_of xs in
      let m = Stats.Summary.mean s in
      m >= Stats.Summary.min_value s -. 1e-9
      && m <= Stats.Summary.max_value s +. 1e-9)

let test_histogram_counts () =
  let h = Stats.Histogram.create ~lo:1e-3 ~hi:1e3 ~bins_per_decade:1 () in
  List.iter (Stats.Histogram.add h) [ 0.002; 0.005; 0.5; 100.0 ];
  Alcotest.(check int) "total" 4 (Stats.Histogram.count h);
  let nonempty =
    Stats.Histogram.fold h ~init:0 ~f:(fun acc ~lo:_ ~hi:_ ~count ->
        if count > 0 then acc + 1 else acc)
  in
  Alcotest.(check int) "three bins populated" 3 nonempty

let test_histogram_clamps () =
  let h = Stats.Histogram.create ~lo:1e-2 ~hi:1e2 ~bins_per_decade:2 () in
  Stats.Histogram.add h 1e-9;
  Stats.Histogram.add h 1e9;
  Alcotest.(check int) "below clamps to first bin" 1 (Stats.Histogram.bin_value h 0);
  Alcotest.(check int) "above clamps to last bin" 1
    (Stats.Histogram.bin_value h (Stats.Histogram.bin_count h - 1))

let histogram_preserves_count =
  QCheck.Test.make ~name:"histogram count equals samples added" ~count:100
    QCheck.(list (float_range 1e-5 1e4))
    (fun xs ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) xs;
      Stats.Histogram.count h = List.length xs
      && Stats.Histogram.fold h ~init:0 ~f:(fun a ~lo:_ ~hi:_ ~count ->
             a + count)
         = List.length xs)

let test_series_basics () =
  let s = Stats.Series.create () in
  Stats.Series.add s ~time:0.0 ~value:1.0 ~ok:true;
  Stats.Series.add s ~time:1.0 ~value:2.0 ~ok:false;
  Stats.Series.add s ~time:2.5 ~value:3.0 ~ok:true;
  Alcotest.(check int) "length" 3 (Stats.Series.length s);
  Alcotest.(check int) "failures" 1 (Stats.Series.failures s);
  let pts = Stats.Series.points s in
  check_float "insertion order preserved" 0.0 pts.(0).Stats.Series.time;
  check_float "last point" 2.5 pts.(2).Stats.Series.time

let test_series_windows () =
  let s = Stats.Series.create () in
  List.iter
    (fun t -> Stats.Series.add s ~time:t ~value:0.0 ~ok:true)
    [ 0.1; 0.2; 0.9; 1.1; 2.05 ];
  let windows = Stats.Series.window_counts s ~width:1.0 in
  Alcotest.(check (list int)) "per-window counts" [ 3; 1; 1 ]
    (List.map snd windows)

let test_series_empty_windows () =
  let s = Stats.Series.create () in
  Alcotest.(check int) "no windows" 0
    (List.length (Stats.Series.window_counts s ~width:1.0))

let test_tablefmt_renders () =
  let t =
    Stats.Tablefmt.create
      ~columns:[ ("Name", Stats.Tablefmt.Left); ("Value", Stats.Tablefmt.Right) ]
  in
  Stats.Tablefmt.add_row t [ "cold"; "7.5" ];
  Stats.Tablefmt.add_separator t;
  Stats.Tablefmt.add_row t [ "warm"; "3.5" ];
  let out = Stats.Tablefmt.render t in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0
    &&
    let contains needle =
      let n = String.length needle and len = String.length out in
      let rec go i = i + n <= len && (String.sub out i n = needle || go (i + 1)) in
      go 0
    in
    contains "Name" && contains "cold" && contains "7.5")

let test_tablefmt_arity_rejected () =
  let t = Stats.Tablefmt.create ~columns:[ ("A", Stats.Tablefmt.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: arity mismatch")
    (fun () -> Stats.Tablefmt.add_row t [ "1"; "2" ])

let test_asciiplot_renders () =
  let p =
    Stats.Asciiplot.create ~title:"demo" ~xlabel:"t" ~ylabel:"v"
      ~yscale:Stats.Asciiplot.Log ()
  in
  Stats.Asciiplot.add_series p ~label:"a" ~mark:'.'
    [ (0.0, 0.001); (1.0, 0.1); (2.0, 10.0) ];
  Stats.Asciiplot.add_series p ~label:"fail" ~mark:'x' [ (1.5, 5.0) ];
  let out = Stats.Asciiplot.render p in
  Alcotest.(check bool) "has marks" true
    (String.contains out '.' && String.contains out 'x')

let test_asciiplot_empty () =
  let p = Stats.Asciiplot.create ~title:"empty" ~xlabel:"x" ~ylabel:"y" () in
  let out = Stats.Asciiplot.render p in
  Alcotest.(check bool) "renders placeholder" true
    (String.length out > 0)

let test_asciiplot_log_drops_nonpositive () =
  let p =
    Stats.Asciiplot.create ~title:"log" ~xlabel:"x" ~ylabel:"y"
      ~yscale:Stats.Asciiplot.Log ()
  in
  Stats.Asciiplot.add_series p ~label:"good" ~mark:'.' [ (0.0, 1.0); (1.0, 2.0) ];
  Stats.Asciiplot.add_series p ~label:"bad" ~mark:'*' [ (0.0, 0.0); (1.0, -5.0) ];
  let out = Stats.Asciiplot.render p in
  Alcotest.(check bool) "non-positive points dropped" true
    (not (String.contains out '*'))

let () =
  let case name f = Alcotest.test_case name `Quick f in
  let qcase = QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "summary",
        [
          case "basic" test_summary_basic;
          case "percentiles" test_summary_percentiles;
          case "interpolation" test_summary_interpolation;
          case "stddev" test_summary_stddev;
          case "empty rejected" test_summary_empty_rejected;
          case "digest" test_summary_digest;
          qcase percentile_monotone;
          qcase percentile_within_bounds;
          qcase mean_within_bounds;
        ] );
      ( "histogram",
        [
          case "counts" test_histogram_counts;
          case "clamps" test_histogram_clamps;
          qcase histogram_preserves_count;
        ] );
      ( "series",
        [
          case "basics" test_series_basics;
          case "windows" test_series_windows;
          case "empty windows" test_series_empty_windows;
        ] );
      ( "render",
        [
          case "tablefmt" test_tablefmt_renders;
          case "tablefmt arity" test_tablefmt_arity_rejected;
          case "asciiplot" test_asciiplot_renders;
          case "asciiplot empty" test_asciiplot_empty;
          case "asciiplot log filter" test_asciiplot_log_drops_nonpositive;
        ] );
    ]
