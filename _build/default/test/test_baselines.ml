(* Tests for the Table 3 comparison backends and the Linux/OpenWhisk
   compute node, at reduced memory scale. *)

module B = Baselines.Backend_intf
module LN = Baselines.Linux_node

let gib n = Int64.mul (Int64.of_int n) (Int64.of_int (Mem.Mconfig.mib 1024))

let in_sim ?(seed = 3L) body =
  let engine = Sim.Engine.create ~seed () in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"test" (fun () -> result := Some (body engine));
  Sim.Engine.run engine;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let fill backend ~cap =
  let n = ref 0 in
  while !n < cap && backend.B.create_instance () do
    incr n
  done;
  !n

(* {1 Density ordering (Table 3 shape at 2 GB scale)} *)

let test_density_ordering () =
  let density make =
    in_sim (fun engine ->
        let env = Seuss.Osenv.create ~budget_bytes:(gib 2) engine in
        let backend = make env in
        fill backend ~cap:10_000)
  in
  let procs =
    density (fun env ->
        Baselines.Process_backend.backend (Baselines.Process_backend.create env))
  in
  let docker =
    density (fun env ->
        let bridge =
          Net.Bridge.create ~rng:(Sim.Prng.create 1L) ()
        in
        Baselines.Docker_backend.backend
          (Baselines.Docker_backend.create env bridge))
  in
  let microvm =
    density (fun env ->
        Baselines.Firecracker_backend.backend
          (Baselines.Firecracker_backend.create env))
  in
  Alcotest.(check bool) "processes beat containers" true (procs > docker);
  Alcotest.(check bool) "containers beat microVMs" true (docker > microvm);
  Alcotest.(check bool) "microVMs fit a few" true (microvm >= 5);
  (* At 2 GB (1/44 of the paper's node) the paper's ratios scale to
     roughly 95 / 71 / 10. *)
  Alcotest.(check bool) "process count plausible" true (procs > 60 && procs < 140);
  Alcotest.(check bool) "microvm count plausible" true (microvm <= 15)

let test_seuss_density_beats_all () =
  let ucs =
    in_sim (fun engine ->
        let env = Seuss.Osenv.create ~budget_bytes:(gib 2) engine in
        let node = Seuss.Node.create env in
        Seuss.Node.start node;
        let n = ref 0 in
        while !n < 10_000 && Seuss.Node.deploy_idle node Unikernel.Image.Node do
          incr n
        done;
        !n)
  in
  (* 2 GB minus the ~115 MB base snapshot over ~1.6 MB per idle UC:
     several hundred — far denser than the ~95 processes. *)
  Alcotest.(check bool) "hundreds of UCs at 2 GB" true (ucs > 300)

(* {1 Creation rates} *)

let parallel_creation_rate make ~count =
  in_sim (fun engine ->
      let env = Seuss.Osenv.create ~budget_bytes:(gib 8) engine in
      let backend = make env in
      let started = Sim.Engine.now engine in
      let done_ = ref 0 in
      for _ = 1 to 16 do
        Sim.Engine.spawn engine (fun () ->
            let rec go () =
              if !done_ < count then begin
                if backend.B.create_instance () then incr done_;
                go ()
              end
            in
            go ())
      done;
      (* Wait until the target count is reached. *)
      while !done_ < count do
        Sim.Engine.sleep 0.5
      done;
      float_of_int count /. (Sim.Engine.now engine -. started))

let test_process_creation_rate () =
  let rate =
    parallel_creation_rate ~count:120 (fun env ->
        Baselines.Process_backend.backend (Baselines.Process_backend.create env))
  in
  (* Paper: 45/s. *)
  Alcotest.(check bool) "around 45/s" true (rate > 30.0 && rate < 60.0)

let test_docker_creation_slows () =
  in_sim (fun engine ->
      let env = Seuss.Osenv.create ~budget_bytes:(gib 16) engine in
      let bridge = Net.Bridge.create ~rng:(Sim.Prng.create 1L) () in
      let d = Baselines.Docker_backend.create env bridge in
      let timed_create () =
        let t0 = Sim.Engine.now engine in
        Alcotest.(check bool) "created" true
          (Baselines.Docker_backend.create_container_raw d);
        Sim.Engine.now engine -. t0
      in
      let first = timed_create () in
      for _ = 1 to 400 do
        ignore (Baselines.Docker_backend.create_container_raw d)
      done;
      let late = timed_create () in
      Alcotest.(check bool) "first around 541 ms" true
        (first > 0.5 && first < 0.8);
      Alcotest.(check bool) "population slows creation" true
        (late > first +. 0.15))

let test_firecracker_creation_slow () =
  in_sim (fun engine ->
      let env = Seuss.Osenv.create ~budget_bytes:(gib 8) engine in
      let f = Baselines.Firecracker_backend.create env in
      let backend = Baselines.Firecracker_backend.backend f in
      let t0 = Sim.Engine.now engine in
      Alcotest.(check bool) "created" true (backend.B.create_instance ());
      let dt = Sim.Engine.now engine -. t0 in
      (* Paper: over 3 seconds. *)
      Alcotest.(check bool) "over 3 s" true (dt > 3.0))

(* {1 KSM} *)

let test_ksm_merges_and_frees () =
  in_sim (fun engine ->
      let env = Seuss.Osenv.create ~budget_bytes:(gib 2) engine in
      let space = Mem.Addr_space.create env.Seuss.Osenv.frames in
      ignore (Mem.Addr_space.write_range space ~vpn:0 ~pages:1000);
      let before = Mem.Frame.used_frames env.Seuss.Osenv.frames in
      let ksm = Baselines.Ksm.create ~dedup_fraction:0.5 env in
      Baselines.Ksm.register ksm space ~private_base_vpn:0 ~private_pages:1000;
      let merged = Baselines.Ksm.scan_once ksm in
      Alcotest.(check int) "half merged" 500 merged;
      let after = Mem.Frame.used_frames env.Seuss.Osenv.frames in
      Alcotest.(check bool) "frames released" true (before - after >= 499);
      Alcotest.(check int) "nothing pending" 0 (Baselines.Ksm.pending_pages ksm))

let test_ksm_merged_pages_are_cow () =
  in_sim (fun engine ->
      let env = Seuss.Osenv.create ~budget_bytes:(gib 2) engine in
      let space = Mem.Addr_space.create env.Seuss.Osenv.frames in
      ignore (Mem.Addr_space.write_range space ~vpn:0 ~pages:100);
      let ksm = Baselines.Ksm.create ~dedup_fraction:1.0 env in
      Baselines.Ksm.register ksm space ~private_base_vpn:0 ~private_pages:100;
      ignore (Baselines.Ksm.scan_once ksm);
      (* A write to a merged page un-merges it: COW fault, private again. *)
      Alcotest.(check bool) "write cow-faults" true
        (Mem.Addr_space.touch_write space ~vpn:5 = Mem.Addr_space.Cow_copy))

let test_ksm_daemon_rate_limited () =
  in_sim (fun engine ->
      let env = Seuss.Osenv.create ~budget_bytes:(gib 2) engine in
      let space = Mem.Addr_space.create env.Seuss.Osenv.frames in
      ignore (Mem.Addr_space.write_range space ~vpn:0 ~pages:10_000);
      let ksm =
        Baselines.Ksm.create ~scan_rate_pages_per_s:1_000.0 ~dedup_fraction:1.0
          env
      in
      Baselines.Ksm.register ksm space ~private_base_vpn:0 ~private_pages:10_000;
      let stop = Sim.Ivar.create () in
      Baselines.Ksm.run_daemon ksm ~stop;
      let t0 = Sim.Engine.now engine in
      while Baselines.Ksm.pending_pages ksm > 0 do
        Sim.Engine.sleep 0.25
      done;
      let elapsed = Sim.Engine.now engine -. t0 in
      Sim.Ivar.fill stop ();
      (* 10k pages at 1k pages/s: about ten seconds, not instant. *)
      Alcotest.(check bool) "took about 10 s" true
        (elapsed > 8.0 && elapsed < 14.0))

(* {1 Linux compute node} *)

let with_linux_node ?config body =
  in_sim (fun engine ->
      let env = Seuss.Osenv.create ~budget_bytes:(gib 16) engine in
      (* External IO endpoint used by Io_call actions. *)
      let io_listener = Net.Tcp.listener ~port:80 in
      Net.Http.serve ~listener:io_listener (fun _ ->
          Sim.Engine.sleep 0.25;
          Net.Http.ok "OK");
      Seuss.Osenv.register_host env "http://io-server" io_listener;
      let node = LN.create ?config env in
      LN.start node;
      body engine node)

let nop_fn id = { LN.fn_id = id; action = B.Nop }

let test_linux_cold_then_warm () =
  with_linux_node (fun engine node ->
      let t0 = Sim.Engine.now engine in
      let r1, p1 = LN.invoke node (nop_fn "f1") in
      let cold = Sim.Engine.now engine -. t0 in
      Alcotest.(check bool) "created" true (p1 = LN.Create && r1 = Ok ());
      let t1 = Sim.Engine.now engine in
      let r2, p2 = LN.invoke node (nop_fn "f1") in
      let warm = Sim.Engine.now engine -. t1 in
      Alcotest.(check bool) "warm hit" true (p2 = LN.Warm_container && r2 = Ok ());
      Alcotest.(check bool) "cold dominated by creation" true (cold > 0.5);
      Alcotest.(check bool) "warm is milliseconds" true (warm < 0.02))

let test_linux_stemcell_path () =
  let config = { LN.default_config with LN.stemcell_count = 4 } in
  with_linux_node ~config (fun _engine node ->
      let _, p = LN.invoke node (nop_fn "g") in
      Alcotest.(check bool) "stemcell used" true (p = LN.Stemcell))

let test_linux_eviction_on_saturation () =
  let config = { LN.default_config with LN.container_cache_limit = 4 } in
  with_linux_node ~config (fun _engine node ->
      for i = 1 to 8 do
        let result, _ = LN.invoke node (nop_fn (Printf.sprintf "f%d" i)) in
        Alcotest.(check bool) "request served" true (result = Ok ())
      done;
      Alcotest.(check bool) "cache bounded" true (LN.container_count node <= 4);
      let s = LN.stats node in
      Alcotest.(check bool) "evictions happened" true (s.LN.evictions >= 4))

let test_linux_io_function_blocks () =
  with_linux_node (fun engine node ->
      let fn = { LN.fn_id = "io"; action = B.Io_call ("http://io-server/b", 0.25) } in
      ignore (LN.invoke node fn);
      (* Second call is warm; should still take the 250 ms block. *)
      let t0 = Sim.Engine.now engine in
      let r, p = LN.invoke node fn in
      let dt = Sim.Engine.now engine -. t0 in
      Alcotest.(check bool) "ok and warm" true (r = Ok () && p = LN.Warm_container);
      Alcotest.(check bool) "blocked ~250 ms" true (dt >= 0.25 && dt < 0.4))

let test_linux_overload_errors () =
  (* A 2-container node with both containers held busy: new functions
     must time out waiting for capacity. *)
  let config =
    {
      LN.default_config with
      LN.container_cache_limit = 2;
      invoke_timeout = 2.0;
      capacity_retry_interval = 0.2;
    }
  in
  with_linux_node ~config (fun engine node ->
      let slow = { LN.fn_id = "slow"; action = B.Cpu_ms 8_000.0 } in
      let slow2 = { LN.fn_id = "slow2"; action = B.Cpu_ms 8_000.0 } in
      Sim.Engine.spawn engine (fun () -> ignore (LN.invoke node slow));
      Sim.Engine.spawn engine (fun () -> ignore (LN.invoke node slow2));
      (* Give the slow invocations time to occupy both containers. *)
      Sim.Engine.sleep 2.5;
      match LN.invoke node (nop_fn "blocked") with
      | Error `Overloaded, _ -> ()
      | Ok (), p ->
          Alcotest.failf "expected overload, request served via %s"
            (match p with
            | LN.Create -> "create"
            | LN.Stemcell -> "stemcell"
            | LN.Warm_container -> "warm")
      | Error _, _ -> ())

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "baselines"
    [
      ( "density",
        [
          case "ordering" test_density_ordering;
          case "seuss beats all" test_seuss_density_beats_all;
        ] );
      ( "creation",
        [
          case "process rate" test_process_creation_rate;
          case "docker slows" test_docker_creation_slows;
          case "firecracker slow" test_firecracker_creation_slow;
        ] );
      ( "ksm",
        [
          case "merges and frees" test_ksm_merges_and_frees;
          case "merged pages are cow" test_ksm_merged_pages_are_cow;
          case "daemon rate limited" test_ksm_daemon_rate_limited;
        ] );
      ( "linux_node",
        [
          case "cold then warm" test_linux_cold_then_warm;
          case "stemcell path" test_linux_stemcell_path;
          case "eviction" test_linux_eviction_on_saturation;
          case "io blocks" test_linux_io_function_blocks;
          case "overload errors" test_linux_overload_errors;
        ] );
    ]
