test/test_platform.ml: Alcotest Array Baselines Hashtbl Int64 Interp List Mem Net Option Platform Printf Seuss Sim Stats String
