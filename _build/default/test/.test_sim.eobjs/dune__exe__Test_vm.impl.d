test/test_vm.ml: Alcotest Array Buffer Format Interp List Platform Printf QCheck QCheck_alcotest String Unikernel
