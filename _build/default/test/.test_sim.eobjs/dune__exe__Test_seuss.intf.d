test/test_seuss.mli:
