test/test_unikernel.mli:
