test/test_net.ml: Alcotest Gen List Net Option QCheck QCheck_alcotest Sim
