test/test_experiments.ml: Alcotest Array Experiments Float Int64 List Mem Stats String
