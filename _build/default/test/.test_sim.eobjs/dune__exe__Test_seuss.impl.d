test/test_seuss.ml: Alcotest Gen Int64 List Mem Option Printf QCheck QCheck_alcotest Seuss Sim Unikernel
