test/test_baselines.ml: Alcotest Baselines Int64 Mem Net Printf Seuss Sim Unikernel
