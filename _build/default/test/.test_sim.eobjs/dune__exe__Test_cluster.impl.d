test/test_cluster.ml: Alcotest Cluster Int64 List Mem Option Printf Seuss Sim Unikernel
