test/test_interp.ml: Alcotest Interp List Printf QCheck QCheck_alcotest String
