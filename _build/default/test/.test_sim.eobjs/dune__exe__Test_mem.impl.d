test/test_mem.ml: Alcotest Array Int64 List Mem QCheck QCheck_alcotest
