test/test_sim.ml: Alcotest Array Fun Hashtbl List QCheck QCheck_alcotest Sim String
