test/test_unikernel.ml: Alcotest Int64 List Mem Net Sim String Unikernel
