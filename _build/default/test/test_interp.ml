(* Tests for the MiniJS language: lexing, parsing, constant folding,
   evaluation semantics, builtins and metering hooks. *)

module Ast = Interp.Ast

let host = Interp.Builtins.null_host

let load src =
  match Interp.Minijs.load ~host src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "load failed: %s" msg

(* Run [expr] in a program and render the result. *)
let eval_str expr =
  let p = load "" in
  match Interp.Minijs.parse_literal p expr with
  | Ok v -> Interp.Value.to_string v
  | Error msg -> Alcotest.failf "eval failed: %s" msg

let run_main ?(args = "null") src =
  let p = load src in
  match Interp.Minijs.run_main p ~args_literal:args with
  | Ok s -> s
  | Error msg -> Alcotest.failf "main failed: %s" msg

let check_eval msg expected expr =
  Alcotest.(check string) msg expected (eval_str expr)

(* {1 Lexer} *)

let test_lexer_tokens () =
  let toks = Interp.Lexer.tokenize "let x = 1.5; // comment\n x == \"hi\"" in
  let kinds =
    List.map
      (fun { Interp.Lexer.token; _ } ->
        match token with
        | Interp.Lexer.Tkeyword k -> "kw:" ^ k
        | Interp.Lexer.Tident i -> "id:" ^ i
        | Interp.Lexer.Tnum n -> Printf.sprintf "num:%g" n
        | Interp.Lexer.Tstr s -> "str:" ^ s
        | Interp.Lexer.Tpunct p -> p
        | Interp.Lexer.Teof -> "eof")
      toks
  in
  Alcotest.(check (list string)) "tokens"
    [ "kw:let"; "id:x"; "="; "num:1.5"; ";"; "id:x"; "=="; "str:hi"; "eof" ]
    kinds

let test_lexer_positions () =
  let toks = Interp.Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
      Alcotest.(check (pair int int)) "a at 1:1" (1, 1) (a.Interp.Lexer.line, a.Interp.Lexer.col);
      Alcotest.(check (pair int int)) "b at 2:3" (2, 3) (b.Interp.Lexer.line, b.Interp.Lexer.col)
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_string_escapes () =
  match Interp.Lexer.tokenize {|"a\nb\"c"|} with
  | [ { Interp.Lexer.token = Interp.Lexer.Tstr s; _ }; _ ] ->
      Alcotest.(check string) "escapes" "a\nb\"c" s
  | _ -> Alcotest.fail "expected one string token"

let test_lexer_block_comment () =
  let toks = Interp.Lexer.tokenize "1 /* skip \n me */ 2" in
  Alcotest.(check int) "two numbers + eof" 3 (List.length toks)

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (match Interp.Lexer.tokenize "let # = 1" with
    | _ -> false
    | exception Interp.Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "unterminated string" true
    (match Interp.Lexer.tokenize "\"abc" with
    | _ -> false
    | exception Interp.Lexer.Lex_error _ -> true)

(* {1 Expressions and semantics} *)

let test_arithmetic () =
  check_eval "precedence" "7" "1 + 2 * 3";
  check_eval "parens" "9" "(1 + 2) * 3";
  check_eval "division" "2.5" "5 / 2";
  check_eval "modulo" "1" "7 % 2";
  check_eval "negation" "-3" "-(1 + 2)"

let test_comparison_and_logic () =
  check_eval "lt" "true" "1 < 2";
  check_eval "ge" "false" "1 >= 2";
  check_eval "and short circuit" "false" "false && undefined_variable";
  check_eval "or short circuit" "1" "1 || undefined_variable";
  check_eval "not" "true" "!0";
  check_eval "ternary" "\"yes\"" "2 > 1 ? \"yes\" : \"no\""

let test_string_ops () =
  check_eval "concat" "\"ab\"" "\"a\" + \"b\"";
  check_eval "coercion" "\"n=5\"" "\"n=\" + 5";
  check_eval "string compare" "true" "\"abc\" < \"abd\"";
  check_eval "index" "\"b\"" "\"abc\"[1]"

let test_arrays () =
  check_eval "literal" "[1, 2, 3]" "[1, 2, 3]";
  check_eval "index" "2" "[1, 2, 3][1]";
  check_eval "length" "3" "[1, 2, 3].length";
  Alcotest.(check string) "push and mutate" "[1, 2]"
    (run_main "function main(a) { let xs = [1]; push(xs, 2); return xs; }")

let test_objects () =
  check_eval "field" "5" "{a: 5}.a";
  check_eval "missing field is null" "null" "{a: 5}.b";
  check_eval "string key" "5" "{a: 5}[\"a\"]";
  Alcotest.(check string) "mutation" "{\"a\": 1, \"b\": 2}"
    (run_main "function main(x) { let o = {a: 1}; o.b = 2; return o; }")

let test_control_flow () =
  Alcotest.(check string) "while loop" "10"
    (run_main
       "function main(x) { let i = 0; let s = 0; while (i < 5) { s = s + i; i \
        = i + 1; } return s; }");
  Alcotest.(check string) "break" "3"
    (run_main
       "function main(x) { let i = 0; while (true) { i = i + 1; if (i == 3) { \
        break; } } return i; }");
  Alcotest.(check string) "continue skips evens" "9"
    (run_main
       "function main(x) { let i = 0; let s = 0; while (i < 5) { i = i + 1; \
        if (i % 2 == 0) { continue; } s = s + i; } return s; }");
  Alcotest.(check string) "for loop" "45"
    (run_main
       "function main(x) { let s = 0; for (let i = 0; i < 10; i = i + 1) { s \
        += i; } return s; }")

let test_functions () =
  Alcotest.(check string) "recursion" "120"
    (run_main
       "function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); } function \
        main(x) { return fact(5); }");
  Alcotest.(check string) "closure captures" "3"
    (run_main
       "function adder(n) { return function(x) { return x + n; }; } function \
        main(a) { let add1 = adder(1); return add1(2); }");
  Alcotest.(check string) "higher order" "[2, 4]"
    (run_main
       "function map2(f, xs) { let out = []; for (let i = 0; i < xs.length; i \
        = i + 1) { push(out, f(xs[i])); } return out; } function main(a) { \
        return map2(function(x) { return x * 2; }, [1, 2]); }")

let test_scoping () =
  Alcotest.(check string) "block scope shadows" "1"
    (run_main
       "function main(a) { let x = 1; if (true) { let x = 2; x = 3; } return \
        x; }");
  Alcotest.(check string) "assignment reaches outer" "3"
    (run_main "function main(a) { let x = 1; if (true) { x = 3; } return x; }")

let test_main_args () =
  Alcotest.(check string) "args passed" "8"
    (let p = load "function main(args) { return args.a + args.b; }" in
     match Interp.Minijs.run_main p ~args_literal:"{a: 3, b: 5}" with
     | Ok s -> s
     | Error e -> Alcotest.fail e)

let test_runtime_errors () =
  let expect_error src =
    let p = load "function main(a) { return 0; }" in
    match Interp.Minijs.parse_literal p src with
    | Ok _ -> Alcotest.failf "expected error for %s" src
    | Error _ -> ()
  in
  expect_error "1 / 0";
  expect_error "undefined_var";
  expect_error "[1][5]";
  expect_error "null.field";
  expect_error "(5)(1)"

let test_parse_errors () =
  let expect_parse_error src =
    match Interp.Minijs.load ~host src with
    | Ok _ -> Alcotest.failf "expected parse error for %s" src
    | Error _ -> ()
  in
  expect_parse_error "let = 5";
  expect_parse_error "if (true) {";
  expect_parse_error "1 +";
  expect_parse_error "function f(a { }";
  expect_parse_error "5 = x"

let test_continue_in_for_rejected () =
  match Interp.Minijs.load ~host "for (let i = 0; i < 3; i += 1) { continue; }" with
  | Ok _ -> Alcotest.fail "continue in for should be rejected"
  | Error _ -> ()

(* {1 Constant folding} *)

let test_folding_shrinks () =
  let compiled src =
    match Interp.Compile.compile src with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let c = compiled "let x = 1 + 2 * 3;" in
  Alcotest.(check bool) "folded smaller" true
    (c.Interp.Compile.nodes < c.Interp.Compile.raw_nodes);
  let c2 = compiled "if (false) { heavy(); } else { light(); }" in
  Alcotest.(check bool) "dead branch pruned" true
    (c2.Interp.Compile.nodes < c2.Interp.Compile.raw_nodes)

let folding_preserves_semantics =
  (* Generate arithmetic expression trees; folded and unfolded versions
     must evaluate identically. *)
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then map (fun i -> Ast.Num (float_of_int i)) (int_range 0 20)
          else
            frequency
              [
                (1, map (fun i -> Ast.Num (float_of_int i)) (int_range 0 20));
                ( 2,
                  map3
                    (fun op a b -> Ast.Binop (op, a, b))
                    (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
                    (self (n / 2)) (self (n / 2)) );
                ( 1,
                  map3
                    (fun c a b ->
                      Ast.Ternary (Ast.Binop (Ast.Lt, c, Ast.Num 10.0), a, b))
                    (self (n / 2)) (self (n / 2)) (self (n / 2)) );
              ]))
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"constant folding preserves evaluation" ~count:200 arb
    (fun expr ->
      let program = [ Ast.Return (Some expr) ] in
      let run prog =
        let f =
          Interp.Value.Closure
            { Interp.Value.params = []; body = prog; env = Interp.Value.new_env () }
        in
        Interp.Value.to_string (Interp.Eval.call Interp.Eval.default_hooks f [])
      in
      run program = run (Interp.Compile.fold_program program))

(* {1 Builtins} *)

let test_builtins () =
  check_eval "len str" "3" "len(\"abc\")";
  check_eval "len arr" "2" "len([1, 2])";
  check_eval "floor" "2" "floor(2.9)";
  check_eval "abs" "4" "abs(-4)";
  check_eval "min max" "7" "min(9, 7) + max(-1, 0)";
  check_eval "pow" "8" "pow(2, 3)";
  check_eval "sqrt" "5" "sqrt(25)";
  check_eval "substr" "\"bc\"" "substr(\"abcd\", 1, 2)";
  check_eval "split" "[\"a\", \"b\"]" "split(\"a,b\", \",\")";
  check_eval "range" "[0, 1, 2]" "range(3)";
  check_eval "num parses" "42" "num(\"42\")";
  check_eval "str renders" "\"[1]\"" "str([1])";
  check_eval "json object" "\"{\\\"a\\\": 1}\"" "json({a: 1})";
  check_eval "keys sorted" "[\"a\", \"b\"]" "keys({b: 1, a: 2})";
  check_eval "join" "\"1-2\"" "join([1, 2], \"-\")";
  check_eval "contains" "true" "contains(\"abc\", \"bc\")";
  check_eval "index_of miss" "-1" "index_of([1, 2], 5)";
  check_eval "index_of string" "2" "index_of(\"abcd\", \"cd\")";
  check_eval "upper/lower/trim" "\"ABxyz\"" "upper(\"ab\") + lower(\"XY\") + trim(\" z \")";
  check_eval "slice" "[2, 3]" "slice([1, 2, 3, 4], 1, 2)";
  check_eval "sort" "[1, 2, 3]" "sort([2, 3, 1])"

let test_builtin_errors () =
  let p = load "" in
  let is_error src =
    match Interp.Minijs.parse_literal p src with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "len arity" true (is_error "len(1, 2)");
  Alcotest.(check bool) "len of number" true (is_error "len(5)");
  Alcotest.(check bool) "substr bounds" true (is_error "substr(\"ab\", 0, 9)");
  Alcotest.(check bool) "http without network" true (is_error "http_get(\"x\")")

let test_host_hooks () =
  let worked = ref 0.0 and logged = ref [] in
  let host =
    {
      Interp.Builtins.null_host with
      Interp.Builtins.work_ms = (fun ms -> worked := !worked +. ms);
      log = (fun s -> logged := s :: !logged);
      http_get = (fun url -> Ok ("body:" ^ url));
      now = (fun () -> 123.0);
    }
  in
  let p =
    match
      Interp.Minijs.load ~host
        "function main(a) { work(150); print(\"hi\"); return http_get(\"u\") + \
         \":\" + now(); }"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  (match Interp.Minijs.run_main p ~args_literal:"null" with
  | Ok s -> Alcotest.(check string) "io result" "\"body:u:123\"" s
  | Error e -> Alcotest.fail e);
  Alcotest.(check (float 1e-9)) "work recorded" 150.0 !worked;
  Alcotest.(check (list string)) "log captured" [ "hi" ] !logged

(* {1 Cloning} *)

let test_clone_isolates_mutation () =
  let src =
    "let counter = 0; function main(a) { counter = counter + 1; return \
     counter; }"
  in
  let original = load src in
  let copy = Interp.Minijs.clone ~host original in
  let run p =
    match Interp.Minijs.run_main p ~args_literal:"null" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "original first" "1" (run original);
  Alcotest.(check string) "original second" "2" (run original);
  Alcotest.(check string) "copy unaffected" "1" (run copy);
  Alcotest.(check string) "original keeps going" "3" (run original)

let test_clone_preserves_closures () =
  let src =
    "function counter() { let n = 0; return function() { n = n + 1; return n; \
     }; } let tick = counter(); function main(a) { return tick(); }"
  in
  let original = load src in
  ignore
    (match Interp.Minijs.run_main original ~args_literal:"null" with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
  let copy = Interp.Minijs.clone ~host original in
  (* The copy's closure state starts from the captured value (1), and
     advances independently. *)
  (match Interp.Minijs.run_main copy ~args_literal:"null" with
  | Ok s -> Alcotest.(check string) "copy continues from capture" "2" s
  | Error e -> Alcotest.fail e);
  match Interp.Minijs.run_main original ~args_literal:"null" with
  | Ok s -> Alcotest.(check string) "original unaffected by copy" "2" s
  | Error e -> Alcotest.fail e

let test_clone_shares_nothing_mutable () =
  let src =
    "let store = {items: []}; function main(a) { push(store.items, a); return \
     store.items; }"
  in
  let original = load src in
  let copy = Interp.Minijs.clone ~host original in
  (match Interp.Minijs.run_main original ~args_literal:"1" with
  | Ok s -> Alcotest.(check string) "original" "[1]" s
  | Error e -> Alcotest.fail e);
  match Interp.Minijs.run_main copy ~args_literal:"2" with
  | Ok s -> Alcotest.(check string) "copy sees only its own write" "[2]" s
  | Error e -> Alcotest.fail e

let test_clone_rebinds_host () =
  let logged = ref [] in
  let host2 =
    {
      Interp.Builtins.null_host with
      Interp.Builtins.log = (fun s -> logged := s :: !logged);
    }
  in
  let original = load "function main(a) { print(\"x\"); return 0; }" in
  let copy = Interp.Minijs.clone ~host:host2 original in
  (match Interp.Minijs.run_main copy ~args_literal:"null" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "copy logs to new host" [ "x" ] !logged

let test_clone_handles_cycles () =
  (* A closure stored in the same scope it captures: the environment
     graph is cyclic; the copy must terminate and stay isolated. *)
  let src =
    "let cell = {f: null, n: 0}; cell.f = function() { cell.n = cell.n + 1;      return cell.n; }; function main(a) { return cell.f(); }"
  in
  let original = load src in
  (match Interp.Minijs.run_main original ~args_literal:"null" with
  | Ok s -> Alcotest.(check string) "original ticks" "1" s
  | Error e -> Alcotest.fail e);
  let copy = Interp.Minijs.clone ~host original in
  (match Interp.Minijs.run_main copy ~args_literal:"null" with
  | Ok s -> Alcotest.(check string) "copy continues from captured state" "2" s
  | Error e -> Alcotest.fail e);
  match Interp.Minijs.run_main original ~args_literal:"null" with
  | Ok s -> Alcotest.(check string) "original unaffected" "2" s
  | Error e -> Alcotest.fail e

(* {1 Metering} *)

let test_metering_counts_work_and_allocs () =
  let ticked = ref 0.0 and allocated = ref 0 in
  let hooks =
    {
      Interp.Eval.alloc = (fun b -> allocated := !allocated + b);
      work = (fun s -> ticked := !ticked +. s);
      max_ops = 10_000_000;
    }
  in
  let p =
    match
      Interp.Minijs.load ~hooks ~host
        "function main(a) { let s = \"\"; for (let i = 0; i < 1000; i += 1) { \
         s = s + \"x\"; } return len(s); }"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  (match Interp.Minijs.run_main p ~args_literal:"null" with
  | Ok s -> Alcotest.(check string) "result" "1000" s
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "work billed" true (!ticked > 0.0);
  (* 1000 string concats of growing strings allocate ~0.5 MB. *)
  Alcotest.(check bool) "allocations metered" true (!allocated > 100_000)

let test_ops_budget_stops_runaway () =
  let hooks = { Interp.Eval.default_hooks with Interp.Eval.max_ops = 10_000 } in
  let p =
    match
      Interp.Minijs.load ~hooks ~host "function main(a) { while (true) { 1; } }"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  match Interp.Minijs.run_main p ~args_literal:"null" with
  | Ok _ -> Alcotest.fail "expected budget exhaustion"
  | Error msg ->
      Alcotest.(check bool) "mentions budget" true
        (String.length msg > 0)

let () =
  let case name f = Alcotest.test_case name `Quick f in
  let qcase = QCheck_alcotest.to_alcotest in
  Alcotest.run "interp"
    [
      ( "lexer",
        [
          case "tokens" test_lexer_tokens;
          case "positions" test_lexer_positions;
          case "string escapes" test_lexer_string_escapes;
          case "block comment" test_lexer_block_comment;
          case "errors" test_lexer_errors;
        ] );
      ( "semantics",
        [
          case "arithmetic" test_arithmetic;
          case "comparison and logic" test_comparison_and_logic;
          case "strings" test_string_ops;
          case "arrays" test_arrays;
          case "objects" test_objects;
          case "control flow" test_control_flow;
          case "functions" test_functions;
          case "scoping" test_scoping;
          case "main args" test_main_args;
          case "runtime errors" test_runtime_errors;
          case "parse errors" test_parse_errors;
          case "continue in for rejected" test_continue_in_for_rejected;
        ] );
      ( "compile",
        [ case "folding shrinks" test_folding_shrinks; qcase folding_preserves_semantics ] );
      ( "builtins",
        [
          case "library" test_builtins;
          case "errors" test_builtin_errors;
          case "host hooks" test_host_hooks;
        ] );
      ( "clone",
        [
          case "isolates mutation" test_clone_isolates_mutation;
          case "preserves closures" test_clone_preserves_closures;
          case "shares nothing mutable" test_clone_shares_nothing_mutable;
          case "rebinds host" test_clone_rebinds_host;
          case "handles cycles" test_clone_handles_cycles;
        ] );
      ( "metering",
        [
          case "work and allocs" test_metering_counts_work_and_allocs;
          case "ops budget" test_ops_budget_stops_runaway;
        ] );
    ]
