(* Differential tests: the bytecode VM and the tree-walking evaluator
   must agree — on directed programs covering every construct, and on
   randomly generated programs. Outcomes compared include error messages
   and the rendered value of every top-level binding. *)

module V = Interp.Value
module Ast = Interp.Ast

let hooks = { Interp.Eval.default_hooks with Interp.Eval.max_ops = 2_000_000 }

let fresh_env () =
  let globals = V.new_env () in
  List.iter
    (fun (name, v) -> V.define globals name v)
    (Interp.Builtins.install Interp.Builtins.null_host);
  V.new_env ~parent:globals ()

(* Run a program and observe: error, or the rendering of each top-level
   binding in [names]. *)
let observe exec program names =
  let env = fresh_env () in
  match exec hooks ~env program with
  | () ->
      Ok
        (List.map
           (fun n ->
             ( n,
               match V.lookup env n with
               | Some v -> V.to_string v
               | None -> "<unbound>" ))
           names)
  | exception Interp.Eval.Runtime_error msg -> Error msg

let names_of program =
  List.filter_map
    (function Ast.Let (n, _) -> Some n | _ -> None)
    program
  |> List.sort_uniq compare

let both_agree ?(show = fun _ -> "<program>") program =
  let names = names_of program in
  let tree = observe Interp.Eval.exec_program program names in
  let vm = observe Interp.Vm.exec_program program names in
  if tree = vm then true
  else begin
    Printf.printf "\nDIVERGENCE on %s\n  tree: %s\n  vm:   %s\n" (show program)
      (match tree with
      | Ok l -> String.concat "; " (List.map (fun (n, v) -> n ^ "=" ^ v) l)
      | Error e -> "error: " ^ e)
      (match vm with
      | Ok l -> String.concat "; " (List.map (fun (n, v) -> n ^ "=" ^ v) l)
      | Error e -> "error: " ^ e);
    false
  end

let check_source src =
  match Interp.Compile.compile src with
  | Error e -> Alcotest.failf "compile failed: %s" e
  | Ok { Interp.Compile.ast; _ } ->
      Alcotest.(check bool) src true (both_agree ~show:(fun _ -> src) ast)

(* {1 Directed cases} *)

let directed_cases =
  [
    "let a = 1 + 2 * 3 - 4 / 2;";
    "let a = \"x\" + 1 + true;";
    "let a = [1, 2, 3]; let b = a[1] + a.length;";
    "let o = {x: 1, y: 2}; o.z = o.x + o[\"y\"]; let r = json(o);";
    "let a = []; a[0] = 5; a[1] = 6; let n = len(a);";
    "let r = 0; if (1 < 2) { r = 10; } else { r = 20; }";
    "let r = 0; if (false) { r = 1; }";
    "let s = 0; let i = 0; while (i < 10) { s += i; i += 1; }";
    "let s = 0; let i = 0; while (true) { i += 1; if (i > 3) { break; } s += i; }";
    "let s = 0; let i = 0; while (i < 6) { i += 1; if (i % 2 == 0) { continue; } s += i; }";
    "function f(x) { return x * 2; } let r = f(21);";
    "function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); } let r = fact(6);";
    "function adder(n) { return function(x) { return x + n; }; } let r = adder(10)(5);";
    "let x = 1; if (true) { let x = 2; x = 3; } let r = x;";
    "let x = 1; if (true) { x = 9; } let r = x;";
    "let a = true && false; let b = false || 7; let c = 0 && 1; let d = \"s\" || 0;";
    "let r = 2 > 1 ? \"yes\" : \"no\";";
    "let r = !0; let q = !\"\"; let p = -(3 + 4);";
    "let r = min(3, max(1, 2)) + abs(-5) + floor(2.9) + pow(2, 5);";
    "let parts = split(\"a,b,c\", \",\"); let r = parts[1] + len(parts);";
    "let r = substr(\"hello\", 1, 3);";
    "let r = hash(\"abc\") == hash(\"abc\");";
    "let xs = range(5); let s = 0; let i = 0; while (i < len(xs)) { s += xs[i]; i += 1; }";
    "function outer() { let acc = []; let i = 0; while (i < 3) { push(acc, \
     function(x) { return x + 1; }); i += 1; } return len(acc); } let r = \
     outer();";
    "for (let i = 0; i < 5; i += 1) { } let done1 = 1;";
    "let s = \"\"; for (let i = 0; i < 4; i += 1) { s = s + i; }";
    "let a = [[1, 2], [3, 4]]; let r = a[1][0] + a[0][1];";
    "let o = {inner: {v: 7}}; let r = o.inner.v; o.inner.v = 9; let q = o.inner.v;";
    "let e1 = 1 / 0;" (* error case *);
    "let e2 = undefined_variable;" (* error case *);
    "let e3 = [1][5];" (* error case *);
    "function g(a, b) { return a; } let e4 = g(1);" (* arity error *);
    "let e5 = (5)(2);" (* call non-function *);
    "let n = num(\"12\") + num(\"0.5\"); let s = str(42);";
    "let ks = keys({b: 1, a: 2}); let r = ks[0] + ks[1];";
    "let r = join([1, \"a\", true], \"-\");";
    "let r = contains(\"hello\", \"ell\") && !contains(\"hello\", \"z\");";
    "let a = index_of([1, 2, 3], 2); let b = index_of(\"abcabc\", \"ca\"); let c = index_of([1], 9);";
    "let r = upper(\"aBc\") + lower(\"XyZ\") + trim(\"  pad  \");";
    "let r = json(slice([1, 2, 3, 4], 1, 2));";
    "let r = json(sort([3, 1, 2])) + json(sort([\"b\", \"a\"]));";
    "let e6 = sort([1, \"a\"]);" (* error: mixed sort *);
  ]

let test_directed () = List.iter check_source directed_cases

(* The dummy AO script and the workload functions must also agree. *)
let test_real_sources () =
  List.iter check_source
    [
      Unikernel.Driver.dummy_script;
      Platform.Workloads.source_of_action Platform.Workloads.nop;
      Platform.Workloads.source_of_action Platform.Workloads.cpu_burst;
    ]

(* {1 Random program generator} *)

(* Generates closed, terminating programs: loops are bounded counter
   loops; functions never see themselves in scope (no recursion). *)
module Progen = struct
  open QCheck.Gen

  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n

  let literal =
    oneof
      [
        map (fun i -> Ast.Num (float_of_int i)) (int_range (-20) 20);
        map (fun b -> Ast.Bool b) bool;
        oneofl [ Ast.Str "a"; Ast.Str "bc"; Ast.Null ];
      ]

  let rec expr vars n st =
    if n <= 0 || vars = [] then
      (if vars = [] then literal
       else oneof [ literal; map (fun v -> Ast.Var v) (oneofl vars) ])
        st
    else
      oneof
        [
          literal;
          map (fun v -> Ast.Var v) (oneofl vars);
          map3
            (fun op a b -> Ast.Binop (op, a, b))
            (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Eq; Ast.Neq; Ast.Lt; Ast.Ge ])
            (expr vars (n / 2))
            (expr vars (n / 2));
          map2 (fun a b -> Ast.And (a, b)) (expr vars (n / 2)) (expr vars (n / 2));
          map2 (fun a b -> Ast.Or (a, b)) (expr vars (n / 2)) (expr vars (n / 2));
          map3
            (fun c a b -> Ast.Ternary (c, a, b))
            (expr vars (n / 2))
            (expr vars (n / 2))
            (expr vars (n / 2));
          map (fun e -> Ast.Unop (Ast.Not, e)) (expr vars (n - 1));
          map (fun es -> Ast.Array es) (list_size (int_range 0 3) (expr vars (n / 2)));
          map
            (fun es ->
              Ast.Object (List.mapi (fun i e -> (Printf.sprintf "k%d" i, e)) es))
            (list_size (int_range 0 3) (expr vars (n / 2)));
        ]
        st

  (* A statement generator threading the in-scope variable list. *)
  let rec stmts vars budget st =
    if budget <= 0 then []
    else
      let choice = int_range 0 5 st in
      match choice with
      | 0 ->
          let name = fresh "v" in
          let s = Ast.Let (name, expr vars 3 st) in
          s :: stmts (name :: vars) (budget - 1) st
      | 1
        when List.exists (fun v -> v.[0] <> 'c') vars ->
          (* Never reassign loop counters (prefix 'c'): that could make a
             bounded loop unbounded. *)
          let writable = List.filter (fun v -> v.[0] <> 'c') vars in
          let v = oneofl writable st in
          Ast.Assign (Ast.Lvar v, expr vars 3 st) :: stmts vars (budget - 1) st
      | 2 ->
          let cond = expr vars 2 st in
          let then_ = stmts vars (budget / 2) st in
          let else_ = stmts vars (budget / 2) st in
          Ast.If (cond, then_, else_) :: stmts vars (budget - 1) st
      | 3 ->
          (* Bounded loop: let c = 0; while (c < k) { c = c + 1; body } *)
          let c = fresh "c" in
          let k = float_of_int (int_range 1 5 st) in
          let body = stmts (c :: vars) (budget / 2) st in
          Ast.Let (c, Ast.Num 0.0)
          :: Ast.While
               ( Ast.Binop (Ast.Lt, Ast.Var c, Ast.Num k),
                 Ast.Assign (Ast.Lvar c, Ast.Binop (Ast.Add, Ast.Var c, Ast.Num 1.0))
                 :: body )
          :: stmts vars (budget - 2) st
      | 4 ->
          (* Function definition and a call to it. *)
          let fname = fresh "f" in
          let param = fresh "p" in
          let body = stmts (param :: vars) (budget / 2) st in
          let ret = Ast.Return (Some (expr (param :: vars) 2 st)) in
          let result = fresh "r" in
          Ast.Let (fname, Ast.Lambda ([ param ], body @ [ ret ]))
          :: Ast.Let (result, Ast.Call (Ast.Var fname, [ expr vars 2 st ]))
          :: stmts (result :: fname :: vars) (budget - 2) st
      | _ -> Ast.Expr (expr vars 3 st) :: stmts vars (budget - 1) st

  let program = sized_size (int_range 2 14) (fun n st -> stmts [] n st)
end

let engines_agree_on_random_programs =
  QCheck.Test.make ~name:"VM and tree-walker agree on random programs"
    ~count:400
    (QCheck.make Progen.program)
    (fun program -> both_agree program)

let folding_agrees_on_random_programs =
  QCheck.Test.make
    ~name:"constant folding preserves semantics under both engines" ~count:200
    (QCheck.make Progen.program)
    (fun program ->
      let folded = Interp.Compile.fold_program program in
      let names = names_of program in
      observe Interp.Eval.exec_program program names
      = observe Interp.Vm.exec_program folded names)

(* {1 VM specifics} *)

let test_vm_closure_capture () =
  check_source
    "function counter() { let n = 0; return function() { n = n + 1; return n; \
     }; } let t = counter(); let a = t(); let b = t(); let r = a + b;"

let test_vm_break_unwinds_scopes () =
  (* break inside two nested blocks must unwind both scopes before
     jumping: the outer x must be restored correctly. *)
  check_source
    "let x = 1; let i = 0; while (i < 5) { i += 1; if (true) { let x = 99; if \
     (x > 0) { break; } } } let r = x + i;"

let test_vm_metering_comparable () =
  (* The VM bills work too; its op count is within an order of magnitude
     of the tree-walker's for the same program. *)
  let measure exec =
    let worked = ref 0.0 in
    let hooks =
      {
        Interp.Eval.alloc = (fun _ -> ());
        work = (fun s -> worked := !worked +. s);
        max_ops = 10_000_000;
      }
    in
    let env = fresh_env () in
    (match Interp.Compile.compile
             "let s = 0; let i = 0; while (i < 5000) { s += i; i += 1; }"
     with
    | Ok { Interp.Compile.ast; _ } -> exec hooks ~env ast
    | Error e -> Alcotest.fail e);
    !worked
  in
  let tree = measure Interp.Eval.exec_program in
  let vm = measure Interp.Vm.exec_program in
  Alcotest.(check bool) "both bill work" true (tree > 0.0 && vm > 0.0);
  Alcotest.(check bool) "same order of magnitude" true
    (vm /. tree < 10.0 && tree /. vm < 10.0)

let test_bytecode_renders () =
  match Interp.Compile.compile "let x = 1; if (x > 0) { x = 2; }" with
  | Error e -> Alcotest.fail e
  | Ok { Interp.Compile.ast; _ } ->
      let proto = Interp.Codegen.compile_program ast in
      Alcotest.(check bool) "has instructions" true
        (Interp.Bytecode.length proto > 5);
      let buf = Buffer.create 64 in
      Array.iter
        (fun i ->
          Buffer.add_string buf (Format.asprintf "%a; " Interp.Bytecode.pp_instr i))
        proto.Interp.Bytecode.code;
      Alcotest.(check bool) "disassembles" true (Buffer.length buf > 20)

let () =
  let case name f = Alcotest.test_case name `Quick f in
  let qcase = QCheck_alcotest.to_alcotest in
  Alcotest.run "vm"
    [
      ( "differential",
        [
          case "directed cases" test_directed;
          case "real sources" test_real_sources;
          qcase engines_agree_on_random_programs;
          qcase folding_agrees_on_random_programs;
        ] );
      ( "vm",
        [
          case "closure capture" test_vm_closure_capture;
          case "break unwinds scopes" test_vm_break_unwinds_scopes;
          case "metering comparable" test_vm_metering_comparable;
          case "bytecode renders" test_bytecode_renders;
        ] );
    ]
