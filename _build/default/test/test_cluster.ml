(* Tests for DR-SEUSS: the snapshot registry, cross-node snapshot import
   and the cluster scheduler. *)

let gib n = Int64.mul (Int64.of_int n) (Int64.of_int (Mem.Mconfig.mib 1024))

let in_sim ?(seed = 19L) body =
  let engine = Sim.Engine.create ~seed () in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"test" (fun () -> result := Some (body engine));
  Sim.Engine.run engine;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let nop_fn id =
  {
    Seuss.Node.fn_id = id;
    runtime = Unikernel.Image.Node;
    source = "function main(args) { return {}; }";
  }

let with_cluster ?(nodes = 3) body =
  in_sim (fun engine ->
      let c = Cluster.Drseuss.create ~nodes ~budget_per_node:(gib 6) engine in
      body engine c)

(* {1 Registry} *)

let test_registry_publish_locate () =
  with_cluster ~nodes:2 (fun _engine c ->
      let reg = Cluster.Registry.create () in
      let node = List.hd (Cluster.Drseuss.nodes c) in
      ignore (Seuss.Node.invoke node (nop_fn "f") ~args:"{}");
      let snap = Option.get (Seuss.Node.function_snapshot node "f") in
      Cluster.Registry.publish reg ~fn_id:"f" ~node_id:0 snap;
      Alcotest.(check int) "one entry" 1 (Cluster.Registry.entries reg);
      Alcotest.(check int) "one holder" 1
        (List.length (Cluster.Registry.locate reg ~fn_id:"f"));
      Alcotest.(check bool) "no other holder than 0" true
        (Option.is_none (Cluster.Registry.holder_other_than reg ~fn_id:"f" ~node_id:0));
      Cluster.Registry.publish reg ~fn_id:"f" ~node_id:1 snap;
      Alcotest.(check bool) "holder other than 0 now" true
        (Option.is_some (Cluster.Registry.holder_other_than reg ~fn_id:"f" ~node_id:0));
      Cluster.Registry.forget_node reg ~node_id:1;
      Alcotest.(check int) "back to one holder" 1
        (List.length (Cluster.Registry.locate reg ~fn_id:"f")))

let test_registry_filters_deleted () =
  with_cluster ~nodes:1 (fun _engine c ->
      let reg = Cluster.Registry.create () in
      let node = List.hd (Cluster.Drseuss.nodes c) in
      ignore (Seuss.Node.invoke node (nop_fn "g") ~args:"{}");
      Seuss.Node.drop_idle node ~fn_id:"g";
      let snap = Option.get (Seuss.Node.function_snapshot node "g") in
      Cluster.Registry.publish reg ~fn_id:"g" ~node_id:0 snap;
      let env = Seuss.Node.env node in
      Alcotest.(check bool) "deletable" true (Seuss.Snapshot.try_delete ~env snap);
      Alcotest.(check int) "deleted holder filtered" 0
        (List.length (Cluster.Registry.locate reg ~fn_id:"g")))

(* {1 Snapshot import} *)

let test_import_builds_local_stack () =
  with_cluster ~nodes:2 (fun _engine c ->
      match Cluster.Drseuss.nodes c with
      | [ n0; n1 ] ->
          ignore (Seuss.Node.invoke n0 (nop_fn "h") ~args:"{}");
          let remote = Option.get (Seuss.Node.function_snapshot n0 "h") in
          let local_base =
            Option.get (Seuss.Node.base_snapshot n1 Unikernel.Image.Node)
          in
          let env1 = Seuss.Node.env n1 in
          let imported =
            Seuss.Snapshot.import ~env:env1 ~name:"h-copy" ~local_base ~remote
              ~transfer_time:(Cluster.Drseuss.transfer_time remote)
          in
          Alcotest.(check int) "same diff size"
            remote.Seuss.Snapshot.diff_pages
            imported.Seuss.Snapshot.diff_pages;
          Alcotest.(check int) "stacked on local base" 2
            (Seuss.Snapshot.depth imported);
          (* Deployable: run the function from the imported snapshot. *)
          Seuss.Node.install_snapshot n1 ~fn_id:"h" imported;
          (match Seuss.Node.invoke n1 (nop_fn "h") ~args:"{}" with
          | Ok _, Seuss.Node.Warm -> ()
          | Ok _, _ -> Alcotest.fail "expected warm path from import"
          | Error _, _ -> Alcotest.fail "imported snapshot not runnable")
      | _ -> Alcotest.fail "expected two nodes")

let test_import_rejects_mismatch () =
  with_cluster ~nodes:2 (fun _engine c ->
      match Cluster.Drseuss.nodes c with
      | [ n0; n1 ] ->
          let base0 = Option.get (Seuss.Node.base_snapshot n0 Unikernel.Image.Node) in
          let base1 = Option.get (Seuss.Node.base_snapshot n1 Unikernel.Image.Node) in
          let env1 = Seuss.Node.env n1 in
          Alcotest.(check bool) "base as remote rejected" true
            (match
               Seuss.Snapshot.import ~env:env1 ~name:"x" ~local_base:base1
                 ~remote:base0 ~transfer_time:0.01
             with
            | _ -> false
            | exception Invalid_argument _ -> true)
      | _ -> Alcotest.fail "expected two nodes")

(* {1 Cluster scheduling} *)

let test_cluster_cold_then_fetch () =
  with_cluster ~nodes:3 (fun _engine c ->
      let fn = nop_fn "shared" in
      let invoke () = Cluster.Drseuss.invoke c fn ~args:"{}" in
      (match invoke () with
      | Ok _, Cluster.Drseuss.Cluster_cold -> ()
      | Ok _, _ -> Alcotest.fail "first should be a cluster cold"
      | Error _, _ -> Alcotest.fail "invocation failed");
      (* Next two route to the other nodes: they fetch instead of
         compiling from scratch. *)
      (match invoke () with
      | Ok _, Cluster.Drseuss.Remote_fetch -> ()
      | Ok _, _ -> Alcotest.fail "second should be a remote fetch"
      | Error _, _ -> Alcotest.fail "invocation failed");
      (match invoke () with
      | Ok _, Cluster.Drseuss.Remote_fetch -> ()
      | Ok _, _ -> Alcotest.fail "third should be a remote fetch"
      | Error _, _ -> Alcotest.fail "invocation failed");
      (* Fourth wraps around to a node that already holds it. *)
      (match invoke () with
      | Ok _, Cluster.Drseuss.Local _ -> ()
      | Ok _, _ -> Alcotest.fail "fourth should be local"
      | Error _, _ -> Alcotest.fail "invocation failed");
      let s = Cluster.Drseuss.stats c in
      Alcotest.(check int) "one cluster cold" 1 s.Cluster.Drseuss.cluster_colds;
      Alcotest.(check int) "two fetches" 2 s.Cluster.Drseuss.remote_fetches;
      Alcotest.(check bool) "bytes moved" true
        (Int64.compare s.Cluster.Drseuss.bytes_transferred 0L > 0))

let test_fetch_faster_than_cold () =
  with_cluster ~nodes:2 (fun engine c ->
      let fn = nop_fn "timing" in
      let timed () =
        let t0 = Sim.Engine.now engine in
        match Cluster.Drseuss.invoke c fn ~args:"{}" with
        | Ok _, source -> (Sim.Engine.now engine -. t0, source)
        | Error _, _ -> Alcotest.fail "invocation failed"
      in
      let d_cold, s1 = timed () in
      let d_fetch, s2 = timed () in
      Alcotest.(check bool) "sources" true
        (s1 = Cluster.Drseuss.Cluster_cold && s2 = Cluster.Drseuss.Remote_fetch);
      (* Fetch = transfer (~2 ms for a 2 MB diff) + warm deploy: cheaper
         than a full import+compile cold start. *)
      Alcotest.(check bool) "fetch beats cold" true (d_fetch < d_cold))

let test_cluster_spreads_load () =
  with_cluster ~nodes:3 (fun engine c ->
      (* 9 concurrent distinct functions: every node should do work. *)
      let remaining = ref 9 in
      let done_ = Sim.Ivar.create () in
      for i = 1 to 9 do
        Sim.Engine.spawn engine (fun () ->
            (match
               Cluster.Drseuss.invoke c (nop_fn (Printf.sprintf "spread-%d" i))
                 ~args:"{}"
             with
            | Ok _, _ -> ()
            | Error _, _ -> Alcotest.fail "invocation failed");
            decr remaining;
            if !remaining = 0 then Sim.Ivar.fill done_ ())
      done;
      Sim.Ivar.read done_;
      let per_node =
        List.map
          (fun n -> (Seuss.Node.stats n).Seuss.Node.cold)
          (Cluster.Drseuss.nodes c)
      in
      List.iter
        (fun colds -> Alcotest.(check bool) "every node served" true (colds > 0))
        per_node)

let test_isolation_across_nodes () =
  with_cluster ~nodes:2 (fun _engine c ->
      let fn =
        {
          Seuss.Node.fn_id = "stateful";
          runtime = Unikernel.Image.Node;
          source = "let n = 0; function main(a) { n = n + 1; return n; }";
        }
      in
      let invoke () =
        match Cluster.Drseuss.invoke c fn ~args:"{}" with
        | Ok r, _ -> r
        | Error _, _ -> Alcotest.fail "invocation failed"
      in
      (* Node 0 cold (runs once), node 1 fetches the post-compile
         snapshot (counter still 0 in the snapshot) and runs once. *)
      Alcotest.(check string) "node 0 first run" "1" (invoke ());
      Alcotest.(check string) "node 1 starts from the snapshot" "1" (invoke ()))

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cluster"
    [
      ( "registry",
        [
          case "publish locate" test_registry_publish_locate;
          case "filters deleted" test_registry_filters_deleted;
        ] );
      ( "import",
        [
          case "builds local stack" test_import_builds_local_stack;
          case "rejects mismatch" test_import_rejects_mismatch;
        ] );
      ( "scheduling",
        [
          case "cold then fetch" test_cluster_cold_then_fetch;
          case "fetch faster than cold" test_fetch_faster_than_cold;
          case "spreads load" test_cluster_spreads_load;
          case "isolation across nodes" test_isolation_across_nodes;
        ] );
    ]
