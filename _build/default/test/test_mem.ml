(* Tests for the frame allocator, shared page tables and COW address
   spaces — the substrate whose accounting drives every memory number in
   the reproduction. *)

module F = Mem.Frame
module PT = Mem.Page_table
module AS = Mem.Addr_space

let small_frames () = F.create ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 64)) ()

(* {1 Frame allocator} *)

let test_frame_alloc_free () =
  let f = small_frames () in
  let a = F.alloc f and b = F.alloc f in
  Alcotest.(check int) "live" 2 (F.used_frames f);
  Alcotest.(check int) "rc" 1 (F.refcount f a);
  F.incref f a;
  F.decref f a;
  Alcotest.(check int) "still live" 2 (F.used_frames f);
  F.decref f a;
  F.decref f b;
  Alcotest.(check int) "all freed" 0 (F.used_frames f);
  Alcotest.(check int) "peak" 2 (F.peak_frames f)

let test_frame_budget_enforced () =
  let f = F.create ~budget_bytes:(Int64.of_int (4096 * 4)) () in
  for _ = 1 to 4 do
    ignore (F.alloc f)
  done;
  Alcotest.check_raises "budget" F.Out_of_memory (fun () -> ignore (F.alloc f))

let test_frame_reuse_after_free () =
  let f = F.create ~budget_bytes:(Int64.of_int (4096 * 2)) () in
  let a = F.alloc f in
  ignore (F.alloc f);
  F.decref f a;
  let c = F.alloc f in
  Alcotest.(check int) "slot recycled" a c

let test_frame_dead_frame_rejected () =
  let f = small_frames () in
  let a = F.alloc f in
  F.decref f a;
  Alcotest.(check bool) "dead decref raises" true
    (match F.decref f a with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_frame_accounting () =
  let f = small_frames () in
  ignore (F.alloc f);
  Alcotest.(check int64) "used bytes" 4096L (F.used_bytes f);
  Alcotest.(check int64) "free bytes"
    (Int64.sub (F.budget_bytes f) 4096L)
    (F.free_bytes f)

let frame_refcount_conservation =
  QCheck.Test.make ~name:"random incref/decref keeps allocator consistent"
    ~count:100
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let f = small_frames () in
      let live = ref [] in
      List.iter
        (fun op ->
          match (op, !live) with
          | 0, _ -> live := (F.alloc f, ref 1) :: !live
          | 1, (fr, rc) :: _ ->
              F.incref f fr;
              incr rc
          | 2, (fr, rc) :: rest ->
              F.decref f fr;
              decr rc;
              if !rc = 0 then live := rest
          | _ -> ())
        ops;
      F.used_frames f = List.length !live)

(* {1 Page table} *)

let entry_rw f =
  PT.Entry.make ~frame:f ~writable:true ~cow:false ~dirty:false ~accessed:false

let test_entry_roundtrip () =
  let e =
    PT.Entry.make ~frame:123456 ~writable:true ~cow:false ~dirty:true
      ~accessed:false
  in
  Alcotest.(check bool) "present" true (PT.Entry.present e);
  Alcotest.(check int) "frame" 123456 (PT.Entry.frame e);
  Alcotest.(check bool) "writable" true (PT.Entry.writable e);
  Alcotest.(check bool) "cow" false (PT.Entry.cow e);
  Alcotest.(check bool) "dirty" true (PT.Entry.dirty e);
  let e' = PT.Entry.with_flags ~writable:false ~cow:true e in
  Alcotest.(check bool) "flags updated" true
    (PT.Entry.cow e' && not (PT.Entry.writable e'));
  Alcotest.(check int) "frame preserved" 123456 (PT.Entry.frame e')

let entry_roundtrip_prop =
  QCheck.Test.make ~name:"entry encodes any frame/flag combination" ~count:300
    QCheck.(
      tup5 (int_range 0 10_000_000) bool bool bool bool)
    (fun (frame, w, c, d, a) ->
      let e = PT.Entry.make ~frame ~writable:w ~cow:c ~dirty:d ~accessed:a in
      PT.Entry.present e && PT.Entry.frame e = frame
      && PT.Entry.writable e = w && PT.Entry.cow e = c
      && PT.Entry.dirty e = d && PT.Entry.accessed e = a)

let test_pt_set_get () =
  let f = small_frames () in
  let pt = PT.create f in
  let fr = F.alloc f in
  PT.set pt ~vpn:1000 (entry_rw fr);
  Alcotest.(check int) "frame back" fr (PT.Entry.frame (PT.get pt ~vpn:1000));
  Alcotest.(check int) "absent elsewhere" PT.Entry.absent (PT.get pt ~vpn:1001);
  Alcotest.(check int) "one page" 1 (PT.count_present pt)

let test_pt_overwrite_releases_old_frame () =
  let f = small_frames () in
  let pt = PT.create f in
  let a = F.alloc f and b = F.alloc f in
  PT.set pt ~vpn:5 (entry_rw a);
  PT.set pt ~vpn:5 (entry_rw b);
  Alcotest.(check int) "old frame freed" 1 (F.used_frames f);
  PT.set pt ~vpn:5 PT.Entry.absent;
  Alcotest.(check int) "cleared" 0 (F.used_frames f)

let test_pt_clone_shares_leaves () =
  let f = small_frames () in
  let pt = PT.create f in
  let fr = F.alloc f in
  PT.set pt ~vpn:0 (entry_rw fr);
  let clone = PT.clone_shallow pt in
  (* No frame refcount change on shallow clone. *)
  Alcotest.(check int) "frame rc unchanged" 1 (F.refcount f fr);
  Alcotest.(check int) "clone sees entry" fr
    (PT.Entry.frame (PT.get clone ~vpn:0));
  Alcotest.(check int) "no private leaves in either" 0
    (PT.private_leaf_tables pt + PT.private_leaf_tables clone)

let test_pt_write_privatizes_leaf () =
  let f = small_frames () in
  let pt = PT.create f in
  let fr = F.alloc f in
  PT.set pt ~vpn:0 (entry_rw fr);
  let clone = PT.clone_shallow pt in
  let fr2 = F.alloc f in
  PT.set clone ~vpn:1 (entry_rw fr2);
  (* The clone copied the leaf: the shared frame now has two mapping
     references (one per leaf). *)
  Alcotest.(check int) "shared frame rc" 2 (F.refcount f fr);
  Alcotest.(check int) "original unaffected" PT.Entry.absent
    (PT.get pt ~vpn:1);
  Alcotest.(check int) "clone has both" 2 (PT.count_present clone)

let test_pt_mark_cow_visible_through_shares () =
  let f = small_frames () in
  let pt = PT.create f in
  PT.set pt ~vpn:0 (entry_rw (F.alloc f));
  let clone = PT.clone_shallow pt in
  PT.mark_all_cow_clean pt;
  let e = PT.get clone ~vpn:0 in
  Alcotest.(check bool) "clone sees RO+COW" true
    (PT.Entry.cow e && not (PT.Entry.writable e))

let test_pt_release_returns_frames () =
  let f = small_frames () in
  let pt = PT.create f in
  for vpn = 0 to 99 do
    PT.set pt ~vpn (entry_rw (F.alloc f))
  done;
  let clone = PT.clone_shallow pt in
  PT.release pt;
  Alcotest.(check int) "frames kept by clone" 100 (F.used_frames f);
  PT.release clone;
  Alcotest.(check int) "all returned" 0 (F.used_frames f)

let test_pt_use_after_release_rejected () =
  let f = small_frames () in
  let pt = PT.create f in
  PT.release pt;
  Alcotest.(check bool) "get rejected" true
    (match PT.get pt ~vpn:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_pt_vpn_bounds () =
  let f = small_frames () in
  let pt = PT.create f in
  Alcotest.(check bool) "negative rejected" true
    (match PT.get pt ~vpn:(-1) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "beyond max rejected" true
    (match PT.get pt ~vpn:PT.max_vpn with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Property: an arbitrary interleaving of table operations never breaks
   frame conservation — releasing every table returns the allocator to
   zero live frames. *)
let pt_frame_conservation =
  QCheck.Test.make ~name:"clone/write/release conserve frames" ~count:60
    QCheck.(list (pair (int_range 0 3) (int_range 0 2047)))
    (fun ops ->
      let f = F.create ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 256)) () in
      let tables = ref [ PT.create f ] in
      List.iter
        (fun (op, vpn) ->
          match (op, !tables) with
          | 0, t :: _ -> PT.set t ~vpn (entry_rw (F.alloc f))
          | 1, t :: _ -> tables := PT.clone_shallow t :: !tables
          | 2, t :: (_ :: _ as rest) ->
              PT.release t;
              tables := rest
          | 3, t :: _ -> PT.mark_all_cow_clean t
          | _ -> ())
        ops;
      List.iter PT.release !tables;
      F.used_frames f = 0)

(* {1 Address space} *)

let test_as_zero_fill () =
  let f = small_frames () in
  let a = AS.create f in
  Alcotest.(check bool) "first write zero-fills" true
    (AS.touch_write a ~vpn:10 = AS.Zero_fill);
  Alcotest.(check bool) "second write no fault" true
    (AS.touch_write a ~vpn:10 = AS.No_fault);
  Alcotest.(check int) "mapped" 1 (AS.mapped_pages a);
  Alcotest.(check int) "dirty" 1 (AS.dirty_pages a)

let test_as_read_does_not_allocate () =
  let f = small_frames () in
  let a = AS.create f in
  AS.touch_read a ~vpn:50;
  Alcotest.(check int) "no allocation" 0 (AS.mapped_pages a)

let test_as_cow_isolation () =
  let f = small_frames () in
  let parent = AS.create f in
  ignore (AS.write_range parent ~vpn:0 ~pages:10);
  PT.mark_all_cow_clean (AS.table parent);
  let child = AS.of_table f (AS.table parent) in
  Alcotest.(check bool) "child write faults COW" true
    (AS.touch_write child ~vpn:3 = AS.Cow_copy);
  (* Parent mapping unchanged; child now privately owns vpn 3. *)
  let pe = PT.get (AS.table parent) ~vpn:3
  and ce = PT.get (AS.table child) ~vpn:3 in
  Alcotest.(check bool) "different frames" true
    (PT.Entry.frame pe <> PT.Entry.frame ce);
  Alcotest.(check bool) "parent still cow" true (PT.Entry.cow pe);
  Alcotest.(check bool) "child writable" true (PT.Entry.writable ce)

let test_as_write_stats () =
  let f = small_frames () in
  let parent = AS.create f in
  ignore (AS.write_range parent ~vpn:0 ~pages:8);
  PT.mark_all_cow_clean (AS.table parent);
  let child = AS.of_table f (AS.table parent) in
  let stats = AS.write_range child ~vpn:4 ~pages:8 in
  Alcotest.(check int) "cow copies" 4 stats.AS.cow_copies;
  Alcotest.(check int) "zero fills" 4 stats.AS.zero_fills;
  Alcotest.(check int) "lifetime counters" 4 (AS.lifetime_cow_copies child)

let test_as_write_bytes_spans_pages () =
  let f = small_frames () in
  let a = AS.create f in
  let stats = AS.write_bytes a ~addr:4090 ~len:10 in
  Alcotest.(check int) "two pages touched" 2 stats.AS.pages;
  let stats2 = AS.write_bytes a ~addr:0 ~len:0 in
  Alcotest.(check int) "empty write" 0 stats2.AS.pages

let test_as_dirty_tracking_resets () =
  let f = small_frames () in
  let a = AS.create f in
  ignore (AS.write_range a ~vpn:0 ~pages:5);
  Alcotest.(check int) "dirty" 5 (AS.dirty_pages a);
  AS.clear_dirty a;
  Alcotest.(check int) "clean" 0 (AS.dirty_pages a);
  ignore (AS.write_range a ~vpn:2 ~pages:1);
  Alcotest.(check int) "re-dirtied" 1 (AS.dirty_pages a)

let test_as_oom_propagates () =
  let f = F.create ~budget_bytes:(Int64.of_int (4096 * 3)) () in
  let a = AS.create f in
  Alcotest.check_raises "out of frames" F.Out_of_memory (fun () ->
      ignore (AS.write_range a ~vpn:0 ~pages:10))

(* Property: a family of children deployed from a frozen parent can write
   anywhere; releasing everything returns all frames. *)
let as_family_conservation =
  QCheck.Test.make ~name:"parent + children writes conserve frames" ~count:40
    QCheck.(list (pair (int_range 0 4) (int_range 0 255)))
    (fun writes ->
      let f = F.create ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 256)) () in
      let parent = AS.create f in
      ignore (AS.write_range parent ~vpn:0 ~pages:64);
      PT.mark_all_cow_clean (AS.table parent);
      let children = Array.init 5 (fun _ -> AS.of_table f (AS.table parent)) in
      List.iter
        (fun (child, vpn) -> ignore (AS.touch_write children.(child) ~vpn))
        writes;
      Array.iter AS.release children;
      AS.release parent;
      F.used_frames f = 0)

(* Property: the O(1) dirty/mapped counters always agree with a full
   page-table walk, across writes, clears, freezes and deploys. *)
let as_counters_match_walk =
  QCheck.Test.make ~name:"incremental counters equal slow walks" ~count:60
    QCheck.(list (pair (int_range 0 3) (int_range 0 127)))
    (fun ops ->
      let f = F.create ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 64)) () in
      let parent = AS.create f in
      ignore (AS.write_range parent ~vpn:0 ~pages:32);
      AS.clear_dirty parent;
      let space = ref parent in
      List.iter
        (fun (op, vpn) ->
          match op with
          | 0 -> ignore (AS.touch_write !space ~vpn)
          | 1 -> AS.clear_dirty !space
          | 2 -> AS.freeze !space
          | 3 ->
              AS.freeze !space;
              space := AS.of_table f (AS.table !space)
          | _ -> ())
        ops;
      AS.dirty_pages !space = AS.dirty_pages_slow !space
      && AS.mapped_pages !space = AS.mapped_pages_slow !space)

(* Property: COW from a frozen parent never mutates the parent's view. *)
let as_parent_immutable =
  QCheck.Test.make ~name:"child writes never change parent mappings" ~count:40
    QCheck.(list (int_range 0 63))
    (fun vpns ->
      let f = F.create ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 64)) () in
      let parent = AS.create f in
      ignore (AS.write_range parent ~vpn:0 ~pages:64);
      PT.mark_all_cow_clean (AS.table parent);
      let before =
        PT.fold_present (AS.table parent) ~init:[] ~f:(fun acc ~vpn e ->
            (vpn, PT.Entry.frame e) :: acc)
      in
      let child = AS.of_table f (AS.table parent) in
      List.iter (fun vpn -> ignore (AS.touch_write child ~vpn)) vpns;
      let after =
        PT.fold_present (AS.table parent) ~init:[] ~f:(fun acc ~vpn e ->
            (vpn, PT.Entry.frame e) :: acc)
      in
      before = after)

let () =
  let case name f = Alcotest.test_case name `Quick f in
  let qcase = QCheck_alcotest.to_alcotest in
  Alcotest.run "mem"
    [
      ( "frame",
        [
          case "alloc free" test_frame_alloc_free;
          case "budget enforced" test_frame_budget_enforced;
          case "reuse after free" test_frame_reuse_after_free;
          case "dead frame rejected" test_frame_dead_frame_rejected;
          case "accounting" test_frame_accounting;
          qcase frame_refcount_conservation;
        ] );
      ( "page_table",
        [
          case "entry roundtrip" test_entry_roundtrip;
          case "set get" test_pt_set_get;
          case "overwrite releases" test_pt_overwrite_releases_old_frame;
          case "clone shares leaves" test_pt_clone_shares_leaves;
          case "write privatizes leaf" test_pt_write_privatizes_leaf;
          case "mark cow visible" test_pt_mark_cow_visible_through_shares;
          case "release returns frames" test_pt_release_returns_frames;
          case "use after release" test_pt_use_after_release_rejected;
          case "vpn bounds" test_pt_vpn_bounds;
          qcase entry_roundtrip_prop;
          qcase pt_frame_conservation;
        ] );
      ( "addr_space",
        [
          case "zero fill" test_as_zero_fill;
          case "read no alloc" test_as_read_does_not_allocate;
          case "cow isolation" test_as_cow_isolation;
          case "write stats" test_as_write_stats;
          case "write bytes" test_as_write_bytes_spans_pages;
          case "dirty tracking" test_as_dirty_tracking_resets;
          case "oom propagates" test_as_oom_propagates;
          qcase as_family_conservation;
          qcase as_counters_match_walk;
          qcase as_parent_immutable;
        ] );
    ]
