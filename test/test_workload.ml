(* Statistical property battery for the workload plane: the generators'
   empirical behaviour must match their nominal parameters, and traces
   must be seed-deterministic and JSONL-roundtrippable. Randomness is
   drawn from the simulator's own splitmix64 stream (Sim.Prng), so every
   assertion is a deterministic function of the base seed;
   SEUSS_LOAD_PROP_SEED overrides it (CI rotates it). *)

let base_seed =
  match Sys.getenv_opt "SEUSS_LOAD_PROP_SEED" with
  | None -> 29L
  | Some s -> (
      match Int64.of_string_opt s with
      | Some v -> v
      | None ->
          Printf.eprintf "test_workload: malformed SEUSS_LOAD_PROP_SEED %S\n" s;
          29L)

let rng_for label =
  Sim.Prng.create (Int64.add base_seed (Int64.of_int (Hashtbl.hash label)))

(* {1 Zipf} *)

let test_zipf_validation () =
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Zipf.create: need at least one function") (fun () ->
      ignore (Workload.Zipf.create ~alpha:1.0 ~n:0));
  let z = Workload.Zipf.create ~alpha:0.0 ~n:5 in
  (* alpha 0 is uniform. *)
  for r = 0 to 4 do
    let w = Workload.Zipf.weight z r in
    if abs_float (w -. 0.2) > 1e-9 then
      Alcotest.failf "uniform weight %d = %f" r w
  done

let test_zipf_weights_normalized =
  QCheck.Test.make ~name:"zipf weights sum to 1 and rank-decrease" ~count:50
    QCheck.(pair (float_range 0.0 2.5) (int_range 1 400))
    (fun (alpha, n) ->
      let z = Workload.Zipf.create ~alpha ~n in
      let sum = ref 0.0 and ok = ref true in
      for r = 0 to n - 1 do
        let w = Workload.Zipf.weight z r in
        sum := !sum +. w;
        if r > 0 && w > Workload.Zipf.weight z (r - 1) +. 1e-12 then
          ok := false
      done;
      !ok && abs_float (!sum -. 1.0) < 1e-9)

let test_zipf_samples_in_range =
  QCheck.Test.make ~name:"zipf samples stay in [0, n)" ~count:50
    QCheck.(pair (float_range 0.0 2.0) (int_range 1 50))
    (fun (alpha, n) ->
      let z = Workload.Zipf.create ~alpha ~n in
      let rng = rng_for "zipf-range" in
      let ok = ref true in
      for _ = 1 to 500 do
        let r = Workload.Zipf.sample z rng in
        if r < 0 || r >= n then ok := false
      done;
      !ok)

(* Empirical rank-frequency slope: draw many samples, least-squares fit
   log(freq) against log(rank+1) over the well-populated head ranks; the
   slope must recover -alpha. *)
let zipf_slope ~alpha ~n ~draws rng =
  let z = Workload.Zipf.create ~alpha ~n in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Workload.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let head = min 16 n in
  let xs = ref [] in
  for r = 0 to head - 1 do
    if counts.(r) > 0 then
      xs :=
        ( log (float_of_int (r + 1)),
          log (float_of_int counts.(r) /. float_of_int draws) )
        :: !xs
  done;
  let pts = !xs in
  let m = float_of_int (List.length pts) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  ((m *. sxy) -. (sx *. sy)) /. ((m *. sxx) -. (sx *. sx))

let test_zipf_slope () =
  List.iter
    (fun alpha ->
      let rng = rng_for (Printf.sprintf "zipf-slope-%f" alpha) in
      let slope = zipf_slope ~alpha ~n:256 ~draws:200_000 rng in
      if abs_float (slope +. alpha) > 0.1 then
        Alcotest.failf "alpha %.2f: fitted slope %.4f (expected %.4f +- 0.1)"
          alpha slope (-.alpha))
    [ 0.8; 1.1; 1.5 ]

(* {1 Arrival processes} *)

(* Poisson inter-arrivals: mean 1/rate and coefficient of variation 1. *)
let test_poisson_moments () =
  let rate = 50.0 and horizon = 2_000.0 in
  let rng = rng_for "poisson-moments" in
  let times =
    Workload.Arrival.times (Workload.Arrival.poisson ~rate) rng ~horizon
  in
  let n = Array.length times in
  if n < 50_000 then Alcotest.failf "too few arrivals: %d" n;
  let gaps = Array.init (n - 1) (fun i -> times.(i + 1) -. times.(i)) in
  let m = Array.fold_left ( +. ) 0.0 gaps /. float_of_int (n - 1) in
  let var =
    Array.fold_left (fun a g -> a +. (((g -. m) ** 2.0) /. float_of_int (n - 1)))
      0.0 gaps
  in
  let cv = sqrt var /. m in
  if abs_float ((m *. rate) -. 1.0) > 0.03 then
    Alcotest.failf "mean gap %.6f, expected %.6f +- 3%%" m (1.0 /. rate);
  if abs_float (cv -. 1.0) > 0.05 then
    Alcotest.failf "CV %.4f, expected 1 +- 0.05" cv

let test_arrivals_sorted_and_bounded =
  QCheck.Test.make ~name:"arrivals are sorted and inside [0, horizon)"
    ~count:40
    QCheck.(pair (float_range 0.5 40.0) (int_range 1 3))
    (fun (rate, pick) ->
      let arrival =
        match pick with
        | 1 -> Workload.Arrival.poisson ~rate
        | 2 -> Workload.Arrival.bursty ~rate ()
        | _ -> Workload.Arrival.diurnal ~rate ()
      in
      let horizon = 200.0 in
      let rng = rng_for "sorted" in
      let times = Workload.Arrival.times arrival rng ~horizon in
      let ok = ref true in
      Array.iteri
        (fun i t ->
          if t < 0.0 || t >= horizon then ok := false;
          if i > 0 && t < times.(i - 1) then ok := false)
        times;
      !ok)

(* MMPP phase-conditional rates: arrivals attributed to a phase, divided
   by the time spent in it, recover that phase's nominal rate. *)
let test_mmpp_phase_rates () =
  let arrival = Workload.Arrival.bursty ~rate:10.0 () in
  let phases =
    match arrival with
    | Workload.Arrival.Mmpp { phases } -> phases
    | Workload.Arrival.Poisson _ -> Alcotest.fail "bursty must be MMPP"
  in
  let rng = rng_for "mmpp-rates" in
  let sim = Workload.Arrival.simulate arrival rng ~horizon:20_000.0 in
  let per_phase = Array.make (Array.length phases) 0 in
  Array.iter
    (fun (_, phase) -> per_phase.(phase) <- per_phase.(phase) + 1)
    sim.Workload.Arrival.arrivals;
  Array.iteri
    (fun i (p : Workload.Arrival.phase) ->
      let dwell = sim.Workload.Arrival.dwell_time.(i) in
      if dwell <= 0.0 then Alcotest.failf "phase %d never visited" i;
      let empirical = float_of_int per_phase.(i) /. dwell in
      if abs_float (empirical -. p.Workload.Arrival.rate) /. p.Workload.Arrival.rate > 0.1
      then
        Alcotest.failf "phase %d: empirical rate %.3f, nominal %.3f +- 10%%" i
          empirical p.Workload.Arrival.rate)
    phases;
  (* The burst phase must actually be rarer but hotter. *)
  let base = phases.(0) and burst = phases.(1) in
  Alcotest.(check bool) "burst rate is 8x base" true
    (abs_float
       ((burst.Workload.Arrival.rate /. base.Workload.Arrival.rate) -. 8.0)
    < 1e-6)

(* Diurnal arrivals over whole periods preserve the requested mean, and
   the phase rates trace the sinusoid. *)
let test_diurnal_mean_preserved () =
  let rate = 5.0 in
  let arrival = Workload.Arrival.diurnal ~rate ~period:3_600.0 () in
  Alcotest.(check bool) "nominal mean preserved" true
    (abs_float (Workload.Arrival.mean_rate arrival -. rate) < 1e-9);
  let rng = rng_for "diurnal-mean" in
  let horizon = 4.0 *. 3_600.0 in
  let times = Workload.Arrival.times arrival rng ~horizon in
  let empirical = float_of_int (Array.length times) /. horizon in
  if abs_float (empirical -. rate) /. rate > 0.05 then
    Alcotest.failf "empirical mean %.3f, requested %.3f +- 5%%" empirical rate

let test_mean_rate_bursty_preserved =
  QCheck.Test.make ~name:"bursty construction preserves the mean rate"
    ~count:100
    QCheck.(triple (float_range 0.1 50.0) (float_range 2.0 20.0)
              (float_range 0.02 0.5))
    (fun (rate, burst_ratio, duty) ->
      let a = Workload.Arrival.bursty ~rate ~burst_ratio ~duty () in
      abs_float (Workload.Arrival.mean_rate a -. rate) < 1e-6 *. rate)

(* {1 Trace determinism and codec} *)

let small_arrival = Workload.Arrival.bursty ~rate:8.0 ()

let synth seed =
  Workload.Trace.synthesize ~functions:50 ~alpha:1.1 ~arrival:small_arrival
    ~horizon:120.0 ~seed

let test_trace_seed_determinism () =
  let a = synth 5L and b = synth 5L in
  Alcotest.(check bool) "equal seeds give equal traces" true
    (Workload.Trace.equal a b);
  Alcotest.(check bool) "equal seeds give byte-identical JSONL" true
    (String.equal (Workload.Trace.to_jsonl a) (Workload.Trace.to_jsonl b))

let test_trace_seed_sensitivity () =
  let a = synth 5L in
  let distinct =
    List.for_all
      (fun s -> not (Workload.Trace.equal a (synth s)))
      [ 6L; 7L; 1234L ]
  in
  Alcotest.(check bool) "distinct seeds give distinct traces" true distinct

let test_trace_roundtrip =
  QCheck.Test.make ~name:"trace JSONL roundtrip is lossless" ~count:30
    QCheck.(
      quad (int_range 1 80) (float_range 0.0 2.0) (float_range 0.5 20.0)
        (int_range 0 10_000))
    (fun (functions, alpha, rate, seed) ->
      let t =
        Workload.Trace.synthesize ~functions ~alpha
          ~arrival:(Workload.Arrival.poisson ~rate)
          ~horizon:60.0 ~seed:(Int64.of_int seed)
      in
      let jsonl = Workload.Trace.to_jsonl t in
      match Workload.Trace.of_jsonl jsonl with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok t' ->
          Workload.Trace.equal t t'
          && String.equal jsonl (Workload.Trace.to_jsonl t'))

let test_trace_rejects_garbage () =
  List.iter
    (fun (label, s) ->
      match Workload.Trace.of_jsonl s with
      | Ok _ -> Alcotest.failf "%s decoded" label
      | Error _ -> ())
    [
      ("empty", "");
      ("not json", "hello\n");
      ( "wrong schema",
        "{\"schema\":\"bogus/9\",\"functions\":1,\"alpha\":1,\"horizon\":1,\
         \"arrival\":\"poisson\",\"rate\":1,\"seed\":\"1\",\"events\":0}\n" );
      ( "fn out of range",
        "{\"schema\":\"seuss-load-trace/1\",\"functions\":1,\"alpha\":1,\
         \"horizon\":10,\"arrival\":\"poisson\",\"rate\":1,\"seed\":\"1\",\
         \"events\":1}\n{\"at\":0.5,\"fn\":7}\n" );
      ( "event count mismatch",
        "{\"schema\":\"seuss-load-trace/1\",\"functions\":1,\"alpha\":1,\
         \"horizon\":10,\"arrival\":\"poisson\",\"rate\":1,\"seed\":\"1\",\
         \"events\":2}\n{\"at\":0.5,\"fn\":0}\n" );
    ]

let test_trace_save_load () =
  let t = synth 9L in
  let path = Filename.temp_file "seuss-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Trace.save ~path t;
      match Workload.Trace.load ~path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok t' ->
          Alcotest.(check bool) "save/load roundtrip" true
            (Workload.Trace.equal t t'))

(* Changing the function-set size must not shift arrival instants: the
   two PRNG streams are split before use. *)
let test_trace_arrivals_independent_of_functions () =
  let a =
    Workload.Trace.synthesize ~functions:10 ~alpha:1.0
      ~arrival:small_arrival ~horizon:120.0 ~seed:3L
  and b =
    Workload.Trace.synthesize ~functions:500 ~alpha:1.0
      ~arrival:small_arrival ~horizon:120.0 ~seed:3L
  in
  Alcotest.(check int) "same arrival count"
    (Array.length a.Workload.Trace.events)
    (Array.length b.Workload.Trace.events);
  Array.iteri
    (fun i (ea : Workload.Trace.event) ->
      let eb = b.Workload.Trace.events.(i) in
      if ea.Workload.Trace.at <> eb.Workload.Trace.at then
        Alcotest.failf "arrival %d moved: %.9f vs %.9f" i
          ea.Workload.Trace.at eb.Workload.Trace.at)
    a.Workload.Trace.events

(* {1 Function corpus} *)

let test_fnset_profile_split () =
  let counts = Hashtbl.create 3 in
  for i = 0 to 999 do
    let p = Workload.Fnset.profile_name (Workload.Fnset.profile_of_index i) in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  let get p = Option.value ~default:0 (Hashtbl.find_opt counts p) in
  Alcotest.(check int) "small 70%" 700 (get "small");
  Alcotest.(check int) "medium 25%" 250 (get "medium");
  Alcotest.(check int) "large 5%" 50 (get "large")

let test_fnset_sources_parse_and_scale () =
  (* Sources must be valid MiniJS, and bigger profiles must carry
     bigger ASTs (that is what makes their cold path cost more). *)
  let node_count i =
    Interp.Ast.node_count (Interp.Parser.parse (Workload.Fnset.source i))
  in
  let small = node_count 0 and medium = node_count 14 and large = node_count 19 in
  Alcotest.(check bool) "profile sizes strictly grow" true
    (small < medium && medium < large);
  Alcotest.(check bool) "ids namespaced" true
    (String.length (Workload.Fnset.fn_id 7) > 3
    && String.sub (Workload.Fnset.fn_id 7) 0 3 = "zf-")

(* {1 Open-loop replay} *)

let test_replay_open_loop () =
  (* Three arrivals 0.1 s apart, each served in 0.25 s: an open-loop
     replayer overlaps them (closed-loop would serialize), so the peak
     backlog must reach 3 and every latency must be the service time. *)
  let trace =
    {
      Workload.Trace.functions = 2;
      alpha = 0.0;
      horizon = 1.0;
      arrival = "poisson";
      rate = 3.0;
      seed = 0L;
      events =
        [|
          { Workload.Trace.at = 0.0; fn = 0 };
          { Workload.Trace.at = 0.1; fn = 1 };
          { Workload.Trace.at = 0.2; fn = 0 };
        |];
    }
  in
  let engine = Sim.Engine.create ~seed:1L () in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"replay-test" (fun () ->
      result :=
        Some
          (Workload.Replay.run
             ~invoke:(fun ~fn:_ ->
               Sim.Engine.sleep 0.25;
               Ok ())
             trace));
  Sim.Engine.run engine;
  match !result with
  | None -> Alcotest.fail "replay did not complete"
  | Some r ->
      Alcotest.(check int) "invocations" 3 r.Workload.Replay.invocations;
      Alcotest.(check int) "ok" 3 r.Workload.Replay.ok;
      Alcotest.(check int) "errors" 0 r.Workload.Replay.errors;
      Alcotest.(check int) "peak backlog overlaps all three" 3
        r.Workload.Replay.max_in_flight;
      Alcotest.(check (float 1e-9)) "makespan = last arrival + service" 0.45
        r.Workload.Replay.makespan;
      Array.iter
        (fun l ->
          if abs_float (l -. 0.25) > 1e-9 then
            Alcotest.failf "latency %.6f, expected 0.25" l)
        (Stats.Summary.samples r.Workload.Replay.latencies)

let test_replay_counts_errors () =
  let trace =
    {
      Workload.Trace.functions = 1;
      alpha = 0.0;
      horizon = 1.0;
      arrival = "poisson";
      rate = 2.0;
      seed = 0L;
      events =
        [|
          { Workload.Trace.at = 0.0; fn = 0 };
          { Workload.Trace.at = 0.5; fn = 0 };
        |];
    }
  in
  let engine = Sim.Engine.create ~seed:1L () in
  let result = ref None in
  let calls = ref 0 in
  Sim.Engine.spawn engine ~name:"replay-err" (fun () ->
      result :=
        Some
          (Workload.Replay.run
             ~invoke:(fun ~fn:_ ->
               incr calls;
               if !calls = 1 then Error "boom" else Ok ())
             trace));
  Sim.Engine.run engine;
  match !result with
  | None -> Alcotest.fail "replay did not complete"
  | Some r ->
      Alcotest.(check int) "ok" 1 r.Workload.Replay.ok;
      Alcotest.(check int) "errors counted, not propagated" 1
        r.Workload.Replay.errors

let () =
  let case name f = Alcotest.test_case name `Quick f in
  let qcase = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          case "validation and uniform limit" test_zipf_validation;
          qcase test_zipf_weights_normalized;
          qcase test_zipf_samples_in_range;
          case "empirical rank-frequency slope" test_zipf_slope;
        ] );
      ( "arrival",
        [
          case "poisson moments" test_poisson_moments;
          qcase test_arrivals_sorted_and_bounded;
          case "mmpp phase-conditional rates" test_mmpp_phase_rates;
          case "diurnal mean preserved" test_diurnal_mean_preserved;
          qcase test_mean_rate_bursty_preserved;
        ] );
      ( "trace",
        [
          case "seed determinism" test_trace_seed_determinism;
          case "seed sensitivity" test_trace_seed_sensitivity;
          qcase test_trace_roundtrip;
          case "rejects garbage" test_trace_rejects_garbage;
          case "save/load" test_trace_save_load;
          case "arrivals independent of function set"
            test_trace_arrivals_independent_of_functions;
        ] );
      ( "fnset",
        [
          case "profile split" test_fnset_profile_split;
          case "sources parse and scale" test_fnset_sources_parse_and_scale;
        ] );
      ( "replay",
        [
          case "open loop semantics" test_replay_open_loop;
          case "error counting" test_replay_counts_errors;
        ] );
    ]
