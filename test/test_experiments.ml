(* Smoke tests for the experiment harness: each table/figure module runs
   at reduced scale and must reproduce the paper's orderings. These are
   the repository's executable claims about the reproduction. *)

let test_table1_shapes () =
  let r = Experiments.Table1.run ~invocations:20 () in
  let open Experiments.Table1 in
  (* Memory: AO grows the base, shrinks the function snapshot. *)
  Alcotest.(check bool) "base grows under AO" true
    (Int64.compare r.base_ao_bytes r.base_no_ao_bytes > 0);
  Alcotest.(check bool) "fn snapshot shrinks under AO" true
    (Int64.compare r.fn_ao_bytes r.fn_no_ao_bytes < 0);
  (* Latency ordering and magnitudes. *)
  let cold = r.cold.Stats.Summary.mean
  and warm = r.warm.Stats.Summary.mean
  and hot = r.hot.Stats.Summary.mean in
  Alcotest.(check bool) "cold > warm > hot" true (cold > warm && warm > hot);
  Alcotest.(check bool) "cold ~7.5ms" true (cold > 5e-3 && cold < 11e-3);
  Alcotest.(check bool) "warm ~3.5ms" true (warm > 2e-3 && warm < 6e-3);
  Alcotest.(check bool) "hot ~0.8ms" true (hot > 0.3e-3 && hot < 1.6e-3);
  (* Footprints: cold leaves the most private pages, hot the fewest. *)
  Alcotest.(check bool) "footprint ordering" true
    (r.cold_pages > r.warm_pages && r.warm_pages > r.hot_pages);
  let render = Experiments.Table1.render r in
  Alcotest.(check bool) "renders" true (String.length render > 100)

let test_table2_ladder () =
  let r = Experiments.Table2.run ~invocations:8 () in
  let open Experiments.Table2 in
  Alcotest.(check bool) "cold ladder" true
    (r.no_ao.cold_ms > r.network_ao.cold_ms
    && r.network_ao.cold_ms > r.full_ao.cold_ms);
  Alcotest.(check bool) "warm ladder" true
    (r.no_ao.warm_ms > r.network_ao.warm_ms
    && r.network_ao.warm_ms > r.full_ao.warm_ms);
  (* Paper magnitudes within generous bands. *)
  Alcotest.(check bool) "no-AO cold near 42 ms" true
    (r.no_ao.cold_ms > 30.0 && r.no_ao.cold_ms < 55.0);
  Alcotest.(check bool) "full-AO cold near 7.5 ms" true
    (r.full_ao.cold_ms > 5.0 && r.full_ao.cold_ms < 11.0)

let test_table3_orderings () =
  (* Reduced memory budget keeps the test fast; ratios survive. *)
  let r =
    Experiments.Table3.run
      ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 3072))
      ~rate_sample:60 ()
  in
  let open Experiments.Table3 in
  Alcotest.(check bool) "density: seuss > process > docker > microvm" true
    (r.seuss.density > r.process.density
    && r.process.density > r.docker.density
    && r.docker.density > r.firecracker.density);
  Alcotest.(check bool) "seuss density dominates by >5x" true
    (r.seuss.density > 5 * r.process.density);
  Alcotest.(check bool) "rate: seuss > process > docker > microvm" true
    (r.seuss.rate > r.process.rate
    && r.process.rate > r.docker.rate
    && r.docker.rate > r.firecracker.rate);
  Alcotest.(check bool) "seuss shim-bound near 128/s" true
    (r.seuss.rate > 100.0 && r.seuss.rate < 140.0)

let test_fig4_crossover () =
  let r =
    Experiments.Fig4.run ~set_sizes:[ 64; 1024 ] ~client_threads:16 ()
  in
  let open Experiments.Fig4 in
  match (r.seuss, r.linux) with
  | [ s64; s1024 ], [ l64; l1024 ] ->
      (* Small sets: Linux ahead (shim hop); large sets: SEUSS wins big. *)
      Alcotest.(check bool) "linux ahead at 64" true
        (l64.throughput > s64.throughput);
      Alcotest.(check bool) "seuss ahead at 1024" true
        (s1024.throughput > 3.0 *. l1024.throughput);
      Alcotest.(check bool) "seuss roughly flat" true
        (s1024.throughput > 0.8 *. s64.throughput)
  | _ -> Alcotest.fail "unexpected series shape"

let test_fig5_percentiles () =
  let panels =
    Experiments.Fig5.run ~set_sizes:[ 32; 512 ] ~requests:256
      ~client_threads:16 ()
  in
  match panels with
  | [ small; big ] ->
      (* Linux p50 deteriorates by orders of magnitude across the cache
         cliff; SEUSS barely moves. *)
      let l_small = small.Experiments.Fig5.linux.Stats.Summary.p50 in
      let l_big = big.Experiments.Fig5.linux.Stats.Summary.p50 in
      let s_small = small.Experiments.Fig5.seuss.Stats.Summary.p50 in
      let s_big = big.Experiments.Fig5.seuss.Stats.Summary.p50 in
      Alcotest.(check bool) "linux collapses" true (l_big > 5.0 *. l_small);
      Alcotest.(check bool) "seuss stable" true (s_big < 2.0 *. s_small)
  | _ -> Alcotest.fail "expected two panels"

let test_burst_contrast () =
  let r =
    Experiments.Fig_burst.run ~period:8.0 ~duration:64.0 ~burst_size:24 ()
  in
  let open Experiments.Fig_burst in
  Alcotest.(check int) "seuss serves everything" 0
    (Stats.Series.failures r.seuss.background
    + Stats.Series.failures r.seuss.bursts);
  (* Same offered load on both sides. *)
  Alcotest.(check int) "same request count"
    (Stats.Series.length r.seuss.background + Stats.Series.length r.seuss.bursts)
    (Stats.Series.length r.linux.background + Stats.Series.length r.linux.bursts);
  (* SEUSS burst p99 far below Linux's. *)
  let p99 series =
    let s = Stats.Summary.create () in
    Array.iter
      (fun p -> Stats.Summary.add s p.Stats.Series.value)
      (Stats.Series.points series);
    Stats.Summary.percentile s 99.0
  in
  Alcotest.(check bool) "seuss burst p99 lower" true
    (p99 r.seuss.bursts < p99 r.linux.bursts)

let test_ablations_ordering () =
  let r = Experiments.Ablations.run ~invocations:5 () in
  let open Experiments.Ablations in
  Alcotest.(check bool) "stacks make repeat misses cheaper" true
    (r.warm_with_stacks_ms < r.miss_without_stacks_ms);
  Alcotest.(check bool) "idle cache makes repeats cheaper" true
    (r.hot_with_cache_ms < r.repeat_without_cache_ms);
  Alcotest.(check bool) "shim adds 6-10 ms" true
    (r.hot_via_shim_ms -. r.hot_direct_ms > 6.0
    && r.hot_via_shim_ms -. r.hot_direct_ms < 10.0);
  (* The specialized image boots much faster and is smaller, but cold
     starts match the general-purpose image: snapshots amortize boot. *)
  Alcotest.(check bool) "specialized boots faster" true
    (r.specialized_boot_s < 0.5 *. r.general_boot_s);
  Alcotest.(check bool) "specialized image smaller" true
    (r.specialized_base_mb < r.general_base_mb);
  Alcotest.(check bool) "cold starts equivalent" true
    (Float.abs (r.specialized_cold_ms -. r.general_cold_ms) < 1.0)

let test_auto_ao_recovers_costs () =
  let r = Experiments.Auto_ao.run ~invocations:6 () in
  Alcotest.(check int) "four components" 4
    (List.length r.Experiments.Auto_ao.components);
  (* Black-box inference must recover the modeled first-use costs. *)
  Alcotest.(check bool) "within 15%" true
    (r.Experiments.Auto_ao.max_relative_error < 0.15);
  List.iter
    (fun c ->
      Alcotest.(check bool) "positive cost" true
        (c.Experiments.Auto_ao.inferred_ms > 0.0))
    r.Experiments.Auto_ao.components

let test_fig4_deterministic () =
  (* Two in-process runs with the same seed must be structurally
     identical — the golden guarantee every CI cmp check builds on. *)
  let run () = Experiments.Fig4.run ~set_sizes:[ 64 ] ~client_threads:16 () in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "same-seed runs identical" true (r1 = r2);
  Alcotest.(check string) "rendered output identical"
    (Experiments.Fig4.render r1)
    (Experiments.Fig4.render r2)

let test_fig_reap_reduction () =
  let r = Experiments.Fig_reap.run ~functions:4 ~rounds:6 () in
  let open Experiments.Fig_reap in
  (* The PR's acceptance bar: prefaulting the recorded working set cuts
     warm-deploy fault-handling time by at least 30%. *)
  Alcotest.(check bool)
    (Printf.sprintf "reduction %.1f%% >= 30%%" r.reduction_pct)
    true
    (r.reduction_pct >= 30.0);
  (* Steady state replays entirely from the batch: demand faults gone. *)
  Alcotest.(check bool) "demand COW faults eliminated" true
    (r.on_.cow_faults < r.off.cow_faults && r.on_.cow_faults = 0);
  Alcotest.(check int) "same offered load" r.off.warm_invocations
    r.on_.warm_invocations;
  Alcotest.(check bool) "prefault batches ran" true (r.on_.prefault_batches > 0);
  Alcotest.(check int) "off arm never prefaults" 0 r.off.prefault_batches;
  (* Wall-clock latency must improve too, not just the fault accounting. *)
  Alcotest.(check bool) "warm mean latency improves" true
    (r.on_.mean_ms < r.off.mean_ms)

let test_fig_load_shapes () =
  (* Trimmed sweep: every backend produces an arm at every load point,
     SEUSS stays fast and error-free, and the report artifacts render. *)
  let r =
    Experiments.Fig_load.run ~functions:32 ~hours:0.02 ~rps:[ 2.0; 8.0 ]
      ~arrival:"poisson" ~seed:7L ()
  in
  let open Experiments.Fig_load in
  Alcotest.(check int) "two load points" 2 (List.length r.points);
  List.iter
    (fun p ->
      Alcotest.(check int) "four arms" 4 (List.length p.arms);
      Alcotest.(check bool) "offered load positive" true (p.offered_rps > 0.0);
      List.iter
        (fun a ->
          Alcotest.(check int)
            (Printf.sprintf "%s replays the whole trace" a.backend)
            p.trace_events a.invocations;
          Alcotest.(check int) "ok + errors = invocations" a.invocations
            (a.ok + a.errors);
          Alcotest.(check bool) "tails ordered" true
            (a.p50_ms <= a.p90_ms && a.p90_ms <= a.p99_ms
           && a.p99_ms <= a.p999_ms))
        p.arms;
      let arm name = List.find (fun a -> String.equal a.backend name) p.arms in
      let seuss = arm "seuss" in
      Alcotest.(check int) "seuss error-free" 0 seuss.errors;
      Alcotest.(check bool) "seuss p99 under 100 ms" true
        (seuss.p99_ms < 100.0);
      Alcotest.(check bool) "seuss beats linux at p99" true
        (seuss.p99_ms < (arm "linux").p99_ms))
    r.points;
  Alcotest.(check bool) "timeline captured" true
    (String.length r.timeline > 0);
  let rendered = render r in
  let mentions needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render mentions every backend" true
    (List.for_all mentions [ "seuss"; "linux"; "firecracker"; "process" ])

let test_fig_load_same_seed_identical () =
  let run () =
    Experiments.Fig_load.run ~functions:24 ~hours:0.01 ~rps:[ 4.0 ]
      ~arrival:"bursty" ~seed:9L ()
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "same-seed runs identical" true (r1 = r2);
  Alcotest.(check string) "JSON identical"
    (Obs.Json.to_string (Experiments.Fig_load.to_json r1))
    (Obs.Json.to_string (Experiments.Fig_load.to_json r2))

let evict_sizes =
  (* 2 MiB is below even the first member's indexed-runtime footprint,
     so that arm lives under constant eviction pressure. *)
  [ 0L; Int64.of_int (Mem.Mconfig.mib 2); Int64.of_int (Mem.Mconfig.mib 64) ]

let test_fig_evict_shapes () =
  (* Trimmed sweep: the disarmed baseline, one budget under real
     pressure, one with headroom. The armed-unbounded arm must land on
     the baseline's serving behavior exactly, and the squeezed arm must
     actually evict and pay for it in cold starts. *)
  let r =
    Experiments.Fig_evict.run ~functions:12 ~hours:0.01 ~rate:8.0
      ~sizes:evict_sizes ~seed:5L ()
  in
  let open Experiments.Fig_evict in
  Alcotest.(check int) "three arms" 3 (List.length r.arms);
  List.iter
    (fun a ->
      Alcotest.(check int)
        (a.label ^ " replays the whole trace")
        r.trace_events a.invocations;
      Alcotest.(check int) "ok + errors = invocations" a.invocations
        (a.ok + a.errors);
      Alcotest.(check int) "error-free" 0 a.errors;
      Alcotest.(check bool) "tails ordered" true
        (a.p50_ms <= a.p99_ms && a.p99_ms <= a.p999_ms))
    r.arms;
  let arm label = List.find (fun a -> String.equal a.label label) r.arms in
  let off = arm "off" and tight = arm "2m" and roomy = arm "64m" in
  Alcotest.(check bool) "baseline is disarmed" true (off.members = 0);
  (* Pressure: the tight arm evicts, loses hits, and pays at the tail. *)
  Alcotest.(check bool) "tight arm evicts" true (tight.evictions > 0);
  Alcotest.(check bool) "tight arm misses more" true
    (tight.hit_rate < roomy.hit_rate);
  Alcotest.(check bool) "misses cost latency" true
    (tight.p99_ms >= roomy.p99_ms);
  (* Headroom: no evictions, real sharing, and the same serving mix as
     the disarmed baseline. *)
  Alcotest.(check int) "roomy arm never evicts" 0 roomy.evictions;
  Alcotest.(check bool)
    (Printf.sprintf "dedup ratio %.2f > 1" roomy.dedup_ratio)
    true (roomy.dedup_ratio > 1.0);
  Alcotest.(check bool) "roomy arm stays within budget" true
    (Int64.compare roomy.peak_bytes roomy.cache_bytes <= 0);
  Alcotest.(check bool) "roomy mix = baseline mix" true (roomy.mix = off.mix);
  let rendered = render r in
  Alcotest.(check bool) "renders with curves" true
    (String.length rendered > 200)

let test_fig_evict_same_seed_identical () =
  let run () =
    Experiments.Fig_evict.run ~functions:8 ~hours:0.005 ~rate:8.0
      ~sizes:evict_sizes ~seed:9L ()
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "same-seed runs identical" true (r1 = r2);
  Alcotest.(check string) "JSON identical"
    (Obs.Json.to_string (Experiments.Fig_evict.to_json r1))
    (Obs.Json.to_string (Experiments.Fig_evict.to_json r2))

(* {1 Pool_node edge cases} *)

let pool_config ~cache_limit =
  { (Baselines.Pool_node.default_config Baselines.Pool_node.Process) with
    Baselines.Pool_node.cache_limit }

let test_pool_capacity_zero () =
  Experiments.Harness.run_sim (fun engine ->
      let env = Experiments.Harness.make_seuss_env engine in
      let node =
        Baselines.Pool_node.create
          ~config:(pool_config ~cache_limit:0)
          ~kind:Baselines.Pool_node.Process env
      in
      (match
         Baselines.Pool_node.invoke node ~fn_id:"z"
           ~action:Baselines.Backend_intf.Nop
       with
      | Error `Overloaded -> ()
      | Ok () -> Alcotest.fail "capacity 0 must refuse every invocation");
      let st = Baselines.Pool_node.stats node in
      Alcotest.(check int) "error counted" 1 st.Baselines.Pool_node.errors;
      Alcotest.(check int) "nothing created" 0 st.Baselines.Pool_node.creates;
      Alcotest.(check int) "no instances" 0
        (Baselines.Pool_node.instance_count node))

let test_pool_busy_instance_never_evicted () =
  (* Capacity 1: while the only instance is mid-request, a second
     function's arrival finds nothing evictable (the busy instance must
     survive) and is refused; after the request finishes the instance
     serves its own function warm. *)
  Experiments.Harness.run_sim (fun engine ->
      let env = Experiments.Harness.make_seuss_env engine in
      let node =
        Baselines.Pool_node.create
          ~config:(pool_config ~cache_limit:1)
          ~kind:Baselines.Pool_node.Process env
      in
      let first = ref None and second = ref None in
      Sim.Engine.spawn engine ~name:"first" (fun () ->
          first :=
            Some
              (Baselines.Pool_node.invoke node ~fn_id:"a"
                 ~action:(Baselines.Backend_intf.Io_call ("http://io-server", 0.5))));
      Sim.Engine.spawn engine ~name:"second" (fun () ->
          (* Arrives while the first request is parked in its IO call —
             past the ~0.4 s the process backend spends creating the
             instance, well before the 0.5 s call returns. *)
          Sim.Engine.sleep 0.6;
          second :=
            Some
              (Baselines.Pool_node.invoke node ~fn_id:"b"
                 ~action:Baselines.Backend_intf.Nop));
      Sim.Engine.sleep 2.0;
      (match !first with
      | Some (Ok ()) -> ()
      | _ -> Alcotest.fail "in-flight invocation must complete");
      (match !second with
      | Some (Error `Overloaded) -> ()
      | _ -> Alcotest.fail "second function must be refused, not evict a busy instance");
      Alcotest.(check int) "the busy instance survived" 1
        (Baselines.Pool_node.instance_count node);
      let st0 = Baselines.Pool_node.stats node in
      Alcotest.(check int) "no eviction of the busy instance" 0
        st0.Baselines.Pool_node.evictions;
      (match
         Baselines.Pool_node.invoke node ~fn_id:"a"
           ~action:Baselines.Backend_intf.Nop
       with
      | Ok () -> ()
      | Error `Overloaded -> Alcotest.fail "warm hit after drain must succeed");
      let st = Baselines.Pool_node.stats node in
      Alcotest.(check int) "served warm" 1 st.Baselines.Pool_node.warm_hits)

let test_pool_stale_lru_entries_not_double_freed () =
  (* A warm hit re-queues its instance, so the LRU order can hold the
     same instance twice. Evicting it once marks it dead; the stale
     second entry must be skipped, not destroyed again — creates minus
     evictions must keep matching the live instance count. *)
  Experiments.Harness.run_sim (fun engine ->
      let env = Experiments.Harness.make_seuss_env engine in
      let node =
        Baselines.Pool_node.create
          ~config:(pool_config ~cache_limit:2)
          ~kind:Baselines.Pool_node.Process env
      in
      let invoke fn_id =
        match
          Baselines.Pool_node.invoke node ~fn_id
            ~action:Baselines.Backend_intf.Nop
        with
        | Ok () -> ()
        | Error `Overloaded -> Alcotest.failf "%s refused" fn_id
      in
      invoke "a";
      invoke "a" (* warm: instance "a" now queued twice in the LRU *);
      invoke "b" (* at capacity *);
      invoke "c" (* evicts "a" once; its twin LRU entry goes stale *);
      invoke "d" (* must skip the stale "a" entry and evict "b" *);
      let st = Baselines.Pool_node.stats node in
      Alcotest.(check int) "four creates" 4 st.Baselines.Pool_node.creates;
      Alcotest.(check int) "one warm hit" 1 st.Baselines.Pool_node.warm_hits;
      Alcotest.(check int) "exactly two evictions" 2
        st.Baselines.Pool_node.evictions;
      Alcotest.(check int) "no errors" 0 st.Baselines.Pool_node.errors;
      Alcotest.(check int) "creates - evictions = live instances"
        (st.Baselines.Pool_node.creates - st.Baselines.Pool_node.evictions)
        (Baselines.Pool_node.instance_count node);
      Alcotest.(check int) "both survivors idle" 2
        (Baselines.Pool_node.idle_count node))

let test_registry_covers_experiments () =
  (* Every shipped experiment must be discoverable: present in the
     registry with a non-empty one-liner, and the load plane in
     particular must be registered. *)
  let names = List.map fst Experiments.All.registry in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names);
      match Experiments.All.doc n with
      | Some d -> Alcotest.(check bool) (n ^ " documented") true
          (String.length d > 0)
      | None -> Alcotest.fail (n ^ " has no doc"))
    [ "table1"; "fig4"; "burst"; "load"; "chaos"; "reap"; "evict" ];
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "registry names unique" (List.length names)
    (List.length sorted)

let test_report_rendering () =
  let text =
    Experiments.Report.comparison ~title:"T" ~note:"n"
      [ { Experiments.Report.label = "a"; paper = "1"; measured = "2" } ]
  in
  Alcotest.(check bool) "contains fields" true
    (String.length text > 10);
  Alcotest.(check string) "ms format" "7.5 ms" (Experiments.Report.ms 7.5e-3);
  Alcotest.(check string) "mb format" "2.0 MB"
    (Experiments.Report.mb (Int64.of_int (2 * 1024 * 1024)))

let () =
  let case name f = Alcotest.test_case name `Slow f in
  Alcotest.run "experiments"
    [
      ( "tables",
        [
          case "table1 shapes" test_table1_shapes;
          case "table2 ladder" test_table2_ladder;
          case "table3 orderings" test_table3_orderings;
        ] );
      ( "figures",
        [
          case "fig4 crossover" test_fig4_crossover;
          case "fig5 percentiles" test_fig5_percentiles;
          case "burst contrast" test_burst_contrast;
          case "fig4 deterministic" test_fig4_deterministic;
          case "fig_reap reduction" test_fig_reap_reduction;
          case "fig_load shapes" test_fig_load_shapes;
          case "fig_load same-seed identical" test_fig_load_same_seed_identical;
          case "fig_evict shapes" test_fig_evict_shapes;
          case "fig_evict same-seed identical" test_fig_evict_same_seed_identical;
        ] );
      ( "pool-node",
        [
          case "capacity 0 refuses" test_pool_capacity_zero;
          case "busy instance never evicted" test_pool_busy_instance_never_evicted;
          case "stale LRU entries not double-freed"
            test_pool_stale_lru_entries_not_double_freed;
        ] );
      ( "registry",
        [ case "covers experiments" test_registry_covers_experiments ] );
      ( "misc",
        [
          case "ablations ordering" test_ablations_ordering;
          case "auto-ao recovers costs" test_auto_ao_recovers_costs;
          case "report rendering" test_report_rendering;
        ] );
    ]
