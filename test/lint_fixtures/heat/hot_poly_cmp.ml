(* Fixture: polymorphic comparison inside hot bindings — a bare
   [compare], [=] against a structured operand, and [min]. *)

(* seussheat: hot — fixture hot root *)
let worst a b = if compare a b < 0 then b else a

(* seussheat: hot — fixture hot root *)
let is_origin p = p = "origin"

(* seussheat: hot — fixture hot root *)
let clamp v = min v 100
