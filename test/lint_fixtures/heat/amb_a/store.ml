(* Fixture: one of two same-basename modules — suffix-2 resolution
   conflates this [get] with amb_b's. *)

let get n = n + 1
