(* Fixture: the other same-basename module. *)

let get n = n * 2
