(* Fixture: justified seussheat markers leave the file clean — a range
   marker silencing one site in a hot binding, and a binding-level cold
   marker pruning an init-time value from the hot set. *)

(* seussheat: hot — fixture hot root *)
let emit n =
  (* seussheat: cold — fixture: the pair is the API result *)
  let pair = (n, n) in
  fst pair

(* seussheat: cold — fixture: built once at module init *)
let table = Hashtbl.create 16

(* seussheat: hot — fixture hot root *)
let lookup k = Hashtbl.find table k
