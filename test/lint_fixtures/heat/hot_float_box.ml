(* Fixture: a float-arithmetic result stored into a record field. *)

type acc = { mutable sum : float; mutable count : int }

(* seussheat: hot — fixture hot root *)
let bump a v = a.sum <- a.sum +. v
