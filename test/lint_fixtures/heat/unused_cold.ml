(* Fixture: dangling markers are dead weight — a cold marker covering
   nothing and a hot marker covering no binding. *)

(* seussheat: cold — fixture: covers nothing *)

let f x = x + 1

(* seussheat: hot — fixture: covers nothing *)

let g x = x + 2
