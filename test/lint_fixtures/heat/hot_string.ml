(* Fixture: string building inside a hot binding. *)

(* seussheat: hot — fixture hot root *)
let label n = "event#" ^ string_of_int n
