(* Fixture: a closure allocated inside a hot binding. *)

(* seussheat: hot — fixture hot root *)
let spin xs = List.iter (fun x -> ignore x) xs
