(* Fixture: heap construction inside a hot binding — a tuple, a ref
   cell and a known-allocating stdlib call. *)

(* seussheat: hot — fixture hot root *)
let build n =
  let pair = (n, n) in
  let cell = ref n in
  ignore pair;
  ignore cell;
  Array.make n 0
