(* Fixture: a partial application of a tree-defined function inside a
   hot binding allocates a closure per call. *)

let add3 a b c = a + b + c

(* seussheat: hot — fixture hot root *)
let curry n = ignore (add3 n 1)
