(* Fixture: a hot reference through a suffix-2 key defined in two
   files — surfaced as ambiguous-resolve, never silently conflated. *)

(* seussheat: hot — fixture hot root *)
let drive n = Store.get n
