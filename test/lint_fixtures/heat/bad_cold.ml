(* Fixture: markers without a reason or with an unknown verb are
   rejected by the bad-allow meta-rule. *)

(* seussheat: cold *)
let f x = x + 1

(* seussheat: freeze — not a verb this pass knows *)
let g x = x + 2
