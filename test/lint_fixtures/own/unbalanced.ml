(* Fixture: branch arms that disagree about the booted UC — the then
   arm destroys it, the implicit else leaves it owned. *)

let maybe_drop env image ok =
  let uc = Uc.boot env image in
  if ok then Uc.destroy uc
