(* Fixture: a liveness-requiring operation on a UC already destroyed on
   this path. *)

let poke env image =
  let uc = Uc.boot env image in
  Uc.destroy uc;
  Uc.resume uc
