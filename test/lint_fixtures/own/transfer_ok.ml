(* Fixture: ownership that demonstrably moves leaves the file clean —
   a marker-justified escape, a marker-justified callback hand-off, and
   an interprocedural transfer to a callee that releases. *)

let pin_for_caller snap =
  (* seussown: transfer — fixture: the caller must decref *)
  Snapshot.addref snap;
  snap

let hand_off env image register =
  (* seussown: transfer — fixture: the registry owns the UC afterwards *)
  let uc = Uc.boot env image in
  register uc

let finish uc = Uc.destroy uc

let lifecycle env image =
  let uc = Uc.boot env image in
  finish uc
