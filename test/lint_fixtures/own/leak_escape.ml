(* Fixture: an acquire that no reachable path releases — neither this
   binding nor anything its callee cone reaches drops the reference. *)

let pin snap =
  Snapshot.addref snap;
  snap
