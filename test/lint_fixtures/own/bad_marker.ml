(* Fixture: markers without a reason or with an unknown verb are
   rejected by the bad-allow meta-rule. *)

(* seussown: transfer *)
let f x = x + 1

(* seussown: lend — not a verb this pass knows *)
let g x = x + 2
