(* Fixture: a transfer marker that clears no acquire and silences
   nothing is dead weight. *)

(* seussown: transfer — fixture: covers nothing *)
let f x = x + 1
