(* Fixture: the same UC destroyed twice on one path. *)

let cleanup env image =
  let uc = Uc.boot env image in
  Uc.destroy uc;
  Uc.destroy uc
