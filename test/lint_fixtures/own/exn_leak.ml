(* Fixture: the failure arm raises while the booted UC is still owned —
   the success arm's destroy keeps the escape layer quiet, so only the
   exception path leaks. *)

let boot_once env image =
  let uc = Uc.boot env image in
  if Uc.connect uc then Uc.destroy uc else failwith "no connection"
