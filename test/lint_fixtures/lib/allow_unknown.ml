(* Fixture: allow comment naming a rule that does not exist. *)

(* seusslint: allow no-such-rule — this id is not in the catalogue *)
let id x = x
