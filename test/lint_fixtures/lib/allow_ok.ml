(* Fixture: a justified suppression — must lint clean. *)
type r = { mutable n : int }

(* seusslint: allow physical-eq — fixture exercising suppression *)
let same a b = a == b

let also_same (a : r) b = a == b (* seusslint: allow physical-eq — inline form *)
