(* Fixture: physical identity on records. *)
type r = { mutable n : int }

let same a b = a == b
let differ a b = a != b && a.n = b.n
