(* Fixture: draws from the ambient global PRNG. *)
let roll () = Random.int 6
