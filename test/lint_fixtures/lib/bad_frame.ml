(* Fixture: a frame acquisition outside the audited site list. *)
let grab frames = Frame.alloc frames
let keep frames f = Frame.incref frames f
let drop frames f = Frame.decref frames f
