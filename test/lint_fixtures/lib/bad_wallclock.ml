(* Fixture: reads the host clock from simulated code. *)
let stamp () = Unix.gettimeofday ()
let cpu () = Sys.time ()
