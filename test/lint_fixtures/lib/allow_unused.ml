(* Fixture: allowance that suppresses nothing. *)

(* seusslint: allow hashtbl-order — nothing here iterates a table *)
let id x = x
