(* Fixture: raw bucket-order iteration escaping into a result. *)
let dump tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
let walk tbl f = Hashtbl.iter f tbl
