(* Fixture: stdout writes from library code. *)
let shout () = print_endline "hello"
let tell n = Printf.printf "n=%d\n" n
