(* Fixture: an acquire with no release on any path out of the
   binding — must trip unreleased-acquire. *)

let gate = Sim.Semaphore.create 1 (* seussdead: lock fixture.gate *)

let enter () =
  Sim.Semaphore.acquire gate;
  42
