(* Fixture: ABBA acquisition order — the acquire-while-holding graph
   has the cycle fixture.a -> fixture.b -> fixture.a. *)

let a = Sim.Semaphore.create 1 (* seussdead: lock fixture.a *)

let b = Sim.Semaphore.create 1 (* seussdead: lock fixture.b *)

let forward f =
  Sim.Semaphore.with_permit a (fun () ->
      Sim.Semaphore.with_permit b (fun () -> f ()))

let backward f =
  Sim.Semaphore.with_permit b (fun () ->
      Sim.Semaphore.with_permit a (fun () -> f ()))
