(* Fixture: a justified seussdead suppression — must lint clean. *)

let gate = Sim.Semaphore.create 1 (* seussdead: lock fixture.allowok *)

(* seussdead: allow unreleased-acquire — ownership transfers to the consumer *)
let hand_off () = Sim.Semaphore.acquire gate
