(* Fixture: may-block calls reachable from atomic contexts — every
   region here must trip block-in-handler. *)

let lock = Sim.Semaphore.create 1 (* seussdead: lock fixture.handler *)

(* Blocks transitively: with_permit suspends when the permit is taken. *)
let slow_compare a b =
  Sim.Semaphore.with_permit lock (fun () -> compare a b)

(* A comparator runs inside Heap.create's handler — must not block. *)
let heap () = Sim.Heap.create ~cmp:slow_compare ()

(* A fault hook literal that sleeps — blocks directly. *)
let hook space =
  Mem.Addr_space.set_fault_hook space (fun _ -> Sim.Engine.sleep 1e-6)

(* seussdead: atomic runs from the crash-unwind path *)
let drain_on_crash ch = ignore (Sim.Channel.recv ch)
