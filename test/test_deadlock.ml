(* Wait-for-graph deadlock detector coverage: the classic toys are
   caught with actionable provenance, daemons are exempt unless they sit
   on a cycle, the unarmed engine still counts stuck waiters, and the
   shipped experiments run clean (and byte-identically — CI checks that
   half) under SEUSS_DEADLOCK=1. *)

let with_deadlock_env on f =
  (* "" reads as unset (Unix offers no unsetenv). *)
  Unix.putenv Sim.Engine.deadlock_env_var (if on then "1" else "");
  Fun.protect
    ~finally:(fun () -> Unix.putenv Sim.Engine.deadlock_env_var "")
    f

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* {1 The ABBA toy} *)

let abba () =
  let engine = Sim.Engine.create ~seed:3L ~deadlock:true () in
  let a = Sim.Semaphore.create 1 and b = Sim.Semaphore.create 1 in
  let reported = ref [] in
  Sim.Engine.add_deadlock_reporter engine (fun s -> reported := s :: !reported);
  Sim.Engine.spawn engine ~name:"forward" (fun () ->
      Sim.Semaphore.acquire a;
      Sim.Engine.sleep 1.0;
      Sim.Semaphore.acquire b);
  Sim.Engine.spawn engine ~name:"backward" (fun () ->
      Sim.Semaphore.acquire b;
      Sim.Engine.sleep 1.0;
      Sim.Semaphore.acquire a);
  Sim.Engine.run engine;
  (engine, List.rev !reported)

let check_abba_detected () =
  let engine, reported = abba () in
  Alcotest.(check int) "both processes stuck" 2
    (Sim.Engine.stuck_waiters engine);
  let stranded = Sim.Engine.stranded_waiters engine in
  Alcotest.(check int) "both stranded" 2 (List.length stranded);
  Alcotest.(check int) "reporter fired per stranded process" 2
    (List.length reported);
  List.iter
    (fun (s : Sim.Engine.stranded) ->
      Alcotest.(check bool) (s.Sim.Engine.proc ^ " on the wait cycle") true
        s.Sim.Engine.in_cycle;
      Alcotest.(check bool) (s.Sim.Engine.proc ^ " names its holders") true
        (s.Sim.Engine.holders <> []);
      Alcotest.(check bool) (s.Sim.Engine.proc ^ " resource is a semaphore")
        true
        (starts_with ~prefix:"semaphore#" s.Sim.Engine.resource))
    stranded;
  Alcotest.(check (list string))
    "provenance names both spawn sites" [ "backward"; "forward" ]
    (List.sort String.compare
       (List.map (fun s -> s.Sim.Engine.proc) stranded))

(* {1 The lost wakeup} *)

let check_lost_wakeup () =
  let engine = Sim.Engine.create ~seed:3L ~deadlock:true () in
  let ready = Sim.Ivar.create () in
  Sim.Engine.spawn engine ~name:"reader" (fun () ->
      (* Nobody ever fills [ready]. *)
      Sim.Ivar.read ready);
  Sim.Engine.run engine;
  Alcotest.(check int) "one stuck waiter" 1 (Sim.Engine.stuck_waiters engine);
  match Sim.Engine.stranded_waiters engine with
  | [ s ] ->
      Alcotest.(check string) "spawn-site provenance" "reader"
        s.Sim.Engine.proc;
      Alcotest.(check bool) "waiting on the ivar" true
        (starts_with ~prefix:"ivar#" s.Sim.Engine.resource);
      Alcotest.(check bool) "not a cycle, just forgotten" false
        s.Sim.Engine.in_cycle;
      Alcotest.(check (list int)) "an ivar has no holders" []
        s.Sim.Engine.holders;
      Alcotest.(check bool) "spawned before it parked" true
        (s.Sim.Engine.spawned_at <= s.Sim.Engine.waiting_since)
  | ss -> Alcotest.failf "expected exactly one stranded waiter, got %d"
            (List.length ss)

(* {1 Daemon exemption} *)

let check_daemon_exempt () =
  let engine = Sim.Engine.create ~seed:3L ~deadlock:true () in
  let ch = Sim.Channel.create () in
  Sim.Engine.spawn engine ~name:"accept-loop" ~daemon:true (fun () ->
      ignore (Sim.Channel.recv ch));
  Sim.Engine.run engine;
  Alcotest.(check int) "daemons are not stuck waiters" 0
    (Sim.Engine.stuck_waiters engine);
  Alcotest.(check int) "daemons are not stranded" 0
    (List.length (Sim.Engine.stranded_waiters engine))

let check_daemon_on_cycle_reported () =
  (* A daemon that participates in an ABBA cycle loses its exemption:
     the cycle starves the non-daemon half of the pair. *)
  let engine = Sim.Engine.create ~seed:3L ~deadlock:true () in
  let a = Sim.Semaphore.create 1 and b = Sim.Semaphore.create 1 in
  Sim.Engine.spawn engine ~name:"fg" (fun () ->
      Sim.Semaphore.acquire a;
      Sim.Engine.sleep 1.0;
      Sim.Semaphore.acquire b);
  Sim.Engine.spawn engine ~name:"bg" ~daemon:true (fun () ->
      Sim.Semaphore.acquire b;
      Sim.Engine.sleep 1.0;
      Sim.Semaphore.acquire a);
  Sim.Engine.run engine;
  Alcotest.(check int) "only the non-daemon counts as stuck" 1
    (Sim.Engine.stuck_waiters engine);
  Alcotest.(check (list string))
    "but the report includes the daemon on the cycle" [ "bg"; "fg" ]
    (List.sort String.compare
       (List.map
          (fun (s : Sim.Engine.stranded) -> s.Sim.Engine.proc)
          (Sim.Engine.stranded_waiters engine)))

(* {1 Unarmed behaviour} *)

let check_unarmed_still_counts () =
  (* Run under a cleared SEUSS_DEADLOCK so the CI sanitizer matrix
     (which exports the variable for the whole binary) cannot arm
     Engine.create here. *)
  with_deadlock_env false (fun () ->
      let engine = Sim.Engine.create ~seed:3L () in
      Alcotest.(check bool) "detector off by default" false
        (Sim.Engine.deadlock_armed engine);
      let ready = Sim.Ivar.create () in
      Sim.Engine.spawn engine ~name:"reader" (fun () -> Sim.Ivar.read ready);
      Sim.Engine.run engine;
      Alcotest.(check int) "stuck counter works detector-off" 1
        (Sim.Engine.stuck_waiters engine);
      Alcotest.(check int) "but no wait-for graph was kept" 0
        (List.length (Sim.Engine.stranded_waiters engine)))

let check_env_arms () =
  with_deadlock_env true (fun () ->
      let engine = Sim.Engine.create ~seed:3L () in
      Alcotest.(check bool) "SEUSS_DEADLOCK=1 arms Engine.create" true
        (Sim.Engine.deadlock_armed engine))

(* {1 The San_deadlock event} *)

let check_event_roundtrip () =
  let e =
    Obs.Event.San_deadlock
      {
        resource = "semaphore#1";
        proc = "forward";
        pid = 2;
        spawned_at = 0.0;
        waiting_since = 1.0;
        in_cycle = true;
      }
  in
  match Obs.Event.of_json (Obs.Event.to_json ~time:2.5 e) with
  | Ok (2.5, e') ->
      Alcotest.(check bool) "payload survives the roundtrip" true (e = e')
  | _ -> Alcotest.fail "San_deadlock did not roundtrip through JSON"

(* {1 Shipped experiments under SEUSS_DEADLOCK=1} *)

let check_experiments_clean () =
  with_deadlock_env true (fun () ->
      let check_run name run =
        ignore (run ());
        Alcotest.(check int) (name ^ ": no stuck waiters") 0
          (Experiments.Harness.last_stuck_waiters ());
        Alcotest.(check int) (name ^ ": no stranded report") 0
          (List.length (Experiments.Harness.last_stranded_waiters ()))
      in
      check_run "fig4" (fun () ->
          Experiments.Fig4.run ~set_sizes:[ 16 ] ~client_threads:8 ~seed:7L ());
      check_run "chaos" (fun () ->
          Experiments.Fig_chaos.run ~nodes:2 ~functions:5 ~calls:20
            ~rates:[ 0.0; 0.05 ] ~seed:7L ());
      check_run "reap" (fun () ->
          Experiments.Fig_reap.run ~functions:4 ~rounds:5 ~seed:7L ()))

let check_quiescence_counted_unarmed () =
  (* The counter is not gated on the detector: a detector-off run still
     proves its quiescence was genuine, closing the silent-quiescence
     hole where a stuck experiment looked identical to a finished one. *)
  with_deadlock_env false (fun () ->
      ignore (Experiments.Fig4.run ~set_sizes:[ 16 ] ~client_threads:8 ~seed:7L ());
      Alcotest.(check int) "fig4 unarmed: no stuck waiters" 0
        (Experiments.Harness.last_stuck_waiters ()))

let () =
  Alcotest.run "deadlock"
    [
      ( "toys",
        [
          Alcotest.test_case "ABBA cycle detected" `Quick check_abba_detected;
          Alcotest.test_case "lost wakeup reported" `Quick check_lost_wakeup;
        ] );
      ( "daemons",
        [
          Alcotest.test_case "parked daemon exempt" `Quick check_daemon_exempt;
          Alcotest.test_case "daemon on a cycle reported" `Quick
            check_daemon_on_cycle_reported;
        ] );
      ( "arming",
        [
          Alcotest.test_case "unarmed engine still counts" `Quick
            check_unarmed_still_counts;
          Alcotest.test_case "SEUSS_DEADLOCK arms create" `Quick check_env_arms;
        ] );
      ( "events",
        [
          Alcotest.test_case "San_deadlock JSON roundtrip" `Quick
            check_event_roundtrip;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "shipped experiments are deadlock-clean" `Quick
            check_experiments_clean;
          Alcotest.test_case "quiescence counted detector-off" `Quick
            check_quiescence_counted_unarmed;
        ] );
    ]
