(* seusslint coverage: every rule fires on its known-bad fixture, the
   allow machinery suppresses/complains correctly, and the shipped tree
   itself lints clean. *)

let fixture name = Filename.concat "lint_fixtures/lib" name

(* Fixtures pose as lib/ sources so lib-only rules apply to them. *)
let check name = Lint.Check.check_file ~rel:("lib/" ^ name) (fixture name)

let rules_hit vs =
  List.sort_uniq String.compare (List.map (fun v -> v.Lint.Check.rule) vs)

let check_fires () =
  let cases =
    [
      ("bad_random.ml", "bare-random", 1);
      ("bad_wallclock.ml", "wallclock", 2);
      ("bad_hashtbl.ml", "hashtbl-order", 2);
      ("bad_physeq.ml", "physical-eq", 2);
      ("bad_print.ml", "stdout-print", 2);
      ("bad_frame.ml", "frame-site", 3);
    ]
  in
  List.iter
    (fun (file, rule, expected) ->
      let vs = check file in
      Alcotest.(check (list string)) (file ^ " rule") [ rule ] (rules_hit vs);
      Alcotest.(check int) (file ^ " count") expected (List.length vs))
    cases

let check_no_parse_errors () =
  (* The fixtures must be valid OCaml — a parse-error violation would
     silently satisfy the nonzero-exit expectation for the wrong reason. *)
  List.iter
    (fun file ->
      let vs = check file in
      List.iter
        (fun v ->
          if String.equal v.Lint.Check.rule Lint.Rules.parse_error then
            Alcotest.failf "%s failed to parse: %s" file v.Lint.Check.message)
        vs)
    (Array.to_list (Sys.readdir "lint_fixtures/lib"))

let check_allow_suppresses () =
  Alcotest.(check (list string)) "allow_ok clean" [] (rules_hit (check "allow_ok.ml"))

let check_allow_unknown () =
  Alcotest.(check (list string))
    "unknown rule id reported" [ Lint.Rules.bad_allow ]
    (rules_hit (check "allow_unknown.ml"))

let check_allow_unused () =
  Alcotest.(check (list string))
    "dead allowance reported" [ Lint.Rules.unused_allow ]
    (rules_hit (check "allow_unused.ml"))

let check_positions () =
  match check "bad_random.ml" with
  | [ v ] ->
      Alcotest.(check string) "file" "lib/bad_random.ml" v.Lint.Check.file;
      Alcotest.(check int) "line" 2 v.Lint.Check.line
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let check_strip_prefix_tree () =
  (* Mirror CI's "Fixtures still fail" step: a tree run over the fixture
     root with the prefix stripped must classify files as lib/, fire
     every lib-only rule, and leave the clean allow_ok fixture clean. *)
  let vs =
    Lint.Check.check_tree ~strip_prefix:"lint_fixtures" [ "lint_fixtures" ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (v.Lint.Check.file ^ " reported lib-relative")
        true
        (String.length v.Lint.Check.file >= 4
        && String.equal (String.sub v.Lint.Check.file 0 4) "lib/"))
    vs;
  let rules = rules_hit vs in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " fires in the fixture tree") true
        (List.mem r rules))
    [
      "bare-random"; "wallclock"; "hashtbl-order"; "physical-eq";
      "stdout-print"; "frame-site";
    ];
  Alcotest.(check bool) "allow_ok stays clean" false
    (List.exists
       (fun v -> String.equal v.Lint.Check.file "lib/allow_ok.ml")
       vs)

let check_deadlock_fixture_tree () =
  (* Mirror CI's "Deadlock fixtures still fail" step: each fixture file
     trips exactly its rule family, with the planted counts, and the
     seussdead allow fixture stays clean. *)
  let vs =
    Lint.Deadlock.check_tree ~strip_prefix:"lint_fixtures"
      [ "lint_fixtures/deadlock" ]
  in
  let in_file f =
    List.filter (fun v -> String.equal v.Lint.Check.file f) vs
  in
  List.iter
    (fun (file, rule, expected) ->
      let hits = in_file ("deadlock/" ^ file) in
      Alcotest.(check (list string)) (file ^ " rule") [ rule ] (rules_hit hits);
      Alcotest.(check int) (file ^ " count") expected (List.length hits))
    [
      ("handler_blocks.ml", "block-in-handler", 3);
      ("lock_cycle.ml", "lock-order", 2);
      ("leaked_acquire.ml", "unreleased-acquire", 1);
    ];
  Alcotest.(check (list string)) "allow_ok clean under seussdead" []
    (rules_hit (in_file "deadlock/allow_ok.ml"));
  (* The base/heat fixtures must not confuse the deadlock pass — except
     for the heat ambiguity fixture, whose suffix-2 collision the
     deadlock pass also surfaces (at every reference site, hot or not). *)
  let whole =
    Lint.Deadlock.check_tree ~strip_prefix:"lint_fixtures" [ "lint_fixtures" ]
  in
  Alcotest.(check int) "whole fixture tree: planted hits + the collision" 7
    (List.length whole);
  Alcotest.(check (list string))
    "the one extra is the suffix-2 collision"
    [ Lint.Rules.ambiguous_resolve ]
    (rules_hit
       (List.filter
          (fun v -> String.starts_with ~prefix:"heat/" v.Lint.Check.file)
          whole));
  Alcotest.(check bool) "base pass ignores deadlock/heat fixtures" false
    (List.exists
       (fun v ->
         String.starts_with ~prefix:"deadlock/" v.Lint.Check.file
         || String.starts_with ~prefix:"heat/" v.Lint.Check.file)
       (Lint.Check.check_tree ~strip_prefix:"lint_fixtures"
          [ "lint_fixtures" ]))

let check_heat_fixture_tree () =
  (* Mirror CI's "Heat fixtures still fail" step: every heat rule fires
     on its fixture with the planted count, the marker meta-rules fire,
     the ambiguity fixture surfaces its collision, and the justified
     cold markers leave their file clean. *)
  let vs =
    Lint.Heat.check_tree ~strip_prefix:"lint_fixtures"
      [ "lint_fixtures/heat" ]
  in
  let in_file f =
    List.filter (fun v -> String.equal v.Lint.Check.file f) vs
  in
  List.iter
    (fun (file, rule, expected) ->
      let hits = in_file ("heat/" ^ file) in
      Alcotest.(check (list string)) (file ^ " rule") [ rule ] (rules_hit hits);
      Alcotest.(check int) (file ^ " count") expected (List.length hits))
    [
      ("hot_closure.ml", "heat-closure", 1);
      ("hot_alloc.ml", "heat-alloc", 3);
      ("hot_string.ml", "heat-string", 2);
      ("hot_float_box.ml", "heat-float-box", 1);
      ("hot_poly_cmp.ml", "heat-poly-cmp", 3);
      ("hot_partial.ml", "heat-partial-apply", 1);
      ("bad_cold.ml", Lint.Rules.bad_allow, 2);
      ("unused_cold.ml", Lint.Rules.unused_allow, 2);
      ("amb_use.ml", Lint.Rules.ambiguous_resolve, 1);
    ];
  Alcotest.(check (list string)) "cold_ok clean under seussheat" []
    (rules_hit (in_file "heat/cold_ok.ml"));
  Alcotest.(check int) "whole heat fixture tree: only the planted hits" 16
    (List.length vs);
  (* Every violation inside a hot binding must carry its root-to-site
     chain — the report doubles as the hotness proof. *)
  List.iter
    (fun v ->
      if String.starts_with ~prefix:"heat-" v.Lint.Check.rule then
        Alcotest.(check bool)
          (v.Lint.Check.rule ^ " message carries a hot chain") true
          (let msg = v.Lint.Check.message in
           let rec has i =
             i + 10 <= String.length msg
             && (String.equal (String.sub msg i 10) "hot path (" || has (i + 1))
           in
           has 0))
    vs;
  (* Cross-pass isolation: the heat pass sees nothing in the base and
     deadlock fixtures (their markers are not seussheat's), and the heat
     markers are invisible to the other two scanners. *)
  Alcotest.(check int) "heat pass ignores the base/deadlock fixtures" 0
    (List.length
       (Lint.Heat.check_tree ~strip_prefix:"lint_fixtures"
          [ "lint_fixtures/lib"; "lint_fixtures/deadlock" ]))

let check_own_fixture_tree () =
  (* Mirror CI's "Own fixtures still fail" step: every ownership rule
     fires on its fixture with the planted count, the marker meta-rules
     fire, and the justified-transfer fixture stays clean. *)
  let vs =
    Lint.Own.check_tree ~strip_prefix:"lint_fixtures"
      [ "lint_fixtures/own" ]
  in
  let in_file f =
    List.filter (fun v -> String.equal v.Lint.Check.file f) vs
  in
  List.iter
    (fun (file, rule, expected) ->
      let hits = in_file ("own/" ^ file) in
      Alcotest.(check (list string)) (file ^ " rule") [ rule ] (rules_hit hits);
      Alcotest.(check int) (file ^ " count") expected (List.length hits))
    [
      ("leak_escape.ml", "own-escape", 1);
      ("exn_leak.ml", "own-exn-leak", 1);
      ("double_release.ml", "own-double-release", 1);
      ("use_after_destroy.ml", "own-use-after-destroy", 1);
      ("unbalanced.ml", "own-unbalanced", 1);
      ("bad_marker.ml", Lint.Rules.bad_allow, 2);
      ("unused_marker.ml", Lint.Rules.unused_allow, 1);
    ];
  Alcotest.(check (list string)) "transfer_ok clean under seussown" []
    (rules_hit (in_file "own/transfer_ok.ml"));
  Alcotest.(check int) "whole own fixture tree: only the planted hits" 8
    (List.length vs);
  (* Every ownership finding must carry its root-to-site chain — the
     report doubles as the ownership-flow proof. *)
  List.iter
    (fun v ->
      if String.starts_with ~prefix:"own-" v.Lint.Check.rule then
        Alcotest.(check bool)
          (v.Lint.Check.rule ^ " message carries an ownership chain") true
          (let msg = v.Lint.Check.message in
           let rec has i =
             i + 4 <= String.length msg
             && (String.equal (String.sub msg i 4) " -> " || has (i + 1))
           in
           has 0))
    vs;
  (* Cross-pass isolation: the own fixtures are invisible to the other
     three passes (their markers are not seussown's and vice versa),
     and the own pass sees nothing in the deadlock fixtures. *)
  Alcotest.(check int) "base pass ignores the own fixtures" 0
    (List.length
       (List.filter
          (fun v -> String.starts_with ~prefix:"own/" v.Lint.Check.file)
          (Lint.Check.check_tree ~strip_prefix:"lint_fixtures"
             [ "lint_fixtures" ])));
  Alcotest.(check int) "deadlock pass ignores the own fixtures" 0
    (List.length
       (Lint.Deadlock.check_tree ~strip_prefix:"lint_fixtures"
          [ "lint_fixtures/own" ]));
  Alcotest.(check int) "heat pass ignores the own fixtures" 0
    (List.length
       (Lint.Heat.check_tree ~strip_prefix:"lint_fixtures"
          [ "lint_fixtures/own" ]));
  Alcotest.(check int) "own pass ignores the deadlock fixtures" 0
    (List.length
       (Lint.Own.check_tree ~strip_prefix:"lint_fixtures"
          [ "lint_fixtures/deadlock" ]))

let check_pass_all_shared_parse () =
  (* --pass all must equal the union of the four passes over the same
     tree, deduplicated: the three interprocedural passes all surface
     the same suffix-2 collision, which must be reported once. *)
  let sources =
    Lint.Check.load_tree ~strip_prefix:"lint_fixtures" [ "lint_fixtures" ]
  in
  let base = Lint.Check.check_sources sources in
  let dl = Lint.Deadlock.check_sources sources in
  let heat = Lint.Heat.check_sources sources in
  let own = Lint.Own.check_sources sources in
  let merged =
    List.sort_uniq Lint.Check.compare_violation (base @ dl @ heat @ own)
  in
  Alcotest.(check int) "dedup removes the triply-reported collision"
    (List.length base + List.length dl + List.length heat + List.length own
   - 2)
    (List.length merged)

let check_clean_tree () =
  (* The shipped sources (copied into the build sandbox as our library
     deps) must lint clean — the same gate CI applies via seusslint. *)
  let roots = List.filter Sys.file_exists [ "../lib"; "../bin" ] in
  if roots = [] then ()
  else
    let vs = Lint.Check.check_tree roots in
    List.iter
      (fun v ->
        Printf.eprintf "unexpected: %s:%d [%s] %s\n" v.Lint.Check.file
          v.Lint.Check.line v.Lint.Check.rule v.Lint.Check.message)
      vs;
    Alcotest.(check int) "violations in shipped tree" 0 (List.length vs)

let check_clean_tree_deadlock () =
  (* The deadlock pass must also come back clean on the shipped tree:
     every Semaphore.create carries a lock class, the class graph is
     acyclic, and nothing reachable from an atomic context may block. *)
  let roots = List.filter Sys.file_exists [ "../lib"; "../bin" ] in
  if roots = [] then ()
  else
    let vs = Lint.Deadlock.check_tree roots in
    List.iter
      (fun v ->
        Printf.eprintf "unexpected: %s:%d [%s] %s\n" v.Lint.Check.file
          v.Lint.Check.line v.Lint.Check.rule v.Lint.Check.message)
      vs;
    Alcotest.(check int) "deadlock violations in shipped tree" 0
      (List.length vs)

let check_clean_tree_heat () =
  (* The heat pass must come back clean on the shipped tree: every
     allocation reachable from the registered hot roots is either
     rewritten away or carries a justified cold marker. *)
  let roots = List.filter Sys.file_exists [ "../lib"; "../bin" ] in
  if roots = [] then ()
  else begin
    let vs = Lint.Heat.check_tree roots in
    List.iter
      (fun v ->
        Printf.eprintf "unexpected: %s:%d [%s] %s\n" v.Lint.Check.file
          v.Lint.Check.line v.Lint.Check.rule v.Lint.Check.message)
      vs;
    Alcotest.(check int) "heat violations in shipped tree" 0 (List.length vs)
  end

let check_clean_tree_own () =
  (* The own pass must come back clean on the shipped tree: every
     acquire reaches a release on every path, or sits in the Lint.Sites
     transfer registry, or carries a justified transfer marker. *)
  let roots = List.filter Sys.file_exists [ "../lib"; "../bin" ] in
  if roots = [] then ()
  else begin
    let vs = Lint.Own.check_tree roots in
    List.iter
      (fun v ->
        Printf.eprintf "unexpected: %s:%d [%s] %s\n" v.Lint.Check.file
          v.Lint.Check.line v.Lint.Check.rule v.Lint.Check.message)
      vs;
    Alcotest.(check int) "own violations in shipped tree" 0 (List.length vs)
  end

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "each fixture fires its rule" `Quick check_fires;
          Alcotest.test_case "fixtures parse" `Quick check_no_parse_errors;
          Alcotest.test_case "positions reported" `Quick check_positions;
        ] );
      ( "allow",
        [
          Alcotest.test_case "suppression works" `Quick check_allow_suppresses;
          Alcotest.test_case "unknown rule rejected" `Quick check_allow_unknown;
          Alcotest.test_case "unused allowance rejected" `Quick check_allow_unused;
        ] );
      ( "tree",
        [
          Alcotest.test_case "fixture tree under --strip-prefix" `Quick
            check_strip_prefix_tree;
          Alcotest.test_case "deadlock fixture tree" `Quick
            check_deadlock_fixture_tree;
          Alcotest.test_case "heat fixture tree" `Quick
            check_heat_fixture_tree;
          Alcotest.test_case "own fixture tree" `Quick
            check_own_fixture_tree;
          Alcotest.test_case "--pass all shares one parse" `Quick
            check_pass_all_shared_parse;
          Alcotest.test_case "shipped tree is clean" `Quick check_clean_tree;
          Alcotest.test_case "shipped tree is deadlock-clean" `Quick
            check_clean_tree_deadlock;
          Alcotest.test_case "shipped tree is heat-clean" `Quick
            check_clean_tree_heat;
          Alcotest.test_case "shipped tree is own-clean" `Quick
            check_clean_tree_own;
        ] );
    ]
