(* Tests for the fault-injection plane: plan mechanics and determinism,
   crash supervision, the node/cluster injection sites, retry/backoff
   resilience, and a 100-seed property sweep over node invariants. *)

module Fault = Faults.Fault

let gib n = Int64.mul (Int64.of_int n) (Int64.of_int (Mem.Mconfig.mib 1024))

let in_sim ?(seed = 19L) body =
  let engine = Sim.Engine.create ~seed () in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"test" (fun () -> result := Some (body engine));
  Sim.Engine.run engine;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let nop_fn id =
  {
    Seuss.Node.fn_id = id;
    runtime = Unikernel.Image.Node;
    source = "function main(args) { return {}; }";
  }

(* Build and boot a single node, then install a plan with the given
   rates. Order matters: the plan must arm only after boot, because the
   AO handshake goes through the [Net_drop] site. *)
let node_with_plan ?(plan_seed = 0xFA17L) ~rates engine =
  let env = Experiments.Harness.make_seuss_env ~budget_bytes:(gib 6) engine in
  let node = Experiments.Harness.seuss_node env in
  let plan = Fault.make ~seed:plan_seed ~rates engine in
  Fault.install plan;
  (node, plan)

let with_cluster ?(nodes = 3) body =
  in_sim (fun engine ->
      let c = Cluster.Drseuss.create ~nodes ~budget_per_node:(gib 6) engine in
      body engine c)

let events_of c =
  List.map (fun r -> r.Obs.Log.ev) (Obs.Log.records (Cluster.Drseuss.log c))

(* {1 Plan mechanics} *)

let test_make_rejects_bad_rates () =
  let engine = Sim.Engine.create ~seed:1L () in
  let rejects rates =
    match Fault.make ~rates engine with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "rate > 1 rejected" true
    (rejects [ (Fault.Uc_kill, 1.5) ]);
  Alcotest.(check bool) "negative rate rejected" true
    (rejects [ (Fault.Net_drop, -0.1) ]);
  Alcotest.(check bool) "nan rejected" true
    (rejects [ (Fault.Net_drop, Float.nan) ])

let test_install_current_uninstall () =
  in_sim (fun engine ->
      Alcotest.(check bool) "no plan initially" true
        (Option.is_none (Fault.current ()));
      let plan = Fault.make ~seed:2L engine in
      Fault.set_rate plan Fault.Uc_kill 0.7;
      Fault.install plan;
      (match Fault.current () with
      | None -> Alcotest.fail "plan not visible after install"
      | Some p ->
          Alcotest.(check (float 1e-9)) "same plan" 0.7
            (Fault.rate p Fault.Uc_kill));
      Fault.uninstall engine;
      Alcotest.(check bool) "gone after uninstall" true
        (Option.is_none (Fault.current ())))

let test_zero_rate_plan_never_fires () =
  in_sim (fun engine ->
      let node, plan = node_with_plan ~rates:[] engine in
      for i = 0 to 5 do
        match Seuss.Node.invoke node (nop_fn (Printf.sprintf "z%d" (i mod 2)))
                ~args:"{}"
        with
        | Ok _, _ -> ()
        | Error _, _ -> Alcotest.fail "invocation failed under zero-rate plan"
      done;
      Alcotest.(check int) "nothing fired" 0 (Fault.fired plan);
      Alcotest.(check bool) "empty history" true (Fault.history plan = []))

(* {1 Determinism} *)

let faulted_run plan_seed =
  in_sim ~seed:11L (fun engine ->
      let node, plan =
        node_with_plan ~plan_seed
          ~rates:
            [
              (Fault.Uc_kill, 0.2);
              (Fault.Capture_fail, 0.2);
              (Fault.Oom_storm, 0.1);
              (Fault.Net_drop, 0.1);
              (Fault.Net_delay, 0.2);
            ]
          engine
      in
      for i = 0 to 29 do
        ignore
          (Seuss.Node.invoke node (nop_fn (Printf.sprintf "d%d" (i mod 6)))
             ~args:"{}")
      done;
      (Fault.history plan, Seuss.Node.stats node, Sim.Engine.now engine))

let test_same_seed_same_failure_sequence () =
  let h1, s1, t1 = faulted_run 0xFEEDL in
  let h2, s2, t2 = faulted_run 0xFEEDL in
  Alcotest.(check bool) "faults actually fired" true (List.length h1 > 0);
  Alcotest.(check bool) "identical histories" true (h1 = h2);
  Alcotest.(check bool) "identical stats" true (s1 = s2);
  Alcotest.(check (float 0.0)) "identical clocks" t1 t2

(* {1 Crash supervision} *)

let test_supervised_crash_is_contained () =
  in_sim (fun engine ->
      let notified = ref None in
      let bystander_done = ref false in
      Sim.Engine.spawn_supervised engine ~name:"victim"
        ~on_crash:(fun name exn -> notified := Some (name, exn))
        (fun () ->
          Sim.Engine.sleep 0.1;
          Fault.crash "boom");
      Sim.Engine.spawn engine ~name:"bystander" (fun () ->
          Sim.Engine.sleep 0.5;
          bystander_done := true);
      Sim.Engine.sleep 1.0;
      Alcotest.(check bool) "bystander unharmed" true !bystander_done;
      (match Sim.Engine.failures engine with
      | [ ("victim", Fault.Injected_crash "boom") ] -> ()
      | _ -> Alcotest.fail "failures should record exactly the victim");
      match !notified with
      | Some ("victim", Fault.Injected_crash "boom") -> ()
      | _ -> Alcotest.fail "on_crash not notified")

let test_unsupervised_crash_aborts_run () =
  let engine = Sim.Engine.create ~seed:5L () in
  Sim.Engine.spawn engine ~name:"doomed" (fun () ->
      Sim.Engine.sleep 0.05;
      Fault.crash "fatal");
  match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected Process_failure"
  | exception Sim.Engine.Process_failure ("doomed", Fault.Injected_crash "fatal")
    ->
      ()
  | exception _ -> Alcotest.fail "wrong exception"

(* {1 Node injection sites} *)

(* Regression: a hot UC killed mid-request is retried internally — the
   caller still sees [Ok] on the [Hot] path, with the retry visible only
   in [stats.retries] (the behaviour [Node.invoke]'s doc promises). *)
let test_uc_kill_hot_retry () =
  in_sim (fun engine ->
      let node, plan = node_with_plan ~rates:[] engine in
      let fn = nop_fn "killme" in
      (match Seuss.Node.invoke node fn ~args:"{}" with
      | Ok _, Seuss.Node.Cold -> ()
      | _ -> Alcotest.fail "priming invoke should be a cold hit");
      (* Disarm on the first fire (the emit is synchronous, before the
         UC is destroyed) so the internal retry itself survives. *)
      Obs.Log.subscribe
        (Seuss.Node.env node).Seuss.Osenv.log
        (fun r ->
          match r.Obs.Log.ev with
          | Obs.Event.Fault_injected { site = "uc_kill"; _ } ->
              Fault.set_rate plan Fault.Uc_kill 0.0
          | _ -> ());
      Fault.set_rate plan Fault.Uc_kill 1.0;
      (match Seuss.Node.invoke node fn ~args:"{}" with
      | Ok _, Seuss.Node.Hot -> ()
      | Ok _, _ -> Alcotest.fail "retried invocation should keep the Hot path"
      | Error _, _ -> Alcotest.fail "hot death must not surface to the caller");
      let s = Seuss.Node.stats node in
      Alcotest.(check int) "one internal retry" 1 s.Seuss.Node.retries;
      Alcotest.(check int) "no client-visible errors" 0 s.Seuss.Node.errors;
      Alcotest.(check int) "cold" 1 s.Seuss.Node.cold;
      Alcotest.(check int) "hot" 1 s.Seuss.Node.hot;
      Alcotest.(check int) "paths sum to invocations" 2
        (s.Seuss.Node.cold + s.Seuss.Node.warm + s.Seuss.Node.hot))

let test_capture_fail_loses_snapshot_only () =
  in_sim (fun engine ->
      let node, plan =
        node_with_plan ~rates:[ (Fault.Capture_fail, 1.0) ] engine
      in
      let fn = nop_fn "flaky-capture" in
      (match Seuss.Node.invoke node fn ~args:"{}" with
      | Ok _, Seuss.Node.Cold -> ()
      | _ -> Alcotest.fail "first invoke should still succeed cold");
      Alcotest.(check bool) "capture lost" true
        (Option.is_none (Seuss.Node.function_snapshot node fn.Seuss.Node.fn_id));
      (* Without the snapshot (and with the idle UC dropped) the next
         miss pays the cold path again. *)
      Seuss.Node.drop_idle node ~fn_id:fn.Seuss.Node.fn_id;
      (match Seuss.Node.invoke node fn ~args:"{}" with
      | Ok _, Seuss.Node.Cold -> ()
      | _ -> Alcotest.fail "second invoke should be cold again");
      Fault.set_rate plan Fault.Capture_fail 0.0;
      Seuss.Node.drop_idle node ~fn_id:fn.Seuss.Node.fn_id;
      (match Seuss.Node.invoke node fn ~args:"{}" with
      | Ok _, Seuss.Node.Cold -> ()
      | _ -> Alcotest.fail "third invoke should be cold");
      Alcotest.(check bool) "capture works once disarmed" true
        (Option.is_some (Seuss.Node.function_snapshot node fn.Seuss.Node.fn_id));
      let s = Seuss.Node.stats node in
      Alcotest.(check int) "exactly one snapshot captured" 1
        s.Seuss.Node.snapshots_captured)

let test_oom_storm_evicts_idle_cache () =
  in_sim (fun engine ->
      let node, plan = node_with_plan ~rates:[] engine in
      (match Seuss.Node.invoke node (nop_fn "a") ~args:"{}" with
      | Ok _, _ -> ()
      | Error _, _ -> Alcotest.fail "invoke a failed");
      Alcotest.(check int) "a's UC cached idle" 1 (Seuss.Node.idle_uc_count node);
      Fault.set_rate plan Fault.Oom_storm 1.0;
      (match Seuss.Node.invoke node (nop_fn "b") ~args:"{}" with
      | Ok _, _ -> ()
      | Error _, _ -> Alcotest.fail "invoke b failed");
      Fault.set_rate plan Fault.Oom_storm 0.0;
      let s = Seuss.Node.stats node in
      Alcotest.(check bool) "storm reclaimed the idle cache" true
        (s.Seuss.Node.reclaimed_ucs >= 1);
      (* a's idle UC is gone but its snapshot survived: warm, not hot. *)
      match Seuss.Node.invoke node (nop_fn "a") ~args:"{}" with
      | Ok _, Seuss.Node.Warm -> ()
      | Ok _, p ->
          Alcotest.failf "expected warm after storm, got %s"
            (match p with
            | Seuss.Node.Cold -> "cold"
            | Seuss.Node.Warm -> "warm"
            | Seuss.Node.Hot -> "hot")
      | Error _, _ -> Alcotest.fail "invoke a after storm failed")

(* {1 Cluster resilience} *)

let test_crash_evicts_and_repairs_registry () =
  with_cluster ~nodes:2 (fun _engine c ->
      let fn = nop_fn "c" in
      ignore (Cluster.Drseuss.invoke c fn ~args:"{}");
      ignore (Cluster.Drseuss.invoke c fn ~args:"{}");
      let reg = Cluster.Drseuss.registry c in
      Alcotest.(check int) "both nodes hold c" 2
        (List.length (Cluster.Registry.locate reg ~fn_id:"c"));
      (* Simulate staleness: the registry forgot node 1's copy, so the
         crash of node 0 orphans the function entirely. *)
      Cluster.Registry.evict reg ~fn_id:"c" ~node_id:1;
      Cluster.Drseuss.crash_node c 0;
      Alcotest.(check bool) "node 0 dead" false (Cluster.Drseuss.is_alive c 0);
      Alcotest.(check int) "one survivor" 1 (Cluster.Drseuss.alive_count c);
      (* Node 1 still holds the snapshot and re-publishes it. *)
      (match Cluster.Registry.locate reg ~fn_id:"c" with
      | [ l ] ->
          Alcotest.(check int) "survivor is the holder" 1
            l.Cluster.Registry.node_id
      | _ -> Alcotest.fail "expected exactly one holder after repair");
      let evicted_for_crash =
        List.exists
          (function
            | Obs.Event.Registry_evict { reason = "node crash"; node_id = 0; _ }
              ->
                true
            | _ -> false)
          (events_of c)
      and repaired =
        List.exists
          (function
            | Obs.Event.Registry_repair { node_id = 1; republished = 1 } -> true
            | _ -> false)
          (events_of c)
      in
      Alcotest.(check bool) "crash eviction logged" true evicted_for_crash;
      Alcotest.(check bool) "repair logged" true repaired;
      let s = Cluster.Drseuss.stats c in
      Alcotest.(check int) "one crash counted" 1 s.Cluster.Drseuss.node_crashes)

let test_failover_routes_around_dead_node () =
  with_cluster ~nodes:2 (fun _engine c ->
      Cluster.Drseuss.crash_node c 0;
      (match Cluster.Drseuss.invoke c (nop_fn "f") ~args:"{}" with
      | Ok _, _ -> ()
      | Error _, _ -> Alcotest.fail "survivor should serve the invocation");
      let s = Cluster.Drseuss.stats c in
      Alcotest.(check int) "one failover" 1 s.Cluster.Drseuss.failovers;
      let logged =
        List.exists
          (function
            | Obs.Event.Failover { from_node = 0; to_node = 1; _ } -> true
            | _ -> false)
          (events_of c)
      in
      Alcotest.(check bool) "failover logged" true logged)

let test_stale_fetch_retries_backoff_then_degrades () =
  with_cluster ~nodes:4 (fun engine c ->
      let fn = nop_fn "shared" in
      (* Three invocations seed three holders (cold, fetch, fetch). *)
      for _ = 1 to 3 do
        match Cluster.Drseuss.invoke c fn ~args:"{}" with
        | Ok _, _ -> ()
        | Error _, _ -> Alcotest.fail "seeding invocation failed"
      done;
      let plan = Fault.make ~seed:0xBADCAFEL engine in
      Fault.set_rate plan Fault.Registry_stale 1.0;
      Fault.install plan;
      (* The fourth routes to the empty node; every holder it tries is
         stale, so it backs off twice, evicts all three, and degrades to
         a local cold start — still serving the request. *)
      let t0 = Sim.Engine.now engine in
      (match Cluster.Drseuss.invoke c fn ~args:"{}" with
      | Ok _, Cluster.Drseuss.Cluster_cold -> ()
      | Ok _, _ -> Alcotest.fail "degraded invocation should be a cluster cold"
      | Error _, _ -> Alcotest.fail "degraded invocation must still succeed");
      let elapsed = Sim.Engine.now engine -. t0 in
      let s = Cluster.Drseuss.stats c in
      Alcotest.(check int) "two backed-off retries" 2
        s.Cluster.Drseuss.fetch_retries;
      Alcotest.(check int) "all three holders evicted" 3
        s.Cluster.Drseuss.registry_evictions;
      Alcotest.(check int) "one degraded cold" 1
        s.Cluster.Drseuss.degraded_colds;
      let backoffs =
        List.filter_map
          (function
            | Obs.Event.Fetch_retry { attempt; backoff; _ } ->
                Some (attempt, backoff)
            | _ -> None)
          (events_of c)
      in
      (match backoffs with
      | [ (1, b0); (2, b1) ] ->
          Alcotest.(check bool) "b0 in [base, 2*base)" true
            (b0 >= 0.05 && b0 < 0.1);
          Alcotest.(check bool) "b1 in [2*base, 4*base)" true
            (b1 >= 0.1 && b1 < 0.2);
          Alcotest.(check bool) "exponential growth" true (b1 > b0);
          Alcotest.(check bool) "pauses actually slept" true
            (elapsed >= b0 +. b1)
      | _ -> Alcotest.fail "expected exactly two Fetch_retry events");
      let degraded_logged =
        List.exists
          (function
            | Obs.Event.Degraded_cold { fn_id = "shared" } -> true
            | _ -> false)
          (events_of c)
      in
      Alcotest.(check bool) "degradation logged" true degraded_logged)

let test_partition_reroutes_then_heals () =
  with_cluster ~nodes:2 (fun engine c ->
      let fn = nop_fn "p" in
      (match Cluster.Drseuss.invoke c fn ~args:"{}" with
      | Ok _, Cluster.Drseuss.Cluster_cold -> ()
      | _ -> Alcotest.fail "first invoke should be the cluster cold");
      let plan = Fault.make ~seed:3L engine in
      Fault.install plan;
      Fault.partition plan ~a:0 ~b:1;
      (* Routed to node 1, which cannot reach the only holder: the
         invocation fails over to the holder itself instead of paying a
         redundant cold start. *)
      (match Cluster.Drseuss.invoke c fn ~args:"{}" with
      | Ok _, Cluster.Drseuss.Local _ -> ()
      | Ok _, _ -> Alcotest.fail "partitioned invoke should run on the holder"
      | Error _, _ -> Alcotest.fail "partitioned invoke failed");
      Alcotest.(check int) "rerouted once" 1
        (Cluster.Drseuss.stats c).Cluster.Drseuss.failovers;
      Fault.heal plan ~a:0 ~b:1;
      (* Healed: node 1 can finally fetch the snapshot. *)
      let sources =
        List.init 2 (fun _ ->
            match Cluster.Drseuss.invoke c fn ~args:"{}" with
            | Ok _, source -> source
            | Error _, _ -> Alcotest.fail "post-heal invoke failed")
      in
      Alcotest.(check bool) "fetch succeeds after heal" true
        (List.mem Cluster.Drseuss.Remote_fetch sources);
      let cuts =
        List.filter
          (fun r -> r.Fault.site = Fault.Partition)
          (Fault.history plan)
      in
      Alcotest.(check int) "cut and heal recorded" 2 (List.length cuts))

let test_scheduled_partition_cuts_and_heals () =
  in_sim (fun _engine ->
      let engine = Sim.Engine.self () in
      let plan = Fault.make ~seed:4L engine in
      Fault.install plan;
      Fault.schedule_partition plan ~a:0 ~b:1 ~after:0.5 ~duration:1.0;
      Alcotest.(check bool) "not cut yet" false (Fault.is_partitioned plan 0 1);
      Sim.Engine.sleep 0.6;
      Alcotest.(check bool) "cut" true (Fault.is_partitioned plan 0 1);
      Alcotest.(check bool) "symmetric" true (Fault.is_partitioned plan 1 0);
      Sim.Engine.sleep 1.0;
      Alcotest.(check bool) "healed" false (Fault.is_partitioned plan 0 1))

(* The ISSUE's acceptance bar: under single-node-crash injection the
   cluster keeps serving ≥ 99% of invocations (degraded colds count as
   served — the clients got answers). *)
let test_availability_under_node_crash () =
  with_cluster ~nodes:4 (fun engine c ->
      let plan = Fault.make ~seed:6L engine in
      Fault.install plan;
      let served = ref 0 in
      let calls = 200 in
      for i = 0 to calls - 1 do
        if i = 50 then Fault.set_rate plan Fault.Node_crash 1.0;
        (match
           Cluster.Drseuss.invoke c
             (nop_fn (Printf.sprintf "fn-%d" (i mod 25)))
             ~args:"{}"
         with
        | Ok _, _ -> incr served
        | Error _, _ -> ());
        if i = 50 then Fault.set_rate plan Fault.Node_crash 0.0
      done;
      let s = Cluster.Drseuss.stats c in
      Alcotest.(check int) "exactly one crash" 1 s.Cluster.Drseuss.node_crashes;
      Alcotest.(check int) "three survivors" 3 (Cluster.Drseuss.alive_count c);
      Alcotest.(check bool) "crash logged" true
        (List.exists
           (function Obs.Event.Node_crash _ -> true | _ -> false)
           (events_of c));
      Alcotest.(check bool)
        (Printf.sprintf "availability >= 99%% (served %d/%d)" !served calls)
        true
        (float_of_int !served /. float_of_int calls >= 0.99))

(* {1 fig_chaos} *)

let test_fig_chaos_deterministic () =
  let run () =
    Experiments.Fig_chaos.run ~nodes:2 ~functions:5 ~calls:20
      ~rates:[ 0.0; 0.08 ] ~seed:29L ()
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check string) "identical JSON"
    (Obs.Json.to_string (Experiments.Fig_chaos.to_json r1))
    (Obs.Json.to_string (Experiments.Fig_chaos.to_json r2));
  Alcotest.(check string) "identical timelines"
    r1.Experiments.Fig_chaos.timeline r2.Experiments.Fig_chaos.timeline;
  match r1.Experiments.Fig_chaos.points with
  | [ p0; _ ] ->
      Alcotest.(check (float 0.0)) "control arm fully available" 1.0
        p0.Experiments.Fig_chaos.availability;
      Alcotest.(check int) "control arm draws nothing" 0
        p0.Experiments.Fig_chaos.faults_fired
  | _ -> Alcotest.fail "expected two points"

(* {1 Zero-rate transparency} *)

let identity_run ~with_plan =
  in_sim ~seed:23L (fun engine ->
      let env = Experiments.Harness.make_seuss_env ~budget_bytes:(gib 6) engine in
      let node = Experiments.Harness.seuss_node env in
      if with_plan then begin
        let plan =
          Fault.make ~seed:99L
            ~rates:(List.map (fun s -> (s, 0.0)) Fault.all_sites)
            engine
        in
        Fault.install plan
      end;
      for i = 0 to 11 do
        ignore
          (Seuss.Node.invoke node (nop_fn (Printf.sprintf "id%d" (i mod 3)))
             ~args:"{}")
      done;
      ( Sim.Engine.now engine,
        Seuss.Node.stats node,
        Obs.Log.to_jsonl env.Seuss.Osenv.log ))

let test_zero_rate_plan_is_transparent () =
  let t1, s1, l1 = identity_run ~with_plan:false in
  let t2, s2, l2 = identity_run ~with_plan:true in
  Alcotest.(check (float 0.0)) "same clock" t1 t2;
  Alcotest.(check bool) "same stats" true (s1 = s2);
  Alcotest.(check string) "same event log" l1 l2

(* {1 Property sweep}

   100 seeds of randomized ops against a faulted node; the node's core
   invariants must hold at the end of every run, whatever the failure
   interleaving. *)

let sweep_rates =
  [
    (Fault.Uc_kill, 0.15);
    (Fault.Capture_fail, 0.15);
    (Fault.Oom_storm, 0.05);
    (Fault.Net_drop, 0.05);
    (Fault.Net_delay, 0.1);
  ]

let sweep_one seed =
  in_sim ~seed:(Int64.of_int (1000 + seed)) (fun engine ->
      let env = Experiments.Harness.make_seuss_env ~budget_bytes:(gib 4) engine in
      let node = Experiments.Harness.seuss_node env in
      let plan =
        Fault.make ~seed:(Int64.of_int ((7 * seed) + 13)) ~rates:sweep_rates
          engine
      in
      Fault.install plan;
      let ops = Sim.Prng.create (Int64.of_int ((31 * seed) + 5)) in
      let issued = ref 0 in
      for _ = 1 to 20 do
        let roll = Sim.Prng.int ops 100 in
        if roll < 60 then begin
          incr issued;
          ignore
            (Seuss.Node.invoke node
               (nop_fn (Printf.sprintf "s%d" (Sim.Prng.int ops 5)))
               ~args:"{}")
        end
        else if roll < 75 then
          Seuss.Node.drop_idle node
            ~fn_id:(Printf.sprintf "s%d" (Sim.Prng.int ops 5))
        else if roll < 85 then ignore (Seuss.Node.reclaim_idle_ucs node)
        else ignore (Seuss.Node.deploy_idle node Unikernel.Image.Node)
      done;
      let check name cond =
        if not cond then
          Alcotest.failf "seed %d violates invariant: %s" seed name
      in
      let s = Seuss.Node.stats node in
      check "paths sum to invocations"
        (s.Seuss.Node.cold + s.Seuss.Node.warm + s.Seuss.Node.hot = !issued);
      check "errors bounded by invocations" (s.Seuss.Node.errors <= !issued);
      let frames = env.Seuss.Osenv.frames in
      check "free + used = budget"
        (Int64.add (Mem.Frame.free_bytes frames) (Mem.Frame.used_bytes frames)
        = Mem.Frame.budget_bytes frames);
      check "idle list matches its count"
        (List.length (Seuss.Node.idle_ucs node) = Seuss.Node.idle_uc_count node);
      List.iter
        (fun (_, snap) ->
          check "cached snapshot not deleted"
            (not (Seuss.Snapshot.is_deleted snap));
          match snap.Seuss.Snapshot.parent with
          | None -> ()
          | Some parent ->
              check "parent outlives dependent"
                (not (Seuss.Snapshot.is_deleted parent));
              check "parent counts its dependent"
                (Seuss.Snapshot.dependents parent >= 1))
        (Seuss.Node.snapshot_inventory node))

let test_property_sweep () =
  for seed = 0 to 99 do
    sweep_one seed
  done

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "faults"
    [
      ( "plan",
        [
          case "rejects bad rates" test_make_rejects_bad_rates;
          case "install current uninstall" test_install_current_uninstall;
          case "zero rate never fires" test_zero_rate_plan_never_fires;
        ] );
      ( "determinism",
        [
          case "same seed same sequence" test_same_seed_same_failure_sequence;
          case "fig_chaos deterministic" test_fig_chaos_deterministic;
          case "zero-rate plan transparent" test_zero_rate_plan_is_transparent;
        ] );
      ( "supervision",
        [
          case "supervised crash contained" test_supervised_crash_is_contained;
          case "unsupervised crash aborts" test_unsupervised_crash_aborts_run;
        ] );
      ( "node sites",
        [
          case "uc_kill hot retry" test_uc_kill_hot_retry;
          case "capture_fail loses snapshot only"
            test_capture_fail_loses_snapshot_only;
          case "oom_storm evicts idle cache" test_oom_storm_evicts_idle_cache;
        ] );
      ( "cluster resilience",
        [
          case "crash evicts and repairs" test_crash_evicts_and_repairs_registry;
          case "failover around dead node"
            test_failover_routes_around_dead_node;
          case "stale fetch retries then degrades"
            test_stale_fetch_retries_backoff_then_degrades;
          case "partition reroutes then heals"
            test_partition_reroutes_then_heals;
          case "scheduled partition" test_scheduled_partition_cuts_and_heals;
          case "availability under crash" test_availability_under_node_crash;
        ] );
      ( "properties", [ case "100-seed invariant sweep" test_property_sweep ] );
    ]
