(* Tests for the SEUSS core: snapshots and stacks, UC lifecycle, the
   cold/warm/hot invocation paths, anticipatory optimization and the OOM
   reclaimer. These encode the paper's qualitative claims as assertions. *)

module N = Seuss.Node

let gib n = Int64.mul (Int64.of_int n) (Int64.of_int (Mem.Mconfig.mib 1024))

let nop_fn =
  {
    N.fn_id = "nop";
    runtime = Unikernel.Image.Node;
    source = "function main(args) { return {}; }";
  }

let fn ~id source = { N.fn_id = id; runtime = Unikernel.Image.Node; source }

(* Run [body node] inside a simulation with a started node. *)
let with_node ?config ?(budget_gib = 8) body =
  let engine = Sim.Engine.create ~seed:11L () in
  let env = Seuss.Osenv.create ~budget_bytes:(gib budget_gib) engine in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"experiment" (fun () ->
      let node = N.create ?config env in
      N.start node;
      result := Some (body env node));
  Sim.Engine.run engine;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let expect_ok = function
  | Ok v, path -> (v, path)
  | Error _, _ -> Alcotest.fail "invocation failed"

let timed f =
  let engine = Sim.Engine.self () in
  let t0 = Sim.Engine.now engine in
  let v = f () in
  (v, Sim.Engine.now engine -. t0)

(* {1 Startup and base snapshots} *)

let test_start_builds_base_snapshot () =
  with_node (fun _env node ->
      match N.base_snapshot node Unikernel.Image.Node with
      | None -> Alcotest.fail "no base snapshot"
      | Some base ->
          Alcotest.(check bool) "bigger than the raw image" true
            (base.Seuss.Snapshot.total_pages
            >= Unikernel.Image.total_pages Unikernel.Image.node);
          Alcotest.(check int) "depth 1" 1 (Seuss.Snapshot.depth base);
          (* Table 1: base runtime snapshot is ~110-115 MB. *)
          let mb =
            Int64.to_float (Seuss.Snapshot.total_bytes base) /. 1048576.0
          in
          Alcotest.(check bool) "within Table 1 range" true
            (mb > 100.0 && mb < 130.0))

let test_ao_grows_base_snapshot () =
  let size_at ao =
    with_node ~config:{ Seuss.Config.default with Seuss.Config.ao } (fun _ node ->
        match N.base_snapshot node Unikernel.Image.Node with
        | Some base -> base.Seuss.Snapshot.total_pages
        | None -> Alcotest.fail "no base")
  in
  let none = size_at Seuss.Config.Ao_none in
  let net = size_at Seuss.Config.Ao_network in
  let full = size_at Seuss.Config.Ao_full in
  Alcotest.(check bool) "network AO adds pages" true (net > none);
  Alcotest.(check bool) "full AO adds more" true (full > net);
  (* Table 1: AO bloats the base snapshot by roughly 4.9 MB (~1250 pages). *)
  Alcotest.(check bool) "growth in the paper's range" true
    (full - none > 800 && full - none < 2500)

(* {1 Invocation paths} *)

let test_cold_then_warm_then_hot () =
  with_node (fun _env node ->
      let (r1, p1), d_cold = timed (fun () -> expect_ok (N.invoke node nop_fn ~args:"null")) in
      Alcotest.(check string) "result" "{}" r1;
      Alcotest.(check bool) "first is cold" true (p1 = N.Cold);
      (* The cold invocation captured a function snapshot and cached the
         idle UC: next is hot. *)
      let (_, p2), d_hot = timed (fun () -> expect_ok (N.invoke node nop_fn ~args:"null")) in
      Alcotest.(check bool) "second is hot" true (p2 = N.Hot);
      (* Drop the idle UC to force the warm path. *)
      N.drop_idle node ~fn_id:"nop";
      let (_, p3), d_warm = timed (fun () -> expect_ok (N.invoke node nop_fn ~args:"null")) in
      Alcotest.(check bool) "third is warm" true (p3 = N.Warm);
      Alcotest.(check bool) "cold > warm" true (d_cold > d_warm);
      Alcotest.(check bool) "warm > hot" true (d_warm > d_hot);
      (* Table 1 magnitudes (generous factor-two bands around 7.5 / 3.5 /
         0.8 ms). *)
      Alcotest.(check bool) "cold in band" true (d_cold > 4e-3 && d_cold < 15e-3);
      Alcotest.(check bool) "warm in band" true (d_warm > 1.5e-3 && d_warm < 7e-3);
      Alcotest.(check bool) "hot in band" true (d_hot > 0.3e-3 && d_hot < 2e-3))

let test_function_snapshot_cached_once () =
  with_node (fun _env node ->
      ignore (expect_ok (N.invoke node nop_fn ~args:"null"));
      Alcotest.(check int) "one fn snapshot" 1 (N.snapshot_count node);
      N.drop_idle node ~fn_id:"nop";
      ignore (expect_ok (N.invoke node nop_fn ~args:"null"));
      Alcotest.(check int) "still one" 1 (N.snapshot_count node);
      let s = N.stats node in
      Alcotest.(check int) "one capture" 1 s.N.snapshots_captured)

let test_distinct_functions_isolated () =
  with_node (fun _env node ->
      let counter id =
        fn ~id
          "let n = 0; function main(args) { n = n + 1; return n; }"
      in
      let a = counter "fn-a" and b = counter "fn-b" in
      let run f = fst (expect_ok (N.invoke node f ~args:"null")) in
      Alcotest.(check string) "a first" "1" (run a);
      Alcotest.(check string) "a second (hot, same UC)" "2" (run a);
      Alcotest.(check string) "b unaffected" "1" (run b);
      (* Warm deploys restart from the snapshot state (captured before
         any run), so a fresh UC of a starts at 1 again. *)
      N.drop_idle node ~fn_id:"fn-a";
      Alcotest.(check string) "a warm from snapshot" "1" (run a))

let test_compile_error_reported () =
  with_node (fun _env node ->
      match N.invoke node (fn ~id:"bad" "function main(") ~args:"null" with
      | Error (`Compile_error _), N.Cold -> ()
      | _ -> Alcotest.fail "expected compile error on cold path")

let test_runtime_error_reported () =
  with_node (fun _env node ->
      match
        N.invoke node
          (fn ~id:"boom" "function main(args) { return 1 / 0; }")
          ~args:"null"
      with
      | Error (`Runtime_error _), _ -> ()
      | _ -> Alcotest.fail "expected runtime error")

let test_args_flow_through () =
  with_node (fun _env node ->
      let echo =
        fn ~id:"echo" "function main(args) { return args.x * 2; }"
      in
      let r, _ = expect_ok (N.invoke node echo ~args:"{x: 21}") in
      Alcotest.(check string) "result" "42" r)

(* {1 Anticipatory optimization (Table 2 shape)} *)

let cold_and_warm_latency ao =
  with_node ~config:{ Seuss.Config.default with Seuss.Config.ao } (fun _ node ->
      let (_, _), d_cold = timed (fun () -> expect_ok (N.invoke node nop_fn ~args:"null")) in
      N.drop_idle node ~fn_id:"nop";
      let (_, _), d_warm = timed (fun () -> expect_ok (N.invoke node nop_fn ~args:"null")) in
      (d_cold, d_warm))

let test_ao_latency_ladder () =
  let c_none, w_none = cold_and_warm_latency Seuss.Config.Ao_none in
  let c_net, w_net = cold_and_warm_latency Seuss.Config.Ao_network in
  let c_full, w_full = cold_and_warm_latency Seuss.Config.Ao_full in
  (* Table 2 orderings. *)
  Alcotest.(check bool) "cold: none > network" true (c_none > c_net);
  Alcotest.(check bool) "cold: network > full" true (c_net > c_full);
  Alcotest.(check bool) "warm: none > network" true (w_none > w_net);
  Alcotest.(check bool) "warm: network > full" true (w_net > w_full);
  (* Rough magnitudes: no-AO cold is several times full-AO cold (paper:
     42 ms vs 7.5 ms, a 5.6x gap). *)
  Alcotest.(check bool) "cold gap factor" true (c_none /. c_full > 3.0);
  Alcotest.(check bool) "network AO removes the pool cost" true
    (c_none -. c_net > 0.8 *. Unikernel.Gconst.net_pool_init_time)

let test_ao_shrinks_function_snapshot () =
  let fn_snap_pages ao =
    with_node ~config:{ Seuss.Config.default with Seuss.Config.ao } (fun _ node ->
        ignore (expect_ok (N.invoke node nop_fn ~args:"null"));
        match N.function_snapshot node "nop" with
        | Some s -> s.Seuss.Snapshot.diff_pages
        | None -> Alcotest.fail "no fn snapshot")
  in
  let without = fn_snap_pages Seuss.Config.Ao_none in
  let with_ao = fn_snap_pages Seuss.Config.Ao_full in
  (* Table 1: 4.8 MB -> 2.0 MB, roughly half or better. *)
  Alcotest.(check bool) "AO halves the function snapshot" true
    (float_of_int with_ao < 0.6 *. float_of_int without)

(* {1 Snapshot stacks: dependents and deletion} *)

let test_snapshot_dependents () =
  with_node (fun env node ->
      ignore (expect_ok (N.invoke node nop_fn ~args:"null"));
      let base = Option.get (N.base_snapshot node Unikernel.Image.Node) in
      let fn_snap = Option.get (N.function_snapshot node "nop") in
      Alcotest.(check int) "fn snapshot depth" 2 (Seuss.Snapshot.depth fn_snap);
      (* Base is depended on by: the fn snapshot + the idle (hot) UC's
         lineage is via fn? The idle UC was deployed from base (cold path),
         so base has the fn snapshot and the idle UC. *)
      Alcotest.(check bool) "base has dependents" true
        (Seuss.Snapshot.dependents base >= 1);
      Alcotest.(check bool) "cannot delete base" false
        (Seuss.Snapshot.try_delete ~env base);
      (* fn snapshot has no UC deployed from it yet: deletable. *)
      Alcotest.(check int) "fn snapshot free" 0
        (Seuss.Snapshot.dependents fn_snap))

let test_uc_deploy_references_snapshot () =
  with_node (fun env node ->
      let base = Option.get (N.base_snapshot node Unikernel.Image.Node) in
      let before = Seuss.Snapshot.dependents base in
      let uc = Seuss.Uc.deploy env base in
      Alcotest.(check int) "deploy adds a dependent" (before + 1)
        (Seuss.Snapshot.dependents base);
      Seuss.Uc.destroy uc;
      Alcotest.(check int) "destroy removes it" before
        (Seuss.Snapshot.dependents base))

let test_deleted_snapshot_rejected () =
  with_node (fun env node ->
      ignore (expect_ok (N.invoke node nop_fn ~args:"null"));
      let fn_snap = Option.get (N.function_snapshot node "nop") in
      Alcotest.(check bool) "deletable" true (Seuss.Snapshot.try_delete ~env fn_snap);
      Alcotest.(check bool) "deploy from deleted rejected" true
        (match Seuss.Uc.deploy env fn_snap with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_snapshot_sharing_example () =
  (* §3's example: two functions sharing one runtime snapshot need the
     runtime memory once, not twice. *)
  with_node (fun _env node ->
      ignore (expect_ok (N.invoke node (fn ~id:"foo" "function main(a) { return \"foo\"; }") ~args:"null"));
      ignore (expect_ok (N.invoke node (fn ~id:"bar" "function main(a) { return \"bar\"; }") ~args:"null"));
      let base = Option.get (N.base_snapshot node Unikernel.Image.Node) in
      let foo = Option.get (N.function_snapshot node "foo") in
      let bar = Option.get (N.function_snapshot node "bar") in
      let base_pages = base.Seuss.Snapshot.total_pages in
      Alcotest.(check bool) "diffs are small vs base" true
        (foo.Seuss.Snapshot.diff_pages < base_pages / 10
        && bar.Seuss.Snapshot.diff_pages < base_pages / 10))

(* {1 UC footprint and density enablers} *)

let test_idle_uc_footprint_small () =
  with_node (fun _env node ->
      ignore (expect_ok (N.invoke node nop_fn ~args:"null"));
      match N.idle_ucs node with
      | [ uc ] ->
          let footprint_mb =
            Int64.to_float (Seuss.Uc.footprint_bytes uc) /. 1048576.0
          in
          (* Table 3: ~54k UCs in 88 GB, i.e. ~1.6 MB each. *)
          Alcotest.(check bool) "idle UC under 4 MB" true (footprint_mb < 4.0);
          Alcotest.(check bool) "idle UC over 0.2 MB" true (footprint_mb > 0.2)
      | l -> Alcotest.failf "expected 1 idle UC, got %d" (List.length l))

let test_oom_reclaims_idle_ucs () =
  (* A small node: deploy idle runtime UCs until memory runs low, then
     check the reclaimer frees memory without touching snapshots. *)
  let config =
    {
      Seuss.Config.default with
      Seuss.Config.oom_headroom_bytes = Int64.of_int (Mem.Mconfig.mib 256);
    }
  in
  with_node ~config ~budget_gib:1 (fun _env node ->
      let deployed = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        if N.deploy_idle node Unikernel.Image.Node then incr deployed
        else continue_ := false;
        if !deployed > 2000 then continue_ := false
      done;
      Alcotest.(check bool) "deployed a bunch" true (!deployed > 20);
      let before_free = N.free_bytes node in
      let reclaimed = N.reclaim_idle_ucs node in
      ignore before_free;
      if
        Int64.compare (N.free_bytes node)
          config.Seuss.Config.oom_headroom_bytes
          >= 0
      then ()
      else Alcotest.(check bool) "reclaimer made progress" true (reclaimed > 0);
      (* The base snapshot survived. *)
      Alcotest.(check bool) "base intact" true
        (Option.is_some (N.base_snapshot node Unikernel.Image.Node)))

let test_cache_disabled_config () =
  let config =
    {
      Seuss.Config.default with
      Seuss.Config.cache_function_snapshots = false;
      cache_idle_ucs = false;
    }
  in
  with_node ~config (fun _env node ->
      let _, p1 = expect_ok (N.invoke node nop_fn ~args:"null") in
      let _, p2 = expect_ok (N.invoke node nop_fn ~args:"null") in
      Alcotest.(check bool) "both cold" true (p1 = N.Cold && p2 = N.Cold);
      Alcotest.(check int) "nothing cached" 0
        (N.snapshot_count node + N.idle_uc_count node))

let test_snapshot_cache_bounded () =
  let config =
    { Seuss.Config.default with Seuss.Config.max_function_snapshots = 5 }
  in
  with_node ~config (fun _env node ->
      for i = 1 to 12 do
        let f = fn ~id:(Printf.sprintf "bounded-%d" i)
            "function main(args) { return {}; }"
        in
        ignore (expect_ok (N.invoke node f ~args:"{}"));
        (* Free the idle UC so the snapshot becomes evictable. *)
        N.drop_idle node ~fn_id:f.N.fn_id
      done;
      Alcotest.(check bool) "cache stays bounded" true
        (N.snapshot_count node <= 5);
      (* An evicted function simply goes cold again. *)
      let f1 = fn ~id:"bounded-1" "function main(args) { return {}; }" in
      match N.invoke node f1 ~args:"{}" with
      | Ok _, N.Cold -> ()
      | Ok _, _ ->
          (* bounded-1 may have survived eviction depending on order. *)
          ()
      | Error _, _ -> Alcotest.fail "re-invocation failed")

let test_eviction_respects_dependents () =
  let config =
    { Seuss.Config.default with Seuss.Config.max_function_snapshots = 2 }
  in
  with_node ~config (fun _env node ->
      (* Keep idle UCs alive: their source snapshots have dependents and
         must survive eviction pressure. *)
      for i = 1 to 6 do
        let f = fn ~id:(Printf.sprintf "dep-%d" i)
            "function main(args) { return {}; }"
        in
        ignore (expect_ok (N.invoke node f ~args:"{}"))
      done;
      (* Every cached snapshot must still be usable (not deleted). *)
      for i = 1 to 6 do
        match N.function_snapshot node (Printf.sprintf "dep-%d" i) with
        | Some snap ->
            Alcotest.(check bool) "cached snapshots are live" false
              (Seuss.Snapshot.is_deleted snap)
        | None -> ()
      done)

(* {1 Multiple runtimes} *)

let test_python_runtime () =
  let config =
    {
      Seuss.Config.default with
      Seuss.Config.runtimes = [ Unikernel.Image.node; Unikernel.Image.python ];
    }
  in
  with_node ~config (fun _env node ->
      Alcotest.(check bool) "python base exists" true
        (Option.is_some (Seuss.Node.base_snapshot node Unikernel.Image.Python));
      let py_fn =
        {
          N.fn_id = "py";
          runtime = Unikernel.Image.Python;
          source = "function main(args) { return args.x + 1; }";
        }
      in
      let r, p = expect_ok (N.invoke node py_fn ~args:"{x: 1}") in
      Alcotest.(check string) "python fn runs" "2" r;
      Alcotest.(check bool) "cold" true (p = N.Cold);
      (* The Python base snapshot is smaller than Node's. *)
      let node_base = Option.get (N.base_snapshot node Unikernel.Image.Node) in
      let py_base = Option.get (N.base_snapshot node Unikernel.Image.Python) in
      Alcotest.(check bool) "python image smaller" true
        (py_base.Seuss.Snapshot.total_pages < node_base.Seuss.Snapshot.total_pages))

let test_missing_runtime_errors () =
  with_node (fun _env node ->
      let py_fn =
        {
          N.fn_id = "py";
          runtime = Unikernel.Image.Python;
          source = "function main(a) { return 0; }";
        }
      in
      match N.invoke node py_fn ~args:"{}" with
      | Error `No_runtime, _ -> ()
      | _ -> Alcotest.fail "expected No_runtime")

(* {1 Node stress} *)

(* Property: any interleaving of invocations keeps the node's accounting
   coherent — every request succeeds, path counters sum to the request
   count, and the snapshot cache holds exactly the unique functions. *)
let node_stress =
  QCheck.Test.make ~name:"random invocation mixes keep node coherent" ~count:8
    QCheck.(list_of_size (Gen.int_range 5 25) (int_range 0 5))
    (fun fn_ids ->
      with_node ~budget_gib:6 (fun _env node ->
          List.iter
            (fun i ->
              let fn = fn ~id:(Printf.sprintf "stress-%d" i)
                  "function main(args) { return {ok: true}; }"
              in
              match N.invoke node fn ~args:"{}" with
              | Ok _, _ -> ()
              | Error _, _ -> Alcotest.fail "stress invocation failed")
            fn_ids;
          let s = N.stats node in
          let unique = List.sort_uniq compare fn_ids in
          s.N.cold + s.N.warm + s.N.hot = List.length fn_ids
          && s.N.cold = List.length unique
          && N.snapshot_count node = List.length unique
          && s.N.errors = 0))

let test_hot_footprint_bounded () =
  (* The nursery ring keeps hot UCs from growing without bound: 50 hot
     runs should not balloon the UC's private pages. *)
  with_node (fun _env node ->
      ignore (expect_ok (N.invoke node nop_fn ~args:"null"));
      let after_one =
        match N.last_served_uc node with
        | Some uc -> Seuss.Uc.private_pages uc
        | None -> Alcotest.fail "no uc"
      in
      for _ = 1 to 50 do
        ignore (expect_ok (N.invoke node nop_fn ~args:"null"))
      done;
      let after_many =
        match N.last_served_uc node with
        | Some uc -> Seuss.Uc.private_pages uc
        | None -> Alcotest.fail "no uc"
      in
      Alcotest.(check bool) "bounded growth" true
        (after_many < after_one + 700))

(* Property: arbitrary interleavings of deploy / capture / destroy /
   delete over a snapshot stack conserve memory — tearing everything
   down returns the allocator to its post-start level. This is the
   paper's deletion-safety rule exercised end to end. *)
let snapshot_stack_conservation =
  QCheck.Test.make ~name:"snapshot stacks conserve frames" ~count:6
    QCheck.(list_of_size (Gen.int_range 4 18) (int_range 0 3))
    (fun ops ->
      with_node ~budget_gib:6 (fun env node ->
          let base = Option.get (N.base_snapshot node Unikernel.Image.Node) in
          let baseline = Mem.Frame.used_frames env.Seuss.Osenv.frames in
          let ucs = ref [] and snaps = ref [ base ] in
          let pick l i = List.nth l (i mod List.length l) in
          List.iteri
            (fun i op ->
              match op with
              | 0 ->
                  (* Deploy from a random live snapshot. *)
                  let live =
                    List.filter (fun s -> not (Seuss.Snapshot.is_deleted s)) !snaps
                  in
                  if live <> [] then begin
                    let uc = Seuss.Uc.deploy env (pick live i) in
                    Sim.Engine.sleep 0.05 (* let the guest resume *);
                    ucs := uc :: !ucs
                  end
              | 1 -> (
                  (* Capture a random running UC. *)
                  match
                    List.filter (fun u -> Seuss.Uc.status u = Seuss.Uc.Running) !ucs
                  with
                  | [] -> ()
                  | running ->
                      let uc = pick running i in
                      snaps :=
                        Seuss.Uc.capture uc ~env
                          ~name:(Printf.sprintf "s%d" i)
                        :: !snaps)
              | 2 -> (
                  match !ucs with
                  | [] -> ()
                  | uc :: rest ->
                      Seuss.Uc.destroy uc;
                      ucs := rest)
              | _ ->
                  (* Attempt deletion of a random non-base snapshot. *)
                  let candidates =
                    List.filter
                      (fun s -> s != base && not (Seuss.Snapshot.is_deleted s))
                      !snaps
                  in
                  if candidates <> [] then
                    ignore (Seuss.Snapshot.try_delete ~env (pick candidates i)))
            ops;
          (* Teardown: all UCs, then snapshots until a fixpoint. *)
          List.iter
            (fun u -> if Seuss.Uc.status u = Seuss.Uc.Running then Seuss.Uc.destroy u)
            !ucs;
          let progress = ref true in
          while !progress do
            progress := false;
            List.iter
              (fun s ->
                if s != base && not (Seuss.Snapshot.is_deleted s) then
                  if Seuss.Snapshot.try_delete ~env s then progress := true)
              !snaps
          done;
          Mem.Frame.used_frames env.Seuss.Osenv.frames = baseline))

let test_concurrent_cold_same_function () =
  (* Several concurrent first invocations of one function: all race down
     the cold path (as in OpenWhisk), but exactly one snapshot wins the
     cache and the extras are safely discarded. *)
  with_node (fun env node ->
      let engine = env.Seuss.Osenv.engine in
      let remaining = ref 6 in
      let done_ = Sim.Ivar.create () in
      for _ = 1 to 6 do
        Sim.Engine.spawn engine (fun () ->
            (match N.invoke node nop_fn ~args:"{}" with
            | Ok _, _ -> ()
            | Error _, _ -> Alcotest.fail "concurrent invocation failed");
            decr remaining;
            if !remaining = 0 then Sim.Ivar.fill done_ ())
      done;
      Sim.Ivar.read done_;
      Alcotest.(check int) "one cached snapshot" 1 (N.snapshot_count node);
      let s = N.stats node in
      Alcotest.(check int) "all six served" 6 (s.N.cold + s.N.warm + s.N.hot);
      Alcotest.(check int) "no errors" 0 s.N.errors;
      (* Subsequent call is hot. *)
      match N.invoke node nop_fn ~args:"{}" with
      | Ok _, N.Hot -> ()
      | _ -> Alcotest.fail "expected hot after the stampede")

(* {1 Failure injection} *)

let test_invoke_timeout_recovers () =
  let config = { Seuss.Config.default with Seuss.Config.invoke_timeout = 1.0 } in
  with_node ~config (fun _env node ->
      let stuck =
        fn ~id:"stuck" "function main(args) { work(30000); return {}; }"
      in
      (match N.invoke node stuck ~args:"{}" with
      | Error `Timeout, _ -> ()
      | Ok _, _ -> Alcotest.fail "expected timeout"
      | Error _, _ -> ());
      let s = N.stats node in
      Alcotest.(check bool) "error recorded" true (s.N.errors >= 1);
      (* The node still serves other functions. *)
      let r, _ = expect_ok (N.invoke node nop_fn ~args:"{}") in
      Alcotest.(check string) "healthy afterwards" "{}" r)

let test_uc_destroyed_under_connection () =
  with_node (fun env node ->
      let base = Option.get (N.base_snapshot node Unikernel.Image.Node) in
      let uc = Seuss.Uc.deploy env base in
      Alcotest.(check bool) "connects" true (Seuss.Uc.connect uc);
      (match Seuss.Uc.request uc Unikernel.Driver.Ping ~timeout:5.0 with
      | Ok Unikernel.Driver.Pong -> ()
      | _ -> Alcotest.fail "ping failed");
      Seuss.Uc.destroy uc;
      (* Requests after death fail cleanly, and are idempotent. *)
      (match Seuss.Uc.request uc Unikernel.Driver.Ping ~timeout:1.0 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "request on dead UC succeeded");
      Seuss.Uc.destroy uc;
      Alcotest.(check bool) "cannot reconnect" false (Seuss.Uc.connect uc);
      (* A fresh deploy from the same snapshot still works. *)
      let uc2 = Seuss.Uc.deploy env base in
      Alcotest.(check bool) "fresh deploy fine" true (Seuss.Uc.connect uc2);
      Seuss.Uc.destroy uc2)

let test_guest_oom_surfaces_as_error () =
  (* A node so small the cold path cannot complete: the guest dies on
     allocation, the invocation times out, and the platform reports an
     error instead of wedging. *)
  let engine = Sim.Engine.create ~seed:11L () in
  let env =
    Seuss.Osenv.create
      ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 140))
      engine
  in
  let outcome = ref None in
  Sim.Engine.spawn engine ~name:"experiment" (fun () ->
      let config =
        {
          Seuss.Config.default with
          Seuss.Config.invoke_timeout = 5.0;
          oom_headroom_bytes = 0L;
        }
      in
      let node = N.create ~config env in
      N.start node;
      outcome := Some (N.invoke node nop_fn ~args:"{}"));
  Sim.Engine.run engine;
  match !outcome with
  | Some (Error (`Timeout | `Overloaded), _) -> ()
  | Some (Ok _, _) ->
      (* 140 MB may just barely fit; acceptable, but memory must be low. *)
      ()
  | Some (Error _, _) -> ()
  | None -> Alcotest.fail "simulation did not complete"

(* {1 Shim} *)

let test_shim_adds_round_trip () =
  with_node (fun env node ->
      let shim = Seuss.Shim.create env node in
      ignore (expect_ok (N.invoke node nop_fn ~args:"null"));
      (* Hot with and without the shim. *)
      let (_, _), direct = timed (fun () -> expect_ok (N.invoke node nop_fn ~args:"null")) in
      let (_, _), via_shim =
        timed (fun () -> expect_ok (Seuss.Shim.invoke shim nop_fn ~args:"null"))
      in
      let added = via_shim -. direct in
      (* §7: the shim hop adds about 8 ms. *)
      Alcotest.(check bool) "adds 6-10 ms" true (added > 6e-3 && added < 10e-3))

let test_shim_serializes () =
  with_node (fun env node ->
      let shim = Seuss.Shim.create env node in
      ignore (expect_ok (N.invoke node nop_fn ~args:"null"));
      let engine = Sim.Engine.self () in
      let done_count = ref 0 in
      let t0 = Sim.Engine.now engine in
      for _ = 1 to 10 do
        Sim.Engine.spawn engine (fun () ->
            ignore (Seuss.Shim.invoke shim nop_fn ~args:"null");
            incr done_count)
      done;
      (* Wait for all to finish. *)
      while !done_count < 10 do
        Sim.Engine.sleep 0.01
      done;
      let elapsed = Sim.Engine.now engine -. t0 in
      (* 10 requests x 2 transfers x 3.9 ms of serialized lock time. *)
      Alcotest.(check bool) "rate limited by the single connection" true
        (elapsed >= 10.0 *. 2.0 *. Seuss.Cost.shim_per_message *. 0.9))

(* {1 Resource drain: dead UCs and orderly shutdown} *)

let test_dead_uc_destroy_releases () =
  (* A guest that dies of OOM mid-boot flips to Dead without passing
     through destroy; destroying it afterwards must still release its
     frames (the pre-fix behavior left them — and the snapshot
     reference — stranded forever). *)
  let engine = Sim.Engine.create ~seed:11L () in
  let env =
    Seuss.Osenv.create ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 4)) engine
  in
  let completed = ref false in
  Sim.Engine.spawn engine ~name:"experiment" (fun () ->
      let uc = Seuss.Uc.boot env Unikernel.Image.node in
      (match Seuss.Uc.await_breakpoint uc ~timeout:5.0 with
      | Some _ -> Alcotest.fail "boot unexpectedly completed in 4 MiB"
      | None -> ());
      Alcotest.(check bool) "guest died" true
        (Seuss.Uc.status uc = Seuss.Uc.Dead);
      Alcotest.(check bool) "dead UC still holds frames" true
        (Mem.Frame.used_frames env.Seuss.Osenv.frames > 0);
      Seuss.Uc.destroy uc;
      Alcotest.(check int) "destroy drained them" 0
        (Mem.Frame.used_frames env.Seuss.Osenv.frames);
      (* Still idempotent. *)
      Seuss.Uc.destroy uc;
      completed := true);
  Sim.Engine.run engine;
  if not !completed then Alcotest.fail "simulation did not complete"

let test_node_shutdown_drains_frames () =
  with_node (fun env node ->
      for k = 1 to 4 do
        let f =
          fn
            ~id:(Printf.sprintf "drain-%d" k)
            (Printf.sprintf "function main(args) { return {k: %d}; }" k)
        in
        (* cold, then hot, so snapshots and idle UCs both populate *)
        ignore (expect_ok (N.invoke node f ~args:"{}"));
        ignore (expect_ok (N.invoke node f ~args:"{}"))
      done;
      Alcotest.(check bool) "node holds frames while serving" true
        (Mem.Frame.used_frames env.Seuss.Osenv.frames > 0);
      N.shutdown node;
      Alcotest.(check int) "shutdown drains every frame" 0
        (Mem.Frame.used_frames env.Seuss.Osenv.frames))

(* {1 Working-set record & prefault (REAP)} *)

let prefault_config =
  {
    Seuss.Config.default with
    Seuss.Config.prefault_working_set = true;
    (* force every repeat onto the warm path *)
    cache_idle_ucs = false;
  }

let test_ws_recorded_then_prefaulted () =
  with_node ~config:prefault_config (fun env node ->
      ignore (expect_ok (N.invoke node nop_fn ~args:"{}"));
      let snap =
        match N.function_snapshot node "nop" with
        | Some s -> s
        | None -> Alcotest.fail "no function snapshot"
      in
      Alcotest.(check bool) "no working set before first warm run" true
        (Seuss.Snapshot.working_set snap = None);
      let r1, p1 = expect_ok (N.invoke node nop_fn ~args:"{}") in
      Alcotest.(check bool) "recording run is warm" true (p1 = N.Warm);
      let ws =
        match Seuss.Snapshot.working_set snap with
        | Some ws -> ws
        | None -> Alcotest.fail "working set not recorded"
      in
      Alcotest.(check bool) "working set is substantial" true
        (List.length ws > 100);
      Alcotest.(check bool) "record event emitted" true
        (List.exists
           (fun r ->
             match r.Obs.Log.ev with
             | Obs.Event.Ws_record { snapshot; pages } ->
                 snapshot = snap.Seuss.Snapshot.name
                 && pages = List.length ws
             | _ -> false)
           (Obs.Log.records env.Seuss.Osenv.log));
      (* The next warm deploy replays the set: one batch, and the
         demand-fault telemetry goes quiet. *)
      let prefaults = ref 0 and cow_events = ref 0 in
      Obs.Log.subscribe env.Seuss.Osenv.log (fun r ->
          match r.Obs.Log.ev with
          | Obs.Event.Ws_prefault _ -> incr prefaults
          | Obs.Event.Cow_fault _ -> incr cow_events
          | _ -> ());
      let r2, p2 = expect_ok (N.invoke node nop_fn ~args:"{}") in
      Alcotest.(check bool) "prefaulted run is warm" true (p2 = N.Warm);
      Alcotest.(check int) "one prefault batch" 1 !prefaults;
      Alcotest.(check int) "no demand COW events" 0 !cow_events;
      Alcotest.(check string) "same reply either way" r1 r2)

let test_prefault_off_is_inert () =
  with_node
    ~config:{ Seuss.Config.default with Seuss.Config.cache_idle_ucs = false }
    (fun env node ->
      ignore (expect_ok (N.invoke node nop_fn ~args:"{}"));
      ignore (expect_ok (N.invoke node nop_fn ~args:"{}"));
      ignore (expect_ok (N.invoke node nop_fn ~args:"{}"));
      (match N.function_snapshot node "nop" with
      | Some snap ->
          Alcotest.(check bool) "no working set recorded" true
            (Seuss.Snapshot.working_set snap = None)
      | None -> Alcotest.fail "no function snapshot");
      Alcotest.(check bool) "no ws events emitted" true
        (not
           (List.exists
              (fun r ->
                match r.Obs.Log.ev with
                | Obs.Event.Ws_record _ | Obs.Event.Ws_prefault _ -> true
                | _ -> false)
              (Obs.Log.records env.Seuss.Osenv.log))))

(* {1 seussprof: timeline sampler, sampled trace capture, ring drops} *)

let invoke_k node k =
  ignore
    (N.invoke node
       (fn
          ~id:(Printf.sprintf "fn-%d" k)
          (Printf.sprintf "function main(args) { return {fn: %d}; }" k))
       ~args:"{}")

(* The sampler records gauges while the workload runs, then terminates
   itself once the engine drains — Sim.Engine.run returning at all is
   the quiescence half of the assertion. *)
let test_timeline_sampler_emits_and_quiesces () =
  let engine = Sim.Engine.create ~seed:11L () in
  let env = Seuss.Osenv.create ~budget_bytes:(gib 8) engine in
  let samples = ref [] in
  Sim.Engine.spawn engine ~name:"experiment" (fun () ->
      let node = N.create env in
      N.start node;
      Seuss.Timeline.start ~period:0.05 node;
      for k = 0 to 5 do
        invoke_k node (k mod 2);
        Sim.Engine.sleep 0.1
      done;
      samples :=
        Seuss.Timeline.samples_of_records (Obs.Log.records env.Seuss.Osenv.log));
  Sim.Engine.run engine;
  Alcotest.(check bool) "samples recorded" true (List.length !samples > 2);
  List.iter
    (fun (s : Seuss.Timeline.sample) ->
      Alcotest.(check bool) "free bytes positive" true (s.free_bytes > 0L);
      Alcotest.(check bool) "gauges non-negative" true
        (s.run_queue >= 0 && s.in_flight >= 0 && s.idle_ucs >= 0
       && s.cached_snapshots >= 0 && s.stuck_waiters >= 0))
    !samples;
  let times = List.map (fun (s : Seuss.Timeline.sample) -> s.time) !samples in
  Alcotest.(check bool) "sample times strictly increase" true
    (List.for_all2 ( < ) times (List.tl times @ [ infinity ]));
  let rendering = Seuss.Timeline.render !samples in
  Alcotest.(check bool) "render draws both canvases" true
    (String.length rendering > 0)

let test_timeline_unarmed_emits_nothing () =
  let records =
    with_node (fun env node ->
        for k = 0 to 5 do
          invoke_k node k
        done;
        Obs.Log.records env.Seuss.Osenv.log)
  in
  Alcotest.(check int) "no timeline samples" 0
    (List.length (Seuss.Timeline.samples_of_records records))

let test_trace_capture_every_nth () =
  let engine = Sim.Engine.create ~seed:11L () in
  let env = Seuss.Osenv.create ~budget_bytes:(gib 8) engine in
  let captured = ref [] and sampling = ref None in
  Sim.Engine.spawn engine ~name:"experiment" (fun () ->
      let node = N.create ~trace_sample:2 env in
      N.start node;
      sampling := N.trace_sampling node;
      for k = 1 to 6 do
        invoke_k node k
      done;
      captured := N.captured_traces node);
  Sim.Engine.run engine;
  Alcotest.(check (option int)) "armed at 1/2" (Some 2) !sampling;
  Alcotest.(check int) "every 2nd of 6 invocations captured" 3
    (List.length !captured);
  List.iter
    (fun (c : N.capture) ->
      Alcotest.(check bool) "capture names its function" true
        (String.length c.N.c_fn > 0);
      Alcotest.(check bool) "span tree non-empty" true (c.N.c_spans <> []);
      (* The root span is the invocation wrapper, parentless. *)
      match c.N.c_spans with
      | root :: _ ->
          Alcotest.(check (option int)) "root has no parent" None
            root.Sim.Trace.parent
      | [] -> ())
    !captured;
  (* The export path the CLI uses: captures encode to a Chrome document
     that parses and carries the required fields. *)
  let labelled =
    List.map (fun (c : N.capture) -> (c.N.c_fn, c.N.c_spans)) !captured
  in
  match Obs.Json.of_string (Seuss.Traceout.chrome_string labelled) with
  | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  | Ok (Obs.Json.Obj kvs) -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (Obs.Json.List rows) ->
          Alcotest.(check bool) "has rows" true (List.length rows > 0);
          List.iter
            (fun row ->
              match row with
              | Obs.Json.Obj fields ->
                  List.iter
                    (fun key ->
                      if not (List.mem_assoc key fields) then
                        Alcotest.failf "row lost required field %s" key)
                    [ "name"; "ph"; "ts"; "pid" ]
              | _ -> Alcotest.fail "row is not an object")
            rows
      | _ -> Alcotest.fail "no traceEvents")
  | Ok _ -> Alcotest.fail "chrome document is not an object"

let test_unsampled_node_captures_nothing () =
  with_node (fun _env node ->
      for k = 1 to 6 do
        invoke_k node k
      done;
      Alcotest.(check (option int)) "not armed" None (N.trace_sampling node);
      Alcotest.(check int) "nothing captured" 0
        (List.length (N.captured_traces node)))

(* Ring evictions are first-class: the registry counter tracks exactly
   what the ring dropped, so dashboards can warn instead of silently
   reading a truncated log. *)
let test_ring_drops_surface_in_metrics () =
  let engine = Sim.Engine.create ~seed:11L () in
  let env = Seuss.Osenv.create ~budget_bytes:(gib 8) ~log_capacity:4 engine in
  Sim.Engine.spawn engine ~name:"experiment" (fun () ->
      let node = N.create env in
      N.start node;
      for k = 1 to 8 do
        invoke_k node k
      done);
  Sim.Engine.run engine;
  let log = env.Seuss.Osenv.log in
  let dropped = Obs.Log.dropped log in
  Alcotest.(check bool) "tiny ring overflowed" true (dropped > 0);
  Alcotest.(check int) "counter mirrors the ring's drop count" dropped
    (Obs.Metrics.value
       (Obs.Metrics.counter env.Seuss.Osenv.metrics "obs_events_dropped_total"))

(* {1 Ownership census (SEUSS_OWN)} *)

(* A small mixed workload (cold + hot per function), optionally followed
   by a deliberately leaked UC: deployed from the base snapshot and then
   dropped on the floor — never destroyed, never cached. *)
let census_run ~own ~leak =
  let engine = Sim.Engine.create ~seed:11L ~own () in
  let env = Seuss.Osenv.create ~budget_bytes:(gib 8) engine in
  let leaks = ref [] in
  let node_ref = ref None in
  Sim.Engine.spawn engine ~name:"experiment" (fun () ->
      let node = N.create env in
      N.arm_census ~name:"census-node"
        ~on_leak:(fun c -> leaks := c :: !leaks)
        node;
      N.start node;
      node_ref := Some node;
      for k = 1 to 3 do
        let f =
          fn
            ~id:(Printf.sprintf "own-%d" k)
            "function main(args) { return {}; }"
        in
        ignore (expect_ok (N.invoke node f ~args:"{}"));
        ignore (expect_ok (N.invoke node f ~args:"{}"))
      done;
      if leak then
        match N.base_snapshot node Unikernel.Image.Node with
        | Some base -> ignore (Seuss.Uc.deploy env base)
        | None -> Alcotest.fail "no base snapshot to leak from");
  Sim.Engine.run engine;
  let node =
    match !node_ref with
    | Some n -> n
    | None -> Alcotest.fail "simulation did not complete"
  in
  let san_leaks =
    List.filter
      (fun (r : Obs.Log.record) ->
        match r.Obs.Log.ev with Obs.Event.San_leak _ -> true | _ -> false)
      (Obs.Log.records env.Seuss.Osenv.log)
  in
  (node, !leaks, san_leaks)

let test_census_clean_when_armed () =
  let node, leaks, san_leaks = census_run ~own:true ~leak:false in
  Alcotest.(check int) "no leak callbacks" 0 (List.length leaks);
  Alcotest.(check int) "no San_leak events" 0 (List.length san_leaks);
  (* The census itself agrees at quiescence: the node's caches account
     for every frame, snapshot reference, pin window and UC. *)
  let c = N.census node in
  Alcotest.(check bool) "census all-zero" true (N.census_clean c);
  Alcotest.(check int) "no pin window left open" 0 c.N.pinned_windows

let test_census_detects_planted_leak () =
  let _node, leaks, san_leaks = census_run ~own:true ~leak:true in
  (match leaks with
  | [ c ] ->
      Alcotest.(check int) "exactly the dropped UC" 1 c.N.leaked_ucs;
      Alcotest.(check bool) "its base reference is unaccounted" true
        (c.N.snapshot_ref_mismatch >= 1)
  | l -> Alcotest.failf "expected one leak callback, got %d" (List.length l));
  match san_leaks with
  | [ { Obs.Log.ev = Obs.Event.San_leak { node; ucs; _ }; _ } ] ->
      Alcotest.(check string) "event names the node" "census-node" node;
      Alcotest.(check int) "event carries the UC count" 1 ucs
  | l -> Alcotest.failf "expected one San_leak event, got %d" (List.length l)

let with_own_env value f =
  (* "" reads as unset (Unix offers no unsetenv). *)
  Unix.putenv Sim.Engine.own_env_var value;
  Fun.protect ~finally:(fun () -> Unix.putenv Sim.Engine.own_env_var "") f

let test_experiments_zero_leaks_armed () =
  (* Every shipped experiment finishes with all resources accounted for:
     armed runs report an empty leak list for each node they spin up. *)
  with_own_env "1" (fun () ->
      let check_run name run =
        ignore (run ());
        Alcotest.(check int)
          (name ^ ": no leaked resources")
          0
          (List.length (Experiments.Harness.last_leaked_resources ()))
      in
      check_run "fig4" (fun () ->
          Experiments.Fig4.run ~set_sizes:[ 16 ] ~client_threads:8 ~seed:7L ());
      check_run "chaos" (fun () ->
          Experiments.Fig_chaos.run ~nodes:2 ~functions:5 ~calls:20
            ~rates:[ 0.0; 0.05 ] ~seed:7L ());
      check_run "reap" (fun () ->
          Experiments.Fig_reap.run ~functions:4 ~rounds:5 ~seed:7L ()))

let test_experiments_own_zero_is_unset () =
  (* SEUSS_OWN=0 must behave exactly like the variable being absent. *)
  with_own_env "0" (fun () ->
      ignore
        (Experiments.Fig4.run ~set_sizes:[ 16 ] ~client_threads:8 ~seed:7L ());
      Alcotest.(check int) "fig4 with SEUSS_OWN=0: census stays dark" 0
        (List.length (Experiments.Harness.last_leaked_resources ())))

let test_census_unarmed_is_silent () =
  (* Same planted leak, census unarmed: nothing observes, nothing emits —
     the hook must be observation-only. *)
  let node, leaks, san_leaks = census_run ~own:false ~leak:true in
  Alcotest.(check int) "no leak callbacks" 0 (List.length leaks);
  Alcotest.(check int) "no San_leak events" 0 (List.length san_leaks);
  (* The leak is still there — only the armed run reports it. *)
  let c = N.census node in
  Alcotest.(check int) "census (queried directly) still sees it" 1
    c.N.leaked_ucs

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "seuss"
    [
      ( "startup",
        [
          case "base snapshot" test_start_builds_base_snapshot;
          case "ao grows base" test_ao_grows_base_snapshot;
        ] );
      ( "paths",
        [
          case "cold warm hot" test_cold_then_warm_then_hot;
          case "fn snapshot cached once" test_function_snapshot_cached_once;
          case "functions isolated" test_distinct_functions_isolated;
          case "compile error" test_compile_error_reported;
          case "runtime error" test_runtime_error_reported;
          case "args flow" test_args_flow_through;
        ] );
      ( "ao",
        [
          case "latency ladder" test_ao_latency_ladder;
          case "fn snapshot shrinks" test_ao_shrinks_function_snapshot;
        ] );
      ( "snapshots",
        [
          case "dependents" test_snapshot_dependents;
          case "deploy references" test_uc_deploy_references_snapshot;
          case "deleted rejected" test_deleted_snapshot_rejected;
          case "sharing example" test_snapshot_sharing_example;
        ] );
      ( "memory",
        [
          case "idle footprint" test_idle_uc_footprint_small;
          case "oom reclaim" test_oom_reclaims_idle_ucs;
          case "caches disabled" test_cache_disabled_config;
        ] );
      ( "runtimes",
        [
          case "python" test_python_runtime;
          case "missing runtime" test_missing_runtime_errors;
        ] );
      ( "snapshot_cache",
        [
          case "bounded" test_snapshot_cache_bounded;
          case "eviction respects dependents" test_eviction_respects_dependents;
        ] );
      ( "stress",
        [
          QCheck_alcotest.to_alcotest node_stress;
          QCheck_alcotest.to_alcotest snapshot_stack_conservation;
          case "hot footprint bounded" test_hot_footprint_bounded;
        ] );
      ( "concurrency",
        [ case "cold stampede" test_concurrent_cold_same_function ] );
      ( "failures",
        [
          case "invoke timeout recovers" test_invoke_timeout_recovers;
          case "uc destroyed under connection" test_uc_destroyed_under_connection;
          case "guest oom surfaces" test_guest_oom_surfaces_as_error;
        ] );
      ( "drain",
        [
          case "dead uc destroy releases" test_dead_uc_destroy_releases;
          case "shutdown drains frames" test_node_shutdown_drains_frames;
        ] );
      ( "prefault",
        [
          case "ws recorded then prefaulted" test_ws_recorded_then_prefaulted;
          case "off is inert" test_prefault_off_is_inert;
        ] );
      ( "shim",
        [
          case "adds round trip" test_shim_adds_round_trip;
          case "serializes" test_shim_serializes;
        ] );
      ( "census",
        [
          case "armed clean run is all-zero" test_census_clean_when_armed;
          case "planted leak detected" test_census_detects_planted_leak;
          case "unarmed census is silent" test_census_unarmed_is_silent;
          case "shipped experiments leak-free armed"
            test_experiments_zero_leaks_armed;
          case "SEUSS_OWN=0 behaves as unset" test_experiments_own_zero_is_unset;
        ] );
      ( "seussprof",
        [
          case "timeline sampler emits and quiesces"
            test_timeline_sampler_emits_and_quiesces;
          case "unarmed timeline emits nothing" test_timeline_unarmed_emits_nothing;
          case "trace capture every nth" test_trace_capture_every_nth;
          case "unsampled node captures nothing" test_unsampled_node_captures_nothing;
          case "ring drops surface in metrics" test_ring_drops_surface_in_metrics;
        ] );
    ]
