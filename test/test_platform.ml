(* Tests for the OpenWhisk-like platform pieces: workloads, controller,
   the load-generation benchmark and the burst harness. Includes small
   end-to-end runs against both backends. *)

module C = Platform.Controller
module LG = Platform.Loadgen

let gib n = Int64.mul (Int64.of_int n) (Int64.of_int (Mem.Mconfig.mib 1024))

let in_sim ?(seed = 5L) body =
  let engine = Sim.Engine.create ~seed () in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"test" (fun () -> result := Some (body engine));
  Sim.Engine.run engine;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let register_io_server env =
  let io_listener = Net.Tcp.listener ~port:80 in
  Net.Http.serve ~listener:io_listener (fun _ ->
      Sim.Engine.sleep 0.25;
      Net.Http.ok "OK");
  Seuss.Osenv.register_host env "http://io-server" io_listener

let seuss_controller ?(budget_gib = 8) engine =
  let env = Seuss.Osenv.create ~budget_bytes:(gib budget_gib) engine in
  register_io_server env;
  let node = Seuss.Node.create env in
  Seuss.Node.start node;
  let shim = Seuss.Shim.create env node in
  C.create engine (C.Seuss_backend shim)

let linux_controller ?(budget_gib = 8) ?config engine =
  let env = Seuss.Osenv.create ~budget_bytes:(gib budget_gib) engine in
  register_io_server env;
  let node = Baselines.Linux_node.create ?config env in
  Baselines.Linux_node.start node;
  C.create engine (C.Linux_backend node)

(* {1 Workloads} *)

let test_workload_sources_compile () =
  List.iter
    (fun action ->
      let src = Platform.Workloads.source_of_action action in
      match Interp.Compile.compile src with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "workload source does not compile: %s" e)
    [
      Platform.Workloads.nop;
      Platform.Workloads.cpu_burst;
      Platform.Workloads.io_blocking ~url:"http://io-server/x";
    ]

(* {1 Loadgen} *)

let test_loadgen_counts_and_determinism () =
  let run_once () =
    in_sim (fun _engine ->
        let invoke ~fn_index =
          Sim.Engine.sleep (0.001 *. float_of_int (1 + (fn_index mod 3)));
          if fn_index = 7 then Error "boom" else Ok ()
        in
        LG.run ~invoke
          {
            LG.invocations = 200;
            fn_set_size = 10;
            client_threads = 4;
            seed = 9L;
            warmup = 0;
          })
  in
  let r1 = run_once () and r2 = run_once () in
  Alcotest.(check int) "successes + errors = N" 200
    (Stats.Summary.count r1.LG.latencies + r1.LG.errors);
  Alcotest.(check int) "errors are fn 7's 20 sends" 20 r1.LG.errors;
  Alcotest.(check (float 1e-9)) "deterministic wall time" r1.LG.wall_time
    r2.LG.wall_time;
  Alcotest.(check bool) "throughput positive" true (r1.LG.throughput > 0.0)

let test_loadgen_concurrency_bounded () =
  in_sim (fun _engine ->
      let inflight = ref 0 and peak = ref 0 in
      let invoke ~fn_index:_ =
        incr inflight;
        if !inflight > !peak then peak := !inflight;
        Sim.Engine.sleep 0.01;
        decr inflight;
        Ok ()
      in
      ignore
        (LG.run ~invoke
           {
             LG.invocations = 100;
             fn_set_size = 5;
             client_threads = 8;
             seed = 1L;
             warmup = 0;
           });
      Alcotest.(check int) "at most C in flight" 8 !peak)

let test_loadgen_warmup_excluded () =
  in_sim (fun _engine ->
      let r =
        LG.run
          ~invoke:(fun ~fn_index:_ ->
            Sim.Engine.sleep 0.001;
            Ok ())
          {
            LG.invocations = 50;
            fn_set_size = 5;
            client_threads = 2;
            seed = 1L;
            warmup = 10;
          }
      in
      Alcotest.(check int) "only measured portion recorded" 40
        (Stats.Summary.count r.LG.latencies))

let test_loadgen_rejects_bad_config () =
  Alcotest.(check bool) "warmup >= N rejected" true
    (in_sim (fun _ ->
         match
           LG.run
             ~invoke:(fun ~fn_index:_ -> Ok ())
             {
               LG.invocations = 5;
               fn_set_size = 1;
               client_threads = 1;
               seed = 1L;
               warmup = 5;
             }
         with
         | _ -> false
         | exception Invalid_argument _ -> true))

let test_loadgen_order_covers_all_functions () =
  (* N invocations over M functions: each function appears floor(N/M) or
     ceil(N/M) times in the send order. *)
  in_sim (fun _engine ->
      let counts = Hashtbl.create 16 in
      ignore
        (LG.run
           ~invoke:(fun ~fn_index ->
             Hashtbl.replace counts fn_index
               (1 + Option.value (Hashtbl.find_opt counts fn_index) ~default:0);
             Ok ())
           {
             LG.invocations = 100;
             fn_set_size = 7;
             client_threads = 3;
             seed = 4L;
             warmup = 0;
           });
      Alcotest.(check int) "all functions hit" 7 (Hashtbl.length counts);
      Hashtbl.iter
        (fun _ c ->
          Alcotest.(check bool) "balanced" true (c = 100 / 7 || c = (100 / 7) + 1))
        counts)

(* {1 Controller + backends end to end} *)

let test_seuss_end_to_end () =
  in_sim (fun engine ->
      let ctl = seuss_controller engine in
      let spec = { C.fn_id = "e2e"; action = Platform.Workloads.nop } in
      Alcotest.(check bool) "first ok" true (C.invoke ctl spec = Ok ());
      Alcotest.(check bool) "second ok" true (C.invoke ctl spec = Ok ());
      Alcotest.(check int) "counted" 2 (C.requests ctl))

let test_linux_end_to_end () =
  in_sim (fun engine ->
      let ctl = linux_controller engine in
      let spec = { C.fn_id = "e2e"; action = Platform.Workloads.nop } in
      Alcotest.(check bool) "first ok" true (C.invoke ctl spec = Ok ());
      Alcotest.(check bool) "second ok" true (C.invoke ctl spec = Ok ()))

let test_hot_path_linux_faster_than_seuss () =
  (* Figure 4 inset: at small set sizes (all-hot) Linux beats SEUSS
     because of the shim hop. *)
  let hot_latency make =
    in_sim (fun engine ->
        let ctl = make engine in
        let spec = { C.fn_id = "hot"; action = Platform.Workloads.nop } in
        ignore (C.invoke ctl spec);
        let t0 = Sim.Engine.now engine in
        Alcotest.(check bool) "ok" true (C.invoke ctl spec = Ok ());
        Sim.Engine.now engine -. t0)
  in
  let seuss = hot_latency (fun e -> seuss_controller e) in
  let linux = hot_latency (fun e -> linux_controller e) in
  Alcotest.(check bool) "linux hot beats seuss hot" true (linux < seuss);
  Alcotest.(check bool) "gap is the ~8 ms shim hop" true
    (seuss -. linux > 5e-3 && seuss -. linux < 12e-3)

let test_unique_function_throughput_seuss_wins () =
  (* Figure 4 right side in miniature: every invocation hits a new
     function. SEUSS pays a ~7.5 ms snapshot cold start; Linux pays a
     container creation. *)
  let throughput make =
    in_sim (fun engine ->
        let ctl = make engine in
        let r =
          LG.run
            ~invoke:(fun ~fn_index ->
              C.invoke ctl
                {
                  C.fn_id = Printf.sprintf "uniq-%d" fn_index;
                  action = Platform.Workloads.nop;
                })
            {
              LG.invocations = 64;
              fn_set_size = 64;
              client_threads = 8;
              seed = 2L;
              warmup = 0;
            }
        in
        r.LG.throughput)
  in
  let seuss = throughput (fun e -> seuss_controller e) in
  let linux = throughput (fun e -> linux_controller e) in
  Alcotest.(check bool) "seuss much faster on unique work" true
    (seuss > 5.0 *. linux)

(* {1 Metrics} *)

let test_metrics_sampler () =
  in_sim (fun engine ->
      let env = Seuss.Osenv.create ~budget_bytes:(gib 8) engine in
      register_io_server env;
      let node = Seuss.Node.create env in
      Seuss.Node.start node;
      let m = Platform.Metrics.watch ~interval:0.5 node in
      for i = 1 to 5 do
        ignore
          (C.invoke
             (C.create engine (C.Seuss_backend (Seuss.Shim.create env node)))
             { C.fn_id = Printf.sprintf "m-%d" i; action = Platform.Workloads.nop });
        Sim.Engine.sleep 0.6
      done;
      let samples = Platform.Metrics.stop m in
      Alcotest.(check bool) "several samples" true (List.length samples >= 5);
      let last = List.nth samples (List.length samples - 1) in
      Alcotest.(check int) "cold count visible" 5 last.Platform.Metrics.cold;
      Alcotest.(check bool) "snapshots visible" true
        (last.Platform.Metrics.fn_snapshots = 5);
      (* Samples are time-ordered and free memory decreased. *)
      let first = List.hd samples in
      Alcotest.(check bool) "time ordered" true
        (last.Platform.Metrics.time > first.Platform.Metrics.time);
      Alcotest.(check bool) "memory consumed" true
        (Int64.compare last.Platform.Metrics.free_bytes
           first.Platform.Metrics.free_bytes
        < 0);
      Alcotest.(check bool) "renders" true
        (String.length (Platform.Metrics.render samples) > 50))

(* Regression: stopping a watch before the first interval elapses must
   still yield the final sample, not an empty list. *)
let test_metrics_stop_before_first_interval () =
  in_sim (fun engine ->
      let env = Seuss.Osenv.create ~budget_bytes:(gib 8) engine in
      register_io_server env;
      let node = Seuss.Node.create env in
      Seuss.Node.start node;
      let m = Platform.Metrics.watch ~interval:60.0 node in
      ignore
        (C.invoke
           (C.create engine (C.Seuss_backend (Seuss.Shim.create env node)))
           { C.fn_id = "early-stop"; action = Platform.Workloads.nop });
      let samples = Platform.Metrics.stop m in
      Alcotest.(check bool) "at least one sample" true (List.length samples >= 1);
      let last = List.nth samples (List.length samples - 1) in
      Alcotest.(check int) "final sample sees the invocation" 1
        last.Platform.Metrics.cold;
      (* Stopping twice does not grow the list. *)
      Alcotest.(check int) "stop is idempotent"
        (List.length samples)
        (List.length (Platform.Metrics.stop m)))

(* {1 Burst harness} *)

let test_burst_on_seuss_no_errors () =
  in_sim (fun engine ->
      let ctl = seuss_controller engine in
      let cfg =
        {
          Platform.Burst.default with
          Platform.Burst.duration = 40.0;
          background_threads = 16;
          background_rate = 10.0;
          burst_period = 10.0;
          burst_size = 8;
          first_burst_at = 5.0;
        }
      in
      let r = Platform.Burst.run ~invoke:(fun spec -> C.invoke ctl spec) cfg in
      Alcotest.(check int) "no background errors" 0 r.Platform.Burst.background_errors;
      Alcotest.(check int) "no burst errors" 0 r.Platform.Burst.burst_errors;
      Alcotest.(check bool) "bursts fired" true
        (Stats.Series.length r.Platform.Burst.bursts >= 24);
      (* Background rate: ~10 rps for 40 s. *)
      let n_bg = Stats.Series.length r.Platform.Burst.background in
      Alcotest.(check bool) "background volume plausible" true
        (n_bg > 300 && n_bg <= 410))

let test_burst_io_latency_dominated_by_block () =
  in_sim (fun engine ->
      let ctl = seuss_controller engine in
      let cfg =
        {
          Platform.Burst.default with
          Platform.Burst.duration = 20.0;
          background_threads = 8;
          background_rate = 5.0;
          burst_period = 100.0 (* effectively no bursts *);
          first_burst_at = 50.0;
          burst_size = 1;
        }
      in
      let r = Platform.Burst.run ~invoke:(fun spec -> C.invoke ctl spec) cfg in
      let pts = Stats.Series.points r.Platform.Burst.background in
      Alcotest.(check bool) "have background points" true (Array.length pts > 50);
      (* Steady-state IO latency = 250 ms block + platform overheads. *)
      let steady =
        Array.to_list pts |> List.filter (fun p -> p.Stats.Series.time > 5.0)
      in
      List.iter
        (fun p ->
          Alcotest.(check bool) "latency >= block" true
            (p.Stats.Series.value >= 0.25))
        steady)

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "platform"
    [
      ("workloads", [ case "sources compile" test_workload_sources_compile ]);
      ( "loadgen",
        [
          case "counts and determinism" test_loadgen_counts_and_determinism;
          case "concurrency bounded" test_loadgen_concurrency_bounded;
          case "warmup excluded" test_loadgen_warmup_excluded;
          case "bad config rejected" test_loadgen_rejects_bad_config;
          case "order covers all" test_loadgen_order_covers_all_functions;
        ] );
      ( "end_to_end",
        [
          case "seuss" test_seuss_end_to_end;
          case "linux" test_linux_end_to_end;
          case "hot: linux beats seuss" test_hot_path_linux_faster_than_seuss;
          case "unique: seuss wins big" test_unique_function_throughput_seuss_wins;
        ] );
      ( "metrics",
        [
          case "sampler" test_metrics_sampler;
          case "stop before first interval" test_metrics_stop_before_first_interval;
        ] );
      ( "burst",
        [
          case "seuss handles bursts" test_burst_on_seuss_no_errors;
          case "io latency floor" test_burst_io_latency_dominated_by_block;
        ] );
    ]
