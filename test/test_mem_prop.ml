(* Randomized property battery for the mem substrate, driven by the
   simulator's own splitmix64 stream (Sim.Prng) rather than QCheck
   generators: the schedules are a deterministic function of the seed,
   so a failure report names the exact (seed, schedule, step) to replay.

   Two families:

   - schedules: random interleavings of touch_read / touch_write /
     write_range / freeze / COW-clone / release / prefault over a family
     of address spaces, asserting after EVERY operation that the O(1)
     counters match full page-table walks and that the frame allocator's
     refcounts are exactly the ones implied by the live tables
     (Page_table.expected_refcounts);

   - differential: a batched prefault followed by an invocation's writes
     leaves an address space byte-identical (same frames, same flags,
     same counters) to pure demand faulting of the same vpns — only the
     fault-hook activity differs.

   SEUSS_PROP_SEED overrides the base seed (CI rotates it). *)

module F = Mem.Frame
module PT = Mem.Page_table
module AS = Mem.Addr_space

let base_seed =
  match Sys.getenv_opt "SEUSS_PROP_SEED" with
  | None -> 17L
  | Some s -> (
      match Int64.of_string_opt s with
      | Some v -> v
      | None ->
          Printf.eprintf "test_mem_prop: malformed SEUSS_PROP_SEED %S\n" s;
          17L)

let schedules = 200
let mib n = Int64.of_int (Mem.Mconfig.mib n)

(* {1 Invariant checks} *)

let check_counters ~ctx space =
  let m = AS.mapped_pages space and ms = AS.mapped_pages_slow space in
  if m <> ms then
    Alcotest.failf "%s: mapped_pages %d <> slow walk %d" ctx m ms;
  let d = AS.dirty_pages space and ds = AS.dirty_pages_slow space in
  if d <> ds then Alcotest.failf "%s: dirty_pages %d <> slow walk %d" ctx d ds

let check_refcounts ~ctx frames spaces =
  let expected = PT.expected_refcounts (List.map AS.table spaces) in
  let live = Hashtbl.length expected and used = F.used_frames frames in
  if live <> used then
    Alcotest.failf "%s: tables reference %d frames, allocator holds %d" ctx
      live used;
  Hashtbl.iter
    (fun fr rc ->
      let actual = F.refcount frames fr in
      if actual <> rc then
        Alcotest.failf "%s: frame %d refcount %d, tables imply %d" ctx fr
          actual rc)
    expected

let check_invariants ~ctx frames spaces =
  List.iter (check_counters ~ctx) spaces;
  check_refcounts ~ctx frames spaces

(* {1 Random schedules} *)

let max_spaces = 6
let vpn_span = 2048

(* One schedule: a fresh allocator, a frozen root, then [steps] random
   operations over a growing/shrinking family of spaces, with the full
   invariant set checked after every single operation. *)
let run_schedule ~seed ~sched =
  let prng = Sim.Prng.create (Int64.add seed (Int64.of_int sched)) in
  let frames = F.create ~budget_bytes:(mib 256) () in
  let root = AS.create frames in
  ignore (AS.write_range root ~vpn:0 ~pages:64);
  AS.freeze root;
  let spaces = ref [ root ] in
  let pick () =
    List.nth !spaces (Sim.Prng.int prng (List.length !spaces))
  in
  let steps = 24 + Sim.Prng.int prng 25 in
  for step = 1 to steps do
    let ctx = Printf.sprintf "seed %Ld sched %d step %d" seed sched step in
    (match Sim.Prng.int prng 100 with
    | r when r < 30 ->
        ignore (AS.touch_write (pick ()) ~vpn:(Sim.Prng.int prng vpn_span))
    | r when r < 40 -> AS.touch_read (pick ()) ~vpn:(Sim.Prng.int prng vpn_span)
    | r when r < 55 ->
        ignore
          (AS.write_range (pick ())
             ~vpn:(Sim.Prng.int prng (vpn_span - 16))
             ~pages:(1 + Sim.Prng.int prng 16))
    | r when r < 63 -> AS.freeze (pick ())
    | r when r < 78 ->
        if List.length !spaces < max_spaces then begin
          let parent = pick () in
          AS.freeze parent;
          spaces := AS.of_table frames (AS.table parent) :: !spaces
        end
    | r when r < 88 -> (
        (* Release any member — including a parent whose clones are
           still live: shared leaves must keep their frames alive. *)
        match !spaces with
        | _ :: _ :: _ ->
            let victim = pick () in
            AS.release victim;
            spaces := List.filter (fun s -> s != victim) !spaces
        | _ -> ())
    | _ ->
        let space = pick () in
        let n = 1 + Sim.Prng.int prng 32 in
        let vpns = List.init n (fun _ -> Sim.Prng.int prng vpn_span) in
        ignore (AS.prefault space ~vpns));
    check_invariants ~ctx frames !spaces
  done;
  List.iter AS.release !spaces;
  let used = F.used_frames frames in
  if used <> 0 then
    Alcotest.failf "seed %Ld sched %d: %d frames leaked after full release"
      seed sched used

let test_random_schedules () =
  for sched = 0 to schedules - 1 do
    run_schedule ~seed:base_seed ~sched
  done

(* {1 Differential: prefault vs demand faulting} *)

(* Identical worlds: same allocator budget, same frozen parent, so the
   allocation order — and therefore every frame id — is a deterministic
   function of the operations applied. *)
let build_universe () =
  let frames = F.create ~budget_bytes:(mib 64) () in
  let parent = AS.create frames in
  ignore (AS.write_range parent ~vpn:0 ~pages:96);
  AS.freeze parent;
  let child = AS.of_table frames (AS.table parent) in
  (frames, parent, child)

let entries_of space =
  List.sort compare
    (PT.fold_present (AS.table space) ~init:[] ~f:(fun acc ~vpn e ->
         ( vpn,
           PT.Entry.frame e,
           PT.Entry.writable e,
           PT.Entry.cow e,
           PT.Entry.dirty e,
           PT.Entry.accessed e )
         :: acc))

let state_of space =
  ( AS.mapped_pages space,
    AS.dirty_pages space,
    AS.lifetime_zero_fills space,
    AS.lifetime_cow_copies space,
    entries_of space )

let test_prefault_matches_demand () =
  let prng = Sim.Prng.create (Int64.logxor base_seed 0xD1FFL) in
  for round = 1 to 60 do
    (* A working set mixing COW hits (parent range) and fresh pages,
       duplicates allowed, plus follow-up invocation writes. *)
    let ws =
      List.init
        (1 + Sim.Prng.int prng 48)
        (fun _ -> Sim.Prng.int prng 160)
    in
    let follow_ups =
      List.init
        (Sim.Prng.int prng 24)
        (fun _ -> Sim.Prng.int prng 200)
    in
    (* Arm 1: pure demand faulting, counting hook activity. *)
    let frames_d, parent_d, demand = build_universe () in
    let demand_faults = ref 0 in
    AS.set_fault_hook demand (fun _ -> incr demand_faults);
    List.iter (fun vpn -> ignore (AS.touch_write demand ~vpn)) ws;
    List.iter (fun vpn -> ignore (AS.touch_write demand ~vpn)) follow_ups;
    (* Arm 2: batched prefault of the same set, then the same writes. *)
    let frames_p, parent_p, prefaulted = build_universe () in
    let prefault_faults = ref 0 in
    AS.set_fault_hook prefaulted (fun _ -> incr prefault_faults);
    let stats = AS.prefault prefaulted ~vpns:ws in
    List.iter (fun vpn -> ignore (AS.touch_write prefaulted ~vpn)) follow_ups;
    if state_of demand <> state_of prefaulted then
      Alcotest.failf
        "round %d: prefaulted space diverged from demand-faulted twin" round;
    (* Only the fault-count telemetry may differ: the hook never fires
       for the batch, so the demand arm saw exactly the batch's installs
       more than the prefault arm did. *)
    let delta = stats.AS.prefault_zero_fills + stats.AS.prefault_cow_copies in
    if !demand_faults - !prefault_faults <> delta then
      Alcotest.failf "round %d: fault-count delta %d, prefault installed %d"
        round
        (!demand_faults - !prefault_faults)
        delta;
    Alcotest.(check int)
      "requested counts every vpn" (List.length ws) stats.AS.requested;
    (* Both worlds drain to zero. *)
    AS.release demand;
    AS.release parent_d;
    AS.release prefaulted;
    AS.release parent_p;
    Alcotest.(check int) "demand world drained" 0 (F.used_frames frames_d);
    Alcotest.(check int) "prefault world drained" 0 (F.used_frames frames_p)
  done

let test_prefault_rejects_read_only () =
  let frames = F.create ~budget_bytes:(mib 4) () in
  let space = AS.create frames in
  let fr = F.alloc frames in
  PT.set (AS.table space) ~vpn:7
    (PT.Entry.make ~frame:fr ~writable:false ~cow:false ~dirty:false
       ~accessed:false);
  Alcotest.(check bool) "protection violation raises" true
    (match AS.prefault space ~vpns:[ 7 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* {1 Trace recording} *)

let test_trace_records_fault_order () =
  let frames, parent, child = build_universe () in
  AS.start_trace child;
  Alcotest.(check bool) "armed" true (AS.tracing child);
  ignore (AS.touch_write child ~vpn:120);
  (* no fault on repeat *)
  ignore (AS.touch_write child ~vpn:120);
  ignore (AS.touch_write child ~vpn:3);
  ignore (AS.touch_write child ~vpn:777);
  Alcotest.(check (list int))
    "faulted vpns in order" [ 120; 3; 777 ] (AS.take_trace child);
  Alcotest.(check bool) "disarmed" false (AS.tracing child);
  Alcotest.(check (list int)) "empty when unarmed" [] (AS.take_trace child);
  AS.release child;
  AS.release parent;
  ignore frames

(* {1 Release with live COW clones (refcount drain)} *)

let test_release_parent_under_live_clones () =
  let frames = F.create ~budget_bytes:(mib 64) () in
  let parent = AS.create frames in
  ignore (AS.write_range parent ~vpn:0 ~pages:64);
  AS.freeze parent;
  let c1 = AS.of_table frames (AS.table parent)
  and c2 = AS.of_table frames (AS.table parent) in
  ignore (AS.write_range c1 ~vpn:0 ~pages:8);
  ignore (AS.write_range c2 ~vpn:32 ~pages:8);
  (* Drop the parent first: everything the clones share must survive. *)
  AS.release parent;
  check_invariants ~ctx:"after parent release" frames [ c1; c2 ];
  ignore (AS.touch_write c1 ~vpn:40);
  ignore (AS.touch_write c2 ~vpn:4);
  check_invariants ~ctx:"after post-release writes" frames [ c1; c2 ];
  AS.release c1;
  check_invariants ~ctx:"after c1 release" frames [ c2 ];
  AS.release c2;
  Alcotest.(check int) "all frames drained" 0 (F.used_frames frames)

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "mem_prop"
    [
      ( "schedules",
        [
          case
            (Printf.sprintf "%d random schedules (seed %Ld)" schedules
               base_seed)
            test_random_schedules;
        ] );
      ( "differential",
        [
          case "prefault == demand faulting" test_prefault_matches_demand;
          case "read-only page rejected" test_prefault_rejects_read_only;
        ] );
      ( "trace",
        [ case "records fault order once" test_trace_records_fault_order ] );
      ( "drain",
        [
          case "parent release under live clones"
            test_release_parent_under_live_clones;
        ] );
    ]
