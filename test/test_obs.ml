(* Tests for the observability layer: JSON codec, event ring, the event
   log (JSONL round-trip), the metrics registry and the per-phase
   breakdown aggregator — plus an end-to-end check that a real node
   workload produces a parseable event stream. *)

let contains needle hay =
  let n = String.length needle and len = String.length hay in
  let rec go i = i + n <= len && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* {1 Json} *)

let test_json_roundtrip () =
  let samples =
    [
      Obs.Json.Null;
      Obs.Json.Bool true;
      Obs.Json.Int (-42);
      Obs.Json.Float 2.9742431176;
      Obs.Json.Float 120262656.0;
      Obs.Json.String "needs \"escaping\"\n\ttoo";
      Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Null; Obs.Json.Bool false ];
      Obs.Json.Obj
        [ ("a", Obs.Json.Int 1); ("b", Obs.Json.List [ Obs.Json.String "x" ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = Obs.Json.to_string j in
      match Obs.Json.of_string s with
      | Error e -> Alcotest.failf "reparse of %s failed: %s" s e
      | Ok j' ->
          Alcotest.(check string)
            ("stable: " ^ s) s (Obs.Json.to_string j'))
    samples

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage: %s" s)
    [ ""; "{"; "[1,"; "{\"a\":}"; "nul"; "\"unterminated"; "{\"a\":1} trailing" ]

let test_event_roundtrip_all_variants () =
  let events =
    [
      Obs.Event.Invoke_start { fn_id = "fn-1" };
      Obs.Event.Invoke_finish
        {
          fn_id = "fn-1";
          path = Obs.Event.Cold;
          queue = 0.0001;
          deploy = 0.0004;
          import = 0.006;
          run = 0.0008;
          total = 0.0073;
          ok = true;
        };
      Obs.Event.Snapshot_capture
        { name = "fn-fn-1"; pages = 546; bytes = 2236416L };
      Obs.Event.Cow_fault { uc_id = 7 };
      Obs.Event.Uc_reclaim { uc_id = 7; fn_id = "fn-1" };
      Obs.Event.Oom_wake { free_bytes = 1048576L };
      Obs.Event.Fault_injected { site = "uc_kill"; detail = "uc-42" };
      Obs.Event.Invoke_retry { fn_id = "fn-1" };
      Obs.Event.Node_crash { node_id = 2 };
      Obs.Event.Fetch_retry { fn_id = "fn-1"; attempt = 2; backoff = 0.075 };
      Obs.Event.Registry_evict
        { fn_id = "fn-1"; node_id = 3; reason = "dead holder" };
      Obs.Event.Registry_repair { node_id = 1; republished = 4 };
      Obs.Event.Failover { fn_id = "fn-1"; from_node = 0; to_node = 2 };
      Obs.Event.Degraded_cold { fn_id = "fn-1" };
      Obs.Event.Partition_change { a = 0; b = 3; healed = false };
      Obs.Event.Ws_record { snapshot = "fn-fn-1"; pages = 546 };
      Obs.Event.Ws_prefault
        {
          uc_id = 7;
          snapshot = "fn-fn-1";
          pages = 546;
          cow_copied = 530;
          zero_filled = 16;
        };
      Obs.Event.San_race
        { cell = "registry.table"; kind = "write/write"; first_pid = 1; second_pid = 4 };
      Obs.Event.Timeline_sample
        {
          run_queue = 12;
          in_flight = 3;
          free_bytes = 87912349696L;
          idle_ucs = 5;
          cached_snapshots = 17;
          stuck_waiters = 0;
        };
      Obs.Event.Snap_dedup
        {
          snapshot = "fn-fn-1";
          delta_pages = 546;
          shared_pages = 540;
          unique_pages = 6;
        };
      Obs.Event.Snap_delta
        {
          snapshot = "fn-fn-1";
          parent = "node-base";
          delta_pages = 546;
          delta_bytes = 2236416L;
        };
      Obs.Event.Snap_evict
        {
          fn_id = "fn-1";
          pages_freed = 6;
          resident_bytes = 4194304L;
          policy = "lru";
        };
      Obs.Event.San_leak
        { node = "node0"; frames = 3; snapshot_refs = 1; pinned = 0; ucs = 2 };
    ]
  in
  List.iter
    (fun ev ->
      let j = Obs.Event.to_json ~time:1.25 ev in
      match Obs.Event.of_json j with
      | Error e -> Alcotest.failf "%s: %s" (Obs.Event.type_name ev) e
      | Ok (time, ev') ->
          Alcotest.(check (float 0.0)) "time" 1.25 time;
          Alcotest.(check string) "event survives"
            (Obs.Json.to_string (Obs.Event.to_json ~time ev))
            (Obs.Json.to_string (Obs.Event.to_json ~time ev')))
    events

(* {1 Ring} *)

let test_ring_overwrites_oldest () =
  let r = Obs.Ring.create ~capacity:3 in
  List.iter (fun i -> Obs.Ring.push r i) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "keeps newest" [ 3; 4; 5 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "length capped" 3 (Obs.Ring.length r);
  Alcotest.(check int) "dropped counted" 2 (Obs.Ring.dropped r);
  Obs.Ring.clear r;
  Alcotest.(check (list int)) "clear empties" [] (Obs.Ring.to_list r)

let test_ring_rejects_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

(* {1 Log} *)

let fake_clock () =
  let now = ref 0.0 in
  ( (fun () -> !now),
    fun t -> now := t )

let finish_ev i =
  Obs.Event.Invoke_finish
    {
      fn_id = Printf.sprintf "fn-%d" i;
      path = (if i mod 2 = 0 then Obs.Event.Hot else Obs.Event.Cold);
      queue = 0.0;
      deploy = 0.001;
      import = (if i mod 2 = 0 then 0.0 else 0.005);
      run = 0.002;
      total = 0.008;
      ok = i mod 5 <> 0;
    }

let test_log_jsonl_roundtrip () =
  let clock, set = fake_clock () in
  let log = Obs.Log.create ~capacity:64 ~clock () in
  for i = 1 to 10 do
    set (float_of_int i);
    Obs.Log.emit log (finish_ev i)
  done;
  set 11.0;
  Obs.Log.emit log (Obs.Event.Oom_wake { free_bytes = 42L });
  let text = Obs.Log.to_jsonl log in
  Alcotest.(check int) "one line per event" 11
    (List.length
       (List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' text)));
  match Obs.Log.parse_jsonl text with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok records ->
      Alcotest.(check int) "all records back" 11 (List.length records);
      let times = List.map (fun r -> r.Obs.Log.time) records in
      Alcotest.(check (list (float 0.0))) "timestamps preserved"
        [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10.; 11. ]
        times

let test_log_parse_reports_line () =
  match Obs.Log.parse_jsonl "{\"ts\":1,\"type\":\"oom_wake\",\"free_bytes\":1}\nnot json\n" with
  | Ok _ -> Alcotest.fail "accepted bad line"
  | Error msg ->
      Alcotest.(check bool) "names the line" true (contains "line 2" msg)

let test_log_subscriber_outlives_ring () =
  let clock, set = fake_clock () in
  let log = Obs.Log.create ~capacity:2 ~clock () in
  let seen = ref 0 in
  Obs.Log.subscribe log (fun _ -> incr seen);
  for i = 1 to 50 do
    set (float_of_int i);
    Obs.Log.emit log (finish_ev i)
  done;
  Alcotest.(check int) "subscriber saw every event" 50 !seen;
  Alcotest.(check int) "ring kept only capacity" 2
    (List.length (Obs.Log.records log));
  Alcotest.(check int) "emitted counts all" 50 (Obs.Log.emitted log);
  Alcotest.(check int) "dropped counts evictions" 48 (Obs.Log.dropped log)

(* {1 Metrics} *)

let test_metrics_counters_and_labels () =
  let m = Obs.Metrics.create () in
  let a = Obs.Metrics.counter m ~labels:[ ("path", "cold") ] "inv" in
  let b = Obs.Metrics.counter m ~labels:[ ("path", "hot") ] "inv" in
  Obs.Metrics.inc a;
  Obs.Metrics.inc ~by:4 b;
  (* Same (name, labels) returns the same instrument; label order is
     canonicalised. *)
  let a' = Obs.Metrics.counter m ~labels:[ ("path", "cold") ] "inv" in
  Obs.Metrics.inc a';
  Alcotest.(check int) "shared handle" 2 (Obs.Metrics.value a);
  Alcotest.(check int) "sum all" 6 (Obs.Metrics.sum_counters m "inv");
  Alcotest.(check int) "sum filtered" 4
    (Obs.Metrics.sum_counters m ~where:[ ("path", "hot") ] "inv");
  Alcotest.(check int) "sum missing" 0 (Obs.Metrics.sum_counters m "nope");
  Alcotest.check_raises "negative inc"
    (Invalid_argument "Metrics.inc: counters only go up") (fun () ->
      Obs.Metrics.inc ~by:(-1) a)

let test_metrics_kind_mismatch () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "x");
  Alcotest.(check bool) "gauge over counter raises" true
    (try
       ignore (Obs.Metrics.gauge m "x");
       false
     with Invalid_argument _ -> true)

let test_metrics_histogram () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  for i = 1 to 100 do
    Obs.Metrics.observe h (float_of_int i /. 1000.0)
  done;
  Alcotest.(check int) "count" 100 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "mean" 0.0505 (Obs.Metrics.hist_mean h);
  (* Quantiles are quantised to log-bin upper bounds (10 bins/decade),
     so allow one bin of slack around the true values. *)
  let p50 = Obs.Metrics.hist_quantile h 0.5 in
  Alcotest.(check bool) "p50 within a bin of the median" true
    (p50 >= 0.05 && p50 < 0.07);
  let p99 = Obs.Metrics.hist_quantile h 0.99 in
  Alcotest.(check bool) "p99 near max" true (p99 > 0.08 && p99 <= 0.1)

(* Property: bucketed quantiles track exact order statistics within the
   log-bin quantisation bound. With 30 bins/decade a bin spans a factor
   of 10^(1/30) ~ 1.0798, and [hist_quantile] answers the upper bound of
   the bin holding the rank-th smallest sample (clamped into the
   observed [min, max]), so for every q:
   exact <= approx <= exact * 1.08. *)
let hist_quantiles_track_exact =
  QCheck.Test.make ~name:"bucketed p50/p99/p999 within 8% of exact"
    ~count:200
    (* Millis in [1, 100_000] mapped to seconds in [1e-3, 1e2]: safely
       inside the histogram's default [1e-4, 1e3] range, so no
       saturation bin distorts the bound. *)
    QCheck.(list_of_size Gen.(int_range 1 400) (int_range 1 100_000))
    (fun millis ->
      let xs = List.map (fun m -> float_of_int m /. 1000.0) millis in
      let m = Obs.Metrics.create () in
      let h = Obs.Metrics.histogram m "q" in
      List.iter (Obs.Metrics.observe h) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      List.for_all
        (fun q ->
          let exact =
            sorted.(int_of_float (Float.round (q *. float_of_int (n - 1))))
          in
          let approx = Obs.Metrics.hist_quantile h q in
          approx >= exact -. 1e-12 && approx <= (exact *. 1.08) +. 1e-12)
        [ 0.5; 0.9; 0.99; 0.999 ])

let test_metrics_hist_json_roundtrip () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  List.iter (Obs.Metrics.observe h) [ 0.0012; 0.0012; 0.034; 0.5; 2.25; 0.08 ];
  let s = Obs.Json.to_string (Obs.Metrics.hist_to_json h) in
  let h' =
    match Obs.Json.of_string s with
    | Error e -> Alcotest.failf "reparse failed: %s" e
    | Ok j -> (
        match Obs.Metrics.hist_of_json j with
        | Error e -> Alcotest.failf "decode failed: %s" e
        | Ok h' -> h')
  in
  Alcotest.(check int) "count survives" (Obs.Metrics.hist_count h)
    (Obs.Metrics.hist_count h');
  Alcotest.(check (float 1e-12)) "mean survives" (Obs.Metrics.hist_mean h)
    (Obs.Metrics.hist_mean h');
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "q%.3f survives" q)
        (Obs.Metrics.hist_quantile h q)
        (Obs.Metrics.hist_quantile h' q))
    [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ];
  Alcotest.(check string) "re-encoding is stable" s
    (Obs.Json.to_string (Obs.Metrics.hist_to_json h'))

let test_metrics_hist_merge () =
  let m = Obs.Metrics.create () in
  let a = Obs.Metrics.histogram m "a" and b = Obs.Metrics.histogram m "b" in
  let merged = Obs.Metrics.histogram m "merged" in
  let xs = [ 0.001; 0.002; 0.04 ] and ys = [ 0.3; 0.9; 7.5; 0.0015 ] in
  List.iter (Obs.Metrics.observe a) xs;
  List.iter (Obs.Metrics.observe b) ys;
  List.iter (Obs.Metrics.observe merged) (xs @ ys);
  Obs.Metrics.merge_hist a ~from:b;
  Alcotest.(check int) "merged count" (Obs.Metrics.hist_count merged)
    (Obs.Metrics.hist_count a);
  Alcotest.(check (float 1e-12)) "merged mean" (Obs.Metrics.hist_mean merged)
    (Obs.Metrics.hist_mean a);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "merged q%.3f" q)
        (Obs.Metrics.hist_quantile merged q)
        (Obs.Metrics.hist_quantile a q))
    [ 0.5; 0.99; 0.999 ]

(* {1 Chrome trace-event encoding} *)

let test_chrome_document_structure () =
  let events =
    [
      Obs.Chrome.Process_name { pid = 0; name = "cold" };
      Obs.Chrome.Thread_name { pid = 0; tid = 1; name = "sim pid 1" };
      Obs.Chrome.Complete
        {
          name = "node.invoke";
          cat = "sim";
          ts_us = 1500.0;
          dur_us = 7300.5;
          pid = 0;
          tid = 1;
          args = [ ("span_id", Obs.Json.Int 1) ];
        };
      Obs.Chrome.Instant
        {
          name = "node.path cold";
          cat = "sim";
          ts_us = 1500.0;
          pid = 0;
          tid = 1;
          args = [ ("span_id", Obs.Json.Int 2); ("parent_id", Obs.Json.Int 1) ];
        };
    ]
  in
  let doc =
    match Obs.Json.of_string (Obs.Chrome.to_string events) with
    | Error e -> Alcotest.failf "chrome output does not parse: %s" e
    | Ok j -> j
  in
  let field name = function
    | Obs.Json.Obj kvs -> List.assoc_opt name kvs
    | _ -> None
  in
  let rows =
    match field "traceEvents" doc with
    | Some (Obs.Json.List rows) -> rows
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check int) "one row per event" (List.length events)
    (List.length rows);
  (match field "displayTimeUnit" doc with
  | Some (Obs.Json.String "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing");
  let phases =
    List.map
      (fun row ->
        (* Every event carries the required keys. *)
        (match field "name" row with
        | Some (Obs.Json.String _) -> ()
        | _ -> Alcotest.fail "name missing");
        (match field "ts" row with
        | Some (Obs.Json.Float _) | Some (Obs.Json.Int _) -> ()
        | _ -> Alcotest.fail "ts missing");
        (match field "pid" row with
        | Some (Obs.Json.Int 0) -> ()
        | _ -> Alcotest.fail "pid missing");
        match field "ph" row with
        | Some (Obs.Json.String ph) -> ph
        | _ -> Alcotest.fail "ph missing")
      rows
  in
  Alcotest.(check (list string)) "phases" [ "M"; "M"; "X"; "i" ] phases;
  (* The complete event keeps its duration. *)
  match List.nth rows 2 |> field "dur" with
  | Some (Obs.Json.Float d) -> Alcotest.(check (float 1e-9)) "dur" 7300.5 d
  | _ -> Alcotest.fail "complete event lost dur"

let test_metrics_dump_and_render () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.inc (Obs.Metrics.counter m ~labels:[ ("k", "b") ] "c");
  Obs.Metrics.inc (Obs.Metrics.counter m ~labels:[ ("k", "a") ] "c");
  Obs.Metrics.set_gauge (Obs.Metrics.gauge m "g") 1.5;
  let dump = Obs.Metrics.dump m in
  Alcotest.(check int) "three instruments" 3 (List.length dump);
  (match dump with
  | (n1, l1, _) :: (n2, l2, _) :: _ ->
      Alcotest.(check bool) "sorted" true ((n1, l1) <= (n2, l2))
  | _ -> Alcotest.fail "dump too short");
  Alcotest.(check bool) "render mentions instruments" true
    (contains "c" (Obs.Metrics.render m))

(* {1 Breakdown} *)

let test_breakdown_aggregates_beyond_ring () =
  let clock, set = fake_clock () in
  (* Tiny ring: the aggregator must still see everything (it subscribes
     to the bus instead of reading the ring). *)
  let log = Obs.Log.create ~capacity:2 ~clock () in
  let bd = Obs.Breakdown.attach log in
  for i = 1 to 40 do
    set (float_of_int i);
    Obs.Log.emit log (finish_ev i)
  done;
  (match Obs.Breakdown.overall bd with
  | None -> Alcotest.fail "no overall breakdown"
  | Some o ->
      Alcotest.(check int) "all invocations folded" 40 o.Obs.Breakdown.n;
      Alcotest.(check (float 1e-9)) "deploy mean" 0.001 o.Obs.Breakdown.deploy);
  (match Obs.Breakdown.per_path bd Obs.Event.Hot with
  | None -> Alcotest.fail "no hot breakdown"
  | Some h ->
      Alcotest.(check int) "hot count" 20 h.Obs.Breakdown.n;
      Alcotest.(check (float 1e-9)) "hot import zero" 0.0 h.Obs.Breakdown.import);
  (match Obs.Breakdown.per_path bd Obs.Event.Cold with
  | None -> Alcotest.fail "no cold breakdown"
  | Some c ->
      Alcotest.(check (float 1e-9)) "cold import" 0.005 c.Obs.Breakdown.import);
  Alcotest.(check int) "errors counted" 8 (Obs.Breakdown.errors bd);
  Alcotest.(check bool) "warm path unseen" true
    (Obs.Breakdown.per_path bd Obs.Event.Warm = None)

let finish ~path ~total ~ok =
  Obs.Event.Invoke_finish
    {
      fn_id = "fn-x";
      path;
      queue = 0.0;
      deploy = total /. 4.0;
      import = 0.0;
      run = total /. 4.0;
      total;
      ok;
    }

let fresh_breakdown () =
  let clock, set = fake_clock () in
  let log = Obs.Log.create ~capacity:16 ~clock () in
  (Obs.Breakdown.attach log, log, set)

let test_breakdown_path_classification () =
  (* Each path accumulates independently: cold/warm/hot events must not
     bleed into each other's buckets, and errors fold in regardless of
     path. *)
  let bd, log, set = fresh_breakdown () in
  let emit i path total ok =
    set (float_of_int i);
    Obs.Log.emit log (finish ~path ~total ~ok)
  in
  emit 1 Obs.Event.Cold 0.008 true;
  emit 2 Obs.Event.Cold 0.006 true;
  emit 3 Obs.Event.Warm 0.004 true;
  emit 4 Obs.Event.Hot 0.001 false;
  emit 5 Obs.Event.Hot 0.001 true;
  let n path =
    match Obs.Breakdown.per_path bd path with
    | None -> 0
    | Some p -> p.Obs.Breakdown.n
  in
  Alcotest.(check int) "cold bucket" 2 (n Obs.Event.Cold);
  Alcotest.(check int) "warm bucket" 1 (n Obs.Event.Warm);
  Alcotest.(check int) "hot bucket" 2 (n Obs.Event.Hot);
  (match Obs.Breakdown.per_path bd Obs.Event.Cold with
  | None -> Alcotest.fail "cold missing"
  | Some c ->
      Alcotest.(check (float 1e-9)) "cold total mean" 0.007 c.Obs.Breakdown.total);
  (match Obs.Breakdown.overall bd with
  | None -> Alcotest.fail "overall missing"
  | Some o -> Alcotest.(check int) "overall folds all paths" 5 o.Obs.Breakdown.n);
  Alcotest.(check int) "error folded despite hot path" 1
    (Obs.Breakdown.errors bd)

let test_breakdown_empty_buckets () =
  (* No invocations at all: every accessor must say None / 0 rather than
     fabricate a zero row. *)
  let bd, _log, _set = fresh_breakdown () in
  List.iter
    (fun path ->
      Alcotest.(check bool) "per_path empty" true
        (Obs.Breakdown.per_path bd path = None);
      Alcotest.(check bool) "tails empty" true
        (Obs.Breakdown.tails bd path = None))
    [ Obs.Event.Cold; Obs.Event.Warm; Obs.Event.Hot ];
  Alcotest.(check bool) "overall empty" true (Obs.Breakdown.overall bd = None);
  Alcotest.(check bool) "overall tails empty" true
    (Obs.Breakdown.overall_tails bd = None);
  Alcotest.(check int) "no errors" 0 (Obs.Breakdown.errors bd)

let test_breakdown_single_sample_tails () =
  (* One invocation: the histogram has a single populated bin, and the
     min/max clamp must collapse every quantile — p50 through p999 — to
     exactly that observation instead of a bin edge. *)
  let bd, log, set = fresh_breakdown () in
  set 1.0;
  Obs.Log.emit log (finish ~path:Obs.Event.Warm ~total:0.0042 ~ok:true);
  (match Obs.Breakdown.tails bd Obs.Event.Warm with
  | None -> Alcotest.fail "single-sample tails missing"
  | Some t ->
      List.iter
        (fun (label, v) ->
          Alcotest.(check (float 1e-12)) label 0.0042 v)
        [
          ("p50", t.Obs.Breakdown.p50);
          ("p90", t.Obs.Breakdown.p90);
          ("p99", t.Obs.Breakdown.p99);
          ("p999", t.Obs.Breakdown.p999);
        ]);
  (match Obs.Breakdown.overall_tails bd with
  | None -> Alcotest.fail "overall single-sample tails missing"
  | Some t ->
      Alcotest.(check (float 1e-12)) "overall p999 clamped" 0.0042
        t.Obs.Breakdown.p999);
  Alcotest.(check bool) "other paths still empty" true
    (Obs.Breakdown.tails bd Obs.Event.Cold = None)

let test_breakdown_tails_ordered () =
  (* Quantiles of a spread-out latency population must be monotone and
     clamped into the observed extrema. *)
  let bd, log, set = fresh_breakdown () in
  for i = 1 to 1000 do
    set (float_of_int i);
    Obs.Log.emit log
      (finish ~path:Obs.Event.Cold ~total:(float_of_int i *. 1e-4) ~ok:true)
  done;
  match Obs.Breakdown.tails bd Obs.Event.Cold with
  | None -> Alcotest.fail "tails missing"
  | Some t ->
      Alcotest.(check bool) "monotone" true
        (t.Obs.Breakdown.p50 <= t.Obs.Breakdown.p90
        && t.Obs.Breakdown.p90 <= t.Obs.Breakdown.p99
        && t.Obs.Breakdown.p99 <= t.Obs.Breakdown.p999);
      Alcotest.(check bool) "inside observed range" true
        (t.Obs.Breakdown.p50 >= 1e-4 && t.Obs.Breakdown.p999 <= 0.1);
      (* ~8% histogram quantization: p50 of a uniform 0.1ms..100ms
         population must land near 50ms. *)
      Alcotest.(check bool) "p50 near true median" true
        (t.Obs.Breakdown.p50 > 0.04 && t.Obs.Breakdown.p50 < 0.06)

(* {1 End to end: a real node workload round-trips through JSONL} *)

let test_node_event_stream_roundtrips () =
  let engine = Sim.Engine.create ~seed:3L () in
  let out = ref "" in
  Sim.Engine.spawn engine ~name:"obs-e2e" (fun () ->
      let env = Seuss.Osenv.create engine in
      let node = Seuss.Node.create env in
      Seuss.Node.start node;
      for i = 1 to 6 do
        match
          Seuss.Node.invoke node
            {
              Seuss.Node.fn_id = Printf.sprintf "fn-%d" (i mod 2);
              runtime = Unikernel.Image.Node;
              source = "function main(args) { return {}; }";
            }
            ~args:"{}"
        with
        | Ok _, _ -> ()
        | Error _, _ -> Alcotest.fail "invocation failed"
      done;
      out := Obs.Log.to_jsonl env.Seuss.Osenv.log);
  Sim.Engine.run engine;
  match Obs.Log.parse_jsonl !out with
  | Error e -> Alcotest.failf "node JSONL does not round-trip: %s" e
  | Ok records ->
      let count name =
        List.length
          (List.filter
             (fun r -> Obs.Event.type_name r.Obs.Log.ev = name)
             records)
      in
      Alcotest.(check int) "every invocation started" 6 (count "invoke_start");
      Alcotest.(check int) "every invocation finished" 6 (count "invoke_finish");
      (* base snapshots + 2 function snapshots *)
      Alcotest.(check bool) "snapshots captured" true
        (count "snapshot_capture" >= 3);
      Alcotest.(check bool) "cow faults observed" true (count "cow_fault" > 0);
      let mono =
        let rec go = function
          | a :: (b :: _ as rest) ->
              a.Obs.Log.time <= b.Obs.Log.time && go rest
          | _ -> true
        in
        go records
      in
      Alcotest.(check bool) "timestamps monotone" true mono

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "json",
        [
          case "roundtrip" test_json_roundtrip;
          case "rejects garbage" test_json_rejects_garbage;
          case "events roundtrip" test_event_roundtrip_all_variants;
        ] );
      ( "ring",
        [
          case "overwrites oldest" test_ring_overwrites_oldest;
          case "rejects bad capacity" test_ring_rejects_bad_capacity;
        ] );
      ( "log",
        [
          case "jsonl roundtrip" test_log_jsonl_roundtrip;
          case "parse names bad line" test_log_parse_reports_line;
          case "subscriber outlives ring" test_log_subscriber_outlives_ring;
        ] );
      ( "metrics",
        [
          case "counters and labels" test_metrics_counters_and_labels;
          case "kind mismatch" test_metrics_kind_mismatch;
          case "histogram" test_metrics_histogram;
          case "dump and render" test_metrics_dump_and_render;
          case "hist JSON roundtrip" test_metrics_hist_json_roundtrip;
          case "hist merge" test_metrics_hist_merge;
          QCheck_alcotest.to_alcotest hist_quantiles_track_exact;
        ] );
      ("chrome", [ case "document structure" test_chrome_document_structure ]);
      ( "breakdown",
        [
          case "aggregates beyond ring" test_breakdown_aggregates_beyond_ring;
          case "path classification" test_breakdown_path_classification;
          case "empty buckets" test_breakdown_empty_buckets;
          case "single-sample tails" test_breakdown_single_sample_tails;
          case "tails ordered and clamped" test_breakdown_tails_ordered;
        ] );
      ("end_to_end", [ case "node JSONL roundtrip" test_node_event_stream_roundtrips ]);
    ]
