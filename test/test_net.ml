(* Tests for the simulated network: TCP costs and semantics, HTTP
   framing, the SEUSS proxy and the Linux bridge bottleneck model. *)

let check_float = Alcotest.(check (float 1e-9))

let run f =
  let engine = Sim.Engine.create () in
  f engine;
  Sim.Engine.run engine;
  engine

let test_tcp_connect_and_roundtrip () =
  let got = ref "" in
  ignore
    (run (fun e ->
         let l = Net.Tcp.listener ~port:8080 in
         Sim.Engine.spawn e (fun () ->
             let conn = Net.Tcp.accept l in
             match Net.Tcp.recv conn with
             | Some m ->
                 Net.Tcp.send conn ("pong:" ^ m.Net.Tcp.data);
                 Net.Tcp.close conn
             | None -> ());
         Sim.Engine.spawn e (fun () ->
             match Net.Tcp.connect ~link:Net.Netconf.lan l with
             | None -> Alcotest.fail "connect refused"
             | Some conn -> (
                 Net.Tcp.send conn "ping";
                 (match Net.Tcp.recv conn with
                 | Some m -> got := m.Net.Tcp.data
                 | None -> ());
                 Net.Tcp.close conn))));
  Alcotest.(check string) "reply" "pong:ping" !got

let test_tcp_costs_accumulate () =
  (* One connect + send + reply over the LAN link should take at least
     the handshake plus two one-way latencies. *)
  let finished_at = ref 0.0 in
  let engine =
    run (fun e ->
        let l = Net.Tcp.listener ~port:1 in
        Sim.Engine.spawn e (fun () ->
            let conn = Net.Tcp.accept l in
            match Net.Tcp.recv conn with
            | Some _ -> Net.Tcp.send conn "r"
            | None -> ());
        Sim.Engine.spawn e (fun () ->
            match Net.Tcp.connect ~link:Net.Netconf.lan l with
            | None -> ()
            | Some conn ->
                Net.Tcp.send conn "m";
                ignore (Net.Tcp.recv conn);
                finished_at := Sim.Engine.now e))
  in
  ignore engine;
  let lat = Net.Netconf.lan.Net.Netconf.latency in
  Alcotest.(check bool) "took at least handshake + 2 hops" true
    (!finished_at >= 5.0 *. lat)

let test_tcp_close_wakes_receiver () =
  let got = ref (Some ()) in
  ignore
    (run (fun e ->
         let l = Net.Tcp.listener ~port:1 in
         Sim.Engine.spawn e (fun () ->
             let conn = Net.Tcp.accept l in
             Net.Tcp.close conn);
         Sim.Engine.spawn e (fun () ->
             match Net.Tcp.connect ~link:Net.Netconf.lan l with
             | None -> ()
             | Some conn -> (
                 match Net.Tcp.recv conn with
                 | None -> got := None
                 | Some _ -> ()))));
  Alcotest.(check (option unit)) "eof" None !got

let test_tcp_admit_refusal_fails_after_retries () =
  let result = ref (Some ()) and duration = ref 0.0 in
  ignore
    (run (fun e ->
         let l = Net.Tcp.listener ~port:1 in
         Sim.Engine.spawn e (fun () ->
             let started = Sim.Engine.now e in
             (match Net.Tcp.connect ~admit:(fun () -> false) ~link:Net.Netconf.lan l with
             | None -> result := None
             | Some _ -> ());
             duration := Sim.Engine.now e -. started)));
  Alcotest.(check (option unit)) "failed" None !result;
  check_float "slept through retries"
    (float_of_int Net.Tcp.syn_retries *. Net.Tcp.syn_timeout)
    !duration

let test_tcp_send_on_closed_rejected () =
  ignore
    (run (fun e ->
         let l = Net.Tcp.listener ~port:1 in
         Sim.Engine.spawn e (fun () -> ignore (Net.Tcp.accept l));
         Sim.Engine.spawn e (fun () ->
             match Net.Tcp.connect ~link:Net.Netconf.lan l with
             | None -> ()
             | Some conn ->
                 Net.Tcp.close conn;
                 Alcotest.(check bool) "send after close raises" true
                   (match Net.Tcp.send conn "x" with
                   | () -> false
                   | exception Invalid_argument _ -> true))))

let test_tcp_injected_drops_exhaust_syn_budget () =
  (* Fault plane at drop rate 1.0: every SYN is lost, so connect makes
     its documented 1 + syn_retries attempts and fails, sleeping
     syn_timeout between attempts — same budget as admission refusal. *)
  let result = ref (Some ()) and duration = ref 0.0 in
  let engine = Sim.Engine.create () in
  let plan =
    Faults.Fault.make ~seed:5L ~rates:[ (Faults.Fault.Net_drop, 1.0) ] engine
  in
  Faults.Fault.install plan;
  let l = Net.Tcp.listener ~port:1 in
  Sim.Engine.spawn engine (fun () ->
      let started = Sim.Engine.now engine in
      (match Net.Tcp.connect ~link:Net.Netconf.lan l with
      | None -> result := None
      | Some _ -> ());
      duration := Sim.Engine.now engine -. started);
  Sim.Engine.run engine;
  Alcotest.(check (option unit)) "failed" None !result;
  check_float "slept between all retries"
    (float_of_int Net.Tcp.syn_retries *. Net.Tcp.syn_timeout)
    !duration;
  Alcotest.(check int) "one drop per attempt"
    (1 + Net.Tcp.syn_retries)
    (List.length
       (List.filter
          (fun r -> r.Faults.Fault.site = Faults.Fault.Net_drop)
          (Faults.Fault.history plan)))

let test_tcp_injected_drop_below_one_can_succeed () =
  (* At rate 0.5 with a retry budget of 3 attempts, some connects still
     get through — and with no plan installed, all of them do. *)
  let successes = ref 0 in
  let engine = Sim.Engine.create () in
  let plan =
    Faults.Fault.make ~seed:11L ~rates:[ (Faults.Fault.Net_drop, 0.5) ] engine
  in
  Faults.Fault.install plan;
  let l = Net.Tcp.listener ~port:1 in
  Sim.Engine.spawn engine (fun () ->
      let rec accept_all () =
        let conn = Net.Tcp.accept l in
        Net.Tcp.close conn;
        accept_all ()
      in
      accept_all ());
  Sim.Engine.spawn engine (fun () ->
      for _ = 1 to 20 do
        match Net.Tcp.connect ~link:Net.Netconf.lan l with
        | Some conn ->
            incr successes;
            Net.Tcp.close conn
        | None -> ()
      done);
  Sim.Engine.run engine;
  Alcotest.(check bool) "some got through" true (!successes > 0);
  Alcotest.(check bool) "some were dropped" true
    (Faults.Fault.fired plan > 0)

let test_injected_delay_spike_stalls_send () =
  let elapsed = ref 0.0 in
  let engine = Sim.Engine.create () in
  let plan =
    Faults.Fault.make ~seed:3L ~delay_spike:0.5
      ~rates:[ (Faults.Fault.Net_delay, 1.0) ]
      engine
  in
  Faults.Fault.install plan;
  let l = Net.Tcp.listener ~port:1 in
  Sim.Engine.spawn engine (fun () -> ignore (Net.Tcp.accept l));
  Sim.Engine.spawn engine (fun () ->
      match Net.Tcp.connect ~link:Net.Netconf.lan l with
      | None -> ()
      | Some conn ->
          let t0 = Sim.Engine.now engine in
          Net.Tcp.send conn "x";
          elapsed := Sim.Engine.now engine -. t0);
  Sim.Engine.run engine;
  Alcotest.(check bool) "send stalled by the spike" true (!elapsed >= 0.5)

let test_http_roundtrip () =
  let status = ref 0 and body = ref "" in
  ignore
    (run (fun e ->
         let l = Net.Tcp.listener ~port:80 in
         Sim.Engine.spawn e (fun () ->
             Net.Http.serve ~listener:l (fun req ->
                 Net.Http.ok ("echo:" ^ req.Net.Http.path ^ ":" ^ req.Net.Http.body));
             match Net.Http.get ~link:Net.Netconf.lan l ~path:"/run" with
             | Ok r ->
                 status := r.Net.Http.status;
                 body := r.Net.Http.body
             | Error _ -> Alcotest.fail "http error")));
  Alcotest.(check int) "status" 200 !status;
  Alcotest.(check string) "body" "echo:/run:" !body

let test_http_blocking_handler () =
  (* The burst experiment's external endpoint: replies OK after 250 ms. *)
  let elapsed = ref 0.0 in
  ignore
    (run (fun e ->
         let l = Net.Tcp.listener ~port:80 in
         Sim.Engine.spawn e (fun () ->
             Net.Http.serve ~listener:l (fun _ ->
                 Sim.Engine.sleep 0.250;
                 Net.Http.ok "OK");
             let started = Sim.Engine.now e in
             match Net.Http.get ~link:Net.Netconf.lan l ~path:"/io" with
             | Ok _ -> elapsed := Sim.Engine.now e -. started
             | Error _ -> Alcotest.fail "http error")));
  Alcotest.(check bool) "blocked for the server delay" true (!elapsed >= 0.250)

let test_http_concurrent_connections () =
  let done_count = ref 0 in
  ignore
    (run (fun e ->
         let l = Net.Tcp.listener ~port:80 in
         Sim.Engine.spawn e (fun () ->
             Net.Http.serve ~listener:l (fun _ ->
                 Sim.Engine.sleep 0.1;
                 Net.Http.ok "OK"));
         for _ = 1 to 8 do
           Sim.Engine.spawn e (fun () ->
               match Net.Http.get ~link:Net.Netconf.lan l ~path:"/x" with
               | Ok _ -> incr done_count
               | Error _ -> ())
         done));
  Alcotest.(check int) "all served concurrently" 8 !done_count

let test_proxy_register_connect () =
  let replied = ref "" in
  ignore
    (run (fun e ->
         let proxy = Net.Proxy.create () in
         let l = Net.Tcp.listener ~port:9000 in
         Net.Proxy.register proxy ~port:9000 l;
         Alcotest.(check int) "mapping count" 1 (Net.Proxy.active_mappings proxy);
         Sim.Engine.spawn e (fun () ->
             let conn = Net.Tcp.accept l in
             match Net.Tcp.recv conn with
             | Some _ -> Net.Tcp.send conn "driver-ack"
             | None -> ());
         Sim.Engine.spawn e (fun () ->
             match Net.Proxy.connect proxy ~port:9000 with
             | None -> Alcotest.fail "proxy connect failed"
             | Some conn -> (
                 Net.Tcp.send conn "args";
                 match Net.Tcp.recv conn with
                 | Some m -> replied := m.Net.Tcp.data
                 | None -> ()))));
  Alcotest.(check string) "through proxy" "driver-ack" !replied

let test_proxy_duplicate_rejected () =
  let proxy = Net.Proxy.create () in
  let l = Net.Tcp.listener ~port:1 in
  Net.Proxy.register proxy ~port:1 l;
  Alcotest.(check bool) "duplicate raises" true
    (match Net.Proxy.register proxy ~port:1 l with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_proxy_unknown_port () =
  let connected = ref true in
  ignore
    (run (fun e ->
         let proxy = Net.Proxy.create () in
         Sim.Engine.spawn e (fun () ->
             connected := Option.is_some (Net.Proxy.connect proxy ~port:7))));
  Alcotest.(check bool) "no mapping" false !connected

let test_proxy_unregister () =
  let proxy = Net.Proxy.create () in
  let l = Net.Tcp.listener ~port:1 in
  Net.Proxy.register proxy ~port:1 l;
  Net.Proxy.unregister proxy ~port:1;
  Net.Proxy.unregister proxy ~port:1;
  Alcotest.(check int) "empty" 0 (Net.Proxy.active_mappings proxy)

let test_bridge_creation_slows_with_population () =
  (* Endpoint attachment is O(existing endpoints): attaching the 1000th
     endpoint takes ~1000x the first. *)
  let t_first = ref 0.0 and t_last = ref 0.0 in
  ignore
    (run (fun e ->
         Sim.Engine.spawn e (fun () ->
             let bridge = Net.Bridge.create ~rng:(Sim.Prng.create 1L) () in
             let t0 = Sim.Engine.now e in
             Net.Bridge.add_endpoint bridge;
             t_first := Sim.Engine.now e -. t0;
             for _ = 2 to 999 do
               Net.Bridge.add_endpoint bridge
             done;
             let t1 = Sim.Engine.now e in
             Net.Bridge.add_endpoint bridge;
             t_last := Sim.Engine.now e -. t1)));
  Alcotest.(check bool) "linear growth" true (!t_last > 500.0 *. !t_first)

let test_bridge_drops_under_saturation () =
  let failures = ref 0 in
  ignore
    (run (fun e ->
         let config =
           { Net.Bridge.default_config with Net.Bridge.safe_endpoints = 10 }
         in
         let bridge = Net.Bridge.create ~config ~rng:(Sim.Prng.create 7L) () in
         let l = Net.Tcp.listener ~port:1 in
         Sim.Engine.spawn e (fun () ->
             let rec accept_all () =
               let conn = Net.Tcp.accept l in
               Net.Tcp.close conn;
               accept_all ()
             in
             accept_all ());
         Sim.Engine.spawn e (fun () ->
             (* Grossly oversubscribed: 60 endpoints on a 10-port bridge. *)
             for _ = 1 to 60 do
               Net.Bridge.add_endpoint bridge
             done;
             Alcotest.(check bool) "high drop probability" true
               (Net.Bridge.drop_probability bridge > 0.5);
             for _ = 1 to 20 do
               if Option.is_none (Net.Bridge.connect bridge l) then incr failures
             done)));
  Alcotest.(check bool) "some connects failed" true (!failures > 0)

let test_bridge_healthy_when_small () =
  let failures = ref 0 in
  ignore
    (run (fun e ->
         let bridge = Net.Bridge.create ~rng:(Sim.Prng.create 3L) () in
         let l = Net.Tcp.listener ~port:1 in
         Sim.Engine.spawn e (fun () ->
             let rec accept_all () =
               let conn = Net.Tcp.accept l in
               Net.Tcp.close conn;
               accept_all ()
             in
             accept_all ());
         Sim.Engine.spawn e (fun () ->
             for _ = 1 to 50 do
               Net.Bridge.add_endpoint bridge
             done;
             for _ = 1 to 50 do
               if Option.is_none (Net.Bridge.connect bridge l) then incr failures
             done)));
  Alcotest.(check int) "no failures at low population" 0 !failures

let test_bridge_port_exhaustion_counters () =
  (* The documented Linux bridge port limit is 1024: below it organic
     drops are rare, far beyond it the drop probability hits its 0.9 cap
     and failed connects are counted. *)
  Alcotest.(check int) "documented port limit" 1024
    Net.Bridge.default_config.Net.Bridge.safe_endpoints;
  let failures = ref 0 in
  let bridge = ref None in
  ignore
    (run (fun e ->
         let config =
           { Net.Bridge.default_config with Net.Bridge.safe_endpoints = 8 }
         in
         let b = Net.Bridge.create ~config ~rng:(Sim.Prng.create 13L) () in
         bridge := Some b;
         let l = Net.Tcp.listener ~port:1 in
         Sim.Engine.spawn e (fun () ->
             let rec accept_all () =
               let conn = Net.Tcp.accept l in
               Net.Tcp.close conn;
               accept_all ()
             in
             accept_all ());
         Sim.Engine.spawn e (fun () ->
             (* 12x oversubscribed, like ~12k containers on one bridge. *)
             for _ = 1 to 96 do
               Net.Bridge.add_endpoint b
             done;
             Alcotest.(check (float 1e-9)) "drop probability capped" 0.9
               (Net.Bridge.drop_probability b);
             for _ = 1 to 30 do
               if Option.is_none (Net.Bridge.connect b l) then incr failures
             done)));
  let b = Option.get !bridge in
  Alcotest.(check bool) "connects failed at the cap" true (!failures > 0);
  Alcotest.(check int) "failed_connects counts them" !failures
    (Net.Bridge.failed_connects b);
  Alcotest.(check bool) "each failure burned the whole SYN budget" true
    (Net.Bridge.dropped_syns b >= (1 + Net.Tcp.syn_retries) * !failures)

let test_bridge_injected_drops_add_to_organic () =
  (* A healthy, under-populated bridge fails anyway when the fault plane
     drops every SYN: injected loss composes with the admission model. *)
  let failures = ref 0 in
  let engine = Sim.Engine.create () in
  let plan =
    Faults.Fault.make ~seed:17L ~rates:[ (Faults.Fault.Net_drop, 1.0) ] engine
  in
  Faults.Fault.install plan;
  let bridge = Net.Bridge.create ~rng:(Sim.Prng.create 3L) () in
  let l = Net.Tcp.listener ~port:1 in
  Sim.Engine.spawn engine (fun () ->
      for _ = 1 to 10 do
        Net.Bridge.add_endpoint bridge
      done;
      for _ = 1 to 5 do
        if Option.is_none (Net.Bridge.connect bridge l) then incr failures
      done);
  Sim.Engine.run engine;
  Alcotest.(check int) "all five failed" 5 !failures;
  Alcotest.(check int) "counted by the bridge" 5
    (Net.Bridge.failed_connects bridge)

let test_bridge_remove_endpoint () =
  let bridge = Net.Bridge.create ~rng:(Sim.Prng.create 1L) () in
  Alcotest.(check bool) "remove on empty raises" true
    (match Net.Bridge.remove_endpoint bridge with
    | () -> false
    | exception Invalid_argument _ -> true)

let bridge_drop_probability_monotone =
  QCheck.Test.make ~name:"drop probability grows with endpoints" ~count:50
    QCheck.(pair (int_range 0 2000) (int_range 1 2000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let make n =
        let bridge = Net.Bridge.create ~rng:(Sim.Prng.create 1L) () in
        for _ = 1 to n do
          (* endpoints counter only; no engine needed when count is 0 cost *)
          ignore bridge
        done;
        bridge
      in
      ignore make;
      (* Compare the closed-form directly via a bridge with counts set by
         attachment inside a simulation. *)
      let prob n =
        let p = ref 0.0 in
        let engine = Sim.Engine.create () in
        Sim.Engine.spawn engine (fun () ->
            let bridge = Net.Bridge.create ~rng:(Sim.Prng.create 1L) () in
            for _ = 1 to n do
              Net.Bridge.add_endpoint bridge
            done;
            p := Net.Bridge.drop_probability bridge);
        Sim.Engine.run engine;
        !p
      in
      prob lo <= prob hi +. 1e-12)

(* Property: messages arrive exactly once, in order, regardless of
   payload sizes (serialization and delivery delays must not reorder). *)
let tcp_preserves_order =
  QCheck.Test.make ~name:"tcp delivers in order" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 100_000))
    (fun sizes ->
      let received = ref [] in
      let engine = Sim.Engine.create () in
      let l = Net.Tcp.listener ~port:1 in
      Sim.Engine.spawn engine (fun () ->
          let conn = Net.Tcp.accept l in
          let rec drain () =
            match Net.Tcp.recv conn with
            | Some m ->
                received := m.Net.Tcp.data :: !received;
                drain ()
            | None -> ()
          in
          drain ());
      Sim.Engine.spawn engine (fun () ->
          match Net.Tcp.connect ~link:Net.Netconf.lan l with
          | None -> ()
          | Some conn ->
              List.iteri
                (fun i size -> Net.Tcp.send conn ~size (string_of_int i))
                sizes;
              Net.Tcp.close conn);
      Sim.Engine.run engine;
      List.rev !received = List.mapi (fun i _ -> string_of_int i) sizes)

let () =
  let case name f = Alcotest.test_case name `Quick f in
  let qcase = QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [
      ( "tcp",
        [
          case "connect roundtrip" test_tcp_connect_and_roundtrip;
          case "costs accumulate" test_tcp_costs_accumulate;
          case "close wakes receiver" test_tcp_close_wakes_receiver;
          case "refusal fails after retries" test_tcp_admit_refusal_fails_after_retries;
          case "send on closed" test_tcp_send_on_closed_rejected;
          qcase tcp_preserves_order;
        ] );
      ( "faults",
        [
          case "injected drops exhaust SYN budget"
            test_tcp_injected_drops_exhaust_syn_budget;
          case "partial drop rate can succeed"
            test_tcp_injected_drop_below_one_can_succeed;
          case "delay spike stalls send" test_injected_delay_spike_stalls_send;
        ] );
      ( "http",
        [
          case "roundtrip" test_http_roundtrip;
          case "blocking handler" test_http_blocking_handler;
          case "concurrent connections" test_http_concurrent_connections;
        ] );
      ( "proxy",
        [
          case "register connect" test_proxy_register_connect;
          case "duplicate rejected" test_proxy_duplicate_rejected;
          case "unknown port" test_proxy_unknown_port;
          case "unregister idempotent" test_proxy_unregister;
        ] );
      ( "bridge",
        [
          case "creation slows with population" test_bridge_creation_slows_with_population;
          case "drops under saturation" test_bridge_drops_under_saturation;
          case "healthy when small" test_bridge_healthy_when_small;
          case "port exhaustion counters" test_bridge_port_exhaustion_counters;
          case "injected drops add to organic" test_bridge_injected_drops_add_to_organic;
          case "remove endpoint" test_bridge_remove_endpoint;
          qcase bridge_drop_probability_monotone;
        ] );
    ]
