(* Schedule-sanitizer coverage: the tie shuffler catches deliberately
   order-dependent code and leaves the shipped experiments byte-identical;
   the happens-before checker flags unsynchronized same-time access and
   stays quiet for synchronized or time-separated access. *)

(* {1 Tie shuffling} *)

let with_shuffle seed f =
  (* "" reads as unset (Unix offers no unsetenv). *)
  Unix.putenv Sim.Engine.shuffle_env_var
    (match seed with None -> "" | Some s -> Int64.to_string s);
  Fun.protect ~finally:(fun () -> Unix.putenv Sim.Engine.shuffle_env_var "") f

(* Deliberately order-dependent: the output string is exactly the order
   in which same-timestamp processes ran. *)
let toy ?tie_seed () =
  let engine = Sim.Engine.create ~seed:3L ?tie_seed () in
  let out = Buffer.create 16 in
  for i = 1 to 8 do
    Sim.Engine.spawn engine
      ~name:(Printf.sprintf "p%d" i)
      (fun () -> Buffer.add_string out (string_of_int i))
  done;
  Sim.Engine.run engine;
  Buffer.contents out

(* The FIFO assertions require an *unarmed* shuffler: run them under a
   cleared SEUSS_SHUFFLE_SEED so the CI shuffle matrix (which exports the
   env var for the whole test binary) cannot arm Engine.create here. *)
let fifo_baseline () =
  with_shuffle None (fun () ->
      Alcotest.(check string) "unarmed runs are FIFO and repeatable" (toy ())
        (toy ());
      Alcotest.(check string) "FIFO order is spawn order" "12345678" (toy ()))

let shuffle_catches_order_dependence () =
  let baseline = with_shuffle None (fun () -> toy ()) in
  let perturbed =
    List.exists
      (fun s -> not (String.equal baseline (toy ~tie_seed:s ())))
      [ 1L; 2L; 3L ]
  in
  Alcotest.(check bool) "some shuffle seed exposes the order dependence" true
    perturbed

let shuffle_deterministic_per_seed () =
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "tie seed %Ld replays identically" s)
        (toy ~tie_seed:s ())
        (toy ~tie_seed:s ()))
    [ 1L; 2L; 3L ]

(* {1 Experiment byte-identity under shuffling} *)

let assert_shuffle_identical name render =
  let baseline = with_shuffle None render in
  List.iter
    (fun s ->
      let shuffled = with_shuffle (Some s) render in
      Alcotest.(check bool)
        (Printf.sprintf "%s byte-identical under tie seed %Ld" name s)
        true
        (String.equal baseline shuffled))
    [ 1L; 2L; 3L ]

let fig4_identity () =
  assert_shuffle_identical "fig4" (fun () ->
      Experiments.Fig4.render
        (Experiments.Fig4.run ~set_sizes:[ 64 ] ~client_threads:8 ~seed:5L ()))

let chaos_identity () =
  assert_shuffle_identical "fig_chaos" (fun () ->
      let r =
        Experiments.Fig_chaos.run ~nodes:2 ~functions:5 ~calls:30
          ~rates:[ 0.0; 0.05 ] ~seed:5L ()
      in
      Obs.Json.to_string (Experiments.Fig_chaos.to_json r)
      ^ r.Experiments.Fig_chaos.timeline)

let reap_identity () =
  assert_shuffle_identical "fig_reap" (fun () ->
      Obs.Json.to_string
        (Experiments.Fig_reap.to_json
           (Experiments.Fig_reap.run ~functions:4 ~rounds:6 ~seed:5L ())))

(* A trimmed fig_load sweep (the timeline lands on the top point's
   SEUSS arm, so the shuffled render must reproduce it byte-for-byte
   too). *)
let fig_load_small () =
  let r =
    Experiments.Fig_load.run ~functions:24 ~hours:0.02 ~rps:[ 2.0; 6.0 ]
      ~arrival:"bursty" ~seed:5L ()
  in
  Obs.Json.to_string (Experiments.Fig_load.to_json r)
  ^ Experiments.Fig_load.render r

let fig_load_identity () =
  assert_shuffle_identical "fig_load" fig_load_small

let fig_load_run_twice () =
  Alcotest.(check bool) "fig_load run-twice byte-identical" true
    (String.equal
       (with_shuffle None fig_load_small)
       (with_shuffle None fig_load_small))

(* {1 Happens-before checking} *)

let hb_run body =
  let engine = Sim.Engine.create ~seed:1L () in
  ignore (Sim.Hb.enable engine);
  body engine;
  Sim.Engine.run engine;
  Sim.Hb.races engine

let hb_write_write () =
  let cell = Sim.Hb.cell ~name:"toy.cell" in
  let races =
    hb_run (fun engine ->
        Sim.Engine.spawn engine ~name:"w1" (fun () -> Sim.Hb.write cell);
        Sim.Engine.spawn engine ~name:"w2" (fun () -> Sim.Hb.write cell))
  in
  match races with
  | [ r ] ->
      Alcotest.(check string) "kind" "write/write" (Sim.Hb.kind_name r.Sim.Hb.kind);
      Alcotest.(check string) "cell" "toy.cell" r.Sim.Hb.cell
  | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs)

let hb_read_write () =
  let cell = Sim.Hb.cell ~name:"toy.rw" in
  let races =
    hb_run (fun engine ->
        Sim.Engine.spawn engine ~name:"r" (fun () -> Sim.Hb.read cell);
        Sim.Engine.spawn engine ~name:"w" (fun () -> Sim.Hb.write cell))
  in
  match races with
  | [ r ] ->
      Alcotest.(check string) "kind" "read/write" (Sim.Hb.kind_name r.Sim.Hb.kind)
  | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs)

let hb_reads_never_race () =
  let cell = Sim.Hb.cell ~name:"toy.rr" in
  let races =
    hb_run (fun engine ->
        Sim.Engine.spawn engine ~name:"r1" (fun () -> Sim.Hb.read cell);
        Sim.Engine.spawn engine ~name:"r2" (fun () -> Sim.Hb.read cell))
  in
  Alcotest.(check int) "read/read is no race" 0 (List.length races)

let hb_sync_edge_orders () =
  (* Writer publishes through an ivar; the reader's write is ordered
     after it even though both land at t=0. *)
  let cell = Sim.Hb.cell ~name:"toy.sync" in
  let races =
    hb_run (fun engine ->
        let iv = Sim.Ivar.create () in
        Sim.Engine.spawn engine ~name:"first" (fun () ->
            Sim.Hb.write cell;
            Sim.Ivar.fill iv ());
        Sim.Engine.spawn engine ~name:"second" (fun () ->
            Sim.Ivar.read iv;
            Sim.Hb.write cell))
  in
  Alcotest.(check int) "ivar edge synchronizes" 0 (List.length races)

let hb_time_separation_orders () =
  let cell = Sim.Hb.cell ~name:"toy.time" in
  let races =
    hb_run (fun engine ->
        Sim.Engine.spawn engine ~name:"early" (fun () -> Sim.Hb.write cell);
        Sim.Engine.spawn engine ~name:"late" (fun () ->
            Sim.Engine.sleep 1.0;
            Sim.Hb.write cell))
  in
  Alcotest.(check int) "the clock serializes distinct instants" 0
    (List.length races)

let hb_spawn_edge_orders () =
  (* Parent writes, then spawns a child that writes at the same instant:
     the spawn edge orders them. *)
  let cell = Sim.Hb.cell ~name:"toy.spawn" in
  let races =
    hb_run (fun engine ->
        Sim.Engine.spawn engine ~name:"parent" (fun () ->
            Sim.Hb.write cell;
            Sim.Engine.spawn engine ~name:"child" (fun () -> Sim.Hb.write cell)))
  in
  Alcotest.(check int) "spawn edge synchronizes" 0 (List.length races)

let hb_dormant_is_free () =
  let cell = Sim.Hb.cell ~name:"toy.dormant" in
  let engine = Sim.Engine.create ~seed:1L () in
  Sim.Engine.spawn engine ~name:"w" (fun () -> Sim.Hb.write cell);
  Sim.Engine.run engine;
  Alcotest.(check int) "no checker, no races" 0 (List.length (Sim.Hb.races engine));
  Alcotest.(check bool) "not enabled" false (Sim.Hb.enabled engine)

let chaos_small () =
  let r =
    Experiments.Fig_chaos.run ~nodes:2 ~functions:5 ~calls:30
      ~rates:[ 0.0; 0.05 ] ~seed:5L ()
  in
  Obs.Json.to_string (Experiments.Fig_chaos.to_json r)
  ^ r.Experiments.Fig_chaos.timeline

let with_hb f =
  Unix.putenv "SEUSS_HB" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "SEUSS_HB" "0") f

let experiments_race_free () =
  (* The acceptance gate: shipped workloads report zero unsynchronized
     pairs with the checker armed. Single-node: drive concurrent
     invocations through the full controller stack and read the race
     count off the engine. *)
  let races =
    with_hb (fun () ->
        Experiments.Harness.run_sim ~seed:5L (fun engine ->
            let env = Experiments.Harness.make_seuss_env engine in
            let controller, _node = Experiments.Harness.seuss_controller env in
            let live = ref 8 in
            let all_done = Sim.Ivar.create () in
            for i = 1 to 8 do
              Sim.Engine.spawn engine
                ~name:(Printf.sprintf "client-%d" i)
                (fun () ->
                  for j = 0 to 4 do
                    ignore
                      (Platform.Controller.invoke controller
                         {
                           Platform.Controller.fn_id =
                             Printf.sprintf "fn-%d" (((i * 5) + j) mod 6);
                           action = Platform.Workloads.nop;
                         })
                  done;
                  decr live;
                  if !live = 0 then Sim.Ivar.fill all_done ())
            done;
            Sim.Ivar.read all_done;
            Sim.Hb.race_count engine))
  in
  Alcotest.(check int) "no races in the single-node stack" 0 races;
  (* Cluster: the chaos sweep exercises the shared registry. Arming the
     checker must be invisible — same bytes, no San_race in the
     timeline — which also proves it found nothing to report. *)
  let plain = chaos_small () in
  let armed = with_hb chaos_small in
  Alcotest.(check bool) "chaos run unchanged with checker armed" true
    (String.equal plain armed)

let () =
  Alcotest.run "sanitizer"
    [
      ( "shuffle",
        [
          Alcotest.test_case "unarmed is FIFO" `Quick fifo_baseline;
          Alcotest.test_case "catches order dependence" `Quick
            shuffle_catches_order_dependence;
          Alcotest.test_case "deterministic per seed" `Quick
            shuffle_deterministic_per_seed;
        ] );
      ( "identity",
        [
          Alcotest.test_case "fig4" `Slow fig4_identity;
          Alcotest.test_case "fig_chaos" `Slow chaos_identity;
          Alcotest.test_case "fig_reap" `Slow reap_identity;
          Alcotest.test_case "fig_load run-twice" `Slow fig_load_run_twice;
          Alcotest.test_case "fig_load" `Slow fig_load_identity;
        ] );
      ( "happens-before",
        [
          Alcotest.test_case "write/write race" `Quick hb_write_write;
          Alcotest.test_case "read/write race" `Quick hb_read_write;
          Alcotest.test_case "read/read clean" `Quick hb_reads_never_race;
          Alcotest.test_case "sync edge" `Quick hb_sync_edge_orders;
          Alcotest.test_case "time separation" `Quick hb_time_separation_orders;
          Alcotest.test_case "spawn edge" `Quick hb_spawn_edge_orders;
          Alcotest.test_case "dormant free" `Quick hb_dormant_is_free;
          Alcotest.test_case "experiments race-free" `Slow experiments_race_free;
        ] );
    ]
