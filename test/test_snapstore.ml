(* Property/differential battery for the content-addressed snapshot
   store (lib/seuss/snapstore.ml), driven end-to-end through real nodes:
   every schedule boots a SEUSS node inside the simulator, invokes a
   small function corpus under a PRNG-drawn cache budget and eviction
   policy, and checks the full invariant set after every operation —
   the store's own self-check, exact frame refcounts recomputed from a
   page-table walk of every live snapshot, the byte budget, and the
   node-mirror equality. Schedules are a deterministic function of the
   seed (Sim.Prng, same convention as test_mem_prop), so a failure
   report names the exact (seed, schedule, step) to replay.

   Differential families:
   - an armed store under an effectively unlimited budget must serve the
     same schedule with the same (path, result) sequence as an unarmed
     node, and leave every function snapshot with an identical page-table
     shape (same vpns and flags; only frame ids may differ — that is
     what dedup rewrites);
   - SEUSS_SNAP_CACHE=0 must be bit-identical to unset (the disarmed
     default) for a harness-built experiment.

   SEUSS_PROP_SEED overrides the base seed (CI rotates it). *)

module F = Mem.Frame
module PT = Mem.Page_table

let base_seed =
  match Sys.getenv_opt "SEUSS_PROP_SEED" with
  | None -> 23L
  | Some s -> (
      match Int64.of_string_opt s with
      | Some v -> v
      | None ->
          Printf.eprintf "test_snapstore: malformed SEUSS_PROP_SEED %S\n" s;
          23L)

let schedules = 200

(* Sources repeat every 5 ranks so distinct functions genuinely share
   their compiled-bytecode tail pages, not just the runtime image. *)
let prop_fn k =
  {
    Seuss.Node.fn_id = Printf.sprintf "prop-%d" k;
    runtime = Unikernel.Image.Node;
    source =
      Printf.sprintf "function main(args) { return {fn: %d}; }" (k mod 5);
  }

let path_label = function
  | Seuss.Node.Cold -> "cold"
  | Seuss.Node.Warm -> "warm"
  | Seuss.Node.Hot -> "hot"

(* {1 Invariant checks} *)

(* Every live snapshot table: bases plus the function-snapshot mirror.
   With the idle-UC cache off the node destroys each serving UC before
   [invoke] returns, so at an op boundary these tables are the only
   frame holders in the environment. *)
let live_tables node =
  let bases =
    List.filter_map
      (fun img -> Seuss.Node.base_snapshot node img.Unikernel.Image.runtime)
      (Seuss.Node.config node).Seuss.Config.runtimes
  in
  let fns = List.map snd (Seuss.Node.snapshot_inventory node) in
  List.map (fun s -> s.Seuss.Snapshot.table) (bases @ fns)

let check_refcounts ~ctx env node =
  let frames = env.Seuss.Osenv.frames in
  let expected = PT.expected_refcounts (live_tables node) in
  let live = Hashtbl.length expected and used = F.used_frames frames in
  if live <> used then
    Alcotest.failf "%s: tables reference %d frames, allocator holds %d" ctx
      live used;
  Hashtbl.iter
    (fun fr rc ->
      let actual = F.refcount frames fr in
      if actual <> rc then
        Alcotest.failf "%s: frame %d refcount %d, tables imply %d" ctx fr
          actual rc)
    expected

let check_node ~ctx env node =
  (match Seuss.Node.snapstore node with
  | None -> ()
  | Some store ->
      (match Seuss.Snapstore.check store with
      | [] -> ()
      | vs ->
          Alcotest.failf "%s: store self-check: %s" ctx
            (String.concat "; " vs));
      if
        Seuss.Snapstore.member_count store <> Seuss.Node.snapshot_count node
      then
        Alcotest.failf "%s: store has %d members, node mirror has %d" ctx
          (Seuss.Snapstore.member_count store)
          (Seuss.Node.snapshot_count node);
      (* Schedules are serial, so nothing is pinned between ops and the
         budget must bind exactly (eviction happens inside insert). *)
      let resident = Seuss.Snapstore.resident_bytes store
      and budget = Seuss.Snapstore.budget_bytes store in
      if Int64.compare resident budget > 0 then
        Alcotest.failf "%s: resident %Ld bytes over budget %Ld" ctx resident
          budget);
  check_refcounts ~ctx env node

(* {1 Random schedules} *)

(* One schedule: a fresh node under a drawn (budget, policy), a random
   invoke/probe sequence over a small corpus, the full invariant set
   after every operation, then an orderly shutdown that must drain every
   frame. Tiny budgets force eviction (including of a snapshot captured
   moments before); the 0 draw runs the same schedule disarmed so the
   mirror-only paths stay covered by the same checks. *)
let run_schedule ~seed ~sched =
  let prng = Sim.Prng.create (Int64.add seed (Int64.of_int (sched * 7919))) in
  let budget =
    match Sim.Prng.int prng 100 with
    | r when r < 15 ->
        (* below a single member's footprint: immediate self-eviction *)
        Int64.of_int (262_144 + Sim.Prng.int prng 786_432)
    | r when r < 65 ->
        (* partial: a few members fit, the rest fight for residency *)
        Int64.of_int (Mem.Mconfig.mib (2 + Sim.Prng.int prng 6))
    | r when r < 90 -> Int64.of_int (Mem.Mconfig.mib 64)
    | _ -> 0L
  in
  let policy =
    if Sim.Prng.int prng 2 = 0 then Seuss.Config.Snap_lru
    else Seuss.Config.Snap_ws
  in
  let functions = 4 + Sim.Prng.int prng 5 in
  let steps = 10 + Sim.Prng.int prng 11 in
  Experiments.Harness.run_sim ~seed:(Int64.add seed (Int64.of_int sched)) (fun engine ->
      let env = Experiments.Harness.make_seuss_env engine in
      let config =
        {
          Seuss.Config.default with
          Seuss.Config.cache_idle_ucs = false;
          snapshot_cache_bytes = budget;
          snapshot_cache_policy = policy;
        }
      in
      let node = Seuss.Node.create ~config env in
      Seuss.Node.start node;
      for step = 1 to steps do
        let ctx =
          Printf.sprintf "seed %Ld sched %d step %d (budget %Ld)" seed sched
            step budget
        in
        (match Sim.Prng.int prng 100 with
        | r when r < 80 -> (
            let fn = prop_fn (Sim.Prng.int prng functions) in
            match Seuss.Node.invoke node fn ~args:"{}" with
            | Ok _, _ -> ()
            | Error _, _ ->
                Alcotest.failf "%s: invocation of %s failed" ctx
                  fn.Seuss.Node.fn_id)
        | r when r < 92 ->
            (* Policy-neutral probes must not disturb any checked state. *)
            ignore (Seuss.Node.snapshot_inventory node);
            ignore (Seuss.Node.snapshot_count node);
            Option.iter
              (fun s -> ignore (Seuss.Snapstore.members s))
              (Seuss.Node.snapstore node)
        | _ -> ignore (Seuss.Node.reclaim_idle_ucs node));
        check_node ~ctx env node
      done;
      Seuss.Node.shutdown node;
      let used = F.used_frames env.Seuss.Osenv.frames in
      if used <> 0 then
        Alcotest.failf "seed %Ld sched %d: %d frames leaked after shutdown"
          seed sched used)

let test_random_schedules () =
  for sched = 0 to schedules - 1 do
    run_schedule ~seed:base_seed ~sched
  done

(* {1 Differential: armed (unlimited) vs unarmed} *)

(* The page-table shape of a snapshot with frame ids erased: dedup may
   only rewrite which physical frame backs a page, never which pages
   exist or their flags. *)
let table_shape snap =
  List.sort compare
    (PT.fold_present snap.Seuss.Snapshot.table ~init:[]
       ~f:(fun acc ~vpn e ->
         ( vpn,
           PT.Entry.writable e,
           PT.Entry.cow e,
           PT.Entry.dirty e,
           PT.Entry.accessed e )
         :: acc))

let run_differential_world ~armed ~ops =
  Experiments.Harness.run_sim ~seed:31L (fun engine ->
      let env = Experiments.Harness.make_seuss_env engine in
      let config =
        {
          Seuss.Config.default with
          Seuss.Config.cache_idle_ucs = false;
          snapshot_cache_bytes =
            (if armed then Int64.of_int (Mem.Mconfig.mib 4096) else 0L);
        }
      in
      let node = Seuss.Node.create ~config env in
      Seuss.Node.start node;
      let observed =
        List.map
          (fun k ->
            let fn = prop_fn k in
            let result, path = Seuss.Node.invoke node fn ~args:"{}" in
            ( fn.Seuss.Node.fn_id,
              path_label path,
              match result with Ok v -> Ok v | Error _ -> Error () ))
          ops
      in
      let shapes =
        List.map
          (fun (fn_id, snap) -> (fn_id, table_shape snap))
          (Seuss.Node.snapshot_inventory node)
      in
      (match Seuss.Node.snapstore node with
      | Some store ->
          if not armed then Alcotest.fail "unarmed node grew a store";
          Alcotest.(check int) "no evictions under the unlimited budget" 0
            (Seuss.Snapstore.evictions store)
      | None -> if armed then Alcotest.fail "armed node has no store");
      (observed, shapes))

let test_armed_unlimited_matches_unarmed () =
  let prng = Sim.Prng.create (Int64.logxor base_seed 0xA11FL) in
  let ops = List.init 40 (fun _ -> Sim.Prng.int prng 6) in
  let armed_obs, armed_shapes = run_differential_world ~armed:true ~ops in
  let plain_obs, plain_shapes = run_differential_world ~armed:false ~ops in
  List.iter2
    (fun (fn_a, path_a, res_a) (fn_p, path_p, res_p) ->
      Alcotest.(check string) "same fn order" fn_p fn_a;
      Alcotest.(check string) (fn_a ^ " same path") path_p path_a;
      if res_a <> res_p then Alcotest.failf "%s: results diverged" fn_a)
    armed_obs plain_obs;
  Alcotest.(check int) "same snapshot inventory size"
    (List.length plain_shapes) (List.length armed_shapes);
  List.iter2
    (fun (fn_a, shape_a) (fn_p, shape_p) ->
      Alcotest.(check string) "same inventory order" fn_p fn_a;
      if shape_a <> shape_p then
        Alcotest.failf
          "%s: dedup changed the snapshot's page-table shape (vpns/flags)"
          fn_a)
    armed_shapes plain_shapes

(* The env hook's transparency contract: SEUSS_SNAP_CACHE=0 must be
   bit-identical to unset for a harness-built experiment (the CI job
   checks the same property over the full figures). *)
let test_env_hook_zero_is_identity () =
  Unix.putenv "SEUSS_SNAP_CACHE" "";
  let baseline = Experiments.Fig4.run ~set_sizes:[ 32 ] ~client_threads:8 () in
  Unix.putenv "SEUSS_SNAP_CACHE" "0";
  let zeroed = Experiments.Fig4.run ~set_sizes:[ 32 ] ~client_threads:8 () in
  Unix.putenv "SEUSS_SNAP_CACHE" "";
  Alcotest.(check bool) "SEUSS_SNAP_CACHE=0 run structurally identical" true
    (baseline = zeroed);
  Alcotest.(check string) "rendered output identical"
    (Experiments.Fig4.render baseline)
    (Experiments.Fig4.render zeroed)

(* {1 Dedup and eviction scenarios} *)

let scenario_config ~budget =
  {
    Seuss.Config.default with
    Seuss.Config.cache_idle_ucs = false;
    snapshot_cache_bytes = budget;
  }

let invoke_ok node fn =
  match Seuss.Node.invoke node fn ~args:"{}" with
  | Ok _, path -> path
  | Error _, _ ->
      Alcotest.failf "invocation of %s failed" fn.Seuss.Node.fn_id

let test_dedup_shares_content () =
  Experiments.Harness.run_sim ~seed:37L (fun engine ->
      let env = Experiments.Harness.make_seuss_env engine in
      let node =
        Seuss.Node.create
          ~config:(scenario_config ~budget:(Int64.of_int (Mem.Mconfig.mib 4096)))
          env
      in
      Seuss.Node.start node;
      ignore (invoke_ok node (prop_fn 0));
      let store =
        match Seuss.Node.snapstore node with
        | Some s -> s
        | None -> Alcotest.fail "store not armed"
      in
      let unique_after_first = Seuss.Snapstore.pages_unique store in
      (* Different source: shares everything but the bytecode tail. *)
      ignore (invoke_ok node (prop_fn 1));
      let unique_after_second = Seuss.Snapstore.pages_unique store in
      Alcotest.(check bool) "second member is almost entirely shared" true
        (unique_after_second - unique_after_first
        < unique_after_first / 10);
      (* Same source as fn 1 (ranks repeat mod 5): even the tail shares. *)
      ignore (invoke_ok node (prop_fn 6));
      let unique_after_clone = Seuss.Snapstore.pages_unique store in
      Alcotest.(check bool) "same-source member shares its bytecode tail" true
        (unique_after_clone - unique_after_second
        < unique_after_second - unique_after_first);
      Alcotest.(check bool)
        (Printf.sprintf "dedup ratio %.2f > 1.5"
           (Seuss.Snapstore.dedup_ratio store))
        true
        (Seuss.Snapstore.dedup_ratio store > 1.5);
      Alcotest.(check bool) "index holds fewer pages than were inserted" true
        (Seuss.Snapstore.pages_unique store
        < Seuss.Snapstore.pages_inserted store);
      Seuss.Node.shutdown node;
      Alcotest.(check int) "drained" 0
        (F.used_frames env.Seuss.Osenv.frames))

(* Measure the residency of a two- and three-member store under no
   pressure, so the eviction scenarios can pick a budget that fits
   exactly two members. Deterministic: same seed, same op sequence. *)
let measure_residency () =
  Experiments.Harness.run_sim ~seed:41L (fun engine ->
      let env = Experiments.Harness.make_seuss_env engine in
      let node =
        Seuss.Node.create
          ~config:(scenario_config ~budget:(Int64.of_int (Mem.Mconfig.mib 4096)))
          env
      in
      Seuss.Node.start node;
      let store =
        match Seuss.Node.snapstore node with
        | Some s -> s
        | None -> Alcotest.fail "store not armed"
      in
      ignore (invoke_ok node (prop_fn 0));
      ignore (invoke_ok node (prop_fn 1));
      let r2 = Seuss.Snapstore.resident_bytes store in
      ignore (invoke_ok node (prop_fn 2));
      let r3 = Seuss.Snapstore.resident_bytes store in
      Seuss.Node.shutdown node;
      (r2, r3))

let run_eviction_scenario ~policy =
  let r2, r3 = measure_residency () in
  Alcotest.(check bool) "third member costs bytes" true
    (Int64.compare r3 r2 > 0);
  Experiments.Harness.run_sim ~seed:41L (fun engine ->
      let env = Experiments.Harness.make_seuss_env engine in
      let config =
        { (scenario_config ~budget:r2) with snapshot_cache_policy = policy }
      in
      let node = Seuss.Node.create ~config env in
      Seuss.Node.start node;
      let store =
        match Seuss.Node.snapstore node with
        | Some s -> s
        | None -> Alcotest.fail "store not armed"
      in
      let evict_events = ref [] in
      Obs.Log.subscribe env.Seuss.Osenv.log (fun r ->
          match r.Obs.Log.ev with
          | Obs.Event.Snap_evict { fn_id; _ } ->
              evict_events := fn_id :: !evict_events
          | _ -> ());
      Alcotest.(check string) "fn0 cold" "cold"
        (path_label (invoke_ok node (prop_fn 0)));
      Alcotest.(check string) "fn1 cold" "cold"
        (path_label (invoke_ok node (prop_fn 1)));
      (* Touch fn0 so fn1 is the least recently used member. *)
      Alcotest.(check string) "fn0 warm" "warm"
        (path_label (invoke_ok node (prop_fn 0)));
      (* The third insert breaks the budget: fn1 must go. *)
      Alcotest.(check string) "fn2 cold" "cold"
        (path_label (invoke_ok node (prop_fn 2)));
      Alcotest.(check int) "one eviction" 1 (Seuss.Snapstore.evictions store);
      Alcotest.(check (list string)) "fn1 evicted" [ "prop-1" ] !evict_events;
      Alcotest.(check (list string)) "members are fn0 and fn2"
        [ "prop-0"; "prop-2" ]
        (List.map fst (Seuss.Snapstore.members store));
      Alcotest.(check int) "mirror follows the eviction" 2
        (Seuss.Node.snapshot_count node);
      Alcotest.(check bool) "budget holds after eviction" true
        (Int64.compare
           (Seuss.Snapstore.resident_bytes store)
           (Seuss.Snapstore.budget_bytes store)
        <= 0);
      (* Cold-boot fallback: the evicted function recompiles and is
         readmitted (evicting the new LRU member in turn). *)
      Alcotest.(check string) "evicted fn falls back to cold" "cold"
        (path_label (invoke_ok node (prop_fn 1)));
      Alcotest.(check int) "readmission evicts in turn" 2
        (Seuss.Snapstore.evictions store);
      (match Seuss.Snapstore.check store with
      | [] -> ()
      | vs -> Alcotest.failf "store self-check: %s" (String.concat "; " vs));
      Seuss.Node.shutdown node;
      Alcotest.(check int) "drained" 0
        (F.used_frames env.Seuss.Osenv.frames))

let test_lru_evicts_least_recent () = run_eviction_scenario ~policy:Seuss.Config.Snap_lru

(* Without recorded working sets every member scores equal under Ws, so
   the policy must fall back to the same deterministic recency order —
   this pins the tie-break rather than leaving it to chance. *)
let test_ws_without_sets_matches_lru () =
  run_eviction_scenario ~policy:Seuss.Config.Snap_ws

let () =
  let case name f = Alcotest.test_case name `Slow f in
  Alcotest.run "snapstore"
    [
      ( "schedules",
        [
          case
            (Printf.sprintf "%d random schedules (seed %Ld)" schedules
               base_seed)
            test_random_schedules;
        ] );
      ( "differential",
        [
          case "armed unlimited == unarmed" test_armed_unlimited_matches_unarmed;
          case "SEUSS_SNAP_CACHE=0 == unset" test_env_hook_zero_is_identity;
        ] );
      ( "scenarios",
        [
          case "dedup shares content across members" test_dedup_shares_content;
          case "lru evicts the least recent member" test_lru_evicts_least_recent;
          case "ws without sets falls back to recency"
            test_ws_without_sets_matches_lru;
        ] );
    ]
