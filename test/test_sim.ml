(* Tests for the discrete-event simulation kernel. *)

let check_float = Alcotest.(check (float 1e-9))

let run_sim f =
  let engine = Sim.Engine.create () in
  f engine;
  Sim.Engine.run engine;
  engine

(* {1 Heap} *)

let test_heap_ordering () =
  let h = Sim.Heap.create ~cmp:compare in
  List.iter (Sim.Heap.push h) [ 5; 3; 9; 1; 7; 3; 0 ];
  let rec drain acc =
    match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3; 3; 5; 7; 9 ] (drain [])

let test_heap_empty () =
  let h = Sim.Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  Alcotest.(check (option int)) "pop" None (Sim.Heap.pop h);
  Alcotest.(check (option int)) "peek" None (Sim.Heap.peek h)

let heap_sorts_like_list =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:compare in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* {1 Prng} *)

let test_prng_deterministic () =
  let a = Sim.Prng.create 42L and b = Sim.Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Prng.next a) (Sim.Prng.next b)
  done

let test_prng_split_independent () =
  let a = Sim.Prng.create 42L in
  let c = Sim.Prng.split a in
  Alcotest.(check bool) "derived stream differs" true
    (Sim.Prng.next a <> Sim.Prng.next c)

let prng_float_in_range =
  QCheck.Test.make ~name:"float draws lie in [0,1)" ~count:100
    QCheck.(int64)
    (fun seed ->
      let r = Sim.Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let f = Sim.Prng.float r in
        if not (f >= 0.0 && f < 1.0) then ok := false
      done;
      !ok)

let prng_int_in_bound =
  QCheck.Test.make ~name:"int draws lie in [0,bound)" ~count:100
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Sim.Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Sim.Prng.int r bound in
        if not (v >= 0 && v < bound) then ok := false
      done;
      !ok)

let test_prng_shuffle_permutation () =
  let r = Sim.Prng.create 7L in
  let a = Array.init 100 Fun.id in
  Sim.Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

(* {1 Engine} *)

let test_engine_time_advances () =
  let log = ref [] in
  let engine =
    run_sim (fun e ->
        Sim.Engine.spawn e (fun () ->
            Sim.Engine.sleep 1.5;
            log := (Sim.Engine.now e, "a") :: !log;
            Sim.Engine.sleep 0.5;
            log := (Sim.Engine.now e, "b") :: !log))
  in
  check_float "final clock" 2.0 (Sim.Engine.now engine);
  Alcotest.(check (list string)) "order" [ "a"; "b" ]
    (List.rev_map snd !log)

let test_engine_fifo_at_same_time () =
  let log = ref [] in
  ignore
    (run_sim (fun e ->
         for i = 1 to 5 do
           Sim.Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
         done));
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_interleaving () =
  let log = ref [] in
  ignore
    (run_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             Sim.Engine.sleep 1.0;
             log := "slow" :: !log);
         Sim.Engine.spawn e (fun () ->
             Sim.Engine.sleep 0.25;
             log := "fast" :: !log)));
  Alcotest.(check (list string)) "ordering by time" [ "fast"; "slow" ]
    (List.rev !log)

let test_engine_until () =
  let engine = Sim.Engine.create () in
  let fired = ref 0 in
  for _ = 1 to 10 do
    Sim.Engine.schedule engine ~delay:1.0 (fun () -> incr fired)
  done;
  Sim.Engine.schedule engine ~delay:5.0 (fun () -> incr fired);
  Sim.Engine.run ~until:2.0 engine;
  Alcotest.(check int) "only events before the limit" 10 !fired;
  check_float "clock stops at limit" 2.0 (Sim.Engine.now engine)

let test_engine_negative_delay_rejected () =
  let engine = Sim.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: delay must be finite and non-negative")
    (fun () -> Sim.Engine.schedule engine ~delay:(-1.0) (fun () -> ()))

let test_engine_process_failure () =
  let engine = Sim.Engine.create () in
  Sim.Engine.spawn engine ~name:"boom" (fun () -> failwith "bad");
  (match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected Process_failure"
  | exception Sim.Engine.Process_failure ("boom", _) -> ()
  | exception e -> raise e);
  (* The engine must be reusable after a failed run. *)
  Sim.Engine.spawn engine (fun () -> Sim.Engine.sleep 1.0);
  Sim.Engine.run engine

let test_engine_nested_spawn () =
  let count = ref 0 in
  ignore
    (run_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             Sim.Engine.sleep 1.0;
             Sim.Engine.spawn e (fun () ->
                 Sim.Engine.sleep 1.0;
                 incr count);
             incr count)));
  Alcotest.(check int) "both ran" 2 !count

(* Property: identical seeds and workloads give identical traces. *)
let engine_deterministic =
  QCheck.Test.make ~name:"same seed gives identical execution" ~count:50
    QCheck.(pair int64 (list (int_range 1 100)))
    (fun (seed, delays) ->
      let trace () =
        let e = Sim.Engine.create ~seed () in
        let log = ref [] in
        List.iteri
          (fun i d ->
            Sim.Engine.spawn e (fun () ->
                Sim.Engine.sleep (float_of_int d /. 17.0);
                let r = Sim.Prng.int (Sim.Engine.rng e) 1000 in
                Sim.Engine.sleep (float_of_int r /. 100.0);
                log := (i, Sim.Engine.now e) :: !log))
          delays;
        Sim.Engine.run e;
        (!log, Sim.Engine.now e, Sim.Engine.events_executed e)
      in
      trace () = trace ())

(* {1 Ivar} *)

let test_ivar_fill_then_read () =
  let result = ref 0 in
  ignore
    (run_sim (fun e ->
         let iv = Sim.Ivar.create () in
         Sim.Ivar.fill iv 42;
         Sim.Engine.spawn e (fun () -> result := Sim.Ivar.read iv)));
  Alcotest.(check int) "read" 42 !result

let test_ivar_read_blocks () =
  let result = ref (0, 0.0) in
  ignore
    (run_sim (fun e ->
         let iv = Sim.Ivar.create () in
         Sim.Engine.spawn e (fun () ->
             let v = Sim.Ivar.read iv in
             result := (v, Sim.Engine.now e));
         Sim.Engine.spawn e (fun () ->
             Sim.Engine.sleep 3.0;
             Sim.Ivar.fill iv 7)));
  Alcotest.(check int) "value" 7 (fst !result);
  check_float "woke at fill time" 3.0 (snd !result)

let test_ivar_double_fill_rejected () =
  let iv = Sim.Ivar.create () in
  ignore
    (run_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             Sim.Ivar.fill iv 1;
             Alcotest.(check bool) "try_fill fails" false (Sim.Ivar.try_fill iv 2))));
  Alcotest.(check (option int)) "kept first" (Some 1) (Sim.Ivar.peek iv)

let test_ivar_many_waiters () =
  let woken = ref [] in
  ignore
    (run_sim (fun e ->
         let iv = Sim.Ivar.create () in
         for i = 1 to 4 do
           Sim.Engine.spawn e (fun () ->
               let v = Sim.Ivar.read iv in
               woken := (i, v) :: !woken)
         done;
         Sim.Engine.spawn e (fun () ->
             Sim.Engine.sleep 1.0;
             Sim.Ivar.fill iv 9)));
  Alcotest.(check (list (pair int int)))
    "all woken in fifo order"
    [ (1, 9); (2, 9); (3, 9); (4, 9) ]
    (List.rev !woken)

let test_ivar_timeout_expires () =
  let got = ref (Some 1) in
  ignore
    (run_sim (fun e ->
         let iv = Sim.Ivar.create () in
         Sim.Engine.spawn e (fun () ->
             got := Sim.Ivar.read_timeout iv ~timeout:2.0;
             check_float "woke at deadline" 2.0 (Sim.Engine.now e))));
  Alcotest.(check (option int)) "timed out" None !got

let test_ivar_timeout_beaten_by_fill () =
  let got = ref None in
  ignore
    (run_sim (fun e ->
         let iv = Sim.Ivar.create () in
         Sim.Engine.spawn e (fun () ->
             got := Sim.Ivar.read_timeout iv ~timeout:5.0);
         Sim.Engine.spawn e (fun () ->
             Sim.Engine.sleep 1.0;
             Sim.Ivar.fill iv 11)));
  Alcotest.(check (option int)) "value before deadline" (Some 11) !got

(* {1 Semaphore} *)

let test_semaphore_limits_concurrency () =
  let active = ref 0 and peak = ref 0 in
  ignore
    (run_sim (fun e ->
         let sem = Sim.Semaphore.create 2 in
         for _ = 1 to 6 do
           Sim.Engine.spawn e (fun () ->
               Sim.Semaphore.with_permit sem (fun () ->
                   incr active;
                   if !active > !peak then peak := !active;
                   Sim.Engine.sleep 1.0;
                   decr active))
         done));
  Alcotest.(check int) "peak parallelism" 2 !peak

let test_semaphore_fifo_handoff () =
  let order = ref [] in
  ignore
    (run_sim (fun e ->
         let sem = Sim.Semaphore.create 1 in
         for i = 1 to 3 do
           Sim.Engine.spawn e (fun () ->
               Sim.Semaphore.with_permit sem (fun () ->
                   order := i :: !order;
                   Sim.Engine.sleep 1.0))
         done));
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !order)

let test_semaphore_over_release_rejected () =
  let sem = Sim.Semaphore.create 1 in
  Alcotest.check_raises "over release"
    (Invalid_argument "Semaphore.release: released above capacity")
    (fun () -> Sim.Semaphore.release sem)

let test_semaphore_counters () =
  ignore
    (run_sim (fun e ->
         let sem = Sim.Semaphore.create 3 in
         Sim.Engine.spawn e (fun () ->
             Sim.Semaphore.acquire sem;
             Sim.Semaphore.acquire sem;
             Alcotest.(check int) "available" 1 (Sim.Semaphore.available sem);
             Alcotest.(check int) "in_use" 2 (Sim.Semaphore.in_use sem);
             Sim.Semaphore.release sem;
             Sim.Semaphore.release sem;
             Alcotest.(check int) "back to full" 3 (Sim.Semaphore.available sem))))

(* {1 Channel} *)

let test_channel_send_recv () =
  let got = ref [] in
  ignore
    (run_sim (fun e ->
         let ch = Sim.Channel.create () in
         Sim.Engine.spawn e (fun () ->
             for _ = 1 to 3 do
               got := Sim.Channel.recv ch :: !got
             done);
         Sim.Engine.spawn e (fun () ->
             Sim.Engine.sleep 1.0;
             Sim.Channel.send ch "x";
             Sim.Channel.send ch "y";
             Sim.Engine.sleep 1.0;
             Sim.Channel.send ch "z")));
  Alcotest.(check (list string)) "fifo items" [ "x"; "y"; "z" ] (List.rev !got)

let test_channel_multiple_consumers () =
  (* Work-queue usage: each item is consumed exactly once. *)
  let seen = Hashtbl.create 16 in
  ignore
    (run_sim (fun e ->
         let ch = Sim.Channel.create () in
         for w = 1 to 4 do
           Sim.Engine.spawn e (fun () ->
               let rec loop () =
                 match Sim.Channel.recv_timeout ch ~timeout:10.0 with
                 | None -> ()
                 | Some item ->
                     Alcotest.(check bool)
                       "not seen before" false (Hashtbl.mem seen item);
                     Hashtbl.replace seen item w;
                     Sim.Engine.sleep 0.5;
                     loop ()
               in
               loop ())
         done;
         Sim.Engine.spawn e (fun () ->
             for i = 1 to 20 do
               Sim.Channel.send ch i;
               Sim.Engine.sleep 0.1
             done)));
  Alcotest.(check int) "all items consumed once" 20 (Hashtbl.length seen)

let test_channel_recv_timeout () =
  let got = ref (Some 5) in
  ignore
    (run_sim (fun e ->
         let ch = Sim.Channel.create () in
         Sim.Engine.spawn e (fun () ->
             got := Sim.Channel.recv_timeout ch ~timeout:1.0)));
  Alcotest.(check (option int)) "timed out" None !got

(* {1 Trace} *)

let test_trace_records_spans () =
  let engine = Sim.Engine.create () in
  let spans = ref [] in
  Sim.Engine.spawn engine (fun () ->
      let tr = Sim.Trace.start engine in
      Sim.Trace.span "outer" (fun () ->
          Sim.Engine.sleep 1.0;
          Sim.Trace.span "inner" (fun () -> Sim.Engine.sleep 0.5);
          Sim.Trace.mark "point");
      spans := Sim.Trace.stop tr);
  Sim.Engine.run engine;
  match !spans with
  | [ outer; inner; point ] ->
      Alcotest.(check string) "outer first" "outer" outer.Sim.Trace.name;
      Alcotest.(check int) "inner nested" 1 inner.Sim.Trace.depth;
      Alcotest.(check (float 1e-9)) "outer duration" 1.5
        (outer.Sim.Trace.t_end -. outer.Sim.Trace.t_start);
      Alcotest.(check (float 1e-9)) "mark is zero width" 0.0
        (point.Sim.Trace.t_end -. point.Sim.Trace.t_start)
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let test_trace_noop_without_ambient () =
  Alcotest.(check int) "span is pass-through" 7
    (Sim.Trace.span "ignored" (fun () -> 7));
  Sim.Trace.mark "ignored"

let test_trace_renders () =
  let engine = Sim.Engine.create () in
  let out = ref "" in
  Sim.Engine.spawn engine (fun () ->
      let tr = Sim.Trace.start engine in
      Sim.Trace.span "op" (fun () -> Sim.Engine.sleep 0.01);
      out := Sim.Trace.render (Sim.Trace.stop tr));
  Sim.Engine.run engine;
  Alcotest.(check bool) "mentions op" true
    (String.length !out > 0
    &&
    let contains needle hay =
      let n = String.length needle and len = String.length hay in
      let rec go i = i + n <= len && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    contains "op" !out)

let test_trace_span_records_on_exception () =
  let engine = Sim.Engine.create () in
  let spans = ref [] in
  let raised = ref false in
  Sim.Engine.spawn engine (fun () ->
      let tr = Sim.Trace.start_ctx engine in
      (try
         Sim.Trace.span "doomed" (fun () ->
             Sim.Engine.sleep 0.25;
             failwith "boom")
       with Failure _ -> raised := true);
      spans := Sim.Trace.stop_ctx tr);
  Sim.Engine.run engine;
  Alcotest.(check bool) "exception propagated" true !raised;
  match !spans with
  | [ s ] ->
      Alcotest.(check string) "span marked failed" "doomed [failed]"
        s.Sim.Trace.name;
      Alcotest.(check (float 1e-9)) "duration recorded" 0.25
        (s.Sim.Trace.t_end -. s.Sim.Trace.t_start)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_trace_nested_depth_after_exception () =
  let engine = Sim.Engine.create () in
  let spans = ref [] in
  Sim.Engine.spawn engine (fun () ->
      let tr = Sim.Trace.start_ctx engine in
      Sim.Trace.span "outer" (fun () ->
          (try Sim.Trace.span "fails" (fun () -> failwith "x")
           with Failure _ -> ());
          (* Depth must be restored: this sibling sits at depth 1 again,
             and its child at depth 2. *)
          Sim.Trace.span "sibling" (fun () ->
              Sim.Trace.span "grandchild" (fun () -> ());
              Sim.Trace.mark "marker"));
      spans := Sim.Trace.stop_ctx tr);
  Sim.Engine.run engine;
  let depth name =
    match List.find_opt (fun s -> s.Sim.Trace.name = name) !spans with
    | Some s -> s.Sim.Trace.depth
    | None -> Alcotest.failf "span %S not recorded" name
  in
  Alcotest.(check int) "outer at 0" 0 (depth "outer");
  Alcotest.(check int) "failed child at 1" 1 (depth "fails [failed]");
  Alcotest.(check int) "sibling back at 1" 1 (depth "sibling");
  Alcotest.(check int) "grandchild at 2" 2 (depth "grandchild");
  Alcotest.(check int) "mark inherits depth" 2 (depth "marker")

let test_trace_mark_zero_width () =
  let engine = Sim.Engine.create () in
  let spans = ref [] in
  Sim.Engine.spawn engine (fun () ->
      let tr = Sim.Trace.start_ctx engine in
      Sim.Engine.sleep 1.0;
      Sim.Trace.mark "instant";
      spans := Sim.Trace.stop_ctx tr);
  Sim.Engine.run engine;
  match !spans with
  | [ s ] ->
      Alcotest.(check string) "named" "instant" s.Sim.Trace.name;
      Alcotest.(check (float 0.0)) "zero width" s.Sim.Trace.t_start
        s.Sim.Trace.t_end;
      Alcotest.(check (float 1e-9)) "at mark time" 1.0 s.Sim.Trace.t_start
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* Two concurrently traced processes: each context collects only its own
   process's spans even though their sleeps interleave in engine time. *)
let test_trace_concurrent_contexts_disjoint () =
  let engine = Sim.Engine.create () in
  let collected = Array.make 2 [] in
  let spawn_traced idx stagger =
    Sim.Engine.spawn engine ~name:(Printf.sprintf "p%d" idx) (fun () ->
        let tr = Sim.Trace.start_ctx engine in
        Sim.Engine.sleep stagger;
        for i = 1 to 3 do
          Sim.Trace.span
            (Printf.sprintf "p%d.op%d" idx i)
            (fun () ->
              Sim.Engine.sleep 0.4;
              Sim.Trace.mark (Printf.sprintf "p%d.mark%d" idx i))
        done;
        collected.(idx) <- Sim.Trace.stop_ctx tr)
  in
  spawn_traced 0 0.0;
  spawn_traced 1 0.2;
  Sim.Engine.run engine;
  Array.iteri
    (fun idx spans ->
      Alcotest.(check int)
        (Printf.sprintf "p%d span count" idx)
        6 (List.length spans);
      List.iter
        (fun s ->
          let prefix = Printf.sprintf "p%d." idx in
          let plen = String.length prefix in
          Alcotest.(check bool)
            (Printf.sprintf "%s owns %s" prefix s.Sim.Trace.name)
            true
            (String.length s.Sim.Trace.name >= plen
            && String.sub s.Sim.Trace.name 0 plen = prefix))
        spans)
    collected;
  (* The two trees really did overlap in time (the test would be vacuous
     if the processes ran back-to-back). *)
  let bounds spans =
    List.fold_left
      (fun (lo, hi) s ->
        (Float.min lo s.Sim.Trace.t_start, Float.max hi s.Sim.Trace.t_end))
      (infinity, neg_infinity) spans
  in
  let lo0, hi0 = bounds collected.(0) and lo1, hi1 = bounds collected.(1) in
  Alcotest.(check bool) "executions interleaved" true (lo1 < hi0 && lo0 < hi1)

(* A process-local context is inherited by children spawned while it is
   active, and takes precedence over the legacy engine-global trace. *)
let test_trace_ctx_inherited_and_shadows_ambient () =
  let engine = Sim.Engine.create () in
  let ctx_spans = ref [] and ambient_spans = ref [] in
  Sim.Engine.spawn engine (fun () ->
      let legacy = Sim.Trace.start engine in
      Sim.Engine.spawn engine (fun () ->
          let tr = Sim.Trace.start_ctx engine in
          Sim.Trace.span "local.op" (fun () -> Sim.Engine.sleep 0.1);
          Sim.Engine.spawn engine (fun () ->
              Sim.Trace.span "child.op" (fun () -> Sim.Engine.sleep 0.1));
          Sim.Engine.sleep 0.5;
          ctx_spans := Sim.Trace.stop_ctx tr);
      Sim.Trace.span "ambient.op" (fun () -> Sim.Engine.sleep 1.0);
      ambient_spans := Sim.Trace.stop legacy);
  Sim.Engine.run engine;
  let names spans = List.map (fun s -> s.Sim.Trace.name) spans in
  Alcotest.(check (list string))
    "ctx got its own + inherited child" [ "local.op"; "child.op" ]
    (names !ctx_spans);
  Alcotest.(check (list string))
    "ambient untouched by ctx processes" [ "ambient.op" ]
    (names !ambient_spans)

(* Causal identity: every span has a stable id, nested spans point at
   their enclosing span, siblings share a parent, and roots have none. *)
let test_trace_span_ids_and_parents () =
  let engine = Sim.Engine.create () in
  let spans = ref [] in
  Sim.Engine.spawn engine (fun () ->
      let tr = Sim.Trace.start_ctx engine in
      Sim.Trace.span "root" (fun () ->
          Sim.Trace.span "a" (fun () -> Sim.Engine.sleep 0.1);
          Sim.Trace.span "b" (fun () -> Sim.Trace.mark "b.mark"));
      Sim.Trace.span "root2" (fun () -> ());
      spans := Sim.Trace.stop_ctx tr);
  Sim.Engine.run engine;
  let find name =
    match List.find_opt (fun s -> s.Sim.Trace.name = name) !spans with
    | Some s -> s
    | None -> Alcotest.failf "span %S not recorded" name
  in
  let root = find "root" and a = find "a" and b = find "b" in
  let mark = find "b.mark" and root2 = find "root2" in
  Alcotest.(check (option int)) "root has no parent" None root.Sim.Trace.parent;
  Alcotest.(check (option int)) "root2 has no parent" None root2.Sim.Trace.parent;
  Alcotest.(check (option int)) "a under root" (Some root.Sim.Trace.id)
    a.Sim.Trace.parent;
  Alcotest.(check (option int)) "b under root" (Some root.Sim.Trace.id)
    b.Sim.Trace.parent;
  Alcotest.(check (option int)) "mark under b" (Some b.Sim.Trace.id)
    mark.Sim.Trace.parent;
  let ids = List.map (fun s -> s.Sim.Trace.id) !spans in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* Cross-process causality: a child spawned under an open span starts
   with that span as its inherited parent, and records its own pid. *)
let test_trace_parent_links_cross_spawn () =
  let engine = Sim.Engine.create () in
  let spans = ref [] in
  Sim.Engine.spawn engine (fun () ->
      let tr = Sim.Trace.start_ctx engine in
      Sim.Trace.span "parent.op" (fun () ->
          Sim.Engine.spawn engine (fun () ->
              Sim.Trace.span "child.op" (fun () -> Sim.Engine.sleep 0.2)));
      Sim.Engine.sleep 1.0;
      spans := Sim.Trace.stop_ctx tr);
  Sim.Engine.run engine;
  let find name =
    match List.find_opt (fun s -> s.Sim.Trace.name = name) !spans with
    | Some s -> s
    | None -> Alcotest.failf "span %S not recorded" name
  in
  let parent = find "parent.op" and child = find "child.op" in
  Alcotest.(check (option int)) "child parented to the spawn-time span"
    (Some parent.Sim.Trace.id) child.Sim.Trace.parent;
  Alcotest.(check int) "child nested one deeper"
    (parent.Sim.Trace.depth + 1) child.Sim.Trace.depth;
  Alcotest.(check bool) "pids differ across the spawn" true
    (parent.Sim.Trace.pid <> child.Sim.Trace.pid)

(* Engine self-profiling: the perf counters are always on and track the
   scheduler's actual work; pending drains to zero at quiescence. *)
let test_engine_perf_counters () =
  let engine = Sim.Engine.create () in
  let mid_pending = ref (-1) in
  for _ = 1 to 4 do
    Sim.Engine.spawn engine (fun () ->
        for _ = 1 to 5 do
          Sim.Engine.sleep 0.1
        done;
        mid_pending := Sim.Engine.pending engine)
  done;
  Sim.Engine.run engine;
  let perf = Sim.Engine.perf engine in
  (* 4 spawns + 4x5 sleeps = 24 scheduled wakeups, all dispatched. *)
  Alcotest.(check int) "scheduled" 24 perf.Sim.Engine.scheduled;
  Alcotest.(check int) "dispatched" 24 perf.Sim.Engine.dispatched;
  Alcotest.(check bool) "heap high-water sane" true
    (perf.Sim.Engine.max_heap >= 4 && perf.Sim.Engine.max_heap <= 24);
  Alcotest.(check bool) "pending observed mid-run" true (!mid_pending >= 0);
  Alcotest.(check int) "pending drained" 0 (Sim.Engine.pending engine)

(* The zero-alloc contract behind the seussheat pass: once the event
   heap and payload arena have grown to size, the steady-state dispatch
   loop — pop, dispatch, re-schedule, all through scalar columns — must
   not allocate a single minor word per event. A warm-up run grows the
   arrays first so the measured run sees only the steady state. *)
let test_engine_zero_alloc_dispatch () =
  let engine = Sim.Engine.create ~seed:1L () in
  let remaining = ref 0 in
  (* One recursive closure, allocated here once; per event the engine
     only stores/loads it through the arena. *)
  let rec cb () =
    if !remaining > 0 then begin
      decr remaining;
      Sim.Engine.schedule engine ~delay:1.0 cb
    end
  in
  remaining := 2_000;
  Sim.Engine.schedule engine ~delay:0.0 cb;
  Sim.Engine.run engine;
  let measured = 10_000 in
  remaining := measured;
  Sim.Engine.schedule engine ~delay:0.0 cb;
  let w0 = Gc.minor_words () in
  Sim.Engine.run engine;
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.0))
    (Printf.sprintf "minor words allocated across %d dispatches" (measured + 1))
    0.0 (w1 -. w0)

(* {1 Ownership census hooks (SEUSS_OWN)} *)

let with_own_env value f =
  (* "" reads as unset (Unix offers no unsetenv). *)
  Unix.putenv Sim.Engine.own_env_var value;
  Fun.protect ~finally:(fun () -> Unix.putenv Sim.Engine.own_env_var "") f

let test_census_hooks_run_at_quiescence () =
  let engine = Sim.Engine.create ~seed:3L ~own:true () in
  Alcotest.(check bool) "armed" true (Sim.Engine.own_armed engine);
  let fired = ref 0 in
  let quiesced = ref false in
  Sim.Engine.add_census_hook engine (fun () ->
      incr fired;
      (* Hooks run after the last event, outside any process. *)
      quiesced := Sim.Engine.pending engine = 0);
  Sim.Engine.spawn engine (fun () -> Sim.Engine.sleep 1.0);
  Alcotest.(check int) "not before run" 0 !fired;
  Sim.Engine.run engine;
  Alcotest.(check int) "exactly once at quiescence" 1 !fired;
  Alcotest.(check bool) "after the heap drained" true !quiesced

let test_census_hooks_inert_unarmed () =
  with_own_env "" (fun () ->
      let engine = Sim.Engine.create ~seed:3L () in
      Alcotest.(check bool) "census off by default" false
        (Sim.Engine.own_armed engine);
      let fired = ref 0 in
      Sim.Engine.add_census_hook engine (fun () -> incr fired);
      Sim.Engine.spawn engine (fun () -> Sim.Engine.sleep 1.0);
      Sim.Engine.run engine;
      Alcotest.(check int) "hook never runs unarmed" 0 !fired)

let test_census_env_arms () =
  with_own_env "1" (fun () ->
      Alcotest.(check bool) "SEUSS_OWN=1 arms Engine.create" true
        (Sim.Engine.own_armed (Sim.Engine.create ~seed:3L ())));
  with_own_env "0" (fun () ->
      Alcotest.(check bool) "SEUSS_OWN=0 behaves as unset" false
        (Sim.Engine.own_armed (Sim.Engine.create ~seed:3L ())));
  with_own_env "" (fun () ->
      Alcotest.(check bool) "empty behaves as unset" false
        (Sim.Engine.own_armed (Sim.Engine.create ~seed:3L ())))

let () =
  let case name f = Alcotest.test_case name `Quick f in
  let qcase = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "heap",
        [
          case "ordering" test_heap_ordering;
          case "empty" test_heap_empty;
          qcase heap_sorts_like_list;
        ] );
      ( "prng",
        [
          case "deterministic" test_prng_deterministic;
          case "split" test_prng_split_independent;
          case "shuffle permutation" test_prng_shuffle_permutation;
          qcase prng_float_in_range;
          qcase prng_int_in_bound;
        ] );
      ( "engine",
        [
          case "time advances" test_engine_time_advances;
          case "fifo at same time" test_engine_fifo_at_same_time;
          case "interleaving" test_engine_interleaving;
          case "run until" test_engine_until;
          case "negative delay rejected" test_engine_negative_delay_rejected;
          case "process failure" test_engine_process_failure;
          case "nested spawn" test_engine_nested_spawn;
          qcase engine_deterministic;
        ] );
      ( "trace",
        [
          case "records spans" test_trace_records_spans;
          case "noop without ambient" test_trace_noop_without_ambient;
          case "renders" test_trace_renders;
          case "span recorded on exception" test_trace_span_records_on_exception;
          case "nested depth after exception" test_trace_nested_depth_after_exception;
          case "mark zero width" test_trace_mark_zero_width;
          case "concurrent contexts disjoint" test_trace_concurrent_contexts_disjoint;
          case "ctx inherited, shadows ambient" test_trace_ctx_inherited_and_shadows_ambient;
          case "span ids and parents" test_trace_span_ids_and_parents;
          case "parent links cross spawn" test_trace_parent_links_cross_spawn;
        ] );
      ( "perf",
        [
          case "engine counters" test_engine_perf_counters;
          case "zero-alloc dispatch" test_engine_zero_alloc_dispatch;
        ] );
      ( "ivar",
        [
          case "fill then read" test_ivar_fill_then_read;
          case "read blocks" test_ivar_read_blocks;
          case "double fill rejected" test_ivar_double_fill_rejected;
          case "many waiters" test_ivar_many_waiters;
          case "timeout expires" test_ivar_timeout_expires;
          case "timeout beaten by fill" test_ivar_timeout_beaten_by_fill;
        ] );
      ( "semaphore",
        [
          case "limits concurrency" test_semaphore_limits_concurrency;
          case "fifo handoff" test_semaphore_fifo_handoff;
          case "over release rejected" test_semaphore_over_release_rejected;
          case "counters" test_semaphore_counters;
        ] );
      ( "channel",
        [
          case "send recv" test_channel_send_recv;
          case "multiple consumers" test_channel_multiple_consumers;
          case "recv timeout" test_channel_recv_timeout;
        ] );
      ( "census",
        [
          case "hooks run at quiescence" test_census_hooks_run_at_quiescence;
          case "hooks inert unarmed" test_census_hooks_inert_unarmed;
          case "env arms" test_census_env_arms;
        ] );
    ]
