(* seussctl: run the SEUSS reproduction experiments from the command
   line. Each subcommand regenerates one of the paper's tables/figures
   (see DESIGN.md's experiment index). *)

open Cmdliner

let seed_arg =
  let doc = "PRNG seed (experiments are deterministic per seed)." in
  Arg.(value & opt int64 7L & info [ "seed" ] ~docv:"SEED" ~doc)

(* Experiment subcommands take their one-line doc from the registry in
   Experiments.All — one table drives the CLI help, `seussctl info` and
   the startup coverage check in [main] below. *)
let exp_info name =
  match Experiments.All.doc name with
  | Some doc -> Cmd.info name ~doc
  | None ->
      Printf.ksprintf failwith
        "seussctl: subcommand %s missing from Experiments.All.registry" name

let print s = print_string s

(* Drive an engine the subcommand built itself and surface stuck
   waiters on stderr — stdout stays byte-identical, which the CI
   sanitizer-transparency check depends on. With SEUSS_DEADLOCK=1 the
   wait-for-graph detector adds one provenance line per stranded
   process. *)
let run_watched engine =
  Sim.Engine.run engine;
  let stuck = Sim.Engine.stuck_waiters engine in
  if stuck > 0 then begin
    Printf.eprintf
      "seussctl: %d process%s still parked at quiescence (set %s=1 for a \
       wait-for-graph report)\n"
      stuck
      (if stuck = 1 then "" else "es")
      Sim.Engine.deadlock_env_var;
    List.iter
      (fun (s : Sim.Engine.stranded) ->
        Printf.eprintf
          "seussctl:   %s (pid %d, spawned %.6f) stuck on %s since %.6f%s\n"
          s.Sim.Engine.proc s.Sim.Engine.pid s.Sim.Engine.spawned_at
          s.Sim.Engine.resource s.Sim.Engine.waiting_since
          (if s.Sim.Engine.in_cycle then " [wait cycle]" else ""))
      (Sim.Engine.stranded_waiters engine)
  end

let table1_cmd =
  let invocations =
    Arg.(
      value & opt int 475
      & info [ "n"; "invocations" ] ~docv:"N"
          ~doc:"Invocations per path (paper: 475).")
  in
  let run invocations seed =
    print (Experiments.Table1.render (Experiments.Table1.run ~invocations ~seed ()))
  in
  Cmd.v
    (exp_info "table1")
    Term.(const run $ invocations $ seed_arg)

let table2_cmd =
  let invocations =
    Arg.(value & opt int 50 & info [ "n" ] ~docv:"N" ~doc:"Invocations per cell.")
  in
  let run invocations seed =
    print (Experiments.Table2.render (Experiments.Table2.run ~invocations ~seed ()))
  in
  Cmd.v
    (exp_info "table2")
    Term.(const run $ invocations $ seed_arg)

let table3_cmd =
  let mem_gib =
    Arg.(
      value & opt int 88
      & info [ "mem-gib" ] ~docv:"GIB"
          ~doc:"Node memory budget in GiB (paper: 88; smaller runs faster).")
  in
  let run mem_gib seed =
    let budget_bytes =
      Int64.mul (Int64.of_int mem_gib) (Int64.of_int (Mem.Mconfig.mib 1024))
    in
    print (Experiments.Table3.render (Experiments.Table3.run ~budget_bytes ~seed ()))
  in
  Cmd.v
    (exp_info "table3")
    Term.(const run $ mem_gib $ seed_arg)

let sizes_arg =
  Arg.(
    value
    & opt (list int) Experiments.Fig4.default_set_sizes
    & info [ "sizes" ] ~docv:"M,M,..."
        ~doc:"Unique-function set sizes (one trial each).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Also write the data as CSV.")

let fig4_cmd =
  let threads =
    Arg.(value & opt int 32 & info [ "threads" ] ~docv:"C" ~doc:"Client threads.")
  in
  let run sizes threads csv seed =
    let r = Experiments.Fig4.run ~set_sizes:sizes ~client_threads:threads ~seed () in
    print (Experiments.Fig4.render r);
    Option.iter (fun path -> Experiments.Fig4.write_csv ~path r) csv
  in
  Cmd.v
    (exp_info "fig4")
    Term.(const run $ sizes_arg $ threads $ csv_arg $ seed_arg)

let fig5_cmd =
  let sizes =
    Arg.(
      value & opt (list int) [ 64; 2048; 65536 ]
      & info [ "sizes" ] ~docv:"M,M,..." ~doc:"Set sizes (paper: 64,2048,65536).")
  in
  let requests =
    Arg.(value & opt int 2048 & info [ "requests" ] ~docv:"N" ~doc:"Measured requests per panel.")
  in
  let run sizes requests csv seed =
    let panels = Experiments.Fig5.run ~set_sizes:sizes ~requests ~seed () in
    print (Experiments.Fig5.render panels);
    Option.iter (fun path -> Experiments.Fig5.write_csv ~path panels) csv
  in
  Cmd.v
    (exp_info "fig5")
    Term.(const run $ sizes $ requests $ csv_arg $ seed_arg)

let burst_cmd =
  let period =
    Arg.(
      value & opt float 32.0
      & info [ "period" ] ~docv:"SECONDS" ~doc:"Burst period (paper: 32, 16, 8).")
  in
  let duration =
    Arg.(value & opt float 300.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"Run length.")
  in
  let size =
    Arg.(value & opt int 64 & info [ "burst-size" ] ~docv:"N" ~doc:"Concurrent requests per burst.")
  in
  let run period duration size csv seed =
    let r = Experiments.Fig_burst.run ~period ~duration ~burst_size:size ~seed () in
    print (Experiments.Fig_burst.render r);
    Option.iter (fun path -> Experiments.Fig_burst.write_csv ~path r) csv
  in
  Cmd.v
    (exp_info "burst")
    Term.(const run $ period $ duration $ size $ csv_arg $ seed_arg)

let ablations_cmd =
  let invocations =
    Arg.(value & opt int 30 & info [ "n" ] ~docv:"N" ~doc:"Invocations per cell.")
  in
  let run invocations seed =
    print (Experiments.Ablations.render (Experiments.Ablations.run ~invocations ~seed ()))
  in
  Cmd.v
    (exp_info "ablations")
    Term.(const run $ invocations $ seed_arg)

let drseuss_cmd =
  let nodes =
    Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let functions =
    Arg.(value & opt int 40 & info [ "functions" ] ~docv:"M" ~doc:"Unique functions.")
  in
  let run nodes functions seed =
    print
      (Experiments.Drseuss_exp.render
         (Experiments.Drseuss_exp.run ~nodes ~functions ~seed ()))
  in
  Cmd.v
    (exp_info "drseuss")
    Term.(const run $ nodes $ functions $ seed_arg)

let chaos_cmd =
  let nodes =
    Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let functions =
    Arg.(value & opt int 25 & info [ "functions" ] ~docv:"M" ~doc:"Unique functions (default coprime to the cluster size, so repeats migrate across nodes and exercise the fetch path).")
  in
  let calls =
    Arg.(
      value & opt int 200
      & info [ "calls" ] ~docv:"K" ~doc:"Invocations per fault rate.")
  in
  let rates =
    Arg.(
      value
      & opt (list float) Experiments.Fig_chaos.default_rates
      & info [ "rates" ] ~docv:"R,R,..."
          ~doc:"Injected per-site fault rates to sweep (0 = control arm).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the sweep as one canonical JSON object (bit-identical \
                across runs of the same seed) instead of a table.")
  in
  let events =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:"Also dump the highest-rate run's failure/recovery timeline \
                as JSONL (crashes, evictions, retries, failovers).")
  in
  let run nodes functions calls rates json events csv seed =
    List.iter
      (fun r ->
        if r < 0.0 || r > 1.0 then begin
          Printf.eprintf "seussctl: --rates entries must be in [0, 1]\n";
          exit 2
        end)
      rates;
    let r =
      Experiments.Fig_chaos.run ~nodes ~functions ~calls ~rates ~seed ()
    in
    if json then
      print (Obs.Json.to_string (Experiments.Fig_chaos.to_json r) ^ "\n")
    else print (Experiments.Fig_chaos.render r);
    if events then print r.Experiments.Fig_chaos.timeline;
    Option.iter (fun path -> Experiments.Fig_chaos.write_csv ~path r) csv
  in
  Cmd.v
    (exp_info "chaos")
    Term.(const run $ nodes $ functions $ calls $ rates $ json $ events $ csv_arg $ seed_arg)

let reap_cmd =
  let functions =
    Arg.(
      value & opt int 8
      & info [ "functions" ] ~docv:"M" ~doc:"Distinct functions.")
  in
  let rounds =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~docv:"R"
          ~doc:
            "Measured warm rounds per arm (the recording round is \
             excluded).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the comparison as one canonical JSON object \
                (bit-identical across runs of the same seed) instead of \
                a table.")
  in
  let run functions rounds json csv seed =
    if functions < 1 || rounds < 1 then begin
      Printf.eprintf "seussctl: --functions and --rounds must be positive\n";
      exit 2
    end;
    let r = Experiments.Fig_reap.run ~functions ~rounds ~seed () in
    if json then
      print (Obs.Json.to_string (Experiments.Fig_reap.to_json r) ^ "\n")
    else print (Experiments.Fig_reap.render r);
    Option.iter (fun path -> Experiments.Fig_reap.write_csv ~path r) csv
  in
  Cmd.v
    (exp_info "reap")
    Term.(const run $ functions $ rounds $ json $ csv_arg $ seed_arg)

let ksm_cmd =
  let mem =
    Arg.(value & opt int 3072 & info [ "mem-mib" ] ~docv:"MIB" ~doc:"Node memory budget.")
  in
  let run mem seed =
    print (Experiments.Ksm_exp.render (Experiments.Ksm_exp.run ~budget_mib:mem ~seed ()))
  in
  Cmd.v
    (exp_info "ksm")
    Term.(const run $ mem $ seed_arg)

let all_cmd =
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Paper-scale parameters (88 GB density sweep, full burst set).")
  in
  let run full seed =
    let scale = if full then Experiments.All.Full else Experiments.All.Quick in
    print (Experiments.All.run ~scale ~seed ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every table and figure")
    Term.(const run $ full $ seed_arg)

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"PATH"
        ~doc:
          "Also export the traces as Chrome trace-event JSON (load in \
           Perfetto or chrome://tracing).")

let write_file path body =
  let oc = open_out path in
  output_string oc body;
  close_out oc

let trace_cmd =
  let source =
    Arg.(
      value
      & opt string "function main(args) { return {}; }"
      & info [ "source" ] ~docv:"MINIJS" ~doc:"Function source to trace.")
  in
  let run source chrome seed =
    let engine = Sim.Engine.create ~seed () in
    if Experiments.Harness.hb_of_env () then ignore (Sim.Hb.enable engine);
    let collected = ref [] in
    Sim.Engine.spawn engine ~name:"trace" (fun () ->
        let env = Seuss.Osenv.create engine in
        let node = Seuss.Node.create env in
        Seuss.Node.start node;
        let fn =
          { Seuss.Node.fn_id = "traced"; runtime = Unikernel.Image.Node; source }
        in
        let traced label prepare =
          prepare ();
          let tr = Sim.Trace.start engine in
          let t0 = Sim.Engine.now engine in
          (match Seuss.Node.invoke node fn ~args:"{}" with
          | Ok _, _ -> ()
          | Error _, _ -> prerr_endline "invocation failed");
          let total = Sim.Engine.now engine -. t0 in
          let spans = Sim.Trace.stop tr in
          collected := (label, spans) :: !collected;
          Printf.printf "%s invocation (%.2f ms total)
%s
" label
            (total *. 1e3) (Sim.Trace.render spans)
        in
        traced "cold" (fun () -> ());
        traced "hot" (fun () -> ());
        traced "warm" (fun () -> Seuss.Node.drop_idle node ~fn_id:"traced"));
    run_watched engine;
    Option.iter
      (fun path ->
        write_file path (Seuss.Traceout.chrome_string (List.rev !collected));
        Printf.eprintf "seussctl: wrote Chrome trace to %s\n" path)
      chrome
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace one cold, hot and warm invocation (span waterfalls; \
          $(b,--chrome) exports the same spans as Chrome trace-event JSON)")
    Term.(const run $ source $ chrome_arg $ seed_arg)

(* A small self-contained workload for the observability subcommands:
   [functions] distinct MiniJS functions invoked round-robin, so the
   event log shows cold, warm and hot paths plus snapshot captures. *)
let obs_workload ~functions ~calls node =
  for i = 0 to calls - 1 do
    let k = i mod functions in
    ignore
      (Seuss.Node.invoke node
         {
           Seuss.Node.fn_id = Printf.sprintf "fn-%d" k;
           runtime = Unikernel.Image.Node;
           source =
             Printf.sprintf "function main(args) { return {fn: %d}; }" k;
         }
         ~args:"{}")
  done

let functions_arg =
  Arg.(
    value & opt int 4
    & info [ "functions" ] ~docv:"M" ~doc:"Distinct functions in the workload.")

let require_positive name v =
  if v <= 0.0 then begin
    Printf.eprintf "seussctl: %s must be positive (got %g)\n" name v;
    exit 2
  end

let events_cmd =
  let calls =
    Arg.(
      value & opt int 12
      & info [ "calls" ] ~docv:"N" ~doc:"Invocations to run before dumping.")
  in
  let run functions calls chrome seed =
    require_positive "--functions" (float_of_int functions);
    if calls < 0 then begin
      Printf.eprintf "seussctl: --calls must be non-negative\n";
      exit 2
    end;
    let engine = Sim.Engine.create ~seed () in
    if Experiments.Harness.hb_of_env () then ignore (Sim.Hb.enable engine);
    let captures = ref [] in
    Sim.Engine.spawn engine ~name:"events" (fun () ->
        let env = Seuss.Osenv.create engine in
        let node = Seuss.Node.create env in
        Seuss.Node.start node;
        obs_workload ~functions ~calls node;
        print_string (Obs.Log.to_jsonl env.Seuss.Osenv.log);
        let dropped = Obs.Log.dropped env.Seuss.Osenv.log in
        if dropped > 0 then
          Printf.eprintf
            "seussctl: %d event%s evicted from the ring before this dump \
             (raise log_capacity to keep them)\n"
            dropped
            (if dropped = 1 then "" else "s");
        captures :=
          List.map
            (fun (c : Seuss.Node.capture) ->
              let path =
                match c.Seuss.Node.c_path with
                | Seuss.Node.Cold -> "cold"
                | Seuss.Node.Warm -> "warm"
                | Seuss.Node.Hot -> "hot"
              in
              ( Printf.sprintf "%s %s @%.3fs" c.Seuss.Node.c_fn path
                  c.Seuss.Node.c_t0,
                c.Seuss.Node.c_spans ))
            (Seuss.Node.captured_traces node));
    run_watched engine;
    Option.iter
      (fun path ->
        if !captures = [] then
          Printf.eprintf
            "seussctl: no sampled traces to export (arm capture with %s=1/N)\n"
            Seuss.Node.trace_sample_env_var
        else begin
          write_file path (Seuss.Traceout.chrome_string !captures);
          Printf.eprintf "seussctl: wrote %d sampled trace%s to %s\n"
            (List.length !captures)
            (if List.length !captures = 1 then "" else "s")
            path
        end)
      chrome
  in
  Cmd.v
    (Cmd.info "events"
       ~doc:
         "Run a small workload and dump the structured event log as JSONL \
          (one engine-timestamped event per line). With SEUSS_TRACE_SAMPLE \
          armed, $(b,--chrome) exports the sampled invocation traces.")
    Term.(const run $ functions_arg $ calls $ chrome_arg $ seed_arg)

let top_cmd =
  let duration =
    Arg.(
      value & opt float 30.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated run length.")
  in
  let interval =
    Arg.(
      value & opt float 5.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period (simulated).")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"C" ~doc:"Client processes.")
  in
  let ansi =
    Arg.(
      value & flag
      & info [ "ansi" ]
          ~doc:"Clear the screen between frames (live-dashboard mode) \
                instead of printing frames sequentially.")
  in
  let run duration interval clients functions ansi seed =
    require_positive "--duration" duration;
    require_positive "--interval" interval;
    require_positive "--clients" (float_of_int clients);
    require_positive "--functions" (float_of_int functions);
    let engine = Sim.Engine.create ~seed () in
    if Experiments.Harness.hb_of_env () then ignore (Sim.Hb.enable engine);
    Sim.Engine.spawn engine ~name:"top" (fun () ->
        let env = Seuss.Osenv.create engine in
        let node = Seuss.Node.create env in
        Seuss.Node.start node;
        let bd = Obs.Breakdown.attach env.Seuss.Osenv.log in
        let m = env.Seuss.Osenv.metrics in
        let log = env.Seuss.Osenv.log in
        let stop_at = Sim.Engine.now engine +. duration in
        for c = 1 to clients do
          let rng = Sim.Prng.split env.Seuss.Osenv.rng in
          Sim.Engine.spawn engine ~name:(Printf.sprintf "client-%d" c)
            (fun () ->
              while Sim.Engine.now engine < stop_at do
                let k = Sim.Prng.int rng functions in
                ignore
                  (Seuss.Node.invoke node
                     {
                       Seuss.Node.fn_id = Printf.sprintf "fn-%d" k;
                       runtime = Unikernel.Image.Node;
                       source =
                         Printf.sprintf
                           "function main(args) { return {fn: %d}; }" k;
                     }
                     ~args:"{}");
                Sim.Engine.sleep (0.05 +. (0.25 *. Sim.Prng.float rng))
              done)
        done;
        let frame () =
          if ansi then print_string "\027[2J\027[H";
          Printf.printf "seussctl top — t=%.1fs (simulated)\n"
            (Sim.Engine.now engine);
          let table =
            Stats.Tablefmt.create
              ~columns:
                [
                  ("path", Stats.Tablefmt.Left);
                  ("count", Stats.Tablefmt.Right);
                  ("err", Stats.Tablefmt.Right);
                  ("mean ms", Stats.Tablefmt.Right);
                  ("p99 ms", Stats.Tablefmt.Right);
                  ("deploy", Stats.Tablefmt.Right);
                  ("import", Stats.Tablefmt.Right);
                  ("run", Stats.Tablefmt.Right);
                  ("queue", Stats.Tablefmt.Right);
                ]
          in
          List.iter
            (fun (label, path) ->
              let where = [ ("path", label) ] in
              let h =
                Obs.Metrics.histogram m ~labels:where "node_invoke_seconds"
              in
              let ms sel =
                match Obs.Breakdown.per_path bd path with
                | None -> "-"
                | Some p -> Printf.sprintf "%.2f" (sel p *. 1e3)
              in
              Stats.Tablefmt.add_row table
                [
                  label;
                  string_of_int
                    (Obs.Metrics.sum_counters m ~where "node_invocations_total");
                  string_of_int
                    (Obs.Metrics.sum_counters m ~where "node_errors_total");
                  Printf.sprintf "%.2f" (Obs.Metrics.hist_mean h *. 1e3);
                  Printf.sprintf "%.2f"
                    (Obs.Metrics.hist_quantile h 0.99 *. 1e3);
                  ms (fun p -> p.Obs.Breakdown.deploy);
                  ms (fun p -> p.Obs.Breakdown.import);
                  ms (fun p -> p.Obs.Breakdown.run);
                  ms (fun p -> p.Obs.Breakdown.queue);
                ])
            [
              ("cold", Obs.Event.Cold);
              ("warm", Obs.Event.Warm);
              ("hot", Obs.Event.Hot);
            ];
          print_string (Stats.Tablefmt.render table);
          Printf.printf
            "free %.1f MB | idle UCs %.0f | fn snapshots %.0f | cow faults %d \
             | reclaims %d | oom wakes %d\n"
            (Obs.Metrics.gauge_value (Obs.Metrics.gauge m "node_free_bytes")
            /. 1048576.0)
            (Obs.Metrics.gauge_value (Obs.Metrics.gauge m "node_idle_ucs"))
            (Obs.Metrics.gauge_value (Obs.Metrics.gauge m "node_fn_snapshots"))
            (Obs.Metrics.sum_counters m "mem_cow_faults_total")
            (Obs.Metrics.sum_counters m "node_ucs_reclaimed_total")
            (Obs.Metrics.sum_counters m "node_oom_wakes_total");
          let last =
            match List.rev (Obs.Log.records log) with
            | [] -> "none yet"
            | r :: _ ->
                Printf.sprintf "%s @ %.3fs"
                  (Obs.Event.type_name r.Obs.Log.ev)
                  r.Obs.Log.time
          in
          Printf.printf "events: %d emitted, %d dropped from ring | last: %s\n\n"
            (Obs.Log.emitted log) (Obs.Log.dropped log) last
        in
        while Sim.Engine.now engine < stop_at do
          Sim.Engine.sleep interval;
          frame ()
        done);
    run_watched engine
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live ascii dashboard over the metrics registry and event log \
          while a synthetic workload runs (frames advance in simulated \
          time; $(b,--ansi) redraws in place)")
    Term.(const run $ duration $ interval $ clients $ functions_arg $ ansi $ seed_arg)

let timeline_cmd =
  let duration =
    Arg.(
      value & opt float 30.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated run length.")
  in
  let period =
    Arg.(
      value
      & opt float Seuss.Timeline.default_period
      & info [ "period" ] ~docv:"SECONDS" ~doc:"Sampling period (simulated).")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"C" ~doc:"Client processes.")
  in
  let run duration period clients functions seed =
    require_positive "--duration" duration;
    require_positive "--period" period;
    require_positive "--clients" (float_of_int clients);
    require_positive "--functions" (float_of_int functions);
    let engine = Sim.Engine.create ~seed () in
    if Experiments.Harness.hb_of_env () then ignore (Sim.Hb.enable engine);
    Sim.Engine.spawn engine ~name:"timeline" (fun () ->
        let env = Seuss.Osenv.create engine in
        let node = Seuss.Node.create env in
        Seuss.Node.start node;
        (* Explicitly armed: this subcommand *is* the sampler demo, no
           SEUSS_TIMELINE needed. *)
        Seuss.Timeline.start ~period node;
        let stop_at = Sim.Engine.now engine +. duration in
        for c = 1 to clients do
          let rng = Sim.Prng.split env.Seuss.Osenv.rng in
          Sim.Engine.spawn engine ~name:(Printf.sprintf "client-%d" c)
            (fun () ->
              while Sim.Engine.now engine < stop_at do
                let k = Sim.Prng.int rng functions in
                ignore
                  (Seuss.Node.invoke node
                     {
                       Seuss.Node.fn_id = Printf.sprintf "fn-%d" k;
                       runtime = Unikernel.Image.Node;
                       source =
                         Printf.sprintf
                           "function main(args) { return {fn: %d}; }" k;
                     }
                     ~args:"{}");
                Sim.Engine.sleep (0.05 +. (0.25 *. Sim.Prng.float rng))
              done)
        done;
        (* Render at quiescence: park until the clients are done, then one
           more period so the sampler has observed the drained node. *)
        while Sim.Engine.now engine < stop_at +. period do
          Sim.Engine.sleep period
        done;
        let samples =
          Seuss.Timeline.samples_of_records
            (Obs.Log.records env.Seuss.Osenv.log)
        in
        print_string (Seuss.Timeline.render samples));
    run_watched engine
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Run a synthetic workload with the resource timeline sampler \
          armed and render the sampled gauges (run queue, in-flight, \
          idle UCs, snapshots, free memory) as ASCII charts")
    Term.(const run $ duration $ period $ clients $ functions_arg $ seed_arg)

let autoao_cmd =
  let invocations =
    Arg.(value & opt int 20 & info [ "n" ] ~docv:"N" ~doc:"Invocations per cell.")
  in
  let run invocations seed =
    print (Experiments.Auto_ao.render (Experiments.Auto_ao.run ~invocations ~seed ()))
  in
  Cmd.v
    (exp_info "autoao")
    Term.(const run $ invocations $ seed_arg)

let snapshots_cmd =
  let functions =
    Arg.(value & opt int 8 & info [ "functions" ] ~docv:"M" ~doc:"Functions to deploy first.")
  in
  let run functions seed =
    let engine = Sim.Engine.create ~seed () in
    if Experiments.Harness.hb_of_env () then ignore (Sim.Hb.enable engine);
    Sim.Engine.spawn engine ~name:"snapshots" (fun () ->
        let env = Seuss.Osenv.create engine in
        let node = Seuss.Node.create env in
        Seuss.Node.start node;
        for i = 1 to functions do
          ignore
            (Seuss.Node.invoke node
               {
                 Seuss.Node.fn_id = Printf.sprintf "fn-%d" i;
                 runtime = Unikernel.Image.Node;
                 source =
                   Printf.sprintf
                     "function main(args) { return {fn: %d, v: hash(\"x%d\")}; }"
                     i i;
               }
               ~args:"{}")
        done;
        (* Render the snapshot stack, docker-images style. *)
        let table =
          Stats.Tablefmt.create
            ~columns:
              [
                ("snapshot", Stats.Tablefmt.Left);
                ("depth", Stats.Tablefmt.Right);
                ("diff", Stats.Tablefmt.Right);
                ("mapped", Stats.Tablefmt.Right);
                ("deps", Stats.Tablefmt.Right);
              ]
        in
        let row name (s : Seuss.Snapshot.t) =
          Stats.Tablefmt.add_row table
            [
              name;
              string_of_int (Seuss.Snapshot.depth s);
              Printf.sprintf "%.1f MB"
                (Int64.to_float (Seuss.Snapshot.diff_bytes s) /. 1048576.0);
              Printf.sprintf "%.1f MB"
                (Int64.to_float (Seuss.Snapshot.total_bytes s) /. 1048576.0);
              string_of_int (Seuss.Snapshot.dependents s);
            ]
        in
        (match Seuss.Node.base_snapshot node Unikernel.Image.Node with
        | Some base -> row base.Seuss.Snapshot.name base
        | None -> ());
        Stats.Tablefmt.add_separator table;
        List.iter
          (fun (fn_id, s) -> row ("  +- " ^ fn_id) s)
          (Seuss.Node.snapshot_inventory node);
        print_string (Stats.Tablefmt.render table);
        let shared =
          match Seuss.Node.base_snapshot node Unikernel.Image.Node with
          | Some base -> Seuss.Snapshot.total_bytes base
          | None -> 0L
        in
        let diffs =
          List.fold_left
            (fun acc (_, s) -> Int64.add acc (Seuss.Snapshot.diff_bytes s))
            0L
            (Seuss.Node.snapshot_inventory node)
        in
        Printf.printf
          "\n%d function snapshots share one %.1f MB base; flat copies would\n\
           need %.1f MB, the stack stores %.1f MB (the S3 Foo()/Bar() example\n\
           at scale).\n"
          functions
          (Int64.to_float shared /. 1048576.0)
          (Int64.to_float
             (Int64.add (Int64.mul (Int64.of_int functions) shared) diffs)
          /. 1048576.0)
          (Int64.to_float (Int64.add shared diffs) /. 1048576.0));
    run_watched engine
  in
  Cmd.v
    (Cmd.info "snapshots"
       ~doc:"Deploy some functions and inspect the snapshot stack")
    Term.(const run $ functions $ seed_arg)

let load_cmd =
  let hours =
    Arg.(
      value & opt (some float) None
      & info [ "hours" ] ~docv:"H"
          ~doc:
            "Simulated hours of arrivals per arm (default 8, or \
             $(b,SEUSS_LOAD_HOURS)).")
  in
  let functions =
    Arg.(
      value & opt (some int) None
      & info [ "functions" ] ~docv:"M"
          ~doc:
            "Synthetic functions under the Zipf popularity model (default \
             1024, or $(b,SEUSS_LOAD_FUNCTIONS)).")
  in
  let alpha =
    Arg.(
      value & opt (some float) None
      & info [ "alpha" ] ~docv:"A"
          ~doc:
            "Zipf popularity exponent (default 1.1, or \
             $(b,SEUSS_LOAD_ALPHA)).")
  in
  let arrival =
    Arg.(
      value & opt (some string) None
      & info [ "arrival" ] ~docv:"PROCESS"
          ~doc:
            "Inter-arrival process: poisson, bursty or diurnal (default \
             diurnal, or $(b,SEUSS_LOAD_ARRIVAL)).")
  in
  let rps =
    Arg.(
      value & opt (some (list float)) None
      & info [ "rps" ] ~docv:"R,R,..."
          ~doc:
            "Offered mean arrival rates to sweep (default 0.5,2,8, or \
             $(b,SEUSS_LOAD_RPS)).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the sweep as one canonical JSON object (bit-identical \
                across runs of the same seed) instead of a table.")
  in
  let save_traces =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-traces" ] ~docv:"PREFIX"
          ~doc:
            "Also write each sweep point's synthesized trace to \
             $(docv)-<rps>.jsonl (replayable with $(b,--trace)).")
  in
  let trace_in =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Replay a saved trace (JSONL) as a single sweep point instead \
             of synthesizing; shape flags are ignored.")
  in
  let run hours functions alpha arrival rps json save_traces trace_in csv seed
      =
    let r =
      match trace_in with
      | Some path -> (
          match Workload.Trace.load ~path with
          | Ok trace -> Experiments.Fig_load.run_trace ~seed trace
          | Error msg ->
              Printf.eprintf "seussctl: cannot load trace %s: %s\n" path msg;
              exit 2)
      | None ->
          Experiments.Fig_load.run ?hours ?functions ?alpha ?arrival ?rps
            ~seed ()
    in
    if json then
      print (Obs.Json.to_string (Experiments.Fig_load.to_json r) ^ "\n")
    else print (Experiments.Fig_load.render r);
    Option.iter (fun path -> Experiments.Fig_load.write_csv ~path r) csv;
    Option.iter
      (fun prefix ->
        List.iter
          (fun (p : Experiments.Fig_load.point) ->
            (* Synthesis is pure, so the sweep's traces can be
               rematerialized from the report parameters. *)
            let trace =
              Workload.Trace.synthesize
                ~functions:r.Experiments.Fig_load.functions
                ~alpha:r.Experiments.Fig_load.alpha
                ~arrival:
                  (Experiments.Fig_load.arrival_of_name
                     r.Experiments.Fig_load.arrival
                     ~rate:p.Experiments.Fig_load.offered_rps)
                ~horizon:r.Experiments.Fig_load.horizon
                ~seed:r.Experiments.Fig_load.seed
            in
            let path =
              Printf.sprintf "%s-%g.jsonl" prefix
                p.Experiments.Fig_load.offered_rps
            in
            Workload.Trace.save ~path trace;
            Printf.eprintf "seussctl: wrote %s (%d events)\n" path
              (Array.length trace.Workload.Trace.events))
          r.Experiments.Fig_load.points)
      save_traces
  in
  Cmd.v
    (exp_info "load")
    Term.(
      const run $ hours $ functions $ alpha $ arrival $ rps $ json
      $ save_traces $ trace_in $ csv_arg $ seed_arg)

let evict_cmd =
  let hours =
    Arg.(
      value & opt (some float) None
      & info [ "hours" ] ~docv:"H"
          ~doc:
            "Simulated hours of arrivals per arm (default 0.25, or \
             $(b,SEUSS_EVICT_HOURS)).")
  in
  let functions =
    Arg.(
      value & opt (some int) None
      & info [ "functions" ] ~docv:"M"
          ~doc:
            "Synthetic functions under the Zipf popularity model (default \
             160, or $(b,SEUSS_EVICT_FUNCTIONS)).")
  in
  let alpha =
    Arg.(
      value & opt (some float) None
      & info [ "alpha" ] ~docv:"A"
          ~doc:
            "Zipf popularity exponent (default 1.1, or \
             $(b,SEUSS_EVICT_ALPHA)).")
  in
  let rate =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Offered mean arrival rate, req/s (default 4, or \
             $(b,SEUSS_EVICT_RPS)).")
  in
  let sizes =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "sizes" ] ~docv:"B,B,..."
          ~doc:
            "Cache budgets to sweep, bytes with optional binary k/m/g \
             suffix; 0 is the disarmed baseline (default 0,3m,4m,6m,8m,1g, \
             or $(b,SEUSS_EVICT_SIZES)).")
  in
  let policy =
    Arg.(
      value & opt (some string) None
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Eviction policy: lru or ws (default lru, or \
             $(b,SEUSS_EVICT_POLICY)).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the sweep as one canonical JSON object (bit-identical \
             across runs of the same seed) instead of a table.")
  in
  let run hours functions alpha rate sizes policy json csv seed =
    let sizes =
      Option.map
        (List.map (fun s ->
             match Experiments.Harness.parse_bytes s with
             | Some v -> v
             | None ->
                 Printf.eprintf "seussctl: malformed cache size %S\n" s;
                 exit 2))
        sizes
    in
    let policy =
      Option.map
        (fun s ->
          match Seuss.Config.policy_of_name (String.lowercase_ascii s) with
          | Some p -> p
          | None ->
              Printf.eprintf "seussctl: unknown eviction policy %S\n" s;
              exit 2)
        policy
    in
    let r =
      Experiments.Fig_evict.run ?hours ?functions ?alpha ?rate ?sizes ?policy
        ~seed ()
    in
    if json then
      print (Obs.Json.to_string (Experiments.Fig_evict.to_json r) ^ "\n")
    else print (Experiments.Fig_evict.render r);
    Option.iter (fun path -> Experiments.Fig_evict.write_csv ~path r) csv
  in
  Cmd.v
    (exp_info "evict")
    Term.(
      const run $ hours $ functions $ alpha $ rate $ sizes $ policy $ json
      $ csv_arg $ seed_arg)

let info_cmd =
  let run () =
    Printf.printf
      "SEUSS reproduction (EuroSys '20: Skip Redundant Paths to Make \
       Serverless Fast)\n\n\
       Modeled compute node: %d-core VM, %Ld bytes of memory, 4 KiB pages.\n\
       Unikernel image (Node.js): %d pages (%.1f MB).\n\
       Guest hypercall surface: %d calls.\n\
       Experiments:\n"
      Seuss.Config.default.Seuss.Config.cores Mem.Mconfig.default_budget_bytes
      (Unikernel.Image.total_pages Unikernel.Image.node)
      (float_of_int (Unikernel.Image.total_pages Unikernel.Image.node)
       *. 4096.0 /. 1048576.0)
      Unikernel.Hypercall.interface_size;
    List.iter
      (fun (name, doc) -> Printf.printf "  %-10s %s\n" name doc)
      Experiments.All.registry;
    Printf.printf "  %-10s %s\n" "all" "Run every table and figure"
  in
  Cmd.v (Cmd.info "info" ~doc:"Show modeled-system parameters") Term.(const run $ const ())

let () =
  let doc = "SEUSS (EuroSys '20) reproduction experiments" in
  let cmds =
    [ table1_cmd; table2_cmd; table3_cmd; fig4_cmd; fig5_cmd; burst_cmd;
      load_cmd; evict_cmd; ablations_cmd; drseuss_cmd; chaos_cmd; reap_cmd;
      ksm_cmd;
      autoao_cmd; trace_cmd; snapshots_cmd; top_cmd; timeline_cmd; events_cmd;
      all_cmd; info_cmd ]
  in
  (* Coverage check: every registry row must have a subcommand (the
     inverse — a subcommand missing from the registry — fails in
     [exp_info] when the command is built above). *)
  let names = List.map Cmd.name cmds in
  List.iter
    (fun (name, _) ->
      if not (List.mem name names) then begin
        Printf.eprintf
          "seussctl: experiment %s is registered but has no subcommand\n" name;
        exit 1
      end)
    Experiments.All.registry;
  let main = Cmd.group (Cmd.info "seussctl" ~doc) cmds in
  exit (Cmd.eval main)
