(* The seusslint driver — determinism, resource-safety and hot-path
   linter.

   Passes over every .ml under the given roots (default: lib bin),
   selected with --pass:

   - base (default): the per-file syntactic rules in Lint.Check.
     Suppress a justified hit with
       (* seusslint: allow <rule> — <reason> *)
     on the offending line or the line above it.
   - deadlock: the interprocedural blocking/deadlock rules in
     Lint.Deadlock (block-in-handler, lock-order, unreleased-acquire).
     Suppressions use the pass's own marker:
       (* seussdead: allow <rule> — <reason> *)
   - heat: the hot-path allocation/boxing rules in Lint.Heat
     (heat-closure, heat-alloc, heat-string, heat-float-box,
     heat-poly-cmp, heat-partial-apply), seeded from the registered hot
     roots in Lint.Hotroots. Suppressions:
       (* seussheat: cold — <reason> *)
   - all: every pass over one shared parse — each file is read, its
     comments lexed and its AST built exactly once (Lint.Check.load_tree),
     then the three passes analyze the shared sources. --time reports
     the load/analysis split on stderr.

   Exits 1 if any unsuppressed violation remains. --json swaps the
   human report for one JSON object per line (file, line, col, rule,
   message), for CI problem matchers and tooling. *)

let list_rules () =
  print_endline "seusslint rules (base pass):";
  List.iter
    (fun r ->
      Printf.printf "  %-18s %s\n" (Lint.Rules.name r) (Lint.Rules.describe r))
    Lint.Rules.syntactic;
  print_endline "seusslint rules (deadlock pass, --pass deadlock):";
  List.iter
    (fun r ->
      Printf.printf "  %-18s %s\n" (Lint.Rules.name r) (Lint.Rules.describe r))
    Lint.Rules.deadlock;
  print_endline "seusslint rules (heat pass, --pass heat):";
  List.iter
    (fun r ->
      Printf.printf "  %-18s %s\n" (Lint.Rules.name r) (Lint.Rules.describe r))
    Lint.Rules.heat;
  Printf.printf
    "  %-18s reported for malformed/unknown allow comments (not suppressible)\n"
    Lint.Rules.bad_allow;
  Printf.printf
    "  %-18s reported for allow comments that suppress nothing (not \
     suppressible)\n"
    Lint.Rules.unused_allow;
  Printf.printf
    "  %-18s reported when a suffix-2 name resolves into two files (not \
     suppressible)\n"
    Lint.Rules.ambiguous_resolve

(* Minimal JSON string escaping: the report fields are ASCII paths and
   rule prose, but messages may carry quotes or em dashes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let () =
  let roots = ref [] in
  let list = ref false in
  let strip = ref "" in
  let pass = ref "base" in
  let json = ref false in
  let time = ref false in
  let spec =
    [
      ("--list-rules", Arg.Set list, " Print the rule catalogue and exit");
      ( "--pass",
        Arg.Symbol ([ "base"; "deadlock"; "heat"; "all" ], fun p -> pass := p),
        " Which pass to run: base (per-file syntactic rules, default), \
         deadlock (interprocedural blocking/lock-order analysis), heat \
         (hot-path allocation analysis), or all (every pass over one shared \
         parse)" );
      ( "--json",
        Arg.Set json,
        " Emit one JSON object per violation instead of the human report" );
      ( "--time",
        Arg.Set time,
        " Report load (read+lex+parse) and per-pass analysis wall time on \
         stderr" );
      ( "--strip-prefix",
        Arg.Set_string strip,
        "PREFIX Drop PREFIX from paths before rule classification (so a \
         fixture tree like test/lint_fixtures/lib is linted as lib/)" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun dir -> roots := dir :: !roots)
    "seusslint [--list-rules] [--pass base|deadlock|heat|all] [--json] \
     [--time] [--strip-prefix PREFIX] [DIR ...]   (default roots: lib bin)";
  if !list then begin
    list_rules ();
    exit 0
  end;
  let roots = match List.rev !roots with [] -> [ "lib"; "bin" ] | rs -> rs in
  let strip_prefix = match !strip with "" -> None | p -> Some p in
  let timed what f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    if !time then
      Printf.eprintf "seusslint: %-12s %6.1f ms\n%!" what
        ((Unix.gettimeofday () -. t0) *. 1e3);
    v
  in
  let violations =
    match !pass with
    | "deadlock" ->
        timed "deadlock" (fun () -> Lint.Deadlock.check_tree ?strip_prefix roots)
    | "heat" ->
        timed "heat" (fun () -> Lint.Heat.check_tree ?strip_prefix roots)
    | "all" ->
        (* The point of "all": one read+lex+parse, shared by every pass. *)
        let sources =
          timed "load" (fun () -> Lint.Check.load_tree ?strip_prefix roots)
        in
        let base = timed "base" (fun () -> Lint.Check.check_sources sources) in
        let dl =
          timed "deadlock" (fun () -> Lint.Deadlock.check_sources sources)
        in
        let heat = timed "heat" (fun () -> Lint.Heat.check_sources sources) in
        (* sort_uniq: the interprocedural passes can both surface the
           same ambiguous-resolve collision. *)
        List.sort_uniq Lint.Check.compare_violation (base @ dl @ heat)
    | _ -> timed "base" (fun () -> Lint.Check.check_tree ?strip_prefix roots)
  in
  List.iter
    (fun (v : Lint.Check.violation) ->
      if !json then
        Printf.printf
          "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\"}\n"
          (json_escape v.file) v.line v.col (json_escape v.rule)
          (json_escape v.message)
      else
        Printf.printf "%s:%d:%d: [%s] %s\n" v.file v.line v.col v.rule
          v.message)
    violations;
  match violations with
  | [] ->
      if not !json then
        Printf.printf "seusslint: clean (%s, %s pass)\n"
          (String.concat " " roots) !pass;
      exit 0
  | vs ->
      if not !json then
        Printf.printf "seusslint: %d violation(s)\n" (List.length vs);
      exit 1
