(* The seusslint driver — determinism, resource-safety, hot-path and
   ownership linter.

   Passes over every .ml under the given roots (default: lib bin),
   selected with --pass:

   - base (default): the per-file syntactic rules in Lint.Check.
     Suppress a justified hit with
       (* seusslint: allow <rule> — <reason> *)
     on the offending line or the line above it.
   - deadlock: the interprocedural blocking/deadlock rules in
     Lint.Deadlock (block-in-handler, lock-order, unreleased-acquire).
     Suppressions use the pass's own marker:
       (* seussdead: allow <rule> — <reason> *)
   - heat: the hot-path allocation/boxing rules in Lint.Heat
     (heat-closure, heat-alloc, heat-string, heat-float-box,
     heat-poly-cmp, heat-partial-apply), seeded from the registered hot
     roots in Lint.Hotroots. Suppressions:
       (* seussheat: cold — <reason> *)
   - own: the interprocedural ownership/typestate rules in Lint.Own
     (own-escape, own-exn-leak, own-double-release,
     own-use-after-destroy, own-unbalanced) over the registered
     acquire/release pairs. Suppressions:
       (* seussown: transfer — <reason> *)
   - all: every pass over one shared parse — each file is read, its
     comments lexed and its AST built exactly once (Lint.Check.load_tree),
     then the four passes analyze the shared sources. --time reports
     the load/analysis split on stderr.

   Exits 1 if any unsuppressed violation remains. --json swaps the
   human report for one JSON object per line (file, line, col, rule,
   pass, message), for CI problem matchers and tooling. *)

let pass_sections =
  [
    ("base pass (default)", Lint.Rules.syntactic);
    ("deadlock pass, --pass deadlock", Lint.Rules.deadlock);
    ("heat pass, --pass heat", Lint.Rules.heat);
    ("own pass, --pass own", Lint.Rules.own);
  ]

let list_rules () =
  List.iter
    (fun (header, rules) ->
      Printf.printf "seusslint rules (%s):\n" header;
      List.iter
        (fun r ->
          (* The [pass] column is load-bearing: CI matchers and docs
             key the suppression syntax off it. *)
          Printf.printf "  %-22s [%s] %s\n" (Lint.Rules.name r)
            (Lint.Rules.pass_of r) (Lint.Rules.describe r))
        rules)
    pass_sections;
  print_endline "seusslint meta-rules (any pass, not suppressible):";
  Printf.printf "  %-22s [meta] reported for malformed/unknown allow \
                 comments or markers\n"
    Lint.Rules.bad_allow;
  Printf.printf "  %-22s [meta] reported for allow comments or markers \
                 that suppress nothing\n"
    Lint.Rules.unused_allow;
  Printf.printf
    "  %-22s [meta] reported when a suffix-2 name resolves into two files\n"
    Lint.Rules.ambiguous_resolve

(* Minimal JSON string escaping: the report fields are ASCII paths and
   rule prose, but messages may carry quotes or em dashes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The pass a violation belongs to: the enforcing pass for catalogued
   rules, "meta" for the checker's own diagnostics. *)
let pass_of_rule rule =
  match Lint.Rules.of_name rule with
  | Some r -> Lint.Rules.pass_of r
  | None -> "meta"

(* --time registry. Keyed by label with replace semantics so a second
   run of the same pass in one process (two check_sources calls over
   the same sources) updates its line instead of appending a duplicate
   to the report. *)
let timings : (string, float) Hashtbl.t = Hashtbl.create 8

let timed what f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  Hashtbl.replace timings what ((Unix.gettimeofday () -. t0) *. 1e3);
  v

let report_timings () =
  List.iter
    (fun label ->
      match Hashtbl.find_opt timings label with
      | Some ms -> Printf.eprintf "seusslint: %-12s %6.1f ms\n%!" label ms
      | None -> ())
    [ "load"; "base"; "deadlock"; "heat"; "own" ]

let () =
  let roots = ref [] in
  let list = ref false in
  let strip = ref "" in
  let pass = ref "base" in
  let json = ref false in
  let time = ref false in
  let spec =
    [
      ("--list-rules", Arg.Set list, " Print the rule catalogue and exit");
      ( "--pass",
        Arg.Symbol
          ([ "base"; "deadlock"; "heat"; "own"; "all" ], fun p -> pass := p),
        " Which pass to run: base (per-file syntactic rules, default), \
         deadlock (interprocedural blocking/lock-order analysis), heat \
         (hot-path allocation analysis), own (ownership/typestate \
         analysis), or all (every pass over one shared parse)" );
      ( "--json",
        Arg.Set json,
        " Emit one JSON object per violation instead of the human report" );
      ( "--time",
        Arg.Set time,
        " Report load (read+lex+parse) and per-pass analysis wall time on \
         stderr" );
      ( "--strip-prefix",
        Arg.Set_string strip,
        "PREFIX Drop PREFIX from paths before rule classification (so a \
         fixture tree like test/lint_fixtures/lib is linted as lib/)" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun dir -> roots := dir :: !roots)
    "seusslint [--list-rules] [--pass base|deadlock|heat|own|all] [--json] \
     [--time] [--strip-prefix PREFIX] [DIR ...]   (default roots: lib bin)";
  if !list then begin
    list_rules ();
    exit 0
  end;
  let roots = match List.rev !roots with [] -> [ "lib"; "bin" ] | rs -> rs in
  let strip_prefix = match !strip with "" -> None | p -> Some p in
  let tag p vs = List.map (fun v -> (p, v)) vs in
  (* (pass, violation) pairs: single-pass runs tag with the invoked
     pass; --pass all keeps the first producer through dedup. *)
  let violations =
    match !pass with
    | "deadlock" ->
        tag "deadlock"
          (timed "deadlock" (fun () ->
               Lint.Deadlock.check_tree ?strip_prefix roots))
    | "heat" ->
        tag "heat"
          (timed "heat" (fun () -> Lint.Heat.check_tree ?strip_prefix roots))
    | "own" ->
        tag "own"
          (timed "own" (fun () -> Lint.Own.check_tree ?strip_prefix roots))
    | "all" ->
        (* The point of "all": one read+lex+parse, shared by every pass. *)
        let sources =
          timed "load" (fun () -> Lint.Check.load_tree ?strip_prefix roots)
        in
        let base = timed "base" (fun () -> Lint.Check.check_sources sources) in
        let dl =
          timed "deadlock" (fun () -> Lint.Deadlock.check_sources sources)
        in
        let heat = timed "heat" (fun () -> Lint.Heat.check_sources sources) in
        let own = timed "own" (fun () -> Lint.Own.check_sources sources) in
        (* Dedup: the interprocedural passes can all surface the same
           ambiguous-resolve collision. *)
        let sorted =
          List.sort
            (fun (_, a) (_, b) -> Lint.Check.compare_violation a b)
            (tag "base" base @ tag "deadlock" dl @ tag "heat" heat
           @ tag "own" own)
        in
        let rec dedup = function
          | (p1, v1) :: (_, v2) :: rest
            when Lint.Check.compare_violation v1 v2 = 0 ->
              dedup ((p1, v1) :: rest)
          | x :: rest -> x :: dedup rest
          | [] -> []
        in
        dedup sorted
    | _ ->
        tag "base"
          (timed "base" (fun () -> Lint.Check.check_tree ?strip_prefix roots))
  in
  if !time then report_timings ();
  List.iter
    (fun ((produced_by, v) : string * Lint.Check.violation) ->
      let v_pass =
        match pass_of_rule v.rule with "meta" -> produced_by | p -> p
      in
      if !json then
        Printf.printf
          "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"pass\":\"%s\",\"message\":\"%s\"}\n"
          (json_escape v.file) v.line v.col (json_escape v.rule)
          (json_escape v_pass) (json_escape v.message)
      else
        Printf.printf "%s:%d:%d: [%s] %s\n" v.file v.line v.col v.rule
          v.message)
    violations;
  match violations with
  | [] ->
      if not !json then
        Printf.printf "seusslint: clean (%s, %s pass)\n"
          (String.concat " " roots) !pass;
      exit 0
  | vs ->
      if not !json then
        Printf.printf "seusslint: %d violation(s)\n" (List.length vs);
      exit 1
