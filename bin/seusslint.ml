(* The seusslint driver — determinism & resource-safety linter.

   Parses every .ml under the given roots (default: lib bin) with
   compiler-libs and enforces the rule catalogue in Lint.Rules; exits 1
   if any unsuppressed violation remains. Suppress a justified hit with
     (* seusslint: allow <rule> — <reason> *)
   on the offending line or the line above it. *)

let list_rules () =
  print_endline "seusslint rules:";
  List.iter
    (fun r -> Printf.printf "  %-14s %s\n" (Lint.Rules.name r) (Lint.Rules.describe r))
    Lint.Rules.all;
  Printf.printf
    "  %-14s reported for malformed/unknown allow comments (not suppressible)\n"
    Lint.Rules.bad_allow;
  Printf.printf
    "  %-14s reported for allow comments that suppress nothing (not suppressible)\n"
    Lint.Rules.unused_allow

let () =
  let roots = ref [] in
  let list = ref false in
  let strip = ref "" in
  let spec =
    [
      ("--list-rules", Arg.Set list, " Print the rule catalogue and exit");
      ( "--strip-prefix",
        Arg.Set_string strip,
        "PREFIX Drop PREFIX from paths before rule classification (so a \
         fixture tree like test/lint_fixtures/lib is linted as lib/)" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun dir -> roots := dir :: !roots)
    "seusslint [--list-rules] [--strip-prefix PREFIX] [DIR ...]   (default roots: lib bin)";
  if !list then begin
    list_rules ();
    exit 0
  end;
  let roots = match List.rev !roots with [] -> [ "lib"; "bin" ] | rs -> rs in
  let strip_prefix = match !strip with "" -> None | p -> Some p in
  let violations = Lint.Check.check_tree ?strip_prefix roots in
  List.iter
    (fun (v : Lint.Check.violation) ->
      Printf.printf "%s:%d:%d: [%s] %s\n" v.file v.line v.col v.rule v.message)
    violations;
  match violations with
  | [] ->
      Printf.printf "seusslint: clean (%s)\n" (String.concat " " roots);
      exit 0
  | vs ->
      Printf.printf "seusslint: %d violation(s)\n" (List.length vs);
      exit 1
