(* The seusslint driver — determinism & resource-safety linter.

   Two passes over every .ml under the given roots (default: lib bin),
   selected with --pass:

   - base (default): the per-file syntactic rules in Lint.Check.
     Suppress a justified hit with
       (* seusslint: allow <rule> — <reason> *)
     on the offending line or the line above it.
   - deadlock: the interprocedural blocking/deadlock rules in
     Lint.Deadlock (block-in-handler, lock-order, unreleased-acquire).
     Suppressions use the pass's own marker:
       (* seussdead: allow <rule> — <reason> *)

   Exits 1 if any unsuppressed violation remains. --json swaps the
   human report for one JSON object per line (file, line, col, rule,
   message), for CI problem matchers and tooling. *)

let list_rules () =
  print_endline "seusslint rules (base pass):";
  List.iter
    (fun r ->
      Printf.printf "  %-18s %s\n" (Lint.Rules.name r) (Lint.Rules.describe r))
    Lint.Rules.syntactic;
  print_endline "seusslint rules (deadlock pass, --pass deadlock):";
  List.iter
    (fun r ->
      Printf.printf "  %-18s %s\n" (Lint.Rules.name r) (Lint.Rules.describe r))
    Lint.Rules.deadlock;
  Printf.printf
    "  %-18s reported for malformed/unknown allow comments (not suppressible)\n"
    Lint.Rules.bad_allow;
  Printf.printf
    "  %-18s reported for allow comments that suppress nothing (not \
     suppressible)\n"
    Lint.Rules.unused_allow

(* Minimal JSON string escaping: the report fields are ASCII paths and
   rule prose, but messages may carry quotes or em dashes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let () =
  let roots = ref [] in
  let list = ref false in
  let strip = ref "" in
  let pass = ref "base" in
  let json = ref false in
  let spec =
    [
      ("--list-rules", Arg.Set list, " Print the rule catalogue and exit");
      ( "--pass",
        Arg.Symbol ([ "base"; "deadlock" ], fun p -> pass := p),
        " Which pass to run: base (per-file syntactic rules, default) or \
         deadlock (interprocedural blocking/lock-order analysis)" );
      ( "--json",
        Arg.Set json,
        " Emit one JSON object per violation instead of the human report" );
      ( "--strip-prefix",
        Arg.Set_string strip,
        "PREFIX Drop PREFIX from paths before rule classification (so a \
         fixture tree like test/lint_fixtures/lib is linted as lib/)" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun dir -> roots := dir :: !roots)
    "seusslint [--list-rules] [--pass base|deadlock] [--json] [--strip-prefix \
     PREFIX] [DIR ...]   (default roots: lib bin)";
  if !list then begin
    list_rules ();
    exit 0
  end;
  let roots = match List.rev !roots with [] -> [ "lib"; "bin" ] | rs -> rs in
  let strip_prefix = match !strip with "" -> None | p -> Some p in
  let violations =
    match !pass with
    | "deadlock" -> Lint.Deadlock.check_tree ?strip_prefix roots
    | _ -> Lint.Check.check_tree ?strip_prefix roots
  in
  List.iter
    (fun (v : Lint.Check.violation) ->
      if !json then
        Printf.printf
          "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\"}\n"
          (json_escape v.file) v.line v.col (json_escape v.rule)
          (json_escape v.message)
      else
        Printf.printf "%s:%d:%d: [%s] %s\n" v.file v.line v.col v.rule
          v.message)
    violations;
  match violations with
  | [] ->
      if not !json then
        Printf.printf "seusslint: clean (%s, %s pass)\n"
          (String.concat " " roots) !pass;
      exit 0
  | vs ->
      if not !json then
        Printf.printf "seusslint: %d violation(s)\n" (List.length vs);
      exit 1
