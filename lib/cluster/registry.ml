type location = { node_id : int; snapshot : Seuss.Snapshot.t }

type t = {
  table : (string, location list) Hashtbl.t;
  (* Schedule-sanitizer cell covering [table]: cross-node access with no
     happens-before edge at the same instant is a reportable race. *)
  cell : Sim.Hb.cell;
}

let create () =
  { table = Hashtbl.create 256; cell = Sim.Hb.cell ~name:"registry.table" }

let publish t ~fn_id ~node_id snapshot =
  Sim.Hb.write t.cell;
  let existing = Option.value (Hashtbl.find_opt t.table fn_id) ~default:[] in
  let others = List.filter (fun l -> l.node_id <> node_id) existing in
  Hashtbl.replace t.table fn_id ({ node_id; snapshot } :: others)

let locate t ~fn_id =
  Sim.Hb.read t.cell;
  match Hashtbl.find_opt t.table fn_id with
  | None -> []
  | Some locations ->
      let live =
        List.filter
          (fun l -> not (Seuss.Snapshot.is_deleted l.snapshot))
          locations
      in
      if List.length live <> List.length locations then begin
        (* Lazy compaction mutates the table, so this lookup is a write
           for race-detection purposes. *)
        Sim.Hb.write t.cell;
        Hashtbl.replace t.table fn_id live
      end;
      live

let holder_other_than t ~fn_id ~node_id =
  List.find_opt (fun l -> l.node_id <> node_id) (locate t ~fn_id)

let evict t ~fn_id ~node_id =
  Sim.Hb.write t.cell;
  match Hashtbl.find_opt t.table fn_id with
  | None -> ()
  | Some locations ->
      Hashtbl.replace t.table fn_id
        (List.filter (fun l -> l.node_id <> node_id) locations)

let held_by t ~node_id =
  Sim.Hb.read t.cell;
  Det.fold
    (fun fn_id locations acc ->
      if List.exists (fun l -> l.node_id = node_id) locations then
        acc @ [ fn_id ]
      else acc)
    t.table []

let forget_node t ~node_id =
  Sim.Hb.write t.cell;
  Det.iter
    (fun fn_id locations ->
      Hashtbl.replace t.table fn_id
        (List.filter (fun l -> l.node_id <> node_id) locations))
    (Hashtbl.copy t.table)

let entries t =
  Sim.Hb.read t.cell;
  Hashtbl.length t.table
