type location = { node_id : int; snapshot : Seuss.Snapshot.t }

type t = { table : (string, location list) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }

let publish t ~fn_id ~node_id snapshot =
  let existing = Option.value (Hashtbl.find_opt t.table fn_id) ~default:[] in
  let others = List.filter (fun l -> l.node_id <> node_id) existing in
  Hashtbl.replace t.table fn_id ({ node_id; snapshot } :: others)

let locate t ~fn_id =
  match Hashtbl.find_opt t.table fn_id with
  | None -> []
  | Some locations ->
      let live =
        List.filter
          (fun l -> not (Seuss.Snapshot.is_deleted l.snapshot))
          locations
      in
      if List.length live <> List.length locations then
        Hashtbl.replace t.table fn_id live;
      live

let holder_other_than t ~fn_id ~node_id =
  List.find_opt (fun l -> l.node_id <> node_id) (locate t ~fn_id)

let evict t ~fn_id ~node_id =
  match Hashtbl.find_opt t.table fn_id with
  | None -> ()
  | Some locations ->
      Hashtbl.replace t.table fn_id
        (List.filter (fun l -> l.node_id <> node_id) locations)

let held_by t ~node_id =
  List.sort String.compare
    (Hashtbl.fold
       (fun fn_id locations acc ->
         if List.exists (fun l -> l.node_id = node_id) locations then
           fn_id :: acc
         else acc)
       t.table [])

let forget_node t ~node_id =
  Hashtbl.iter
    (fun fn_id locations ->
      Hashtbl.replace t.table fn_id
        (List.filter (fun l -> l.node_id <> node_id) locations))
    (Hashtbl.copy t.table)

let entries t = Hashtbl.length t.table
