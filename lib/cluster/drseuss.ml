type handle = {
  id : int;
  env : Seuss.Osenv.t;
  node : Seuss.Node.t;
  mutable inflight : int;
  mutable alive : bool;
}

type source = Local of Seuss.Node.path | Remote_fetch | Cluster_cold

type stats = {
  local_invocations : int;
  remote_fetches : int;
  cluster_colds : int;
  bytes_transferred : int64;
  fetch_retries : int;
  failovers : int;
  degraded_colds : int;
  node_crashes : int;
  registry_evictions : int;
}

type t = {
  engine : Sim.Engine.t;
  reg : Registry.t;
  members : handle array;
  log : Obs.Log.t;
  mutable cursor : int;
  mutable s_local : int;
  mutable s_fetches : int;
  mutable s_colds : int;
  mutable s_bytes : int64;
  mutable s_retries : int;
  mutable s_failovers : int;
  mutable s_degraded : int;
  mutable s_crashes : int;
  mutable s_evictions : int;
}

let gib = Int64.of_int (Mem.Mconfig.mib 1024)

(* Remote-fetch retry budget: a failed fetch is retried after an
   exponentially-backed-off, jittered pause before the cluster gives up
   and degrades to a local cold start. *)
let max_fetch_attempts = 3
let backoff_base = 0.05

let create ?(nodes = 4) ?(budget_per_node = Int64.mul 16L gib) ?config engine
    =
  if nodes < 1 then invalid_arg "Cluster.create: need at least one node";
  let members =
    Array.init nodes (fun id ->
        let env = Seuss.Osenv.create ~budget_bytes:budget_per_node engine in
        let node = Seuss.Node.create ?config env in
        Seuss.Node.start node;
        { id; env; node; inflight = 0; alive = true })
  in
  {
    engine;
    reg = Registry.create ();
    members;
    log = Obs.Log.create ~clock:(fun () -> Sim.Engine.now engine) ();
    cursor = 0;
    s_local = 0;
    s_fetches = 0;
    s_colds = 0;
    s_bytes = 0L;
    s_retries = 0;
    s_failovers = 0;
    s_degraded = 0;
    s_crashes = 0;
    s_evictions = 0;
  }

let node_count t = Array.length t.members
let nodes t = Array.to_list (Array.map (fun m -> m.node) t.members)
let registry t = t.reg
let log t = t.log

let alive_count t =
  Array.fold_left (fun n m -> if m.alive then n + 1 else n) 0 t.members

let is_alive t id =
  id >= 0 && id < Array.length t.members && t.members.(id).alive

let stats t =
  {
    local_invocations = t.s_local;
    remote_fetches = t.s_fetches;
    cluster_colds = t.s_colds;
    bytes_transferred = t.s_bytes;
    fetch_retries = t.s_retries;
    failovers = t.s_failovers;
    degraded_colds = t.s_degraded;
    node_crashes = t.s_crashes;
    registry_evictions = t.s_evictions;
  }

let transfer_time snapshot =
  let bytes = Int64.to_float (Seuss.Snapshot.diff_bytes snapshot) in
  let link = Net.Netconf.lan in
  (2.0 *. link.Net.Netconf.latency) +. (bytes /. link.Net.Netconf.bandwidth)

let evict t ~fn_id ~node_id ~reason =
  Registry.evict t.reg ~fn_id ~node_id;
  t.s_evictions <- t.s_evictions + 1;
  Obs.Log.emit t.log (Obs.Event.Registry_evict { fn_id; node_id; reason })

(* {1 Crash and repair} *)

let crash_node t id =
  if id < 0 || id >= Array.length t.members then
    invalid_arg "Cluster.crash_node: no such node";
  let victim = t.members.(id) in
  if victim.alive then begin
    victim.alive <- false;
    t.s_crashes <- t.s_crashes + 1;
    Obs.Log.emit t.log (Obs.Event.Node_crash { node_id = id });
    (* Evict every holder entry the dead node owned... *)
    List.iter
      (fun fn_id -> evict t ~fn_id ~node_id:id ~reason:"node crash")
      (Registry.held_by t.reg ~node_id:id);
    (* ...then repair: surviving nodes re-publish local snapshots for
       functions the registry no longer locates anywhere. *)
    Array.iter
      (fun m ->
        if m.alive then begin
          let republished = ref 0 in
          List.iter
            (fun (fn_id, snap) ->
              if Registry.locate t.reg ~fn_id = [] then begin
                Registry.publish t.reg ~fn_id ~node_id:m.id snap;
                incr republished
              end)
            (Seuss.Node.snapshot_inventory m.node);
          if !republished > 0 then
            Obs.Log.emit t.log
              (Obs.Event.Registry_repair
                 { node_id = m.id; republished = !republished })
        end)
      t.members
  end

(* Fault plane: the [Node_crash] site kills a plan-chosen victim — never
   the last node standing, so the cluster degrades rather than dies. *)
let maybe_inject_crash t fn_id =
  if Faults.Fault.fire Node_crash ~detail:fn_id then
    match Faults.Fault.current () with
    | None -> ()
    | Some plan ->
        let alive =
          Array.to_list t.members |> List.filter (fun m -> m.alive)
        in
        if List.length alive > 1 then
          let victim = List.nth alive (Faults.Fault.pick plan (List.length alive)) in
          crash_node t victim.id

(* {1 Routing} *)

(* Least-loaded among members satisfying [pred], ties broken round-robin
   from [cursor] (without advancing it — callers advance once per
   routing decision so dead nodes don't skew the rotation). *)
let least_loaded_among t pred =
  let n = Array.length t.members in
  let best = ref None in
  for i = 0 to n - 1 do
    let m = t.members.((t.cursor + i) mod n) in
    if pred m then
      match !best with
      | None -> best := Some m
      | Some b -> if m.inflight < b.inflight then best := Some m
  done;
  !best

(* Route an invocation: the natural least-loaded choice, failing over to
   a live node (with a typed event) when the natural choice is dead. *)
let pick_member t fn_id =
  let natural = least_loaded_among t (fun _ -> true) in
  let chosen = least_loaded_among t (fun m -> m.alive) in
  t.cursor <- (t.cursor + 1) mod Array.length t.members;
  match (natural, chosen) with
  | Some nat, Some m when not nat.alive ->
      t.s_failovers <- t.s_failovers + 1;
      Obs.Log.emit t.log
        (Obs.Event.Failover { fn_id; from_node = nat.id; to_node = m.id });
      Some m
  | _, chosen -> chosen

(* A partition between the routed node and every holder starves the
   fetch path; when some live holder exists, route the invocation to the
   holder itself instead (it serves locally). *)
let reroute_around_partition t member fn_id =
  let holders = Registry.locate t.reg ~fn_id in
  let live = List.filter (fun l -> is_alive t l.Registry.node_id) holders in
  let reachable l = not (Faults.Fault.partitioned member.id l.Registry.node_id) in
  if live = [] || List.exists reachable live then member
  else
    let holder_ids = List.map (fun l -> l.Registry.node_id) live in
    match
      least_loaded_among t (fun m -> m.alive && List.mem m.id holder_ids)
    with
    | None -> member
    | Some m ->
        t.s_failovers <- t.s_failovers + 1;
        Obs.Log.emit t.log
          (Obs.Event.Failover { fn_id; from_node = member.id; to_node = m.id });
        m

(* {1 Remote fetch} *)

type fetch_outcome = Fetched | No_holder | Unreachable

let backoff_pause attempt =
  let jitter =
    match Faults.Fault.current () with
    | Some plan -> Faults.Fault.jitter plan
    | None -> 0.0
  in
  backoff_base *. Float.of_int (1 lsl attempt) *. (1.0 +. jitter)

let fetch_with_retry t member (fn : Seuss.Node.fn) =
  let fn_id = fn.Seuss.Node.fn_id in
  match Seuss.Node.base_snapshot member.node fn.Seuss.Node.runtime with
  | None -> No_holder
  | Some local_base ->
      let rec attempt_fetch attempt =
        (* Re-locate every attempt: eviction may have exposed another
           holder, and crashed holders are dropped lazily here. *)
        let holders =
          List.filter
            (fun l -> l.Registry.node_id <> member.id)
            (Registry.locate t.reg ~fn_id)
        in
        List.iter
          (fun l ->
            if not (is_alive t l.Registry.node_id) then
              evict t ~fn_id ~node_id:l.Registry.node_id ~reason:"dead holder")
          holders;
        let usable =
          List.filter
            (fun l ->
              is_alive t l.Registry.node_id
              && not (Faults.Fault.partitioned member.id l.Registry.node_id))
            holders
        in
        match usable with
        | [] -> if holders = [] then No_holder else Unreachable
        | holder :: _ ->
            let stale =
              (* Fault plane: the registry entry is stale — the holder
                 no longer has the snapshot it advertised. *)
              if Faults.Fault.fire Registry_stale ~detail:fn_id then begin
                evict t ~fn_id ~node_id:holder.Registry.node_id ~reason:"stale";
                true
              end
              else false
            in
            let outcome =
              if stale then `Failed
              else
                match
                  Seuss.Snapshot.import ~env:member.env
                    ~name:("fetched-" ^ fn_id) ~local_base
                    ~remote:holder.Registry.snapshot
                    ~transfer_time:(transfer_time holder.Registry.snapshot)
                with
                | snap ->
                    Seuss.Node.install_snapshot member.node ~fn_id snap;
                    Registry.publish t.reg ~fn_id ~node_id:member.id snap;
                    t.s_fetches <- t.s_fetches + 1;
                    t.s_bytes <-
                      Int64.add t.s_bytes
                        (Seuss.Snapshot.diff_bytes holder.Registry.snapshot);
                    `Ok
                | exception Mem.Frame.Out_of_memory -> `Oom
                | exception Invalid_argument _ -> `Failed
            in
            (match outcome with
            | `Ok -> Fetched
            | `Oom ->
                (* Backing off cannot free the *local* memory the import
                   needs; degrade immediately, as before the retry path
                   existed. *)
                Unreachable
            | `Failed ->
                if attempt + 1 >= max_fetch_attempts then Unreachable
                else begin
                  let backoff = backoff_pause attempt in
                  t.s_retries <- t.s_retries + 1;
                  Obs.Log.emit t.log
                    (Obs.Event.Fetch_retry
                       { fn_id; attempt = attempt + 1; backoff });
                  Sim.Engine.sleep backoff;
                  attempt_fetch (attempt + 1)
                end)
      in
      attempt_fetch 0

(* {1 Invocation} *)

let publish_if_captured t member fn_id =
  match Seuss.Node.function_snapshot member.node fn_id with
  | Some snap -> Registry.publish t.reg ~fn_id ~node_id:member.id snap
  | None -> ()

let invoke_unregistered t (fn : Seuss.Node.fn) ~args =
  maybe_inject_crash t fn.Seuss.Node.fn_id;
  match least_loaded_among t (fun m -> m.alive) with
  | None -> (Error `Overloaded, Cluster_cold)
  | Some member ->
      t.cursor <- (t.cursor + 1) mod Array.length t.members;
      member.inflight <- member.inflight + 1;
      let had_local =
        Option.is_some
          (Seuss.Node.function_snapshot member.node fn.Seuss.Node.fn_id)
      in
      let result, path = Seuss.Node.invoke member.node fn ~args in
      member.inflight <- member.inflight - 1;
      let source =
        match path with
        | Seuss.Node.Cold when not had_local ->
            t.s_colds <- t.s_colds + 1;
            Cluster_cold
        | p ->
            t.s_local <- t.s_local + 1;
            Local p
      in
      (result, source)

let invoke t (fn : Seuss.Node.fn) ~args =
  let fn_id = fn.Seuss.Node.fn_id in
  maybe_inject_crash t fn_id;
  match pick_member t fn_id with
  | None -> (Error `Overloaded, Cluster_cold)
  | Some routed ->
      let member =
        if
          Option.is_some (Seuss.Node.function_snapshot routed.node fn_id)
        then routed
        else reroute_around_partition t routed fn_id
      in
      member.inflight <- member.inflight + 1;
      let finish result =
        member.inflight <- member.inflight - 1;
        result
      in
      let has_local =
        Option.is_some (Seuss.Node.function_snapshot member.node fn_id)
      in
      let fetch =
        if has_local then No_holder else fetch_with_retry t member fn
      in
      (* All holders unreachable: degrade to a local cold start rather
         than fail the invocation. *)
      if fetch = Unreachable then begin
        t.s_degraded <- t.s_degraded + 1;
        Obs.Log.emit t.log (Obs.Event.Degraded_cold { fn_id })
      end;
      let result, path = Seuss.Node.invoke member.node fn ~args in
      (match (result, path) with
      | Ok _, Seuss.Node.Cold -> publish_if_captured t member fn_id
      | _ -> ());
      let source =
        if fetch = Fetched then Remote_fetch
        else
          match path with
          | Seuss.Node.Cold when not has_local ->
              t.s_colds <- t.s_colds + 1;
              Cluster_cold
          | p ->
              t.s_local <- t.s_local + 1;
              Local p
      in
      finish (result, source)
