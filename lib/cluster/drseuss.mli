(** DR-SEUSS: a multi-node SEUSS deployment with a distributed,
    replicated snapshot cache (the paper's §9 vision).

    Each compute node runs its own SEUSS OS over its own memory budget;
    a global {!Registry} tracks which node holds which function
    snapshot. Invocations are routed to the least-loaded node. On a
    local snapshot miss, the node first tries a *remote fetch*: pull the
    function diff from a holder over the 10 GbE fabric and stack it on
    the local base runtime snapshot ({!Seuss.Snapshot.import}) — a few
    milliseconds for a typical 2 MB diff, versus replaying the full
    import+compile cold path. Only a cluster-wide miss pays a true cold
    start, and the resulting snapshot is published for everyone.

    {b Resilience.} The cluster tolerates the failures the fault plane
    ({!Faults.Fault}) injects, and every recovery decision is emitted as
    a typed {!Obs.Event} on the cluster {!log}:

    - a crashed node ({!crash_node}, or the [Node_crash] site) is routed
      around ([Failover]); its registry entries are evicted
      ([Registry_evict]) and survivors re-publish replacement locations
      ([Registry_repair]);
    - a failed or stale remote fetch is retried with exponential backoff
      and a jittered pause ([Fetch_retry]), trying other holders;
    - when holders exist but none is reachable (crash or partition), the
      invocation degrades to a local cold start ([Degraded_cold]) rather
      than failing;
    - a partition that cuts the routed node off from every holder
      re-routes the invocation to a holder itself ([Failover]).

    With no fault plan installed none of this machinery draws, sleeps,
    or emits: behaviour is identical to a fault-free build. *)

type t

type source = Local of Seuss.Node.path | Remote_fetch | Cluster_cold

type stats = {
  local_invocations : int;
  remote_fetches : int;
  cluster_colds : int;
  bytes_transferred : int64;
  fetch_retries : int;  (** backed-off fetch re-attempts *)
  failovers : int;  (** invocations re-routed off dead/partitioned nodes *)
  degraded_colds : int;  (** holders existed but none reachable *)
  node_crashes : int;
  registry_evictions : int;  (** dead/stale holder entries dropped *)
}

val create :
  ?nodes:int ->
  ?budget_per_node:int64 ->
  ?config:Seuss.Config.t ->
  Sim.Engine.t ->
  t
(** Start an [n]-node cluster (default 4 nodes, 16 GiB each — call
    inside a simulation process; boots every node). *)

val node_count : t -> int

val nodes : t -> Seuss.Node.t list

val registry : t -> Registry.t

val log : t -> Obs.Log.t
(** The cluster's failure/recovery timeline: crash, eviction, repair,
    retry, failover, degradation events, engine-timestamped. *)

val is_alive : t -> int -> bool

val alive_count : t -> int

val crash_node : t -> int -> unit
(** Kill node [id]: it stops receiving routes, its registry entries are
    evicted, and surviving holders re-publish orphaned functions.
    Idempotent on an already-dead node.
    @raise Invalid_argument if [id] is out of range. *)

val invoke :
  t -> Seuss.Node.fn -> args:string -> (string, Seuss.Node.invoke_error) result * source
(** Route one invocation: least-loaded live node; remote fetch (with
    retry) on local miss when some other node holds the snapshot.
    [Error `Overloaded] with [Cluster_cold] only when no node is alive. *)

val invoke_unregistered :
  t -> Seuss.Node.fn -> args:string -> (string, Seuss.Node.invoke_error) result * source
(** Same routing, but without consulting or feeding the registry: every
    per-node miss is a full cold start. The control arm of the DR-SEUSS
    experiment. *)

val stats : t -> stats

val transfer_time : Seuss.Snapshot.t -> float
(** Modeled fetch time for a snapshot diff over the LAN. *)
