(** The DR-SEUSS global snapshot registry (§9, future work).

    Tracks which compute nodes hold a function snapshot. Entries are
    metadata only — snapshots themselves are immutable page images that
    stay on their node until fetched. *)

type location = { node_id : int; snapshot : Seuss.Snapshot.t }

type t

val create : unit -> t

val publish : t -> fn_id:string -> node_id:int -> Seuss.Snapshot.t -> unit
(** Record that [node_id] holds a snapshot for [fn_id]. Re-publishing
    from the same node replaces the entry. *)

val locate : t -> fn_id:string -> location list
(** All live holders (deleted snapshots are filtered and dropped). *)

val holder_other_than : t -> fn_id:string -> node_id:int -> location option
(** A live holder on some other node, if any. *)

val evict : t -> fn_id:string -> node_id:int -> unit
(** Drop one holder entry (the fault-plane path: the holder is dead or
    its entry is stale). Other holders of [fn_id] are untouched. *)

val held_by : t -> node_id:int -> string list
(** The fn_ids [node_id] currently holds, sorted — the work-list for
    post-crash eviction and re-publication. *)

val forget_node : t -> node_id:int -> unit

val entries : t -> int
