(** Deterministic, sorted views over [Hashtbl].

    Raw [Hashtbl.iter]/[Hashtbl.fold] visit buckets in insertion-history
    order, which leaks nondeterminism into anything order-sensitive
    downstream; seusslint bans them outside this module. These wrappers
    visit bindings in ascending key order (polymorphic [compare]), so
    dumps, teardown sweeps and accumulated lists are reproducible by
    construction. Cost: one intermediate list and a sort per call — fine
    for dump/teardown paths; keep them off per-event hot paths. *)

val bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings, sorted by key ascending. *)

val keys : ('a, 'b) Hashtbl.t -> 'a list
(** All keys, sorted ascending. *)

val iter : ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [iter f tbl] applies [f] in ascending key order. *)

val fold : ('a -> 'b -> 'acc -> 'acc) -> ('a, 'b) Hashtbl.t -> 'acc -> 'acc
(** [fold f tbl init] folds in ascending key order. *)
