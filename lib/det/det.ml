(* Deterministic, sorted views over [Hashtbl].

   [Hashtbl.iter]/[Hashtbl.fold] enumerate buckets in an order that
   depends on insertion history, so any result that reaches output, the
   event heap, or resource teardown through them is a latent
   reproducibility bug. seusslint bans the raw iterators tree-wide; code
   goes through these wrappers (or carries an explicit allow comment for
   a provably order-insensitive use).

   Keys are ordered by polymorphic [compare]. Bindings hidden by
   [Hashtbl.add] shadowing are included like the raw iterators would —
   the codebase only uses [replace], so in practice keys are unique. *)

let bindings tbl =
  (* seusslint: allow hashtbl-order — this wrapper is the sanctioned sort point *)
  let raw = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (a, _) (b, _) -> compare a b) raw

let keys tbl = List.map fst (bindings tbl)

let iter f tbl = List.iter (fun (k, v) -> f k v) (bindings tbl)

let fold f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings tbl)
