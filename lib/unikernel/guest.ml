type env = {
  image : Image.t;
  space : Mem.Addr_space.t;
  listener : Net.Tcp.listener;
  hypercalls : Hypercall.t;
  rng : Sim.Prng.t;
  cpu_burn : float -> unit;
}

type warmth = {
  net_pool : bool;
  net_send : bool;
  compiler : bool;
  exec_cache : bool;
}

type mutable_warmth = {
  mutable w_net_pool : bool;
  mutable w_net_send : bool;
  mutable w_compiler : bool;
  mutable w_exec : bool;
}

type loaded = { source : string; instance : Interp.Minijs.t; nodes : int }

type state = {
  env : env;
  heap : Galloc.t;
  nursery : Galloc.t;
  w : mutable_warmth;
  mutable conn_cursor : int;  (* position in the per-connection ring *)
  mutable program : loaded option;
  (* Allocation routing: load-time allocations persist (heap); run-time
     allocations are nursery garbage. *)
  mutable alloc_to_heap : bool;
  host : Interp.Builtins.host;
  hooks : Interp.Eval.hooks;
}

type snapshot_state = {
  s_warmth : warmth;
  s_heap_cursor : int;
  s_nursery_cursor : int;
  s_conn_cursor : int;
  s_program : loaded option;  (* instance is a frozen deep copy *)
}

(* Net region layout (offsets in pages from Gconst.net_region_base):
   [0, pool) buffer pool, [pool, pool+send) send-path structures, then
   the per-connection ring. *)
let send_offset = Gconst.net_pool_init_pages
let ring_offset = send_offset + Gconst.net_send_init_pages

let fault_time (st : Mem.Addr_space.write_stats) =
  (float_of_int st.Mem.Addr_space.cow_copies *. Mem.Mconfig.page_copy_time)
  +. (float_of_int st.Mem.Addr_space.zero_fills *. Mem.Mconfig.zero_fill_time)

(* Writing guest memory pays for the demand/COW faults it causes. *)
let touch_charged burn space ~vpn ~pages =
  let st = Mem.Addr_space.write_range space ~vpn ~pages in
  let cost = fault_time st in
  if cost > 0.0 then burn cost

let make_state env =
  (* [host]/[hooks] close over the state being constructed. *)
  let rec state =
    lazy
      (let heap =
         Galloc.create env.space ~base_vpn:Gconst.heap_base
           ~pages:(Gconst.nursery_base - Gconst.heap_base)
           ~policy:Galloc.Bump
       in
       let nursery =
         Galloc.create env.space ~base_vpn:Gconst.nursery_base
           ~pages:Gconst.nursery_pages ~policy:Galloc.Ring
       in
       let alloc bytes =
         let t = Lazy.force state in
         let st =
           Galloc.alloc (if t.alloc_to_heap then t.heap else t.nursery) bytes
         in
         let cost = fault_time st in
         if cost > 0.0 then env.cpu_burn cost
       in
       let hooks =
         { Interp.Eval.alloc; work = env.cpu_burn; max_ops = 200_000_000 }
       in
       let host =
         {
           Interp.Builtins.http_get =
             (fun url ->
               match env.hypercalls.Hypercall.net_outbound url with
               | None -> Error (Printf.sprintf "cannot reach %s" url)
               | Some conn -> (
                   let result =
                     Net.Http.request ~conn ~timeout:60.0 ~path:url ""
                   in
                   Net.Tcp.close conn;
                   match result with
                   | Ok r when r.Net.Http.status = 200 -> Ok r.Net.Http.body
                   | Ok r ->
                       Error (Printf.sprintf "status %d" r.Net.Http.status)
                   | Error `Timeout -> Error "timeout"
                   | Error `Closed -> Error "connection closed"));
           log = env.hypercalls.Hypercall.console_write;
           now = env.hypercalls.Hypercall.clock_wall;
           work_ms = (fun ms -> env.cpu_burn (ms /. 1000.0));
           alloc;
           random = (fun () -> Sim.Prng.float env.rng);
         }
       in
       {
         env;
         heap;
         nursery;
         w =
           {
             w_net_pool = false;
             w_net_send = false;
             w_compiler = false;
             w_exec = false;
           };
         conn_cursor = 0;
         program = None;
         alloc_to_heap = true;
         host;
         hooks;
       })
  in
  Lazy.force state

(* {1 First-use (warmable) components} *)

let ensure_net_pool t =
  if not t.w.w_net_pool then begin
    t.env.cpu_burn Gconst.net_pool_init_time;
    touch_charged t.env.cpu_burn t.env.space ~vpn:Gconst.net_region_base ~pages:Gconst.net_pool_init_pages;
    t.w.w_net_pool <- true
  end

let ensure_net_send t =
  if not t.w.w_net_send then begin
    t.env.cpu_burn Gconst.net_send_init_time;
    touch_charged t.env.cpu_burn t.env.space
      ~vpn:(Gconst.net_region_base + send_offset)
      ~pages:Gconst.net_send_init_pages;
    t.w.w_net_send <- true
  end

let ensure_compiler t =
  if not t.w.w_compiler then begin
    t.env.cpu_burn Gconst.compiler_init_time;
    t.alloc_to_heap <- true;
    let st = Galloc.alloc t.heap (Gconst.compiler_init_pages * Mem.Mconfig.page_size) in
    t.env.cpu_burn (fault_time st);
    t.w.w_compiler <- true
  end

let ensure_exec_cache t =
  if not t.w.w_exec then begin
    t.env.cpu_burn Gconst.exec_init_time;
    t.alloc_to_heap <- true;
    let st = Galloc.alloc t.heap (Gconst.exec_init_pages * Mem.Mconfig.page_size) in
    t.env.cpu_burn (fault_time st);
    t.w.w_exec <- true
  end

(* {1 Steady-state driver operations} *)

let on_accept t =
  ensure_net_pool t;
  t.env.cpu_burn Gconst.accept_time;
  let ring_pages = Gconst.conn_ring_pages in
  if t.conn_cursor + Gconst.accept_pages > ring_pages then t.conn_cursor <- 0;
  touch_charged t.env.cpu_burn t.env.space
    ~vpn:(Gconst.net_region_base + ring_offset + t.conn_cursor)
    ~pages:Gconst.accept_pages;
  t.conn_cursor <- t.conn_cursor + Gconst.accept_pages

let reply t conn r =
  ensure_net_send t;
  t.env.cpu_burn Gconst.reply_time;
  touch_charged t.env.cpu_burn t.env.space
    ~vpn:(Gconst.net_region_base + send_offset)
    ~pages:Gconst.reply_pages;
  let data = Driver.encode_reply r in
  if not (Net.Tcp.is_closed conn) then Net.Tcp.send conn data

let compile_into t source =
  ensure_compiler t;
  t.alloc_to_heap <- true;
  match Interp.Minijs.load ~hooks:t.hooks ~host:t.host source with
  | Error msg -> Error msg
  | Ok instance ->
      let compiled = Interp.Minijs.compiled instance in
      let nodes = compiled.Interp.Compile.nodes in
      t.env.cpu_burn
        (Gconst.compile_base_time
        +. (Gconst.compile_time_per_node *. float_of_int nodes));
      let st =
        Galloc.alloc t.heap
          ((Gconst.compile_steady_pages * Mem.Mconfig.page_size)
          + (compiled.Interp.Compile.source_bytes * 4))
      in
      t.env.cpu_burn (fault_time st);
      Ok { source; instance; nodes }

let run_program t loaded args =
  ensure_exec_cache t;
  t.env.cpu_burn Gconst.run_scratch_time;
  touch_charged t.env.cpu_burn t.env.space ~vpn:Gconst.scratch_base ~pages:Gconst.run_scratch_pages;
  t.env.cpu_burn Gconst.args_import_time;
  touch_charged t.env.cpu_burn t.env.space
    ~vpn:(Gconst.scratch_base + Gconst.run_scratch_pages)
    ~pages:Gconst.args_import_pages;
  t.alloc_to_heap <- false;
  let result = Interp.Minijs.run_main loaded.instance ~args_literal:args in
  t.alloc_to_heap <- true;
  result

let handle t conn = function
  | Driver.Ping -> reply t conn Driver.Pong
  | Driver.Init source -> (
      match compile_into t source with
      | Ok loaded ->
          t.program <- Some loaded;
          t.env.hypercalls.Hypercall.breakpoint "compile-ok"
      | Error msg ->
          t.env.hypercalls.Hypercall.breakpoint ("compile-err:" ^ msg))
  | Driver.Run args -> (
      match t.program with
      | None -> reply t conn (Driver.Err_reply "no function initialized")
      | Some loaded -> (
          match run_program t loaded args with
          | Ok result -> reply t conn (Driver.Ok_reply result)
          | Error msg -> reply t conn (Driver.Err_reply msg)))
  | Driver.Warm_net ->
      (* The accept already primed the buffer pool; answering primes the
         send path. *)
      reply t conn (Driver.Ok_reply "warmed")
  | Driver.Warm_exec -> (
      match compile_into t Driver.dummy_script with
      | Error msg -> reply t conn (Driver.Err_reply msg)
      | Ok dummy -> (
          match run_program t dummy "null" with
          | Ok _ -> reply t conn (Driver.Ok_reply "warmed")
          | Error msg -> reply t conn (Driver.Err_reply msg)))
  | Driver.Checkpoint ->
      (* No reply: replying would warm the send path before the base
         snapshot is captured. The breakpoint itself is the ack. *)
      t.env.hypercalls.Hypercall.breakpoint "checkpoint"

let serve t =
  let rec accept_loop () =
    let conn = Net.Tcp.accept t.env.listener in
    on_accept t;
    msg_loop conn
  and msg_loop conn =
    match Net.Tcp.recv conn with
    | None -> accept_loop ()
    | Some m ->
        (match Driver.decode_command m.Net.Tcp.data with
        | Error e -> reply t conn (Driver.Err_reply e)
        | Ok cmd -> handle t conn cmd);
        msg_loop conn
  in
  accept_loop ()

let boot ?(on_ready = ignore) env =
  let image = env.image in
  env.cpu_burn image.Image.kernel_boot_time;
  touch_charged env.cpu_burn env.space ~vpn:Gconst.kernel_base ~pages:image.Image.kernel_pages;
  env.cpu_burn image.Image.runtime_init_time;
  touch_charged env.cpu_burn env.space ~vpn:Gconst.runtime_base ~pages:image.Image.runtime_pages;
  env.cpu_burn image.Image.driver_start_time;
  touch_charged env.cpu_burn env.space ~vpn:Gconst.driver_base ~pages:image.Image.driver_pages;
  let t = make_state env in
  on_ready t;
  env.hypercalls.Hypercall.breakpoint "driver-started";
  t

let freeze_program loaded =
  (* Keep the original builtins in the template; [restore] rebinds them
     to the deploying UC's host. *)
  {
    loaded with
    instance =
      Interp.Minijs.clone ~host:Interp.Builtins.null_host loaded.instance;
  }

let capture t =
  {
    s_warmth =
      {
        net_pool = t.w.w_net_pool;
        net_send = t.w.w_net_send;
        compiler = t.w.w_compiler;
        exec_cache = t.w.w_exec;
      };
    s_heap_cursor = Galloc.cursor t.heap;
    s_nursery_cursor = Galloc.cursor t.nursery;
    s_conn_cursor = t.conn_cursor;
    s_program = Option.map freeze_program t.program;
  }

let restore env snap =
  let t = make_state env in
  (* Resuming writes per-instance guest state (event loop, timers, GC
     bookkeeping) regardless of what runs later. *)
  env.cpu_burn Gconst.resume_time;
  touch_charged env.cpu_burn env.space ~vpn:Gconst.resume_base
    ~pages:Gconst.resume_pages;
  t.w.w_net_pool <- snap.s_warmth.net_pool;
  t.w.w_net_send <- snap.s_warmth.net_send;
  t.w.w_compiler <- snap.s_warmth.compiler;
  t.w.w_exec <- snap.s_warmth.exec_cache;
  Galloc.set_cursor t.heap snap.s_heap_cursor;
  Galloc.set_cursor t.nursery snap.s_nursery_cursor;
  t.conn_cursor <- snap.s_conn_cursor;
  t.program <-
    Option.map
      (fun loaded ->
        {
          loaded with
          instance =
            Interp.Minijs.clone ~hooks:t.hooks ~host:t.host loaded.instance;
        })
      snap.s_program;
  t

let warmth t =
  {
    net_pool = t.w.w_net_pool;
    net_send = t.w.w_net_send;
    compiler = t.w.w_compiler;
    exec_cache = t.w.w_exec;
  }

let program_source t = Option.map (fun l -> l.source) t.program

let heap_used_bytes t = Galloc.used_bytes t.heap

(* Frozen-state views for the snapshot store's content model: which
   function (if any) the snapshot carries, and how far its heap bump
   cursor had advanced — the tail of that extent is the function's
   compiled bytecode, the only heap content that differs between
   functions compiled on the same base. *)
let snapshot_program_source s = Option.map (fun l -> l.source) s.s_program

let snapshot_heap_pages s =
  (s.s_heap_cursor + Mem.Mconfig.page_size - 1) / Mem.Mconfig.page_size
