(** The software running inside a unikernel context.

    A guest is the Rumprun + interpreter + invocation-driver stack,
    executed as one simulation process over the UC's address space. Its
    observable state is split exactly the way SEUSS needs it:

    - {b resumable state} ({!snapshot_state}): warmth of the lazily
      initialized components, heap/nursery cursors, and the loaded
      program — everything a snapshot must freeze so that a new UC can
      continue "at the instruction where the snapshot was triggered";
    - {b per-UC bindings} ({!env}): the address space, listener,
      hypercalls and PRNG a deployed UC receives from the host.

    The guest reaches breakpoints (debug-register hypercall) at the two
    capture points: ["driver-started"] (base runtime snapshot) and
    ["compile-ok"] (function-specific snapshot). *)

type env = {
  image : Image.t;
  space : Mem.Addr_space.t;
  listener : Net.Tcp.listener;
  hypercalls : Hypercall.t;
  rng : Sim.Prng.t;
  cpu_burn : float -> unit;
      (** occupy a core for the given CPU seconds. The host supplies a
          core-semaphore-backed implementation so that guest compute
          contends for the node's 16 cores while guest IO waits do not
          (EbbRT's event-driven model); tests pass [Sim.Engine.sleep]. *)
}

type state
(** Live, mutable guest state bound to one UC. *)

type snapshot_state
(** A frozen copy, safe to share as a deploy template. *)

type warmth = {
  net_pool : bool;
  net_send : bool;
  compiler : bool;
  exec_cache : bool;
}

val boot : ?on_ready:(state -> unit) -> env -> state
(** Run the full boot path: Rumprun kernel, interpreter initialization,
    driver start — sleeping the modeled times and writing the image's
    pages. Ends by reaching the ["driver-started"] breakpoint;
    [on_ready] fires just before it, giving the host a handle on the
    state while the guest is parked (breakpoints block, so [boot] does
    not return until the host resumes). *)

val serve : state -> unit
(** The invocation-driver loop: accept a connection, handle
    {!Driver.command}s, repeat. Runs until the UC is destroyed (the
    process is abandoned while blocked on accept/recv). *)

val capture : state -> snapshot_state
(** Freeze the current guest state (deep-copies the interpreter world). *)

val restore : env -> snapshot_state -> state
(** Bind a frozen state to a new UC: arena cursors are restored and the
    interpreter world is cloned against the new env's hypercalls. *)

val warmth : state -> warmth

val program_source : state -> string option

val heap_used_bytes : state -> int

val snapshot_program_source : snapshot_state -> string option
(** The source of the program the frozen state carries, if any — the
    salt the snapshot store uses to give each function's compiled
    bytecode its own content identity. *)

val snapshot_heap_pages : snapshot_state -> int
(** Heap pages in use at capture (bump-cursor extent, rounded up). The
    tail of this extent is the function-specific bytecode; everything
    below it is content every snapshot of the same runtime shares. *)
