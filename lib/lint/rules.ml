(* The seusslint rule catalogue. Every rule guards one way simulation
   determinism, resource safety or liveness has actually broken (or
   nearly broken) in this codebase. The syntactic rules are enforced
   per-file by {!Check}; the deadlock rules need the interprocedural
   call graph built by {!Deadlock} and run as a separate pass
   ([seusslint --pass deadlock]); the heat rules flag allocation and
   boxing on paths proven reachable from the registered hot roots
   ({!Hotroots}) by {!Heat} ([seusslint --pass heat]); the own rules
   track acquire/release typestate for frames, snapshot references and
   unikernel contexts interprocedurally, enforced by {!Own}
   ([seusslint --pass own]). *)

type id =
  | Bare_random  (** [Random.*] outside the seeded PRNG plumbing *)
  | Wallclock  (** [Unix.gettimeofday] / [Sys.time] inside lib/ *)
  | Hashtbl_order  (** raw [Hashtbl.iter]/[Hashtbl.fold] inside lib/ *)
  | Physical_eq  (** [==] / [!=] inside lib/ *)
  | Stdout_print  (** [print_*] / [Printf.printf] inside lib/ *)
  | Frame_site  (** frame acquire/release outside the audited site list *)
  | Block_in_handler
      (** a may-block call reachable from an atomic context (fault hook,
          reporter callback, heap comparator, crash handler) *)
  | Lock_order
      (** semaphore lock classes acquired in a cyclic order, or a
          [Semaphore.create] missing its [seussdead: lock] annotation *)
  | Unreleased_acquire
      (** a bare [Semaphore.acquire] whose function never releases the
          same lock class *)
  | Heat_closure  (** a closure allocated inside a hot function body *)
  | Heat_alloc
      (** tuple/record/array/constructor/ref construction, or a call to
          a known-allocating stdlib function, on a hot path *)
  | Heat_string
      (** string building — [^], [String.concat], [Printf]/[Format] —
          on a hot path *)
  | Heat_float_box
      (** a float arithmetic result stored into a record field, which
          boxes unless the record is all-float *)
  | Heat_poly_cmp
      (** polymorphic [compare]/[=]/[min]/[max]/[Hashtbl.hash] on a hot
          path: a C call that also boxes intermediate results *)
  | Heat_partial
      (** partial application on a hot path: allocates a closure per
          call *)
  | Own_escape
      (** an acquired resource (frame ref, snapshot ref, UC) that no
          reachable path ever releases, at a site not registered as an
          ownership transfer *)
  | Own_exn_leak
      (** a raise/failwith/invalid_arg while a resource acquired in the
          same function is still owned on that path *)
  | Own_double_release
      (** a second release of a resource already released on the same
          path *)
  | Own_use_after_destroy
      (** a liveness-requiring UC operation after [Uc.destroy] on the
          same path *)
  | Own_unbalanced
      (** branch arms that disagree about whether a resource owned
          before the branch is released *)

let syntactic =
  [ Bare_random; Wallclock; Hashtbl_order; Physical_eq; Stdout_print; Frame_site ]

let deadlock = [ Block_in_handler; Lock_order; Unreleased_acquire ]

let heat =
  [ Heat_closure; Heat_alloc; Heat_string; Heat_float_box; Heat_poly_cmp;
    Heat_partial ]

let own =
  [ Own_escape; Own_exn_leak; Own_double_release; Own_use_after_destroy;
    Own_unbalanced ]

let all = syntactic @ deadlock @ heat @ own

(* Which seusslint pass enforces a rule ([--list-rules], --json records). *)
let pass_of r =
  if List.mem r syntactic then "base"
  else if List.mem r deadlock then "deadlock"
  else if List.mem r heat then "heat"
  else "own"

let name = function
  | Bare_random -> "bare-random"
  | Wallclock -> "wallclock"
  | Hashtbl_order -> "hashtbl-order"
  | Physical_eq -> "physical-eq"
  | Stdout_print -> "stdout-print"
  | Frame_site -> "frame-site"
  | Block_in_handler -> "block-in-handler"
  | Lock_order -> "lock-order"
  | Unreleased_acquire -> "unreleased-acquire"
  | Heat_closure -> "heat-closure"
  | Heat_alloc -> "heat-alloc"
  | Heat_string -> "heat-string"
  | Heat_float_box -> "heat-float-box"
  | Heat_poly_cmp -> "heat-poly-cmp"
  | Heat_partial -> "heat-partial-apply"
  | Own_escape -> "own-escape"
  | Own_exn_leak -> "own-exn-leak"
  | Own_double_release -> "own-double-release"
  | Own_use_after_destroy -> "own-use-after-destroy"
  | Own_unbalanced -> "own-unbalanced"

let of_name n = List.find_opt (fun r -> String.equal (name r) n) all

let describe = function
  | Bare_random ->
      "Random.* draws from ambient global state; all randomness must flow \
       from a seeded Sim.Prng stream (or the Faults plan) so runs replay \
       bit-identically"
  | Wallclock ->
      "Unix.gettimeofday / Sys.time read the host clock; simulation code \
       must read Sim.Engine.now, which only advances with the event heap"
  | Hashtbl_order ->
      "Hashtbl.iter / Hashtbl.fold visit buckets in insertion-history \
       order; results that reach output, the event heap or teardown must \
       go through the sorted Det wrappers"
  | Physical_eq ->
      "== / != compare physical identity, which GC moves and copying make \
       treacherous on mutable simulation records; use structural (=) or \
       carry an allow comment justifying the identity check"
  | Stdout_print ->
      "print_* / Printf.printf write to stdout from library code; node \
       output must flow through the Obs event log or a formatter the \
       caller controls"
  | Frame_site ->
      "physical frame acquire/release (Frame.alloc / incref / decref) at \
       a call site missing from the audited site list in Lint.Sites; add \
       the site there after checking its pairing"
  | Block_in_handler ->
      "a call that may suspend the current process (Semaphore.acquire, \
       Channel.recv/send, Ivar.read, Engine.sleep, transitively) is \
       reachable from an atomic context — a fault hook, reporter \
       callback, heap comparator or crash handler that runs outside the \
       effect handler and cannot suspend"
  | Lock_order ->
      "semaphore lock classes (named with (* seussdead: lock <class> *) \
       at each Semaphore.create) form a cycle in the static \
       acquired-while-holding graph, or a create site is missing its \
       class annotation"
  | Unreleased_acquire ->
      "a bare Semaphore.acquire of a named lock class whose enclosing \
       function contains no matching release: a path to return leaks the \
       permit unless ownership is transferred (justify with an allow)"
  | Heat_closure ->
      "a closure (fun/function outside the binding's own parameter list) \
       is allocated every time this hot function runs; lift it to the top \
       level, store it once, or justify with (* seussheat: cold — ... *)"
  | Heat_alloc ->
      "a tuple, record, array, ref, argument-carrying constructor or \
       known-allocating stdlib call sits on a path reachable from a \
       registered hot root; hoist it, use mutable scratch, or justify \
       with (* seussheat: cold — ... *)"
  | Heat_string ->
      "string building (^, String.concat, Printf/Format, string_of_*) \
       allocates and copies on every execution of a hot path; move \
       rendering off the fast path or justify it"
  | Heat_float_box ->
      "a float arithmetic result stored into a record field boxes two \
       words per store unless the record is all-float; restructure the \
       stats into a flat float record (and say so in the cold marker if \
       the field already is unboxed)"
  | Heat_poly_cmp ->
      "polymorphic compare/=/min/max/Hashtbl.hash on a hot path is a C \
       call that walks the representation; use the monomorphic \
       Int/Float/String comparison, or literal comparisons the compiler \
       specializes"
  | Heat_partial ->
      "applying a known function to fewer arguments than its definition \
       takes allocates a closure per call on a hot path; apply it fully \
       or eta-expand at the call site"
  | Own_escape ->
      "a resource acquired here (Frame.alloc/incref, Snapshot.addref, \
       Uc.boot/deploy) is never released on any reachable path and the \
       site is not in the Lint.Sites transfer registry; release it, \
       register the transfer, or justify with (* seussown: transfer — \
       ... *)"
  | Own_exn_leak ->
      "this raise / failwith / invalid_arg fires while a resource \
       acquired in the same function is still owned on the path, so the \
       exception leaks it; release before raising or wrap in \
       Fun.protect"
  | Own_double_release ->
      "the resource was already released earlier on this path; a second \
       Frame.decref / Snapshot.decref / Uc.destroy either underflows \
       the refcount or double-frees"
  | Own_use_after_destroy ->
      "a liveness-requiring UC operation (connect, send, request, \
       resume, capture, prefault, ...) after Uc.destroy on the same \
       path reads resources destroy already released"
  | Own_unbalanced ->
      "one branch arm releases a resource owned before the branch while \
       a sibling arm keeps it owned, so ownership after the branch \
       depends on which arm ran; release on every arm or transfer \
       explicitly"

(* Meta-diagnostics the checker itself can emit. They are not
   suppressible — an allow comment that is wrong or dead is itself the
   defect being reported. *)
let bad_allow = "bad-allow"
let unused_allow = "unused-allow"
let parse_error = "parse-error"
let ambiguous_resolve = "ambiguous-resolve"
