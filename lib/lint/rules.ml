(* The seusslint rule catalogue. Every rule guards one way simulation
   determinism or resource safety has actually broken (or nearly broken)
   in this codebase; the checker in {!Check} enforces them over the
   Parsetree of each source under lib/ and bin/. *)

type id =
  | Bare_random  (** [Random.*] outside the seeded PRNG plumbing *)
  | Wallclock  (** [Unix.gettimeofday] / [Sys.time] inside lib/ *)
  | Hashtbl_order  (** raw [Hashtbl.iter]/[Hashtbl.fold] inside lib/ *)
  | Physical_eq  (** [==] / [!=] inside lib/ *)
  | Stdout_print  (** [print_*] / [Printf.printf] inside lib/ *)
  | Frame_site  (** frame acquire/release outside the audited site list *)

let all = [ Bare_random; Wallclock; Hashtbl_order; Physical_eq; Stdout_print; Frame_site ]

let name = function
  | Bare_random -> "bare-random"
  | Wallclock -> "wallclock"
  | Hashtbl_order -> "hashtbl-order"
  | Physical_eq -> "physical-eq"
  | Stdout_print -> "stdout-print"
  | Frame_site -> "frame-site"

let of_name = function
  | "bare-random" -> Some Bare_random
  | "wallclock" -> Some Wallclock
  | "hashtbl-order" -> Some Hashtbl_order
  | "physical-eq" -> Some Physical_eq
  | "stdout-print" -> Some Stdout_print
  | "frame-site" -> Some Frame_site
  | _ -> None

let describe = function
  | Bare_random ->
      "Random.* draws from ambient global state; all randomness must flow \
       from a seeded Sim.Prng stream (or the Faults plan) so runs replay \
       bit-identically"
  | Wallclock ->
      "Unix.gettimeofday / Sys.time read the host clock; simulation code \
       must read Sim.Engine.now, which only advances with the event heap"
  | Hashtbl_order ->
      "Hashtbl.iter / Hashtbl.fold visit buckets in insertion-history \
       order; results that reach output, the event heap or teardown must \
       go through the sorted Det wrappers"
  | Physical_eq ->
      "== / != compare physical identity, which GC moves and copying make \
       treacherous on mutable simulation records; use structural (=) or \
       carry an allow comment justifying the identity check"
  | Stdout_print ->
      "print_* / Printf.printf write to stdout from library code; node \
       output must flow through the Obs event log or a formatter the \
       caller controls"
  | Frame_site ->
      "physical frame acquire/release (Frame.alloc / incref / decref) at \
       a call site missing from the audited site list in Lint.Sites; add \
       the site there after checking its pairing"

(* Meta-diagnostics the checker itself can emit. They are not
   suppressible — an allow comment that is wrong or dead is itself the
   defect being reported. *)
let bad_allow = "bad-allow"
let unused_allow = "unused-allow"
let parse_error = "parse-error"
