(** seussdead — the interprocedural blocking/deadlock pass.

    Builds a conservative call graph over every [.ml] under the given
    roots (one node per top-level binding, suffix-based name
    resolution, referencing a function counts as calling it), computes
    per-function may-block and may-acquire summaries to a fixpoint, and
    reports three rules:

    - [block-in-handler]: a blocking primitive is reachable from an
      atomic context — a callback registered at one of the audited
      registrars in {!Contexts}, or a binding marked
      [(* seussdead: atomic <reason> *)].
    - [lock-order]: the acquired-while-holding graph over annotated
      lock classes ([(* seussdead: lock <class> *)] at
      [Semaphore.create] sites) has a cycle, or a create site carries
      no class at all.
    - [unreleased-acquire]: a bare [Semaphore.acquire] of a classified
      lock whose enclosing function never releases that class.

    Suppressions use the pass's own marker,
    [(* seussdead: allow <rule> — <reason> *)], and are validated by
    the same bad-allow / unused-allow meta-rules as the base pass. *)

val marker : string
(** ["seussdead:"] — the comment marker of this pass. *)

val blocking_primitives : string list
(** Resolution keys (last two path components) of the primitives that
    can suspend the running process. *)

val check_sources : Check.source list -> Check.violation list
(** Analyze an already-loaded tree ({!Check.load_tree}) as one program
    and return the sorted violations — the shared-parse entry point
    behind [seusslint --pass all]. *)

val check_tree : ?strip_prefix:string -> string list -> Check.violation list
(** [check_sources] over {!Check.load_tree}: analyze every [.ml] under
    the given roots as one program. [strip_prefix] is dropped from the
    front of each relative path before reporting, mirroring
    {!Check.check_tree}. *)
