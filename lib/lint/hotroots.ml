(* The registered hot roots of the tree — the per-event and per-sample
   paths whose allocation behaviour sets the simulator's throughput
   floor. seussheat seeds its reachability worklist here; everything a
   root (transitively) references is hot and gets the allocation rules
   applied to its body.

   Roots are named (repo-relative file, top-level binding). The list is
   deliberately small and curated: a root should be something executed
   O(events) or O(samples) per run, not merely "fast-sounding". Adding a
   root is a review-visible act — append here with a why, and expect to
   spend time placing (* seussheat: cold — ... *) markers on the code it
   newly drags into the hot set. *)

type root = {
  hr_file : string;  (** repo-relative defining file *)
  hr_binding : string;  (** top-level binding name *)
  hr_why : string;  (** why this path is O(events) *)
}

let registry =
  [
    (* The engine dispatch loop and everything it runs per event. *)
    { hr_file = "lib/sim/engine.ml"; hr_binding = "run";
      hr_why = "the dispatch loop: pops, clock-advances and executes every \
                event in the run" };
    { hr_file = "lib/sim/engine.ml"; hr_binding = "schedule";
      hr_why = "every thunk enters the queue through here" };
    { hr_file = "lib/sim/engine.ml"; hr_binding = "push_resume";
      hr_why = "every suspension parks its continuation through here \
                (sleep and wait_begin both land on it)" };
    { hr_file = "lib/sim/engine.ml"; hr_binding = "sleep";
      hr_why = "per-sleep: the dominant primitive of every workload" };
    { hr_file = "lib/sim/engine.ml"; hr_binding = "wait_begin";
      hr_why = "per-acquire on the semaphore path" };
    { hr_file = "lib/sim/engine.ml"; hr_binding = "wait_end";
      hr_why = "per-release on the semaphore path" };
    (* The reference heap retired from the engine but still serving
       Contexts' run queues; its push/pop are per-event there. *)
    { hr_file = "lib/sim/heap.ml"; hr_binding = "push";
      hr_why = "per-event insert for heap-backed queues" };
    { hr_file = "lib/sim/heap.ml"; hr_binding = "pop";
      hr_why = "per-event extract for heap-backed queues" };
    (* Observability: every emitted event crosses these. *)
    { hr_file = "lib/obs/log.ml"; hr_binding = "emit";
      hr_why = "every observed event is stamped and ring-pushed here" };
    { hr_file = "lib/obs/ring.ml"; hr_binding = "push";
      hr_why = "the ring store behind every emit" };
    (* Metrics: incremented on event/sample cadence by the platform. *)
    { hr_file = "lib/obs/metrics.ml"; hr_binding = "inc";
      hr_why = "counter bump on event cadence" };
    { hr_file = "lib/obs/metrics.ml"; hr_binding = "observe";
      hr_why = "histogram observe on sample cadence" };
    { hr_file = "lib/obs/metrics.ml"; hr_binding = "set_gauge";
      hr_why = "gauge store on sample cadence" };
    (* Trace-context propagation: per spawned/forked unit of work. *)
    { hr_file = "lib/sim/trace.ml"; hr_binding = "fork";
      hr_why = "span-context fork on every spawn" };
  ]

let mem ~file ~binding =
  List.exists
    (fun r -> String.equal r.hr_file file && String.equal r.hr_binding binding)
    registry

let why ~file ~binding =
  List.find_map
    (fun r ->
      if String.equal r.hr_file file && String.equal r.hr_binding binding then
        Some r.hr_why
      else None)
    registry
