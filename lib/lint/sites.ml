(* The audited frame acquire/release site list.

   Every call to Frame.alloc / Frame.incref / Frame.decref must happen
   inside one of the (file, top-level binding, operation) triples below;
   the checker reports any other call site as [frame-site]. The list is
   the reviewable inventory of where physical frames change hands — when
   adding a site, check its release pairing before extending it. *)

type op = Alloc | Incref | Decref

let op_name = function Alloc -> "alloc" | Incref -> "incref" | Decref -> "decref"

let op_of_name = function
  | "alloc" -> Some Alloc
  | "incref" -> Some Incref
  | "decref" -> Some Decref
  | _ -> None

(* (repo-relative file, enclosing top-level binding, operation) *)
let audited : (string * string * op) list =
  [
    (* COW fault paths: a private copy or a zero-fill allocates; the
       page-table entry swap drops the old mapping's reference. *)
    ("lib/mem/addr_space.ml", "touch_write", Alloc);
    ("lib/mem/addr_space.ml", "prefault", Alloc);
    ("lib/mem/page_table.ml", "private_leaf", Incref);
    ("lib/mem/page_table.ml", "set", Decref);
    ("lib/mem/page_table.ml", "release", Decref);
    (* KSM baseline: the shared master page, and one reference per
       merged duplicate. *)
    ("lib/baselines/ksm.ml", "create", Alloc);
    ("lib/baselines/ksm.ml", "merge_batch", Incref);
    (* Snapshot store dedup: rewriting a delta entry to the canonical
       frame of its content takes the reference Page_table.set consumes
       (set itself drops the replaced private frame's reference). *)
    ("lib/seuss/snapstore.ml", "adopt_canonical", Incref);
  ]

let allowed ~file ~binding op =
  List.exists
    (fun (f, b, o) -> String.equal f file && String.equal b binding && o = op)
    audited

(* The ownership transfer registry for the seussown pass.

   An acquire site listed here hands the resource to a longer-lived
   structure (a record field, a cache, a page table) instead of
   releasing it before returning; the release happens later through
   that structure's own teardown. Each entry names where the matching
   release lives, so the pairing stays reviewable the same way the
   frame site list above does. *)

type resource = Frame_ref | Snap_ref | Uc_ctx

let resource_name = function
  | Frame_ref -> "frame"
  | Snap_ref -> "snapshot"
  | Uc_ctx -> "uc"

(* (repo-relative file, enclosing top-level binding, resource, where the
   release lives) *)
let transfers : (string * string * resource * string) list =
  [
    (* Uc.deploy takes the dependency reference the UC record owns for
       its lifetime; Uc.destroy drops it on the Running -> Dead
       transition. *)
    ("lib/seuss/uc.ml", "deploy", Snap_ref, "released by Uc.destroy");
    (* The audited frame acquire sites hand their reference to the page
       table / KSM master map; Page_table.set and Page_table.release
       drop them. *)
    ("lib/mem/addr_space.ml", "touch_write", Frame_ref,
     "installed via Page_table.set; released by set/release");
    ("lib/mem/addr_space.ml", "prefault", Frame_ref,
     "installed via Page_table.set; released by set/release");
    ("lib/mem/page_table.ml", "private_leaf", Frame_ref,
     "the cloned leaf owns the extra reference; released by set/release");
    ("lib/baselines/ksm.ml", "create", Frame_ref,
     "the KSM master map owns the frame until the allocator is dropped");
    ("lib/baselines/ksm.ml", "merge_batch", Frame_ref,
     "merged duplicates reference the master frame; Page_table.set \
      drops the replaced private copy");
    ("lib/seuss/snapstore.ml", "adopt_canonical", Frame_ref,
     "the reference is consumed by the caller's Page_table.set");
  ]

let transfer ~file ~binding res =
  List.find_map
    (fun (f, b, r, why) ->
      if String.equal f file && String.equal b binding && r = res then
        Some why
      else None)
    transfers
