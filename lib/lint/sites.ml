(* The audited frame acquire/release site list.

   Every call to Frame.alloc / Frame.incref / Frame.decref must happen
   inside one of the (file, top-level binding, operation) triples below;
   the checker reports any other call site as [frame-site]. The list is
   the reviewable inventory of where physical frames change hands — when
   adding a site, check its release pairing before extending it. *)

type op = Alloc | Incref | Decref

let op_name = function Alloc -> "alloc" | Incref -> "incref" | Decref -> "decref"

let op_of_name = function
  | "alloc" -> Some Alloc
  | "incref" -> Some Incref
  | "decref" -> Some Decref
  | _ -> None

(* (repo-relative file, enclosing top-level binding, operation) *)
let audited : (string * string * op) list =
  [
    (* COW fault paths: a private copy or a zero-fill allocates; the
       page-table entry swap drops the old mapping's reference. *)
    ("lib/mem/addr_space.ml", "touch_write", Alloc);
    ("lib/mem/addr_space.ml", "prefault", Alloc);
    ("lib/mem/page_table.ml", "private_leaf", Incref);
    ("lib/mem/page_table.ml", "set", Decref);
    ("lib/mem/page_table.ml", "release", Decref);
    (* KSM baseline: the shared master page, and one reference per
       merged duplicate. *)
    ("lib/baselines/ksm.ml", "create", Alloc);
    ("lib/baselines/ksm.ml", "merge_batch", Incref);
    (* Snapshot store dedup: rewriting a delta entry to the canonical
       frame of its content takes the reference Page_table.set consumes
       (set itself drops the replaced private frame's reference). *)
    ("lib/seuss/snapstore.ml", "adopt_canonical", Incref);
  ]

let allowed ~file ~binding op =
  List.exists
    (fun (f, b, o) -> String.equal f file && String.equal b binding && o = op)
    audited
