(** The audited atomic-context list for the seussdead pass.

    Atomic contexts are callbacks the engine invokes outside any effect
    handler (heap comparators, memory fault hooks, reporter callbacks,
    crash handlers, log clocks): a [Sleep]/[Suspend] performed there is
    an unhandled effect and aborts the simulation, so {!Deadlock}
    reports any may-block call reachable from one as
    [block-in-handler]. *)

type callback_arg =
  | Label of string  (** the (possibly optional) labelled argument *)
  | Positional of int  (** 0-based index among unlabelled arguments *)

val registrars : (string * callback_arg * string) list
(** (last two components of the registrar's path, which argument is the
    atomic callback, human description for reports). *)

val registrar_of :
  suffix:string -> (string * callback_arg * string) option
(** Look a call target up by its last two path components
    (e.g. ["Heap.create"]). *)

val atomic : (string * string) list
(** Audited (repo-relative file, top-level binding) pairs naming
    functions installed as atomic callbacks far from their definition.
    New code can instead mark a binding with
    [(* seussdead: atomic <reason> *)] on its definition line. *)

val is_atomic : file:string -> binding:string -> bool
