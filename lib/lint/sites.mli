(** The audited frame acquire/release site list.

    Every call to [Frame.alloc] / [Frame.incref] / [Frame.decref] must
    happen inside one of the audited (file, top-level binding,
    operation) triples; {!Check} reports any other call site as
    [frame-site]. The list is the reviewable inventory of where physical
    frames change hands — when adding a site, check its release pairing
    before extending it. *)

type op = Alloc | Incref | Decref

val op_name : op -> string
val op_of_name : string -> op option

val audited : (string * string * op) list
(** (repo-relative file, enclosing top-level binding, operation). *)

val allowed : file:string -> binding:string -> op -> bool
(** Whether the triple is in {!audited}. *)

(** {1 Ownership transfer registry}

    Acquire sites whose resource is handed to a longer-lived structure
    instead of being released before return; the seussown pass
    ({!Own}) treats them as balanced. Each entry records where the
    matching release lives. *)

type resource = Frame_ref | Snap_ref | Uc_ctx

val resource_name : resource -> string
(** ["frame"], ["snapshot"] or ["uc"]. *)

val transfers : (string * string * resource * string) list
(** (repo-relative file, enclosing top-level binding, resource, where
    the release lives). *)

val transfer : file:string -> binding:string -> resource -> string option
(** The registered release location for the triple, if any. *)
