(** The audited frame acquire/release site list.

    Every call to [Frame.alloc] / [Frame.incref] / [Frame.decref] must
    happen inside one of the audited (file, top-level binding,
    operation) triples; {!Check} reports any other call site as
    [frame-site]. The list is the reviewable inventory of where physical
    frames change hands — when adding a site, check its release pairing
    before extending it. *)

type op = Alloc | Incref | Decref

val op_name : op -> string
val op_of_name : string -> op option

val audited : (string * string * op) list
(** (repo-relative file, enclosing top-level binding, operation). *)

val allowed : file:string -> binding:string -> op -> bool
(** Whether the triple is in {!audited}. *)
