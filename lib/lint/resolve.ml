(* Suffix-2 name resolution, shared by the interprocedural passes
   (seussdead, seussheat).

   Definitions are keyed "Module.binding" where the module name is the
   capitalized file basename; a reference resolves by its last two path
   components ([Sim.Semaphore.acquire] -> "Semaphore.acquire"), and an
   unqualified reference resolves within its own module. Two files with
   the same basename therefore merge their definitions under one key —
   the passes stay conservative by analyzing the whole candidate set,
   and {!ambiguous} lets them surface the collision instead of silently
   conflating modules. *)

type 'a t = {
  defs : (string, 'a list) Hashtbl.t;
  files : (string, string list) Hashtbl.t;  (* key -> distinct defining files *)
}

let create () = { defs = Hashtbl.create 256; files = Hashtbl.create 256 }

(* Last one or two path components, joined — the resolution key. *)
let suffix2 path =
  match List.rev path with
  | [] -> ""
  | [ x ] -> x
  | x :: m :: _ -> m ^ "." ^ x

let key_of ~modname path =
  match List.rev path with
  | [] -> None
  | [ x ] -> Some (modname ^ "." ^ x)
  | x :: m :: _ -> Some (m ^ "." ^ x)

let add t ~key ~file def =
  let prev =
    match Hashtbl.find_opt t.defs key with Some l -> l | None -> []
  in
  Hashtbl.replace t.defs key (prev @ [ def ]);
  let prev_files =
    match Hashtbl.find_opt t.files key with Some l -> l | None -> []
  in
  if not (List.mem file prev_files) then
    Hashtbl.replace t.files key (prev_files @ [ file ])

let find t ~modname path =
  match key_of ~modname path with
  | None -> []
  | Some k -> (
      match Hashtbl.find_opt t.defs k with Some l -> l | None -> [])

(* The distinct files defining a reference's key — length >= 2 means the
   suffix-2 key conflates same-named modules and any per-definition
   choice would be arbitrary. *)
let defining_files t ~modname path =
  match key_of ~modname path with
  | None -> []
  | Some k -> (
      match Hashtbl.find_opt t.files k with Some l -> l | None -> [])

let ambiguous t ~modname path =
  match defining_files t ~modname path with
  | [] | [ _ ] -> false
  | _ -> true
