(* The seusslint checker: parse one source with compiler-libs, walk the
   Parsetree for rule hits, then reconcile them against the file's
   `seusslint: allow` comments. No typing pass — every rule is decidable
   (conservatively) on names alone, which keeps the linter dependency-free
   and fast enough to run on every build. *)

type violation = {
  file : string;  (** repo-relative path *)
  line : int;
  col : int;
  rule : string;
  message : string;
}

let compare_violation a b =
  compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule)

(* {1 Allow comments}

   [(* seusslint: allow <rule> — <reason> *)] suppresses hits of <rule>
   on the comment's own line(s) or the line immediately after it. The
   rule id must exist, the reason must be non-empty, and every allowance
   must suppress at least one hit — anything else is itself reported. *)

type allow = {
  a_rule : Rules.id;
  a_first : int;  (** first source line the allowance covers *)
  a_last : int;  (** last source line the allowance covers *)
  a_line : int;  (** where the comment itself starts, for reporting *)
  mutable a_used : bool;
}

let marker = "seusslint:"

(* Split a comment into (verb, payload) after [marker]; [None] when the
   comment is not marker-directed at all. Shared with the deadlock pass,
   which reads its own marker ("seussdead:") and more verbs than
   "allow". *)
let parse_directive ~marker text =
  let trimmed = String.trim text in
  let starred =
    (* Doc comments reach us with a leading '*'. *)
    if String.length trimmed > 0 && trimmed.[0] = '*' then
      String.trim (String.sub trimmed 1 (String.length trimmed - 1))
    else trimmed
  in
  let mlen = String.length marker in
  if String.length starred < mlen || String.sub starred 0 mlen <> marker then
    None
  else
    let rest =
      String.trim (String.sub starred mlen (String.length starred - mlen))
    in
    match String.index_opt rest ' ' with
    | None -> Some (rest, "")
    | Some i ->
        Some
          ( String.sub rest 0 i,
            String.trim (String.sub rest (i + 1) (String.length rest - i - 1))
          )

(* Split an allow payload "<rule> <sep> <reason>" into the rule id and
   the reason with its leading separator ("—", "--" or "-") stripped. *)
let split_allow_payload after =
  let rule_id, reason =
    match String.index_opt after ' ' with
    | None -> (after, "")
    | Some j ->
        ( String.sub after 0 j,
          String.trim (String.sub after (j + 1) (String.length after - j - 1))
        )
  in
  let reason =
    let try_strip prefix s =
      let pl = String.length prefix in
      if String.length s >= pl && String.sub s 0 pl = prefix then
        Some (String.trim (String.sub s pl (String.length s - pl)))
      else None
    in
    match
      List.find_map (fun p -> try_strip p reason) [ "\xe2\x80\x94"; "--"; "-" ]
    with
    | Some stripped -> stripped
    | None -> reason
  in
  (rule_id, reason)

let parse_allow_text text =
  match parse_directive ~marker text with
  | None -> None
  | Some ("allow", payload) when payload <> "" ->
      let rule_id, reason = split_allow_payload payload in
      Some (`Allow (rule_id, reason))
  | Some _ -> Some `Malformed

(* {1 The Parsetree walk} *)

type ctx = {
  rel : string;  (** repo-relative path, for site lookups and reports *)
  in_lib : bool;
  random_exempt : bool;
  mutable binding : string;  (** enclosing top-level binding name *)
  mutable hits : violation list;
}

let rel_of_path path =
  (* Strip any leading ./ and ../ so "lib/..." classification works when
     the checker runs from a build sandbox. *)
  let parts = String.split_on_char '/' path in
  let rec strip = function
    | ("." | "..") :: rest -> strip rest
    | parts -> parts
  in
  String.concat "/" (strip parts)

let first_segment rel =
  match String.index_opt rel '/' with
  | None -> rel
  | Some i -> String.sub rel 0 i

let prefixed ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let make_ctx rel =
  {
    rel;
    in_lib = String.equal (first_segment rel) "lib";
    random_exempt =
      (* The seeded PRNG itself, and the fault plane that owns its own
         deterministic streams, are the two sanctioned homes for
         randomness plumbing. *)
      String.equal rel "lib/sim/prng.ml" || prefixed ~prefix:"lib/faults/" rel;
    binding = "<toplevel>";
    hits = [];
  }

let report ctx (loc : Location.t) rule message =
  let p = loc.loc_start in
  ctx.hits <-
    {
      file = ctx.rel;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      rule = Rules.name rule;
      message;
    }
    :: ctx.hits

let stdout_printers =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "print_float"; "print_bytes";
  ]

let check_ident ctx loc parts =
  (match parts with
  | "Random" :: _ :: _ when not ctx.random_exempt ->
      report ctx loc Rules.Bare_random
        (Printf.sprintf "%s draws from ambient global state; use a seeded Sim.Prng stream"
           (String.concat "." parts))
  | _ -> ());
  (match parts with
  | [ "Unix"; "gettimeofday" ] | [ "Sys"; "time" ] ->
      if ctx.in_lib then
        report ctx loc Rules.Wallclock
          (Printf.sprintf "%s reads the host clock; simulated code must use Sim.Engine.now"
             (String.concat "." parts))
  | _ -> ());
  (match parts with
  | [ "Hashtbl"; ("iter" | "fold") ] ->
      if ctx.in_lib then
        report ctx loc Rules.Hashtbl_order
          (Printf.sprintf
             "%s visits buckets in insertion-history order; use the sorted Det.%s wrapper"
             (String.concat "." parts)
             (List.nth parts 1))
  | _ -> ());
  (match parts with
  | [ ("==" | "!=") ] ->
      if ctx.in_lib then
        report ctx loc Rules.Physical_eq
          (Printf.sprintf
             "(%s) is physical identity; use structural (=) or justify with an allow comment"
             (List.hd parts))
  | _ -> ());
  (match parts with
  | [ p ] when ctx.in_lib && List.mem p stdout_printers ->
      report ctx loc Rules.Stdout_print
        (Printf.sprintf "%s writes to stdout from library code; emit through Obs instead" p)
  | [ "Printf"; "printf" ] | [ "Format"; "printf" ] ->
      if ctx.in_lib then
        report ctx loc Rules.Stdout_print
          (Printf.sprintf "%s writes to stdout from library code; emit through Obs instead"
             (String.concat "." parts))
  | _ -> ());
  match List.rev parts with
  | op :: "Frame" :: _ -> (
      match Sites.op_of_name op with
      | Some o when not (Sites.allowed ~file:ctx.rel ~binding:ctx.binding o) ->
          report ctx loc Rules.Frame_site
            (Printf.sprintf
               "Frame.%s in %S is not in the audited site list (Lint.Sites); check its \
                pairing and add it there"
               op ctx.binding)
      | _ -> ())
  | _ -> ()

let iterator ctx =
  let open Ast_iterator in
  let expr sub (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ctx loc (Longident.flatten txt)
    | _ -> ());
    default_iterator.expr sub e
  in
  let structure_item sub (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let saved = ctx.binding in
            (match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> ctx.binding <- txt
            | _ -> ());
            sub.value_binding sub vb;
            ctx.binding <- saved)
          bindings
    | _ -> default_iterator.structure_item sub item
  in
  { default_iterator with expr; structure_item }

(* {1 Shared sources}

   Reading, comment-lexing and parsing one file is the bulk of a lint
   pass's wall time, and every pass needs the identical products — so
   they are loaded once into a [source] and shared ([seusslint --pass
   all] parses the tree exactly once for all three passes). *)

type source = {
  src_path : string;
  src_rel : string;
  src_text : string;
  src_comments : (string * Location.t) list;
  src_ast : (Parsetree.structure, exn) result;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let gather_comments src path =
  Lexer.init ();
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  (try
     let rec drain () =
       match Lexer.token lexbuf with Parser.EOF -> () | _ -> drain ()
     in
     drain ()
   with _ -> ());
  Lexer.comments ()

let load_source ?rel path =
  let rel = match rel with Some r -> r | None -> rel_of_path path in
  let text = read_file path in
  let comments = gather_comments text path in
  let ast =
    match
      Lexer.init ();
      let lexbuf = Lexing.from_string text in
      Location.init lexbuf path;
      Parse.implementation lexbuf
    with
    | ast -> Ok ast
    | exception exn -> Error exn
  in
  {
    src_path = path;
    src_rel = rel;
    src_text = text;
    src_comments = comments;
    src_ast = ast;
  }

(* {1 Per-file driver} *)

let check_source source =
  let rel = source.src_rel in
  let ctx = make_ctx rel in
  let meta = ref [] in
  let allows = ref [] in
  List.iter
    (fun (text, (loc : Location.t)) ->
      match parse_allow_text text with
      | None -> ()
      | Some `Malformed ->
          meta :=
            {
              file = rel;
              line = loc.loc_start.Lexing.pos_lnum;
              col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol;
              rule = Rules.bad_allow;
              message = "malformed seusslint comment; expected: seusslint: allow <rule> — <reason>";
            }
            :: !meta
      | Some (`Allow (rule_id, reason)) -> (
          let line = loc.loc_start.Lexing.pos_lnum in
          let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
          match Rules.of_name rule_id with
          | Some r when not (List.mem r Rules.syntactic) ->
              let hint =
                if List.mem r Rules.heat then
                  "the heat pass; suppress it with a seussheat: cold marker"
                else if List.mem r Rules.own then
                  "the own pass; suppress it with a seussown: transfer marker"
                else "the deadlock pass; suppress it with a seussdead: allow comment"
              in
              meta :=
                {
                  file = rel;
                  line;
                  col;
                  rule = Rules.bad_allow;
                  message = Printf.sprintf "rule %s belongs to %s" rule_id hint;
                }
                :: !meta
          | None ->
              meta :=
                {
                  file = rel;
                  line;
                  col;
                  rule = Rules.bad_allow;
                  message = Printf.sprintf "unknown rule %S in allow comment" rule_id;
                }
                :: !meta
          | Some _ when String.length reason = 0 ->
              meta :=
                {
                  file = rel;
                  line;
                  col;
                  rule = Rules.bad_allow;
                  message =
                    Printf.sprintf "allow %s needs a reason: seusslint: allow %s — <why>"
                      rule_id rule_id;
                }
                :: !meta
          | Some r ->
              allows :=
                {
                  a_rule = r;
                  a_first = line;
                  a_last = loc.loc_end.Lexing.pos_lnum + 1;
                  a_line = line;
                  a_used = false;
                }
                :: !allows))
    source.src_comments;
  (match source.src_ast with
  | Ok ast ->
      let it = iterator ctx in
      it.structure it ast
  | Error exn ->
      meta :=
        {
          file = rel;
          line = 1;
          col = 0;
          rule = Rules.parse_error;
          message = Printexc.to_string exn;
        }
        :: !meta);
  let surviving =
    List.filter
      (fun v ->
        let suppressed =
          List.exists
            (fun a ->
              if
                Rules.name a.a_rule = v.rule
                && v.line >= a.a_first && v.line <= a.a_last
              then begin
                a.a_used <- true;
                true
              end
              else false)
            !allows
        in
        not suppressed)
      ctx.hits
  in
  let dead =
    List.filter_map
      (fun a ->
        if a.a_used then None
        else
          Some
            {
              file = rel;
              line = a.a_line;
              col = 0;
              rule = Rules.unused_allow;
              message =
                Printf.sprintf "allowance for %s suppresses nothing; delete it"
                  (Rules.name a.a_rule);
            })
      !allows
  in
  List.sort compare_violation (surviving @ dead @ !meta)

let check_file ?rel path = check_source (load_source ?rel path)

(* {1 Tree driver} *)

let rec source_files dir =
  match Sys.readdir dir with
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then
            if String.equal entry "_build" || prefixed ~prefix:"." entry then acc
            else acc @ source_files path
          else if Filename.check_suffix entry ".ml" then acc @ [ path ]
          else acc)
        [] entries
  | exception Sys_error _ -> []

(* Drop a leading [prefix] (itself normalized of ./ and ../) from [rel],
   so a fixture tree like test/lint_fixtures/lib/... classifies as
   lib/... — lets the lib-only rules fire on known-bad fixtures. *)
let strip_rel_prefix ~prefix rel =
  let prefix = rel_of_path prefix in
  let prefix =
    if prefix <> "" && prefix.[String.length prefix - 1] <> '/' then prefix ^ "/"
    else prefix
  in
  if prefix <> "" && prefixed ~prefix rel then
    String.sub rel (String.length prefix) (String.length rel - String.length prefix)
  else rel

let load_tree ?strip_prefix roots =
  let rel_of path =
    let rel = rel_of_path path in
    match strip_prefix with
    | None -> rel
    | Some prefix -> strip_rel_prefix ~prefix rel
  in
  List.concat_map
    (fun root ->
      List.map (fun f -> load_source ~rel:(rel_of f) f) (source_files root))
    roots

let check_sources sources =
  List.sort compare_violation (List.concat_map check_source sources)

let check_tree ?strip_prefix roots = check_sources (load_tree ?strip_prefix roots)
