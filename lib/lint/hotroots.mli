(** The registered hot roots seeding {!Heat}'s reachability worklist.

    A root is a (repo-relative file, top-level binding) pair naming code
    executed O(events) or O(samples) per run — the engine dispatch loop
    and queue operations, the observability emit path, metric updates
    and trace-context forks. Everything transitively referenced from a
    root is analyzed under the allocation rules ({!Rules.heat}).

    The registry is curated by hand; fixtures and out-of-tree code seed
    extra roots with [(* seussheat: hot — <reason> *)] markers instead
    of editing this list. *)

type root = {
  hr_file : string;  (** repo-relative defining file *)
  hr_binding : string;  (** top-level binding name *)
  hr_why : string;  (** why this path is O(events) *)
}

val registry : root list

val mem : file:string -> binding:string -> bool

val why : file:string -> binding:string -> string option
