(* The audited atomic-context list for the seussdead pass.

   An "atomic context" is code the engine runs outside any effect
   handler: heap comparators fire inside Heap.push/pop during event
   dispatch, fault hooks fire under a page-table update, reporter
   callbacks fire during quiescence analysis, and crash handlers fire
   while the process handler is unwinding. Performing Sleep/Suspend
   there is an unhandled effect — the simulation aborts — so no
   may-block call may be reachable from one.

   Two ways a context enters the analysis:

   - [registrars]: functions whose callback argument becomes atomic. The
     deadlock pass treats the callback expression at every call site of
     a registrar (matched by its last two path components) as an atomic
     region: a function literal is analyzed in place, a function name is
     analyzed through its interprocedural summary.

   - [atomic]: audited (file, top-level binding) pairs naming functions
     that are installed as atomic callbacks far from their definition.
     Like Sites.audited, the list is the reviewable inventory; fixtures
     and new code can alternatively mark a binding with
     (* seussdead: atomic <reason> *) on its definition. *)

(* Which argument of a registrar is the atomic callback. *)
type callback_arg =
  | Label of string  (** the (possibly optional) labelled argument *)
  | Positional of int  (** 0-based index among unlabelled arguments *)

(* (last two components of the registrar's path, callback argument,
   human description for reports) *)
let registrars : (string * callback_arg * string) list =
  [
    ("Heap.create", Label "cmp", "heap comparator");
    ("Addr_space.set_fault_hook", Positional 1, "memory fault hook");
    ("Hb.add_reporter", Positional 1, "race reporter");
    ("Engine.add_deadlock_reporter", Positional 1, "deadlock reporter");
    ("Engine.spawn_supervised", Label "on_crash", "crash handler");
    ("Log.create", Label "clock", "log clock callback");
  ]

let registrar_of ~suffix =
  List.find_opt (fun (s, _, _) -> String.equal s suffix) registrars

(* (repo-relative file, top-level binding) of audited atomic roots.
   Empty today: every shipped atomic context is a literal or named
   argument at a registrar call site, which the pass finds by itself. *)
let atomic : (string * string) list = []

let is_atomic ~file ~binding =
  List.exists
    (fun (f, b) -> String.equal f file && String.equal b binding)
    atomic
