(* seussheat — the hot-path allocation/boxing pass.

   Where {!Check} decides rules per file and {!Deadlock} asks "can this
   block?", this pass asks "does the per-event path allocate?". It
   builds the same conservative call graph (one node per top-level
   binding, suffix-2 resolution via {!Resolve}, referencing a function
   counts as calling it), seeds a worklist with the registered hot
   roots ({!Hotroots.registry} — the engine dispatch loop and queue
   ops, the observability emit path, metric updates, trace forks) plus
   any binding marked (* seussheat: hot — <reason> *), and marks
   everything reachable as hot. Inside hot bindings it flags the
   allocation classes that dominate the engine's words-per-event
   budget:

   - heat-closure: fun/function outside the binding's own leading
     parameter chain — a closure allocated per execution;
   - heat-alloc: tuple/record/array/ref/lazy construction,
     argument-carrying constructors and variants, and calls to
     known-allocating stdlib functions (List.map, Array.append,
     Hashtbl.create, boxed Int64 arithmetic, ...);
   - heat-string: string building — ^, String.concat/make/sub,
     Printf/Format, string_of_*;
   - heat-float-box: a float-arithmetic result stored into a record
     field, which boxes two words unless the record is all-float;
   - heat-poly-cmp: compare/min/max/Hashtbl.hash, and =/<> against a
     structured operand — representation-walking C calls;
   - heat-partial-apply: applying a tree-defined function to fewer
     positional arguments than its definition takes — a closure per
     call. Skipped when the callee's arity is unclear (labels,
     non-fun bodies) or its name resolves ambiguously.

   Each violation carries the root-to-function chain that makes the
   site hot, so the report reads as a proof obligation: break the chain
   or fix the site.

   Suppression is the pass's own marker with two verbs:

   - (* seussheat: cold — <reason> *) covering a top-level binding's
     [let] line prunes the binding from the hot set entirely (its body
     and callees stay unanalyzed); covering any other line silences
     every site inside expressions that *start* on a covered line,
     whole-subtree, so one marker above a multi-line record silences
     the record and its fields.
   - (* seussheat: hot — <reason> *) covering a [let] line registers an
     extra hot root, which is how fixtures and out-of-tree code seed
     the analysis without editing {!Hotroots}.

   A cold marker that covers no binding and silences nothing is
   reported by the same unused-allow meta-rule as the other passes;
   malformed markers are bad-allow; resolution through a suffix-2 key
   defined in two files is surfaced as ambiguous-resolve at each hot
   reference. *)

let marker = "seussheat:"

(* {1 Rule tables} *)

(* Known-allocating stdlib calls, by resolution suffix. Boxed Int64
   arithmetic is here too: every operation returns a fresh box. *)
let alloc_fns =
  [
    "ref"; "Array.make"; "Array.init"; "Array.copy"; "Array.append";
    "Array.sub"; "Array.concat"; "Array.of_list"; "Array.to_list";
    "Array.of_seq"; "Array.map"; "Array.mapi"; "Bytes.create"; "Bytes.make";
    "Bytes.copy"; "Bytes.sub"; "Buffer.create"; "Buffer.contents";
    "List.map"; "List.mapi"; "List.rev_map"; "List.filter";
    "List.filter_map"; "List.rev"; "List.append"; "List.concat";
    "List.concat_map"; "List.flatten"; "List.init"; "List.sort";
    "List.sort_uniq"; "List.stable_sort"; "List.fast_sort"; "List.split";
    "List.combine"; "List.of_seq"; "Hashtbl.create"; "Hashtbl.copy";
    "Queue.create"; "Stack.create"; "@"; "Int64.add"; "Int64.sub";
    "Int64.mul"; "Int64.div"; "Int64.rem"; "Int64.neg"; "Int64.logand";
    "Int64.logor"; "Int64.logxor"; "Int64.lognot"; "Int64.shift_left";
    "Int64.shift_right"; "Int64.shift_right_logical"; "Int64.of_int";
    "Int64.of_float";
  ]

let string_fns =
  [
    "^"; "String.concat"; "String.make"; "String.sub"; "String.init";
    "String.map"; "String.cat"; "String.trim"; "String.escaped";
    "String.uppercase_ascii"; "String.lowercase_ascii"; "string_of_int";
    "string_of_float"; "string_of_bool"; "Int.to_string"; "Float.to_string";
    "Bool.to_string"; "Int64.to_string"; "Printf.sprintf"; "Printf.printf";
    "Printf.eprintf"; "Printf.fprintf"; "Printf.ksprintf"; "Printf.bprintf";
    "Format.sprintf"; "Format.printf"; "Format.eprintf"; "Format.fprintf";
    "Format.asprintf";
  ]

(* Guaranteed-polymorphic comparison entry points. (=)/(<>) are handled
   separately: they are flagged only against structured operands, since
   int/char comparisons specialize. *)
let poly_fns = [ "compare"; "Stdlib.compare"; "min"; "max"; "Hashtbl.hash" ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

(* {1 Scan products} *)

type site = {
  st_rule : Rules.id;
  st_line : int;
  st_col : int;
  st_what : string;
}

type call = {
  cl_path : string list;
  cl_line : int;
  cl_col : int;
  cl_npos : int;  (* positional arguments supplied *)
  cl_labeled : bool;  (* any labeled/optional argument present *)
}

type directive = {
  d_first : int;
  d_last : int;
  d_line : int;
  mutable d_used : bool;
}

type fn = {
  mutable fn_id : int;
  fn_key : string;  (* "Module.binding" *)
  fn_module : string;
  fn_file : string;
  fn_line : int;
  mutable fn_arity : int option;
      (* leading all-positional parameter count; None when labels or a
         non-fun body make the syntactic arity unreliable *)
  mutable fn_is_fun : bool;
      (* the binding has a leading fun/function chain. A plain value
         binding's body runs once at module init, so hotness does not
         propagate into it: referencing a value is not calling it. *)
  mutable fn_params : string list;
      (* names bound by the leading parameter chain — unqualified
         references to them are the parameters, never the same-named
         top-level bindings (let inc counter = ... counter.c <- ...) *)
  mutable fn_refs : (string list * int) list;
  mutable fn_sites : site list;
  mutable fn_cold_sites : (site * directive) list;
  mutable fn_calls : call list;
  mutable fn_cold : bool;  (* a cold marker covers the definition line *)
  mutable fn_hot_marked : bool;  (* a hot marker covers the definition line *)
}

type file_scan = {
  fs_rel : string;
  mutable fs_fns : fn list;
  mutable fs_colds : directive list;
  mutable fs_hots : directive list;
  mutable fs_meta : Check.violation list;
}

let mk file line col rule message =
  { Check.file; line; col; rule = Rules.name rule; message }

let mk_meta file line col rule message = { Check.file; line; col; rule; message }

(* {1 The per-file walk} *)

type tstate = {
  s_rel : string;
  s_module : string;
  mutable s_fns : fn list;  (* reverse order *)
  mutable s_cur : fn;
  s_colds : directive list;
  mutable s_supp : directive option;  (* innermost covering cold marker *)
}

let module_of rel =
  String.capitalize_ascii Filename.(remove_extension (basename rel))

let new_fn st name line =
  let f =
    {
      fn_id = -1;
      fn_key = st.s_module ^ "." ^ name;
      fn_module = st.s_module;
      fn_file = st.s_rel;
      fn_line = line;
      fn_arity = None;
      fn_is_fun = false;
      fn_params = [];
      fn_refs = [];
      fn_sites = [];
      fn_cold_sites = [];
      fn_calls = [];
      fn_cold = false;
      fn_hot_marked = false;
    }
  in
  st.s_fns <- f :: st.s_fns;
  f

let shadowed st path =
  match path with
  | [ x ] -> List.mem x st.s_cur.fn_params
  | _ -> false

let record_ref st path line = st.s_cur.fn_refs <- (path, line) :: st.s_cur.fn_refs

let rec pat_vars acc (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (q, { txt; _ }) -> pat_vars (txt :: acc) q
  | Ppat_tuple ps -> List.fold_left pat_vars acc ps
  | Ppat_construct (_, Some (_, q)) -> pat_vars acc q
  | Ppat_variant (_, Some q) -> pat_vars acc q
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, q) -> pat_vars acc q) acc fields
  | Ppat_array ps -> List.fold_left pat_vars acc ps
  | Ppat_or (a, b) -> pat_vars (pat_vars acc a) b
  | Ppat_constraint (q, _) -> pat_vars acc q
  | Ppat_open (_, q) -> pat_vars acc q
  | _ -> acc

let record_site st rule (loc : Location.t) what =
  let line = loc.loc_start.Lexing.pos_lnum in
  let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
  let s = { st_rule = rule; st_line = line; st_col = col; st_what = what } in
  match st.s_supp with
  | Some d -> st.s_cur.fn_cold_sites <- (s, d) :: st.s_cur.fn_cold_sites
  | None -> st.s_cur.fn_sites <- s :: st.s_cur.fn_sites

let covering_cold st line =
  List.find_opt (fun d -> line >= d.d_first && line <= d.d_last) st.s_colds

(* Structural glue through which a cold marker must not leak: a marker
   above [let x = ... in body] is meant for the definition, not for
   everything sequenced after it. *)
let is_glue (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_let _ | Pexp_sequence _ | Pexp_ifthenelse _ | Pexp_match _
  | Pexp_try _ | Pexp_open _ | Pexp_letmodule _ | Pexp_letexception _ ->
      true
  | _ -> false

let last_of path = match List.rev path with [] -> "" | x :: _ -> x

(* An operand whose =/<> comparison cannot have specialized away the
   representation walk: structured literals and payload carriers. *)
let structured_operand (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct (_, Some _) | Pexp_variant (_, Some _) -> true
  | Pexp_constant (Pconst_string _ | Pconst_float _) -> true
  | _ -> false

let float_op_apply (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Longident.flatten txt with
      | [ op ] -> List.mem op float_ops
      | _ -> false)
  | _ -> false

let positional args =
  List.filter_map (function Asttypes.Nolabel, e -> Some e | _ -> None) args

let iterator st =
  let open Ast_iterator in
  (* Classify an application by its head's resolution suffix. *)
  let apply_site sfx loc args =
    if List.mem sfx string_fns then
      record_site st Rules.Heat_string loc
        (Printf.sprintf "%s builds a string" sfx)
    else if List.mem sfx alloc_fns then
      record_site st Rules.Heat_alloc loc (Printf.sprintf "%s allocates" sfx)
    else if List.mem sfx poly_fns then
      record_site st Rules.Heat_poly_cmp loc
        (Printf.sprintf "polymorphic %s walks the representation" sfx)
    else if String.equal sfx "=" || String.equal sfx "<>" then (
      match positional args with
      | [ a; b ] when structured_operand a || structured_operand b ->
          record_site st Rules.Heat_poly_cmp loc
            (Printf.sprintf
               "polymorphic (%s) against a structured operand walks the \
                representation"
               sfx)
      | _ -> ())
  in
  let expr sub (e : Parsetree.expression) =
    let entered =
      if Option.is_some st.s_supp || is_glue e then None
      else covering_cold st e.pexp_loc.loc_start.Lexing.pos_lnum
    in
    (match entered with Some d -> st.s_supp <- Some d | None -> ());
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let path = Longident.flatten txt in
        if not (shadowed st path) then begin
          record_ref st path loc.loc_start.Lexing.pos_lnum;
          let sfx = Resolve.suffix2 path in
          if List.mem sfx poly_fns then
            record_site st Rules.Heat_poly_cmp loc
              (Printf.sprintf "polymorphic %s walks the representation" sfx)
        end
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        let path = Longident.flatten txt in
        let line = loc.loc_start.Lexing.pos_lnum in
        let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
        if not (shadowed st path) then begin
          record_ref st path line;
          apply_site (Resolve.suffix2 path) loc args;
          st.s_cur.fn_calls <-
            {
              cl_path = path;
              cl_line = line;
              cl_col = col;
              cl_npos = List.length (positional args);
              cl_labeled =
                List.exists
                  (function Asttypes.Nolabel, _ -> false | _ -> true)
                  args;
            }
            :: st.s_cur.fn_calls
        end;
        List.iter (fun (_, a) -> sub.expr sub a) args
    | Pexp_fun _ | Pexp_function _ ->
        record_site st Rules.Heat_closure e.pexp_loc
          "a closure is allocated here";
        default_iterator.expr sub e
    | Pexp_tuple _ ->
        record_site st Rules.Heat_alloc e.pexp_loc "a tuple is allocated here";
        default_iterator.expr sub e
    | Pexp_record _ ->
        record_site st Rules.Heat_alloc e.pexp_loc "a record is allocated here";
        default_iterator.expr sub e
    | Pexp_array _ ->
        record_site st Rules.Heat_alloc e.pexp_loc "an array is allocated here";
        default_iterator.expr sub e
    | Pexp_lazy _ ->
        record_site st Rules.Heat_alloc e.pexp_loc
          "a lazy block is allocated here";
        default_iterator.expr sub e
    | Pexp_construct ({ txt; _ }, Some _) ->
        record_site st Rules.Heat_alloc e.pexp_loc
          (Printf.sprintf "constructor %s carries a payload block"
             (last_of (Longident.flatten txt)));
        default_iterator.expr sub e
    | Pexp_variant (_, Some _) ->
        record_site st Rules.Heat_alloc e.pexp_loc
          "a polymorphic variant payload is allocated here";
        default_iterator.expr sub e
    | Pexp_setfield (_, _, rhs) when float_op_apply rhs ->
        record_site st Rules.Heat_float_box e.pexp_loc
          "a float-arithmetic result is stored into a record field (boxes \
           unless the record is all-float)";
        default_iterator.expr sub e
    | _ -> default_iterator.expr sub e);
    match entered with Some _ -> st.s_supp <- None | None -> ()
  in
  let structure_item sub (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        let toplevel = st.s_cur in
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let name =
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> txt
              | _ -> "<toplevel>"
            in
            st.s_cur <-
              new_fn st name vb.pvb_loc.Location.loc_start.Lexing.pos_lnum;
            (* Peel the binding's own parameter chain: those funs are
               the definition, not per-call closures. *)
            let rec peel n labeled (e : Parsetree.expression) =
              match e.pexp_desc with
              | Pexp_fun (lbl, default, pat, body) ->
                  Option.iter (sub.expr sub) default;
                  sub.pat sub pat;
                  st.s_cur.fn_params <-
                    pat_vars st.s_cur.fn_params pat;
                  let labeled =
                    labeled
                    || match lbl with Asttypes.Nolabel -> false | _ -> true
                  in
                  peel (n + 1) labeled body
              | Pexp_function cases ->
                  st.s_cur.fn_is_fun <- true;
                  if not labeled then st.s_cur.fn_arity <- Some (n + 1);
                  List.iter (sub.case sub) cases
              | _ ->
                  if n > 0 then begin
                    st.s_cur.fn_is_fun <- true;
                    if not labeled then st.s_cur.fn_arity <- Some n
                  end;
                  sub.expr sub e
            in
            peel 0 false vb.pvb_expr;
            st.s_cur <- toplevel)
          bindings
    | _ -> default_iterator.structure_item sub item
  in
  { default_iterator with expr; structure_item }

(* {1 Directives} *)

let strip_dash s =
  let s = String.trim s in
  let drop n = String.trim (String.sub s n (String.length s - n)) in
  if String.length s >= 3 && String.equal (String.sub s 0 3) "\xe2\x80\x94"
  then drop 3
  else if String.length s >= 2 && String.equal (String.sub s 0 2) "--" then
    drop 2
  else if String.length s >= 1 && s.[0] = '-' then drop 1
  else ""

let scan_directives fs comments =
  let colds = ref [] and hots = ref [] in
  List.iter
    (fun (text, (loc : Location.t)) ->
      let line = loc.loc_start.Lexing.pos_lnum in
      let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
      let first = line and last = loc.loc_end.Lexing.pos_lnum + 1 in
      match Check.parse_directive ~marker text with
      | None -> ()
      | Some (("cold" | "hot") as verb, payload)
        when not (String.equal (strip_dash payload) "") ->
          let d = { d_first = first; d_last = last; d_line = line; d_used = false } in
          if String.equal verb "cold" then colds := d :: !colds
          else hots := d :: !hots
      | Some (("cold" | "hot") as verb, _) ->
          fs.fs_meta <-
            mk_meta fs.fs_rel line col Rules.bad_allow
              (Printf.sprintf
                 "%s marker needs a reason: seussheat: %s — <why>" verb verb)
            :: fs.fs_meta
      | Some _ ->
          fs.fs_meta <-
            mk_meta fs.fs_rel line col Rules.bad_allow
              "malformed seussheat comment; expected: cold — <reason> or hot \
               — <reason>"
            :: fs.fs_meta)
    comments;
  (List.rev !colds, List.rev !hots)

let binding_of_key key =
  match String.index_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

(* {1 Per-file scan} *)

let scan_source (source : Check.source) =
  let rel = source.Check.src_rel in
  let fs =
    { fs_rel = rel; fs_fns = []; fs_colds = []; fs_hots = []; fs_meta = [] }
  in
  let colds, hots = scan_directives fs source.Check.src_comments in
  fs.fs_colds <- colds;
  fs.fs_hots <- hots;
  let modname = module_of rel in
  let st =
    {
      s_rel = rel;
      s_module = modname;
      s_fns = [];
      s_cur =
        {
          fn_id = -1;
          fn_key = modname ^ ".<toplevel>";
          fn_module = modname;
          fn_file = rel;
          fn_line = 1;
          fn_arity = None;
          fn_is_fun = false;
          fn_params = [];
          fn_refs = [];
          fn_sites = [];
          fn_cold_sites = [];
          fn_calls = [];
          fn_cold = false;
          fn_hot_marked = false;
        };
      s_colds = colds;
      s_supp = None;
    }
  in
  st.s_cur <- new_fn st "<toplevel>" 1;
  (match source.Check.src_ast with
  | Ok ast ->
      let it = iterator st in
      it.structure it ast
  | Error exn ->
      fs.fs_meta <-
        mk_meta rel 1 0 Rules.parse_error (Printexc.to_string exn)
        :: fs.fs_meta);
  fs.fs_fns <- List.rev st.s_fns;
  (* A cold/hot marker covering a binding's [let] line classifies the
     whole binding; covering a def line is what makes the marker used
     (range markers are used only if they silence a hot site). *)
  List.iter
    (fun f ->
      if not (String.equal (binding_of_key f.fn_key) "<toplevel>") then begin
        List.iter
          (fun d ->
            if f.fn_line >= d.d_first && f.fn_line <= d.d_last then begin
              f.fn_cold <- true;
              d.d_used <- true
            end)
          colds;
        List.iter
          (fun d ->
            if f.fn_line >= d.d_first && f.fn_line <= d.d_last then begin
              f.fn_hot_marked <- true;
              d.d_used <- true
            end)
          hots
      end)
    fs.fs_fns;
  fs

(* {1 Hot-set propagation} *)

type linked = {
  fns : fn array;
  defs : fn Resolve.t;
  hot : bool array;
  parent : int array;  (* hot-chain predecessor, -1 at a root *)
}

let link scans =
  let all_fns = List.concat_map (fun fs -> fs.fs_fns) scans in
  let fns = Array.of_list all_fns in
  Array.iteri (fun i f -> f.fn_id <- i) fns;
  let n = Array.length fns in
  let defs = Resolve.create () in
  Array.iter
    (fun f ->
      if not (String.equal (binding_of_key f.fn_key) "<toplevel>") then
        Resolve.add defs ~key:f.fn_key ~file:f.fn_file f)
    fns;
  let lk =
    {
      fns;
      defs;
      hot = Array.make (max n 1) false;
      parent = Array.make (max n 1) (-1);
    }
  in
  let queue = Queue.create () in
  Array.iter
    (fun f ->
      let binding = binding_of_key f.fn_key in
      if
        (not f.fn_cold)
        && (not (String.equal binding "<toplevel>"))
        && (f.fn_hot_marked || Hotroots.mem ~file:f.fn_file ~binding)
      then begin
        lk.hot.(f.fn_id) <- true;
        Queue.add f queue
      end)
    fns;
  let rec drain () =
    match Queue.take_opt queue with
    | None -> ()
    | Some f ->
        List.iter
          (fun (path, _) ->
            List.iter
              (fun g ->
                (* Values are not calls: only a binding with its own
                   parameter chain re-executes its body per reference. *)
                if g.fn_is_fun && (not lk.hot.(g.fn_id)) && not g.fn_cold
                then begin
                  lk.hot.(g.fn_id) <- true;
                  lk.parent.(g.fn_id) <- f.fn_id;
                  Queue.add g queue
                end)
              (Resolve.find defs ~modname:f.fn_module path))
          f.fn_refs;
        drain ()
  in
  drain ();
  lk

let chain_of lk f =
  let rec up acc id =
    if id < 0 then acc
    else up (lk.fns.(id).fn_key :: acc) lk.parent.(id)
  in
  String.concat " -> " (up [] f.fn_id)

(* {1 The tree driver} *)

let check_sources sources =
  let scans = List.map scan_source sources in
  let lk = link scans in
  let hits = ref [] in
  let ambiguity = ref [] in
  Array.iter
    (fun f ->
      if lk.hot.(f.fn_id) then begin
        let chain = chain_of lk f in
        List.iter
          (fun s ->
            hits :=
              mk f.fn_file s.st_line s.st_col s.st_rule
                (Printf.sprintf
                   "%s on a hot path (%s); restructure it or justify with (* \
                    seussheat: cold — <why> *)"
                   s.st_what chain)
              :: !hits)
          f.fn_sites;
        (* Silenced sites in a hot binding are what make a range marker
           earn its keep. *)
        List.iter (fun (_, d) -> d.d_used <- true) f.fn_cold_sites;
        (* Partial applications, where the callee's syntactic arity is
           known and unambiguous. *)
        List.iter
          (fun c ->
            if (not c.cl_labeled) && c.cl_npos >= 1 then
              if Resolve.ambiguous lk.defs ~modname:f.fn_module c.cl_path then
                ()  (* surfaced below, at the reference *)
              else
                match Resolve.find lk.defs ~modname:f.fn_module c.cl_path with
                | [] -> ()
                | defs -> (
                    match
                      List.map (fun (g : fn) -> g.fn_arity) defs
                    with
                    | Some a :: rest
                      when List.for_all (fun x -> x = Some a) rest
                           && c.cl_npos < a ->
                        hits :=
                          mk f.fn_file c.cl_line c.cl_col Rules.Heat_partial
                            (Printf.sprintf
                               "partial application of %s (%d of %d \
                                arguments) allocates a closure on a hot path \
                                (%s); apply it fully or eta-expand"
                               (Resolve.suffix2 c.cl_path) c.cl_npos a chain)
                          :: !hits
                    | _ -> ()))
          f.fn_calls;
        (* Ambiguous resolution only matters where the verdict is drawn
           through it: at hot references. *)
        List.iter
          (fun (path, line) ->
            if Resolve.ambiguous lk.defs ~modname:f.fn_module path then
              ambiguity :=
                mk_meta f.fn_file line 0 Rules.ambiguous_resolve
                  (Printf.sprintf
                     "%s resolves to definitions in %s; suffix-2 resolution \
                      conflates these same-named modules — rename one or \
                      avoid the shared suffix"
                     (Resolve.suffix2 path)
                     (String.concat " and "
                        (Resolve.defining_files lk.defs ~modname:f.fn_module
                           path)))
                :: !ambiguity)
          f.fn_refs
      end)
    lk.fns;
  let dead =
    List.concat_map
      (fun fs ->
        List.filter_map
          (fun d ->
            if d.d_used then None
            else
              Some
                (mk_meta fs.fs_rel d.d_line 0 Rules.unused_allow
                   "cold marker covers no binding and silences nothing; \
                    delete it"))
          fs.fs_colds
        @ List.filter_map
            (fun d ->
              if d.d_used then None
              else
                Some
                  (mk_meta fs.fs_rel d.d_line 0 Rules.unused_allow
                     "hot marker covers no top-level binding; delete it"))
            fs.fs_hots)
      scans
  in
  let meta = List.concat_map (fun fs -> fs.fs_meta) scans in
  List.sort Check.compare_violation
    (!hits @ dead @ meta @ List.sort_uniq Check.compare_violation !ambiguity)

let check_tree ?strip_prefix roots =
  check_sources (Check.load_tree ?strip_prefix roots)
