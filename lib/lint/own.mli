(** seussown — the interprocedural ownership/lifecycle typestate pass
    ([seusslint --pass own]).

    Tracks three acquire/release disciplines over the shared parse and
    the conservative suffix-2 call graph: [Frame.alloc]/[Frame.incref]
    -> [Frame.decref], [Snapshot.addref] -> [Snapshot.decref], and
    [Uc.boot]/[Uc.deploy] -> [Uc.destroy] (destroy-at-most-once).
    A flow-insensitive may-release fixpoint catches acquires whose
    callee cone never releases the class ([own-escape], cleared by the
    {!Sites.transfers} registry); a flow-sensitive per-path walk with
    must-semantics branch joins catches [own-exn-leak],
    [own-double-release], [own-use-after-destroy] and [own-unbalanced].
    Suppression: [(* seussown: transfer — <reason> *)], validated by
    the usual bad-allow/unused-allow meta-rules. *)

val marker : string
(** ["seussown:"]. *)

val check_sources : Check.source list -> Check.violation list
(** Run the pass over pre-loaded sources (the shared-parse path used by
    [--pass all]). *)

val check_tree : ?strip_prefix:string -> string list -> Check.violation list
(** Load, parse and check every [.ml] file under the roots. *)
