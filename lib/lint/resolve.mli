(** Suffix-2 name resolution, shared by the interprocedural passes
    ({!Deadlock}, {!Heat}).

    Definitions are keyed ["Module.binding"]; a reference resolves by
    its last two path components, and an unqualified reference resolves
    within its own module. Two files with the same basename merge under
    one key — {!find} returns the whole candidate set so analyses stay
    conservative, and {!ambiguous} exposes the collision so passes can
    warn instead of silently conflating modules. *)

type 'a t

val create : unit -> 'a t

val suffix2 : string list -> string
(** Last one or two components of an identifier path, joined — the
    resolution key of a qualified reference. *)

val key_of : modname:string -> string list -> string option
(** The key a reference resolves under: its suffix-2 when qualified,
    ["modname.x"] when unqualified. [None] on an empty path. *)

val add : 'a t -> key:string -> file:string -> 'a -> unit
(** Register a definition under [key], remembering [file] for
    ambiguity detection. Definition order is preserved per key. *)

val find : 'a t -> modname:string -> string list -> 'a list
(** All definitions a reference may denote ([[]] when unknown —
    stdlib, parameters, compiler-libs). *)

val defining_files : 'a t -> modname:string -> string list -> string list
(** The distinct files defining the reference's key, in first-seen
    order. *)

val ambiguous : 'a t -> modname:string -> string list -> bool
(** Whether the reference's key is defined in two or more distinct
    files. *)
