(** seussheat — the hot-path allocation/boxing pass.

    Builds the same conservative call graph as {!Deadlock} (one node
    per top-level binding, suffix-2 resolution via {!Resolve}), marks
    everything reachable from the registered hot roots
    ({!Hotroots.registry}, plus bindings carrying
    [(* seussheat: hot — <reason> *)]) as hot, and reports the
    allocation classes of {!Rules.heat} at every site inside a hot
    binding: per-call closures, tuple/record/array/constructor/ref
    construction and known-allocating stdlib calls, string building,
    float results boxed into record fields, polymorphic comparison, and
    partial applications of tree-defined functions. Every violation
    carries the root-to-site chain that makes it hot.

    Suppression uses the pass's own marker:
    [(* seussheat: cold — <reason> *)] covering a binding's [let] line
    prunes the binding from the hot set; covering any other line
    silences sites in expressions starting on a covered line,
    whole-subtree. Unjustified, malformed or dead markers are reported
    by the shared bad-allow / unused-allow meta-rules, and hot
    references through a suffix-2 key defined in two files are
    surfaced as ambiguous-resolve. *)

val marker : string
(** ["seussheat:"] — the comment marker of this pass. *)

val check_sources : Check.source list -> Check.violation list
(** Analyze an already-loaded tree ({!Check.load_tree}) as one program
    and return the sorted violations — the shared-parse entry point
    behind [seusslint --pass all]. *)

val check_tree : ?strip_prefix:string -> string list -> Check.violation list
(** [check_sources] over {!Check.load_tree}: analyze every [.ml] under
    the given roots as one program. [strip_prefix] mirrors
    {!Check.check_tree}. *)
