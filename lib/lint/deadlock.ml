(* seussdead — the interprocedural blocking/deadlock pass.

   Where {!Check} decides every rule inside one file, this pass builds a
   call graph over the whole tree first: each top-level binding becomes
   a node keyed "Module.binding" (module = capitalized basename), and
   every identifier a function references is a conservative call edge —
   referencing a function counts as calling it, which keeps higher-order
   code (callbacks handed to registrars, closures stored in records)
   inside the approximation. Name resolution is suffix-based: a
   reference [Sim.Semaphore.acquire] resolves to every definition whose
   key matches its last two components ("Semaphore.acquire"), and an
   unqualified reference resolves within its own module. Ambiguity (two
   modules with one basename) resolves to the whole candidate set; a
   summary holds if it holds for any candidate.

   On that graph two summaries reach a fixpoint per function:

   - may-block: the function can reach a blocking primitive
     (Semaphore.acquire / with_permit, Channel.recv / send, Ivar.read,
     Engine.sleep / yield / suspend, and the *_timeout variants);
   - may-acquire: the set of semaphore lock classes the function can
     reach an acquire of.

   Lock classes are declared at creation sites with
   (* seussdead: lock <class> *); acquire sites are classified by the
   name of the semaphore expression (its last field or variable
   component, e.g. [t.kernel] -> "kernel"), matched against creations in
   the same file first and tree-wide second. An acquire that names no
   class stays out of the lock rules but still seeds may-block.

   Three rules:
   - block-in-handler: no may-block call reachable from an atomic
     context — a callback at one of the audited registrars in
     {!Contexts}, an audited (file, binding) pair, or a binding marked
     (* seussdead: atomic <reason> *).
   - lock-order: the acquired-while-holding graph over lock classes
     (direct acquires plus the may-acquire summary of every function
     referenced while holding) must be acyclic, and every
     Semaphore.create must carry a lock annotation.
   - unreleased-acquire: a bare acquire of a classified lock whose
     enclosing function never releases that class.

   Suppressions use the pass's own marker so they never collide with the
   base pass: (* seussdead: allow <rule> — <reason> *), validated by the
   same bad-allow/unused-allow meta-rules. *)

let marker = "seussdead:"

module SSet = Set.Make (String)

let blocking_primitives =
  [
    "Semaphore.acquire"; "Semaphore.with_permit"; "Channel.recv";
    "Channel.recv_timeout"; "Channel.send"; "Ivar.read"; "Ivar.read_timeout";
    "Engine.sleep"; "Engine.yield"; "Engine.suspend";
  ]

let suffix2 = Resolve.suffix2

let is_seed path = List.mem (suffix2 path) blocking_primitives

(* {1 Scan products} *)

type fn = {
  fn_id : int;
  fn_key : string;  (* "Module.binding" *)
  fn_module : string;
  fn_file : string;
  fn_line : int;
  mutable fn_refs : (string list * int) list;  (* ident path, line *)
  mutable fn_acquires : (string * int) list;
      (* classifiable acquires, bare + with_permit: (hint, line) *)
  mutable fn_bare : (string * int) list;  (* bare acquires only *)
  mutable fn_releases : string list;  (* release hints *)
  mutable fn_atomic : bool;  (* audited or seussdead:-annotated atomic *)
}

type region = {
  rg_desc : string;
  rg_module : string;
  rg_file : string;
  rg_line : int;
  mutable rg_refs : (string list * int) list;
}

type held = {
  h_hint : string;  (* hint of the lock held at this point *)
  h_target : [ `Call of string list | `Acquire of string ];
  h_module : string;
  h_file : string;
  h_line : int;
}

type creation = {
  c_file : string;
  c_line : int;
  c_hint : string;
  mutable c_class : string option;
}

type directive = {
  d_payload : string;
  d_first : int;
  d_last : int;
  d_line : int;
  mutable d_used : bool;
}

type allow = {
  al_rule : Rules.id;
  al_first : int;
  al_last : int;
  al_line : int;
  mutable al_used : bool;
}

type file_scan = {
  fs_rel : string;
  mutable fs_fns : fn list;  (* definition order *)
  mutable fs_regions : region list;
  mutable fs_helds : held list;
  mutable fs_creations : creation list;
  mutable fs_allows : allow list;
  mutable fs_meta : Check.violation list;
}

let mk file line col rule message =
  { Check.file; line; col; rule = Rules.name rule; message }

let mk_meta file line col rule message = { Check.file; line; col; rule; message }

(* {1 The per-file walk} *)

type tstate = {
  s_rel : string;
  s_module : string;
  mutable s_next_id : int;
  mutable s_fns : fn list;  (* reverse order *)
  mutable s_cur : fn;
  mutable s_hint : string;  (* innermost binding/field name *)
  mutable s_holding : string list;  (* hints of locks held here *)
  mutable s_active : region list;  (* atomic regions being walked *)
  mutable s_regions : region list;
  mutable s_helds : held list;
  mutable s_creations : creation list;
}

let module_of rel =
  String.capitalize_ascii Filename.(remove_extension (basename rel))

let new_fn st name line =
  let f =
    {
      fn_id = st.s_next_id;
      fn_key = st.s_module ^ "." ^ name;
      fn_module = st.s_module;
      fn_file = st.s_rel;
      fn_line = line;
      fn_refs = [];
      fn_acquires = [];
      fn_bare = [];
      fn_releases = [];
      fn_atomic = false;
    }
  in
  st.s_next_id <- st.s_next_id + 1;
  st.s_fns <- f :: st.s_fns;
  f

let record_ref st path line =
  st.s_cur.fn_refs <- (path, line) :: st.s_cur.fn_refs;
  List.iter (fun rg -> rg.rg_refs <- (path, line) :: rg.rg_refs) st.s_active;
  List.iter
    (fun h ->
      st.s_helds <-
        {
          h_hint = h;
          h_target = `Call path;
          h_module = st.s_module;
          h_file = st.s_rel;
          h_line = line;
        }
        :: st.s_helds)
    st.s_holding

let record_acquire st hint line ~bare =
  st.s_cur.fn_acquires <- (hint, line) :: st.s_cur.fn_acquires;
  if bare then st.s_cur.fn_bare <- (hint, line) :: st.s_cur.fn_bare;
  List.iter
    (fun h ->
      if not (String.equal h hint) then
        st.s_helds <-
          {
            h_hint = h;
            h_target = `Acquire hint;
            h_module = st.s_module;
            h_file = st.s_rel;
            h_line = line;
          }
          :: st.s_helds)
    st.s_holding

(* Remove one occurrence, program-order approximation of release. *)
let rec remove_one x = function
  | [] -> []
  | y :: rest -> if String.equal x y then rest else y :: remove_one x rest

let hint_of_expr (e : Parsetree.expression) =
  let last_of lid =
    match List.rev (Longident.flatten lid) with [] -> "" | x :: _ -> x
  in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> last_of txt
  | Pexp_field (_, { txt; _ }) -> last_of txt
  | _ -> ""

(* A semaphore operation applied by name: qualified through a
   [Semaphore] path component, or unqualified inside semaphore.ml. *)
let sem_op st path =
  match List.rev path with
  | op :: rest ->
      let qualifies =
        match rest with
        | m :: _ -> String.equal m "Semaphore"
        | [] -> String.equal st.s_module "Semaphore"
      in
      if not qualifies then None
      else (
        match op with
        | "acquire" -> Some `Acquire
        | "with_permit" -> Some `With_permit
        | "release" -> Some `Release
        | "create" -> Some `Create
        | _ -> None)
  | [] -> None

let positional args =
  List.filter_map (function Asttypes.Nolabel, e -> Some e | _ -> None) args

let callback_arg_of spec args =
  match spec with
  | Contexts.Label l ->
      List.find_map
        (function
          | (Asttypes.Labelled l' | Asttypes.Optional l'), e
            when String.equal l l' ->
              Some e
          | _ -> None)
        args
  | Contexts.Positional n -> List.nth_opt (positional args) n

let iterator st =
  let open Ast_iterator in
  let walk_args sub args = List.iter (fun (_, a) -> sub.expr sub a) args in
  let handle_apply sub path loc args =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    record_ref st path line;
    match sem_op st path with
    | Some `Create ->
        st.s_creations <-
          { c_file = st.s_rel; c_line = line; c_hint = st.s_hint;
            c_class = None }
          :: st.s_creations;
        walk_args sub args
    | Some `Acquire ->
        let hint =
          match positional args with e :: _ -> hint_of_expr e | [] -> ""
        in
        record_acquire st hint line ~bare:true;
        if hint <> "" then st.s_holding <- hint :: st.s_holding;
        walk_args sub args
    | Some `Release ->
        let hint =
          match positional args with e :: _ -> hint_of_expr e | [] -> ""
        in
        if hint <> "" then begin
          st.s_cur.fn_releases <- hint :: st.s_cur.fn_releases;
          st.s_holding <- remove_one hint st.s_holding
        end;
        walk_args sub args
    | Some `With_permit -> (
        match positional args with
        | sem :: body :: _ ->
            let hint = hint_of_expr sem in
            record_acquire st hint line ~bare:false;
            if hint <> "" then
              st.s_cur.fn_releases <- hint :: st.s_cur.fn_releases;
            sub.expr sub sem;
            let saved = st.s_holding in
            if hint <> "" then st.s_holding <- hint :: st.s_holding;
            sub.expr sub body;
            st.s_holding <- saved
        | _ -> walk_args sub args)
    | None -> (
        match Contexts.registrar_of ~suffix:(suffix2 path) with
        | Some (sfx, arg_spec, desc) -> (
            match callback_arg_of arg_spec args with
            | None -> walk_args sub args
            | Some cb ->
                let rg =
                  {
                    rg_desc = Printf.sprintf "%s (callback of %s)" desc sfx;
                    rg_module = st.s_module;
                    rg_file = st.s_rel;
                    rg_line = line;
                    rg_refs = [];
                  }
                in
                st.s_regions <- rg :: st.s_regions;
                List.iter
                  (fun ((_, a) : Asttypes.arg_label * Parsetree.expression) ->
                    if a.pexp_loc = cb.Parsetree.pexp_loc then begin
                      st.s_active <- rg :: st.s_active;
                      sub.expr sub a;
                      st.s_active <- List.tl st.s_active
                    end
                    else sub.expr sub a)
                  args)
        | None -> walk_args sub args)
  in
  let expr sub (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        record_ref st (Longident.flatten txt) loc.loc_start.Lexing.pos_lnum
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        handle_apply sub (Longident.flatten txt) loc args
    | Pexp_record (fields, base) ->
        Option.iter (sub.expr sub) base;
        List.iter
          (fun ((lid : Longident.t Location.loc), fe) ->
            let saved = st.s_hint in
            (match List.rev (Longident.flatten lid.txt) with
            | [] -> ()
            | x :: _ -> st.s_hint <- x);
            sub.expr sub fe;
            st.s_hint <- saved)
          fields
    | _ -> default_iterator.expr sub e
  in
  let value_binding sub (vb : Parsetree.value_binding) =
    let saved = st.s_hint in
    (match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> st.s_hint <- txt
    | _ -> ());
    default_iterator.value_binding sub vb;
    st.s_hint <- saved
  in
  let structure_item sub (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        let toplevel = st.s_cur in
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let name =
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> txt
              | _ -> "<toplevel>"
            in
            st.s_cur <-
              new_fn st name vb.pvb_loc.Location.loc_start.Lexing.pos_lnum;
            st.s_holding <- [];
            sub.value_binding sub vb;
            st.s_cur <- toplevel;
            st.s_holding <- [])
          bindings
    | _ -> default_iterator.structure_item sub item
  in
  { default_iterator with expr; value_binding; structure_item }

(* {1 Directives: allow / lock / atomic} *)

let scan_directives fs comments =
  let locks = ref [] in
  let atomics = ref [] in
  List.iter
    (fun (text, (loc : Location.t)) ->
      let line = loc.loc_start.Lexing.pos_lnum in
      let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
      let first = line and last = loc.loc_end.Lexing.pos_lnum + 1 in
      match Check.parse_directive ~marker text with
      | None -> ()
      | Some ("allow", payload) when payload <> "" -> (
          let rule_id, reason = Check.split_allow_payload payload in
          match Rules.of_name rule_id with
          | Some r when List.mem r Rules.deadlock ->
              if String.length reason = 0 then
                fs.fs_meta <-
                  mk_meta fs.fs_rel line col Rules.bad_allow
                    (Printf.sprintf
                       "allow %s needs a reason: seussdead: allow %s — <why>"
                       rule_id rule_id)
                  :: fs.fs_meta
              else
                fs.fs_allows <-
                  { al_rule = r; al_first = first; al_last = last;
                    al_line = line; al_used = false }
                  :: fs.fs_allows
          | Some r ->
              let hint =
                if List.mem r Rules.heat then
                  "the heat pass; suppress it with a seussheat: cold marker"
                else if List.mem r Rules.own then
                  "the own pass; suppress it with a seussown: transfer marker"
                else "the base pass; suppress it with a seusslint: allow comment"
              in
              fs.fs_meta <-
                mk_meta fs.fs_rel line col Rules.bad_allow
                  (Printf.sprintf "rule %s belongs to %s" rule_id hint)
                :: fs.fs_meta
          | None ->
              fs.fs_meta <-
                mk_meta fs.fs_rel line col Rules.bad_allow
                  (Printf.sprintf "unknown rule %S in allow comment" rule_id)
                :: fs.fs_meta)
      | Some ("lock", cls) when cls <> "" && not (String.contains cls ' ') ->
          locks :=
            { d_payload = cls; d_first = first; d_last = last; d_line = line;
              d_used = false }
            :: !locks
      | Some ("atomic", reason) when reason <> "" ->
          atomics :=
            { d_payload = reason; d_first = first; d_last = last;
              d_line = line; d_used = false }
            :: !atomics
      | Some _ ->
          fs.fs_meta <-
            mk_meta fs.fs_rel line col Rules.bad_allow
              "malformed seussdead comment; expected: allow <rule> — \
               <reason>, lock <class>, or atomic <reason>"
            :: fs.fs_meta)
    comments;
  (List.rev !locks, List.rev !atomics)

let binding_of_key key =
  match String.index_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

(* Scan one loaded source: walk its AST into scan products, pair
   creations with lock directives and definitions with atomic
   directives, and report creations that carry no lock class. *)
let scan_source (source : Check.source) =
  let rel = source.Check.src_rel in
  let fs =
    {
      fs_rel = rel;
      fs_fns = [];
      fs_regions = [];
      fs_helds = [];
      fs_creations = [];
      fs_allows = [];
      fs_meta = [];
    }
  in
  let locks, atomics = scan_directives fs source.Check.src_comments in
  let modname = module_of rel in
  let st =
    {
      s_rel = rel;
      s_module = modname;
      s_next_id = 0;
      s_fns = [];
      s_cur =
        {
          fn_id = -1;
          fn_key = modname ^ ".<toplevel>";
          fn_module = modname;
          fn_file = rel;
          fn_line = 1;
          fn_refs = [];
          fn_acquires = [];
          fn_bare = [];
          fn_releases = [];
          fn_atomic = false;
        };
      s_hint = "";
      s_holding = [];
      s_active = [];
      s_regions = [];
      s_helds = [];
      s_creations = [];
    }
  in
  st.s_cur <- new_fn st "<toplevel>" 1;
  (match source.Check.src_ast with
  | Ok ast ->
      let it = iterator st in
      it.structure it ast
  | Error exn ->
      fs.fs_meta <-
        mk_meta rel 1 0 Rules.parse_error (Printexc.to_string exn)
        :: fs.fs_meta);
  fs.fs_fns <- List.rev st.s_fns;
  fs.fs_regions <- List.rev st.s_regions;
  fs.fs_helds <- List.rev st.s_helds;
  fs.fs_creations <- List.rev st.s_creations;
  let hits = ref [] in
  List.iter
    (fun c ->
      match
        List.find_opt
          (fun d -> c.c_line >= d.d_first && c.c_line <= d.d_last)
          locks
      with
      | Some d ->
          d.d_used <- true;
          c.c_class <- Some d.d_payload
      | None ->
          hits :=
            mk rel c.c_line 0 Rules.Lock_order
              "Semaphore.create without a lock class; annotate the create \
               line with (* seussdead: lock <class> *)"
            :: !hits)
    fs.fs_creations;
  List.iter
    (fun fn ->
      if Contexts.is_atomic ~file:rel ~binding:(binding_of_key fn.fn_key) then
        fn.fn_atomic <- true;
      if
        List.exists
          (fun d ->
            let covers = fn.fn_line >= d.d_first && fn.fn_line <= d.d_last in
            if covers then d.d_used <- true;
            covers)
          atomics
      then fn.fn_atomic <- true)
    fs.fs_fns;
  List.iter
    (fun d ->
      if not d.d_used then
        fs.fs_meta <-
          mk_meta rel d.d_line 0 Rules.unused_allow
            "lock annotation names no Semaphore.create; delete it"
          :: fs.fs_meta)
    locks;
  List.iter
    (fun d ->
      if not d.d_used then
        fs.fs_meta <-
          mk_meta rel d.d_line 0 Rules.unused_allow
            "atomic annotation covers no top-level binding; delete it"
          :: fs.fs_meta)
    atomics;
  (fs, !hits)

(* {1 Linking and summaries} *)

type linked = {
  fns : fn array;
  defs : fn Resolve.t;  (* "Module.binding" -> definitions *)
  may_block : bool array;
  may_acquire : SSet.t array;
  perfile_class : (string * string, string) Hashtbl.t;
  global_class : (string, SSet.t) Hashtbl.t;
}

let resolve lk ~modname path = Resolve.find lk.defs ~modname path

let classes_of lk ~file hint =
  if String.equal hint "" then []
  else
    match Hashtbl.find_opt lk.perfile_class (file, hint) with
    | Some c -> [ c ]
    | None -> (
        match Hashtbl.find_opt lk.global_class hint with
        | Some s -> SSet.elements s
        | None -> [])

let link scans =
  let all_fns = List.concat_map (fun fs -> fs.fs_fns) scans in
  (* Re-id globally; the scans' own records keep their per-file ids but
     only [fn_atomic] (already set) is read off them afterwards. *)
  let fns =
    Array.of_list (List.mapi (fun i f -> { f with fn_id = i }) all_fns)
  in
  let n = Array.length fns in
  let defs = Resolve.create () in
  Array.iter
    (fun f ->
      if not (String.equal (binding_of_key f.fn_key) "<toplevel>") then
        Resolve.add defs ~key:f.fn_key ~file:f.fn_file f)
    fns;
  let perfile_class = Hashtbl.create 32 in
  let global_class = Hashtbl.create 32 in
  List.iter
    (fun fs ->
      List.iter
        (fun c ->
          match c.c_class with
          | None -> ()
          | Some cls ->
              if c.c_hint <> "" then begin
                (match Hashtbl.find_opt perfile_class (c.c_file, c.c_hint) with
                | Some existing when not (String.equal existing cls) ->
                    (* Two same-named semaphores with different classes in
                       one file: fall back to the tree-wide set. *)
                    Hashtbl.remove perfile_class (c.c_file, c.c_hint)
                | Some _ -> ()
                | None ->
                    Hashtbl.replace perfile_class (c.c_file, c.c_hint) cls);
                let prev =
                  match Hashtbl.find_opt global_class c.c_hint with
                  | Some s -> s
                  | None -> SSet.empty
                in
                Hashtbl.replace global_class c.c_hint (SSet.add cls prev)
              end)
        fs.fs_creations)
    scans;
  let lk =
    {
      fns;
      defs;
      may_block = Array.make (max n 1) false;
      may_acquire = Array.make (max n 1) SSet.empty;
      perfile_class;
      global_class;
    }
  in
  (* Definitions whose key *is* a blocking primitive are seeds even when
     their bodies bottom out in effects the walk cannot see. *)
  Array.iter
    (fun f ->
      if List.mem f.fn_key blocking_primitives then
        lk.may_block.(f.fn_id) <- true)
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun f ->
        if not lk.may_block.(f.fn_id) then
          let blocks =
            List.exists
              (fun (path, _) ->
                is_seed path
                || List.exists
                     (fun g -> lk.may_block.(g.fn_id))
                     (resolve lk ~modname:f.fn_module path))
              f.fn_refs
          in
          if blocks then begin
            lk.may_block.(f.fn_id) <- true;
            changed := true
          end)
      fns
  done;
  Array.iter
    (fun f ->
      let direct =
        List.fold_left
          (fun acc (hint, _) ->
            List.fold_left
              (fun acc c -> SSet.add c acc)
              acc
              (classes_of lk ~file:f.fn_file hint))
          SSet.empty f.fn_acquires
      in
      lk.may_acquire.(f.fn_id) <- direct)
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun f ->
        let acc =
          List.fold_left
            (fun acc (path, _) ->
              List.fold_left
                (fun acc g -> SSet.union acc lk.may_acquire.(g.fn_id))
                acc
                (resolve lk ~modname:f.fn_module path))
            lk.may_acquire.(f.fn_id) f.fn_refs
        in
        if not (SSet.equal acc lk.may_acquire.(f.fn_id)) then begin
          lk.may_acquire.(f.fn_id) <- acc;
          changed := true
        end)
      fns
  done;
  lk

(* {1 block-in-handler: chains from atomic contexts to seeds} *)

(* Shortest reference chain from [refs] to a blocking primitive,
   rendered ["f -> g -> Semaphore.acquire"]. *)
let find_chain lk ~modname refs =
  let refs = List.rev refs in
  let direct =
    List.find_map
      (fun (path, _) -> if is_seed path then Some path else None)
      refs
  in
  match direct with
  | Some path -> Some [ suffix2 path ]
  | None ->
      let visited = Hashtbl.create 16 in
      let queue = Queue.create () in
      List.iter
        (fun (path, _) ->
          List.iter
            (fun g ->
              if lk.may_block.(g.fn_id) && not (Hashtbl.mem visited g.fn_id)
              then begin
                Hashtbl.replace visited g.fn_id ();
                Queue.add (g, [ g.fn_key ]) queue
              end)
            (resolve lk ~modname path))
        refs;
      let rec bfs () =
        match Queue.take_opt queue with
        | None -> None
        | Some (f, chain) -> (
            match
              List.find_map
                (fun (path, _) -> if is_seed path then Some path else None)
                (List.rev f.fn_refs)
            with
            | Some path -> Some (List.rev (suffix2 path :: chain))
            | None ->
                List.iter
                  (fun (path, _) ->
                    List.iter
                      (fun g ->
                        if
                          lk.may_block.(g.fn_id)
                          && not (Hashtbl.mem visited g.fn_id)
                        then begin
                          Hashtbl.replace visited g.fn_id ();
                          Queue.add (g, g.fn_key :: chain) queue
                        end)
                      (resolve lk ~modname:f.fn_module path))
                  (List.rev f.fn_refs);
                bfs ())
      in
      bfs ()

(* {1 lock-order: the acquired-while-holding graph} *)

type edge = { e_from : string; e_to : string; e_file : string; e_line : int }

let build_edges lk scans =
  let edges = ref [] in
  List.iter
    (fun fs ->
      List.iter
        (fun h ->
          let froms = classes_of lk ~file:h.h_file h.h_hint in
          let tos =
            match h.h_target with
            | `Acquire hint -> classes_of lk ~file:h.h_file hint
            | `Call path ->
                List.concat_map
                  (fun g -> SSet.elements lk.may_acquire.(g.fn_id))
                  (resolve lk ~modname:h.h_module path)
          in
          List.iter
            (fun f ->
              List.iter
                (fun t ->
                  if not (String.equal f t) then
                    edges :=
                      { e_from = f; e_to = t; e_file = h.h_file;
                        e_line = h.h_line }
                      :: !edges)
                tos)
            froms)
        fs.fs_helds)
    scans;
  (* One witness per (from, to): the first in (file, line) order. *)
  let sorted =
    List.sort
      (fun a b ->
        compare
          (a.e_from, a.e_to, a.e_file, a.e_line)
          (b.e_from, b.e_to, b.e_file, b.e_line))
      !edges
  in
  List.rev
    (List.fold_left
       (fun acc e ->
         match acc with
         | prev :: _
           when String.equal prev.e_from e.e_from
                && String.equal prev.e_to e.e_to ->
             acc
         | _ -> e :: acc)
       [] sorted)

let successors edges c =
  List.filter_map
    (fun e -> if String.equal e.e_from c then Some e.e_to else None)
    edges

(* Shortest class path from [src] to [dst] over [edges]. *)
let class_path edges src dst =
  let visited = ref (SSet.singleton src) in
  let queue = Queue.create () in
  Queue.add (src, [ src ]) queue;
  let rec bfs () =
    match Queue.take_opt queue with
    | None -> None
    | Some (c, path) ->
        if String.equal c dst then Some (List.rev path)
        else begin
          List.iter
            (fun nxt ->
              if not (SSet.mem nxt !visited) then begin
                visited := SSet.add nxt !visited;
                Queue.add (nxt, nxt :: path) queue
              end)
            (successors edges c);
          bfs ()
        end
  in
  bfs ()

(* {1 The tree driver} *)

let check_sources sources =
  let scans_and_hits = List.map scan_source sources in
  let scans = List.map fst scans_and_hits in
  let hits = ref (List.concat_map snd scans_and_hits) in
  let lk = link scans in
  (* block-in-handler: registrar callbacks... *)
  List.iter
    (fun fs ->
      List.iter
        (fun rg ->
          match find_chain lk ~modname:rg.rg_module rg.rg_refs with
          | None -> ()
          | Some chain ->
              hits :=
                mk rg.rg_file rg.rg_line 0 Rules.Block_in_handler
                  (Printf.sprintf
                     "%s may block: %s — atomic contexts run outside the \
                      effect handler and must not suspend"
                     rg.rg_desc
                     (String.concat " -> " chain))
                :: !hits)
        fs.fs_regions)
    scans;
  (* ...and audited/annotated atomic functions. *)
  Array.iter
    (fun f ->
      if f.fn_atomic && lk.may_block.(f.fn_id) then
        let chain =
          match find_chain lk ~modname:f.fn_module f.fn_refs with
          | Some c -> String.concat " -> " (f.fn_key :: c)
          | None -> f.fn_key
        in
        hits :=
          mk f.fn_file f.fn_line 0 Rules.Block_in_handler
            (Printf.sprintf
               "atomic function may block: %s — atomic contexts run outside \
                the effect handler and must not suspend"
               chain)
          :: !hits)
    lk.fns;
  (* lock-order cycles *)
  let edges = build_edges lk scans in
  List.iter
    (fun e ->
      match class_path edges e.e_to e.e_from with
      | None -> ()
      | Some back ->
          hits :=
            mk e.e_file e.e_line 0 Rules.Lock_order
              (Printf.sprintf
                 "acquiring lock class %s while holding %s closes the cycle \
                  %s; acquire classes in one global order"
                 e.e_to e.e_from
                 (String.concat " -> " (e.e_from :: back)))
            :: !hits)
    edges;
  (* unreleased-acquire *)
  Array.iter
    (fun f ->
      let released =
        List.concat_map
          (fun hint -> classes_of lk ~file:f.fn_file hint)
          f.fn_releases
      in
      List.iter
        (fun (hint, line) ->
          List.iter
            (fun c ->
              if not (List.exists (String.equal c) released) then
                hits :=
                  mk f.fn_file line 0 Rules.Unreleased_acquire
                    (Printf.sprintf
                       "acquire of lock class %s has no matching release in \
                        %s; release on every path or justify the ownership \
                        transfer with an allow"
                       c f.fn_key)
                  :: !hits)
            (classes_of lk ~file:f.fn_file hint))
        f.fn_bare)
    lk.fns;
  (* Reconcile against seussdead allows, then surface dead allows. *)
  let allows_of_file = Hashtbl.create 32 in
  List.iter
    (fun fs -> Hashtbl.replace allows_of_file fs.fs_rel fs.fs_allows)
    scans;
  let surviving =
    List.filter
      (fun (v : Check.violation) ->
        let allows =
          match Hashtbl.find_opt allows_of_file v.file with
          | Some l -> l
          | None -> []
        in
        not
          (List.exists
             (fun a ->
               if
                 String.equal (Rules.name a.al_rule) v.rule
                 && v.line >= a.al_first && v.line <= a.al_last
               then begin
                 a.al_used <- true;
                 true
               end
               else false)
             allows))
      !hits
  in
  let dead =
    List.concat_map
      (fun fs ->
        List.filter_map
          (fun a ->
            if a.al_used then None
            else
              Some
                (mk_meta fs.fs_rel a.al_line 0 Rules.unused_allow
                   (Printf.sprintf
                      "allowance for %s suppresses nothing; delete it"
                      (Rules.name a.al_rule))))
          fs.fs_allows)
      scans
  in
  let meta = List.concat_map (fun fs -> fs.fs_meta) scans in
  (* Ambiguous suffix-2 resolution: a reference whose key is defined in
     two or more files conflates same-named modules — every
     interprocedural verdict drawn through it is suspect, so the
     collision is surfaced as a meta-rule at each such reference. *)
  let ambiguity =
    List.sort_uniq Check.compare_violation
      (Array.to_list lk.fns
      |> List.concat_map (fun f ->
             List.filter_map
               (fun (path, line) ->
                 if Resolve.ambiguous lk.defs ~modname:f.fn_module path then
                   Some
                     (mk_meta f.fn_file line 0 Rules.ambiguous_resolve
                        (Printf.sprintf
                           "%s resolves to definitions in %s; suffix-2 \
                            resolution conflates these same-named modules — \
                            rename one or avoid the shared suffix"
                           (suffix2 path)
                           (String.concat " and "
                              (Resolve.defining_files lk.defs
                                 ~modname:f.fn_module path))))
                 else None)
               f.fn_refs))
  in
  List.sort Check.compare_violation (surviving @ dead @ meta @ ambiguity)

let check_tree ?strip_prefix roots =
  check_sources (Check.load_tree ?strip_prefix roots)
