(** The seusslint per-file checker.

    Parses one source with compiler-libs, walks the Parsetree for hits
    of the syntactic rules ({!Rules.syntactic}), then reconciles them
    against the file's [seusslint: allow] comments. No typing pass —
    every rule is decidable (conservatively) on names alone, which keeps
    the linter dependency-free and fast enough to run on every build.

    The pieces shared with the interprocedural deadlock pass
    ({!Deadlock}) — source discovery, comment gathering, directive
    parsing and path normalization — are exported here. *)

type violation = {
  file : string;  (** repo-relative path *)
  line : int;
  col : int;
  rule : string;  (** {!Rules.name}, or a meta-diagnostic id *)
  message : string;
}

val compare_violation : violation -> violation -> int
(** Orders by (file, line, col, rule) for stable reports. *)

val check_file : ?rel:string -> string -> violation list
(** [check_file path] lints one source. [rel] overrides the
    repo-relative path used for rule classification (lib/-only rules)
    and reporting; it defaults to [path] with leading [./]/[../]
    stripped. *)

val check_tree : ?strip_prefix:string -> string list -> violation list
(** Lint every [.ml] under the given roots, sorted. [strip_prefix] is
    dropped from the front of each relative path before classification,
    so a fixture tree like [test/lint_fixtures/lib] is linted as
    [lib/]. *)

(** {1 Shared plumbing} *)

val marker : string
(** ["seusslint:"] — the comment marker of the base pass. *)

val source_files : string -> string list
(** All [.ml] files under a directory, sorted, skipping [_build] and
    dot-directories. [[]] if the directory is unreadable. *)

val rel_of_path : string -> string
(** Strip leading [./] and [../] segments so ["lib/..."] classification
    works from a build sandbox. *)

val strip_rel_prefix : prefix:string -> string -> string
(** Drop a leading [prefix] (itself normalized) from a relative path. *)

val read_file : string -> string

val gather_comments : string -> string -> (string * Location.t) list
(** [gather_comments src path] lexes [src] (named [path] for locations)
    to exhaustion and returns every comment with its location. *)

val parse_directive :
  marker:string -> string -> (string * string) option
(** [parse_directive ~marker text] is [Some (verb, payload)] when the
    comment text starts with [marker] (doc-comment [*] prefixes are
    tolerated): [verb] is the first word after the marker and [payload]
    the trimmed remainder. [None] when the comment is not
    marker-directed at all. *)

val split_allow_payload : string -> string * string
(** Split an allow payload ["<rule> — <reason>"] into the rule id and
    the reason, stripping the separator ([—], [--] or [-]). *)
