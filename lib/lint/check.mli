(** The seusslint per-file checker.

    Parses one source with compiler-libs, walks the Parsetree for hits
    of the syntactic rules ({!Rules.syntactic}), then reconciles them
    against the file's [seusslint: allow] comments. No typing pass —
    every rule is decidable (conservatively) on names alone, which keeps
    the linter dependency-free and fast enough to run on every build.

    The pieces shared with the interprocedural deadlock pass
    ({!Deadlock}) — source discovery, comment gathering, directive
    parsing and path normalization — are exported here. *)

type violation = {
  file : string;  (** repo-relative path *)
  line : int;
  col : int;
  rule : string;  (** {!Rules.name}, or a meta-diagnostic id *)
  message : string;
}

val compare_violation : violation -> violation -> int
(** Orders by (file, line, col, rule) for stable reports. *)

(** {1 Shared sources}

    Reading, comment-lexing and parsing dominate a pass's wall time and
    every pass needs the identical products, so a tree is loaded once
    into [source]s that all passes share ([seusslint --pass all] parses
    each file exactly once). *)

type source = {
  src_path : string;  (** filesystem path the file was read from *)
  src_rel : string;  (** repo-relative path used for classification *)
  src_text : string;
  src_comments : (string * Location.t) list;
  src_ast : (Parsetree.structure, exn) result;
      (** the parse, or the exception every pass reports as
          [parse-error] *)
}

val load_source : ?rel:string -> string -> source

val load_tree : ?strip_prefix:string -> string list -> source list
(** Load every [.ml] under the given roots. [strip_prefix] is dropped
    from the front of each relative path before classification, so a
    fixture tree like [test/lint_fixtures/lib] is linted as [lib/]. *)

val check_source : source -> violation list
(** Run the syntactic rules over one loaded source. *)

val check_sources : source list -> violation list
(** [check_source] over each, merged and sorted. *)

val check_file : ?rel:string -> string -> violation list
(** [check_file path] lints one source. [rel] overrides the
    repo-relative path used for rule classification (lib/-only rules)
    and reporting; it defaults to [path] with leading [./]/[../]
    stripped. *)

val check_tree : ?strip_prefix:string -> string list -> violation list
(** [check_sources] over [load_tree]: lint every [.ml] under the given
    roots, sorted. *)

(** {1 Shared plumbing} *)

val marker : string
(** ["seusslint:"] — the comment marker of the base pass. *)

val source_files : string -> string list
(** All [.ml] files under a directory, sorted, skipping [_build] and
    dot-directories. [[]] if the directory is unreadable. *)

val rel_of_path : string -> string
(** Strip leading [./] and [../] segments so ["lib/..."] classification
    works from a build sandbox. *)

val strip_rel_prefix : prefix:string -> string -> string
(** Drop a leading [prefix] (itself normalized) from a relative path. *)

val read_file : string -> string

val gather_comments : string -> string -> (string * Location.t) list
(** [gather_comments src path] lexes [src] (named [path] for locations)
    to exhaustion and returns every comment with its location. *)

val parse_directive :
  marker:string -> string -> (string * string) option
(** [parse_directive ~marker text] is [Some (verb, payload)] when the
    comment text starts with [marker] (doc-comment [*] prefixes are
    tolerated): [verb] is the first word after the marker and [payload]
    the trimmed remainder. [None] when the comment is not
    marker-directed at all. *)

val split_allow_payload : string -> string * string
(** Split an allow payload ["<rule> — <reason>"] into the rule id and
    the reason, stripping the separator ([—], [--] or [-]). *)
