(** The seusslint rule catalogue.

    Every rule guards one way simulation determinism, resource safety or
    liveness has actually broken (or nearly broken) in this codebase.
    The {!syntactic} rules are decidable per-file on names alone and are
    enforced by {!Check}; the {!deadlock} rules need the interprocedural
    call graph built by {!Deadlock} over the whole tree, the {!heat}
    rules flag allocation/boxing reachable from the registered hot roots
    ({!Hotroots}), enforced by {!Heat}, and the {!own} rules track
    acquire/release typestate for frames, snapshot references and
    unikernel contexts, enforced by {!Own}. *)

type id =
  | Bare_random  (** [Random.*] outside the seeded PRNG plumbing *)
  | Wallclock  (** [Unix.gettimeofday] / [Sys.time] inside lib/ *)
  | Hashtbl_order  (** raw [Hashtbl.iter]/[Hashtbl.fold] inside lib/ *)
  | Physical_eq  (** [==] / [!=] inside lib/ *)
  | Stdout_print  (** [print_*] / [Printf.printf] inside lib/ *)
  | Frame_site  (** frame acquire/release outside the audited site list *)
  | Block_in_handler
      (** a may-block call reachable from an atomic context (fault hook,
          reporter callback, heap comparator, crash handler) *)
  | Lock_order
      (** semaphore lock classes acquired in a cyclic order, or a
          [Semaphore.create] missing its [seussdead: lock] annotation *)
  | Unreleased_acquire
      (** a bare [Semaphore.acquire] whose function never releases the
          same lock class *)
  | Heat_closure  (** a closure allocated inside a hot function body *)
  | Heat_alloc
      (** tuple/record/array/constructor/ref construction, or a call to
          a known-allocating stdlib function, on a hot path *)
  | Heat_string
      (** string building — [^], [String.concat], [Printf]/[Format] —
          on a hot path *)
  | Heat_float_box
      (** a float arithmetic result stored into a record field, which
          boxes unless the record is all-float *)
  | Heat_poly_cmp
      (** polymorphic [compare]/[=]/[min]/[max]/[Hashtbl.hash] on a hot
          path *)
  | Heat_partial
      (** partial application on a hot path: a closure per call *)
  | Own_escape
      (** an acquired resource never released on any reachable path, at
          a site not registered as an ownership transfer *)
  | Own_exn_leak
      (** a raise while a resource acquired in the same function is
          still owned on that path *)
  | Own_double_release
      (** a second release of a resource already released on the path *)
  | Own_use_after_destroy
      (** a liveness-requiring UC operation after [Uc.destroy] *)
  | Own_unbalanced
      (** branch arms that disagree about releasing a pre-branch
          resource *)

val syntactic : id list
(** Rules enforced per-file by the base pass ({!Check.check_file}). *)

val deadlock : id list
(** Rules enforced by the interprocedural pass ({!Deadlock.check_tree}). *)

val heat : id list
(** Rules enforced by the hot-path pass ({!Heat.check_tree}),
    suppressed with [(* seussheat: cold — <reason> *)] markers. *)

val own : id list
(** Rules enforced by the ownership pass ({!Own.check_tree}),
    suppressed with [(* seussown: transfer — <reason> *)] markers. *)

val all : id list
(** [syntactic @ deadlock @ heat @ own]. *)

val pass_of : id -> string
(** The seusslint pass that enforces the rule: ["base"], ["deadlock"],
    ["heat"] or ["own"]. *)

val name : id -> string
(** Stable kebab-case identifier, as printed and as written in allow
    comments. *)

val of_name : string -> id option

val describe : id -> string
(** One-paragraph rationale for [--list-rules]. *)

(** {1 Meta-diagnostics}

    Emitted by the checkers themselves and never suppressible — an
    annotation that is wrong or dead is itself the defect reported. *)

val bad_allow : string
(** ["bad-allow"]: malformed/unknown allow, lock or atomic comment. *)

val unused_allow : string
(** ["unused-allow"]: an annotation that suppresses or names nothing. *)

val parse_error : string
(** ["parse-error"]: the file failed to parse at all. *)

val ambiguous_resolve : string
(** ["ambiguous-resolve"]: a reference whose suffix-2 key is defined in
    two or more files (same module basename), so interprocedural
    resolution conflates distinct modules. *)
