(* seussown — the interprocedural ownership/lifecycle typestate pass.

   Where {!Deadlock} asks "can this block?" and {!Heat} asks "does this
   allocate?", this pass asks "does every acquired resource reach its
   release?". Three resource classes are tracked, by the same name-based
   classification the other passes use:

   - frame references: Frame.alloc / Frame.incref -> Frame.decref;
   - snapshot references: Snapshot.addref -> Snapshot.decref;
   - unikernel contexts: Uc.boot / Uc.deploy -> Uc.destroy
     (destroy-at-most-once).

   The analysis runs in two layers over the shared parse:

   1. Flow-insensitive, interprocedural (own-escape): the same
      conservative call graph as the other passes (one node per
      top-level binding, suffix-2 resolution via {!Resolve}, referencing
      counts as calling) carries a may-release summary per function and
      class to a fixpoint. A direct acquire in a function whose
      transitive callee cone contains no release of that class leaks on
      every path — unless the (file, binding, class) triple is in the
      {!Sites.transfers} registry or a transfer marker covers the
      acquire line.

   2. Flow-sensitive, per-path (the typestate rules): each function
      body is walked tracking the set of resources acquired on the
      current path (bound by [let x = Uc.boot ...] or hinted by the
      argument of incref/addref), with branch arms (match / if / try /
      function) walked from a saved state and joined by must-semantics
      (intersection), arms that definitely raise excluded from the
      join:

      - own-exn-leak: raise / failwith / invalid_arg (outside a try)
        while a path-owned resource has not been released;
      - own-double-release: a second release of a (class, name) already
        released on the path;
      - own-use-after-destroy: a liveness-requiring Uc operation
        (connect, send, request, resume, capture, prefault, ...) on a
        name destroyed on the path;
      - own-unbalanced: branch arms that disagree about whether a
        resource owned before the branch is released.

      Passing an owned name as a positional argument to a callee whose
      may-release summary covers its class is an ownership transfer:
      the callee (or something it reaches) releases it, so the path
      walk drops it without marking it released.

   Each finding carries a root-to-site chain like seussheat
   ("Node.start -> Uc.boot -> failwith"), so the report reads as the
   ownership flow that breaks.

   Suppression is the pass's own marker with one verb:
   (* seussown: transfer — <reason> *). Covering an acquire line it
   declares the ownership handed off (the acquire is untracked, escape
   and path rules both silenced for it); covering a reported site line
   it silences that finding. A marker that clears no acquire and
   silences nothing is unused-allow; a malformed one is bad-allow;
   suffix-2 collisions are surfaced as ambiguous-resolve at each
   reference, exactly as the deadlock pass does. *)

let marker = "seussown:"

type which_arg = A_first | A_last

type op_class =
  | Op_acquire_ret of Sites.resource * string
      (* acquired by return value: hint = the binding name *)
  | Op_acquire_arg of Sites.resource * string * which_arg
      (* an extra reference on an existing resource: hint = the arg *)
  | Op_release of Sites.resource * string * which_arg
  | Op_use of string  (* a liveness-requiring Uc operation *)

(* Uc operations that read state Uc.destroy released. Uc.id / port /
   status / footprint accessors stay valid on a dead UC (the reclaimer
   logs ids after destroy) and are deliberately absent. *)
let uc_liveness =
  [
    "connect"; "send"; "request"; "resume"; "capture"; "prefault";
    "start_ws_record"; "take_ws_record"; "await_breakpoint"; "guest_state";
  ]

let res_op ~cur_module path =
  match List.rev path with
  | [] -> None
  | op :: rest -> (
      let in_module m =
        match rest with
        | m' :: _ -> String.equal m' m
        | [] -> String.equal cur_module m
      in
      if in_module "Frame" then
        match op with
        | "alloc" -> Some (Op_acquire_ret (Sites.Frame_ref, "Frame.alloc"))
        | "incref" ->
            Some (Op_acquire_arg (Sites.Frame_ref, "Frame.incref", A_last))
        | "decref" -> Some (Op_release (Sites.Frame_ref, "Frame.decref", A_last))
        | _ -> None
      else if in_module "Snapshot" then
        match op with
        | "addref" ->
            Some (Op_acquire_arg (Sites.Snap_ref, "Snapshot.addref", A_first))
        | "decref" ->
            Some (Op_release (Sites.Snap_ref, "Snapshot.decref", A_first))
        | _ -> None
      else if in_module "Uc" then
        match op with
        | "boot" | "deploy" -> Some (Op_acquire_ret (Sites.Uc_ctx, "Uc." ^ op))
        | "destroy" -> Some (Op_release (Sites.Uc_ctx, "Uc.destroy", A_first))
        | _ when List.mem op uc_liveness -> Some (Op_use ("Uc." ^ op))
        | _ -> None
      else None)

(* Definitions that ARE the release primitives: their bodies mutate
   refcount fields rather than calling a release op, so the may-release
   fixpoint seeds them by key. *)
let release_keys =
  [
    ("Frame.decref", Sites.Frame_ref);
    ("Snapshot.decref", Sites.Snap_ref);
    ("Uc.destroy", Sites.Uc_ctx);
  ]

let raise_names = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let is_raise path =
  match path with
  | [ x ] | [ "Stdlib"; x ] -> List.mem x raise_names
  | _ -> false

(* Tiny set ops over the three-element resource universe. *)
let radd r l = if List.mem r l then l else r :: l
let runion a b = List.fold_left (fun acc r -> radd r acc) a b

let req a b =
  List.length a = List.length b && List.for_all (fun r -> List.mem r b) a

(* {1 Scan products} *)

type acq = {
  aq_res : Sites.resource;
  aq_op : string;
  aq_line : int;
  aq_col : int;
  mutable aq_cleared : bool;  (* marker- or registry-covered *)
}

type directive = {
  d_first : int;
  d_last : int;
  d_line : int;
  mutable d_used : bool;
}

type fn = {
  mutable fn_id : int;
  fn_key : string;  (* "Module.binding" *)
  fn_module : string;
  fn_file : string;
  mutable fn_refs : (string list * int) list;
  mutable fn_acquires : acq list;
  mutable fn_rel : Sites.resource list;  (* direct release classes *)
}

type file_scan = {
  fs_rel : string;
  fs_src : Check.source;
  mutable fs_fns : fn list;
  mutable fs_transfers : directive list;
  mutable fs_meta : Check.violation list;
}

let mk file line col rule message =
  { Check.file; line; col; rule = Rules.name rule; message }

let mk_meta file line col rule message = { Check.file; line; col; rule; message }

let module_of rel =
  String.capitalize_ascii Filename.(remove_extension (basename rel))

let binding_of_key key =
  match String.index_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let last_of path = match List.rev path with [] -> "" | x :: _ -> x

let hint_of_expr (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> last_of (Longident.flatten txt)
  | Pexp_field (_, { txt; _ }) -> last_of (Longident.flatten txt)
  | _ -> ""

let positional args =
  List.filter_map (function Asttypes.Nolabel, e -> Some e | _ -> None) args

let hint_of_arg which pos =
  match (which, pos) with
  | A_first, e :: _ -> hint_of_expr e
  | A_last, (_ :: _ as l) -> hint_of_expr (List.hd (List.rev l))
  | _, [] -> ""

let covering directives line =
  List.find_opt (fun d -> line >= d.d_first && line <= d.d_last) directives

(* {1 Pass 1: refs, acquires and direct releases per binding} *)

type sstate = {
  s_rel : string;
  s_module : string;
  mutable s_fns : fn list;  (* reverse order *)
  mutable s_cur : fn;
}

let new_fn st name =
  let f =
    {
      fn_id = -1;
      fn_key = st.s_module ^ "." ^ name;
      fn_module = st.s_module;
      fn_file = st.s_rel;
      fn_refs = [];
      fn_acquires = [];
      fn_rel = [];
    }
  in
  st.s_fns <- f :: st.s_fns;
  f

let scan_iterator st =
  let open Ast_iterator in
  let classify path line col =
    match res_op ~cur_module:st.s_module path with
    | Some (Op_acquire_ret (res, op) | Op_acquire_arg (res, op, _)) ->
        st.s_cur.fn_acquires <-
          { aq_res = res; aq_op = op; aq_line = line; aq_col = col;
            aq_cleared = false }
          :: st.s_cur.fn_acquires
    | Some (Op_release (res, _, _)) -> st.s_cur.fn_rel <- radd res st.s_cur.fn_rel
    | Some (Op_use _) | None -> ()
  in
  let expr sub (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let path = Longident.flatten txt in
        st.s_cur.fn_refs <-
          (path, loc.loc_start.Lexing.pos_lnum) :: st.s_cur.fn_refs;
        (* An eta-passed release op (List.iter Uc.destroy ...) still
           releases; a bare acquire reference binds nothing. *)
        (match res_op ~cur_module:st.s_module path with
        | Some (Op_release (res, _, _)) ->
            st.s_cur.fn_rel <- radd res st.s_cur.fn_rel
        | _ -> ())
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        let path = Longident.flatten txt in
        let line = loc.loc_start.Lexing.pos_lnum in
        let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
        st.s_cur.fn_refs <- (path, line) :: st.s_cur.fn_refs;
        classify path line col;
        List.iter (fun (_, a) -> sub.expr sub a) args
    | _ -> default_iterator.expr sub e
  in
  let structure_item sub (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        let toplevel = st.s_cur in
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let name =
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> txt
              | _ -> "<toplevel>"
            in
            st.s_cur <- new_fn st name;
            sub.expr sub vb.pvb_expr;
            st.s_cur <- toplevel)
          bindings
    | _ -> default_iterator.structure_item sub item
  in
  { default_iterator with expr; structure_item }

(* {1 Directives} *)

let strip_dash s =
  let s = String.trim s in
  let drop n = String.trim (String.sub s n (String.length s - n)) in
  if String.length s >= 3 && String.equal (String.sub s 0 3) "\xe2\x80\x94"
  then drop 3
  else if String.length s >= 2 && String.equal (String.sub s 0 2) "--" then
    drop 2
  else if String.length s >= 1 && s.[0] = '-' then drop 1
  else ""

let scan_directives fs comments =
  let transfers = ref [] in
  List.iter
    (fun (text, (loc : Location.t)) ->
      let line = loc.loc_start.Lexing.pos_lnum in
      let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
      let first = line and last = loc.loc_end.Lexing.pos_lnum + 1 in
      match Check.parse_directive ~marker text with
      | None -> ()
      | Some ("transfer", payload)
        when not (String.equal (strip_dash payload) "") ->
          transfers :=
            { d_first = first; d_last = last; d_line = line; d_used = false }
            :: !transfers
      | Some ("transfer", _) ->
          fs.fs_meta <-
            mk_meta fs.fs_rel line col Rules.bad_allow
              "transfer marker needs a reason: seussown: transfer — <why>"
            :: fs.fs_meta
      | Some _ ->
          fs.fs_meta <-
            mk_meta fs.fs_rel line col Rules.bad_allow
              "malformed seussown comment; expected: transfer — <reason>"
            :: fs.fs_meta)
    comments;
  List.rev !transfers

let scan_source (source : Check.source) =
  let rel = source.Check.src_rel in
  let fs =
    { fs_rel = rel; fs_src = source; fs_fns = []; fs_transfers = [];
      fs_meta = [] }
  in
  fs.fs_transfers <- scan_directives fs source.Check.src_comments;
  let modname = module_of rel in
  let st =
    {
      s_rel = rel;
      s_module = modname;
      s_fns = [];
      s_cur =
        {
          fn_id = -1;
          fn_key = modname ^ ".<toplevel>";
          fn_module = modname;
          fn_file = rel;
          fn_refs = [];
          fn_acquires = [];
          fn_rel = [];
        };
    }
  in
  st.s_cur <- new_fn st "<toplevel>";
  (match source.Check.src_ast with
  | Ok ast ->
      let it = scan_iterator st in
      it.structure it ast
  | Error exn ->
      fs.fs_meta <-
        mk_meta rel 1 0 Rules.parse_error (Printexc.to_string exn)
        :: fs.fs_meta);
  fs.fs_fns <- List.rev st.s_fns;
  fs

(* {1 Linking: the may-release fixpoint} *)

type linked = {
  fns : fn array;
  defs : fn Resolve.t;
  rel : Sites.resource list array;  (* may-release summary per fn *)
}

let link scans =
  let all_fns = List.concat_map (fun fs -> fs.fs_fns) scans in
  let fns = Array.of_list all_fns in
  Array.iteri (fun i f -> f.fn_id <- i) fns;
  let n = Array.length fns in
  let defs = Resolve.create () in
  Array.iter
    (fun f ->
      if not (String.equal (binding_of_key f.fn_key) "<toplevel>") then
        Resolve.add defs ~key:f.fn_key ~file:f.fn_file f)
    fns;
  let rel = Array.make (max n 1) [] in
  Array.iter
    (fun f ->
      rel.(f.fn_id) <- f.fn_rel;
      List.iter
        (fun (key, res) ->
          if String.equal f.fn_key key then
            rel.(f.fn_id) <- radd res rel.(f.fn_id))
        release_keys)
    fns;
  let lk = { fns; defs; rel } in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun f ->
        let acc =
          List.fold_left
            (fun acc (path, _) ->
              List.fold_left
                (fun acc g -> runion acc lk.rel.(g.fn_id))
                acc
                (Resolve.find lk.defs ~modname:f.fn_module path))
            lk.rel.(f.fn_id) f.fn_refs
        in
        if not (req acc lk.rel.(f.fn_id)) then begin
          lk.rel.(f.fn_id) <- acc;
          changed := true
        end)
      lk.fns
  done;
  lk

(* {1 Pass 2: the per-path typestate walk} *)

type acq_info = { ai_res : Sites.resource; ai_op : string; ai_line : int }

type pstate = {
  p_rel : string;
  p_module : string;
  p_lk : linked;
  p_transfers : directive list;
  mutable p_fn_key : string;
  mutable p_hint : string;  (* innermost binding/field name *)
  mutable p_owned : (string * acq_info) list;
  mutable p_released : (Sites.resource * string * int) list;
  mutable p_destroyed : (string * int) list;
  mutable p_raised : bool;
  mutable p_in_try : int;
  mutable p_hits : Check.violation list;
}

(* A hit is silenced when a transfer marker covers its line. *)
let report st (loc : Location.t) rule message =
  let line = loc.loc_start.Lexing.pos_lnum in
  let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
  match covering st.p_transfers line with
  | Some d -> d.d_used <- true
  | None -> st.p_hits <- mk st.p_rel line col rule message :: st.p_hits

let track_acquire st ~res ~op ~hint ~line =
  let cleared =
    (match covering st.p_transfers line with
    | Some d ->
        d.d_used <- true;
        true
    | None -> false)
    || Sites.transfer ~file:st.p_rel
         ~binding:(binding_of_key st.p_fn_key) res
       <> None
  in
  if not (String.equal hint "") then begin
    (* Rebinding a name re-acquires it: the old typestate dies. *)
    st.p_released <-
      List.filter
        (fun (r, h, _) -> not (r = res && String.equal h hint))
        st.p_released;
    if res = Sites.Uc_ctx then
      st.p_destroyed <- List.remove_assoc hint st.p_destroyed;
    if not cleared then
      st.p_owned <-
        (hint, { ai_res = res; ai_op = op; ai_line = line })
        :: List.remove_assoc hint st.p_owned
  end

(* Walk each arm from the pre-branch state; join the arms that can fall
   through by must-semantics (intersection); report pre-branch-owned
   resources the joining arms disagree about. *)
let walk_arms st (loc : Location.t) arms =
  let pre_owned = st.p_owned
  and pre_rel = st.p_released
  and pre_des = st.p_destroyed
  and pre_raised = st.p_raised in
  let ends =
    List.map
      (fun walk ->
        st.p_owned <- pre_owned;
        st.p_released <- pre_rel;
        st.p_destroyed <- pre_des;
        st.p_raised <- false;
        walk ();
        (st.p_owned, st.p_released, st.p_destroyed, st.p_raised))
      arms
  in
  let joining = List.filter (fun (_, _, _, r) -> not r) ends in
  if List.length joining >= 2 then
    List.iter
      (fun (hint, ai) ->
        let owned_in (ow, _, _, _) = List.mem_assoc hint ow in
        if
          List.exists owned_in joining
          && List.exists (fun s -> not (owned_in s)) joining
        then
          report st loc Rules.Own_unbalanced
            (Printf.sprintf
               "branch arms disagree about %s (%s, line %d): one arm \
                releases it, another leaves it owned (%s -> %s); release \
                on every arm or transfer explicitly"
               hint ai.ai_op ai.ai_line st.p_fn_key ai.ai_op))
      pre_owned;
  match joining with
  | [] ->
      st.p_owned <- pre_owned;
      st.p_released <- pre_rel;
      st.p_destroyed <- pre_des;
      st.p_raised <- true
  | (ow0, rl0, ds0, _) :: rest ->
      st.p_owned <-
        List.filter
          (fun (h, _) ->
            List.for_all (fun (ow, _, _, _) -> List.mem_assoc h ow) rest)
          ow0;
      st.p_released <-
        List.filter
          (fun (r, h, _) ->
            List.for_all
              (fun (_, rl, _, _) ->
                List.exists
                  (fun (r', h', _) -> r = r' && String.equal h h')
                  rl)
              rest)
          rl0;
      st.p_destroyed <-
        List.filter
          (fun (h, _) ->
            List.for_all (fun (_, _, ds, _) -> List.mem_assoc h ds) rest)
          ds0;
      st.p_raised <- pre_raised

let path_iterator st =
  let open Ast_iterator in
  let handle_apply sub (loc : Location.t) path args =
    let line = loc.loc_start.Lexing.pos_lnum in
    let pos = positional args in
    let walk_args () = List.iter (fun (_, a) -> sub.expr sub a) args in
    match res_op ~cur_module:st.p_module path with
    | Some (Op_acquire_ret (res, op)) ->
        walk_args ();
        track_acquire st ~res ~op ~hint:st.p_hint ~line
    | Some (Op_acquire_arg (res, op, which)) ->
        walk_args ();
        track_acquire st ~res ~op ~hint:(hint_of_arg which pos) ~line
    | Some (Op_release (res, op, which)) ->
        walk_args ();
        let hint = hint_of_arg which pos in
        if not (String.equal hint "") then begin
          (match
             List.find_opt
               (fun (r, h, _) -> r = res && String.equal h hint)
               st.p_released
           with
          | Some (_, _, prev) ->
              report st loc Rules.Own_double_release
                (Printf.sprintf
                   "%s of %s already released at line %d (%s -> %s -> %s); \
                    the second release double-frees"
                   op hint prev st.p_fn_key op op)
          | None -> ());
          st.p_released <- (res, hint, line) :: st.p_released;
          if res = Sites.Uc_ctx && not (List.mem_assoc hint st.p_destroyed)
          then st.p_destroyed <- (hint, line) :: st.p_destroyed;
          st.p_owned <-
            List.filter
              (fun (h, ai) ->
                not (String.equal h hint && ai.ai_res = res))
              st.p_owned
        end
    | Some (Op_use op) -> (
        walk_args ();
        match pos with
        | e :: _ -> (
            let hint = hint_of_expr e in
            match List.assoc_opt hint st.p_destroyed with
            | Some dline when not (String.equal hint "") ->
                report st loc Rules.Own_use_after_destroy
                  (Printf.sprintf
                     "%s on %s destroyed at line %d (%s -> Uc.destroy -> \
                      %s); destroy already released its resources"
                     op hint dline st.p_fn_key op)
            | _ -> ())
        | [] -> ())
    | None ->
        if is_raise path then begin
          walk_args ();
          if st.p_in_try = 0 then begin
            List.iter
              (fun (hint, ai) ->
                report st loc Rules.Own_exn_leak
                  (Printf.sprintf
                     "%s fires while %s (%s, line %d) is still owned (%s \
                      -> %s -> %s); release before raising or wrap in \
                      Fun.protect"
                     (last_of path) hint ai.ai_op ai.ai_line st.p_fn_key
                     ai.ai_op (last_of path)))
              st.p_owned;
            st.p_raised <- true
          end
        end
        else begin
          (* Ownership transfer: an owned name handed to a callee whose
             may-release summary covers its class. *)
          let mr =
            List.fold_left
              (fun acc g -> runion acc st.p_lk.rel.(g.fn_id))
              []
              (Resolve.find st.p_lk.defs ~modname:st.p_module path)
          in
          if mr <> [] then
            List.iter
              (fun a ->
                let h = hint_of_expr a in
                if not (String.equal h "") then
                  st.p_owned <-
                    List.filter
                      (fun (h', ai) ->
                        not (String.equal h' h && List.mem ai.ai_res mr))
                      st.p_owned)
              pos;
          walk_args ()
        end
  in
  let walk_case sub (c : Parsetree.case) () =
    sub.pat sub c.pc_lhs;
    Option.iter (sub.expr sub) c.pc_guard;
    sub.expr sub c.pc_rhs
  in
  let expr sub (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        handle_apply sub loc (Longident.flatten txt) args
    | Pexp_match (scrut, cases) ->
        sub.expr sub scrut;
        walk_arms st e.pexp_loc (List.map (fun c -> walk_case sub c) cases)
    | Pexp_try (body, cases) ->
        let walk_body () =
          st.p_in_try <- st.p_in_try + 1;
          sub.expr sub body;
          st.p_in_try <- st.p_in_try - 1
        in
        walk_arms st e.pexp_loc
          (walk_body :: List.map (fun c -> walk_case sub c) cases)
    | Pexp_ifthenelse (c, t, eo) ->
        sub.expr sub c;
        let arms =
          (fun () -> sub.expr sub t)
          :: (match eo with
             | Some e2 -> [ (fun () -> sub.expr sub e2) ]
             | None -> [ (fun () -> ()) ])
        in
        walk_arms st e.pexp_loc arms
    | Pexp_function cases ->
        walk_arms st e.pexp_loc (List.map (fun c -> walk_case sub c) cases)
    | _ -> default_iterator.expr sub e
  in
  let value_binding sub (vb : Parsetree.value_binding) =
    let saved = st.p_hint in
    (match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> st.p_hint <- txt
    | _ -> ());
    default_iterator.value_binding sub vb;
    st.p_hint <- saved
  in
  let structure_item sub (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let name =
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> txt
              | _ -> "<toplevel>"
            in
            st.p_fn_key <- st.p_module ^ "." ^ name;
            st.p_owned <- [];
            st.p_released <- [];
            st.p_destroyed <- [];
            st.p_raised <- false;
            st.p_in_try <- 0;
            sub.value_binding sub vb)
          bindings
    | _ -> default_iterator.structure_item sub item
  in
  { default_iterator with expr; value_binding; structure_item }

let walk_paths lk fs =
  let st =
    {
      p_rel = fs.fs_rel;
      p_module = module_of fs.fs_rel;
      p_lk = lk;
      p_transfers = fs.fs_transfers;
      p_fn_key = module_of fs.fs_rel ^ ".<toplevel>";
      p_hint = "";
      p_owned = [];
      p_released = [];
      p_destroyed = [];
      p_raised = false;
      p_in_try = 0;
      p_hits = [];
    }
  in
  (match fs.fs_src.Check.src_ast with
  | Ok ast ->
      let it = path_iterator st in
      it.structure it ast
  | Error _ -> ());
  st.p_hits

(* {1 The tree driver} *)

let check_sources sources =
  let scans = List.map scan_source sources in
  let lk = link scans in
  let transfers_of_file = Hashtbl.create 32 in
  List.iter
    (fun fs -> Hashtbl.replace transfers_of_file fs.fs_rel fs.fs_transfers)
    scans;
  let hits = ref [] in
  (* own-escape: direct acquires in functions whose callee cone never
     releases the class, outside the transfer registry and markers. *)
  Array.iter
    (fun f ->
      let binding = binding_of_key f.fn_key in
      let transfers =
        match Hashtbl.find_opt transfers_of_file f.fn_file with
        | Some l -> l
        | None -> []
      in
      List.iter
        (fun a ->
          (match covering transfers a.aq_line with
          | Some d ->
              d.d_used <- true;
              a.aq_cleared <- true
          | None -> ());
          if
            (not a.aq_cleared)
            && Sites.transfer ~file:f.fn_file ~binding a.aq_res <> None
          then a.aq_cleared <- true;
          if (not a.aq_cleared) && not (List.mem a.aq_res lk.rel.(f.fn_id))
          then
            hits :=
              mk f.fn_file a.aq_line a.aq_col Rules.Own_escape
                (Printf.sprintf
                   "%s acquires a %s that no reachable path releases (%s \
                    -> %s); release it, register the transfer in \
                    Lint.Sites, or justify with (* seussown: transfer — \
                    <why> *)"
                   a.aq_op
                   (Sites.resource_name a.aq_res)
                   f.fn_key a.aq_op)
              :: !hits)
        f.fn_acquires)
    lk.fns;
  (* The flow-sensitive typestate rules. *)
  List.iter (fun fs -> hits := walk_paths lk fs @ !hits) scans;
  (* Dead markers. *)
  let dead =
    List.concat_map
      (fun fs ->
        List.filter_map
          (fun d ->
            if d.d_used then None
            else
              Some
                (mk_meta fs.fs_rel d.d_line 0 Rules.unused_allow
                   "transfer marker covers no acquire and silences \
                    nothing; delete it"))
          fs.fs_transfers)
      scans
  in
  let meta = List.concat_map (fun fs -> fs.fs_meta) scans in
  (* Ambiguous suffix-2 resolution, surfaced at each reference exactly
     as the deadlock pass does (identical text, so --pass all dedups). *)
  let ambiguity =
    List.sort_uniq Check.compare_violation
      (Array.to_list lk.fns
      |> List.concat_map (fun f ->
             List.filter_map
               (fun (path, line) ->
                 if Resolve.ambiguous lk.defs ~modname:f.fn_module path then
                   Some
                     (mk_meta f.fn_file line 0 Rules.ambiguous_resolve
                        (Printf.sprintf
                           "%s resolves to definitions in %s; suffix-2 \
                            resolution conflates these same-named modules — \
                            rename one or avoid the shared suffix"
                           (Resolve.suffix2 path)
                           (String.concat " and "
                              (Resolve.defining_files lk.defs
                                 ~modname:f.fn_module path))))
                 else None)
               f.fn_refs))
  in
  List.sort Check.compare_violation (!hits @ dead @ meta @ ambiguity)

let check_tree ?strip_prefix roots =
  check_sources (Check.load_tree ?strip_prefix roots)
