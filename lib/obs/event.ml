type path = Cold | Warm | Hot

let path_name = function Cold -> "cold" | Warm -> "warm" | Hot -> "hot"

let path_of_name = function
  | "cold" -> Some Cold
  | "warm" -> Some Warm
  | "hot" -> Some Hot
  | _ -> None

type t =
  | Invoke_start of { fn_id : string }
  | Invoke_finish of {
      fn_id : string;
      path : path;
      queue : float;
      deploy : float;
      import : float;
      run : float;
      total : float;
      ok : bool;
    }
  | Snapshot_capture of { name : string; pages : int; bytes : int64 }
  | Cow_fault of { uc_id : int }
  | Uc_reclaim of { uc_id : int; fn_id : string }
  | Oom_wake of { free_bytes : int64 }
  | Fault_injected of { site : string; detail : string }
  | Invoke_retry of { fn_id : string }
  | Node_crash of { node_id : int }
  | Fetch_retry of { fn_id : string; attempt : int; backoff : float }
  | Registry_evict of { fn_id : string; node_id : int; reason : string }
  | Registry_repair of { node_id : int; republished : int }
  | Failover of { fn_id : string; from_node : int; to_node : int }
  | Degraded_cold of { fn_id : string }
  | Partition_change of { a : int; b : int; healed : bool }
  | Ws_record of { snapshot : string; pages : int }
  | Ws_prefault of {
      uc_id : int;
      snapshot : string;
      pages : int;
      cow_copied : int;
      zero_filled : int;
    }
  | San_race of {
      cell : string;
      kind : string;
      first_pid : int;
      second_pid : int;
    }
  | San_deadlock of {
      resource : string;
      proc : string;
      pid : int;
      spawned_at : float;
      waiting_since : float;
      in_cycle : bool;
    }
  | Timeline_sample of {
      run_queue : int;
      in_flight : int;
      free_bytes : int64;
      idle_ucs : int;
      cached_snapshots : int;
      stuck_waiters : int;
    }
  | Snap_dedup of {
      snapshot : string;
      delta_pages : int;
      shared_pages : int;
      unique_pages : int;
    }
  | Snap_delta of {
      snapshot : string;
      parent : string;
      delta_pages : int;
      delta_bytes : int64;
    }
  | Snap_evict of {
      fn_id : string;
      pages_freed : int;
      resident_bytes : int64;
      policy : string;
    }
  | San_leak of {
      node : string;
      frames : int;
      snapshot_refs : int;
      pinned : int;
      ucs : int;
    }

let type_name = function
  | Invoke_start _ -> "invoke_start"
  | Invoke_finish _ -> "invoke_finish"
  | Snapshot_capture _ -> "snapshot_capture"
  | Cow_fault _ -> "cow_fault"
  | Uc_reclaim _ -> "uc_reclaim"
  | Oom_wake _ -> "oom_wake"
  | Fault_injected _ -> "fault_injected"
  | Invoke_retry _ -> "invoke_retry"
  | Node_crash _ -> "node_crash"
  | Fetch_retry _ -> "fetch_retry"
  | Registry_evict _ -> "registry_evict"
  | Registry_repair _ -> "registry_repair"
  | Failover _ -> "failover"
  | Degraded_cold _ -> "degraded_cold"
  | Partition_change _ -> "partition_change"
  | Ws_record _ -> "ws_record"
  | Ws_prefault _ -> "ws_prefault"
  | San_race _ -> "san_race"
  | San_deadlock _ -> "san_deadlock"
  | Timeline_sample _ -> "timeline_sample"
  | Snap_dedup _ -> "snap_dedup"
  | Snap_delta _ -> "snap_delta"
  | Snap_evict _ -> "snap_evict"
  | San_leak _ -> "san_leak"

let to_json ~time ev =
  let fields =
    match ev with
    | Invoke_start { fn_id } -> [ ("fn_id", Json.String fn_id) ]
    | Invoke_finish { fn_id; path; queue; deploy; import; run; total; ok } ->
        [
          ("fn_id", Json.String fn_id);
          ("path", Json.String (path_name path));
          ("queue", Json.Float queue);
          ("deploy", Json.Float deploy);
          ("import", Json.Float import);
          ("run", Json.Float run);
          ("total", Json.Float total);
          ("ok", Json.Bool ok);
        ]
    | Snapshot_capture { name; pages; bytes } ->
        [
          ("name", Json.String name);
          ("pages", Json.Int pages);
          ("bytes", Json.Int (Int64.to_int bytes));
        ]
    | Cow_fault { uc_id } -> [ ("uc_id", Json.Int uc_id) ]
    | Uc_reclaim { uc_id; fn_id } ->
        [ ("uc_id", Json.Int uc_id); ("fn_id", Json.String fn_id) ]
    | Oom_wake { free_bytes } ->
        [ ("free_bytes", Json.Int (Int64.to_int free_bytes)) ]
    | Fault_injected { site; detail } ->
        [ ("site", Json.String site); ("detail", Json.String detail) ]
    | Invoke_retry { fn_id } -> [ ("fn_id", Json.String fn_id) ]
    | Node_crash { node_id } -> [ ("node_id", Json.Int node_id) ]
    | Fetch_retry { fn_id; attempt; backoff } ->
        [
          ("fn_id", Json.String fn_id);
          ("attempt", Json.Int attempt);
          ("backoff", Json.Float backoff);
        ]
    | Registry_evict { fn_id; node_id; reason } ->
        [
          ("fn_id", Json.String fn_id);
          ("node_id", Json.Int node_id);
          ("reason", Json.String reason);
        ]
    | Registry_repair { node_id; republished } ->
        [
          ("node_id", Json.Int node_id);
          ("republished", Json.Int republished);
        ]
    | Failover { fn_id; from_node; to_node } ->
        [
          ("fn_id", Json.String fn_id);
          ("from_node", Json.Int from_node);
          ("to_node", Json.Int to_node);
        ]
    | Degraded_cold { fn_id } -> [ ("fn_id", Json.String fn_id) ]
    | Partition_change { a; b; healed } ->
        [ ("a", Json.Int a); ("b", Json.Int b); ("healed", Json.Bool healed) ]
    | Ws_record { snapshot; pages } ->
        [ ("snapshot", Json.String snapshot); ("pages", Json.Int pages) ]
    | Ws_prefault { uc_id; snapshot; pages; cow_copied; zero_filled } ->
        [
          ("uc_id", Json.Int uc_id);
          ("snapshot", Json.String snapshot);
          ("pages", Json.Int pages);
          ("cow_copied", Json.Int cow_copied);
          ("zero_filled", Json.Int zero_filled);
        ]
    | San_race { cell; kind; first_pid; second_pid } ->
        [
          ("cell", Json.String cell);
          ("kind", Json.String kind);
          ("first_pid", Json.Int first_pid);
          ("second_pid", Json.Int second_pid);
        ]
    | San_deadlock { resource; proc; pid; spawned_at; waiting_since; in_cycle }
      ->
        [
          ("resource", Json.String resource);
          ("proc", Json.String proc);
          ("pid", Json.Int pid);
          ("spawned_at", Json.Float spawned_at);
          ("waiting_since", Json.Float waiting_since);
          ("in_cycle", Json.Bool in_cycle);
        ]
    | Timeline_sample
        { run_queue; in_flight; free_bytes; idle_ucs; cached_snapshots; stuck_waiters }
      ->
        [
          ("run_queue", Json.Int run_queue);
          ("in_flight", Json.Int in_flight);
          ("free_bytes", Json.Int (Int64.to_int free_bytes));
          ("idle_ucs", Json.Int idle_ucs);
          ("cached_snapshots", Json.Int cached_snapshots);
          ("stuck_waiters", Json.Int stuck_waiters);
        ]
    | Snap_dedup { snapshot; delta_pages; shared_pages; unique_pages } ->
        [
          ("snapshot", Json.String snapshot);
          ("delta_pages", Json.Int delta_pages);
          ("shared_pages", Json.Int shared_pages);
          ("unique_pages", Json.Int unique_pages);
        ]
    | Snap_delta { snapshot; parent; delta_pages; delta_bytes } ->
        [
          ("snapshot", Json.String snapshot);
          ("parent", Json.String parent);
          ("delta_pages", Json.Int delta_pages);
          ("delta_bytes", Json.Int (Int64.to_int delta_bytes));
        ]
    | Snap_evict { fn_id; pages_freed; resident_bytes; policy } ->
        [
          ("fn_id", Json.String fn_id);
          ("pages_freed", Json.Int pages_freed);
          ("resident_bytes", Json.Int (Int64.to_int resident_bytes));
          ("policy", Json.String policy);
        ]
    | San_leak { node; frames; snapshot_refs; pinned; ucs } ->
        [
          ("node", Json.String node);
          ("frames", Json.Int frames);
          ("snapshot_refs", Json.Int snapshot_refs);
          ("pinned", Json.Int pinned);
          ("ucs", Json.Int ucs);
        ]
  in
  Json.Obj
    (("ts", Json.Float time) :: ("type", Json.String (type_name ev)) :: fields)

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event: missing or bad field %S" name)
  in
  let* time = field "ts" Json.to_float in
  let* kind = field "type" Json.to_str in
  let* ev =
    match kind with
    | "invoke_start" ->
        let* fn_id = field "fn_id" Json.to_str in
        Ok (Invoke_start { fn_id })
    | "invoke_finish" ->
        let* fn_id = field "fn_id" Json.to_str in
        let* path = field "path" (fun j -> Option.bind (Json.to_str j) path_of_name) in
        let* queue = field "queue" Json.to_float in
        let* deploy = field "deploy" Json.to_float in
        let* import = field "import" Json.to_float in
        let* run = field "run" Json.to_float in
        let* total = field "total" Json.to_float in
        let* ok = field "ok" Json.to_bool in
        Ok (Invoke_finish { fn_id; path; queue; deploy; import; run; total; ok })
    | "snapshot_capture" ->
        let* name = field "name" Json.to_str in
        let* pages = field "pages" Json.to_int in
        let* bytes = field "bytes" Json.to_int in
        Ok (Snapshot_capture { name; pages; bytes = Int64.of_int bytes })
    | "cow_fault" ->
        let* uc_id = field "uc_id" Json.to_int in
        Ok (Cow_fault { uc_id })
    | "uc_reclaim" ->
        let* uc_id = field "uc_id" Json.to_int in
        let* fn_id = field "fn_id" Json.to_str in
        Ok (Uc_reclaim { uc_id; fn_id })
    | "oom_wake" ->
        let* free_bytes = field "free_bytes" Json.to_int in
        Ok (Oom_wake { free_bytes = Int64.of_int free_bytes })
    | "fault_injected" ->
        let* site = field "site" Json.to_str in
        let* detail = field "detail" Json.to_str in
        Ok (Fault_injected { site; detail })
    | "invoke_retry" ->
        let* fn_id = field "fn_id" Json.to_str in
        Ok (Invoke_retry { fn_id })
    | "node_crash" ->
        let* node_id = field "node_id" Json.to_int in
        Ok (Node_crash { node_id })
    | "fetch_retry" ->
        let* fn_id = field "fn_id" Json.to_str in
        let* attempt = field "attempt" Json.to_int in
        let* backoff = field "backoff" Json.to_float in
        Ok (Fetch_retry { fn_id; attempt; backoff })
    | "registry_evict" ->
        let* fn_id = field "fn_id" Json.to_str in
        let* node_id = field "node_id" Json.to_int in
        let* reason = field "reason" Json.to_str in
        Ok (Registry_evict { fn_id; node_id; reason })
    | "registry_repair" ->
        let* node_id = field "node_id" Json.to_int in
        let* republished = field "republished" Json.to_int in
        Ok (Registry_repair { node_id; republished })
    | "failover" ->
        let* fn_id = field "fn_id" Json.to_str in
        let* from_node = field "from_node" Json.to_int in
        let* to_node = field "to_node" Json.to_int in
        Ok (Failover { fn_id; from_node; to_node })
    | "degraded_cold" ->
        let* fn_id = field "fn_id" Json.to_str in
        Ok (Degraded_cold { fn_id })
    | "partition_change" ->
        let* a = field "a" Json.to_int in
        let* b = field "b" Json.to_int in
        let* healed = field "healed" Json.to_bool in
        Ok (Partition_change { a; b; healed })
    | "ws_record" ->
        let* snapshot = field "snapshot" Json.to_str in
        let* pages = field "pages" Json.to_int in
        Ok (Ws_record { snapshot; pages })
    | "ws_prefault" ->
        let* uc_id = field "uc_id" Json.to_int in
        let* snapshot = field "snapshot" Json.to_str in
        let* pages = field "pages" Json.to_int in
        let* cow_copied = field "cow_copied" Json.to_int in
        let* zero_filled = field "zero_filled" Json.to_int in
        Ok (Ws_prefault { uc_id; snapshot; pages; cow_copied; zero_filled })
    | "san_race" ->
        let* cell = field "cell" Json.to_str in
        let* kind = field "kind" Json.to_str in
        let* first_pid = field "first_pid" Json.to_int in
        let* second_pid = field "second_pid" Json.to_int in
        Ok (San_race { cell; kind; first_pid; second_pid })
    | "san_deadlock" ->
        let* resource = field "resource" Json.to_str in
        let* proc = field "proc" Json.to_str in
        let* pid = field "pid" Json.to_int in
        let* spawned_at = field "spawned_at" Json.to_float in
        let* waiting_since = field "waiting_since" Json.to_float in
        let* in_cycle = field "in_cycle" Json.to_bool in
        Ok
          (San_deadlock
             { resource; proc; pid; spawned_at; waiting_since; in_cycle })
    | "timeline_sample" ->
        let* run_queue = field "run_queue" Json.to_int in
        let* in_flight = field "in_flight" Json.to_int in
        let* free_bytes = field "free_bytes" Json.to_int in
        let* idle_ucs = field "idle_ucs" Json.to_int in
        let* cached_snapshots = field "cached_snapshots" Json.to_int in
        let* stuck_waiters = field "stuck_waiters" Json.to_int in
        Ok
          (Timeline_sample
             {
               run_queue;
               in_flight;
               free_bytes = Int64.of_int free_bytes;
               idle_ucs;
               cached_snapshots;
               stuck_waiters;
             })
    | "snap_dedup" ->
        let* snapshot = field "snapshot" Json.to_str in
        let* delta_pages = field "delta_pages" Json.to_int in
        let* shared_pages = field "shared_pages" Json.to_int in
        let* unique_pages = field "unique_pages" Json.to_int in
        Ok (Snap_dedup { snapshot; delta_pages; shared_pages; unique_pages })
    | "snap_delta" ->
        let* snapshot = field "snapshot" Json.to_str in
        let* parent = field "parent" Json.to_str in
        let* delta_pages = field "delta_pages" Json.to_int in
        let* delta_bytes = field "delta_bytes" Json.to_int in
        Ok
          (Snap_delta
             { snapshot; parent; delta_pages; delta_bytes = Int64.of_int delta_bytes })
    | "snap_evict" ->
        let* fn_id = field "fn_id" Json.to_str in
        let* pages_freed = field "pages_freed" Json.to_int in
        let* resident_bytes = field "resident_bytes" Json.to_int in
        let* policy = field "policy" Json.to_str in
        Ok
          (Snap_evict
             {
               fn_id;
               pages_freed;
               resident_bytes = Int64.of_int resident_bytes;
               policy;
             })
    | "san_leak" ->
        let* node = field "node" Json.to_str in
        let* frames = field "frames" Json.to_int in
        let* snapshot_refs = field "snapshot_refs" Json.to_int in
        let* pinned = field "pinned" Json.to_int in
        let* ucs = field "ucs" Json.to_int in
        Ok (San_leak { node; frames; snapshot_refs; pinned; ucs })
    | other -> Error (Printf.sprintf "event: unknown type %S" other)
  in
  Ok (time, ev)
