type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* {1 Printing} *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Keep whole values compact; readers coerce Int/Float freely. *)
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_literal f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

(* {1 Parsing: recursive descent over a cursor} *)

exception Syntax of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Syntax (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "bad \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* Only BMP code points below 0x80 appear in our output;
                  encode anything else as UTF-8 for completeness. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Syntax (at, msg) ->
      Error (Printf.sprintf "JSON syntax error at %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
