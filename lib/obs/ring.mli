(** A bounded ring buffer: O(1) push, oldest entries overwritten once
    the capacity is reached. Bounds the event log's memory so telemetry
    can stay on during the 65k-function experiments. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val push : 'a t -> 'a -> unit

val length : 'a t -> int
(** Entries currently held ([<= capacity]). *)

val capacity : 'a t -> int

val dropped : 'a t -> int
(** Entries overwritten so far (total pushes minus retained). *)

val to_list : 'a t -> 'a list
(** Retained entries, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val clear : 'a t -> unit
(** Forget all entries (the drop counter is kept). *)
