type event =
  | Complete of {
      name : string;
      cat : string;
      ts_us : float;
      dur_us : float;
      pid : int;
      tid : int;
      args : (string * Json.t) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      pid : int;
      tid : int;
      args : (string * Json.t) list;
    }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }

let args_field = function
  | [] -> []
  | args -> [ ("args", Json.Obj args) ]

let event_to_json = function
  | Complete { name; cat; ts_us; dur_us; pid; tid; args } ->
      Json.Obj
        ([
           ("name", Json.String name);
           ("cat", Json.String cat);
           ("ph", Json.String "X");
           ("ts", Json.Float ts_us);
           ("dur", Json.Float dur_us);
           ("pid", Json.Int pid);
           ("tid", Json.Int tid);
         ]
        @ args_field args)
  | Instant { name; cat; ts_us; pid; tid; args } ->
      Json.Obj
        ([
           ("name", Json.String name);
           ("cat", Json.String cat);
           ("ph", Json.String "i");
           ("ts", Json.Float ts_us);
           ("pid", Json.Int pid);
           ("tid", Json.Int tid);
           ("s", Json.String "t");
         ]
        @ args_field args)
  | Process_name { pid; name } ->
      Json.Obj
        [
          ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("ts", Json.Float 0.0);
          ("pid", Json.Int pid);
          ("tid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.String name) ]);
        ]
  | Thread_name { pid; tid; name } ->
      Json.Obj
        [
          ("name", Json.String "thread_name");
          ("ph", Json.String "M");
          ("ts", Json.Float 0.0);
          ("pid", Json.Int pid);
          ("tid", Json.Int tid);
          ("args", Json.Obj [ ("name", Json.String name) ]);
        ]

let trace events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string events = Json.to_string (trace events)
