type 'a t = {
  slots : 'a option array;
  mutable head : int;  (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; head = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let dropped t = t.dropped

let push t x =
  let cap = capacity t in
  (* seussheat: cold — the option is the slot's occupancy marker; the ring stores it by design *)
  t.slots.(t.head) <- Some x;
  t.head <- (t.head + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

let iter f t =
  let cap = capacity t in
  let start = (t.head - t.len + cap) mod cap in
  for i = 0 to t.len - 1 do
    match t.slots.((start + i) mod cap) with
    | Some x -> f x
    | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.len <- 0
