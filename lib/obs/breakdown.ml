type phase_means = {
  n : int;
  queue : float;
  deploy : float;
  import : float;
  run : float;
  total : float;
}

type tails = { p50 : float; p90 : float; p99 : float; p999 : float }

type acc = {
  mutable n : int;
  mutable queue : float;
  mutable deploy : float;
  mutable import : float;
  mutable run : float;
  mutable total : float;
  (* Total-latency distribution, for the tail columns: same 30
     bins/decade layout as the metrics registry (~8% quantile error),
     with extrema kept for clamping. *)
  hist : Stats.Histogram.t;
  mutable mn : float;
  mutable mx : float;
}

type t = {
  cold : acc;
  warm : acc;
  hot : acc;
  mutable errs : int;
}

let fresh () =
  {
    n = 0;
    queue = 0.0;
    deploy = 0.0;
    import = 0.0;
    run = 0.0;
    total = 0.0;
    hist = Stats.Histogram.create ~bins_per_decade:30 ();
    mn = infinity;
    mx = neg_infinity;
  }

let acc_of t = function
  | Event.Cold -> t.cold
  | Event.Warm -> t.warm
  | Event.Hot -> t.hot

let attach log =
  let t = { cold = fresh (); warm = fresh (); hot = fresh (); errs = 0 } in
  Log.subscribe log (fun r ->
      match r.Log.ev with
      | Event.Invoke_finish { path; queue; deploy; import; run; total; ok; _ } ->
          let a = acc_of t path in
          a.n <- a.n + 1;
          a.queue <- a.queue +. queue;
          a.deploy <- a.deploy +. deploy;
          a.import <- a.import +. import;
          a.run <- a.run +. run;
          a.total <- a.total +. total;
          Stats.Histogram.add a.hist total;
          if total < a.mn then a.mn <- total;
          if total > a.mx then a.mx <- total;
          if not ok then t.errs <- t.errs + 1
      | _ -> ());
  t

let means (a : acc) : phase_means option =
  if a.n = 0 then None
  else begin
    let n = float_of_int a.n in
    Some
      {
        n = a.n;
        queue = a.queue /. n;
        deploy = a.deploy /. n;
        import = a.import /. n;
        run = a.run /. n;
        total = a.total /. n;
      }
  end

let tails_of (a : acc) =
  if a.n = 0 then None
  else begin
    let q p =
      Float.max a.mn (Float.min (Stats.Histogram.quantile a.hist p) a.mx)
    in
    Some { p50 = q 0.5; p90 = q 0.9; p99 = q 0.99; p999 = q 0.999 }
  end

let per_path t path = means (acc_of t path)
let tails t path = tails_of (acc_of t path)

let merged_accs t =
  let merged = fresh () in
  List.iter
    (fun (a : acc) ->
      merged.n <- merged.n + a.n;
      merged.queue <- merged.queue +. a.queue;
      merged.deploy <- merged.deploy +. a.deploy;
      merged.import <- merged.import +. a.import;
      merged.run <- merged.run +. a.run;
      merged.total <- merged.total +. a.total;
      Stats.Histogram.merge merged.hist ~from:a.hist;
      if a.mn < merged.mn then merged.mn <- a.mn;
      if a.mx > merged.mx then merged.mx <- a.mx)
    [ t.cold; t.warm; t.hot ];
  merged

let overall t = means (merged_accs t)
let overall_tails t = tails_of (merged_accs t)

let errors t = t.errs
