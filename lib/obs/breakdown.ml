type phase_means = {
  n : int;
  queue : float;
  deploy : float;
  import : float;
  run : float;
  total : float;
}

type acc = {
  mutable n : int;
  mutable queue : float;
  mutable deploy : float;
  mutable import : float;
  mutable run : float;
  mutable total : float;
}

type t = {
  cold : acc;
  warm : acc;
  hot : acc;
  mutable errs : int;
}

let fresh () = { n = 0; queue = 0.0; deploy = 0.0; import = 0.0; run = 0.0; total = 0.0 }

let acc_of t = function
  | Event.Cold -> t.cold
  | Event.Warm -> t.warm
  | Event.Hot -> t.hot

let attach log =
  let t = { cold = fresh (); warm = fresh (); hot = fresh (); errs = 0 } in
  Log.subscribe log (fun r ->
      match r.Log.ev with
      | Event.Invoke_finish { path; queue; deploy; import; run; total; ok; _ } ->
          let a = acc_of t path in
          a.n <- a.n + 1;
          a.queue <- a.queue +. queue;
          a.deploy <- a.deploy +. deploy;
          a.import <- a.import +. import;
          a.run <- a.run +. run;
          a.total <- a.total +. total;
          if not ok then t.errs <- t.errs + 1
      | _ -> ());
  t

let means (a : acc) : phase_means option =
  if a.n = 0 then None
  else begin
    let n = float_of_int a.n in
    Some
      {
        n = a.n;
        queue = a.queue /. n;
        deploy = a.deploy /. n;
        import = a.import /. n;
        run = a.run /. n;
        total = a.total /. n;
      }
  end

let per_path t path = means (acc_of t path)

let overall t =
  let merged = fresh () in
  List.iter
    (fun (a : acc) ->
      merged.n <- merged.n + a.n;
      merged.queue <- merged.queue +. a.queue;
      merged.deploy <- merged.deploy +. a.deploy;
      merged.import <- merged.import +. a.import;
      merged.run <- merged.run +. a.run;
      merged.total <- merged.total +. a.total)
    [ t.cold; t.warm; t.hot ];
  means merged

let errors t = t.errs
