(** Per-phase latency breakdown, derived from the event log.

    A live subscriber on a {!Log} that folds every
    [Event.Invoke_finish] into per-path accumulators. Because it
    consumes the bus rather than the ring, it sees every invocation even
    when the ring has evicted early events — this is what gives the
    Fig 4 / Table 1 reports their deploy / import / run columns without
    ad-hoc timers in the experiments. *)

type phase_means = {
  n : int;  (** invocations folded in *)
  queue : float;
  deploy : float;
  import : float;
  run : float;
  total : float;
}
(** All times are means in seconds. *)

type t

val attach : Log.t -> t
(** Subscribe; aggregates every subsequent invocation. *)

val per_path : t -> Event.path -> phase_means option
(** [None] until the first invocation completes on that path. *)

val overall : t -> phase_means option
(** Means across all paths. *)

val errors : t -> int
(** Invocations folded in with [ok = false]. *)
