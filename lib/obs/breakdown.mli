(** Per-phase latency breakdown, derived from the event log.

    A live subscriber on a {!Log} that folds every
    [Event.Invoke_finish] into per-path accumulators. Because it
    consumes the bus rather than the ring, it sees every invocation even
    when the ring has evicted early events — this is what gives the
    Fig 4 / Table 1 reports their deploy / import / run columns without
    ad-hoc timers in the experiments. *)

type phase_means = {
  n : int;  (** invocations folded in *)
  queue : float;
  deploy : float;
  import : float;
  run : float;
  total : float;
}
(** All times are means in seconds. *)

type tails = { p50 : float; p90 : float; p99 : float; p999 : float }
(** Total-latency percentiles in seconds, from a log-binned histogram
    (30 bins/decade, so quantiles carry ~8% quantisation, clamped into
    the observed extrema). *)

type t

val attach : Log.t -> t
(** Subscribe; aggregates every subsequent invocation. *)

val per_path : t -> Event.path -> phase_means option
(** [None] until the first invocation completes on that path. *)

val tails : t -> Event.path -> tails option
(** Total-latency tail percentiles for one path; [None] like
    {!per_path}. *)

val overall : t -> phase_means option
(** Means across all paths. *)

val overall_tails : t -> tails option
(** Tail percentiles across all paths (histograms merged, not
    resampled). *)

val errors : t -> int
(** Invocations folded in with [ok = false]. *)
