(** Chrome trace-event JSON encoding (the format Perfetto and
    [chrome://tracing] load).

    This module is deliberately engine-agnostic — it encodes neutral
    event records whose timestamps are already in microseconds; the
    adapter from [Sim.Trace] spans lives in the [seuss] library, which
    owns the engine-time→microsecond mapping (simulated seconds × 1e6).

    The emitted document is the "JSON object format":
    [{"traceEvents": [...], "displayTimeUnit": "ms"}], with ["X"]
    (complete) events for spans, ["i"] (instant) events for marks, and
    ["M"] metadata records naming processes and threads. *)

type event =
  | Complete of {
      name : string;
      cat : string;
      ts_us : float;  (** start, microseconds *)
      dur_us : float;
      pid : int;
      tid : int;
      args : (string * Json.t) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      pid : int;
      tid : int;
      args : (string * Json.t) list;
    }
  | Process_name of { pid : int; name : string }
      (** Metadata: labels a pid lane in the viewer. *)
  | Thread_name of { pid : int; tid : int; name : string }

val event_to_json : event -> Json.t

val trace : event list -> Json.t
(** The whole document; every event carries the required [ph], [ts],
    [pid], [tid] and [name] fields. *)

val to_string : event list -> string
(** [Json.to_string] of {!trace} — the file body for
    [seussctl trace --chrome]. *)
