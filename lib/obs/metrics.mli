(** The metrics registry: named counters, gauges and histograms with
    labels.

    Instruments are registered by [(name, labels)] — registering the
    same pair twice returns the same instrument, so hot paths can look
    handles up per call without coordination. Reads ({!sum_counters},
    {!dump}) are views over live instruments: consumers such as
    [Seuss.Node.stats] derive their numbers from the registry instead of
    maintaining parallel ints.

    Histograms are log-binned ({!Stats.Histogram}, 30 bins per decade)
    with running sum/min/max, so memory stays bounded over
    million-invocation runs at the price of quantiles quantised to bin
    upper bounds (~8% bin width). They merge ({!merge_hist}) and
    round-trip through {!Json} ({!hist_to_json} / {!hist_of_json}), so
    per-node distributions can be exported as JSONL and folded into
    fleet-wide tails offline. *)

type t

type labels = (string * string) list
(** Order-insensitive: labels are canonicalised (sorted by key) at
    registration. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
(** @raise Invalid_argument if [(name, labels)] already names an
    instrument of a different kind. *)

val inc : ?by:int -> counter -> unit
(** @raise Invalid_argument if [by] is negative (counters only go up). *)

val value : counter -> int

val gauge : t -> ?labels:labels -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> ?labels:labels -> string -> histogram
val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_mean : histogram -> float

val hist_quantile : histogram -> float -> float
(** [hist_quantile h q] for [q] in [0,1]: the upper bound of the bin
    holding the q-th sample, clamped into the observed [min, max]
    (0. when empty). Relative error is bounded by one bin width
    (~8% at 30 bins/decade). *)

val merge_hist : histogram -> from:histogram -> unit
(** Fold [from]'s samples (counts, sum, extrema) into the first
    histogram. @raise Invalid_argument when bucket layouts differ. *)

val hist_to_json : histogram -> Json.t
(** Self-describing codec (layout + sparse non-empty bins + sum and
    extrema); one histogram per line makes a JSONL stream. *)

val hist_of_json : Json.t -> (histogram, string) result
(** Inverse of {!hist_to_json}. The result is detached from any
    registry — use it with the [hist_*] reads and {!merge_hist}. *)

val sum_counters : t -> ?where:labels -> string -> int
(** Sum of every counter named [name] whose labels include all [where]
    pairs — e.g. total invocations across runtimes for one path. *)

(** A point-in-time reading of one instrument, for dashboards/tests. *)
type reading =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      n : int;
      mean : float;
      p50 : float;
      p90 : float;
      p99 : float;
      p999 : float;
    }

val dump : t -> (string * labels * reading) list
(** All instruments, sorted by (name, labels) for deterministic output. *)

val render : t -> string
(** A fixed-width table of {!dump}. *)
