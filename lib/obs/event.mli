(** The structured event taxonomy of the node hot paths.

    Every event the node emits while serving traffic is one of these
    typed variants; they carry the quantities the paper's evaluation
    attributes time and memory to (§6.1's per-phase breakdowns, the
    burst experiments' resource timelines). Events are engine-timestamped
    by {!Log} at emission; the JSON codec round-trips through {!Json}
    so exported JSONL streams can be re-parsed losslessly. *)

type path = Cold | Warm | Hot

val path_name : path -> string
val path_of_name : string -> path option

type t =
  | Invoke_start of { fn_id : string }
      (** An invocation entered the node. *)
  | Invoke_finish of {
      fn_id : string;
      path : path;
      queue : float;
          (** residual time not attributable to a service phase:
              OOM sweeps, core-pool waits outside the phases below *)
      deploy : float;  (** UC deploy from snapshot + TCP connect *)
      import : float;
          (** source import + compile + function-snapshot capture
              (cold path only; [0.] on warm/hot) *)
      run : float;  (** guest executes the function and replies *)
      total : float;
      ok : bool;
    }  (** The invocation left the node (queue-vs-service split). *)
  | Snapshot_capture of { name : string; pages : int; bytes : int64 }
      (** A snapshot was captured; [pages] is the dirty-page diff. *)
  | Cow_fault of { uc_id : int }
      (** A deployed UC copied a shared frame on first write.
          (Zero-fill faults are counted in the metrics registry only —
          per-event they would drown the ring in boot noise.) *)
  | Uc_reclaim of { uc_id : int; fn_id : string }
      (** The OOM daemon destroyed an idle UC. *)
  | Oom_wake of { free_bytes : int64 }
      (** Free memory fell below the headroom; the daemon woke. *)
  | Fault_injected of { site : string; detail : string }
      (** The fault plane fired at an injection site
          ([site] is {!Faults.Fault.site_name}). *)
  | Invoke_retry of { fn_id : string }
      (** A hot UC died mid-request; the node retried internally on the
          warm/cold path. *)
  | Node_crash of { node_id : int }
      (** A whole cluster node died; its registry entries are evicted. *)
  | Fetch_retry of { fn_id : string; attempt : int; backoff : float }
      (** A remote snapshot fetch failed; retrying after an
          exponentially-backed-off, jittered pause. *)
  | Registry_evict of { fn_id : string; node_id : int; reason : string }
      (** A dead or stale holder entry was dropped from the registry. *)
  | Registry_repair of { node_id : int; republished : int }
      (** After a node crash, surviving holders re-published
          [republished] snapshot locations. *)
  | Failover of { fn_id : string; from_node : int; to_node : int }
      (** An invocation was re-routed away from a node that could not be
          served locally or by fetch. *)
  | Degraded_cold of { fn_id : string }
      (** Holders exist but none was reachable: the cluster degraded to
          a local cold start rather than failing the invocation. *)
  | Partition_change of { a : int; b : int; healed : bool }
      (** The fabric between nodes [a] and [b] was cut or healed. *)
  | Ws_record of { snapshot : string; pages : int }
      (** The first invocation from [snapshot] completed with working-set
          recording on; [pages] vpns were captured for future prefault. *)
  | Ws_prefault of {
      uc_id : int;
      snapshot : string;
      pages : int;  (** working-set size requested *)
      cow_copied : int;
      zero_filled : int;
    }
      (** A warm deploy batch-installed [snapshot]'s recorded working
          set into UC [uc_id] before the guest ran. Pages neither copied
          nor zero-filled were already mapped in the snapshot stack. *)
  | San_race of {
      cell : string;  (** registered shared-cell name, e.g. ["registry.table"] *)
      kind : string;  (** {!Sim.Hb.kind_name}: ["write/write"] or ["read/write"] *)
      first_pid : int;
      second_pid : int;
    }
      (** The schedule sanitizer observed two same-timestamp accesses to
          a registered shared cell with no happens-before edge between
          the owning processes. Only emitted when {!Sim.Hb} is armed. *)
  | San_deadlock of {
      resource : string;  (** e.g. ["semaphore#3"], ["ivar#12"] *)
      proc : string;  (** process name at spawn — the waiter's provenance *)
      pid : int;
      spawned_at : float;  (** simulated time the waiter was spawned *)
      waiting_since : float;  (** simulated time it parked *)
      in_cycle : bool;  (** on a wait-for cycle (true deadlock), vs merely
                            stranded (lost wakeup) *)
    }
      (** The deadlock sanitizer found this process still parked when
          the simulation quiesced: nobody can ever wake it. Only
          emitted when the engine's detector is armed
          ([SEUSS_DEADLOCK=1] or [~deadlock:true] at
          [Sim.Engine.create]). *)
  | Timeline_sample of {
      run_queue : int;  (** events pending in the engine heap *)
      in_flight : int;  (** invocations currently inside the node *)
      free_bytes : int64;
      idle_ucs : int;
      cached_snapshots : int;  (** function snapshots cached *)
      stuck_waiters : int;  (** non-daemon processes parked right now *)
    }
      (** One periodic gauge sample from the resource timeline sampler
          ([Seuss.Timeline], armed by [SEUSS_TIMELINE=1]); the raw
          material for queue-depth and memory-pressure timelines. *)
  | Snap_dedup of {
      snapshot : string;
      delta_pages : int;  (** pages in the snapshot's delta layer *)
      shared_pages : int;
          (** delta pages whose content matched an already-indexed page
              and were rewritten to share its frame *)
      unique_pages : int;  (** delta pages first seen at this insert *)
    }
      (** The snapshot store content-indexed a newly inserted snapshot:
          [shared_pages + unique_pages = delta_pages]. *)
  | Snap_delta of {
      snapshot : string;
      parent : string;  (** the base layer the delta is stored against *)
      delta_pages : int;
      delta_bytes : int64;
    }
      (** The snapshot store recorded a snapshot as a delta over its
          parent layer: only [delta_pages] differ from the base. *)
  | Snap_evict of {
      fn_id : string;
      pages_freed : int;
          (** content pages whose last holder this eviction dropped *)
      resident_bytes : int64;  (** store residency after the eviction *)
      policy : string;  (** {!Seuss.Config.policy_name}: "lru" | "ws" *)
    }
      (** The byte-budgeted snapshot cache evicted a function snapshot;
          its next invocation falls back to the cold path. *)
  | San_leak of {
      node : string;  (** node name, e.g. ["node0"] *)
      frames : int;  (** physical frames whose refcount exceeds what the
                         node's live tables account for *)
      snapshot_refs : int;
          (** snapshot dependent-count surplus over live importers *)
      pinned : int;  (** snapshots still pinned by an invocation window *)
      ucs : int;  (** UCs created but never destroyed nor cached *)
    }
      (** The ownership census counted resources still held at engine
          quiescence beyond the node's deliberate caches. Only emitted
          when the census is armed ([SEUSS_OWN=1] or [~own:true] at
          [Sim.Engine.create]) {e and} at least one count is nonzero —
          a healthy armed run emits nothing, keeping its event stream
          byte-identical to an unarmed one. *)

val type_name : t -> string
(** The discriminator stored in the ["type"] JSON field. *)

val to_json : time:float -> t -> Json.t

val of_json : Json.t -> (float * t, string) result
(** Inverse of {!to_json}: recover the timestamp and event. *)
