(** The structured event taxonomy of the node hot paths.

    Every event the node emits while serving traffic is one of these
    typed variants; they carry the quantities the paper's evaluation
    attributes time and memory to (§6.1's per-phase breakdowns, the
    burst experiments' resource timelines). Events are engine-timestamped
    by {!Log} at emission; the JSON codec round-trips through {!Json}
    so exported JSONL streams can be re-parsed losslessly. *)

type path = Cold | Warm | Hot

val path_name : path -> string
val path_of_name : string -> path option

type t =
  | Invoke_start of { fn_id : string }
      (** An invocation entered the node. *)
  | Invoke_finish of {
      fn_id : string;
      path : path;
      queue : float;
          (** residual time not attributable to a service phase:
              OOM sweeps, core-pool waits outside the phases below *)
      deploy : float;  (** UC deploy from snapshot + TCP connect *)
      import : float;
          (** source import + compile + function-snapshot capture
              (cold path only; [0.] on warm/hot) *)
      run : float;  (** guest executes the function and replies *)
      total : float;
      ok : bool;
    }  (** The invocation left the node (queue-vs-service split). *)
  | Snapshot_capture of { name : string; pages : int; bytes : int64 }
      (** A snapshot was captured; [pages] is the dirty-page diff. *)
  | Cow_fault of { uc_id : int }
      (** A deployed UC copied a shared frame on first write.
          (Zero-fill faults are counted in the metrics registry only —
          per-event they would drown the ring in boot noise.) *)
  | Uc_reclaim of { uc_id : int; fn_id : string }
      (** The OOM daemon destroyed an idle UC. *)
  | Oom_wake of { free_bytes : int64 }
      (** Free memory fell below the headroom; the daemon woke. *)

val type_name : t -> string
(** The discriminator stored in the ["type"] JSON field. *)

val to_json : time:float -> t -> Json.t

val of_json : Json.t -> (float * t, string) result
(** Inverse of {!to_json}: recover the timestamp and event. *)
