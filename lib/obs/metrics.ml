type labels = (string * string) list

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  h : Stats.Histogram.t;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { table : (string * labels, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let canon labels = List.sort compare labels

let register t ~labels name make describe_kind match_kind =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.table key with
  | None ->
      let fresh = make () in
      Hashtbl.replace t.table key fresh;
      (match match_kind fresh with Some v -> v | None -> assert false)
  | Some existing -> (
      match match_kind existing with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered, not as a %s"
               name describe_kind))

let counter t ?(labels = []) name =
  register t ~labels name
    (fun () -> C { c = 0 })
    "counter"
    (function C c -> Some c | _ -> None)

let inc ?(by = 1) counter =
  if by < 0 then invalid_arg "Metrics.inc: counters only go up";
  counter.c <- counter.c + by

let value counter = counter.c

let gauge t ?(labels = []) name =
  register t ~labels name
    (fun () -> G { g = 0.0 })
    "gauge"
    (function G g -> Some g | _ -> None)

let set_gauge gauge v = gauge.g <- v
let gauge_value gauge = gauge.g

let histogram t ?(labels = []) name =
  register t ~labels name
    (fun () ->
      H { h = Stats.Histogram.create (); sum = 0.0; mn = infinity; mx = neg_infinity })
    "histogram"
    (function H h -> Some h | _ -> None)

let observe hist v =
  Stats.Histogram.add hist.h v;
  hist.sum <- hist.sum +. v;
  if v < hist.mn then hist.mn <- v;
  if v > hist.mx then hist.mx <- v

let hist_count hist = Stats.Histogram.count hist.h

let hist_mean hist =
  let n = hist_count hist in
  if n = 0 then 0.0 else hist.sum /. float_of_int n

let hist_quantile hist q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.hist_quantile: q in [0,1]";
  let n = hist_count hist in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) + 1 in
    let result = ref hist.mx in
    (try
       ignore
         (Stats.Histogram.fold hist.h ~init:0 ~f:(fun seen ~lo:_ ~hi ~count ->
              let seen = seen + count in
              if seen >= rank then begin
                (* Clamp the bin bound by the observed extrema so tail
                   quantiles stay inside [min, max]. *)
                result := Float.min hi hist.mx;
                raise Exit
              end;
              seen))
     with Exit -> ());
    Float.max !result hist.mn
  end

let sum_counters t ?(where = []) name =
  Det.fold
    (fun (n, labels) inst acc ->
      match inst with
      | C c
        when n = name
             && List.for_all (fun kv -> List.mem kv labels) where ->
          acc + c.c
      | _ -> acc)
    t.table 0

type reading =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { n : int; mean : float; p50 : float; p99 : float }

let dump t =
  (* Det.bindings sorts by the (name, labels) key, which is exactly the
     output order dump always promised. *)
  List.map
    (fun ((name, labels), inst) ->
      let reading =
        match inst with
        | C c -> Counter_v c.c
        | G g -> Gauge_v g.g
        | H h ->
            Histogram_v
              {
                n = hist_count h;
                mean = hist_mean h;
                p50 = hist_quantile h 0.5;
                p99 = hist_quantile h 0.99;
              }
      in
      (name, labels, reading))
    (Det.bindings t.table)

let render t =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("metric", Stats.Tablefmt.Left);
          ("labels", Stats.Tablefmt.Left);
          ("value", Stats.Tablefmt.Right);
        ]
  in
  List.iter
    (fun (name, labels, reading) ->
      let labels_text =
        String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
      in
      let value_text =
        match reading with
        | Counter_v c -> string_of_int c
        | Gauge_v g -> Printf.sprintf "%.3g" g
        | Histogram_v { n; mean; p50; p99 } ->
            Printf.sprintf "n=%d mean=%.3g p50=%.3g p99=%.3g" n mean p50 p99
      in
      Stats.Tablefmt.add_row table [ name; labels_text; value_text ])
    (dump t);
  Stats.Tablefmt.render table
