type labels = (string * string) list

type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Running stats live in their own all-float record: stores into a flat
   float record are unboxed, so [observe] allocates nothing. Inlined into
   [histogram] (a mixed record) every store would box. *)
type hstats = { mutable sum : float; mutable mn : float; mutable mx : float }
type histogram = { h : Stats.Histogram.t; s : hstats }

type instrument = C of counter | G of gauge | H of histogram

type t = { table : (string * labels, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let canon labels = List.sort compare labels

let register t ~labels name make describe_kind match_kind =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.table key with
  | None ->
      let fresh = make () in
      Hashtbl.replace t.table key fresh;
      (match match_kind fresh with Some v -> v | None -> assert false)
  | Some existing -> (
      match match_kind existing with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered, not as a %s"
               name describe_kind))

let counter t ?(labels = []) name =
  register t ~labels name
    (fun () -> C { c = 0 })
    "counter"
    (function C c -> Some c | _ -> None)

let inc ?(by = 1) counter =
  if by < 0 then invalid_arg "Metrics.inc: counters only go up";
  counter.c <- counter.c + by

let value counter = counter.c

let gauge t ?(labels = []) name =
  register t ~labels name
    (fun () -> G { g = 0.0 })
    "gauge"
    (function G g -> Some g | _ -> None)

let set_gauge gauge v = gauge.g <- v
let gauge_value gauge = gauge.g

(* 30 bins per decade bounds the quantile quantisation at
   10^(1/30) - 1 ~ 8% — tight enough for p999 columns — while a
   histogram stays 210 ints. *)
let hist_bins_per_decade = 30

let fresh_hist () =
  {
    h = Stats.Histogram.create ~bins_per_decade:hist_bins_per_decade ();
    s = { sum = 0.0; mn = infinity; mx = neg_infinity };
  }

let histogram t ?(labels = []) name =
  register t ~labels name
    (fun () -> H (fresh_hist ()))
    "histogram"
    (function H h -> Some h | _ -> None)

let observe hist v =
  Stats.Histogram.add hist.h v;
  let s = hist.s in
  (* seussheat: cold — hstats is a flat float record; this store is unboxed *)
  s.sum <- s.sum +. v;
  if v < s.mn then s.mn <- v;
  if v > s.mx then s.mx <- v

let hist_count hist = Stats.Histogram.count hist.h

let hist_mean hist =
  let n = hist_count hist in
  if n = 0 then 0.0 else hist.s.sum /. float_of_int n

let hist_quantile hist q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.hist_quantile: q in [0,1]";
  if hist_count hist = 0 then 0.0
  else
    (* Clamp the bin bound by the observed extrema so tail quantiles
       stay inside [min, max]. *)
    Float.max hist.s.mn (Float.min (Stats.Histogram.quantile hist.h q) hist.s.mx)

let merge_hist hist ~from =
  Stats.Histogram.merge hist.h ~from:from.h;
  let s = hist.s and f = from.s in
  s.sum <- s.sum +. f.sum;
  if f.mn < s.mn then s.mn <- f.mn;
  if f.mx > s.mx then s.mx <- f.mx

let hist_to_json hist =
  let counts =
    List.rev
      (Stats.Histogram.fold hist.h
         ~init:(0, [])
         ~f:(fun (i, acc) ~lo:_ ~hi:_ ~count ->
           (i + 1, if count = 0 then acc else Json.List [ Json.Int i; Json.Int count ] :: acc))
       |> snd)
  in
  let base =
    [
      ("kind", Json.String "histogram");
      ("lo", Json.Float (Stats.Histogram.lo hist.h));
      ("bins_per_decade", Json.Int (Stats.Histogram.bins_per_decade hist.h));
      ("bin_count", Json.Int (Stats.Histogram.bin_count hist.h));
      ("n", Json.Int (hist_count hist));
      ("sum", Json.Float hist.s.sum);
      ("counts", Json.List counts);
    ]
  in
  (* min/max are infinities when empty — unrepresentable in JSON, so
     they appear only once a sample exists. *)
  Json.Obj
    (if hist_count hist = 0 then base
     else base @ [ ("min", Json.Float hist.s.mn); ("max", Json.Float hist.s.mx) ])

let hist_of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "histogram: missing or bad field %S" name)
  in
  let* lo = field "lo" Json.to_float in
  let* bins_per_decade = field "bins_per_decade" Json.to_int in
  let* bin_count = field "bin_count" Json.to_int in
  let* n = field "n" Json.to_int in
  let* sum = field "sum" Json.to_float in
  let* entries =
    match Json.member "counts" json with
    | Some (Json.List l) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Json.List [ i; c ] -> (
                match (Json.to_int i, Json.to_int c) with
                | Some i, Some c -> Ok ((i, c) :: acc)
                | _ -> Error "histogram: bad counts entry")
            | _ -> Error "histogram: bad counts entry")
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "histogram: missing or bad field \"counts\""
  in
  let* h =
    match Stats.Histogram.restore ~lo ~bins_per_decade ~bin_count entries with
    | h -> Ok h
    | exception Invalid_argument msg -> Error msg
  in
  if Stats.Histogram.count h <> n then Error "histogram: n disagrees with counts"
  else
    let mn = Option.bind (Json.member "min" json) Json.to_float in
    let mx = Option.bind (Json.member "max" json) Json.to_float in
    Ok
      {
        h;
        s =
          {
            sum;
            mn = Option.value mn ~default:infinity;
            mx = Option.value mx ~default:neg_infinity;
          };
      }

let sum_counters t ?(where = []) name =
  Det.fold
    (fun (n, labels) inst acc ->
      match inst with
      | C c
        when n = name
             && List.for_all (fun kv -> List.mem kv labels) where ->
          acc + c.c
      | _ -> acc)
    t.table 0

type reading =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      n : int;
      mean : float;
      p50 : float;
      p90 : float;
      p99 : float;
      p999 : float;
    }

let dump t =
  (* Det.bindings sorts by the (name, labels) key, which is exactly the
     output order dump always promised. *)
  List.map
    (fun ((name, labels), inst) ->
      let reading =
        match inst with
        | C c -> Counter_v c.c
        | G g -> Gauge_v g.g
        | H h ->
            Histogram_v
              {
                n = hist_count h;
                mean = hist_mean h;
                p50 = hist_quantile h 0.5;
                p90 = hist_quantile h 0.9;
                p99 = hist_quantile h 0.99;
                p999 = hist_quantile h 0.999;
              }
      in
      (name, labels, reading))
    (Det.bindings t.table)

let render t =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("metric", Stats.Tablefmt.Left);
          ("labels", Stats.Tablefmt.Left);
          ("value", Stats.Tablefmt.Right);
        ]
  in
  List.iter
    (fun (name, labels, reading) ->
      let labels_text =
        String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
      in
      let value_text =
        match reading with
        | Counter_v c -> string_of_int c
        | Gauge_v g -> Printf.sprintf "%.3g" g
        | Histogram_v { n; mean; p50; p90; p99; p999 } ->
            Printf.sprintf "n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g p999=%.3g"
              n mean p50 p90 p99 p999
      in
      Stats.Tablefmt.add_row table [ name; labels_text; value_text ])
    (dump t);
  Stats.Tablefmt.render table
