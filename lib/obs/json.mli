(** A minimal JSON value: enough to emit and re-parse the telemetry
    JSONL streams without an external dependency.

    Printing is canonical (no whitespace, keys in insertion order,
    floats via ["%.17g"] so values round-trip bit-exactly); the parser
    accepts any RFC 8259 document produced by {!to_string} plus
    insignificant whitespace. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** [Error msg] names the offset of the first syntax error. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** Numeric coercion: accepts [Int] and [Float] (a whole-valued float
    prints as an integer literal, so readers must accept both). *)

val to_int : t -> int option

val to_str : t -> string option

val to_bool : t -> bool option
