(** The structured event log: a typed, engine-timestamped event bus.

    Emitted events are stamped with the injected clock (the simulation
    engine's [now] in practice — the log itself is engine-agnostic so
    lower layers can host one), retained in a bounded {!Ring}, and
    fanned out to any attached subscribers. Emission costs no simulated
    time: telemetry never perturbs the quantities it measures. *)

type record = { time : float; ev : Event.t }

type t

val default_capacity : int
(** Ring size when [capacity] is not given (16384 events). *)

val create : ?capacity:int -> clock:(unit -> float) -> unit -> t

val emit : t -> Event.t -> unit
(** Stamp with [clock ()], retain, and deliver to subscribers (in
    subscription order). *)

val subscribe : t -> (record -> unit) -> unit
(** Attach a live consumer; it sees every event from now on, including
    ones the ring later evicts. *)

val set_on_drop : t -> (unit -> unit) -> unit
(** Called once per record the ring evicts (before subscribers see the
    new record). Default: nothing. [Seuss.Osenv] points this at an
    [obs_events_dropped_total] counter so eviction is a visible metric
    rather than silent truncation. *)

val records : t -> record list
(** Retained records, oldest first. *)

val emitted : t -> int
(** Total events ever emitted (retained + evicted). *)

val dropped : t -> int
(** Events evicted from the ring so far. *)

val clear : t -> unit

val to_jsonl : t -> string
(** One JSON object per line (trailing newline), oldest first. *)

val parse_jsonl : string -> (record list, string) result
(** Inverse of {!to_jsonl}; blank lines are skipped. [Error] names the
    first offending line. *)
