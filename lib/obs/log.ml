type record = { time : float; ev : Event.t }

type t = {
  clock : unit -> float;
  ring : record Ring.t;
  mutable subscribers : (record -> unit) list;  (* subscription order *)
  mutable emitted : int;
  mutable on_drop : unit -> unit;
}

let default_capacity = 16384

let create ?(capacity = default_capacity) ~clock () =
  {
    clock;
    ring = Ring.create ~capacity;
    subscribers = [];
    emitted = 0;
    on_drop = ignore;
  }

let set_on_drop t f = t.on_drop <- f

(* Top-level so emitting to subscribers allocates no iterator closure. *)
let rec notify r = function
  | [] -> ()
  | f :: rest ->
      f r;
      notify r rest

let emit t ev =
  (* seussheat: cold — this record is the emitted payload itself, retained by the ring *)
  let r = { time = t.clock (); ev } in
  t.emitted <- t.emitted + 1;
  let dropped_before = Ring.dropped t.ring in
  Ring.push t.ring r;
  if Ring.dropped t.ring > dropped_before then t.on_drop ();
  notify r t.subscribers

let subscribe t f =
  (* Append (subscription is rare; emission is the hot path). *)
  t.subscribers <- t.subscribers @ [ f ]
let records t = Ring.to_list t.ring
let emitted t = t.emitted
let dropped t = Ring.dropped t.ring
let clear t = Ring.clear t.ring

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Ring.iter
    (fun r ->
      Buffer.add_string buf (Json.to_string (Event.to_json ~time:r.time r.ev));
      Buffer.add_char buf '\n')
    t.ring;
  Buffer.contents buf

let parse_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else begin
          match Json.of_string line with
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
          | Ok json -> (
              match Event.of_json json with
              | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
              | Ok (time, ev) -> go (lineno + 1) ({ time; ev } :: acc) rest)
        end
  in
  go 1 [] lines
