(* Guest kernel + rootfs + Node.js, nothing shared: 88 GB / ~195 MB
   lands at the paper's ~450 instances. *)
let vm_pages = 50_000

let boot_time = 3.1

let device_parallelism = 4

type t = {
  env : Seuss.Osenv.t;
  setup : Sim.Semaphore.t;
  mutable count : int;
  mutable spaces : Mem.Addr_space.t list;
}

let create env =
  (* seussdead: lock firecracker.setup *)
  { env; setup = Sim.Semaphore.create device_parallelism; count = 0; spaces = [] }

let create_instance t () =
  let space = Mem.Addr_space.create t.env.Seuss.Osenv.frames in
  match
    Sim.Semaphore.with_permit t.setup (fun () ->
        Seuss.Osenv.burn t.env boot_time;
        Mem.Addr_space.write_range space ~vpn:0 ~pages:vm_pages)
  with
  | _stats ->
      t.spaces <- space :: t.spaces;
      t.count <- t.count + 1;
      true
  | exception Mem.Frame.Out_of_memory ->
      Mem.Addr_space.release space;
      false

let destroy_instance t =
  match t.spaces with
  | [] -> ()
  | space :: rest ->
      t.spaces <- rest;
      Mem.Addr_space.release space;
      t.count <- t.count - 1

let marginal_bytes t () =
  if t.count = 0 then 0L
  else
    Int64.div
      (Mem.Frame.used_bytes t.env.Seuss.Osenv.frames)
      (Int64.of_int t.count)

let backend t =
  {
    Backend_intf.name = "Firecracker microVM";
    create_instance = create_instance t;
    instance_count = (fun () -> t.count);
    marginal_bytes = marginal_bytes t;
  }
