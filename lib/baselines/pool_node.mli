(** Invocation service over the Table 3 instance backends.

    {!Firecracker_backend} and {!Process_backend} model instance
    {e creation} (latency, serialization, memory); this node adds the
    minimal serving loop the open-loop load experiments need on top of
    either: a per-function warm-instance cache with LRU eviction, a
    creation path that charges the backend's full cost, and an import
    step that loads the function's code into a fresh instance. It is
    deliberately simpler than {!Linux_node} (no bridge, no stemcells):
    these baselines exist to place microVM- and process-grade cold
    starts on the latency-vs-load curves, not to re-model OpenWhisk.

    An invocation is served warm when an idle instance already holds the
    function; otherwise one is created (evicting the LRU idle instance
    when at capacity or out of memory), the code is imported, and the
    action runs. Creation failures with nothing left to evict surface as
    [`Overloaded]. *)

type kind = Firecracker | Process

type config = {
  cache_limit : int;  (** instances, busy + idle, before LRU eviction *)
  init_time : float;  (** importing function code into a new instance *)
  dispatch_time : float;  (** per-request handling inside the instance *)
}

val default_config : kind -> config
(** 55 ms init and 1.2 ms dispatch (the OpenWhisk operating point);
    limit 1024 — memory binds first for microVMs (~450 in 88 GB). *)

type stats = {
  creates : int;
  warm_hits : int;
  evictions : int;
  errors : int;
}

type t

val create : ?config:config -> kind:kind -> Seuss.Osenv.t -> t

val kind : t -> kind

val invoke :
  t -> fn_id:string -> action:Backend_intf.action -> (unit, [ `Overloaded ]) result
(** Serve one invocation to completion (blocking). *)

val instance_count : t -> int

val idle_count : t -> int

val stats : t -> stats
