type kind = Firecracker | Process

type config = {
  cache_limit : int;
  init_time : float;
  dispatch_time : float;
}

let default_config _kind =
  { cache_limit = 1024; init_time = 0.055; dispatch_time = 1.2e-3 }

type stats = {
  creates : int;
  warm_hits : int;
  evictions : int;
  errors : int;
}

type instance = {
  mutable i_fn : string;
  mutable busy : bool;
  mutable dead : bool;
}

type t = {
  env : Seuss.Osenv.t;
  cfg : config;
  kind : kind;
  backend : Backend_intf.t;
  destroy : unit -> unit;
  warm : (string, instance Queue.t) Hashtbl.t;
  (* Idle instances in rough LRU order (stale entries re-validated). *)
  lru : instance Queue.t;
  mutable total : int;
  mutable s_creates : int;
  mutable s_warm : int;
  mutable s_evictions : int;
  mutable s_errors : int;
}

let create ?config ~kind env =
  let cfg = match config with Some c -> c | None -> default_config kind in
  let backend, destroy =
    match kind with
    | Firecracker ->
        let b = Firecracker_backend.create env in
        ( Firecracker_backend.backend b,
          fun () -> Firecracker_backend.destroy_instance b )
    | Process ->
        let b = Process_backend.create env in
        (Process_backend.backend b, fun () -> Process_backend.destroy_instance b)
  in
  {
    env;
    cfg;
    kind;
    backend;
    destroy;
    warm = Hashtbl.create 1024;
    lru = Queue.create ();
    total = 0;
    s_creates = 0;
    s_warm = 0;
    s_evictions = 0;
    s_errors = 0;
  }

let kind t = t.kind
let instance_count t = t.total

let idle_count t =
  Det.fold
    (fun _ q acc ->
      Queue.fold (fun acc i -> if i.dead || i.busy then acc else acc + 1) acc q)
    t.warm 0

let stats t =
  {
    creates = t.s_creates;
    warm_hits = t.s_warm;
    evictions = t.s_evictions;
    errors = t.s_errors;
  }

(* {1 Cache bookkeeping} *)

let pop_warm t fn_id =
  match Hashtbl.find_opt t.warm fn_id with
  | None -> None
  | Some q ->
      let rec take () =
        match Queue.take_opt q with
        | None -> None
        | Some i -> if i.dead || i.busy then take () else Some i
      in
      take ()

let push_warm t i =
  let q =
    match Hashtbl.find_opt t.warm i.i_fn with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.warm i.i_fn q;
        q
  in
  Queue.add i q;
  Queue.add i t.lru

(* Marking [dead] (rather than splicing queues) lets pop_warm and the
   LRU scan skip stale entries lazily. *)
let evict_one_idle t =
  let rec scan () =
    match Queue.take_opt t.lru with
    | None -> false
    | Some i ->
        if i.dead || i.busy then scan ()
        else begin
          i.dead <- true;
          t.destroy ();
          t.total <- t.total - 1;
          t.s_evictions <- t.s_evictions + 1;
          true
        end
  in
  scan ()

(* {1 Invocation} *)

let run t i action =
  i.busy <- true;
  Seuss.Osenv.burn t.env t.cfg.dispatch_time;
  (match action with
  | Backend_intf.Nop -> Seuss.Osenv.burn t.env 0.3e-3
  | Backend_intf.Cpu_ms ms -> Seuss.Osenv.burn t.env (ms /. 1000.0)
  | Backend_intf.Io_call (_url, delay) -> Sim.Engine.sleep delay);
  i.busy <- false;
  push_warm t i;
  Ok ()

let create_one t ~fn_id =
  if t.backend.Backend_intf.create_instance () then begin
    t.total <- t.total + 1;
    t.s_creates <- t.s_creates + 1;
    (* Import the function's code into the fresh instance. *)
    Seuss.Osenv.burn t.env t.cfg.init_time;
    Some { i_fn = fn_id; busy = false; dead = false }
  end
  else None

let overloaded t =
  t.s_errors <- t.s_errors + 1;
  Error `Overloaded

let invoke t ~fn_id ~action =
  match pop_warm t fn_id with
  | Some i ->
      t.s_warm <- t.s_warm + 1;
      run t i action
  | None -> (
      if t.total >= t.cfg.cache_limit then ignore (evict_one_idle t);
      if t.total >= t.cfg.cache_limit then overloaded t
      else
        match create_one t ~fn_id with
        | Some i -> run t i action
        | None ->
            (* Out of memory: reclaim one idle instance and retry once. *)
            if evict_one_idle t then
              match create_one t ~fn_id with
              | Some i -> run t i action
              | None -> overloaded t
            else overloaded t)
