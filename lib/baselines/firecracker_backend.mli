(** Kata Containers / Firecracker microVMs (Table 3 row 1).

    Each instance is the same Node.js container image booted inside a
    dedicated Firecracker VM: a full guest Linux kernel plus the
    container runtime, with no cross-instance page sharing. The paper
    measures >3 s to deploy one instance, 1.3 creations/s at 16-way
    parallelism, and ~450 instances in 88 GB (the >100 MB kernel
    overhead per instance). *)

type t

val create : Seuss.Osenv.t -> t

val backend : t -> Backend_intf.t

val destroy_instance : t -> unit
(** Tear down the most recently created microVM and release its frames
    (instant in the model: VMM teardown is off the serving path). No-op
    when none exist. *)

val vm_pages : int
(** Private pages per microVM (guest kernel + userspace + runtime). *)

val boot_time : float

val device_parallelism : int
(** Host-side VM setup (tap devices, jailer, VMM spawn) serializes at
    this effective parallelism. *)
