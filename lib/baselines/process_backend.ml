(* Node.js text + shared libraries, mapped once. *)
let shared_image_pages = 8_960 (* ~35 MB *)

(* Private heap/stack after initialization: calibrated so 88 GB holds
   ~4,200 processes (Table 3). *)
let private_pages_per_process = 5_460 (* ~21.3 MB *)

(* fork + exec + node startup + driver listen, per instance. *)
let creation_cpu_time = 0.350

type t = {
  env : Seuss.Osenv.t;
  image : Mem.Page_table.t;
  mutable count : int;
  mutable spaces : Mem.Addr_space.t list;
}

let create env =
  let image_space = Mem.Addr_space.create env.Seuss.Osenv.frames in
  ignore (Mem.Addr_space.write_range image_space ~vpn:0 ~pages:shared_image_pages);
  Mem.Addr_space.freeze image_space;
  { env; image = Mem.Addr_space.table image_space; count = 0; spaces = [] }

let create_instance t () =
  match
    Seuss.Osenv.burn t.env creation_cpu_time;
    let space =
      Mem.Addr_space.of_table ~mapped_hint:shared_image_pages
        t.env.Seuss.Osenv.frames t.image
    in
    (* The process dirties its private heap during initialization. *)
    (try
       ignore
         (Mem.Addr_space.write_range space ~vpn:shared_image_pages
            ~pages:private_pages_per_process);
       Some space
     with Mem.Frame.Out_of_memory ->
       Mem.Addr_space.release space;
       None)
  with
  | Some space ->
      t.spaces <- space :: t.spaces;
      t.count <- t.count + 1;
      true
  | None -> false
  | exception Mem.Frame.Out_of_memory -> false

let destroy_instance t =
  match t.spaces with
  | [] -> ()
  | space :: rest ->
      t.spaces <- rest;
      Mem.Addr_space.release space;
      t.count <- t.count - 1

let marginal_bytes t () =
  if t.count = 0 then 0L
  else
    Int64.div
      (Mem.Frame.used_bytes t.env.Seuss.Osenv.frames)
      (Int64.of_int t.count)

let backend t =
  {
    Backend_intf.name = "Linux process";
    create_instance = create_instance t;
    instance_count = (fun () -> t.count);
    marginal_bytes = marginal_bytes t;
  }
