type config = {
  container_cache_limit : int;
  stemcell_count : int;
  init_time : float;
  dispatch_time : float;
  invoke_timeout : float;
  capacity_retry_interval : float;
}

let default_config =
  {
    container_cache_limit = 1024;
    stemcell_count = 0;
    init_time = 0.055;
    dispatch_time = 1.2e-3;
    invoke_timeout = 60.0;
    capacity_retry_interval = 0.1;
  }

type fn = { fn_id : string; action : Backend_intf.action }

type invoke_error = [ `Timeout | `Connection_failed | `Overloaded ]

type path = Create | Stemcell | Warm_container

type stats = {
  creates : int;
  stemcell_hits : int;
  warm_hits : int;
  evictions : int;
  errors : int;
}

type container = {
  c_id : int;
  mutable c_fn : string option;
  space : Mem.Addr_space.t;
  listener : Net.Tcp.listener;
  mutable busy : bool;
  mutable dead : bool;
}

type t = {
  env : Seuss.Osenv.t;
  cfg : config;
  br : Net.Bridge.t;
  docker : Docker_backend.t;
  warm : (string, container Queue.t) Hashtbl.t;
  stemcells : container Queue.t;
  (* Idle containers in rough LRU order (stale entries re-validated). *)
  lru : container Queue.t;
  mutable total : int;
  mutable s_creates : int;
  mutable s_stemcell : int;
  mutable s_warm : int;
  mutable s_evictions : int;
  mutable s_errors : int;
}

let create ?(config = default_config) env =
  let br = Net.Bridge.create ~rng:(Sim.Prng.split env.Seuss.Osenv.rng) () in
  {
    env;
    cfg = config;
    br;
    docker = Docker_backend.create env br;
    warm = Hashtbl.create 1024;
    stemcells = Queue.create ();
    lru = Queue.create ();
    total = 0;
    s_creates = 0;
    s_stemcell = 0;
    s_warm = 0;
    s_evictions = 0;
    s_errors = 0;
  }

let bridge t = t.br
let config t = t.cfg
let container_count t = t.total

let idle_count t =
  Queue.length t.stemcells
  + Det.fold
      (fun _ q acc ->
        Queue.fold (fun acc c -> if c.dead || c.busy then acc else acc + 1) acc q)
      t.warm 0

let stats t =
  {
    creates = t.s_creates;
    stemcell_hits = t.s_stemcell;
    warm_hits = t.s_warm;
    evictions = t.s_evictions;
    errors = t.s_errors;
  }

(* {1 Container lifecycle} *)

let new_container t ~fn_id =
  match Docker_backend.create_container_space t.docker with
  | None -> None
  | Some space ->
      let c =
        {
          c_id = Seuss.Osenv.fresh_id t.env;
          c_fn = fn_id;
          space;
          listener = Net.Tcp.listener ~port:(Seuss.Osenv.fresh_port t.env);
          busy = false;
          dead = false;
        }
      in
      (* The container's invocation server answers requests arriving over
         the bridge. *)
      (* The invocation server parks in accept between requests (and
         forever after destroy, which only marks [dead]) — a daemon by
         design, not a stranded waiter. *)
      Sim.Engine.spawn t.env.Seuss.Osenv.engine
        ~name:(Printf.sprintf "container-%d" c.c_id)
        ~daemon:true
        (fun () ->
          let rec loop () =
            let conn = Net.Tcp.accept c.listener in
            (match Net.Tcp.recv conn with
            | Some _ -> if not c.dead then Net.Tcp.send conn "OK"
            | None -> ());
            Net.Tcp.close conn;
            if not c.dead then loop ()
          in
          loop ());
      t.total <- t.total + 1;
      t.s_creates <- t.s_creates + 1;
      Some c

let destroy_container t c =
  if not c.dead then begin
    c.dead <- true;
    Docker_backend.destroy_container_raw t.docker (Some c.space);
    t.total <- t.total - 1
  end

let pop_warm t fn_id =
  match Hashtbl.find_opt t.warm fn_id with
  | None -> None
  | Some q ->
      let rec take () =
        match Queue.take_opt q with
        | None -> None
        | Some c -> if c.dead || c.busy then take () else Some c
      in
      take ()

let push_warm t c =
  match c.c_fn with
  | None -> Queue.add c t.stemcells
  | Some fn_id ->
      let q =
        match Hashtbl.find_opt t.warm fn_id with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace t.warm fn_id q;
            q
      in
      Queue.add c q;
      Queue.add c t.lru

let evict_one_idle t =
  let rec scan () =
    match Queue.take_opt t.lru with
    | None -> false
    | Some c ->
        if c.dead || c.busy then scan ()
        else begin
          (* Remove it from its warm queue as well. *)
          (match c.c_fn with
          | Some fn_id -> (
              match Hashtbl.find_opt t.warm fn_id with
              | Some q ->
                  let fresh = Queue.create () in
                  (* seusslint: allow physical-eq — removing this exact container record from the queue *)
                  Queue.iter (fun x -> if x != c then Queue.add x fresh) q;
                  Hashtbl.replace t.warm fn_id fresh
              | None -> ())
          | None -> ());
          destroy_container t c;
          t.s_evictions <- t.s_evictions + 1;
          true
        end
  in
  scan ()

(* Make a stemcell in the background (OpenWhisk refills the pool as it
   is consumed; this competes with foreground creations, §7). *)
let rec replenish_stemcells t =
  if
    t.cfg.stemcell_count > 0
    && Queue.length t.stemcells < t.cfg.stemcell_count
    && t.total < t.cfg.container_cache_limit
  then
    Sim.Engine.spawn t.env.Seuss.Osenv.engine ~name:"stemcell-refill" (fun () ->
        match new_container t ~fn_id:None with
        | Some c ->
            Queue.add c t.stemcells;
            replenish_stemcells t
        | None -> ())

let start t =
  (* Pre-create the stemcell pool 16-wide (deployment-time warmup). *)
  if t.cfg.stemcell_count > 0 then begin
    let engine = t.env.Seuss.Osenv.engine in
    let remaining = ref t.cfg.stemcell_count in
    let workers = ref 16 in
    let done_ = Sim.Ivar.create () in
    for _ = 1 to 16 do
      Sim.Engine.spawn engine ~name:"stemcell-warmup" (fun () ->
          let rec go () =
            if !remaining > 0 then begin
              decr remaining;
              (match new_container t ~fn_id:None with
              | Some c -> Queue.add c t.stemcells
              | None -> ());
              go ()
            end
          in
          go ();
          decr workers;
          if !workers = 0 then Sim.Ivar.fill done_ ())
    done;
    Sim.Ivar.read done_
  end

(* {1 Invocation} *)

let run_in_container t c action =
  c.busy <- true;
  let finish result =
    c.busy <- false;
    (match result with
    | Ok () -> push_warm t c
    | Error _ ->
        t.s_errors <- t.s_errors + 1;
        destroy_container t c);
    result
  in
  match Net.Bridge.connect t.br c.listener with
  | None -> finish (Error `Connection_failed)
  | Some conn -> (
      Seuss.Osenv.burn t.env t.cfg.dispatch_time;
      Net.Tcp.send conn "RUN";
      (match action with
      | Backend_intf.Nop -> Seuss.Osenv.burn t.env 0.3e-3
      | Backend_intf.Cpu_ms ms -> Seuss.Osenv.burn t.env (ms /. 1000.0)
      | Backend_intf.Io_call (url, _delay) -> (
          match Seuss.Osenv.resolve t.env url with
          | None -> Sim.Engine.sleep 0.25 (* unreachable: still blocks *)
          | Some listener -> (
              match
                Net.Http.get ~link:Net.Netconf.lan listener ~path:url
                  ~timeout:t.cfg.invoke_timeout
              with
              | Ok _ | Error _ -> ())));
      match Net.Tcp.recv_timeout conn ~timeout:t.cfg.invoke_timeout with
      | Some (Some _) ->
          Net.Tcp.close conn;
          finish (Ok ())
      | Some None | None ->
          Net.Tcp.close conn;
          finish (Error `Timeout))

let init_container t c fn_id =
  Seuss.Osenv.burn t.env t.cfg.init_time;
  (* Importing code dirties container-private pages. *)
  (try
     ignore
       (Mem.Addr_space.write_range c.space
          ~vpn:
            (Process_backend.shared_image_pages
            + Docker_backend.container_private_pages)
          ~pages:600)
   with Mem.Frame.Out_of_memory -> ());
  c.c_fn <- Some fn_id

let rec acquire_capacity t ~deadline =
  if t.total < t.cfg.container_cache_limit then true
  else if evict_one_idle t then true
  else if Sim.Engine.now t.env.Seuss.Osenv.engine >= deadline then false
  else begin
    Sim.Engine.sleep t.cfg.capacity_retry_interval;
    acquire_capacity t ~deadline
  end

let invoke t fn =
  match pop_warm t fn.fn_id with
  | Some c ->
      t.s_warm <- t.s_warm + 1;
      (run_in_container t c fn.action, Warm_container)
  | None -> (
      match Queue.take_opt t.stemcells with
      | Some c when not c.dead ->
          t.s_stemcell <- t.s_stemcell + 1;
          replenish_stemcells t;
          init_container t c fn.fn_id;
          (run_in_container t c fn.action, Stemcell)
      | _ ->
          let deadline =
            Sim.Engine.now t.env.Seuss.Osenv.engine +. t.cfg.invoke_timeout
          in
          if not (acquire_capacity t ~deadline) then begin
            t.s_errors <- t.s_errors + 1;
            (Error `Overloaded, Create)
          end
          else begin
            match new_container t ~fn_id:(Some fn.fn_id) with
            | None ->
                t.s_errors <- t.s_errors + 1;
                (Error `Overloaded, Create)
            | Some c ->
                init_container t c fn.fn_id;
                (run_in_container t c fn.action, Create)
          end)
