(** Plain Linux processes (Table 3 row 3).

    "As processes provide insufficient isolation, the purpose of this
    result is to show the baseline memory sharing and startup latency of
    Node.js on Linux." Processes share the interpreter text and
    libraries (mapped read-only from a common image over the same frame
    substrate SEUSS uses) but each carries ~22 MB of private heap —
    which is what limits the paper's node to ~4,200 instances, and
    fork+exec+initialize costs ~350 ms of CPU, giving ~45 creations/s
    across 16 cores. *)

type t

val create : Seuss.Osenv.t -> t

val backend : t -> Backend_intf.t

val destroy_instance : t -> unit
(** Kill the most recently created process and release its private
    frames (the shared image stays mapped). No-op when none exist. *)

val shared_image_pages : int

val private_pages_per_process : int

val creation_cpu_time : float
