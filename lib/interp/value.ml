type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of arr
  | Obj of (string, t) Hashtbl.t
  | Closure of closure
  | Builtin of string * (t list -> t)

and arr = { mutable items : t array; mutable len : int }

and closure = { params : string list; body : Ast.block; env : env }

and env = { vars : (string, t) Hashtbl.t; mutable parent : env option }

let arr_of_list vs =
  let items = Array.of_list vs in
  Arr { items; len = Array.length items }

let arr_items a = Array.to_list (Array.sub a.items 0 a.len)

let arr_push a v =
  if a.len = Array.length a.items then begin
    let cap = max 4 (2 * Array.length a.items) in
    let items = Array.make cap Null in
    Array.blit a.items 0 items 0 a.len;
    a.items <- items
  end;
  a.items.(a.len) <- v;
  a.len <- a.len + 1

let obj_of_list fields =
  let h = Hashtbl.create (max 4 (List.length fields)) in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) fields;
  Obj h

let truthy = function
  | Null -> false
  | Bool b -> b
  | Num n -> n <> 0.0 && not (Float.is_nan n)
  | Str s -> s <> ""
  | Arr _ | Obj _ | Closure _ | Builtin _ -> true

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> x = y
  (* Reference types compare by identity — the guest language's (==)
     semantics, like JS objects. *)
  | Arr x, Arr y -> x == y (* seusslint: allow physical-eq — guest reference identity *)
  | Obj x, Obj y -> x == y (* seusslint: allow physical-eq — guest reference identity *)
  | Closure x, Closure y -> x == y (* seusslint: allow physical-eq — guest reference identity *)
  | Builtin (_, f), Builtin (_, g) -> f == g (* seusslint: allow physical-eq — guest reference identity *)
  | _ -> false

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"
  | Closure _ | Builtin _ -> "function"

let number_to_string n =
  if Float.is_integer n && Float.abs n < 1e15 then
    Printf.sprintf "%.0f" n
  else Printf.sprintf "%g" n

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num n -> number_to_string n
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Arr a ->
      let body = List.map to_string (arr_items a) in
      Printf.sprintf "[%s]" (String.concat ", " body)
  | Obj h ->
      let fields =
        Det.bindings h
        |> List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (escape k) (to_string v))
      in
      Printf.sprintf "{%s}" (String.concat ", " fields)
  | Closure _ | Builtin _ -> "<function>"

let heap_bytes = function
  | Null | Bool _ | Num _ -> 0
  | Str s -> 24 + String.length s
  | Arr a -> 32 + (16 * Array.length a.items)
  | Obj h -> 64 + (48 * Hashtbl.length h)
  | Closure c -> 64 + (16 * List.length c.params)
  | Builtin _ -> 0

(* Deep copy with physical-identity memoization. The memo tables must be
   seeded *before* recursing into children because environment graphs are
   cyclic (an env binds a closure whose env is that same env). Identity
   lists are O(n^2) but guest programs are small. *)
type memo = {
  mutable envs : (env * env) list;
  mutable vals : (t * t) list;
  rebind : string -> t option;
}

let rec copy_value memo v =
  match v with
  | Null | Bool _ | Num _ | Str _ -> v
  | Builtin (name, _) -> (
      match memo.rebind name with Some fresh -> fresh | None -> v)
  | Arr a -> (
      match List.find_opt (fun (orig, _) -> orig == v) memo.vals with (* seusslint: allow physical-eq — memo table keyed by identity to preserve sharing *)
      | Some (_, copy) -> copy
      | None ->
          let fresh = { items = Array.make (Array.length a.items) Null; len = a.len } in
          let copy = Arr fresh in
          memo.vals <- (v, copy) :: memo.vals;
          for i = 0 to a.len - 1 do
            fresh.items.(i) <- copy_value memo a.items.(i)
          done;
          copy)
  | Obj h -> (
      match List.find_opt (fun (orig, _) -> orig == v) memo.vals with (* seusslint: allow physical-eq — memo table keyed by identity to preserve sharing *)
      | Some (_, copy) -> copy
      | None ->
          let fresh = Hashtbl.create (max 4 (Hashtbl.length h)) in
          let copy = Obj fresh in
          memo.vals <- (v, copy) :: memo.vals;
          (* Sorted copy order so memo seeding (hence child sharing) does
             not depend on the source table's bucket layout. *)
          Det.iter (fun k x -> Hashtbl.replace fresh k (copy_value memo x)) h;
          copy)
  | Closure c -> (
      match List.find_opt (fun (orig, _) -> orig == v) memo.vals with (* seusslint: allow physical-eq — memo table keyed by identity to preserve sharing *)
      | Some (_, copy) -> copy
      | None ->
          let copy = Closure { c with env = copy_env_memo memo c.env } in
          memo.vals <- (v, copy) :: memo.vals;
          copy)

and copy_env_memo memo env =
  match List.find_opt (fun (orig, _) -> orig == env) memo.envs with (* seusslint: allow physical-eq — memo table keyed by identity to preserve sharing *)
  | Some (_, copy) -> copy
  | None ->
      (* Seed before touching parent or values: the graph may reach this
         env again through either. *)
      let fresh =
        { vars = Hashtbl.create (max 8 (Hashtbl.length env.vars)); parent = None }
      in
      memo.envs <- (env, fresh) :: memo.envs;
      (match env.parent with
      | Some p -> fresh.parent <- Some (copy_env_memo memo p)
      | None -> ());
      Det.iter
        (fun name v -> Hashtbl.replace fresh.vars name (copy_value memo v))
        env.vars;
      fresh

let deep_copy_env ~rebind_builtin env =
  copy_env_memo { envs = []; vals = []; rebind = rebind_builtin } env

let new_env ?parent () = { vars = Hashtbl.create 8; parent }

let define env name v = Hashtbl.replace env.vars name v

let rec lookup env name =
  match Hashtbl.find_opt env.vars name with
  | Some v -> Some v
  | None -> ( match env.parent with Some p -> lookup p name | None -> None)

let rec assign env name v =
  if Hashtbl.mem env.vars name then begin
    Hashtbl.replace env.vars name v;
    true
  end
  else match env.parent with Some p -> assign p name v | None -> false
