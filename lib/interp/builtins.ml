type host = {
  http_get : string -> (string, string) result;
  log : string -> unit;
  now : unit -> float;
  work_ms : float -> unit;
  alloc : int -> unit;
  random : unit -> float;
}

let null_host =
  {
    http_get = (fun _ -> Error "no network");
    log = ignore;
    now = (fun () -> 0.0);
    work_ms = ignore;
    alloc = ignore;
    random = (fun () -> 0.5);
  }

let error fmt = Printf.ksprintf (fun s -> raise (Eval.Runtime_error s)) fmt

let arity name n args =
  if List.length args <> n then
    error "%s: expected %d arguments, got %d" name n (List.length args)

let num name = function
  | Value.Num n -> n
  | v -> error "%s: expected number, got %s" name (Value.type_name v)

let string_arg name = function
  | Value.Str s -> s
  | v -> error "%s: expected string, got %s" name (Value.type_name v)

let num1 name f =
  Value.Builtin
    ( name,
      fun args ->
        arity name 1 args;
        Value.Num (f (num name (List.hd args))) )

let install host =
  let ret_str s =
    host.alloc (24 + String.length s);
    Value.Str s
  in
  [
    ( "len",
      Value.Builtin
        ( "len",
          fun args ->
            arity "len" 1 args;
            match args with
            | [ Value.Arr a ] -> Value.Num (float_of_int a.Value.len)
            | [ Value.Str s ] -> Value.Num (float_of_int (String.length s))
            | [ Value.Obj h ] -> Value.Num (float_of_int (Hashtbl.length h))
            | [ v ] -> error "len: cannot measure %s" (Value.type_name v)
            | _ -> assert false ) );
    ( "push",
      Value.Builtin
        ( "push",
          fun args ->
            arity "push" 2 args;
            match args with
            | [ Value.Arr a; v ] ->
                Value.arr_push a v;
                host.alloc 16;
                Value.Num (float_of_int a.Value.len)
            | [ v; _ ] -> error "push: expected array, got %s" (Value.type_name v)
            | _ -> assert false ) );
    ( "keys",
      Value.Builtin
        ( "keys",
          fun args ->
            arity "keys" 1 args;
            match args with
            | [ Value.Obj h ] ->
                let ks = List.map (fun k -> Value.Str k) (Det.keys h) in
                let v = Value.arr_of_list ks in
                host.alloc (Value.heap_bytes v);
                v
            | [ v ] -> error "keys: expected object, got %s" (Value.type_name v)
            | _ -> assert false ) );
    ( "str",
      Value.Builtin
        ( "str",
          fun args ->
            arity "str" 1 args;
            match args with
            | [ Value.Str s ] -> Value.Str s
            | [ v ] -> ret_str (Value.to_string v)
            | _ -> assert false ) );
    ( "num",
      Value.Builtin
        ( "num",
          fun args ->
            arity "num" 1 args;
            match args with
            | [ Value.Num n ] -> Value.Num n
            | [ Value.Str s ] -> (
                match float_of_string_opt (String.trim s) with
                | Some n -> Value.Num n
                | None -> error "num: cannot parse %S" s)
            | [ Value.Bool b ] -> Value.Num (if b then 1.0 else 0.0)
            | [ v ] -> error "num: cannot convert %s" (Value.type_name v)
            | _ -> assert false ) );
    ("floor", num1 "floor" floor);
    ("abs", num1 "abs" Float.abs);
    ("sqrt", num1 "sqrt" sqrt);
    ( "min",
      Value.Builtin
        ( "min",
          fun args ->
            arity "min" 2 args;
            match args with
            | [ a; b ] -> Value.Num (Float.min (num "min" a) (num "min" b))
            | _ -> assert false ) );
    ( "max",
      Value.Builtin
        ( "max",
          fun args ->
            arity "max" 2 args;
            match args with
            | [ a; b ] -> Value.Num (Float.max (num "max" a) (num "max" b))
            | _ -> assert false ) );
    ( "pow",
      Value.Builtin
        ( "pow",
          fun args ->
            arity "pow" 2 args;
            match args with
            | [ a; b ] -> Value.Num (Float.pow (num "pow" a) (num "pow" b))
            | _ -> assert false ) );
    ( "substr",
      Value.Builtin
        ( "substr",
          fun args ->
            arity "substr" 3 args;
            match args with
            | [ s; start; len ] ->
                let s = string_arg "substr" s in
                let start = int_of_float (num "substr" start) in
                let len = int_of_float (num "substr" len) in
                if start < 0 || len < 0 || start + len > String.length s then
                  error "substr: out of bounds"
                else ret_str (String.sub s start len)
            | _ -> assert false ) );
    ( "split",
      Value.Builtin
        ( "split",
          fun args ->
            arity "split" 2 args;
            match args with
            | [ s; sep ] ->
                let s = string_arg "split" s in
                let sep = string_arg "split" sep in
                if String.length sep <> 1 then
                  error "split: separator must be one character"
                else begin
                  let parts =
                    String.split_on_char sep.[0] s
                    |> List.map (fun p -> Value.Str p)
                  in
                  let v = Value.arr_of_list parts in
                  host.alloc (Value.heap_bytes v);
                  v
                end
            | _ -> assert false ) );
    ( "range",
      Value.Builtin
        ( "range",
          fun args ->
            arity "range" 1 args;
            let n = int_of_float (num "range" (List.hd args)) in
            if n < 0 || n > 10_000_000 then error "range: bad bound %d" n
            else begin
              let v =
                Value.arr_of_list (List.init n (fun i -> Value.Num (float_of_int i)))
              in
              host.alloc (Value.heap_bytes v);
              v
            end ) );
    ( "json",
      Value.Builtin
        ( "json",
          fun args ->
            arity "json" 1 args;
            ret_str (Value.to_string (List.hd args)) ) );
    ( "hash",
      Value.Builtin
        ( "hash",
          fun args ->
            arity "hash" 1 args;
            (* FNV-1a: honest per-character work for CPU-ish examples. *)
            let s = string_arg "hash" (List.hd args) in
            let h = ref 2166136261 in
            String.iter
              (fun c ->
                h := (!h lxor Char.code c) * 16777619 land 0x3FFFFFFF)
              s;
            Value.Num (float_of_int !h) ) );
    ( "join",
      Value.Builtin
        ( "join",
          fun args ->
            arity "join" 2 args;
            match args with
            | [ Value.Arr a; sep ] ->
                let sep = string_arg "join" sep in
                let parts =
                  List.map
                    (function Value.Str s -> s | v -> Value.to_string v)
                    (Value.arr_items a)
                in
                ret_str (String.concat sep parts)
            | [ v; _ ] -> error "join: expected array, got %s" (Value.type_name v)
            | _ -> assert false ) );
    ( "contains",
      Value.Builtin
        ( "contains",
          fun args ->
            arity "contains" 2 args;
            match args with
            | [ s; needle ] ->
                let s = string_arg "contains" s in
                let needle = string_arg "contains" needle in
                let n = String.length needle and len = String.length s in
                let rec go i =
                  i + n <= len && (String.sub s i n = needle || go (i + 1))
                in
                Value.Bool (n = 0 || go 0)
            | _ -> assert false ) );
    ( "index_of",
      Value.Builtin
        ( "index_of",
          fun args ->
            arity "index_of" 2 args;
            match args with
            | [ Value.Arr a; v ] ->
                let rec go i =
                  if i >= a.Value.len then -1.0
                  else if Value.equal a.Value.items.(i) v then float_of_int i
                  else go (i + 1)
                in
                Value.Num (go 0)
            | [ Value.Str s; needle ] ->
                let needle = string_arg "index_of" needle in
                let n = String.length needle and len = String.length s in
                let rec go i =
                  if i + n > len then -1.0
                  else if String.sub s i n = needle then float_of_int i
                  else go (i + 1)
                in
                Value.Num (go 0)
            | [ v; _ ] ->
                error "index_of: expected array or string, got %s"
                  (Value.type_name v)
            | _ -> assert false ) );
    ( "upper",
      Value.Builtin
        ( "upper",
          fun args ->
            arity "upper" 1 args;
            ret_str (String.uppercase_ascii (string_arg "upper" (List.hd args))) ) );
    ( "lower",
      Value.Builtin
        ( "lower",
          fun args ->
            arity "lower" 1 args;
            ret_str (String.lowercase_ascii (string_arg "lower" (List.hd args))) ) );
    ( "trim",
      Value.Builtin
        ( "trim",
          fun args ->
            arity "trim" 1 args;
            ret_str (String.trim (string_arg "trim" (List.hd args))) ) );
    ( "slice",
      Value.Builtin
        ( "slice",
          fun args ->
            arity "slice" 3 args;
            match args with
            | [ Value.Arr a; start; count ] ->
                let start = int_of_float (num "slice" start) in
                let count = int_of_float (num "slice" count) in
                if start < 0 || count < 0 || start + count > a.Value.len then
                  error "slice: out of bounds"
                else begin
                  let v =
                    Value.arr_of_list
                      (Array.to_list (Array.sub a.Value.items start count))
                  in
                  host.alloc (Value.heap_bytes v);
                  v
                end
            | [ v; _; _ ] ->
                error "slice: expected array, got %s" (Value.type_name v)
            | _ -> assert false ) );
    ( "sort",
      Value.Builtin
        ( "sort",
          fun args ->
            arity "sort" 1 args;
            match args with
            | [ Value.Arr a ] ->
                let items = Value.arr_items a in
                let cmp x y =
                  match (x, y) with
                  | Value.Num p, Value.Num q -> compare p q
                  | Value.Str p, Value.Str q -> compare p q
                  | _ ->
                      error "sort: elements must be all numbers or all strings"
                in
                let v = Value.arr_of_list (List.sort cmp items) in
                host.alloc (Value.heap_bytes v);
                v
            | [ v ] -> error "sort: expected array, got %s" (Value.type_name v)
            | _ -> assert false ) );
    ( "print",
      Value.Builtin
        ( "print",
          fun args ->
            let text =
              String.concat " "
                (List.map
                   (function Value.Str s -> s | v -> Value.to_string v)
                   args)
            in
            host.log text;
            Value.Null ) );
    ( "now",
      Value.Builtin
        ( "now",
          fun args ->
            arity "now" 0 args;
            Value.Num (host.now ()) ) );
    ( "random",
      Value.Builtin
        ( "random",
          fun args ->
            arity "random" 0 args;
            Value.Num (host.random ()) ) );
    ( "work",
      Value.Builtin
        ( "work",
          fun args ->
            arity "work" 1 args;
            let ms = num "work" (List.hd args) in
            if ms < 0.0 then error "work: negative duration";
            host.work_ms ms;
            Value.Null ) );
    ( "http_get",
      Value.Builtin
        ( "http_get",
          fun args ->
            arity "http_get" 1 args;
            let url = string_arg "http_get" (List.hd args) in
            match host.http_get url with
            | Ok body -> ret_str body
            | Error msg -> error "http_get: %s" msg ) );
  ]
