(** Deterministic, seed-driven fault injection.

    The paper's §9 DR-SEUSS vision assumes a cluster that survives node
    crashes, snapshot-fetch failures and fabric partitions; this module
    is the plane those failures are injected through. A {!plan} owns a
    private splitmix64 stream and a per-{!site} probability table;
    injection sites across the stack ([Net.Tcp], [Seuss.Node],
    [Cluster.Drseuss]) consult the plan of the running engine via
    {!fire}. Three properties make it a test oracle rather than a chaos
    monkey:

    - {b determinism}: every decision draws from the plan's own PRNG, in
      program order, so one seed reproduces one failure sequence exactly
      (and {!history} records it for assertion);
    - {b zero-rate transparency}: with no plan installed — or a rate of
      [0.0] for a site — a check makes {e no} PRNG draw and costs no
      simulated time, so un-faulted runs are bit-identical to runs of a
      build without the fault plane;
    - {b isolation}: the plan's stream is split off the engine's at
      creation (or seeded explicitly), never shared, so arming faults
      cannot perturb workload randomness. *)

(** Injection sites. Each is consulted by the subsystem that owns the
    failure mode; see DESIGN.md §8 for the wiring table. *)
type site =
  | Uc_kill  (** a running UC dies mid-request ([Seuss.Node]) *)
  | Capture_fail  (** snapshot capture fails after compile ([Seuss.Node]) *)
  | Oom_storm  (** transient memory pressure evicts all idle UCs *)
  | Net_drop  (** a SYN is dropped ([Net.Tcp.connect]) *)
  | Net_delay  (** a send stalls for [delay_spike] seconds *)
  | Partition  (** fabric cut between a node pair (scheduled, not drawn) *)
  | Node_crash  (** a whole cluster node dies ([Cluster.Drseuss]) *)
  | Registry_stale  (** a registry holder entry is stale at fetch time *)

val all_sites : site list

val site_name : site -> string

val site_of_name : string -> site option

exception Injected_crash of string
(** The exception a deliberately-crashed process dies with; pair with
    {!Sim.Engine.spawn_supervised} to kill one process without aborting
    the run. *)

val crash : string -> 'a
(** [crash detail] raises {!Injected_crash}. *)

type record = { time : float; site : site; detail : string }

type plan

val make :
  ?seed:int64 ->
  ?delay_spike:float ->
  ?rates:(site * float) list ->
  Sim.Engine.t ->
  plan
(** [make engine] is a fresh plan. [seed] fixes the plan's private PRNG;
    by default it is split off the engine's stream (one draw, at
    creation only), so the engine seed alone determines the failure
    sequence. [rates] gives each site's per-check fire probability
    (absent sites never fire); [delay_spike] (default 20 ms) is the
    stall injected when [Net_delay] fires.
    @raise Invalid_argument if any rate is outside [0,1]. *)

val install : plan -> unit
(** Park the plan in its engine's fault-plan slot, arming every
    injection site run by that engine. *)

val uninstall : Sim.Engine.t -> unit

val current : unit -> plan option
(** The plan of the currently-running engine, if one is installed. *)

val rate : plan -> site -> float

val set_rate : plan -> site -> float -> unit
(** Retune one site mid-run (e.g. force [Uc_kill] for exactly one
    invocation in a regression test). *)

val fire : site -> detail:string -> bool
(** [fire site ~detail] decides whether the fault fires here: [false]
    (without drawing) when no plan is installed or the site's rate is 0;
    otherwise one draw from the plan's stream, recorded in {!history}
    when it fires. [detail] labels the record. *)

val delay : unit -> float
(** Extra send stall: the plan's [delay_spike] when [Net_delay] fires,
    [0.0] otherwise. *)

val pick : plan -> int -> int
(** Deterministic victim choice in [\[0, n)] from the plan's stream. *)

val jitter : plan -> float
(** Uniform draw in [\[0, 1)] from the plan's stream, for jittered
    backoff/timeouts. *)

val history : plan -> record list
(** Every fired fault, oldest first — the reproducible failure
    timeline. *)

val fired : plan -> int

(** {1 Partitions}

    Pair-wise fabric cuts between cluster node ids. These are state, not
    draws: install/heal them directly or on a schedule, and let sites
    consult {!partitioned}. Cuts and heals are recorded in {!history}
    under the [Partition] site. *)

val partition : plan -> a:int -> b:int -> unit

val heal : plan -> a:int -> b:int -> unit

val schedule_partition :
  plan -> a:int -> b:int -> after:float -> duration:float -> unit
(** Cut [a]-[b] [after] seconds from now, heal [duration] later. *)

val is_partitioned : plan -> int -> int -> bool

val partitioned : int -> int -> bool
(** [is_partitioned] against the running engine's plan; [false] when no
    plan is installed. *)

(** {1 Environment hook} *)

val env_var : string
(** ["SEUSS_FAULT_RATE"] — when set to a float [r], experiment harnesses
    install a plan with every site at rate [r] (seeded from the
    experiment seed). [r = 0] is the CI identity check: it proves an
    armed-but-zero-rate plane leaves every output bit-identical. *)

val rates_of_env : unit -> (site * float) list option
(** Parse {!env_var}; [None] when unset or malformed (malformed values
    warn on stderr). *)
