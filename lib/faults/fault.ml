type site =
  | Uc_kill
  | Capture_fail
  | Oom_storm
  | Net_drop
  | Net_delay
  | Partition
  | Node_crash
  | Registry_stale

let all_sites =
  [
    Uc_kill;
    Capture_fail;
    Oom_storm;
    Net_drop;
    Net_delay;
    Partition;
    Node_crash;
    Registry_stale;
  ]

let site_name = function
  | Uc_kill -> "uc_kill"
  | Capture_fail -> "capture_fail"
  | Oom_storm -> "oom_storm"
  | Net_drop -> "net_drop"
  | Net_delay -> "net_delay"
  | Partition -> "partition"
  | Node_crash -> "node_crash"
  | Registry_stale -> "registry_stale"

let site_of_name = function
  | "uc_kill" -> Some Uc_kill
  | "capture_fail" -> Some Capture_fail
  | "oom_storm" -> Some Oom_storm
  | "net_drop" -> Some Net_drop
  | "net_delay" -> Some Net_delay
  | "partition" -> Some Partition
  | "node_crash" -> Some Node_crash
  | "registry_stale" -> Some Registry_stale
  | _ -> None

exception Injected_crash of string

let crash detail = raise (Injected_crash detail)

type record = { time : float; site : site; detail : string }

type plan = {
  engine : Sim.Engine.t;
  rng : Sim.Prng.t;
  mutable rates : (site * float) list;
  delay_spike : float;
  mutable partitions : (int * int) list;
  mutable history : record list; (* newest first *)
}

(* The plan rides in the engine's fault-plan slot via the universal-type
   embedding, exactly like Trace contexts ride in the process-local slot. *)
exception Plan_slot of plan

let validate_rate site r =
  if not (Float.is_finite r) || r < 0.0 || r > 1.0 then
    invalid_arg
      (Printf.sprintf "Fault: rate for %s must be in [0,1] (got %g)"
         (site_name site) r)

let make ?seed ?(delay_spike = 0.02) ?(rates = []) engine =
  List.iter (fun (site, r) -> validate_rate site r) rates;
  let rng =
    match seed with
    | Some s -> Sim.Prng.create s
    | None -> Sim.Prng.split (Sim.Engine.rng engine)
  in
  { engine; rng; rates; delay_spike; partitions = []; history = [] }

let install plan =
  Sim.Engine.set_fault_plan plan.engine (Some (Plan_slot plan))

let uninstall engine = Sim.Engine.set_fault_plan engine None

let current () =
  match Sim.Engine.self_opt () with
  | None -> None
  | Some engine -> (
      match Sim.Engine.fault_plan engine with
      | Some (Plan_slot plan) -> Some plan
      | Some _ | None -> None)

let rate plan site =
  Option.value (List.assoc_opt site plan.rates) ~default:0.0

let set_rate plan site r =
  validate_rate site r;
  plan.rates <- (site, r) :: List.remove_assoc site plan.rates

let record plan site detail =
  plan.history <-
    { time = Sim.Engine.now plan.engine; site; detail } :: plan.history

let history plan = List.rev plan.history

let fired plan = List.length plan.history

(* One PRNG draw per check, taken from the plan's private stream — never
   from the engine's — so arming the plane cannot perturb workload
   randomness, and a zero rate (or no plan) draws nothing at all. *)
let plan_fire plan site ~detail =
  let r = rate plan site in
  r > 0.0
  && Sim.Prng.float plan.rng < r
  &&
  (record plan site detail;
   true)

let fire site ~detail =
  match current () with
  | None -> false
  | Some plan -> plan_fire plan site ~detail

let delay () =
  match current () with
  | None -> 0.0
  | Some plan ->
      if plan_fire plan Net_delay ~detail:"delay spike" then plan.delay_spike
      else 0.0

let pick plan n = Sim.Prng.int plan.rng n

let jitter plan = Sim.Prng.float plan.rng

(* {1 Partitions} *)

let ordered a b = if a <= b then (a, b) else (b, a)

let is_partitioned plan a b = List.mem (ordered a b) plan.partitions

let partition plan ~a ~b =
  let key = ordered a b in
  if not (List.mem key plan.partitions) then begin
    plan.partitions <- key :: plan.partitions;
    record plan Partition (Printf.sprintf "cut %d-%d" a b)
  end

let heal plan ~a ~b =
  let key = ordered a b in
  if List.mem key plan.partitions then begin
    plan.partitions <- List.filter (fun k -> k <> key) plan.partitions;
    record plan Partition (Printf.sprintf "heal %d-%d" a b)
  end

let schedule_partition plan ~a ~b ~after ~duration =
  Sim.Engine.schedule plan.engine ~delay:after (fun () ->
      partition plan ~a ~b;
      Sim.Engine.schedule plan.engine ~delay:duration (fun () ->
          heal plan ~a ~b))

let partitioned a b =
  match current () with
  | None -> false
  | Some plan -> is_partitioned plan a b

(* {1 Environment hook} *)

let env_var = "SEUSS_FAULT_RATE"

let rates_of_env () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some r when Float.is_finite r && r >= 0.0 && r <= 1.0 ->
          Some (List.map (fun site -> (site, r)) all_sites)
      | _ ->
          Printf.eprintf "warning: ignoring malformed %s=%S\n%!" env_var s;
          None)
