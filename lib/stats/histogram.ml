type t = {
  lo : float;
  bins_per_decade : int;
  counts : int array;
  mutable total : int;
}

let create ?(lo = 1e-4) ?(hi = 1e3) ?(bins_per_decade = 10) () =
  if lo <= 0.0 || hi <= lo then invalid_arg "Histogram.create: bad range";
  let decades = log10 hi -. log10 lo in
  let nbins = int_of_float (ceil (decades *. float_of_int bins_per_decade)) in
  { lo; bins_per_decade; counts = Array.make (max 1 nbins) 0; total = 0 }

let bin_count t = Array.length t.counts

let lo t = t.lo
let bins_per_decade t = t.bins_per_decade

let index_of t x =
  if x <= t.lo then 0
  else
    let i =
      int_of_float (floor (log10 (x /. t.lo) *. float_of_int t.bins_per_decade))
    in
    (* Monomorphic clamp: [min] here is the polymorphic compare. *)
    let last = bin_count t - 1 in
    if i > last then last else i

let add t x =
  let i = index_of t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total

let bin_bounds t i =
  if i < 0 || i >= bin_count t then invalid_arg "Histogram.bin_bounds";
  let decade b = t.lo *. (10.0 ** (float_of_int b /. float_of_int t.bins_per_decade)) in
  (decade i, decade (i + 1))

let bin_value t i =
  if i < 0 || i >= bin_count t then invalid_arg "Histogram.bin_value";
  t.counts.(i)

let same_layout a b =
  a.lo = b.lo && a.bins_per_decade = b.bins_per_decade
  && bin_count a = bin_count b

let merge t ~from =
  if not (same_layout t from) then
    invalid_arg "Histogram.merge: layout mismatch";
  for i = 0 to bin_count t - 1 do
    t.counts.(i) <- t.counts.(i) + from.counts.(i)
  done;
  t.total <- t.total + from.total

let restore ~lo ~bins_per_decade ~bin_count:n counts =
  if lo <= 0.0 || bins_per_decade <= 0 || n <= 0 then
    invalid_arg "Histogram.restore: bad layout";
  let t = { lo; bins_per_decade; counts = Array.make n 0; total = 0 } in
  List.iter
    (fun (i, c) ->
      if i < 0 || i >= n || c < 0 then
        invalid_arg "Histogram.restore: bad bin entry";
      t.counts.(i) <- t.counts.(i) + c;
      t.total <- t.total + c)
    counts;
  t

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q in [0,1]";
  if t.total = 0 then 0.0
  else begin
    let rank = int_of_float (Float.round (q *. float_of_int (t.total - 1))) + 1 in
    let result = ref (snd (bin_bounds t (bin_count t - 1))) in
    (try
       let seen = ref 0 in
       for i = 0 to bin_count t - 1 do
         seen := !seen + t.counts.(i);
         if !seen >= rank then begin
           result := snd (bin_bounds t i);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to bin_count t - 1 do
    let lo, hi = bin_bounds t i in
    acc := f !acc ~lo ~hi ~count:t.counts.(i)
  done;
  !acc

let pp ppf t =
  let peak = Array.fold_left max 1 t.counts in
  for i = 0 to bin_count t - 1 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bin_bounds t i in
      let width = t.counts.(i) * 40 / peak in
      Format.fprintf ppf "%10.4g-%-10.4g |%s %d@." lo hi
        (String.make (max 1 width) '#')
        t.counts.(i)
    end
  done
