(** Fixed-layout log-binned histograms.

    Latencies in the burst experiments span four orders of magnitude
    (sub-ms hot starts to 60 s container cold starts); a logarithmic
    histogram summarises them compactly without retaining every sample.

    Two histograms with the same layout ([lo], [bins_per_decade],
    [bin_count]) are mergeable, so per-node distributions can be folded
    into cluster-wide ones without resampling. *)

type t

val create : ?lo:float -> ?hi:float -> ?bins_per_decade:int -> unit -> t
(** Default layout: [lo = 1e-4] s, [hi = 1e3] s, 10 bins per decade.
    Samples outside the range clamp to the edge bins. *)

val add : t -> float -> unit

val count : t -> int

val bin_count : t -> int

val lo : t -> float
(** Lower bound of the first bin (the layout's [lo]). *)

val bins_per_decade : t -> int

val bin_bounds : t -> int -> float * float
(** Lower/upper bound of a bin index. *)

val bin_value : t -> int -> int
(** Number of samples in a bin. *)

val merge : t -> from:t -> unit
(** Add every count of [from] into the first histogram.
    @raise Invalid_argument when the layouts differ. *)

val restore : lo:float -> bins_per_decade:int -> bin_count:int -> (int * int) list -> t
(** Rebuild a histogram from a sparse [(bin index, count)] list — the
    inverse of enumerating non-empty bins, used by the JSON codec.
    @raise Invalid_argument on a bad layout or out-of-range entry. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: the upper bound of the bin holding
    the q-th sample ([0.] when empty). The relative error is bounded by
    one bin width, [10^(1/bins_per_decade) - 1]. *)

val fold : t -> init:'a -> f:('a -> lo:float -> hi:float -> count:int -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
(** Compact bar rendering of non-empty bins. *)
