(** A unikernel context's flat virtual address space.

    Wraps a {!Page_table.t} with x86-like fault semantics:

    - a write to an absent page demand-allocates a zero frame;
    - a write to a copy-on-write page clones the frame privately;
    - a write to a writable page just sets the dirty bit;
    - reads never allocate (absent reads hit the shared zero page).

    Fault counts are exposed so the cost model can charge simulated time
    per fault — the "pages copied during the execution" column of
    Table 1 is read straight off these counters. *)

type t

type fault = No_fault | Zero_fill | Cow_copy

type write_stats = { pages : int; zero_fills : int; cow_copies : int }

type prefault_stats = {
  requested : int;  (** vpns passed in (duplicates counted again) *)
  prefault_zero_fills : int;  (** were absent: fresh zero frames mapped *)
  prefault_cow_copies : int;  (** were copy-on-write: privately copied *)
  already_mapped : int;  (** were already writable: only flags set *)
}

val create : Frame.t -> t
(** A fresh, empty address space. *)

val of_table : ?mapped_hint:int -> Frame.t -> Page_table.t -> t
(** Deploy over a *frozen* table (read-only + copy-on-write entries with
    clean dirty bits, as produced by snapshot capture): shallow
    page-table copy in O(root size) — the SEUSS deploy primitive.
    [mapped_hint] seeds the O(1) mapped-page counter (snapshots know
    their totals); without it the table is walked once. *)

val table : t -> Page_table.t

val allocator : t -> Frame.t

val touch_write : t -> vpn:int -> fault
(** Write one page. @raise Frame.Out_of_memory when a needed allocation
    exceeds the budget (the page is left unmodified). *)

val set_fault_hook : t -> (fault -> unit) -> unit
(** Install an observer called on every {e resolved} fault
    ([Zero_fill] / [Cow_copy]; never [No_fault]) with no simulated-time
    cost. The owning layer uses this to feed fault telemetry (counters,
    COW-fault events) without [mem] depending on it. One hook per
    space; installing replaces the previous one. *)

val touch_read : t -> vpn:int -> unit
(** Sets the accessed bit on a present page; no-op on absent pages. *)

(** {2 Working-set recording and batched prefault (REAP)}

    Recording the ordered set of vpns demand-faulted during a deploy's
    first invocation, then installing that set in one batched pass on
    later deploys from the same snapshot, removes the per-page fault
    storm from the warm path (Ustiugov et al., ASPLOS '21). *)

val start_trace : t -> unit
(** Arm the access trace: every subsequently {e resolved} fault
    ([Zero_fill] / [Cow_copy]) appends its vpn, in fault order. Arming
    replaces any trace in progress. Recording stops silently after
    65536 vpns (a runaway function, not a working set). *)

val take_trace : t -> int list
(** Disarm and return the vpns recorded since {!start_trace}, in fault
    order (each vpn appears at most once per trace: a page faults at
    most once between freezes). Empty if not armed. *)

val tracing : t -> bool

val prefault : t -> vpns:int list -> prefault_stats
(** Install a recorded working set in one batched page-table pass: each
    vpn ends in exactly the state a demand {!touch_write} would leave it
    (zero-filled, COW-copied, or just dirty+accessed), lifetime and
    mapped/dirty counters included, but the fault hook never fires — no
    faults occur; the caller charges one batched cost from the stats.
    Structural sharing is preserved: only leaves holding prefaulted vpns
    are privatized. @raise Frame.Out_of_memory mid-batch (installed
    pages stay installed, like a partial {!write_range}). *)

val write_range : t -> vpn:int -> pages:int -> write_stats
(** Write [pages] consecutive pages starting at [vpn]. *)

val write_bytes : t -> addr:int -> len:int -> write_stats
(** Byte-addressed convenience over {!write_range}. *)

val mapped_pages : t -> int
(** O(1), maintained incrementally (exact when [of_table]'s hint was). *)

val resident_bytes : t -> int64
(** [mapped_pages * page_size]: what this space would charge a node if
    nothing were shared. *)

val dirty_pages : t -> int
(** O(1): pages written since creation or the last {!clear_dirty} /
    {!freeze} — the size of the diff a snapshot would capture. *)

val mapped_pages_slow : t -> int
(** Page-table walk; for tests cross-checking the counters. *)

val dirty_pages_slow : t -> int

val clear_dirty : t -> unit

val freeze : t -> unit
(** The capture barrier: every present mapping becomes read-only +
    copy-on-write with clean dirty bits (visible through all tables
    sharing these leaves), and the dirty counter resets. *)

val lifetime_zero_fills : t -> int

val lifetime_cow_copies : t -> int

val release : t -> unit
(** Return all private frames/leaves; the space must not be used after. *)
